open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let sample () =
  rel [ "id"; "grp"; "v" ]
    (List.init 100 (fun i -> [ iv i; iv (i mod 10); iv (i mod 50) ]))

let stats_tests =
  [ t "row count and distinct counts" (fun () ->
        let s = Stats.of_relation (sample ()) in
        Alcotest.(check int) "rows" 100 s.Stats.row_count;
        let d name = (Option.get (Stats.col s name)).Stats.distinct in
        Alcotest.(check int) "id distinct" 100 (d "id");
        Alcotest.(check int) "grp distinct" 10 (d "grp");
        Alcotest.(check int) "v distinct" 50 (d "v"));
    t "min max nulls" (fun () ->
        let r = rel [ "a" ] [ [ iv 5 ]; [ Value.Null ]; [ iv 2 ]; [ iv 9 ] ] in
        let s = Stats.of_relation r in
        let cs = Option.get (Stats.col s "a") in
        Alcotest.check Helpers.value_testable "min" (iv 2) cs.Stats.min_val;
        Alcotest.check Helpers.value_testable "max" (iv 9) cs.Stats.max_val;
        Alcotest.(check int) "nulls" 1 cs.Stats.null_count);
    t "range selectivity interpolates" (fun () ->
        let s = Stats.of_relation (sample ()) in
        let cs = Option.get (Stats.col s "id") in
        let sel = Stats.range_selectivity cs Expr.Le (iv 49) in
        Alcotest.(check bool) (Printf.sprintf "~0.5, got %.2f" sel) true
          (sel > 0.4 && sel < 0.6));
    t "eq selectivity is 1/distinct" (fun () ->
        let s = Stats.of_relation (sample ()) in
        let cs = Option.get (Stats.col s "grp") in
        Alcotest.(check (float 1e-9)) "0.1" 0.1 (Stats.eq_selectivity cs)) ]

(* The cost model's row estimates should be within a small factor of the
   actual cardinalities for the plan shapes the optimizer emits. *)
let within_factor f est actual =
  let actual = Float.max 1. (float_of_int actual) in
  est /. actual <= f && actual /. est <= f

let cost_catalog () =
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "pts"
    (rel [ "id"; "x"; "grp" ]
       (List.init 200 (fun i -> [ iv i; iv (i mod 40); iv (i mod 8) ])));
  catalog

let estimate_vs_actual catalog sql factor =
  let q = Sqlfront.Parser.parse sql in
  let plan = Sqlfront.Binder.bind catalog q in
  let est = Core.Cost.estimate catalog plan in
  let actual = Relation.cardinality (Exec.run catalog plan) in
  if not (within_factor factor est.Core.Cost.rows actual) then
    Alcotest.failf "estimate %.0f vs actual %d (allowed factor %.0f) for %s"
      est.Core.Cost.rows actual factor sql

let cost_tests =
  [ t "scan estimate is exact" (fun () ->
        estimate_vs_actual (cost_catalog ()) "SELECT id FROM pts" 1.01);
    t "equality filter estimate" (fun () ->
        estimate_vs_actual (cost_catalog ()) "SELECT id FROM pts WHERE grp = 3" 1.5);
    t "range filter estimate" (fun () ->
        estimate_vs_actual (cost_catalog ()) "SELECT id FROM pts WHERE x <= 10" 2.);
    t "equi-join estimate" (fun () ->
        estimate_vs_actual (cost_catalog ())
          "SELECT a.id FROM pts a, pts b WHERE a.grp = b.grp" 2.);
    t "group estimate bounded by distinct product" (fun () ->
        estimate_vs_actual (cost_catalog ())
          "SELECT grp, COUNT(*) FROM pts GROUP BY grp" 1.5);
    t "nested loop costs more than hash join" (fun () ->
        let catalog = cost_catalog () in
        let nl =
          Core.Cost.estimate catalog
            (Plan.Nl_join
               {
                 pred = Expr.Cmp (Expr.Eq, Expr.col ~q:"a" "grp", Expr.col ~q:"b" "grp");
                 left = Plan.Scan { table = "pts"; alias = Some "a"; filter = None };
                 right = Plan.Scan { table = "pts"; alias = Some "b"; filter = None };
               })
        in
        let hj =
          Core.Cost.estimate catalog
            (Plan.Hash_join
               {
                 keys = [ (Expr.col ~q:"a" "grp", Expr.col ~q:"b" "grp") ];
                 residual = Expr.tt;
                 left = Plan.Scan { table = "pts"; alias = Some "a"; filter = None };
                 right = Plan.Scan { table = "pts"; alias = Some "b"; filter = None };
               })
        in
        Alcotest.(check bool) "nl > hj" true (nl.Core.Cost.cost > hj.Core.Cost.cost);
        Alcotest.(check bool) "same rows" true
          (Float.abs (nl.Core.Cost.rows -. hj.Core.Cost.rows) < 1e-6));
    t "explain renders estimates" (fun () ->
        let catalog = cost_catalog () in
        let plan =
          Sqlfront.Binder.bind catalog
            (Sqlfront.Parser.parse
               "SELECT grp, COUNT(*) FROM pts GROUP BY grp HAVING COUNT(*) >= 10")
        in
        let s = Core.Cost.explain catalog plan in
        Alcotest.(check bool) "has rows≈" true (contains s "rows≈");
        Alcotest.(check bool) "has HashAggregate" true (contains s "HashAggregate")) ]

let adaptive_tests =
  [ t "adaptive gate drops an unselective reducer" (fun () ->
        (* threshold 1: every item appears at least once, so the reducer
           keeps every group — the gate must drop it *)
        let catalog = random_catalog 61 in
        let q =
          Sqlfront.Parser.parse
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 1"
        in
        let d =
          Core.Optimizer.decide ~adaptive:true catalog q
            ~tech:(Core.Optimizer.only `Apriori) ~nljp_config:Core.Nljp.default_config
        in
        Alcotest.(check int) "no rewrites kept" 0
          (List.length d.Core.Optimizer.apriori_rewrites);
        let d' =
          Core.Optimizer.decide ~adaptive:false catalog q
            ~tech:(Core.Optimizer.only `Apriori) ~nljp_config:Core.Nljp.default_config
        in
        Alcotest.(check bool) "kept without gate" true
          (d'.Core.Optimizer.apriori_rewrites <> []));
    t "adaptive gate keeps a selective reducer" (fun () ->
        let catalog = random_catalog 62 in
        let q =
          Sqlfront.Parser.parse
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 12"
        in
        let d =
          Core.Optimizer.decide ~adaptive:true catalog q
            ~tech:(Core.Optimizer.only `Apriori) ~nljp_config:Core.Nljp.default_config
        in
        Alcotest.(check bool) "kept" true (d.Core.Optimizer.apriori_rewrites <> []));
    t "adaptive runs still return correct results" (fun () ->
        let catalog = random_catalog 63 in
        let sql =
          "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
           WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 3"
        in
        let q = Sqlfront.Parser.parse sql in
        let base = Core.Runner.run_baseline catalog q in
        let r, _ = Core.Runner.run ~adaptive_apriori:true catalog q in
        check_bag "adaptive" base r) ]

let suite = stats_tests @ cost_tests @ adaptive_tests
