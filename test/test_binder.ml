open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let catalog_with tables =
  let catalog = Catalog.create () in
  List.iter (fun (name, keys, r) -> Catalog.add_table catalog ~keys name r) tables;
  catalog

let emp () =
  catalog_with
    [ ( "emp",
        [ [ "id" ] ],
        rel [ "id"; "dept"; "salary" ]
          [ [ iv 1; sv "eng"; iv 100 ]; [ iv 2; sv "eng"; iv 120 ];
            [ iv 3; sv "ops"; iv 90 ]; [ iv 4; sv "hr"; iv 80 ] ] );
      ( "dept",
        [ [ "name" ] ],
        rel [ "name"; "floor" ] [ [ sv "eng"; iv 3 ]; [ sv "ops"; iv 1 ] ] ) ]

let sql_results =
  [ t "projection and filter" (fun () ->
        check_rows "result"
          (rel [ "id" ] [ [ iv 1 ]; [ iv 2 ] ])
          (run_sql (emp ()) "SELECT id FROM emp WHERE salary >= 100"));
    t "computed select item" (fun () ->
        check_rows "result"
          (rel [ "x" ] [ [ iv 200 ]; [ iv 240 ]; [ iv 180 ]; [ iv 160 ] ])
          (run_sql (emp ()) "SELECT salary * 2 AS x FROM emp"));
    t "equi join via hash join" (fun () ->
        let plan =
          Sqlfront.Binder.bind (emp ())
            (Sqlfront.Parser.parse
               "SELECT e.id, d.floor FROM emp e, dept d WHERE e.dept = d.name")
        in
        (match plan with
         | Plan.Project (_, Plan.Hash_join _) -> ()
         | _ -> Alcotest.failf "expected hash join, got:\n%s" (Plan.explain plan));
        check_rows "rows"
          (rel [ "id"; "floor" ] [ [ iv 1; iv 3 ]; [ iv 2; iv 3 ]; [ iv 3; iv 1 ] ])
          (run_sql (emp ()) "SELECT e.id, d.floor FROM emp e, dept d WHERE e.dept = d.name"));
    t "group by + having" (fun () ->
        check_rows "result"
          (rel [ "dept"; "n" ] [ [ sv "eng"; iv 2 ] ])
          (run_sql (emp ())
             "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) >= 2"));
    t "having may use aggregates not in select" (fun () ->
        check_rows "result"
          (rel [ "dept" ] [ [ sv "eng" ] ])
          (run_sql (emp ()) "SELECT dept FROM emp GROUP BY dept HAVING SUM(salary) > 150"));
    t "global aggregate" (fun () ->
        check_rows "result"
          (rel [ "n"; "s" ] [ [ iv 4; iv 390 ] ])
          (run_sql (emp ()) "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp"));
    t "avg returns float" (fun () ->
        check_rows "result"
          (rel [ "a" ] [ [ fv 97.5 ] ])
          (run_sql (emp ()) "SELECT AVG(salary) AS a FROM emp"));
    t "order by limit" (fun () ->
        let r =
          run_sql (emp ()) "SELECT id FROM emp ORDER BY salary DESC LIMIT 2"
        in
        check_rows "top2" (rel [ "id" ] [ [ iv 2 ]; [ iv 1 ] ]) r);
    t "distinct" (fun () ->
        Alcotest.(check int) "3 depts" 3
          (Relation.cardinality (run_sql (emp ()) "SELECT DISTINCT dept FROM emp")));
    t "in subquery" (fun () ->
        check_rows "result"
          (rel [ "id" ] [ [ iv 1 ]; [ iv 2 ]; [ iv 3 ] ])
          (run_sql (emp ())
             "SELECT id FROM emp WHERE dept IN (SELECT name FROM dept)"));
    t "tuple in subquery" (fun () ->
        check_rows "result"
          (rel [ "id" ] [ [ iv 1 ] ])
          (run_sql (emp ())
             "SELECT id FROM emp WHERE (dept, salary) IN (SELECT name, floor * 0 + 100 FROM dept)"));
    t "cte used twice materialized once" (fun () ->
        let r =
          run_sql (emp ())
            "WITH rich AS (SELECT id, salary FROM emp WHERE salary >= 100) \
             SELECT a.id, b.id FROM rich a, rich b WHERE a.salary < b.salary"
        in
        check_rows "pairs" (rel [ "id"; "id" ] [ [ iv 1; iv 2 ] ]) r);
    t "from subquery" (fun () ->
        check_rows "result"
          (rel [ "d" ] [ [ sv "eng" ] ])
          (run_sql (emp ())
             "SELECT s.d FROM (SELECT dept AS d, COUNT(*) AS n FROM emp GROUP BY dept) s \
              WHERE s.n >= 2"));
    t "self join with aliases" (fun () ->
        let r =
          run_sql (emp ())
            "SELECT a.id, b.id FROM emp a, emp b WHERE a.salary < b.salary AND a.dept = b.dept"
        in
        check_rows "pairs" (rel [ "id"; "id" ] [ [ iv 1; iv 2 ] ]) r);
    t "unknown table raises" (fun () ->
        match run_sql (emp ()) "SELECT x FROM nope" with
        | exception Sqlfront.Binder.Bind_error _ -> ()
        | _ -> Alcotest.fail "expected bind error");
    t "unknown column raises" (fun () ->
        match run_sql (emp ()) "SELECT nope FROM emp" with
        | exception Schema.Unknown_column _ -> ()
        | _ -> Alcotest.fail "expected unknown column");
    t "ambiguous column raises" (fun () ->
        match run_sql (emp ()) "SELECT id FROM emp a, emp b WHERE a.id = b.id" with
        | exception Schema.Ambiguous_column _ -> ()
        | _ -> Alcotest.fail "expected ambiguity error") ]

let index_plans =
  [ t "inequality join uses sorted index when available" (fun () ->
        let catalog = emp () in
        Catalog.build_sorted_index catalog "emp" [ "salary" ];
        let plan =
          Sqlfront.Binder.bind catalog
            (Sqlfront.Parser.parse
               "SELECT a.id, COUNT(*) FROM emp a, emp b WHERE a.salary < b.salary GROUP BY a.id HAVING COUNT(*) >= 1")
        in
        let rec has_index = function
          | Plan.Index_nl_join _ -> true
          | Plan.Project (_, p) | Plan.Filter (_, p) | Plan.Distinct p
          | Plan.Order_by (_, p) | Plan.Limit (_, p) | Plan.Rename (_, p) ->
            has_index p
          | Plan.Group { input; _ } -> has_index input
          | Plan.Nl_join { left; right; _ }
          | Plan.Hash_join { left; right; _ }
          | Plan.Merge_join { left; right; _ } ->
            has_index left || has_index right
          | Plan.Semijoin { sub; input; _ } -> has_index sub || has_index input
          | Plan.Scan _ | Plan.Values _ -> false
        in
        Alcotest.(check bool) "index join" true (has_index plan));
    t "index join result equals nl join result" (fun () ->
        let sql =
          "SELECT a.id, COUNT(*) FROM emp a, emp b WHERE a.salary < b.salary \
           GROUP BY a.id HAVING COUNT(*) >= 1"
        in
        let without = run_sql (emp ()) sql in
        let catalog = emp () in
        Catalog.build_sorted_index catalog "emp" [ "salary" ];
        let with_idx = run_sql catalog sql in
        check_bag "same" without with_idx);
    t "merge join preference produces Merge_join plans" (fun () ->
        let sql = "SELECT e.id, d.floor FROM emp e, dept d WHERE e.dept = d.name" in
        let plan =
          Sqlfront.Binder.bind ~join_pref:`Merge (emp ()) (Sqlfront.Parser.parse sql)
        in
        (match plan with
         | Plan.Project (_, Plan.Merge_join _) -> ()
         | _ -> Alcotest.failf "expected merge join:\n%s" (Plan.explain plan));
        check_bag "same results"
          (run_sql (emp ()) sql)
          (Sqlfront.Binder.run ~join_pref:`Merge (emp ()) (Sqlfront.Parser.parse sql)));
    t "parallel execution equals sequential" (fun () ->
        let sql =
          "SELECT a.dept, COUNT(*) FROM emp a, emp b WHERE a.salary <= b.salary \
           GROUP BY a.dept HAVING COUNT(*) >= 1"
        in
        let q = Sqlfront.Parser.parse sql in
        let seq = Sqlfront.Binder.run (emp ()) q in
        let par = Sqlfront.Binder.run ~workers:4 (emp ()) q in
        check_bag "par = seq" seq par) ]

let suite = sql_results @ index_plans
