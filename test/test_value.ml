open Relalg

let t name f = Alcotest.test_case name `Quick f

let check_v = Alcotest.check Helpers.value_testable

let arithmetic =
  [ t "add ints" (fun () -> check_v "2+3" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3)));
    t "add mixed promotes to float" (fun () ->
        check_v "2+0.5" (Value.Float 2.5) (Value.add (Value.Int 2) (Value.Float 0.5)));
    t "sub" (fun () -> check_v "5-7" (Value.Int (-2)) (Value.sub (Value.Int 5) (Value.Int 7)));
    t "mul" (fun () -> check_v "4*3" (Value.Int 12) (Value.mul (Value.Int 4) (Value.Int 3)));
    t "int division truncates" (fun () ->
        check_v "7/2" (Value.Int 3) (Value.div (Value.Int 7) (Value.Int 2)));
    t "float division" (fun () ->
        check_v "7.0/2" (Value.Float 3.5) (Value.div (Value.Float 7.) (Value.Int 2)));
    t "null propagates through arithmetic" (fun () ->
        check_v "null+1" Value.Null (Value.add Value.Null (Value.Int 1)));
    t "division by zero raises" (fun () ->
        Alcotest.check_raises "7/0" (Value.Type_error "div: division by zero") (fun () ->
            ignore (Value.div (Value.Int 7) (Value.Int 0))));
    t "neg" (fun () -> check_v "-(3)" (Value.Int (-3)) (Value.neg (Value.Int 3)));
    t "string arithmetic raises" (fun () ->
        match Value.add (Value.Str "a") (Value.Int 1) with
        | exception Value.Type_error _ -> ()
        | v -> Alcotest.failf "expected Type_error, got %s" (Value.to_string v)) ]

let comparison =
  [ t "int float cross comparison" (fun () ->
        Alcotest.(check (option int)) "3 vs 3.0" (Some 0)
          (Value.compare_sql (Value.Int 3) (Value.Float 3.0)));
    t "null comparisons are unknown" (fun () ->
        Alcotest.(check (option int)) "null vs 1" None
          (Value.compare_sql Value.Null (Value.Int 1)));
    t "compare_sql_code null sentinel" (fun () ->
        Alcotest.(check int) "code" min_int
          (Value.compare_sql_code Value.Null (Value.Int 1)));
    t "total order puts null first" (fun () ->
        Alcotest.(check bool) "null < 0" true
          (Value.compare_total Value.Null (Value.Int 0) < 0));
    t "string ordering" (fun () ->
        Alcotest.(check bool) "a < b" true
          (Value.compare_total (Value.Str "a") (Value.Str "b") < 0));
    t "hash consistent with equality across int/float" (fun () ->
        Alcotest.(check int) "hash 3 = hash 3.0" (Value.hash (Value.Int 3))
          (Value.hash (Value.Float 3.0))) ]

let parsing =
  [ t "csv int" (fun () -> check_v "42" (Value.Int 42) (Value.of_csv_field "42"));
    t "csv float" (fun () -> check_v "4.5" (Value.Float 4.5) (Value.of_csv_field "4.5"));
    t "csv bool" (fun () -> check_v "true" (Value.Bool true) (Value.of_csv_field "true"));
    t "csv empty is null" (fun () -> check_v "" Value.Null (Value.of_csv_field ""));
    t "csv fallback string" (fun () ->
        check_v "abc" (Value.Str "abc") (Value.of_csv_field "abc"));
    t "to_string roundtrip int" (fun () ->
        Alcotest.(check string) "17" "17" (Value.to_string (Value.Int 17))) ]

let props =
  let value_gen =
    QCheck.Gen.(
      oneof
        [ map (fun i -> Value.Int i) (int_range (-1000) 1000);
          map (fun f -> Value.Float f) (float_bound_inclusive 100.);
          map (fun s -> Value.Str s) (string_size (int_range 0 5));
          return Value.Null ])
  in
  let arb = QCheck.make ~print:Value.to_string value_gen in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compare_total is antisymmetric" ~count:500
         (QCheck.pair arb arb)
         (fun (a, b) ->
           Value.compare_total a b = -Value.compare_total b a
           || Value.compare_total a b = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"equal_total values hash equal" ~count:500
         (QCheck.pair arb arb)
         (fun (a, b) ->
           (not (Value.equal_total a b)) || Value.hash a = Value.hash b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"add commutes on numbers" ~count:500
         (QCheck.pair (QCheck.make QCheck.Gen.(map (fun i -> Value.Int i) small_int))
            (QCheck.make QCheck.Gen.(map (fun i -> Value.Int i) small_int)))
         (fun (a, b) -> Value.equal_total (Value.add a b) (Value.add b a))) ]

let suite = arithmetic @ comparison @ parsing @ props
