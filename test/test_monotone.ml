open Core

let t name f = Alcotest.test_case name `Quick f

let cls ?(nonneg = fun _ -> false) sql =
  Monotone.classify ~nonneg (Sqlfront.Parser.parse_pred sql)

let check = Alcotest.(check string)
let show c = Monotone.to_string c

(* Table 2, with the MIN rows in the mathematically consistent direction
   (see the note in monotone.mli). *)
let table2 =
  [ t "COUNT(*) >= c monotone" (fun () ->
        check "m" "monotone" (show (cls "COUNT(*) >= 20")));
    t "COUNT(*) <= c anti-monotone" (fun () ->
        check "a" "anti-monotone" (show (cls "COUNT(*) <= 20")));
    t "COUNT(a) >= c monotone" (fun () ->
        check "m" "monotone" (show (cls "COUNT(a) >= 5")));
    t "COUNT(a) <= c anti-monotone" (fun () ->
        check "a" "anti-monotone" (show (cls "COUNT(a) <= 5")));
    t "COUNT(DISTINCT a) >= c monotone" (fun () ->
        check "m" "monotone" (show (cls "COUNT(DISTINCT a) >= 5")));
    t "COUNT(DISTINCT a) <= c anti-monotone" (fun () ->
        check "a" "anti-monotone" (show (cls "COUNT(DISTINCT a) <= 5")));
    t "SUM >= c monotone only for non-negative domains" (fun () ->
        check "neither without fact" "neither" (show (cls "SUM(a) >= 5"));
        check "monotone with fact" "monotone"
          (show (cls ~nonneg:(fun _ -> true) "SUM(a) >= 5")));
    t "SUM <= c anti-monotone with non-negative domain" (fun () ->
        check "a" "anti-monotone" (show (cls ~nonneg:(fun _ -> true) "SUM(a) <= 5")));
    t "MAX >= c monotone" (fun () -> check "m" "monotone" (show (cls "MAX(a) >= 5")));
    t "MAX <= c anti-monotone" (fun () ->
        check "a" "anti-monotone" (show (cls "MAX(a) <= 5")));
    t "MIN >= c anti-monotone" (fun () ->
        check "a" "anti-monotone" (show (cls "MIN(a) >= 5")));
    t "MIN <= c monotone" (fun () -> check "m" "monotone" (show (cls "MIN(a) <= 5"))) ]

let combinations =
  [ t "strict thresholds classify like non-strict" (fun () ->
        check "m" "monotone" (show (cls "COUNT(*) > 20"));
        check "a" "anti-monotone" (show (cls "COUNT(*) < 20")));
    t "flipped operand order" (fun () ->
        check "m" "monotone" (show (cls "20 <= COUNT(*)")));
    t "equality is neither" (fun () -> check "n" "neither" (show (cls "COUNT(*) = 20")));
    t "AVG thresholds are neither" (fun () ->
        check "n" "neither" (show (cls "AVG(a) >= 5")));
    t "conjunction of same class keeps class" (fun () ->
        check "m" "monotone" (show (cls "COUNT(*) >= 20 AND MAX(a) >= 3")));
    t "disjunction of same class keeps class" (fun () ->
        check "a" "anti-monotone" (show (cls "COUNT(*) <= 20 OR MAX(a) <= 3")));
    t "mixed classes are neither" (fun () ->
        check "n" "neither" (show (cls "COUNT(*) >= 20 AND COUNT(*) <= 100")));
    t "negation flips" (fun () ->
        check "a" "anti-monotone" (show (cls "NOT COUNT(*) > 20")));
    t "aggregate-free atoms are set-insensitive" (fun () ->
        check "both" "set-insensitive" (show (cls "a >= 5")));
    t "set-insensitive combines with either class" (fun () ->
        check "m" "monotone" (show (cls "a >= 5 AND COUNT(*) >= 20"));
        check "a" "anti-monotone" (show (cls "a >= 5 AND COUNT(*) <= 20")));
    t "sum of products of non-negative columns" (fun () ->
        check "m" "monotone"
          (show (cls ~nonneg:(fun _ -> true) "SUM(numsales * price) >= 1000000")));
    t "sum with subtraction is unknown" (fun () ->
        check "n" "neither" (show (cls ~nonneg:(fun _ -> true) "SUM(a - b) >= 5")));
    t "aggregate vs aggregate is neither" (fun () ->
        check "n" "neither" (show (cls "COUNT(*) >= MAX(a)"))) ]

(* Semantic spot-check of Definition 1 by brute force: for random small
   multisets T ⊆ T', a condition classified monotone must satisfy
   Φ(T) ⇒ Φ(T'). *)
let semantic_props =
  let eval_phi sql values =
    (* values: the multiset of a-values *)
    let open Relalg in
    let rel = Relation.of_rows (Schema.of_names [ "a" ]) (List.map (fun x -> [| Value.Int x |]) values) in
    let grouped =
      Ops.group_by ~group_cols:[]
        ~aggs:
          [ (Agg.Count_star, Schema.col "__agg0");
            (Agg.Sum (Expr.col "a"), Schema.col "__agg1");
            (Agg.Min (Expr.col "a"), Schema.col "__agg2");
            (Agg.Max (Expr.col "a"), Schema.col "__agg3") ]
        rel
    in
    let p = Sqlfront.Parser.parse_pred sql in
    let mapping =
      [ (Sqlfront.Ast.A_count_star, "__agg0");
        (Sqlfront.Ast.A_sum (Sqlfront.Ast.col "a"), "__agg1");
        (Sqlfront.Ast.A_min (Sqlfront.Ast.col "a"), "__agg2");
        (Sqlfront.Ast.A_max (Sqlfront.Ast.col "a"), "__agg3") ]
    in
    let p' =
      Aggmap.pred
        (fun a ->
          match List.find_opt (fun (x, _) -> Sqlfront.Ast.equal_agg x a) mapping with
          | Some (_, n) -> Sqlfront.Ast.col n
          | None -> invalid_arg "unsupported agg in test")
        p
    in
    let e = Sqlfront.Binder.pred_expr (Relalg.Catalog.create ()) p' in
    match values with
    | [] -> false (* empty groups do not arise *)
    | _ -> Expr.eval_bool grouped.Relation.schema (Relation.rows grouped).(0) e
  in
  let conditions =
    [ "COUNT(*) >= 3"; "COUNT(*) <= 3"; "SUM(a) >= 10"; "SUM(a) <= 10";
      "MIN(a) >= 2"; "MIN(a) <= 2"; "MAX(a) >= 4"; "MAX(a) <= 4" ]
  in
  List.map
    (fun sql ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:(Printf.sprintf "Definition 1 brute force: %s" sql)
           ~count:200
           (QCheck.pair
              (QCheck.list_of_size (QCheck.Gen.int_range 1 6) (QCheck.int_range 0 6))
              (QCheck.list_of_size (QCheck.Gen.int_range 0 4) (QCheck.int_range 0 6)))
           (fun (base, extra) ->
             let cls = cls ~nonneg:(fun _ -> true) sql in
             let small = eval_phi sql base in
             let large = eval_phi sql (base @ extra) in
             (match cls with
              | Monotone.Monotone -> (not small) || large
              | Monotone.Anti_monotone -> (not large) || small
              | Monotone.Both | Monotone.Neither -> true))))
    conditions

let suite = table2 @ combinations @ semantic_props
