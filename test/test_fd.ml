open Fdreason

let t name f = Alcotest.test_case name `Quick f

let fd l r = Fd.make l r

let suite =
  [ t "closure reaches transitively" (fun () ->
        let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ] ] in
        Alcotest.(check (list string)) "a+" [ "a"; "b"; "c" ] (Fd.closure fds [ "a" ]));
    t "closure requires full lhs" (fun () ->
        let fds = [ fd [ "a"; "b" ] [ "c" ] ] in
        Alcotest.(check (list string)) "a+" [ "a" ] (Fd.closure fds [ "a" ]));
    t "empty lhs applies always" (fun () ->
        let fds = [ fd [] [ "k" ] ] in
        Alcotest.(check (list string)) "x+" [ "k"; "x" ] (Fd.closure fds [ "x" ]));
    t "implies" (fun () ->
        let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ] ] in
        Alcotest.(check bool) "a->c" true (Fd.implies fds (fd [ "a" ] [ "c" ]));
        Alcotest.(check bool) "c->a fails" false (Fd.implies fds (fd [ "c" ] [ "a" ])));
    t "superkey" (fun () ->
        let fds = [ fd [ "id" ] [ "name"; "dept" ] ] in
        Alcotest.(check bool) "id superkey" true
          (Fd.superkey fds ~all:[ "id"; "name"; "dept" ] [ "id" ]);
        Alcotest.(check bool) "name not" false
          (Fd.superkey fds ~all:[ "id"; "name"; "dept" ] [ "name" ]));
    t "equalities give both directions" (fun () ->
        let fds = Fd.of_equalities [ ("a", "b") ] in
        Alcotest.(check bool) "a->b" true (Fd.implies fds (fd [ "a" ] [ "b" ]));
        Alcotest.(check bool) "b->a" true (Fd.implies fds (fd [ "b" ] [ "a" ])));
    t "constants are determined by nothing" (fun () ->
        let fds = Fd.of_equalities ~constants:[ "k" ] [] in
        Alcotest.(check bool) "∅->k" true (Fd.implies fds (fd [] [ "k" ])));
    t "qualify renames both sides" (fun () ->
        let fds = Fd.qualify (fun a -> "t." ^ a) [ fd [ "x" ] [ "y" ] ] in
        Alcotest.(check bool) "t.x -> t.y" true (Fd.implies fds (fd [ "t.x" ] [ "t.y" ])));
    t "join-equality inference (Appendix D example)" (fun () ->
        (* S1(id, attr) key; S1.id = S2.id equality; then (S1.id, S2.attr)
           determines S2's attributes. *)
        let fds =
          Fd.qualify (fun a -> "s1." ^ a) [ fd [ "id"; "attr" ] [ "id"; "attr"; "val" ] ]
          @ Fd.qualify (fun a -> "s2." ^ a) [ fd [ "id"; "attr" ] [ "id"; "attr"; "val" ] ]
          @ Fd.of_equalities [ ("s1.id", "s2.id") ]
        in
        Alcotest.(check bool) "s1.id,s2.attr -> s2.val" true
          (Fd.implies fds (fd [ "s1.id"; "s2.attr" ] [ "s2.val" ])));
    t "project keeps expressible fds" (fun () ->
        let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ] ] in
        let projected = Fd.project fds [ "a"; "c" ] in
        Alcotest.(check bool) "a->c kept" true (Fd.implies projected (fd [ "a" ] [ "c" ]));
        Alcotest.(check bool) "no b" true
          (List.for_all (fun f -> not (List.mem "b" (f.Fd.lhs @ f.Fd.rhs))) projected));
    t "closure is idempotent" (fun () ->
        let fds = [ fd [ "a" ] [ "b" ]; fd [ "b"; "c" ] [ "d" ] ] in
        let once = Fd.closure fds [ "a"; "c" ] in
        Alcotest.(check (list string)) "idempotent" once (Fd.closure fds once)) ]
