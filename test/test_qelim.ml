open Qelim

let t name f = Alcotest.test_case name `Quick f

let rat_tests =
  [ t "normalization" (fun () ->
        Alcotest.(check string) "2/4 = 1/2" "1/2" (Rat.to_string (Rat.make 2 4));
        Alcotest.(check string) "-2/-4 = 1/2" "1/2" (Rat.to_string (Rat.make (-2) (-4)));
        Alcotest.(check string) "3/-6 = -1/2" "-1/2" (Rat.to_string (Rat.make 3 (-6))));
    t "arithmetic" (fun () ->
        Alcotest.(check bool) "1/2 + 1/3 = 5/6" true
          (Rat.equal (Rat.add (Rat.make 1 2) (Rat.make 1 3)) (Rat.make 5 6));
        Alcotest.(check bool) "2/3 * 3/4 = 1/2" true
          (Rat.equal (Rat.mul (Rat.make 2 3) (Rat.make 3 4)) (Rat.make 1 2)));
    t "division and inverse" (fun () ->
        Alcotest.(check bool) "(1/2)/(1/4) = 2" true
          (Rat.equal (Rat.div (Rat.make 1 2) (Rat.make 1 4)) (Rat.of_int 2));
        Alcotest.check_raises "inv 0" (Invalid_argument "Rat.inv: zero") (fun () ->
            ignore (Rat.inv Rat.zero)));
    t "of_float exact for decimals" (fun () ->
        Alcotest.(check bool) "0.25" true (Rat.equal (Rat.of_float 0.25) (Rat.make 1 4));
        Alcotest.(check bool) "3.0" true (Rat.equal (Rat.of_float 3.0) (Rat.of_int 3)));
    t "compare" (fun () ->
        Alcotest.(check bool) "1/3 < 1/2" true (Rat.compare (Rat.make 1 3) (Rat.make 1 2) < 0)) ]

let rat_props =
  let arb = QCheck.map (fun (n, d) -> Rat.make n (if d = 0 then 1 else d))
      QCheck.(pair (int_range (-50) 50) (int_range (-20) 20)) in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rat add associates" ~count:300 (QCheck.triple arb arb arb)
         (fun (a, b, c) ->
           Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rat mul distributes over add" ~count:300
         (QCheck.triple arb arb arb)
         (fun (a, b, c) ->
           Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))) ]

let v = Linexpr.var
let c i = Linexpr.const (Rat.of_int i)

let linexpr_tests =
  [ t "coefficients combine" (fun () ->
        let e = Linexpr.add (Linexpr.scale (Rat.of_int 2) (v "x")) (v "x") in
        Alcotest.(check bool) "3x" true (Rat.equal (Linexpr.coeff e "x") (Rat.of_int 3)));
    t "zero coefficients dropped" (fun () ->
        let e = Linexpr.sub (v "x") (v "x") in
        Alcotest.(check (list string)) "no vars" [] (Linexpr.vars e));
    t "subst" (fun () ->
        (* x + y with x := 2y + 1  ⇒  3y + 1 *)
        let e = Linexpr.add (v "x") (v "y") in
        let repl = Linexpr.add (Linexpr.scale (Rat.of_int 2) (v "y")) (c 1) in
        let e' = Linexpr.subst "x" repl e in
        Alcotest.(check bool) "3y" true (Rat.equal (Linexpr.coeff e' "y") (Rat.of_int 3));
        Alcotest.(check bool) "+1" true (Rat.equal (Linexpr.constant e') Rat.one));
    t "eval" (fun () ->
        let e = Linexpr.add (Linexpr.scale (Rat.of_int 2) (v "x")) (c 5) in
        let env _ = Rat.of_int 3 in
        Alcotest.(check bool) "11" true (Rat.equal (Linexpr.eval env e) (Rat.of_int 11))) ]

(* FME must preserve satisfiability: eliminating x from a conjunction, any
   solution of the residue extends to a solution with some x, and any
   solution of the original projects to one of the residue. *)
let atom_gen =
  let open QCheck.Gen in
  let term =
    map2
      (fun cx cy ->
        Linexpr.add
          (Linexpr.scale (Rat.of_int cx) (v "x"))
          (Linexpr.scale (Rat.of_int cy) (v "y")))
      (int_range (-3) 3) (int_range (-3) 3)
  in
  map3
    (fun e k op ->
      let e = Linexpr.add e (c k) in
      { Atom.e; op })
    term (int_range (-5) 5)
    (frequency [ (4, return Atom.Le); (3, return Atom.Lt); (1, return Atom.Eq) ])

let conj_sat atoms env = List.for_all (Atom.eval env) atoms

let fme_props =
  let arb =
    QCheck.make
      ~print:(fun l -> String.concat " & " (List.map Atom.to_string l))
      QCheck.Gen.(list_size (int_range 0 5) atom_gen)
  in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"FME residue holds whenever original holds" ~count:500
         (QCheck.pair arb (QCheck.pair (QCheck.int_range (-6) 6) (QCheck.int_range (-6) 6)))
         (fun (atoms, (xv, yv)) ->
           let env name =
             if name = "x" then Rat.of_int xv
             else if name = "y" then Rat.of_int yv
             else Rat.zero
           in
           let residue = Fme.eliminate "x" atoms in
           (* soundness direction: if the original is satisfied at (x, y),
              the residue must be satisfied at y *)
           (not (conj_sat atoms env)) || conj_sat residue env));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"FME residue satisfiable implies witness exists (grid)"
         ~count:300
         (QCheck.pair arb (QCheck.int_range (-6) 6))
         (fun (atoms, yv) ->
           (* completeness over a rational grid: if the residue holds at y,
              some rational x satisfies the original.  We search a dense
              grid of candidate rationals, which suffices for these small
              coefficients. *)
           let env_y name = if name = "y" then Rat.of_int yv else Rat.zero in
           let residue = Fme.eliminate "x" atoms in
           if not (conj_sat residue env_y) then true
           else begin
             let candidates =
               List.concat_map
                 (fun n -> List.map (fun d -> Rat.make n d) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 12 ])
                 (List.init 241 (fun i -> i - 120))
             in
             List.exists
               (fun xv ->
                 let env name = if name = "x" then xv else env_y name in
                 conj_sat atoms env)
               candidates
           end)) ]

(* The paper's worked examples. *)
let skyband_simple_theta x y xr yr =
  Formula.conj
    [ Formula.atom (Atom.lt (v x) (v xr)); Formula.atom (Atom.lt (v y) (v yr)) ]

let skyband_full_theta x y xr yr =
  (* L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) *)
  Formula.conj
    [ Formula.atom (Atom.le (v x) (v xr));
      Formula.atom (Atom.le (v y) (v yr));
      Formula.disj
        [ Formula.atom (Atom.lt (v x) (v xr)); Formula.atom (Atom.lt (v y) (v yr)) ] ]

let eval_xyxy formula (x, y, x', y') =
  Formula.eval
    (fun name ->
      match name with
      | "x" -> Rat.of_int x
      | "y" -> Rat.of_int y
      | "x'" -> Rat.of_int x'
      | "y'" -> Rat.of_int y'
      | _ -> Rat.zero)
    formula

let expected_subsume (x, y, x', y') = x <= x' && y <= y'

let derivations =
  [ t "Example 11: simplified skyband join condition" (fun () ->
        let p =
          Qe.forall_implies ~vars:[ "xr"; "yr" ]
            ~premise:(skyband_simple_theta "x'" "y'" "xr" "yr")
            ~conclusion:(skyband_simple_theta "x" "y" "xr" "yr")
        in
        (* must be equivalent to x <= x' ∧ y <= y' on a grid *)
        List.iter
          (fun pt ->
            Alcotest.(check bool)
              (Printf.sprintf "at %s" (Formula.to_string p))
              (expected_subsume pt) (eval_xyxy p pt))
          (List.concat_map
             (fun a ->
               List.concat_map
                 (fun b ->
                   List.concat_map
                     (fun cc -> List.map (fun d -> (a, b, cc, d)) [ 0; 1; 2 ])
                     [ 0; 1; 2 ])
                 [ 0; 1; 2 ])
             [ 0; 1; 2 ]));
    t "Appendix B: full skyband join condition" (fun () ->
        let p =
          Qe.forall_implies ~vars:[ "xr"; "yr" ]
            ~premise:(skyband_full_theta "x'" "y'" "xr" "yr")
            ~conclusion:(skyband_full_theta "x" "y" "xr" "yr")
        in
        List.iter
          (fun pt ->
            Alcotest.(check bool) "appendix B grid" (expected_subsume pt) (eval_xyxy p pt))
          [ (0, 0, 0, 0); (0, 0, 1, 1); (1, 1, 0, 0); (2, 1, 2, 2); (1, 2, 2, 1);
            (2, 2, 1, 1); (0, 2, 0, 2); (2, 0, 1, 1); (1, 1, 1, 1); (0, 1, 1, 0) ]);
    t "equality join condition yields equality test" (fun () ->
        (* Θ: w = r  ⇒  p⪰(w,w') ≡ w = w' *)
        let theta w r = Formula.atom (Atom.eq (v w) (v r)) in
        let p =
          Qe.forall_implies ~vars:[ "r" ] ~premise:(theta "x'" "r")
            ~conclusion:(theta "x" "r")
        in
        List.iter
          (fun (a, b) ->
            let env name = if name = "x" then Rat.of_int a else Rat.of_int b in
            Alcotest.(check bool) "eq" (a = b) (Formula.eval env p))
          [ (0, 0); (1, 2); (2, 1); (3, 3) ]);
    t "implies_atom detects entailment" (fun () ->
        let f =
          Formula.conj
            [ Formula.atom (Atom.le (v "a") (v "b"));
              Formula.atom (Atom.le (v "b") (v "c")) ]
        in
        Alcotest.(check bool) "a<=c" true (Qe.implies_atom f (Atom.le (v "a") (v "c")));
        Alcotest.(check bool) "not c<=a" false (Qe.implies_atom f (Atom.le (v "c") (v "a"))));
    t "eliminate_exists on one-sided bounds drops the variable" (fun () ->
        (* ∃x (x >= y) is always true over the reals *)
        let f = Formula.atom (Atom.le (v "y") (v "x")) in
        Alcotest.(check bool) "true" true
          (Formula.equal (Qe.eliminate_exists [ "x" ] f) Formula.True));
    t "eliminate_exists detects contradiction" (fun () ->
        (* ∃x (x < y ∧ y < x) is false *)
        let f =
          Formula.conj
            [ Formula.atom (Atom.lt (v "x") (v "y"));
              Formula.atom (Atom.lt (v "y") (v "x")) ]
        in
        Alcotest.(check bool) "false" true
          (Formula.equal (Qe.eliminate_exists [ "x" ] f) Formula.False)) ]

let formula_tests =
  [ t "nnf removes negations" (fun () ->
        let f =
          Formula.Not
            (Formula.conj
               [ Formula.atom (Atom.le (v "a") (v "b"));
                 Formula.atom (Atom.eq (v "a") (v "c")) ])
        in
        let rec no_not = function
          | Formula.Not _ -> false
          | Formula.And gs | Formula.Or gs -> List.for_all no_not gs
          | _ -> true
        in
        Alcotest.(check bool) "no Not" true (no_not (Formula.nnf f)));
    t "nnf preserves semantics" (fun () ->
        let f =
          Formula.Not
            (Formula.disj
               [ Formula.atom (Atom.lt (v "a") (v "b"));
                 Formula.Not (Formula.atom (Atom.eq (v "a") (v "b"))) ])
        in
        let envs = [ (0, 0); (0, 1); (1, 0) ] in
        List.iter
          (fun (a, b) ->
            let env name = if name = "a" then Rat.of_int a else Rat.of_int b in
            Alcotest.(check bool) "same" (Formula.eval env f)
              (Formula.eval env (Formula.nnf f)))
          envs);
    t "dnf covers disjuncts" (fun () ->
        let f =
          Formula.conj
            [ Formula.disj
                [ Formula.atom (Atom.le (v "a") (v "b"));
                  Formula.atom (Atom.le (v "b") (v "a")) ];
              Formula.atom (Atom.lt (v "c") (v "d")) ]
        in
        Alcotest.(check int) "2 disjuncts" 2 (List.length (Formula.dnf (Formula.nnf f))));
    t "simplify folds ground atoms" (fun () ->
        let f = Formula.atom (Atom.le (c 1) (c 2)) in
        Alcotest.(check bool) "true" true (Formula.equal (Formula.simplify f) Formula.True));
    t "simplify drops implied atoms" (fun () ->
        let f =
          Formula.conj
            [ Formula.atom (Atom.le (v "a") (c 5)); Formula.atom (Atom.le (v "a") (c 10)) ]
        in
        match Formula.simplify f with
        | Formula.Atom a ->
          Alcotest.(check bool) "kept tighter" true
            (Atom.equal a (Atom.normalize (Atom.le (v "a") (c 5))))
        | other -> Alcotest.failf "expected single atom, got %s" (Formula.to_string other)) ]

(* Random quantifier-free formulas over x, y for semantic-preservation
   properties of the normal forms. *)
let formula_gen =
  let open QCheck.Gen in
  let atom = atom_gen in
  let rec go n =
    if n <= 0 then map Formula.atom atom
    else
      frequency
        [ (3, map Formula.atom atom);
          (2, map2 (fun a b -> Formula.conj [ a; b ]) (go (n - 1)) (go (n - 1)));
          (2, map2 (fun a b -> Formula.disj [ a; b ]) (go (n - 1)) (go (n - 1)));
          (1, map (fun a -> Formula.Not a) (go (n - 1))) ]
  in
  go 3

let env_of (xv, yv) name =
  if name = "x" then Rat.of_int xv else if name = "y" then Rat.of_int yv else Rat.zero

let normal_form_props =
  let arb = QCheck.make ~print:Formula.to_string formula_gen in
  let pt = QCheck.pair (QCheck.int_range (-5) 5) (QCheck.int_range (-5) 5) in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"nnf preserves semantics (random formulas)" ~count:400
         (QCheck.pair arb pt)
         (fun (f, p) ->
           Formula.eval (env_of p) f = Formula.eval (env_of p) (Formula.nnf f)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"simplify preserves semantics (random formulas)"
         ~count:400 (QCheck.pair arb pt)
         (fun (f, p) ->
           let f' = Formula.nnf f in
           Formula.eval (env_of p) f' = Formula.eval (env_of p) (Formula.simplify f')));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"dnf preserves semantics (random formulas)" ~count:400
         (QCheck.pair arb pt)
         (fun (f, p) ->
           let f' = Formula.nnf f in
           let dnf = Formula.dnf f' in
           let dnf_eval =
             List.exists (fun conj -> List.for_all (Atom.eval (env_of p)) conj) dnf
           in
           Formula.eval (env_of p) f' = dnf_eval));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"eliminate_exists residue is implied by any witness (random)" ~count:300
         (QCheck.pair arb pt)
         (fun (f, (xv, yv)) ->
           (* if f holds at (x, y), then (∃x f) must hold at y *)
           let residue = Qe.eliminate_exists [ "x" ] f in
           (not (Formula.eval (env_of (xv, yv)) f))
           || Formula.eval (env_of (0, yv)) residue)) ]

let suite =
  rat_tests @ rat_props @ linexpr_tests @ fme_props @ derivations @ formula_tests
  @ normal_form_props
