(* Differential layout testing: every operator and every optimizer
   configuration must produce the same bag of rows whether base tables are
   stored row-primary or column-primary.  The columnar path adds zone-map
   block skipping and typed scan kernels, so this is the safety net that
   data skipping never drops or invents rows. *)
open Core
open Relalg
open Helpers

let pick rng xs = List.nth xs (Workload.Prng.int rng (List.length xs))

let random_value rng =
  match Workload.Prng.int rng 10 with
  | 0 | 1 | 2 | 3 -> iv (Workload.Prng.int rng 20 - 5)
  | 4 | 5 -> fv (float_of_int (Workload.Prng.int rng 20) /. 2.)
  | 6 | 7 -> sv (pick rng [ "a"; "b"; "c"; "d" ])
  | 8 -> Value.Null
  | _ -> Value.Bool (Workload.Prng.int rng 2 = 0)

(* Columns are mostly type-homogeneous (so typed vectors and dictionary
   blocks actually form) with occasional wildcard columns that force the
   mixed-block fallback. *)
let random_relation rng names =
  (* the first column is always numeric-or-null so arithmetic projections
     and join keys are well-typed; the rest roam freely *)
  let kinds =
    List.mapi
      (fun i _ ->
        if i = 0 then if Workload.Prng.int rng 2 = 0 then `Int else `Int_nulls
        else
          match Workload.Prng.int rng 6 with
          | 0 | 1 -> `Int
          | 2 -> `Float
          | 3 -> `Str
          | 4 -> `Mixed
          | _ -> `Int_nulls)
      names
  in
  let gen kind =
    match kind with
    | `Int -> iv (Workload.Prng.int rng 12)
    | `Float -> fv (float_of_int (Workload.Prng.int rng 12) /. 2.)
    | `Str -> sv (pick rng [ "a"; "b"; "c" ])
    | `Mixed -> random_value rng
    | `Int_nulls ->
      if Workload.Prng.int rng 5 = 0 then Value.Null
      else iv (Workload.Prng.int rng 12)
  in
  let n = 30 + Workload.Prng.int rng 200 in
  let rows = Array.init n (fun _ -> Array.of_list (List.map gen kinds)) in
  Relation.make (Schema.of_names names) rows

(* Small block size so multi-block relations (and thus real skipping
   decisions) occur at fuzz-sized inputs. *)
let columnar rel =
  Relation.of_cstore
    (Column.Cstore.of_rows ~block_size:16 rel.Relation.schema (Relation.rows rel))

let random_pred rng names =
  let conj () =
    let c = pick rng names in
    let op = pick rng Expr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    let v =
      match Workload.Prng.int rng 8 with
      | 0 -> Value.Null
      | 1 -> sv (pick rng [ "a"; "b"; "zz" ])
      | 2 -> fv (float_of_int (Workload.Prng.int rng 12) /. 2.)
      | _ -> iv (Workload.Prng.int rng 12)
    in
    if Workload.Prng.int rng 2 = 0 then
      Expr.Cmp (op, Expr.col c, Expr.Const v)
    else Expr.Cmp (op, Expr.Const v, Expr.col c)
  in
  match Workload.Prng.int rng 4 with
  | 0 -> conj ()
  | 1 -> Expr.And (conj (), conj ())
  | 2 -> Expr.And (conj (), Expr.And (conj (), conj ()))
  | _ ->
    (* outside the zone-probe shape: forces the per-row fallback *)
    Expr.Or (conj (), conj ())

let check_op msg row_result col_result =
  if not (Relation.equal_bag row_result col_result) then
    QCheck.Test.fail_reportf "%s: layouts disagree\nrow (%d rows):\n%scolumn (%d rows):\n%s"
      msg
      (Relation.cardinality row_result)
      (Relation.to_string ~max_rows:30 (Relation.sorted row_result))
      (Relation.cardinality col_result)
      (Relation.to_string ~max_rows:30 (Relation.sorted col_result))

(* σ, π, ⋈ and γ applied to the same data in both layouts. *)
let check_ops seed =
  let rng = Workload.Prng.create seed in
  let names = [ "a"; "b"; "c" ] in
  let r = random_relation rng names in
  let rc = columnar r in
  let s = random_relation rng [ "d"; "e" ] in
  let sc = columnar s in
  (* σ: both the zone-probe path and the fallback *)
  let p = random_pred rng names in
  check_op (Printf.sprintf "select %s" (Expr.to_string p))
    (Ops.select p r) (Ops.select p rc);
  (* π with computed columns *)
  let outs =
    [ (Expr.col "b", Schema.col "b");
      (Expr.Binop (Expr.Add, Expr.col "a", Expr.int 1), Schema.col "a1") ]
  in
  check_op "project" (Ops.project outs r) (Ops.project outs rc);
  (* ⋈: nested loop with a θ-predicate, and hashed equi-join *)
  let jp = Expr.Cmp (pick rng Expr.[ Eq; Le ], Expr.col "a", Expr.col "d") in
  check_op "nl_join" (Ops.nl_join ~pred:jp r s) (Ops.nl_join ~pred:jp rc sc);
  check_op "hash_join"
    (Ops.hash_join ~left_keys:[ Expr.col "a" ] ~right_keys:[ Expr.col "d" ]
       ~residual:Expr.tt r s)
    (Ops.hash_join ~left_keys:[ Expr.col "a" ] ~right_keys:[ Expr.col "d" ]
       ~residual:Expr.tt rc sc);
  (* γ over a group column with a mix of aggregates *)
  let aggs =
    [ (Agg.Count_star, Schema.col "n");
      (Agg.Sum (Expr.col "a"), Schema.col "s");
      (Agg.Min (Expr.col "c"), Schema.col "m") ]
  in
  check_op "group_by"
    (Ops.group_by ~group_cols:[ (Expr.col "b", Schema.col "b") ] ~aggs r)
    (Ops.group_by ~group_cols:[ (Expr.col "b", Schema.col "b") ] ~aggs rc);
  true

(* Full iceberg queries under the optimizer: the row-layout baseline result
   is the oracle; the column-layout catalog must match it for the plain
   baseline AND for NLJP with pruning + memoization. *)
let iceberg_query rng =
  match Workload.Prng.int rng 2 with
  | 0 ->
    let cmp = pick rng [ "<="; "<" ] in
    let agg = pick rng [ "COUNT(*)"; "COUNT(*), SUM(R.x)"; "COUNT(*), MIN(R.y)" ] in
    Printf.sprintf
      "SELECT L.id, %s FROM object L, object R WHERE L.x %s R.x AND L.y %s R.y GROUP BY L.id HAVING COUNT(*) >= %d"
      agg cmp cmp
      (1 + Workload.Prng.int rng 10)
  | _ ->
    Printf.sprintf
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) %s %d"
      (pick rng [ ">="; "<=" ])
      (1 + Workload.Prng.int rng 4)

let check_queries seed =
  let rng = Workload.Prng.create seed in
  let sql = iceberg_query rng in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline (random_catalog (seed * 13)) q in
  let col_catalog = random_catalog (seed * 13) in
  Catalog.set_all_layouts col_catalog `Column;
  let configs =
    [ ("baseline", fun c -> Runner.run_baseline c q);
      ("all techniques", fun c -> fst (Runner.run ~tech:Optimizer.all_techniques c q));
      ("pruning", fun c -> fst (Runner.run ~tech:(Optimizer.only `Pruning) c q));
      ("memo", fun c -> fst (Runner.run ~tech:(Optimizer.only `Memo) c q)) ]
  in
  List.for_all
    (fun (name, run) ->
      let r = run col_catalog in
      let ok = Relation.equal_bag base r in
      if not ok then
        QCheck.Test.fail_reportf
          "column-layout %s differs from row baseline for:\n%s\nbase %d rows, got %d"
          name sql (Relation.cardinality base) (Relation.cardinality r);
      ok)
    configs

(* NLJP with prune + memo over a columnar outer, parallel and sequential:
   the wave-sliced block iteration must cover exactly the outer's rows. *)
let check_nljp_parallel seed =
  let rng = Workload.Prng.create seed in
  let sql =
    Printf.sprintf
      "SELECT L.id, COUNT(*), SUM(R.x) FROM object L, object R WHERE L.x <= R.x AND L.y <= R.y GROUP BY L.id HAVING COUNT(*) >= %d"
      (1 + Workload.Prng.int rng 8)
  in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline (random_catalog seed) q in
  List.for_all
    (fun workers ->
      let catalog = random_catalog seed in
      Catalog.set_all_layouts catalog `Column;
      let r, rep = Runner.run ~workers catalog q in
      let ok = Relation.equal_bag base r in
      if not ok then
        QCheck.Test.fail_reportf "columnar NLJP workers=%d differs for:\n%s" workers sql;
      ignore rep;
      ok)
    [ 1; 3 ]

let suite =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"σ/π/⋈/γ agree across layouts" ~count:60
         (QCheck.int_range 1 1_000_000) check_ops);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"optimized iceberg queries agree across layouts" ~count:25
         (QCheck.int_range 1 1_000_000) check_queries);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"columnar NLJP (prune+memo, parallel) matches row baseline" ~count:10
         (QCheck.int_range 1 1_000_000) check_nljp_parallel) ]
