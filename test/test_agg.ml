open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let schema = Schema.of_names [ "a" ]

let feed func rows =
  let c = Agg.compile schema func in
  let st = c.Agg.fresh () in
  List.iter (fun r -> c.Agg.step st (row r)) rows;
  c.Agg.final st

let check_v = Alcotest.check Helpers.value_testable

let basics =
  [ t "count star" (fun () ->
        check_v "3" (iv 3) (feed Agg.Count_star [ [ iv 1 ]; [ iv 2 ]; [ iv 3 ] ]));
    t "sum of empty is null" (fun () ->
        check_v "null" Value.Null (feed (Agg.Sum (Expr.col "a")) []));
    t "sum" (fun () ->
        check_v "6" (iv 6) (feed (Agg.Sum (Expr.col "a")) [ [ iv 1 ]; [ iv 2 ]; [ iv 3 ] ]));
    t "sum skips null" (fun () ->
        check_v "3" (iv 3) (feed (Agg.Sum (Expr.col "a")) [ [ iv 3 ]; [ Value.Null ] ]));
    t "min" (fun () ->
        check_v "1" (iv 1) (feed (Agg.Min (Expr.col "a")) [ [ iv 3 ]; [ iv 1 ]; [ iv 2 ] ]));
    t "max" (fun () ->
        check_v "3" (iv 3) (feed (Agg.Max (Expr.col "a")) [ [ iv 3 ]; [ iv 1 ]; [ iv 2 ] ]));
    t "avg" (fun () ->
        check_v "2.0" (fv 2.) (feed (Agg.Avg (Expr.col "a")) [ [ iv 1 ]; [ iv 3 ] ]));
    t "avg of empty is null" (fun () ->
        check_v "null" Value.Null (feed (Agg.Avg (Expr.col "a")) []));
    t "count distinct ignores duplicates and nulls" (fun () ->
        check_v "2" (iv 2)
          (feed (Agg.Count_distinct (Expr.col "a"))
             [ [ iv 1 ]; [ iv 1 ]; [ iv 2 ]; [ Value.Null ] ])) ]

(* merge (f^o over partial states) must agree with a single-pass run. *)
let merge_agrees func rows_a rows_b =
  let c = Agg.compile schema func in
  let st_a = c.Agg.fresh () and st_b = c.Agg.fresh () in
  List.iter (fun r -> c.Agg.step st_a (row r)) rows_a;
  List.iter (fun r -> c.Agg.step st_b (row r)) rows_b;
  c.Agg.merge st_a st_b;
  let merged = c.Agg.final st_a in
  let single = feed func (rows_a @ rows_b) in
  Value.equal_total merged single

let merging =
  let all_funcs =
    [ ("count_star", Agg.Count_star);
      ("count", Agg.Count (Expr.col "a"));
      ("sum", Agg.Sum (Expr.col "a"));
      ("min", Agg.Min (Expr.col "a"));
      ("max", Agg.Max (Expr.col "a"));
      ("avg", Agg.Avg (Expr.col "a"));
      ("count_distinct", Agg.Count_distinct (Expr.col "a")) ]
  in
  List.map
    (fun (name, func) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:(Printf.sprintf "merge agrees with single pass (%s)" name)
           ~count:200
           (QCheck.pair
              (QCheck.list_of_size (QCheck.Gen.int_range 0 15) (QCheck.int_range 0 20))
              (QCheck.list_of_size (QCheck.Gen.int_range 0 15) (QCheck.int_range 0 20)))
           (fun (xs, ys) ->
             merge_agrees func
               (List.map (fun x -> [ iv x ]) xs)
               (List.map (fun y -> [ iv y ]) ys))))
    all_funcs

let algebraic =
  [ t "classification" (fun () ->
        Alcotest.(check bool) "sum algebraic" true (Agg.is_algebraic (Agg.Sum (Expr.col "a")));
        Alcotest.(check bool) "avg algebraic" true (Agg.is_algebraic (Agg.Avg (Expr.col "a")));
        Alcotest.(check bool) "count distinct not" false
          (Agg.is_algebraic (Agg.Count_distinct (Expr.col "a"))));
    t "decompose avg has sum and count partials" (fun () ->
        match Agg.decompose (Agg.Avg (Expr.col "a")) ~name:"x" with
        | `Algebraic (partials, outers, _) ->
          Alcotest.(check int) "partials" 2 (List.length partials);
          Alcotest.(check int) "outers" 2 (List.length outers)
        | `Holistic -> Alcotest.fail "avg should be algebraic");
    t "decompose count distinct is holistic" (fun () ->
        match Agg.decompose (Agg.Count_distinct (Expr.col "a")) ~name:"x" with
        | `Holistic -> ()
        | `Algebraic _ -> Alcotest.fail "count distinct should be holistic") ]

(* Run decompose through relational operators: partials per sub-group, outer
   re-aggregation, final expression — must equal a direct aggregation. *)
let decompose_end_to_end func name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "decompose round-trips through grouping (%s)" name)
       ~count:100
       (QCheck.list_of_size (QCheck.Gen.int_range 1 30)
          (QCheck.pair (QCheck.int_range 0 3) (QCheck.int_range 0 9)))
       (fun pairs ->
         let data =
           rel [ "g"; "a" ] (List.map (fun (g, a) -> [ iv g; iv a ]) pairs)
         in
         match Agg.decompose func ~name:"p" with
         | `Holistic -> true
         | `Algebraic (partials, outers, final) ->
           (* stage 1: partial aggregates per (g, sub) where sub splits rows *)
           let with_sub =
             Ops.project
               [ (Expr.col "g", Schema.col "g");
                 (Expr.col "a", Schema.col "a");
                 (Expr.Binop (Expr.Sub, Expr.col "a", Expr.col "a"), Schema.col "z") ]
               data
           in
           (* Split into two sub-groups per g via a mod 2. *)
           let with_sub =
             Ops.project
               [ (Expr.col "g", Schema.col "g");
                 (Expr.col "a", Schema.col "a");
                 ( Expr.Binop
                     ( Expr.Sub,
                       Expr.col "a",
                       Expr.Binop
                         (Expr.Mul, Expr.Binop (Expr.Div, Expr.col "a", Expr.int 2), Expr.int 2)
                     ),
                   Schema.col "sub" ) ]
               with_sub
           in
           let stage1 =
             Ops.group_by
               ~group_cols:
                 [ (Expr.col "g", Schema.col "g"); (Expr.col "sub", Schema.col "sub") ]
               ~aggs:(List.map (fun (n, f) -> (f, Schema.col n)) partials)
               with_sub
           in
           let stage2 =
             Ops.group_by
               ~group_cols:[ (Expr.col "g", Schema.col "g") ]
               ~aggs:(List.map (fun (n, f) -> (f, Schema.col n)) outers)
               stage1
           in
           let combined =
             Ops.project
               [ (Expr.col "g", Schema.col "g"); (final, Schema.col "v") ]
               stage2
           in
           let direct =
             Ops.group_by
               ~group_cols:[ (Expr.col "g", Schema.col "g") ]
               ~aggs:[ (func, Schema.col "v") ]
               data
           in
           (* AVG combines through floats; compare numerically. *)
           let to_sorted r = Relation.rows (Relation.sorted r) in
           let ca = to_sorted combined and cb = to_sorted direct in
           Array.length ca = Array.length cb
           && Array.for_all2
                (fun x y ->
                  Value.equal_total x.(0) y.(0)
                  && Float.abs (Value.to_float x.(1) -. Value.to_float y.(1)) < 1e-9)
                ca cb))

let decompose_props =
  [ decompose_end_to_end Agg.Count_star "count_star";
    decompose_end_to_end (Agg.Count (Expr.col "a")) "count";
    decompose_end_to_end (Agg.Sum (Expr.col "a")) "sum";
    decompose_end_to_end (Agg.Min (Expr.col "a")) "min";
    decompose_end_to_end (Agg.Max (Expr.col "a")) "max";
    decompose_end_to_end (Agg.Avg (Expr.col "a")) "avg" ]

let suite = basics @ merging @ algebraic @ decompose_props
