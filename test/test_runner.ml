open Core
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* Small but non-trivial catalogs for the four paper query families. *)
let family_catalog seed =
  let rng = Workload.Prng.create seed in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] ~nonneg:[ "x"; "y" ] "object"
    (rel [ "id"; "x"; "y" ]
       (List.init 120 (fun i ->
            [ iv i; iv (Workload.Prng.int rng 20); iv (Workload.Prng.int rng 20) ])));
  let score =
    List.concat_map
      (fun pid ->
        List.filter_map
          (fun year ->
            if Workload.Prng.int rng 4 = 0 then None
            else
              Some
                [ iv pid; iv (2000 + year); iv 1; iv (pid mod 4);
                  iv (Workload.Prng.int rng 50); iv (Workload.Prng.int rng 20) ])
          (List.init 6 Fun.id))
      (List.init 16 Fun.id)
  in
  Catalog.add_table catalog
    ~keys:[ [ "pid"; "year"; "round" ] ]
    ~nonneg:[ "hits"; "hruns" ] "score"
    (rel [ "pid"; "year"; "round"; "teamid"; "hits"; "hruns" ] score);
  let product =
    List.concat_map
      (fun id ->
        List.map
          (fun attr ->
            [ iv id; sv (Printf.sprintf "cat%d" (id mod 2)); sv attr;
              iv (Workload.Prng.int rng 15) ])
          [ "a"; "b"; "c" ])
      (List.init 30 Fun.id)
  in
  Catalog.add_table catalog
    ~keys:[ [ "id"; "attr" ] ]
    ~fds:[ ([ "id" ], [ "category" ]) ]
    ~nonneg:[ "val" ] "product"
    (rel [ "id"; "category"; "attr"; "val" ] product);
  catalog

let techniques =
  [ ("all", Optimizer.all_techniques);
    ("apriori", Optimizer.only `Apriori);
    ("memo", Optimizer.only `Memo);
    ("pruning", Optimizer.only `Pruning) ]

let family_queries =
  [ ("skyband", Workload.Queries.listing2 ~k:8);
    ( "skyband monotone",
      "SELECT L.id, COUNT(*) FROM object L, object R \
       WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) \
       GROUP BY L.id HAVING COUNT(*) >= 4" );
    ( "basket",
      "SELECT i1.pid, i2.pid, COUNT(*) FROM score i1, score i2 \
       WHERE i1.teamid = i2.teamid AND i1.year = i2.year AND i1.round = i2.round \
       GROUP BY i1.pid, i2.pid HAVING COUNT(*) >= 4" );
    ("pairs", Workload.Queries.listing4 ~c:2 ~k:4);
    ("complex", Workload.Queries.listing3 ~threshold:6) ]

let equivalence =
  List.concat_map
    (fun (qname, sql) ->
      List.map
        (fun (tname, tech) ->
          t (Printf.sprintf "%s with %s equals baseline" qname tname) (fun () ->
              check_sql_equiv ~tech (family_catalog 100) sql))
        techniques)
    family_queries

let decisions =
  [ t "complex query reproduces the Appendix D walkthrough" (fun () ->
        let catalog = family_catalog 4 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing3 ~threshold:6) in
        let _, rep = Runner.run catalog q in
        (* two a-priori reducers (S1 via {S1,T1}, S2 via {S2,T2}) *)
        Alcotest.(check int) "two reducers" 2 (List.length rep.Runner.apriori);
        let reduced = List.concat_map (fun rw -> rw.Optimizer.reduced) rep.Runner.apriori in
        Alcotest.(check bool) "S1 reduced" true (List.mem "S1" reduced);
        Alcotest.(check bool) "S2 reduced" true (List.mem "S2" reduced);
        (* NLJP outer side {S1, S2} *)
        (match rep.Runner.nljp_outer with
         | Some aliases ->
           Alcotest.(check (list string)) "outer" [ "S1"; "S2" ]
             (List.sort compare aliases)
         | None -> Alcotest.fail "NLJP expected"));
    t "pairs query optimizes both blocks" (fun () ->
        let catalog = family_catalog 5 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing4 ~c:2 ~k:4) in
        let _, rep = Runner.run catalog q in
        (match rep.Runner.cte_reports with
         | [ (name, cte_rep) ] ->
           Alcotest.(check string) "cte name" "pair" name;
           (* the WITH block has a monotone HAVING: a-priori applies *)
           Alcotest.(check bool) "cte a-priori" true (cte_rep.Runner.apriori <> [])
         | _ -> Alcotest.fail "one CTE expected");
        (* the outer block is a skyband over the pair view: NLJP applies *)
        Alcotest.(check bool) "outer NLJP" true (rep.Runner.nljp_outer <> None));
    t "skyband query gets no a-priori but does get NLJP" (fun () ->
        let catalog = family_catalog 6 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing2 ~k:8) in
        let _, rep = Runner.run catalog q in
        Alcotest.(check bool) "no a-priori" true (rep.Runner.apriori = []);
        Alcotest.(check bool) "NLJP" true (rep.Runner.nljp_outer <> None));
    t "technique flags are respected" (fun () ->
        let catalog = family_catalog 7 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing2 ~k:8) in
        let _, rep = Runner.run ~tech:(Optimizer.only `Memo) catalog q in
        (match rep.Runner.nljp_stats with
         | Some s ->
           Alcotest.(check bool) "pruning off" false s.Nljp.pruning_on;
           Alcotest.(check bool) "memo on" true s.Nljp.memo_on
         | None -> Alcotest.fail "NLJP stats expected"));
    t "cache accounting aggregates CTE blocks" (fun () ->
        let catalog = family_catalog 8 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing4 ~c:2 ~k:4) in
        let _, rep = Runner.run catalog q in
        Alcotest.(check bool) "rows >= 0" true (Runner.cache_rows rep >= 0);
        Alcotest.(check bool) "bytes >= rows presence" true
          (Runner.cache_rows rep = 0 || Runner.cache_bytes rep > 0));
    t "temp tables are cleaned up" (fun () ->
        let catalog = family_catalog 9 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing4 ~c:2 ~k:4) in
        ignore (Runner.run catalog q);
        Alcotest.(check bool) "pair gone" false (Catalog.mem catalog "pair"));
    t "non-iceberg query falls back to baseline" (fun () ->
        let catalog = family_catalog 10 in
        let q = Sqlfront.Parser.parse "SELECT id, x FROM object WHERE x > 3" in
        let r, rep = Runner.run catalog q in
        Alcotest.(check bool) "no nljp" true (rep.Runner.nljp_outer = None);
        check_bag "same as baseline" (Runner.run_baseline catalog q) r);
    t "report renders" (fun () ->
        let catalog = family_catalog 11 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing3 ~threshold:6) in
        let _, rep = Runner.run catalog q in
        let s = Runner.report_to_string rep in
        Alcotest.(check bool) "mentions reducer" true (contains s "a-priori reducer")) ]

let vendor =
  [ t "parallel baseline equals sequential baseline on all families" (fun () ->
        let catalog = family_catalog 12 in
        List.iter
          (fun (name, sql) ->
            let q = Sqlfront.Parser.parse sql in
            let seq = Runner.run_baseline catalog q in
            let par = Runner.run_baseline ~workers:4 catalog q in
            check_bag name seq par)
          family_queries) ]

let random_full_pipeline =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"full pipeline equals baseline across techniques (random instances)"
         ~count:15 (QCheck.int_range 0 9999)
         (fun seed ->
           let catalog = family_catalog seed in
           List.for_all
             (fun (_, sql) ->
               let q = Sqlfront.Parser.parse sql in
               let base = Runner.run_baseline catalog q in
               List.for_all
                 (fun (_, tech) ->
                   let r, _ = Runner.run ~tech catalog q in
                   Relation.equal_bag base r)
                 techniques)
             family_queries)) ]

let suite = equivalence @ decisions @ vendor @ random_full_pipeline
