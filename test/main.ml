let () =
  Alcotest.run "smart_iceberg"
    [ ("value", Test_value.suite);
      ("relation-ops", Test_relation_ops.suite);
      ("agg", Test_agg.suite);
      ("index", Test_index.suite);
      ("expr", Test_expr.suite);
      ("csv", Test_csv.suite);
      ("column", Test_column.suite);
      ("layout", Test_layout.suite);
      ("vector", Test_vector.suite);
      ("parser", Test_parser.suite);
      ("binder", Test_binder.suite);
      ("qelim", Test_qelim.suite);
      ("fd", Test_fd.suite);
      ("monotone", Test_monotone.suite);
      ("qspec", Test_qspec.suite);
      ("apriori", Test_apriori.suite);
      ("subsume", Test_subsume.suite);
      ("nljp", Test_nljp.suite);
      ("memo-rewrite", Test_memo_rewrite.suite);
      ("optimizer", Test_optimizer.suite);
      ("equiv-inference", Test_equiv.suite);
      ("extensions", Test_extensions.suite);
      ("stats-cost", Test_stats_cost.suite);
      ("fang", Test_fang.suite);
      ("fuzz", Test_fuzz.suite);
      ("parallel", Test_parallel.suite);
      ("nljp-parallel", Test_nljp_parallel.suite);
      ("plan-exec", Test_plan_exec.suite);
      ("runner-edge", Test_runner_edge.suite);
      ("runner", Test_runner.suite);
      ("workload", Test_workload.suite);
      ("obs", Test_obs.suite);
      ("analyze", Test_analyze.suite);
      ("transfer", Test_transfer.suite);
      ("serve", Test_serve.suite);
      ("sic", Test_sic.suite) ]
