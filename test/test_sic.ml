(* Compressed storage + .sic disk tier: codec round-trips, byte-weighted
   LRU, file round-trips (resident and paged), and a differential fuzz
   suite proving compressed/paged execution is bag-equal to the row path
   across σ/π/⋈/γ, NLJP prune/memo, transfer on/off, and worker counts. *)

open Relalg
module Cstore = Column.Cstore
module Encode = Column.Encode
module Bitset = Column.Bitset

let tmp_path =
  let ctr = ref 0 in
  fun name ->
    incr ctr;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sic_test_%d_%d_%s.sic" (Unix.getpid ()) !ctr name)

let with_tmp name f =
  let path = tmp_path name in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ---- Encode round-trips ---- *)

let decoded_equal a b =
  match (a, b) with
  | Cstore.C_int (x, bx), Cstore.C_int (y, by)
  | Cstore.C_dict (x, bx), Cstore.C_dict (y, by) ->
    x = y
    && (match (bx, by) with
        | None, None -> true
        | Some bx, Some by ->
          Bitset.length bx = Bitset.length by
          && (let ok = ref true in
              for i = 0 to Bitset.length bx - 1 do
                if Bitset.get bx i <> Bitset.get by i then ok := false
              done;
              !ok)
        | _ -> false)
  | _ -> false

let roundtrip_ints a bm =
  let len = Array.length a in
  let col = Encode.of_cvec ~len (Cstore.C_int (a, bm)) in
  (* serialize too *)
  let buf = Buffer.create 64 in
  Encode.write buf col;
  let col', n = Encode.read (Buffer.to_bytes buf) 0 in
  Alcotest.(check int) "consumed" (Buffer.length buf) n;
  let dec = Encode.to_cvec col' in
  if not (decoded_equal (Cstore.C_int (a, bm)) dec) then
    Alcotest.failf "int round-trip mismatch (n=%d)" len

let test_encode_edges () =
  roundtrip_ints [||] None;
  roundtrip_ints [| 0 |] None;
  roundtrip_ints [| max_int; min_int; 0; -1; 1 |] None;
  roundtrip_ints (Array.init 100 (fun i -> i)) None;
  roundtrip_ints (Array.make 100 42) None;
  (* forces raw: range overflows 63-bit int *)
  roundtrip_ints [| min_int; max_int |] None;
  (* width > 57 *)
  roundtrip_ints [| 0; 1 lsl 58 |] None;
  (* nulls: leading, trailing, alternating *)
  let bm100 pat =
    let b = Bitset.create 100 in
    Array.iteri (fun i () -> if pat i then Bitset.set b i) (Array.make 100 ());
    Some b
  in
  roundtrip_ints (Array.init 100 (fun i -> i * 3)) (bm100 (fun i -> i < 10));
  roundtrip_ints (Array.init 100 (fun i -> i * 3)) (bm100 (fun i -> i >= 90));
  roundtrip_ints (Array.init 100 (fun i -> i mod 7)) (bm100 (fun i -> i mod 2 = 0));
  roundtrip_ints (Array.make 100 0) (bm100 (fun _ -> true))

let test_encode_qcheck =
  QCheck.Test.make ~name:"encode round-trip (random int blocks)" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 300)
           (oneof [ int; int_range (-5) 5; int_range 0 1 ]))
        (list small_int))
    (fun (vals, null_pos) ->
      let a = Array.of_list vals in
      let n = Array.length a in
      let bm =
        if null_pos = [] || n = 0 then None
        else begin
          let b = Bitset.create n in
          let any = ref false in
          List.iter
            (fun p ->
              if n > 0 then begin
                Bitset.set b (p mod n);
                any := true
              end)
            null_pos;
          if !any then Some b else None
        end
      in
      (* null slots are zeroed like Cstore.build_col produces them *)
      (match bm with
       | Some b ->
         for i = 0 to n - 1 do
           if Bitset.get b i then a.(i) <- 0
         done
       | None -> ());
      let col = Encode.of_cvec ~len:n (Cstore.C_int (a, bm)) in
      let buf = Buffer.create 64 in
      Encode.write buf col;
      let col', _ = Encode.read (Buffer.to_bytes buf) 0 in
      decoded_equal (Cstore.C_int (a, bm)) (Encode.to_cvec col'))

(* Direct kernels agree with decoded evaluation. *)
let test_direct_kernels =
  QCheck.Test.make ~name:"direct int kernels vs decoded" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_range (-8) 8))
        (pair (int_range (-8) 8) (list small_int)))
    (fun (vals, (k, null_pos)) ->
      let a = Array.of_list vals in
      let n = Array.length a in
      let bm =
        if null_pos = [] then None
        else begin
          let b = Bitset.create n in
          List.iter (fun p -> Bitset.set b (p mod n)) null_pos;
          for i = 0 to n - 1 do
            if Bitset.get b i then a.(i) <- 0
          done;
          Some b
        end
      in
      let isnull i = match bm with Some b -> Bitset.get b i | None -> false in
      let col = Encode.of_cvec ~len:n (Cstore.C_int (a, bm)) in
      List.for_all
        (fun cmp ->
          let expect =
            Array.of_list
              (List.filteri (fun i _ -> not (isnull i)) (Array.to_list a)
               |> List.map (fun _ -> ()))
          in
          ignore expect;
          let want i =
            (not (isnull i))
            &&
            match cmp with
            | Column.Zmap.Eq -> a.(i) = k
            | Column.Zmap.Ne -> a.(i) <> k
            | Column.Zmap.Lt -> a.(i) < k
            | Column.Zmap.Le -> a.(i) <= k
            | Column.Zmap.Gt -> a.(i) > k
            | Column.Zmap.Ge -> a.(i) >= k
          in
          let sel = Array.make n 0 in
          let cnt =
            match Encode.sel_fill_int col cmp k sel with
            | Some c -> c
            | None -> Alcotest.fail "sel_fill_int refused an int column"
          in
          let expected = List.filter want (List.init n Fun.id) in
          let got = Array.to_list (Array.sub sel 0 cnt) in
          let test =
            match Encode.int_test col cmp k with
            | Some t -> t
            | None -> Alcotest.fail "int_test refused an int column"
          in
          got = expected && List.for_all (fun i -> want i = test i) (List.init n Fun.id))
        [ Column.Zmap.Eq; Column.Zmap.Ne; Column.Zmap.Lt; Column.Zmap.Le;
          Column.Zmap.Gt; Column.Zmap.Ge ])

(* ---- byte-weighted LRU ---- *)

let test_lru_weighted () =
  let c = Cache.Lru.create 100 in
  Cache.Lru.put ~weight:40 c "a" 1;
  Cache.Lru.put ~weight:40 c "b" 2;
  Cache.Lru.put ~weight:40 c "c" 3;
  (* a (LRU) must have been evicted to fit c *)
  Alcotest.(check (option int)) "a evicted" None (Cache.Lru.find c "a");
  Alcotest.(check (option int)) "b kept" (Some 2) (Cache.Lru.find c "b");
  Alcotest.(check int) "weight" 80 (Cache.Lru.weight c);
  (* oversized entry evicts everything else but is itself kept *)
  Cache.Lru.put ~weight:500 c "big" 9;
  Alcotest.(check (option int)) "big kept" (Some 9) (Cache.Lru.find c "big");
  Alcotest.(check int) "only big" 1 (Cache.Lru.length c);
  (* overwrite adjusts weight *)
  Cache.Lru.put ~weight:10 c "big" 10;
  Alcotest.(check int) "weight after overwrite" 10 (Cache.Lru.weight c);
  let s = Cache.Lru.stats c in
  Alcotest.(check int) "weight in stats" 10 s.Cache.Lru.s_weight

(* ---- file round-trip ---- *)

let mixed_rel n =
  let rows =
    List.init n (fun i ->
        [| Value.Int i;
           (if i mod 7 = 0 then Value.Null else Value.Int (i mod 5));
           Value.Str (Printf.sprintf "s%d" (i mod 11));
           Value.Float (float_of_int (i mod 13) /. 4.);
           (if i mod 3 = 0 then Value.Bool (i mod 2 = 0) else Value.Bool true)
        |])
  in
  Relation.of_rows (Schema.of_names [ "id"; "grp"; "tag"; "x"; "b" ]) rows

let test_file_roundtrip () =
  let rel = Relation.to_layout `Column (mixed_rel 1000) in
  with_tmp "roundtrip" (fun path ->
      Sic.save path rel;
      let back = Sic.load ~mode:`Resident path in
      Alcotest.(check bool) "resident bag-equal" true (Relation.equal_bag rel back);
      let paged = Sic.load ~mode:`Paged path in
      Alcotest.(check bool) "paged bag-equal" true (Relation.equal_bag rel paged))

let test_streaming_writer () =
  let schema = Schema.of_names [ "a"; "b" ] in
  let rows =
    Seq.init 10_000 (fun i -> [| Value.Int i; Value.Str (string_of_int (i mod 3)) |])
  in
  with_tmp "stream" (fun path ->
      Sic.save_rows ~block_size:256 path schema rows;
      let back = Sic.load ~mode:`Resident path in
      Alcotest.(check int) "rows" 10_000 (Relation.cardinality back);
      let expect = Relation.of_rows schema (List.of_seq rows) in
      Alcotest.(check bool) "bag-equal" true (Relation.equal_bag expect back))

let test_empty_relation () =
  let schema = Schema.of_names [ "a"; "b" ] in
  let rel = Relation.to_layout `Column (Relation.empty schema) in
  with_tmp "empty" (fun path ->
      Sic.save path rel;
      let back = Sic.load ~mode:`Resident path in
      Alcotest.(check int) "rows" 0 (Relation.cardinality back);
      let paged = Sic.load ~mode:`Paged path in
      Alcotest.(check int) "paged rows" 0 (Relation.cardinality paged))

(* ---- differential fuzz: compressed/paged execution vs the row path ----

   One random table, one random query per seed, executed on three physical
   representations (row layout, .sic decoded resident, .sic paged through
   the block cache) under every optimizer configuration that matters
   (baseline, all techniques, NLJP prune/memo alone, transfer on/off,
   workers 1/4).  Every run must be bag-equal to the row-layout baseline.
   A reload-re-save-re-run round trip rides along: the paged relation is
   streamed back out to a second .sic and the query re-run from there. *)

let fuzz_pick rng xs = List.nth xs (Workload.Prng.int rng (List.length xs))
let fuzz_tags = [| "alpha"; "beta"; "gamma"; "delta"; "eps" |]

let random_sic_rel rng =
  let n = 300 + Workload.Prng.int rng 1200 in
  let rows =
    List.init n (fun i ->
        [| Value.Int i;
           (if Workload.Prng.int rng 11 = 0 then Value.Null
            else Value.Int (Workload.Prng.int rng 7));
           (if Workload.Prng.int rng 13 = 0 then Value.Null
            else Value.Str fuzz_tags.(Workload.Prng.int rng (Array.length fuzz_tags)));
           (if Workload.Prng.int rng 17 = 0 then Value.Null
            else Value.Float (float_of_int (Workload.Prng.int rng 100) /. 8.));
           Value.Int (Workload.Prng.int rng 1000 - 500) |])
  in
  Relation.of_rows (Schema.of_names [ "id"; "grp"; "tag"; "x"; "score" ]) rows

let random_sic_query rng =
  let tag () = fuzz_tags.(Workload.Prng.int rng (Array.length fuzz_tags)) in
  let pred () =
    fuzz_pick rng
      [ Printf.sprintf "id >= %d" (Workload.Prng.int rng 1500);
        Printf.sprintf "score < %d" (Workload.Prng.int rng 600 - 300);
        Printf.sprintf "tag = '%s'" (tag ());
        Printf.sprintf "tag <> '%s'" (tag ());
        Printf.sprintf "grp = %d" (Workload.Prng.int rng 8);
        "x >= 5.0" ]
  in
  fuzz_pick rng
    [ (* selection + projection over every column kind *)
      Printf.sprintf "SELECT id, tag, score FROM t WHERE %s AND %s" (pred ())
        (pred ());
      (* global aggregation: the Colagg kernels, NULL inputs included *)
      "SELECT COUNT(*), COUNT(x), COUNT(grp), SUM(score), MIN(score), \
       MAX(score), AVG(x), AVG(score) FROM t";
      Printf.sprintf "SELECT COUNT(*), SUM(score), MIN(x) FROM t WHERE %s"
        (pred ());
      (* grouped aggregation (NULL group keys possible) *)
      Printf.sprintf "SELECT grp, COUNT(*), SUM(score) FROM t WHERE %s GROUP \
                      BY grp"
        (pred ());
      (* iceberg self-join: NLJP prune/memo territory *)
      Printf.sprintf
        "SELECT L.grp, COUNT(*) FROM t L, t R WHERE L.grp = R.grp AND L.id < \
         R.id AND R.id < %d GROUP BY L.grp HAVING COUNT(*) >= %d"
        (200 + Workload.Prng.int rng 200)
        (1 + Workload.Prng.int rng 10) ]

let fuzz_configs =
  [ ("baseline", fun c q -> Core.Runner.run_baseline c q);
    ("all", fun c q -> fst (Core.Runner.run ~tech:Core.Optimizer.all_techniques c q));
    ("pruning", fun c q -> fst (Core.Runner.run ~tech:(Core.Optimizer.only `Pruning) c q));
    ("memo", fun c q -> fst (Core.Runner.run ~tech:(Core.Optimizer.only `Memo) c q));
    ("transfer-on", fun c q -> fst (Core.Runner.run ~transfer:true c q));
    ("transfer-off", fun c q -> fst (Core.Runner.run ~transfer:false c q));
    ("workers4", fun c q -> fst (Core.Runner.run ~workers:4 c q)) ]

let catalog_of rel =
  let c = Catalog.create () in
  Catalog.add_table c "t" rel;
  c

let check_sic_differential seed =
  let rng = Workload.Prng.create seed in
  let rel = random_sic_rel rng in
  let block_size = 64 + Workload.Prng.int rng 192 in
  let sql = random_sic_query rng in
  let q = Sqlfront.Parser.parse sql in
  let oracle = Core.Runner.run_baseline (catalog_of rel) q in
  let check storage got =
    if not (Relation.equal_bag oracle got) then
      QCheck.Test.fail_reportf
        "[%s] mismatch for:\n%s\n(seed %d, block_size %d): oracle %d rows, \
         got %d rows"
        storage sql seed block_size
        (Relation.cardinality oracle)
        (Relation.cardinality got)
  in
  with_tmp "fuzz" (fun path ->
      Sic.save_rows ~block_size path rel.Relation.schema
        (Array.to_seq (Relation.rows rel));
      let storages =
        [ ("resident", Sic.load ~mode:`Resident path);
          ("paged", Sic.load ~mode:`Paged path) ]
      in
      List.iter
        (fun (sname, srel) ->
          let cat = catalog_of srel in
          List.iter
            (fun (cname, run) -> check (sname ^ "/" ^ cname) (run cat q))
            fuzz_configs)
        storages;
      (* reload → re-save → re-run round trip from the paged relation *)
      with_tmp "fuzz2" (fun path2 ->
          let paged = List.assoc "paged" storages in
          Sic.save_rows ~block_size:(2 * block_size) path2
            paged.Relation.schema
            (Array.to_seq (Relation.rows paged));
          let back = Sic.load ~mode:`Paged path2 in
          check "resaved/baseline" (Core.Runner.run_baseline (catalog_of back) q)));
  true

let test_differential =
  QCheck.Test.make
    ~name:"differential: row vs resident vs paged across configs" ~count:25
    (QCheck.int_range 1 100000) check_sic_differential

let suite =
  [ Alcotest.test_case "encode edge cases" `Quick test_encode_edges;
    QCheck_alcotest.to_alcotest test_encode_qcheck;
    QCheck_alcotest.to_alcotest test_direct_kernels;
    Alcotest.test_case "byte-weighted lru" `Quick test_lru_weighted;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "streaming writer" `Quick test_streaming_writer;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    QCheck_alcotest.to_alcotest test_differential ]
