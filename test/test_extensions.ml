(* The paper's §7 future-work knobs, implemented as opt-in extensions:
   Q_B exploration order, bounded caches with keep-first replacement, and
   the static-rewrite memoization strategy. *)
open Core
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let analyze catalog sql left =
  Qspec.analyze catalog (Sqlfront.Parser.parse sql) ~left_aliases:left

let sky k = Workload.Queries.listing2 ~k

let run_config catalog sql config =
  let spec = analyze catalog sql [ "L" ] in
  match Nljp.build catalog spec config with
  | Error e -> Alcotest.failf "build: %s" e
  | Ok op -> Nljp.execute op

let ordering =
  [ t "outer ordering preserves results" (fun () ->
        let catalog = random_catalog 51 in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse (sky 5)) in
        List.iter
          (fun order ->
            let r, _ =
              run_config catalog (sky 5)
                { Nljp.default_config with Nljp.outer_order = order }
            in
            check_bag "ordered run" base r)
          [ `Default; `Auto; `Asc 0; `Desc 0; `Asc 1; `Desc 1; `Asc 99 ]);
    t "ordering changes pruning effectiveness" (fun () ->
        (* anti-monotone skyband prunes b when some cached unpromising point
           lies componentwise above it — processing large coordinates first
           (descending) populates the cache with the most useful entries *)
        let catalog = random_catalog 52 in
        let pruned order =
          let _, stats =
            run_config catalog (sky 3)
              { Nljp.default_config with Nljp.memo = false; outer_order = order }
          in
          stats.Nljp.pruned
        in
        let asc = pruned (`Asc 0) and desc = pruned (`Desc 0) in
        Alcotest.(check bool)
          (Printf.sprintf "asc prunes %d, desc prunes %d" asc desc)
          true (desc >= asc));
    t "auto order matches the best hand-picked direction" (fun () ->
        (* anti-monotone skyband with p⪰ ≡ componentwise ≤: auto must pick
           the descending exploration *)
        let catalog = random_catalog 58 in
        let pruned order =
          let _, stats =
            run_config catalog (sky 3)
              { Nljp.default_config with Nljp.memo = false; outer_order = order }
          in
          stats.Nljp.pruned
        in
        Alcotest.(check int) "auto = desc" (pruned (`Desc 0)) (pruned `Auto)) ]

let bounded_cache =
  [ t "bounded caches preserve results" (fun () ->
        let catalog = random_catalog 53 in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse (sky 5)) in
        List.iter
          (fun cap ->
            let r, stats =
              run_config catalog (sky 5)
                { Nljp.default_config with Nljp.max_cache_rows = Some cap }
            in
            check_bag (Printf.sprintf "cap %d" cap) base r;
            Alcotest.(check bool) "prune cache within cap" true
              (stats.Nljp.prune_cache_rows <= cap);
            Alcotest.(check bool) "memo cache within cap" true
              (stats.Nljp.memo_cache_rows <= cap))
          [ 0; 1; 3; 1000 ]);
    t "zero cap disables caching but not correctness" (fun () ->
        let catalog = random_catalog 54 in
        let _, stats =
          run_config catalog (sky 5)
            { Nljp.default_config with Nljp.max_cache_rows = Some 0 }
        in
        Alcotest.(check int) "no cache rows" 0
          (stats.Nljp.prune_cache_rows + stats.Nljp.memo_cache_rows);
        Alcotest.(check int) "nothing pruned" 0 stats.Nljp.pruned) ]

let static_memo =
  [ t "static-rewrite strategy matches baseline (skyband)" (fun () ->
        let catalog = random_catalog 55 in
        let q = Sqlfront.Parser.parse (sky 6) in
        let base = Core.Runner.run_baseline catalog q in
        let r, rep =
          Core.Runner.run ~tech:(Optimizer.only `Memo) ~memo_strategy:`Static_rewrite
            catalog q
        in
        check_bag "static memo" base r;
        Alcotest.(check bool) "used the rewrite" true
          (List.exists (fun n -> contains n "static rewrite") rep.Core.Runner.notes));
    t "static-rewrite strategy matches baseline (market basket)" (fun () ->
        let catalog = random_catalog 56 in
        let q =
          Sqlfront.Parser.parse
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
        in
        let base = Core.Runner.run_baseline catalog q in
        let r, _ =
          Core.Runner.run ~tech:(Optimizer.only `Memo) ~memo_strategy:`Static_rewrite
            catalog q
        in
        check_bag "static memo basket" base r);
    t "pick_static_memo returns a WITH-free multi-stage query" (fun () ->
        let catalog = random_catalog 57 in
        match Optimizer.pick_static_memo catalog (Sqlfront.Parser.parse (sky 6)) with
        | None -> Alcotest.fail "should apply"
        | Some q ->
          let sql = Sqlfront.Pretty.query q in
          Alcotest.(check bool) "has distinct bindings stage" true
            (contains sql "SELECT DISTINCT"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"static and NLJP memoization agree on random instances" ~count:25
         (QCheck.pair (QCheck.int_range 0 9999) (QCheck.int_range 1 10))
         (fun (seed, k) ->
           let catalog = random_catalog seed in
           let q = Sqlfront.Parser.parse (sky k) in
           let nljp, _ = Core.Runner.run ~tech:(Optimizer.only `Memo) catalog q in
           let stat, _ =
             Core.Runner.run ~tech:(Optimizer.only `Memo)
               ~memo_strategy:`Static_rewrite catalog q
           in
           Relation.equal_bag nljp stat)) ]

let suite = ordering @ bounded_cache @ static_memo
