open Core
open Helpers

let t name f = Alcotest.test_case name `Quick f

let analyze catalog sql left =
  Qspec.analyze catalog (Sqlfront.Parser.parse sql) ~left_aliases:left

let market_sql threshold =
  Printf.sprintf
    "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
     WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) %s"
    threshold

let theorem2 =
  [ t "market basket: monotone HAVING is safe (Example 6)" (fun () ->
        let spec = analyze (basket_catalog ()) (market_sql ">= 2") [ "i1" ] in
        (match Apriori.safe (basket_catalog ()) spec `Left with
         | Ok () -> ()
         | Error e -> Alcotest.failf "expected safe: %s" e));
    t "market basket: anti-monotone HAVING is unsafe (Example 6)" (fun () ->
        let spec = analyze (basket_catalog ()) (market_sql "<= 2") [ "i1" ] in
        (match Apriori.safe (basket_catalog ()) spec `Left with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "item does not determine bid: must be unsafe"));
    t "Example 7: basket side safe, discount side not" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog
          ~keys:[ [ "bid"; "item"; "did" ] ]
          "basketd"
          (rel [ "bid"; "item"; "did" ]
             [ [ iv 1; sv "a"; iv 1 ]; [ iv 1; sv "b"; iv 2 ]; [ iv 2; sv "a"; iv 1 ] ]);
        Relalg.Catalog.add_table catalog ~keys:[ [ "did" ] ] "discount"
          (rel [ "did"; "rate" ] [ [ iv 1; iv 10 ]; [ iv 2; iv 20 ] ]);
        let sql =
          "SELECT item, rate FROM basketd L, discount R WHERE L.did = R.did \
           GROUP BY item, rate HAVING COUNT(DISTINCT bid) >= 25"
        in
        let spec_l = analyze catalog sql [ "L" ] in
        (match Apriori.safe catalog spec_l `Left with
         | Ok () -> ()
         | Error e -> Alcotest.failf "L should be safe: %s" e);
        (* reducing R (discount) requires G_L ∪ J_L= superkey of basketd,
           which fails: (item, did) is not a key *)
        let spec_r = analyze catalog sql [ "R" ] in
        (match Apriori.safe catalog spec_r `Left with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "R reduction should be unsafe"));
    t "Example 7 anti-monotone variant with item -> did" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog
          ~keys:[ [ "bid"; "item" ] ]
          ~fds:[ ([ "item" ], [ "did" ]) ]
          "basketd"
          (rel [ "bid"; "item"; "did" ] [ [ iv 1; sv "a"; iv 1 ] ]);
        Relalg.Catalog.add_table catalog ~keys:[ [ "did" ] ] "discount"
          (rel [ "did"; "rate" ] [ [ iv 1; iv 10 ] ]);
        let sql =
          "SELECT item, rate FROM basketd L, discount R WHERE L.did = R.did \
           GROUP BY item, rate HAVING COUNT(DISTINCT bid) <= 25"
        in
        let spec = analyze catalog sql [ "L" ] in
        match Apriori.safe catalog spec `Left with
        | Ok () -> ()
        | Error e -> Alcotest.failf "anti-monotone with item->did should be safe: %s" e) ]

(* Example 5 instances: tightness of Theorem 1. *)
let example5 =
  [ t "Example 5 monotone: inflationary query detected and rejected" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog "l" (rel [ "g"; "j" ] [ [ iv 1; iv 7 ] ]);
        Relalg.Catalog.add_table catalog "r"
          (rel [ "j"; "o"; "g" ] [ [ iv 7; iv 1; iv 5 ]; [ iv 7; iv 2; iv 5 ] ]);
        let sql =
          "SELECT l.g, r.g, COUNT(*) FROM l, r WHERE l.j = r.j \
           GROUP BY l.g, r.g HAVING COUNT(*) >= 2"
        in
        let spec = analyze catalog sql [ "l" ] in
        Alcotest.(check bool) "inflationary" false
          (Apriori.non_inflationary catalog spec `Left);
        (match Apriori.safe catalog spec `Left with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "Theorem 2 must reject (no FD declared)");
        (* and indeed applying it anyway would be wrong *)
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        let wrong =
          Sqlfront.Binder.run catalog (Apriori.apply spec `Left)
        in
        Alcotest.(check bool) "rewrite changes result" false
          (Relalg.Relation.equal_bag base wrong));
    t "Example 5 anti-monotone: deflationary query detected and rejected" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog "l"
          (rel [ "g"; "j" ] [ [ iv 1; iv 7 ]; [ iv 1; iv 8 ] ]);
        Relalg.Catalog.add_table catalog "r" (rel [ "j"; "g" ] [ [ iv 7; iv 5 ] ]);
        let sql =
          "SELECT l.g, r.g, COUNT(*) FROM l, r WHERE l.j = r.j \
           GROUP BY l.g, r.g HAVING COUNT(*) <= 1"
        in
        let spec = analyze catalog sql [ "l" ] in
        Alcotest.(check bool) "deflationary" false
          (Apriori.non_deflationary catalog spec `Left);
        (match Apriori.safe catalog spec `Left with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "Theorem 2 must reject");
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        let wrong = Sqlfront.Binder.run catalog (Apriori.apply spec `Left) in
        Alcotest.(check bool) "rewrite changes result" false
          (Relalg.Relation.equal_bag base wrong));
    t "market basket is non-inflationary (Example 4)" (fun () ->
        let catalog = basket_catalog () in
        let spec = analyze catalog (market_sql ">= 2") [ "i1" ] in
        Alcotest.(check bool) "non-inflationary" true
          (Apriori.non_inflationary catalog spec `Left)) ]

let rewrite_semantics =
  [ t "reducer SQL shape" (fun () ->
        let spec = analyze (basket_catalog ()) (market_sql ">= 2") [ "i1" ] in
        let sql = Sqlfront.Pretty.query (Apriori.reducer spec `Left) in
        Alcotest.(check bool) "groups by item" true
          (contains sql "GROUP BY i1.item");
        Alcotest.(check bool) "keeps having" true
          (contains sql "HAVING COUNT(*) >= 2"));
    t "rewritten query result equals original (market basket)" (fun () ->
        let catalog = basket_catalog () in
        let spec = analyze catalog (market_sql ">= 2") [ "i1" ] in
        let base =
          Core.Runner.run_baseline catalog (Sqlfront.Parser.parse (market_sql ">= 2"))
        in
        let rewritten = Sqlfront.Binder.run catalog (Apriori.apply spec `Left) in
        check_bag "equal" base rewritten);
    t "vacuous reducer detected for skyband" (fun () ->
        let catalog = objects_catalog [ (1, 1); (2, 2); (3, 3) ] in
        let spec = analyze catalog (Workload.Queries.listing2 ~k:50) [ "L" ] in
        Alcotest.(check bool) "vacuous" true (Apriori.vacuous spec `Left));
    t "market basket reducer is not vacuous" (fun () ->
        let spec = analyze (basket_catalog ()) (market_sql ">= 2") [ "i1" ] in
        Alcotest.(check bool) "not vacuous" false (Apriori.vacuous spec `Left)) ]

(* Random-instance equivalence: whenever Theorem 2 declares the rewrite
   safe, the rewritten query must return the baseline result. *)
let random_equivalence =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"a-priori rewrite preserves results when safe" ~count:60
         (QCheck.int_range 0 10000)
         (fun seed ->
           let catalog = random_catalog seed in
           let thresholds = [ ">= 2"; ">= 3"; "<= 1"; "<= 3" ] in
           List.for_all
             (fun th ->
               let sql = market_sql th in
               let spec = analyze catalog sql [ "i1" ] in
               match Apriori.safe catalog spec `Left with
               | Error _ -> true
               | Ok () ->
                 let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
                 let rw = Sqlfront.Binder.run catalog (Apriori.apply spec `Left) in
                 Relalg.Relation.equal_bag base rw)
             thresholds));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"Theorem 1: schema safety implies instance conditions" ~count:40
         (QCheck.int_range 0 10000)
         (fun seed ->
           let catalog = random_catalog seed in
           let sql = market_sql ">= 2" in
           let spec = analyze catalog sql [ "i1" ] in
           match Apriori.safe catalog spec `Left with
           | Error _ -> true
           | Ok () -> Apriori.non_inflationary catalog spec `Left)) ]

let suite = theorem2 @ example5 @ rewrite_semantics @ random_equivalence
