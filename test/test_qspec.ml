open Core
open Helpers

let t name f = Alcotest.test_case name `Quick f

let analyze catalog sql left =
  Qspec.analyze catalog (Sqlfront.Parser.parse sql) ~left_aliases:left

let names cols = List.map (fun c -> c.Relalg.Schema.name) cols

let market_basket () =
  analyze (basket_catalog ())
    "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
     WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
    [ "i1" ]

let suite =
  [ t "market basket decomposition (Example 6)" (fun () ->
        let spec = market_basket () in
        Alcotest.(check (list string)) "G_L" [ "item" ] (names spec.Qspec.left.Qspec.group_cols);
        Alcotest.(check (list string)) "G_R" [ "item" ]
          (names spec.Qspec.right.Qspec.group_cols);
        Alcotest.(check (list string)) "J_L" [ "bid" ] (names spec.Qspec.left.Qspec.join_cols);
        Alcotest.(check (list string)) "J_L=" [ "bid" ]
          (names spec.Qspec.left.Qspec.eq_join_cols);
        Alcotest.(check int) "one theta conjunct" 1 (List.length spec.Qspec.theta));
    t "skyband decomposition (Example 9)" (fun () ->
        let catalog = objects_catalog [ (1, 1); (2, 2) ] in
        let spec =
          analyze catalog (Workload.Queries.listing2 ~k:50) [ "L" ]
        in
        Alcotest.(check (list string)) "G_L" [ "id" ] (names spec.Qspec.left.Qspec.group_cols);
        Alcotest.(check (list string)) "G_R" [] (names spec.Qspec.right.Qspec.group_cols);
        Alcotest.(check (list string)) "J_L" [ "x"; "y" ]
          (names spec.Qspec.left.Qspec.join_cols);
        Alcotest.(check (list string)) "no equality join cols" []
          (names spec.Qspec.left.Qspec.eq_join_cols));
    t "local conjuncts stay inside the side" (fun () ->
        let catalog = basket_catalog () in
        let spec =
          analyze catalog
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid AND i1.bid > 0 AND i2.bid > 1 \
             GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
            [ "i1" ]
        in
        Alcotest.(check int) "left local" 1 (List.length spec.Qspec.left.Qspec.local);
        Alcotest.(check int) "right local" 1 (List.length spec.Qspec.right.Qspec.local);
        Alcotest.(check int) "theta" 1 (List.length spec.Qspec.theta));
    t "pred_applicable" (fun () ->
        let spec = market_basket () in
        let phi = Sqlfront.Parser.parse_pred "COUNT(*) >= 2" in
        Alcotest.(check bool) "count star applies to both" true
          (Qspec.pred_applicable spec.Qspec.left phi
          && Qspec.pred_applicable spec.Qspec.right phi);
        let phi2 = Sqlfront.Parser.parse_pred "COUNT(i2.item) >= 2" in
        Alcotest.(check bool) "i2 column only right" true
          ((not (Qspec.pred_applicable spec.Qspec.left phi2))
          && Qspec.pred_applicable spec.Qspec.right phi2));
    t "side FDs include key and local equalities" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog ~keys:[ [ "id"; "attr" ] ]
          ~fds:[ ([ "id" ], [ "category" ]) ] "product"
          (rel [ "id"; "category"; "attr"; "val" ] []);
        let spec =
          analyze catalog (Workload.Queries.listing3 ~threshold:10) [ "S1"; "S2" ]
        in
        let fds = spec.Qspec.left.Qspec.fds in
        Alcotest.(check bool) "S1 key" true
          (Fdreason.Fd.implies fds (Fdreason.Fd.make [ "S1.id"; "S1.attr" ] [ "S1.val" ]));
        (* S1.id = S2.id is local to {S1, S2} *)
        Alcotest.(check bool) "S1.id determines S2.id" true
          (Fdreason.Fd.implies fds (Fdreason.Fd.make [ "S1.id" ] [ "S2.id" ])));
    t "outer_group_is_key via equality inference" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog ~keys:[ [ "id"; "attr" ] ]
          ~fds:[ ([ "id" ], [ "category" ]) ] "product"
          (rel [ "id"; "category"; "attr"; "val" ] []);
        let spec =
          analyze catalog (Workload.Queries.listing3 ~threshold:10) [ "S1"; "S2" ]
        in
        Alcotest.(check bool) "G_L key of S1 x S2" true (Qspec.outer_group_is_key spec));
    t "lambda_applicable accepts inner-side aggregates" (fun () ->
        let spec = market_basket () in
        Alcotest.(check bool) "ok" true (Qspec.lambda_applicable spec));
    t "lambda_applicable rejects outer-side aggregate arguments" (fun () ->
        let catalog = basket_catalog () in
        let spec =
          analyze catalog
            "SELECT i1.item, i2.item, COUNT(i1.bid) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
            [ "i2" ]
        in
        (* aggregate argument i1.bid lives on the outer ({i2} is left here?
           no: left_aliases [i2], so i1 is the inner side) — applicable *)
        Alcotest.(check bool) "applicable when arg on inner" true
          (Qspec.lambda_applicable spec);
        let spec2 =
          analyze catalog
            "SELECT i1.item, i2.item, COUNT(i1.bid) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
            [ "i1" ]
        in
        Alcotest.(check bool) "rejected when arg on outer" false
          (Qspec.lambda_applicable spec2));
    t "all_aggs deduplicates across select and having" (fun () ->
        let catalog = basket_catalog () in
        let spec =
          analyze catalog
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
            [ "i1" ]
        in
        Alcotest.(check int) "one agg" 1 (List.length (Qspec.all_aggs spec)));
    t "unsupported shapes raise" (fun () ->
        let catalog = basket_catalog () in
        (match
           analyze catalog "SELECT i1.item FROM basket i1, basket i2 WHERE i1.bid = i2.bid GROUP BY i1.item"
             [ "i1" ]
         with
        | exception Qspec.Unsupported _ -> ()
        | _ -> Alcotest.fail "no HAVING should be unsupported"));
    t "aliases_of" (fun () ->
        let q =
          Sqlfront.Parser.parse "SELECT a.x, COUNT(*) FROM t a, t b, u GROUP BY a.x HAVING COUNT(*) >= 1"
        in
        Alcotest.(check (list string)) "aliases" [ "a"; "b"; "u" ] (Qspec.aliases_of q)) ]
