(* Differential fuzzing: generate random iceberg queries over the random
   catalog and check that every optimizer configuration returns exactly the
   baseline's result.  This is the broadest safety net for the rewrite
   machinery: safety checks must either reject a technique or preserve the
   query's semantics. *)
open Core
open Relalg
open Helpers

let pick rng xs = List.nth xs (Workload.Prng.int rng (List.length xs))

(* A random skyband/dominance-flavored query over object(id, x, y). *)
let object_query rng =
  let dims = pick rng [ [ "x" ]; [ "x"; "y" ] ] in
  let cmp = pick rng [ "<="; "<" ] in
  let joins =
    List.map (fun d -> Printf.sprintf "L.%s %s R.%s" d cmp d) dims
  in
  let strict =
    if Workload.Prng.int rng 2 = 0 && List.length dims > 1 then
      [ "("
        ^ String.concat " OR "
            (List.map (fun d -> Printf.sprintf "L.%s < R.%s" d d) dims)
        ^ ")" ]
    else []
  in
  let where = String.concat " AND " (joins @ strict) in
  let group = pick rng [ "L.id" ] in
  let aggs =
    pick rng
      [ [ "COUNT(*)" ]; [ "COUNT(*)"; "SUM(R.x)" ]; [ "COUNT(*)"; "AVG(R.y)" ];
        [ "MIN(R.x)"; "COUNT(*)" ]; [ "MAX(R.y)"; "COUNT(*)" ] ]
  in
  let dir = pick rng [ ">="; "<=" ] in
  let threshold = 1 + Workload.Prng.int rng 15 in
  Printf.sprintf "SELECT %s, %s FROM object L, object R WHERE %s GROUP BY %s HAVING COUNT(*) %s %d"
    group (String.concat ", " aggs) where group dir threshold

(* A random market-basket-flavored query over basket(bid, item). *)
let basket_query rng =
  let group = pick rng [ "i1.item, i2.item"; "i1.item" ] in
  let dir = pick rng [ ">="; "<=" ] in
  let threshold = 1 + Workload.Prng.int rng 6 in
  let extra =
    pick rng [ ""; " AND i1.bid > 2"; " AND i2.bid < 20" ]
  in
  Printf.sprintf
    "SELECT %s, COUNT(*) FROM basket i1, basket i2 WHERE i1.bid = i2.bid%s GROUP BY %s HAVING COUNT(*) %s %d"
    group extra group dir threshold

let configurations =
  [ (fun c q -> Runner.run ~tech:Optimizer.all_techniques c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Apriori) c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Memo) c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Pruning) c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Memo) ~memo_strategy:`Static_rewrite c q);
    (fun c q -> Runner.run ~adaptive_apriori:true c q);
    (fun c q ->
      Runner.run
        ~nljp_config:
          { Nljp.default_config with Nljp.cache_index = false; inner_index = false }
        c q);
    (fun c q ->
      Runner.run
        ~nljp_config:
          { Nljp.default_config with Nljp.outer_order = `Desc 0; max_cache_rows = Some 16 }
        c q) ]

let check_one mk seed =
  let rng = Workload.Prng.create seed in
  let catalog = random_catalog (seed * 7) in
  let sql = mk rng in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline catalog q in
  List.for_all
    (fun run ->
      let r, _ = run catalog q in
      let ok = Relation.equal_bag base r in
      if not ok then
        QCheck.Test.fail_reportf "mismatch for:\n%s\nbase %d rows, got %d rows" sql
          (Relation.cardinality base) (Relation.cardinality r);
      ok)
    configurations

let suite =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random dominance queries: all configs match baseline"
         ~count:40 (QCheck.int_range 1 100000) (check_one object_query));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random basket queries: all configs match baseline"
         ~count:40 (QCheck.int_range 1 100000) (check_one basket_query)) ]
