(* Differential fuzzing: generate random iceberg queries over the random
   catalog and check that every optimizer configuration returns exactly the
   baseline's result.  This is the broadest safety net for the rewrite
   machinery: safety checks must either reject a technique or preserve the
   query's semantics. *)
open Core
open Relalg
open Helpers

let pick rng xs = List.nth xs (Workload.Prng.int rng (List.length xs))

(* A random skyband/dominance-flavored query over object(id, x, y). *)
let object_query rng =
  let dims = pick rng [ [ "x" ]; [ "x"; "y" ] ] in
  let cmp = pick rng [ "<="; "<" ] in
  let joins =
    List.map (fun d -> Printf.sprintf "L.%s %s R.%s" d cmp d) dims
  in
  let strict =
    if Workload.Prng.int rng 2 = 0 && List.length dims > 1 then
      [ "("
        ^ String.concat " OR "
            (List.map (fun d -> Printf.sprintf "L.%s < R.%s" d d) dims)
        ^ ")" ]
    else []
  in
  let where = String.concat " AND " (joins @ strict) in
  let group = pick rng [ "L.id" ] in
  let aggs =
    pick rng
      [ [ "COUNT(*)" ]; [ "COUNT(*)"; "SUM(R.x)" ]; [ "COUNT(*)"; "AVG(R.y)" ];
        [ "MIN(R.x)"; "COUNT(*)" ]; [ "MAX(R.y)"; "COUNT(*)" ] ]
  in
  let dir = pick rng [ ">="; "<=" ] in
  let threshold = 1 + Workload.Prng.int rng 15 in
  Printf.sprintf "SELECT %s, %s FROM object L, object R WHERE %s GROUP BY %s HAVING COUNT(*) %s %d"
    group (String.concat ", " aggs) where group dir threshold

(* A random market-basket-flavored query over basket(bid, item). *)
let basket_query rng =
  let group = pick rng [ "i1.item, i2.item"; "i1.item" ] in
  let dir = pick rng [ ">="; "<=" ] in
  let threshold = 1 + Workload.Prng.int rng 6 in
  let extra =
    pick rng [ ""; " AND i1.bid > 2"; " AND i2.bid < 20" ]
  in
  Printf.sprintf
    "SELECT %s, COUNT(*) FROM basket i1, basket i2 WHERE i1.bid = i2.bid%s GROUP BY %s HAVING COUNT(*) %s %d"
    group extra group dir threshold

let configurations =
  [ (fun c q -> Runner.run ~tech:Optimizer.all_techniques c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Apriori) c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Memo) c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Pruning) c q);
    (fun c q -> Runner.run ~tech:(Optimizer.only `Memo) ~memo_strategy:`Static_rewrite c q);
    (fun c q -> Runner.run ~adaptive_apriori:true c q);
    (fun c q ->
      Runner.run
        ~nljp_config:
          { Nljp.default_config with Nljp.cache_index = false; inner_index = false }
        c q);
    (fun c q ->
      Runner.run
        ~nljp_config:
          { Nljp.default_config with Nljp.outer_order = `Desc 0; max_cache_rows = Some 16 }
        c q) ]

let check_one mk seed =
  let rng = Workload.Prng.create seed in
  let catalog = random_catalog (seed * 7) in
  let sql = mk rng in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline catalog q in
  List.for_all
    (fun run ->
      let r, _ = run catalog q in
      let ok = Relation.equal_bag base r in
      if not ok then
        QCheck.Test.fail_reportf "mismatch for:\n%s\nbase %d rows, got %d rows" sql
          (Relation.cardinality base) (Relation.cardinality r);
      ok)
    configurations

(* ---- compiled vs interpreted expressions ----

   The staged compiler (Compile) must agree with the reference interpreter
   (Expr.eval / eval_bool) on arbitrary expressions and rows, including Null
   propagation, NULL-comparison semantics and Type_error situations (strings
   in arithmetic, division by zero, non-boolean predicates). *)

let fuzz_names = [ "a"; "b"; "c" ]
let fuzz_schema = Schema.of_names fuzz_names

let random_value rng =
  (* A narrow int range makes ties likely, so the <= / < and >= / > pairs are
     actually distinguished by the property. *)
  match Workload.Prng.int rng 12 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> Value.Int (Workload.Prng.int rng 5 - 2) (* includes 0 *)
  | 6 | 7 -> Value.Float (float_of_int (Workload.Prng.int rng 5) /. 2.)
  | 8 -> Value.Null
  | 9 -> Value.Bool (Workload.Prng.int rng 2 = 0)
  | _ -> Value.Str (pick rng [ "x"; "y" ])

let random_row rng names = Array.init (List.length names) (fun _ -> random_value rng)

let rec random_expr rng names depth =
  if depth = 0 || Workload.Prng.int rng 5 = 0 then
    if Workload.Prng.int rng 2 = 0 then Expr.Col (Schema.col (pick rng names))
    else Expr.Const (random_value rng)
  else begin
    let sub () = random_expr rng names (depth - 1) in
    match Workload.Prng.int rng 9 with
    | 0 | 1 ->
      let op = pick rng Expr.[ Add; Sub; Mul; Div ] in
      Expr.Binop (op, sub (), sub ())
    | 2 | 3 | 4 ->
      let op = pick rng Expr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
      Expr.Cmp (op, sub (), sub ())
    | 5 -> Expr.And (sub (), sub ())
    | 6 -> Expr.Or (sub (), sub ())
    | 7 -> Expr.Not (sub ())
    | _ -> Expr.Neg (sub ())
  end

let outcome f = match f () with v -> Ok v | exception Value.Type_error m -> Error m

let agree eq pp name a b =
  match a, b with
  | Ok x, Ok y when eq x y -> true
  | Error _, Error _ -> true
  | _ ->
    let show = function Ok v -> pp v | Error m -> "Type_error: " ^ m in
    QCheck.Test.fail_reportf "%s disagree:\ninterpreted: %s\ncompiled:    %s" name
      (show a) (show b)

let check_compiled_scalar seed =
  let rng = Workload.Prng.create seed in
  let e = random_expr rng fuzz_names 4 in
  let scalar = Compile.scalar fuzz_schema e in
  let predicate = outcome (fun () -> Compile.pred fuzz_schema e) in
  List.for_all
    (fun _ ->
      let row = random_row rng fuzz_names in
      let v_ok =
        agree Value.equal_total Value.to_string
          (Printf.sprintf "eval of %s" (Expr.to_string e))
          (outcome (fun () -> Expr.eval fuzz_schema row e))
          (outcome (fun () -> scalar row))
      in
      let b_ok =
        match predicate with
        | Error _ -> true (* constant folding surfaced a Type_error early *)
        | Ok p ->
          agree Bool.equal string_of_bool
            (Printf.sprintf "eval_bool of %s" (Expr.to_string e))
            (outcome (fun () -> Expr.eval_bool fuzz_schema row e))
            (outcome (fun () -> p row))
      in
      v_ok && b_ok)
    (List.init 8 (fun i -> i))

let check_compiled_join seed =
  let rng = Workload.Prng.create seed in
  let left = Schema.of_names ~q:"L" [ "a"; "b" ]
  and right = Schema.of_names ~q:"R" [ "c" ] in
  let names = [ "a"; "b"; "c" ] in
  let e = random_expr rng names 4 in
  let both = Schema.append left right in
  match outcome (fun () -> Compile.join_pred left right e) with
  | Error _ -> true
  | Ok p ->
    List.for_all
      (fun _ ->
        let lrow = random_row rng [ "a"; "b" ] and rrow = random_row rng [ "c" ] in
        agree Bool.equal string_of_bool
          (Printf.sprintf "join_pred of %s" (Expr.to_string e))
          (outcome (fun () ->
               Expr.eval_bool both (Array.append lrow rrow) e))
          (outcome (fun () -> p lrow rrow)))
      (List.init 8 (fun i -> i))

(* Exhaustive check of every comparator and arithmetic operator over a pool
   of values covering ties, sign changes, Null, Bool and Str — and of every
   operand-shape specialization in the compiler (Col/Col, Col/Const,
   Const/Col, generic, join-pair).  Random expressions rarely produce a live
   [Int = Int] tie, so this is what actually pins the </ <= and >/ >=
   distinctions in each compiled fast path. *)
let exhaustive_operators () =
  let pool =
    Value.
      [ Int (-1); Int 0; Int 1; Int 2; Float (-0.5); Float 0.; Float 1.;
        Null; Bool true; Bool false; Str "x"; Str "y" ]
  in
  let cmps = Expr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
  let binops = Expr.[ Add; Sub; Mul; Div ] in
  let check_scalar what e row =
    agree Value.equal_total Value.to_string what
      (outcome (fun () -> Expr.eval fuzz_schema row e))
      (outcome (fun () ->
           let f = Compile.scalar fuzz_schema e in
           f row))
  in
  let lschema = Schema.of_names [ "a" ] and rschema = Schema.of_names [ "b" ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let row = [| a; b; Value.Int 0 |] in
          List.iter
            (fun op ->
              let shapes =
                [ ("col/col", Expr.Cmp (op, Expr.col "a", Expr.col "b"));
                  ("col/const", Expr.Cmp (op, Expr.col "a", Expr.Const b));
                  ("const/col", Expr.Cmp (op, Expr.Const a, Expr.col "b"));
                  ( "generic",
                    Expr.Cmp
                      (op, Expr.Binop (Expr.Mul, Expr.col "a", Expr.int 1), Expr.col "b")
                  ) ]
              in
              List.iter
                (fun (shape, e) ->
                  ignore
                    (check_scalar
                       (Printf.sprintf "cmp %s %s" shape (Expr.to_string e))
                       e row))
                shapes;
              (* join-pair specialization: a from the left row, b from the right *)
              let e = Expr.Cmp (op, Expr.col "a", Expr.col "b") in
              ignore
                (agree Bool.equal string_of_bool
                   (Printf.sprintf "join cmp %s" (Expr.to_string e))
                   (outcome (fun () ->
                        Expr.eval_bool (Schema.append lschema rschema)
                          [| a; b |] e))
                   (outcome (fun () ->
                        let p = Compile.join_pred lschema rschema e in
                        p [| a |] [| b |]))))
            cmps;
          List.iter
            (fun op ->
              let e = Expr.Binop (op, Expr.col "a", Expr.col "b") in
              ignore (check_scalar (Printf.sprintf "binop %s" (Expr.to_string e)) e row))
            binops)
        pool)
    pool

let suite =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random dominance queries: all configs match baseline"
         ~count:40 (QCheck.int_range 1 100000) (check_one object_query));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random basket queries: all configs match baseline"
         ~count:40 (QCheck.int_range 1 100000) (check_one basket_query));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"compiled scalars and predicates agree with the interpreter"
         ~count:300 (QCheck.int_range 1 1000000) check_compiled_scalar);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compiled join predicates agree with the interpreter"
         ~count:300 (QCheck.int_range 1 1000000) check_compiled_join);
    Alcotest.test_case "all operators and operand shapes agree exhaustively" `Quick
      exhaustive_operators ]
