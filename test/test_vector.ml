(* Differential testing of the vectorized NLJP inner loop (Colprobe).

   The row-at-a-time inner path is the oracle: for the same query over the
   same data, the vectorized path — per-binding zone-map block skipping +
   typed aggregation kernels over a columnar inner side — must produce the
   same bag of rows across worker counts and prune/memo configurations,
   with NULL-heavy inner columns, dictionary-grouped G_R, bindings whose
   join set is empty (the [empty_finals] path), and NULL binding bounds
   (which refute every block at the zone maps). *)
open Core
open Relalg
open Helpers

(* Inner event table: int key with nulls, float measure with nulls, small
   string domain (dictionary-coded in columnar form).  Outer probe table:
   keyed id plus a (lo, hi) window drawn from a small grid so bindings
   repeat (memoization hits) and occasionally go NULL. *)
let vec_catalog seed =
  let rng = Workload.Prng.create seed in
  let catalog = Catalog.create () in
  let n = 150 + Workload.Prng.int rng 150 in
  Catalog.add_table catalog "ev"
    (rel [ "k"; "x"; "s" ]
       (List.init n (fun _ ->
            [ (if Workload.Prng.int rng 6 = 0 then Value.Null
               else iv (Workload.Prng.int rng 200));
              (if Workload.Prng.int rng 7 = 0 then Value.Null
               else fv (float_of_int (Workload.Prng.int rng 50) /. 4.));
              sv (Printf.sprintf "s%d" (Workload.Prng.int rng 4)) ])));
  let m = 25 + Workload.Prng.int rng 25 in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
    (rel [ "id"; "lo"; "hi" ]
       (List.init m (fun i ->
            let lo = 15 * Workload.Prng.int rng 12 in
            [ iv i;
              (if Workload.Prng.int rng 12 = 0 then Value.Null else iv lo);
              (if Workload.Prng.int rng 12 = 0 then Value.Null
               else iv (lo + 40)) ])));
  catalog

let iceberg_sql rng =
  let t = 1 + Workload.Prng.int rng 8 in
  match Workload.Prng.int rng 6 with
  | 0 ->
    Printf.sprintf
      "SELECT L.id, COUNT(*) FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= %d"
      t
  | 1 ->
    Printf.sprintf
      "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= %d"
      t
  | 2 ->
    Printf.sprintf
      "SELECT L.id, MIN(R.x), MAX(R.k), AVG(R.x) FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= %d"
      t
  | 3 ->
    (* G_R on the dictionary-coded string column *)
    Printf.sprintf
      "SELECT L.id, R.s, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi GROUP BY L.id, R.s HAVING COUNT(*) >= %d"
      t
  | 4 ->
    (* MIN over a string column cannot run as a typed kernel: exercises the
       build-time fallback to the row path *)
    Printf.sprintf
      "SELECT L.id, MIN(R.s), COUNT(*) FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= %d"
      t
  | _ ->
    (* threshold far above any group: every binding is unpromising, and
       bindings with an empty join set go through [empty_finals] *)
    "SELECT L.id, COUNT(*) FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 100000"

let stats_invariant name sql (rep : Runner.report) =
  match rep.Runner.nljp_stats with
  | None -> ()
  | Some s ->
    if s.Nljp.outer_rows <> s.Nljp.inner_evals + s.Nljp.pruned + s.Nljp.memo_hits
    then
      QCheck.Test.fail_reportf
        "%s: stats do not partition the outer rows for:\n\
         %s\n\
         outer=%d inner_evals=%d pruned=%d memo_hits=%d"
        name sql s.Nljp.outer_rows s.Nljp.inner_evals s.Nljp.pruned
        s.Nljp.memo_hits

let check_vector seed =
  let rng = Workload.Prng.create seed in
  let sql = iceberg_sql rng in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline (vec_catalog seed) q in
  let columnar () =
    let c = vec_catalog seed in
    Catalog.set_all_layouts c `Column;
    c
  in
  let configs =
    [ ("vector", Nljp.default_config, 1);
      ("vector workers=2", Nljp.default_config, 2);
      ("no-vector", { Nljp.default_config with Nljp.vector = false }, 1);
      ("vector no-prune", { Nljp.default_config with Nljp.pruning = false }, 1);
      ("vector no-memo", { Nljp.default_config with Nljp.memo = false }, 1);
      ( "vector neither",
        { Nljp.default_config with Nljp.pruning = false; memo = false },
        2 ) ]
  in
  List.for_all
    (fun (name, cfg, workers) ->
      let r, rep = Runner.run ~nljp_config:cfg ~workers (columnar ()) q in
      let ok = Relation.equal_bag base r in
      if not ok then
        QCheck.Test.fail_reportf
          "%s differs from the row baseline for:\n%s\nbase %d rows, got %d" name
          sql
          (Relation.cardinality base)
          (Relation.cardinality r);
      stats_invariant name sql rep;
      ok)
    configs

(* ---- deterministic cases ---- *)

(* Clustered inner table in small blocks: block-local key ranges are tight,
   so the per-binding zone-map probes refute most blocks for a selective
   window. *)
let clustered_catalog () =
  let catalog = Catalog.create () in
  let n = 2000 in
  let schema = Schema.of_names [ "k"; "x" ] in
  let rows =
    Array.init n (fun i -> row [ iv i; fv (float_of_int (i mod 97)) ])
  in
  Catalog.add_table catalog "ev"
    (Relation.of_cstore (Column.Cstore.of_rows ~block_size:64 schema rows));
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
    (rel [ "id"; "lo"; "hi" ]
       (List.init 30 (fun i ->
            let lo = i * 61 mod 1800 in
            [ iv i; iv lo; iv (lo + 80) ])));
  catalog

let clustered_sql =
  "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo AND \
   R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 1"

let test_skipping () =
  let q = Sqlfront.Parser.parse clustered_sql in
  let r, rep = Runner.run ~tech:(Optimizer.only `Memo) (clustered_catalog ()) q in
  let r0, _ =
    Runner.run ~tech:(Optimizer.only `Memo)
      ~nljp_config:{ Nljp.default_config with Nljp.vector = false }
      (clustered_catalog ()) q
  in
  check_bag "vectorized vs row inner loop" r0 r;
  match rep.Runner.nljp_stats with
  | None -> Alcotest.fail "no NLJP stats"
  | Some s ->
    Alcotest.(check bool) "vectorized" true s.Nljp.vector_on;
    Alcotest.(check bool) "evals served by kernels" true (s.Nljp.vector_evals > 0);
    Alcotest.(check bool)
      "zone maps skipped blocks per binding" true
      (s.Nljp.inner_blocks_skipped > 0);
    Alcotest.(check bool)
      "and scanned the surviving ones" true
      (s.Nljp.inner_blocks_scanned > 0)

let test_disabled_note () =
  let q = Sqlfront.Parser.parse clustered_sql in
  let _, rep =
    Runner.run ~tech:(Optimizer.only `Memo)
      ~nljp_config:{ Nljp.default_config with Nljp.vector = false }
      (clustered_catalog ()) q
  in
  match rep.Runner.nljp_stats with
  | None -> Alcotest.fail "no NLJP stats"
  | Some s ->
    Alcotest.(check bool) "not vectorized" false s.Nljp.vector_on;
    Alcotest.(check bool)
      "reason surfaced in notes" true
      (List.exists
         (fun n -> contains n "vector off: disabled by configuration")
         s.Nljp.notes)

let test_hash_precedence () =
  let catalog = basket_catalog () in
  Catalog.set_all_layouts catalog `Column;
  let q =
    Sqlfront.Parser.parse
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 WHERE \
       i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
  in
  let _, rep = Runner.run catalog q in
  match rep.Runner.nljp_stats with
  | None -> Alcotest.fail "no NLJP stats"
  | Some s ->
    Alcotest.(check bool) "hash probe wins" false s.Nljp.vector_on;
    Alcotest.(check bool)
      "reason names the hash path" true
      (List.exists (fun n -> contains n "hash probe") s.Nljp.notes)

(* A probe whose binding column is a string compared against the numeric
   inner key: the typed kernels cannot specialize the comparison, so it runs
   through the generic per-row test — formerly an [assert false] abort. *)
let str_probe_catalog () =
  let catalog = Catalog.create () in
  Catalog.add_table catalog "ev"
    (rel [ "k"; "x" ]
       (List.init 200 (fun i -> [ iv i; fv (float_of_int (i mod 13)) ])));
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
    (rel [ "id"; "lo" ]
       [ [ iv 0; sv "m" ]; [ iv 1; sv "a" ]; [ iv 2; iv 120 ]; [ iv 3; Value.Null ] ]);
  catalog

let test_str_probe_constant () =
  let sql =
    "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo \
     GROUP BY L.id HAVING COUNT(*) >= 1"
  in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline (str_probe_catalog ()) q in
  let catalog = str_probe_catalog () in
  Catalog.set_all_layouts catalog `Column;
  (* must not raise, and must agree with the row oracle *)
  let r, _ = Runner.run catalog q in
  check_bag "Str probe constant agrees with the row path" base r

(* NaN-bearing float columns, both as the zone-probed key and as the
   aggregated measure, differentially across layouts: a NaN must never let
   the zone maps refute a block holding matching rows, and NaN aggregates
   must come out bit-identical to the row path. *)
let nan_catalog seed =
  let rng = Workload.Prng.create seed in
  let catalog = Catalog.create () in
  let n = 120 + Workload.Prng.int rng 120 in
  Catalog.add_table catalog "ev"
    (rel [ "k"; "x" ]
       (List.init n (fun _ ->
            [ (match Workload.Prng.int rng 8 with
               | 0 -> fv Float.nan
               | 1 -> Value.Null
               | _ -> fv (float_of_int (Workload.Prng.int rng 150)));
              (match Workload.Prng.int rng 6 with
               | 0 -> fv Float.nan
               | _ -> fv (float_of_int (Workload.Prng.int rng 40) /. 4.)) ])));
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
    (rel [ "id"; "lo"; "hi" ]
       (List.init 25 (fun i ->
            let lo = float_of_int (10 * Workload.Prng.int rng 14) in
            [ iv i; fv lo; fv (lo +. 35.) ])));
  catalog

let check_nan seed =
  let rng = Workload.Prng.create seed in
  let agg =
    match Workload.Prng.int rng 3 with
    | 0 -> "COUNT(*), SUM(R.x)"
    | 1 -> "MIN(R.x), MAX(R.x)"
    | _ -> "COUNT(*), AVG(R.x)"
  in
  let sql =
    Printf.sprintf
      "SELECT L.id, %s FROM probe L, ev R WHERE R.k >= L.lo AND R.k <= L.hi \
       GROUP BY L.id HAVING COUNT(*) >= 1"
      agg
  in
  let q = Sqlfront.Parser.parse sql in
  let base = Runner.run_baseline (nan_catalog seed) q in
  List.for_all
    (fun lay ->
      let catalog = nan_catalog seed in
      if lay = `Column then Catalog.set_all_layouts catalog `Column;
      let r, _ = Runner.run catalog q in
      if not (Relation.equal_bag base r) then
        QCheck.Test.fail_reportf
          "NaN columns diverge from the row baseline (%s layout) for:\n%s"
          (match lay with `Row -> "row" | `Column -> "column")
          sql;
      true)
    [ `Row; `Column ]

(* SUM at the int boundary: the typed kernel must promote to float exactly
   where the row path's [Value.add] does, instead of wrapping. *)
let test_sum_overflow_boundary () =
  let near = max_int - 1 in
  let mk () =
    let catalog = Catalog.create () in
    Catalog.add_table catalog "ev"
      (rel [ "k"; "x" ]
         [ [ iv 0; iv near ]; [ iv 1; iv near ]; [ iv 2; iv 5 ];
           [ iv 3; iv (-7) ]; [ iv 10; iv 1 ] ]);
    Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
      (rel [ "id"; "lo"; "hi" ] [ [ iv 0; iv 0; iv 3 ]; [ iv 1; iv 10; iv 10 ] ]);
    catalog
  in
  let q =
    Sqlfront.Parser.parse
      "SELECT L.id, SUM(R.x), COUNT(*) FROM probe L, ev R WHERE R.k >= L.lo \
       AND R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 1"
  in
  let base = Runner.run_baseline (mk ()) q in
  let catalog = mk () in
  Catalog.set_all_layouts catalog `Column;
  let r, _ = Runner.run catalog q in
  check_bag "overflowing SUM agrees with the row path" base r;
  (* the overflowed group really is a float, not a wrapped int *)
  let saw_float = ref false in
  Relation.iter
    (fun row ->
      match row.(1) with
      | Value.Float f ->
        saw_float := true;
        Alcotest.(check bool) "promoted sum is positive" true (f > 0.)
      | Value.Int s -> Alcotest.(check bool) "unwrapped" true (s > 0)
      | _ -> ())
    r;
  Alcotest.(check bool) "boundary group promoted to float" true !saw_float

let suite =
  [ Alcotest.test_case "zone-map skipping engages on a clustered inner" `Quick
      test_skipping;
    Alcotest.test_case "Str-typed probe constant falls back gracefully" `Quick
      test_str_probe_constant;
    Alcotest.test_case "SUM promotes to float at the max_int boundary" `Quick
      test_sum_overflow_boundary;
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"NaN-bearing columns agree across layouts"
         ~count:30
         (QCheck.int_range 1 1_000_000)
         check_nan);
    Alcotest.test_case "disabling the vector path surfaces the reason" `Quick
      test_disabled_note;
    Alcotest.test_case "equality conjuncts keep the hash probe path" `Quick
      test_hash_precedence;
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"vectorized inner loop agrees with the row oracle"
         ~count:40
         (QCheck.int_range 1 1_000_000)
         check_vector) ]
