open Core
open Helpers

let t name f = Alcotest.test_case name `Quick f

let analyze catalog sql left =
  Qspec.analyze catalog (Sqlfront.Parser.parse sql) ~left_aliases:left

let check_rewrite catalog sql left =
  let spec = analyze catalog sql left in
  (match Memo_rewrite.applicable catalog spec with
   | Ok () -> ()
   | Error e -> Alcotest.failf "not applicable: %s" e);
  let rewritten = Memo_rewrite.rewrite catalog spec in
  let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
  let rw = Sqlfront.Binder.run catalog rewritten in
  check_bag (Printf.sprintf "rewrite of %s" sql) base rw

let suite =
  [ t "key case (G_L -> A_L): skyband" (fun () ->
        check_rewrite (random_catalog 5) (Workload.Queries.listing2 ~k:6) [ "L" ]);
    t "key case with several aggregates" (fun () ->
        check_rewrite (random_catalog 19)
          "SELECT L.id, COUNT(*), SUM(R.x), AVG(R.y) FROM object L, object R \
           WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 12"
          [ "L" ]);
    t "key case with G_R non-empty" (fun () ->
        check_rewrite (random_catalog 29)
          "SELECT i1.bid, i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
           WHERE i1.bid = i2.bid GROUP BY i1.bid, i1.item, i2.item HAVING COUNT(*) >= 1"
          [ "i1" ]);
    t "non-key case combines partial aggregates" (fun () ->
        check_rewrite (random_catalog 37)
          "SELECT L.x, COUNT(*), SUM(R.y) FROM object L, object R \
           WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(*) >= 2"
          [ "L" ]);
    t "non-key case with AVG (paper's f^i = (SUM, COUNT))" (fun () ->
        check_rewrite (random_catalog 41)
          "SELECT L.x, AVG(R.y) FROM object L, object R \
           WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(*) >= 2"
          [ "L" ]);
    t "non-key case with G_R non-empty" (fun () ->
        check_rewrite (random_catalog 43)
          "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
           WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
          [ "i1" ]);
    t "count distinct accepted only in the key case" (fun () ->
        let catalog = random_catalog 47 in
        let key_case_sql =
          "SELECT L.id, COUNT(DISTINCT R.x) FROM object L, object R \
           WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(DISTINCT R.x) >= 2"
        in
        (match Memo_rewrite.applicable catalog (analyze catalog key_case_sql [ "L" ]) with
         | Ok () -> ()
         | Error e -> Alcotest.failf "key case should accept count distinct: %s" e);
        let non_key_sql =
          "SELECT L.x, COUNT(DISTINCT R.y) FROM object L, object R \
           WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(DISTINCT R.y) >= 2"
        in
        match Memo_rewrite.applicable catalog (analyze catalog non_key_sql [ "L" ]) with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "non-key count distinct must be rejected");
    t "rewritten SQL contains the LJT/LJR stages" (fun () ->
        let catalog = random_catalog 5 in
        let spec = analyze catalog (Workload.Queries.listing2 ~k:6) [ "L" ] in
        let sql = Sqlfront.Pretty.query (Memo_rewrite.rewrite catalog spec) in
        Alcotest.(check bool) "distinct bindings" true (contains sql "SELECT DISTINCT");
        Alcotest.(check bool) "ljr alias" true (contains sql "ljr"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"memo rewrite preserves results on random instances"
         ~count:40 (QCheck.int_range 0 9999)
         (fun seed ->
           let catalog = random_catalog seed in
           let sql = Workload.Queries.listing2 ~k:(1 + (seed mod 10)) in
           let spec = analyze catalog sql [ "L" ] in
           match Memo_rewrite.applicable catalog spec with
           | Error _ -> false
           | Ok () ->
             let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
             let rw = Sqlfront.Binder.run catalog (Memo_rewrite.rewrite catalog spec) in
             Relalg.Relation.equal_bag base rw)) ]
