open Core
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let analyze catalog sql left =
  Qspec.analyze catalog (Sqlfront.Parser.parse sql) ~left_aliases:left

let skyband_sql k = Workload.Queries.listing2 ~k

let run_nljp ?(config = Nljp.default_config) catalog sql left =
  let spec = analyze catalog sql left in
  match Nljp.build catalog spec config with
  | Error e -> Alcotest.failf "NLJP build failed: %s" e
  | Ok op -> Nljp.execute op

let configs =
  [ ("prune+memo", Nljp.default_config);
    ("prune only", { Nljp.default_config with Nljp.memo = false });
    ("memo only", { Nljp.default_config with Nljp.pruning = false });
    ("neither", { Nljp.default_config with Nljp.pruning = false; memo = false });
    ("no CI", { Nljp.default_config with Nljp.cache_index = false });
    ("no BT", { Nljp.default_config with Nljp.inner_index = false }) ]

let equivalence =
  [ t "skyband: all configurations agree with baseline" (fun () ->
        let catalog = random_catalog 7 in
        let sql = skyband_sql 5 in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        List.iter
          (fun (name, config) ->
            let r, _ = run_nljp ~config catalog sql [ "L" ] in
            check_bag (Printf.sprintf "config %s" name) base r)
          configs);
    t "market basket via NLJP agrees with baseline (G_R non-empty)" (fun () ->
        let catalog = random_catalog 11 in
        let sql =
          "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
           WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 3"
        in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        let r, _ = run_nljp catalog sql [ "i1" ] in
        check_bag "basket" base r);
    t "non-key outer side combines algebraic partials" (fun () ->
        (* group by x only: several object rows share x, so G_L is not a key
           and results must combine across outer tuples *)
        let catalog = random_catalog 13 in
        let sql =
          "SELECT L.x, COUNT(*) FROM object L, object R \
           WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(*) >= 3"
        in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        let r, stats = run_nljp catalog sql [ "L" ] in
        check_bag "combined" base r;
        Alcotest.(check bool) "pruning off in non-key case" false stats.Nljp.pruning_on);
    t "avg and sum aggregates through the operator" (fun () ->
        let catalog = random_catalog 17 in
        let sql =
          "SELECT L.id, COUNT(*), AVG(R.x), SUM(R.y), MIN(R.x), MAX(R.y) \
           FROM object L, object R WHERE L.x <= R.x AND L.y <= R.y \
           GROUP BY L.id HAVING COUNT(*) <= 8"
        in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        let r, _ = run_nljp catalog sql [ "L" ] in
        check_bag "aggs" base r) ]

let behavior =
  [ t "memoization hits on duplicate bindings" (fun () ->
        let catalog =
          objects_catalog [ (1, 1); (1, 1); (1, 1); (2, 2); (2, 2); (9, 9) ]
        in
        let _, stats =
          run_nljp
            ~config:{ Nljp.default_config with Nljp.pruning = false }
            catalog (skyband_sql 50) [ "L" ]
        in
        Alcotest.(check bool) "memo on" true stats.Nljp.memo_on;
        Alcotest.(check int) "hits" 3 stats.Nljp.memo_hits;
        Alcotest.(check int) "inner evals" 3 stats.Nljp.inner_evals);
    t "pruning short-circuits dominated bindings (the §5 example)" (fun () ->
        (* (10,10) is dominated by > k others; all points below it must be
           pruned after it is cached *)
        let points =
          (10, 10) :: (5, 5) :: (3, 7) :: (7, 3)
          :: List.init 20 (fun i -> (20 + i, 20 + i))
        in
        let catalog = objects_catalog points in
        let _, stats =
          run_nljp
            ~config:{ Nljp.default_config with Nljp.memo = false }
            catalog (skyband_sql 3) [ "L" ]
        in
        Alcotest.(check bool) "pruning on" true stats.Nljp.pruning_on;
        Alcotest.(check bool) "pruned some" true (stats.Nljp.pruned >= 3));
    t "regression: empty join set must remain promising (anti-monotone)" (fun () ->
        (* the maximum point joins nothing; caching it as unpromising would
           prune everything below it *)
        let catalog = objects_catalog [ (9, 9); (1, 1); (2, 2); (3, 3) ] in
        let sql = skyband_sql 5 in
        let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
        let r, _ =
          run_nljp ~config:{ Nljp.default_config with Nljp.memo = false } catalog sql
            [ "L" ]
        in
        check_bag "no over-pruning" base r);
    t "stats cache accounting is consistent" (fun () ->
        let catalog = random_catalog 23 in
        let _, stats = run_nljp catalog (skyband_sql 5) [ "L" ] in
        Alcotest.(check bool) "bytes positive when rows cached" true
          (stats.Nljp.prune_cache_rows + stats.Nljp.memo_cache_rows = 0
          || stats.Nljp.cache_bytes > 0);
        Alcotest.(check bool) "outer rows seen" true (stats.Nljp.outer_rows > 0));
    t "describe mentions the component queries" (fun () ->
        let catalog = random_catalog 3 in
        let spec = analyze catalog (skyband_sql 5) [ "L" ] in
        match Nljp.build catalog spec Nljp.default_config with
        | Error e -> Alcotest.fail e
        | Ok op ->
          let d = Nljp.describe op in
          List.iter
            (fun needle ->
              Alcotest.(check bool) needle true (contains d needle))
            [ "Q_B"; "Q_R"; "Q_C"; "Q_P" ]);
    t "build rejects HAVING over the outer side" (fun () ->
        let catalog = random_catalog 3 in
        let sql =
          "SELECT L.id, COUNT(L.x) FROM object L, object R WHERE L.x <= R.x \
           GROUP BY L.id HAVING COUNT(L.x) >= 1"
        in
        let spec = analyze catalog sql [ "L" ] in
        match Nljp.build catalog spec Nljp.default_config with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "Φ references the outer side: must be rejected");
    t "memo disabled when J_L determines the outer side" (fun () ->
        (* join on the key: bindings never repeat *)
        let catalog = random_catalog 3 in
        let sql =
          "SELECT L.id, COUNT(*) FROM object L, object R WHERE L.id <= R.id \
           GROUP BY L.id HAVING COUNT(*) >= 1"
        in
        let spec = analyze catalog sql [ "L" ] in
        match Nljp.build catalog spec Nljp.default_config with
        | Error e -> Alcotest.fail e
        | Ok op ->
          let _, stats = Nljp.execute op in
          Alcotest.(check bool) "memo off" false stats.Nljp.memo_on) ]

let random_equivalence =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"NLJP equals baseline on random skyband instances"
         ~count:40 (QCheck.pair (QCheck.int_range 0 9999) (QCheck.int_range 1 12))
         (fun (seed, k) ->
           let catalog = random_catalog seed in
           let sql = skyband_sql k in
           let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
           List.for_all
             (fun (_, config) ->
               let spec = analyze catalog sql [ "L" ] in
               match Nljp.build catalog spec config with
               | Error _ -> false
               | Ok op -> Relation.equal_bag base (fst (Nljp.execute op)))
             configs));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"NLJP equals baseline on random monotone-threshold instances" ~count:30
         (QCheck.pair (QCheck.int_range 0 9999) (QCheck.int_range 1 6))
         (fun (seed, c) ->
           let catalog = random_catalog seed in
           let sql =
             Printf.sprintf
               "SELECT L.id, COUNT(*) FROM object L, object R \
                WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) \
                GROUP BY L.id HAVING COUNT(*) >= %d"
               c
           in
           let base = Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql) in
           let spec = analyze catalog sql [ "L" ] in
           match Nljp.build catalog spec Nljp.default_config with
           | Error _ -> false
           | Ok op -> Relation.equal_bag base (fst (Nljp.execute op)))) ]

let suite = equivalence @ behavior @ random_equivalence
