open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let data () =
  rel [ "k"; "v" ]
    [ [ iv 5; sv "e" ]; [ iv 1; sv "a" ]; [ iv 3; sv "c" ]; [ iv 3; sv "c2" ];
      [ iv 9; sv "i" ]; [ iv 7; sv "g" ] ]

let hash_tests =
  [ t "probe hit" (fun () ->
        let idx = Index.Hash.build (data ()) [ 0 ] in
        Alcotest.(check int) "two rows for k=3" 2
          (List.length (Index.Hash.probe idx (row [ iv 3 ]))));
    t "probe miss" (fun () ->
        let idx = Index.Hash.build (data ()) [ 0 ] in
        Alcotest.(check int) "none for k=4" 0
          (List.length (Index.Hash.probe idx (row [ iv 4 ]))));
    t "distinct keys" (fun () ->
        let idx = Index.Hash.build (data ()) [ 0 ] in
        Alcotest.(check int) "5 keys" 5 (Index.Hash.distinct_keys idx));
    t "composite key probe" (fun () ->
        let idx = Index.Hash.build (data ()) [ 0; 1 ] in
        Alcotest.(check int) "one row" 1
          (List.length (Index.Hash.probe idx (row [ iv 3; sv "c" ])))) ]

let range_list idx ~lo ~hi = List.of_seq (Index.Sorted.range idx ~lo ~hi)

let sorted_tests =
  [ t "unbounded range returns all sorted" (fun () ->
        let idx = Index.Sorted.build (data ()) [ 0 ] in
        let ks =
          List.map (fun r -> r.(0)) (range_list idx ~lo:None ~hi:None)
        in
        Alcotest.(check (list int)) "sorted" [ 1; 3; 3; 5; 7; 9 ]
          (List.map (function Value.Int i -> i | _ -> -1) ks));
    t "inclusive bounds" (fun () ->
        let idx = Index.Sorted.build (data ()) [ 0 ] in
        Alcotest.(check int) "3..7 incl" 4
          (List.length
             (range_list idx
                ~lo:(Some (iv 3, `Inclusive))
                ~hi:(Some (iv 7, `Inclusive)))));
    t "strict bounds" (fun () ->
        let idx = Index.Sorted.build (data ()) [ 0 ] in
        Alcotest.(check int) "3..7 strict" 1
          (List.length
             (range_list idx ~lo:(Some (iv 3, `Strict)) ~hi:(Some (iv 7, `Strict)))));
    t "iter_range agrees with range" (fun () ->
        let idx = Index.Sorted.build (data ()) [ 0 ] in
        let collected = ref [] in
        Index.Sorted.iter_range idx ~lo:(Some (iv 3, `Inclusive)) ~hi:None (fun r ->
            collected := r :: !collected);
        Alcotest.(check int) "same count"
          (List.length (range_list idx ~lo:(Some (iv 3, `Inclusive)) ~hi:None))
          (List.length !collected)) ]

let props =
  let pts = QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 30)) in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sorted range equals filter" ~count:200
         (QCheck.triple pts (QCheck.int_range 0 30) (QCheck.int_range 0 30))
         (fun (xs, a, b) ->
           let lo = min a b and hi = max a b in
           let data = rel [ "k" ] (List.map (fun x -> [ iv x ]) xs) in
           let idx = Index.Sorted.build data [ 0 ] in
           let via_index =
             List.length
               (range_list idx
                  ~lo:(Some (iv lo, `Inclusive))
                  ~hi:(Some (iv hi, `Strict)))
           in
           let via_filter = List.length (List.filter (fun x -> x >= lo && x < hi) xs) in
           via_index = via_filter));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hash probe equals filter" ~count:200
         (QCheck.pair pts (QCheck.int_range 0 30))
         (fun (xs, k) ->
           let data = rel [ "k" ] (List.map (fun x -> [ iv x ]) xs) in
           let idx = Index.Hash.build data [ 0 ] in
           List.length (Index.Hash.probe idx (row [ iv k ]))
           = List.length (List.filter (fun x -> x = k) xs))) ]

let suite = hash_tests @ sorted_tests @ props
