(* Parallel NLJP: chunking the outer relation across Domains with per-domain
   caches must be invisible in the result.  For each workload query we run
   the smart path sequentially and with 2 and 4 workers and require bag
   equality, plus the per-binding accounting invariant
   [outer_rows = inner_evals + pruned + memo_hits] (every binding is either
   answered from the memo, pruned via p-subsumption, or evaluated). *)
open Core
open Relalg

let t name f = Alcotest.test_case name `Quick f

let baseball_catalog rows =
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register catalog ~rows ~seed:2017);
  ignore (Workload.Baseball.register_unpivoted catalog ~rows ~seed:2017);
  Workload.Baseball.build_indexes catalog;
  catalog

let rec check_accounting name rep =
  (match rep.Runner.nljp_stats with
   | Some s ->
     Alcotest.(check int)
       (Printf.sprintf "%s: outer = inner + pruned + memo" name)
       s.Nljp.outer_rows
       (s.Nljp.inner_evals + s.Nljp.pruned + s.Nljp.memo_hits)
   | None -> ());
  List.iter (fun (cte, r) -> check_accounting (name ^ "/" ^ cte) r) rep.Runner.cte_reports

let check_query catalog name sql =
  let q = Sqlfront.Parser.parse sql in
  let seq, seq_rep = Runner.run catalog q in
  check_accounting (name ^ " seq") seq_rep;
  List.iter
    (fun workers ->
      let par, par_rep = Runner.run ~workers catalog q in
      if not (Relation.equal_bag seq par) then
        Alcotest.failf "%s: %d-worker result differs from sequential\n%s" name
          workers sql;
      check_accounting (Printf.sprintf "%s w=%d" name workers) par_rep;
      (* Chunking must not lose or duplicate bindings. *)
      match seq_rep.Runner.nljp_stats, par_rep.Runner.nljp_stats with
      | Some a, Some b ->
        Alcotest.(check int)
          (Printf.sprintf "%s w=%d: same outer cardinality" name workers)
          a.Nljp.outer_rows b.Nljp.outer_rows
      | _ -> ())
    [ 2; 4 ]

let suite =
  [ t "figure 1 queries: 2- and 4-worker NLJP bag-equal to sequential" (fun () ->
        let catalog = baseball_catalog 400 in
        List.iter
          (fun (name, sql) -> check_query catalog name sql)
          Workload.Queries.figure1);
    t "skyband and pairs at larger k" (fun () ->
        let catalog = baseball_catalog 500 in
        check_query catalog "skyband k=20" (Workload.Queries.skyband ~k:20 ());
        check_query catalog "pairs c=3 k=10" (Workload.Queries.pairs ~c:3 ~k:10 ()));
    t "complex query over the unpivoted table" (fun () ->
        let catalog = baseball_catalog 400 in
        check_query catalog "complex" (Workload.Queries.complex ~threshold:3));
    t "parallel run matches the baseline engine too" (fun () ->
        let catalog = baseball_catalog 300 in
        let sql = Workload.Queries.skyband ~k:10 () in
        let q = Sqlfront.Parser.parse sql in
        let base = Runner.run_baseline catalog q in
        let par, _ = Runner.run ~workers:4 catalog q in
        Alcotest.(check bool) "bag-equal to baseline" true
          (Relation.equal_bag base par)) ]
