(* Shared fixtures and assertion helpers for the test suites. *)
open Relalg

let value_testable =
  Alcotest.testable Value.pp Value.equal_total

let row l : Row.t = Array.of_list l
let iv i = Value.Int i
let fv f = Value.Float f
let sv s = Value.Str s

let rel names rows = Relation.of_rows (Schema.of_names names) (List.map row rows)

let check_bag msg expected actual =
  if not (Relation.equal_bag expected actual) then
    Alcotest.failf "%s:\nexpected:\n%sactual:\n%s" msg
      (Relation.to_string ~max_rows:50 (Relation.sorted expected))
      (Relation.to_string ~max_rows:50 (Relation.sorted actual))

let check_rows msg expected actual =
  check_bag msg expected actual

(* Small catalogs used across suites. *)

let basket_catalog () =
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~keys:[ [ "bid"; "item" ] ] "basket"
    (rel [ "bid"; "item" ]
       [ [ iv 1; sv "a" ]; [ iv 1; sv "b" ]; [ iv 2; sv "a" ]; [ iv 2; sv "b" ];
         [ iv 3; sv "a" ]; [ iv 3; sv "c" ]; [ iv 4; sv "b" ]; [ iv 4; sv "a" ] ]);
  catalog

let objects_catalog points =
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] ~nonneg:[ "x"; "y" ] "object"
    (rel [ "id"; "x"; "y" ]
       (List.mapi (fun i (x, y) -> [ iv i; iv x; iv y ]) points));
  catalog

(* A deterministic pseudo-random catalog for equivalence testing: tables
   basket-like and object-like with duplicates and skew. *)
let random_catalog seed =
  let rng = Workload.Prng.create seed in
  let catalog = Catalog.create () in
  let n = 40 + Workload.Prng.int rng 60 in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] ~nonneg:[ "x"; "y" ] "object"
    (rel [ "id"; "x"; "y" ]
       (List.init n (fun i ->
            [ iv i; iv (Workload.Prng.int rng 12); iv (Workload.Prng.int rng 12) ])));
  let rows = 60 + Workload.Prng.int rng 80 in
  Catalog.add_table catalog ~keys:[ [ "bid"; "item" ] ] "basket"
    (rel [ "bid"; "item" ]
       (let seen = Hashtbl.create 64 in
        List.filter_map
          (fun _ ->
            let bid = Workload.Prng.int rng 25 in
            let item = Workload.Prng.int rng 10 in
            if Hashtbl.mem seen (bid, item) then None
            else begin
              Hashtbl.add seen (bid, item) ();
              Some [ iv bid; sv (Printf.sprintf "i%d" item) ]
            end)
          (List.init rows (fun i -> i))));
  catalog

let run_sql catalog sql = Sqlfront.Binder.run catalog (Sqlfront.Parser.parse sql)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_sql_equiv ?tech catalog sql =
  let q = Sqlfront.Parser.parse sql in
  let base = Core.Runner.run_baseline catalog q in
  let opt, _ = Core.Runner.run ?tech catalog q in
  if not (Relation.equal_bag base opt) then
    Alcotest.failf "optimized result differs for:\n%s\nbase:\n%sopt:\n%s" sql
      (Relation.to_string ~max_rows:50 (Relation.sorted base))
      (Relation.to_string ~max_rows:50 (Relation.sorted opt))
