(* Edge cases of the runner's CTE handling and fallback paths. *)
open Core
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let suite =
  [ t "CTE referencing an earlier CTE" (fun () ->
        let catalog = random_catalog 81 in
        let sql =
          "WITH small AS (SELECT id, x, y FROM object WHERE x <= 6), \
           tiny AS (SELECT id, x, y FROM small WHERE y <= 6) \
           SELECT L.id, COUNT(*) FROM tiny L, tiny R \
           WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) \
           GROUP BY L.id HAVING COUNT(*) <= 4"
        in
        check_sql_equiv catalog sql);
    t "CTE name colliding with a base table" (fun () ->
        (* the CTE shadows the base table inside the query *)
        let catalog = random_catalog 82 in
        let sql =
          "WITH object AS (SELECT id, x, y FROM object WHERE x <= 5) \
           SELECT L.id, COUNT(*) FROM object L, object R \
           WHERE L.x <= R.x AND L.y <= R.y GROUP BY L.id HAVING COUNT(*) <= 6"
        in
        let q = Sqlfront.Parser.parse sql in
        let base = Runner.run_baseline catalog q in
        let opt, _ = Runner.run catalog q in
        check_bag "shadowed cte" base opt;
        (* the original table must survive the run *)
        Alcotest.(check bool) "base table intact" true (Catalog.mem catalog "object"));
    t "iceberg query whose HAVING is neither monotone nor anti-monotone" (fun () ->
        let catalog = random_catalog 83 in
        let sql =
          "SELECT L.id, COUNT(*) FROM object L, object R \
           WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) = 7"
        in
        check_sql_equiv catalog sql);
    t "HAVING with AVG threshold (unclassifiable) still correct" (fun () ->
        let catalog = random_catalog 84 in
        let sql =
          "SELECT L.id, AVG(R.x) FROM object L, object R \
           WHERE L.x <= R.x GROUP BY L.id HAVING AVG(R.x) >= 5"
        in
        check_sql_equiv catalog sql);
    t "three-way join splits" (fun () ->
        let catalog = random_catalog 85 in
        let sql =
          "SELECT a.id, COUNT(*) FROM object a, object b, object c \
           WHERE a.x <= b.x AND b.id = c.id \
           GROUP BY a.id HAVING COUNT(*) <= 12"
        in
        check_sql_equiv catalog sql);
    t "mixed-side HAVING falls back gracefully" (fun () ->
        (* Φ references both sides: no side is applicable, NLJP must refuse
           and the runner fall back to the (possibly a-priori-rewritten)
           baseline *)
        let catalog = random_catalog 86 in
        let sql =
          "SELECT L.id, COUNT(*) FROM object L, object R \
           WHERE L.x <= R.x GROUP BY L.id HAVING MAX(L.y) + MAX(R.y) >= 3"
        in
        check_sql_equiv catalog sql);
    t "deep CTE chain with grouping at each level" (fun () ->
        let catalog = random_catalog 87 in
        let sql =
          "WITH g1 AS (SELECT x, COUNT(*) AS n FROM object GROUP BY x), \
           g2 AS (SELECT a.x AS x1, b.x AS x2, COUNT(*) AS m FROM g1 a, g1 b \
                  WHERE a.n <= b.n GROUP BY a.x, b.x HAVING COUNT(*) >= 1) \
           SELECT L.x1, COUNT(*) FROM g2 L, g2 R WHERE L.x1 = R.x2 \
           GROUP BY L.x1 HAVING COUNT(*) >= 2"
        in
        check_sql_equiv catalog sql) ]
