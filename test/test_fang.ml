open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let zipf_relation ~rows ~keys ~seed =
  let rng = Workload.Prng.create seed in
  let sample = Workload.Prng.zipf_sampler rng ~n:keys ~s:1.1 in
  rel [ "k"; "payload" ]
    (List.init rows (fun i -> [ iv (sample ()); iv i ]))

let algorithms =
  [ ("naive", Fang.Naive); ("coarse", Fang.Coarse_count);
    ("defer-count", Fang.Defer_count); ("multi-stage", Fang.Multi_stage) ]

let run_alg ?config alg rel threshold =
  Fang.iceberg_count ?config ~algorithm:alg rel ~key:[ 0 ] ~threshold

let unit_tests =
  [ t "all algorithms agree with the naive oracle" (fun () ->
        let data = zipf_relation ~rows:3000 ~keys:200 ~seed:5 in
        let oracle, _ = run_alg Fang.Naive data 25 in
        List.iter
          (fun (name, alg) ->
            let r, _ = run_alg alg data 25 in
            check_bag name oracle r)
          algorithms);
    t "no results below threshold" (fun () ->
        let data = zipf_relation ~rows:2000 ~keys:100 ~seed:9 in
        let r, _ = run_alg Fang.Defer_count data 40 in
        Relation.iter
          (fun row ->
            match row.(1) with
            | Value.Int n when n < 40 -> Alcotest.fail "below threshold"
            | _ -> ())
          r);
    t "multi-stage produces no more candidates than coarse" (fun () ->
        let data = zipf_relation ~rows:5000 ~keys:400 ~seed:3 in
        let config = { Fang.default_config with Fang.buckets = 64 } in
        let _, coarse = run_alg ~config Fang.Coarse_count data 30 in
        let _, multi = run_alg ~config Fang.Multi_stage data 30 in
        Alcotest.(check bool)
          (Printf.sprintf "coarse %d >= multi %d" coarse.Fang.candidates
             multi.Fang.candidates)
          true
          (coarse.Fang.candidates >= multi.Fang.candidates));
    t "defer-count tracks far fewer exact counters than naive" (fun () ->
        let data = zipf_relation ~rows:5000 ~keys:800 ~seed:11 in
        let _, naive = run_alg Fang.Naive data 50 in
        let _, defer = run_alg Fang.Defer_count data 50 in
        Alcotest.(check bool)
          (Printf.sprintf "naive %d > defer %d" naive.Fang.exact_counters
             defer.Fang.exact_counters)
          true
          (naive.Fang.exact_counters > 2 * defer.Fang.exact_counters));
    t "empty input" (fun () ->
        let data = rel [ "k" ] [] in
        List.iter
          (fun (name, alg) ->
            let r, _ =
              Fang.iceberg_count ~algorithm:alg data ~key:[ 0 ] ~threshold:1
            in
            Alcotest.(check int) name 0 (Relation.cardinality r))
          algorithms);
    t "threshold 1 returns every distinct key" (fun () ->
        let data = zipf_relation ~rows:500 ~keys:50 ~seed:2 in
        let oracle, _ = run_alg Fang.Naive data 1 in
        let r, _ = run_alg Fang.Multi_stage data 1 in
        check_bag "all groups" oracle r);
    t "composes with a join result" (fun () ->
        (* run the market-basket iceberg over the self-join, using Fang for
           the grouping stage and comparing against SQL *)
        let catalog = random_catalog 21 in
        let sql_groups =
          run_sql catalog
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 4"
        in
        let tbl = Catalog.find catalog "basket" in
        let joined =
          Ops.nl_join
            ~pred:(Expr.Cmp (Expr.Eq, Expr.col ~q:"i1" "bid", Expr.col ~q:"i2" "bid"))
            (Relation.make (Schema.requalify "i1" tbl.Catalog.rel.Relation.schema)
               (Relation.rows tbl.Catalog.rel))
            (Relation.make (Schema.requalify "i2" tbl.Catalog.rel.Relation.schema)
               (Relation.rows tbl.Catalog.rel))
        in
        let item1 = Schema.index_of joined.Relation.schema ~q:"i1" "item" in
        let item2 = Schema.index_of joined.Relation.schema ~q:"i2" "item" in
        let r, _ =
          Fang.iceberg_count ~algorithm:Fang.Defer_count joined
            ~key:[ item1; item2 ] ~threshold:4
        in
        check_bag "fang over join" sql_groups r) ]

let sum_tests =
  [ t "SUM metric matches SQL (the paper's opening revenue example)" (fun () ->
        (* lineitem(partkey, revenue): groups with SUM(revenue) >= T *)
        let rng = Workload.Prng.create 31 in
        let data =
          rel [ "partkey"; "revenue" ]
            (List.init 2000 (fun _ ->
                 [ iv (Workload.Prng.int rng 80); iv (Workload.Prng.int rng 50) ]))
        in
        let catalog = Catalog.create () in
        Catalog.add_table catalog ~nonneg:[ "revenue" ] "lineitem" data;
        let sql_result =
          run_sql catalog
            "SELECT partkey, SUM(revenue) FROM lineitem GROUP BY partkey \
             HAVING SUM(revenue) >= 700"
        in
        List.iter
          (fun (name, alg) ->
            let r, _ =
              Fang.iceberg_count ~metric:(`Sum 1) ~algorithm:alg data ~key:[ 0 ]
                ~threshold:700
            in
            check_bag ("sum " ^ name) sql_result r)
          algorithms);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"SUM variants never lose a group" ~count:40
         (QCheck.pair (QCheck.int_range 0 9999) (QCheck.int_range 10 400))
         (fun (seed, threshold) ->
           let rng = Workload.Prng.create seed in
           let data =
             rel [ "k"; "v" ]
               (List.init 500 (fun _ ->
                    [ iv (Workload.Prng.int rng 40); iv (Workload.Prng.int rng 30) ]))
           in
           let oracle, _ =
             Fang.iceberg_count ~metric:(`Sum 1) ~algorithm:Fang.Naive data ~key:[ 0 ]
               ~threshold
           in
           List.for_all
             (fun (_, alg) ->
               let r, _ =
                 Fang.iceberg_count ~metric:(`Sum 1) ~algorithm:alg data ~key:[ 0 ]
                   ~threshold
               in
               Relation.equal_bag oracle r)
             algorithms)) ]

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"probabilistic variants never lose a group" ~count:60
         (QCheck.triple (QCheck.int_range 0 9999) (QCheck.int_range 1 20)
            (QCheck.int_range 8 128))
         (fun (seed, threshold, buckets) ->
           let data = zipf_relation ~rows:800 ~keys:60 ~seed in
           let config = { Fang.default_config with Fang.buckets } in
           let oracle, _ = run_alg Fang.Naive data threshold in
           List.for_all
             (fun (_, alg) ->
               let r, _ = run_alg ~config alg data threshold in
               Relation.equal_bag oracle r)
             algorithms)) ]

let suite = unit_tests @ sum_tests @ props
