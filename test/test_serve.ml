(* The query server: protocol plumbing, the LRU tiers, and end-to-end
   socket tests — concurrent-session differential fuzzing against one-shot
   execution, plan-cache hit/miss accounting, result-cache invalidation on
   append, and admission-control rejection under a full queue. *)
open Relalg
open Helpers
module Json = Obs.Json
module P = Serve.Protocol

(* ---- lru ---- *)

let test_lru_basic () =
  let c = Cache.Lru.create 2 in
  Cache.Lru.put c "a" 1;
  Cache.Lru.put c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.Lru.find c "a");
  (* a is now most recent; inserting c evicts b *)
  Cache.Lru.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.Lru.find c "c");
  let s = Cache.Lru.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.Lru.s_evictions;
  Alcotest.(check int) "len" 2 s.Cache.Lru.s_len

let test_lru_retain () =
  let c = Cache.Lru.create 8 in
  List.iter (fun i -> Cache.Lru.put c (string_of_int i) i) [ 1; 2; 3; 4; 5 ];
  let dropped = Cache.Lru.retain c (fun _ v -> v mod 2 = 0) in
  Alcotest.(check int) "dropped odd" 3 dropped;
  Alcotest.(check int) "left" 2 (Cache.Lru.length c);
  Alcotest.(check (option int)) "even kept" (Some 4) (Cache.Lru.find c "4");
  Alcotest.(check (option int)) "odd gone" None (Cache.Lru.find c "3")

(* ---- protocol ---- *)

let test_addr_strings () =
  Alcotest.(check string) "unix round-trip" "unix:/tmp/x.sock"
    (P.addr_to_string (P.addr_of_string "unix:/tmp/x.sock"));
  Alcotest.(check string) "bare path is unix" "unix:/tmp/y.sock"
    (P.addr_to_string (P.addr_of_string "/tmp/y.sock"));
  Alcotest.(check string) "tcp" "tcp:127.0.0.1:7070"
    (P.addr_to_string (P.addr_of_string "tcp:127.0.0.1:7070"));
  Alcotest.(check string) "host:port shorthand" "tcp:localhost:7070"
    (P.addr_to_string (P.addr_of_string "localhost:7070"))

let test_value_json_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check bool) "round-trip" true
        (Value.equal_total v (P.value_of_json (P.value_to_json v))))
    [ Value.Null; Value.Bool true; Value.Int 42; Value.Int (-7);
      Value.Float 2.5; Value.Str "x y" ];
  (* integral floats come back as ints — the documented coercion *)
  Alcotest.(check bool) "2.0 -> Int 2" true
    (P.value_of_json (P.value_to_json (Value.Float 2.)) = Value.Int 2)

let test_parse_request () =
  let ok s =
    match P.parse_request (Json.of_string s) with
    | Ok e -> e
    | Error m -> Alcotest.failf "parse_request %s: %s" s m
  in
  let e = ok {|{"id":3,"op":"query","sql":"SELECT 1"}|} in
  Alcotest.(check int) "id" 3 e.P.rq_id;
  (match e.P.rq with
   | P.Query { sql; analyze } ->
     Alcotest.(check string) "sql" "SELECT 1" sql;
     Alcotest.(check bool) "analyze defaults off" false analyze
   | _ -> Alcotest.fail "expected Query");
  (match (ok {|{"id":1,"op":"append","table":"t","rows":[[1,"a"]]}|}).P.rq with
   | P.Append { table; rows } ->
     Alcotest.(check string) "table" "t" table;
     Alcotest.(check int) "rows" 1 (List.length rows)
   | _ -> Alcotest.fail "expected Append");
  (match P.parse_request (Json.of_string {|{"id":9,"op":"nope"}|}) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown op must be rejected")

(* ---- end-to-end fixtures ---- *)

let sock_counter = ref 0

(* Full fixture: [f] gets the address and the server handle (the handle is
   how the metrics tests resolve an ephemerally bound exporter port). *)
let with_server_full ?(pool = 2) ?(queue_cap = 32) ?(maintain = true)
    ?metrics_addr ?slow_ms ?slow_log ?(trace_sample = 0.) catalogs f =
  incr sock_counter;
  let path =
    Printf.sprintf "/tmp/si-test-%d-%d.sock" (Unix.getpid ()) !sock_counter
  in
  let config =
    {
      Serve.Server.listen = `Unix path;
      pool;
      queue_cap;
      plan_cache_cap = 32;
      result_cache_cap = 64;
      max_rows = None;
      maintain;
      metrics_addr;
      slow_ms;
      slow_log;
      trace_sample;
    }
  in
  let srv = Serve.Server.start ~config catalogs in
  Fun.protect
    ~finally:(fun () -> Serve.Server.shutdown srv)
    (fun () -> f (`Unix path : P.addr) srv)

let with_server ?pool ?queue_cap ?maintain ?slow_ms ?slow_log ?trace_sample
    catalogs f =
  with_server_full ?pool ?queue_cap ?maintain ?slow_ms ?slow_log ?trace_sample
    catalogs (fun addr _srv -> f addr)

(* The wire collapses integral floats to ints (JSON numbers carry no type
   tag), so normalize both sides before bag comparison. *)
let norm_rel rel =
  Relation.map_rows rel.Relation.schema
    (Array.map (fun v ->
         match v with
         | Value.Float f when Float.is_integer f && Float.abs f < 1e15 ->
           Value.Int (int_of_float f)
         | v -> v))
    rel

let check_wire_bag msg expected response =
  let got = Serve.Client.relation_of_response response in
  if not (Core.Runner.same_result (norm_rel expected) (norm_rel got)) then
    Alcotest.failf "%s: server result differs\nexpected:\n%sgot:\n%s" msg
      (Relation.to_string ~max_rows:30 (Relation.sorted expected))
      (Relation.to_string ~max_rows:30 (Relation.sorted got))

let basket_sql =
  "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 WHERE i1.bid = i2.bid \
   GROUP BY i1.item HAVING COUNT(*) >= 2"

(* ---- basic end-to-end ---- *)

let test_serve_basic () =
  let catalog = basket_catalog () in
  let expected, _ =
    Core.Runner.run (basket_catalog ()) (Sqlfront.Parser.parse basket_sql)
  in
  ignore catalog;
  with_server [ (`Row, basket_catalog ()) ] (fun addr ->
      let c = Serve.Client.connect addr in
      Serve.Client.ping c;
      let r1 = Serve.Client.query c basket_sql in
      check_wire_bag "fresh" expected r1;
      Alcotest.(check bool) "first is uncached" false (Serve.Client.cached r1);
      let r2 = Serve.Client.query c basket_sql in
      check_wire_bag "repeat" expected r2;
      Alcotest.(check bool) "repeat is cached" true (Serve.Client.cached r2);
      (* bad SQL comes back as bad_request, not a dead connection *)
      (try
         ignore (Serve.Client.query c "SELECT FROM WHERE");
         Alcotest.fail "expected parse error"
       with Serve.Client.Server_error { code; _ } ->
         Alcotest.(check string) "parse error code" "bad_request" code);
      (* the session still works after an error *)
      let r3 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "still cached" true (Serve.Client.cached r3);
      Serve.Client.close c)

let test_serve_set_config () =
  with_server [ (`Row, basket_catalog ()) ] (fun addr ->
      let c = Serve.Client.connect addr in
      ignore
        (Serve.Client.set c
           [ ("workers", Json.Num 2.); ("transfer", Json.Bool false);
             ("tech", Json.Str "memo+pruning") ]);
      (try
         ignore (Serve.Client.set c [ ("layout", Json.Str "column") ]);
         Alcotest.fail "column layout is not loaded on this server"
       with Serve.Client.Server_error { code; _ } ->
         Alcotest.(check string) "unloaded layout" "bad_request" code);
      (try
         ignore (Serve.Client.set c [ ("nonsense", Json.Num 1.) ]);
         Alcotest.fail "unknown key must be rejected"
       with Serve.Client.Server_error { code; _ } ->
         Alcotest.(check string) "unknown key" "bad_request" code);
      let r = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "still executes after set" true
        (Serve.Client.rows_n r > 0);
      Serve.Client.close c)

(* ---- plan-cache accounting ---- *)

let session_field stats sid name =
  match Json.member "sessions" stats with
  | Some (Json.Arr sessions) ->
    let own =
      List.find_opt
        (fun s -> Json.member "session" s = Some (Json.Num (float_of_int sid)))
        sessions
    in
    (match own with
     | Some s ->
       (match Json.member name s with
        | Some (Json.Num x) -> int_of_float x
        | _ -> Alcotest.failf "session field %s missing" name)
     | None -> Alcotest.failf "session %d not in stats" sid)
  | _ -> Alcotest.fail "stats has no sessions array"

let plan_of r =
  match Json.member "plan" r with Some (Json.Str s) -> s | _ -> "?"

let test_plan_cache_accounting () =
  with_server [ (`Row, basket_catalog ()) ] (fun addr ->
      let c = Serve.Client.connect addr in
      (* result cache off: every run goes to the planner or the plan cache *)
      ignore (Serve.Client.set c [ ("result_cache", Json.Bool false) ]);
      let r1 = Serve.Client.query c basket_sql in
      let r2 = Serve.Client.query c basket_sql in
      let r3 = Serve.Client.query c basket_sql in
      Alcotest.(check string) "first plans" "miss" (plan_of r1);
      Alcotest.(check string) "second reuses" "hit" (plan_of r2);
      Alcotest.(check string) "third reuses" "hit" (plan_of r3);
      Alcotest.(check bool) "none cached" true
        (List.for_all (fun r -> not (Serve.Client.cached r)) [ r1; r2; r3 ]);
      let stats = Serve.Client.stats c in
      let sid = Serve.Client.session c in
      Alcotest.(check int) "session plan hits" 2
        (session_field stats sid "plan_hits");
      Alcotest.(check int) "session queries" 3
        (session_field stats sid "queries");
      (* plan cache off: execution still works, reported as bypass *)
      ignore (Serve.Client.set c [ ("plan_cache", Json.Bool false) ]);
      let r4 = Serve.Client.query c basket_sql in
      Alcotest.(check string) "bypass" "bypass" (plan_of r4);
      (* a config change is a different plan key: back on, it re-plans
         rather than reusing a plan prepared for other settings *)
      ignore
        (Serve.Client.set c
           [ ("plan_cache", Json.Bool true); ("workers", Json.Num 2.) ]);
      let r5 = Serve.Client.query c basket_sql in
      Alcotest.(check string) "config change misses" "miss" (plan_of r5);
      Serve.Client.close c)

(* ---- result-cache maintenance / invalidation on append ---- *)

let int_field resp name =
  match Json.member name resp with
  | Some (Json.Num n) -> int_of_float n
  | _ -> Alcotest.failf "append response lacks %s" name

(* One-shot expected result for basket_sql after appending [extra] rows. *)
let basket_expected extra =
  let catalog = basket_catalog () in
  let tbl = Catalog.find catalog "basket" in
  let rows = Array.to_list (Relation.rows tbl.Catalog.rel) @ extra in
  Catalog.replace_rows catalog "basket"
    (Relation.of_rows tbl.Catalog.rel.Relation.schema rows);
  fst (Core.Runner.run catalog (Sqlfront.Parser.parse basket_sql))

let test_append_maintenance () =
  with_server [ (`Row, basket_catalog ()); (`Column, basket_catalog ()) ]
    (fun addr ->
      let c = Serve.Client.connect addr in
      ignore (Serve.Client.query c basket_sql);
      let r2 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "warm before append" true (Serve.Client.cached r2);
      (* two more rows for bid 1: bid-1 items now pair with 4 rows *)
      let resp =
        Serve.Client.append c "basket"
          [ Json.Arr [ Json.Num 1.; Json.Str "z" ];
            Json.Arr [ Json.Num 1.; Json.Str "w" ] ]
      in
      (* the entry has a delta rule: it is folded forward, not dropped *)
      Alcotest.(check bool) "append maintained the cached result" true
        (int_field resp "incremental" >= 1);
      Alcotest.(check int) "nothing dropped" 0 (int_field resp "invalidated");
      Alcotest.(check bool) "cached plan survived the append" true
        (int_field resp "plans_refreshed" >= 1);
      let r3 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "maintained entry still serves hits" true
        (Serve.Client.cached r3);
      Alcotest.(check string) "payload marks maintenance" "maintained"
        (plan_of r3);
      let extra1 = [ row [ iv 1; sv "z" ]; row [ iv 1; sv "w" ] ] in
      check_wire_bag "post-append" (basket_expected extra1) r3;
      (* a second append folds into the already-maintained state *)
      ignore
        (Serve.Client.append c "basket" [ Json.Arr [ Json.Num 2.; Json.Str "z" ] ]);
      let r4 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "still cached after second append" true
        (Serve.Client.cached r4);
      let extra2 = extra1 @ [ row [ iv 2; sv "z" ] ] in
      let expected2 = basket_expected extra2 in
      check_wire_bag "second append" expected2 r4;
      (* both layouts saw the appends *)
      ignore (Serve.Client.set c [ ("layout", Json.Str "column") ]);
      let r5 = Serve.Client.query c basket_sql in
      check_wire_bag "column layout post-append" expected2 r5;
      Serve.Client.close c)

let test_append_invalidation () =
  (* maintenance off: appends fall back to dropping affected entries *)
  with_server ~maintain:false [ (`Row, basket_catalog ()) ] (fun addr ->
      let c = Serve.Client.connect addr in
      ignore (Serve.Client.query c basket_sql);
      let r2 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "warm before append" true (Serve.Client.cached r2);
      let resp =
        Serve.Client.append c "basket"
          [ Json.Arr [ Json.Num 1.; Json.Str "z" ];
            Json.Arr [ Json.Num 1.; Json.Str "w" ] ]
      in
      Alcotest.(check bool) "append invalidated the cached result" true
        (int_field resp "invalidated" >= 1);
      let r3 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "append evicts" false (Serve.Client.cached r3);
      check_wire_bag "post-append"
        (basket_expected [ row [ iv 1; sv "z" ]; row [ iv 1; sv "w" ] ])
        r3;
      Serve.Client.close c)

(* Regression for the lockstep bug: a bad row anywhere in the batch (or a
   table one layout catalog lacks) must leave every catalog untouched —
   decode-all-before-mutate, all-or-nothing. *)
let test_append_all_or_nothing () =
  with_server [ (`Row, basket_catalog ()); (`Column, basket_catalog ()) ]
    (fun addr ->
      let c = Serve.Client.connect addr in
      let expected0 = basket_expected [] in
      let bad_batches =
        [ (* arity mismatch in the middle of the batch *)
          [ Json.Arr [ Json.Num 9.; Json.Str "ok" ];
            Json.Arr [ Json.Num 9. ];
            Json.Arr [ Json.Num 9.; Json.Str "ok2" ] ];
          (* not even a row *)
          [ Json.Arr [ Json.Num 9.; Json.Str "ok" ]; Json.Str "junk" ] ]
      in
      List.iter
        (fun batch ->
          try
            ignore (Serve.Client.append c "basket" batch);
            Alcotest.fail "bad batch must be rejected"
          with Serve.Client.Server_error { code; _ } ->
            Alcotest.(check string) "bad batch" "bad_request" code)
        bad_batches;
      (try
         ignore
           (Serve.Client.append c "nosuch" [ Json.Arr [ Json.Num 1. ] ]);
         Alcotest.fail "unknown table must be rejected"
       with Serve.Client.Server_error { code; _ } ->
         Alcotest.(check string) "unknown table" "bad_request" code);
      (* neither layout saw any of the valid prefix rows *)
      let r_row = Serve.Client.query c basket_sql in
      check_wire_bag "row untouched" expected0 r_row;
      ignore (Serve.Client.set c [ ("layout", Json.Str "column") ]);
      let r_col = Serve.Client.query c basket_sql in
      check_wire_bag "column untouched" expected0 r_col;
      (* and a good append still lands in both *)
      ignore
        (Serve.Client.append c "basket" [ Json.Arr [ Json.Num 1.; Json.Str "z" ] ]);
      let expected1 = basket_expected [ row [ iv 1; sv "z" ] ] in
      let r_col2 = Serve.Client.query c basket_sql in
      check_wire_bag "column after good append" expected1 r_col2;
      ignore (Serve.Client.set c [ ("layout", Json.Str "row") ]);
      let r_row2 = Serve.Client.query c basket_sql in
      check_wire_bag "row after good append" expected1 r_row2;
      Serve.Client.close c)

(* Regression for the blanket-sweep bug: appending to one table must not
   evict cached results of queries that never read it. *)
let test_append_unrelated_survives () =
  let mixed_catalog () =
    let catalog = basket_catalog () in
    Catalog.add_table catalog ~keys:[ [ "id" ] ] ~nonneg:[ "x"; "y" ] "object"
      (rel [ "id"; "x"; "y" ]
         (List.init 12 (fun i -> [ iv i; iv (i mod 4); iv (i mod 3) ])));
    catalog
  in
  let object_sql =
    "SELECT o1.x, COUNT(*) FROM object o1, object o2 WHERE o1.x = o2.x GROUP \
     BY o1.x HAVING COUNT(*) >= 2"
  in
  with_server ~maintain:false [ (`Row, mixed_catalog ()) ] (fun addr ->
      let c = Serve.Client.connect addr in
      ignore (Serve.Client.query c basket_sql);
      ignore (Serve.Client.query c object_sql);
      (* append to object: the basket entry reads a disjoint table set and
         must survive even with maintenance off *)
      let resp =
        Serve.Client.append c "object"
          [ Json.Arr [ Json.Num 100.; Json.Num 1.; Json.Num 1. ] ]
      in
      Alcotest.(check int) "only the object entry dropped" 1
        (int_field resp "invalidated");
      let rb = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "unrelated entry survived" true
        (Serve.Client.cached rb);
      let ro = Serve.Client.query c object_sql in
      Alcotest.(check bool) "related entry dropped" false
        (Serve.Client.cached ro);
      Serve.Client.close c)

(* ---- append/query race ---- *)

let test_concurrent_append_query () =
  let appends = 6 in
  with_server ~pool:3 [ (`Row, basket_catalog ()) ] (fun addr ->
      let failures = Array.make 3 None in
      let stop = Atomic.make false in
      let readers =
        List.init 2 (fun i ->
            Thread.create
              (fun () ->
                try
                  let c = Serve.Client.connect addr in
                  while not (Atomic.get stop) do
                    let r = Serve.Client.query c basket_sql in
                    (* every in-flight snapshot is internally consistent:
                       at least the seed groups, never a torn row *)
                    if Serve.Client.rows_n r < 1 then
                      failwith "result lost the seed groups"
                  done;
                  Serve.Client.close c
                with e -> failures.(i) <- Some (Printexc.to_string e))
              ())
      in
      let writer =
        Thread.create
          (fun () ->
            try
              let c = Serve.Client.connect addr in
              for k = 1 to appends do
                ignore
                  (Serve.Client.append c "basket"
                     [ Json.Arr
                         [ Json.Num (float_of_int (10 + k)); Json.Str "a" ];
                       Json.Arr
                         [ Json.Num (float_of_int (10 + k)); Json.Str "b" ] ]);
                Thread.yield ()
              done;
              Serve.Client.close c
            with e -> failures.(2) <- Some (Printexc.to_string e))
          ()
      in
      Thread.join writer;
      Atomic.set stop true;
      List.iter Thread.join readers;
      Array.iter
        (function
          | Some m -> Alcotest.failf "append/query race: %s" m | None -> ())
        failures;
      (* after the dust settles, the served result (maintained or cached)
         equals a one-shot recompute over everything appended *)
      let extra =
        List.concat_map
          (fun k -> [ row [ iv (10 + k); sv "a" ]; row [ iv (10 + k); sv "b" ] ])
          (List.init appends (fun k -> k + 1))
      in
      let expected = basket_expected extra in
      let c = Serve.Client.connect addr in
      check_wire_bag "final state" expected (Serve.Client.query c basket_sql);
      Serve.Client.close c)

let test_catalog_version () =
  let catalog = basket_catalog () in
  let v0 = Catalog.version catalog in
  Catalog.add_temp catalog "tmp_x" (rel [ "a" ] [ [ iv 1 ] ]);
  Catalog.remove_table catalog "tmp_x";
  Alcotest.(check int) "temp lifecycle is version-neutral" v0
    (Catalog.version catalog);
  let tbl = Catalog.find catalog "basket" in
  Catalog.replace_rows catalog "basket" tbl.Catalog.rel;
  Alcotest.(check bool) "replace_rows bumps" true (Catalog.version catalog > v0)

(* ---- admission control ---- *)

let test_admission_rejection () =
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register catalog ~rows:4000 ~seed:2017);
  let sql = List.assoc "Q1" Workload.Queries.figure1 in
  with_server ~pool:1 ~queue_cap:1 [ (`Row, catalog) ] (fun addr ->
      (* pipeline a burst past the high-water mark on a raw connection: a
         1-deep queue with 1 worker must reject most of an 8-deep burst *)
      let path = match addr with `Unix p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      ignore (input_line ic) (* hello *);
      let n = 8 in
      for i = 1 to n do
        output_string oc
          (Json.to_string
             (P.encode_request { P.rq_id = i; rq = P.Query { sql; analyze = false } }));
        output_char oc '\n'
      done;
      flush oc;
      let ok = ref 0 and overloaded = ref 0 and other = ref 0 in
      for _ = 1 to n do
        let j = Json.of_string (input_line ic) in
        match (Json.member "ok" j, Json.member "code" j) with
        | Some (Json.Bool true), _ -> incr ok
        | _, Some (Json.Str "overloaded") -> incr overloaded
        | _ -> incr other
      done;
      Alcotest.(check int) "no unexpected errors" 0 !other;
      Alcotest.(check bool) "some executed" true (!ok >= 1);
      Alcotest.(check bool) "backpressure engaged" true (!overloaded >= 1);
      Alcotest.(check int) "every request answered" n (!ok + !overloaded);
      close_out_noerr oc;
      (* rejection did not poison the server: a fresh client still works *)
      let c = Serve.Client.connect addr in
      let r = Serve.Client.query c sql in
      Alcotest.(check bool) "healthy after burst" true (Serve.Client.rows_n r >= 0);
      Serve.Client.close c)

(* ---- concurrent-session differential fuzz ---- *)

let test_concurrent_fuzz () =
  (* Deterministic random points, shared by the server catalogs and the
     private one-shot baseline catalog. *)
  let rng = Workload.Prng.create 515 in
  let points =
    List.init 60 (fun _ ->
        (Workload.Prng.int rng 12, Workload.Prng.int rng 12))
  in
  let queries =
    List.init 10 (fun _ -> Test_fuzz.object_query rng)
  in
  let expected =
    let catalog = objects_catalog points in
    List.map
      (fun sql -> Core.Runner.run_baseline catalog (Sqlfront.Parser.parse sql))
      queries
  in
  let col_catalog = objects_catalog points in
  Catalog.set_all_layouts col_catalog `Column;
  with_server ~pool:3
    [ (`Row, objects_catalog points); (`Column, col_catalog) ]
    (fun addr ->
      (* 4 sessions x (layout x technique x transfer), all running the same
         query list concurrently, twice — the second round flows through
         the result cache, so cached results are differentially checked
         against one-shot execution too. *)
      let configs =
        [ [ ("layout", Json.Str "row"); ("tech", Json.Str "all") ];
          [ ("layout", Json.Str "column"); ("tech", Json.Str "all");
            ("transfer", Json.Bool false) ];
          [ ("layout", Json.Str "row"); ("tech", Json.Str "memo+pruning");
            ("workers", Json.Num 2.) ];
          [ ("layout", Json.Str "column"); ("tech", Json.Str "none") ] ]
      in
      let failures = Array.make (List.length configs) None in
      let threads =
        List.mapi
          (fun i cfg ->
            Thread.create
              (fun () ->
                try
                  let c = Serve.Client.connect addr in
                  ignore (Serve.Client.set c cfg);
                  for _round = 1 to 2 do
                    List.iteri
                      (fun j sql ->
                        let r = Serve.Client.query c sql in
                        let got = Serve.Client.relation_of_response r in
                        let want = List.nth expected j in
                        if
                          not
                            (Core.Runner.same_result (norm_rel want)
                               (norm_rel got))
                        then
                          failwith
                            (Printf.sprintf "session %d query %d diverged: %s"
                               i j sql))
                      queries
                  done;
                  Serve.Client.close c
                with e -> failures.(i) <- Some (Printexc.to_string e))
              ())
          configs
      in
      List.iter Thread.join threads;
      Array.iter
        (function
          | Some m -> Alcotest.failf "concurrent fuzz: %s" m
          | None -> ())
        failures)

(* ---- prepared statements (the plan cache's substrate) ---- *)

let test_prepared_statements () =
  let catalog = basket_catalog () in
  let q = Sqlfront.Parser.parse basket_sql in
  let expected, _ = Core.Runner.run catalog q in
  let p = Core.Runner.prepare catalog q in
  Alcotest.(check int) "prepared at current version"
    (Catalog.version catalog)
    (Core.Runner.prepared_version p);
  (* repeated executions reuse the decision and stay bag-equal *)
  for i = 1 to 3 do
    let r, _ = Core.Runner.run_prepared p in
    if not (Core.Runner.same_result expected r) then
      Alcotest.failf "run_prepared #%d diverged" i
  done;
  (* NLJP plans carry a shared cache tier that persists across runs *)
  (match Core.Runner.prepared_kind p with
   | `Nljp ->
     (match Core.Runner.prepared_shared_rows p with
      | Some (prune, memo) ->
        Alcotest.(check bool) "shared tier warmed" true (prune + memo > 0)
      | None -> Alcotest.fail "NLJP plan without a shared tier")
   | `Rewrite | `Direct -> ())

(* ---- telemetry: metrics op, Prometheus exporter, slow-query log ---- *)

let test_metrics_op () =
  with_server [ (`Row, basket_catalog ()) ] (fun addr ->
      let c = Serve.Client.connect addr in
      let r1 = Serve.Client.query c basket_sql in
      let r2 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "second is a result-cache hit" true
        (Serve.Client.cached r2);
      (* every query response carries its request id *)
      (match (Json.member "rid" r1, Json.member "rid" r2) with
       | Some (Json.Num a), Some (Json.Num b) ->
         Alcotest.(check bool) "rids are distinct" true (a <> b)
       | _ -> Alcotest.fail "query responses must carry rid");
      let m = Serve.Client.metrics c in
      let num j name =
        match Json.member name j with
        | Some (Json.Num x) -> x
        | _ -> Alcotest.failf "metrics missing numeric %s" name
      in
      let obj j name =
        match Json.member name j with
        | Some (Json.Obj _ as o) -> o
        | _ -> Alcotest.failf "metrics missing object %s" name
      in
      Alcotest.(check bool) "uptime" true (num m "uptime_ms" >= 0.);
      Alcotest.(check bool) "queue drained" true (num m "queue_depth" >= 0.);
      Alcotest.(check bool) "pool" true (num m "pool" >= 1.);
      let counters = obj m "counters" in
      Alcotest.(check bool) "serve.queries counted" true
        (num counters "serve.queries" >= 2.);
      let hists = obj m "histograms" in
      let qms = obj hists "serve.query_ms" in
      Alcotest.(check bool) "histogram count moved" true
        (num qms "count" >= 1.);
      Alcotest.(check bool) "histogram p95 >= p50" true
        (num qms "p95" >= num qms "p50");
      let rolling = obj m "rolling" in
      let rq = obj rolling "serve.queries" in
      Alcotest.(check bool) "rolling qps covers this burst" true
        (num rq "count" >= 2. && num rq "rate" > 0.);
      let rl = obj rolling "serve.query_ms" in
      Alcotest.(check bool) "rolling latency recorded" true
        (num rl "count" >= 1. && num rl "p50" >= 0.);
      let pc = obj m "plan_cache" in
      Alcotest.(check bool) "plan cache entries" true (num pc "entries" >= 1.);
      let rc = obj m "result_cache" in
      Alcotest.(check bool) "result cache hit recorded" true
        (num rc "hits" >= 1.);
      Alcotest.(check int) "caller's session id echoed"
        (Serve.Client.session c)
        (int_of_float (num m "session"));
      Serve.Client.close c)

let http_get host port path_q =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\n\r\n" path_q in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read fd chunk 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    end
  in
  drain ();
  Unix.close fd;
  Buffer.contents buf

let test_metrics_http () =
  with_server_full
    ~metrics_addr:(`Tcp ("127.0.0.1", 0))
    [ (`Row, basket_catalog ()) ]
    (fun addr srv ->
      let host, port =
        match Serve.Server.metrics_addr srv with
        | Some (`Tcp (h, p)) ->
          Alcotest.(check bool) "ephemeral port resolved" true (p > 0);
          (h, p)
        | _ -> Alcotest.fail "metrics listener not bound"
      in
      let c = Serve.Client.connect addr in
      ignore (Serve.Client.query c basket_sql);
      ignore
        (Serve.Client.append c "basket"
           [ Json.Arr [ Json.Num 9001.; Json.Str "itemX" ] ]);
      let body = http_get host port "/metrics" in
      Serve.Client.close c;
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "HTTP 200" true (contains body "200 OK");
      List.iter
        (fun needle ->
          if not (contains body needle) then
            Alcotest.failf "exposition missing %S:\n%s" needle body)
        [ "# TYPE serve_queries_total counter";
          "serve_queries_total";
          "# TYPE serve_query_ms histogram";
          "serve_query_ms_bucket{le=";
          "serve_query_ms_bucket{le=\"+Inf\"}";
          "serve_query_ms_count";
          "serve_queries_rolling_rate";
          "serve_uptime_seconds";
          "serve_queue_depth";
          "serve_plan_cache_entries";
          "serve_result_cache_entries";
          "serve_appends_total";
          "serve_session_queries{session=" ])

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (Json.of_string line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_slow_log () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "si-slow-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  (* Threshold 0: every query is "slow", so the log is deterministic. *)
  with_server ~slow_ms:0. ~slow_log:path [ (`Row, basket_catalog ()) ]
    (fun addr ->
      let c = Serve.Client.connect addr in
      ignore (Serve.Client.query c basket_sql);
      Serve.Client.close c);
  let records = read_jsonl path in
  Alcotest.(check bool) "at least one record" true (records <> []);
  let r = List.hd records in
  (match Json.member "sql" r with
   | Some (Json.Str s) -> Alcotest.(check string) "sql" basket_sql s
   | _ -> Alcotest.fail "record has no sql");
  (match Json.member "kind" r with
   | Some (Json.Str "slow") -> ()
   | k -> Alcotest.failf "unexpected kind: %s"
            (match k with Some j -> Json.to_string j | None -> "absent"));
  (match Json.member "config" r with
   | Some (Json.Obj _) -> ()
   | _ -> Alcotest.fail "record has no session config");
  (* the per-node Analyze summary rode along *)
  (match Json.member "analyze" r with
   | Some doc ->
     (match (Json.member "analyze" doc, Json.member "summary" doc) with
      | Some _, Some _ -> ()
      | _ -> Alcotest.fail "analyze document missing tree or summary")
   | None -> Alcotest.fail "record has no analyze document");
  (match Json.member "trace" r with
   | Some Json.Null -> ()  (* not sampled: no full span tree *)
   | _ -> Alcotest.fail "unsampled slow record must not carry a trace");
  Sys.remove path

let test_trace_sampling () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "si-trace-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  (* Sample 100%: every request runs instrumented and logs its span tree;
     instrumented runs bypass the result cache, so repeats stay fresh. *)
  with_server ~slow_log:path ~trace_sample:1.0 [ (`Row, basket_catalog ()) ]
    (fun addr ->
      let c = Serve.Client.connect addr in
      let r1 = Serve.Client.query c basket_sql in
      let r2 = Serve.Client.query c basket_sql in
      Alcotest.(check bool) "sampled queries bypass the result cache" false
        (Serve.Client.cached r1 || Serve.Client.cached r2);
      Serve.Client.close c);
  let records = read_jsonl path in
  Alcotest.(check int) "one record per sampled query" 2 (List.length records);
  List.iter
    (fun r ->
      (match Json.member "kind" r with
       | Some (Json.Str "sampled") -> ()
       | k -> Alcotest.failf "unexpected kind: %s"
                (match k with Some j -> Json.to_string j | None -> "absent"));
      match Json.member "trace" r with
      | Some (Json.Obj _ as tr) ->
        (* a real span tree: the root names the query span *)
        let root = Obs.Span.of_json tr in
        Alcotest.(check bool) "root span is the query" true
          (root.Obs.Span.name = "serve.query")
      | _ -> Alcotest.fail "sampled record must carry the full span tree")
    records;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "lru basic" `Quick test_lru_basic;
    Alcotest.test_case "lru retain" `Quick test_lru_retain;
    Alcotest.test_case "addr strings" `Quick test_addr_strings;
    Alcotest.test_case "value json round-trip" `Quick test_value_json_roundtrip;
    Alcotest.test_case "parse request" `Quick test_parse_request;
    Alcotest.test_case "serve basic" `Quick test_serve_basic;
    Alcotest.test_case "serve set config" `Quick test_serve_set_config;
    Alcotest.test_case "plan cache accounting" `Quick test_plan_cache_accounting;
    Alcotest.test_case "append maintenance" `Quick test_append_maintenance;
    Alcotest.test_case "append invalidation" `Quick test_append_invalidation;
    Alcotest.test_case "append all-or-nothing" `Quick test_append_all_or_nothing;
    Alcotest.test_case "append unrelated survives" `Quick
      test_append_unrelated_survives;
    Alcotest.test_case "append/query race" `Quick test_concurrent_append_query;
    Alcotest.test_case "catalog version" `Quick test_catalog_version;
    Alcotest.test_case "admission rejection" `Quick test_admission_rejection;
    Alcotest.test_case "concurrent differential fuzz" `Quick test_concurrent_fuzz;
    Alcotest.test_case "prepared statements" `Quick test_prepared_statements;
    Alcotest.test_case "metrics op" `Quick test_metrics_op;
    Alcotest.test_case "prometheus http exporter" `Quick test_metrics_http;
    Alcotest.test_case "slow-query log" `Quick test_slow_log;
    Alcotest.test_case "trace sampling" `Quick test_trace_sampling;
  ]
