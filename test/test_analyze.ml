(* EXPLAIN ANALYZE (Core.Analyze) and cost-model calibration
   (Core.Calibrate): Q-error arithmetic, span-tree conversion, the
   estimate-vs-actual goldens, differential equality of the instrumented
   path against plain execution, and the JSON payload. *)

open Core
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let family_catalog = Test_runner.family_catalog

let parse = Sqlfront.Parser.parse

(* ---- Q-error ---- *)

let qerror_tests =
  [ t "overestimate 10x" (fun () ->
        Alcotest.(check (float 1e-9)) "q" 10. (Analyze.qerror ~est:1000. ~act:100.));
    t "underestimate 10x" (fun () ->
        Alcotest.(check (float 1e-9)) "q" 10. (Analyze.qerror ~est:10. ~act:100.));
    t "exact" (fun () ->
        Alcotest.(check (float 1e-9)) "q" 1. (Analyze.qerror ~est:42. ~act:42.));
    t "both zero clamp to 1" (fun () ->
        Alcotest.(check (float 1e-9)) "q" 1. (Analyze.qerror ~est:0. ~act:0.));
    t "zero estimate, small actual" (fun () ->
        (* est clamps to 1, act stays 5 *)
        Alcotest.(check (float 1e-9)) "q" 5. (Analyze.qerror ~est:0. ~act:5.));
    t "sub-1 estimate clamps" (fun () ->
        Alcotest.(check (float 1e-9)) "q" 2. (Analyze.qerror ~est:0.25 ~act:2.)) ]

(* ---- summarize on a hand-built tree ---- *)

let node ?est ?act ?(children = []) label : Analyze.node =
  {
    Analyze.n_label = label;
    n_est_rows = est;
    n_est_cost = None;
    n_rows_in = None;
    n_rows_out = act;
    n_total_ms = 0.;
    n_self_ms = 0.;
    n_counters = [];
    n_notes = [];
    n_children = children;
  }

let summary_tests =
  [ t "max, median and worst over a mixed tree" (fun () ->
        (* Q-errors present: 8 (a), 2 (b), 4 (c), 1 (root) -> sorted
           [1;2;4;8]: median = (2+4)/2 = 3, max = 8. *)
        let tree =
          node ~est:100. ~act:100 "root"
            ~children:
              [ node ~est:80. ~act:10 "a";
                node ~est:10. ~act:20 "b";
                node ~est:4. ~act:1 "c";
                node "no-estimate" ]
        in
        let s = Analyze.summarize tree in
        Alcotest.(check int) "nodes" 5 s.Analyze.s_nodes;
        Alcotest.(check int) "compared" 4 s.Analyze.s_compared;
        Alcotest.(check (float 1e-9)) "max" 8. s.Analyze.s_max_q;
        Alcotest.(check (float 1e-9)) "median" 3. s.Analyze.s_median_q;
        (match s.Analyze.s_worst with
         | (label, est, act, q) :: _ ->
           Alcotest.(check string) "worst label" "a" label;
           Alcotest.(check (float 1e-9)) "worst est" 80. est;
           Alcotest.(check int) "worst act" 10 act;
           Alcotest.(check (float 1e-9)) "worst q" 8. q
         | [] -> Alcotest.fail "expected worst entries");
        Alcotest.(check (list string)) "flips default empty" [] s.Analyze.s_flips);
    t "flips are carried through" (fun () ->
        let s = Analyze.summarize ~flips:[ "pick_x: off" ] (node "root") in
        Alcotest.(check (list string)) "flips" [ "pick_x: off" ] s.Analyze.s_flips);
    t "no estimates yields neutral summary" (fun () ->
        let s = Analyze.summarize (node "root") in
        Alcotest.(check int) "compared" 0 s.Analyze.s_compared;
        Alcotest.(check (float 1e-9)) "max" 1. s.Analyze.s_max_q) ]

(* ---- of_span: self time is total minus children, clamped ---- *)

let of_span_tests =
  [ t "self time derives from children" (fun () ->
        let root = Obs.Span.enter "query" in
        let child = Obs.Span.enter ~parent:root "execute" in
        child.Obs.Span.dur_ms <- 4.;
        root.Obs.Span.dur_ms <- 10.;
        root.Obs.Span.rows_out <- Some 7;
        let n = Analyze.of_span root in
        Alcotest.(check (float 1e-9)) "total" 10. n.Analyze.n_total_ms;
        Alcotest.(check (float 1e-9)) "self" 6. n.Analyze.n_self_ms;
        Alcotest.(check (option int)) "rows_out" (Some 7) n.Analyze.n_rows_out;
        (match n.Analyze.n_children with
         | [ c ] -> Alcotest.(check (float 1e-9)) "child self" 4. c.Analyze.n_self_ms
         | _ -> Alcotest.fail "expected one child"));
    t "self time clamps at zero" (fun () ->
        (* Zero-duration plan-annotation spans under a timed parent. *)
        let root = Obs.Span.enter "execute" in
        let child = Obs.Span.enter ~parent:root "Scan t" in
        child.Obs.Span.dur_ms <- 5.;
        root.Obs.Span.dur_ms <- 3.;
        let n = Analyze.of_span root in
        Alcotest.(check (float 1e-9)) "clamped" 0. n.Analyze.n_self_ms) ]

(* ---- differential: Analyze.run is bag-equal to plain execution ---- *)

let techniques =
  [ ("all", Optimizer.all_techniques);
    ("apriori", Optimizer.only `Apriori);
    ("memo", Optimizer.only `Memo);
    ("pruning", Optimizer.only `Pruning) ]

let queries =
  [ ("skyband", Workload.Queries.listing2 ~k:8);
    ("pairs", Workload.Queries.listing4 ~c:2 ~k:4);
    ("complex", Workload.Queries.listing3 ~threshold:6) ]

let differential =
  List.concat_map
    (fun (qname, sql) ->
      List.concat_map
        (fun (tname, tech) ->
          List.concat_map
            (fun layout ->
              List.map
                (fun workers ->
                  let lname = match layout with `Row -> "row" | `Column -> "col" in
                  t
                    (Printf.sprintf "%s/%s/%s/workers=%d bag-equal" qname tname
                       lname workers)
                    (fun () ->
                      let catalog = family_catalog 100 in
                      if layout = `Column then
                        Catalog.set_all_layouts catalog `Column;
                      let q = parse sql in
                      let base = Runner.run_baseline catalog q in
                      let r, _, _ = Analyze.run ~tech ~workers catalog q in
                      check_bag
                        (Printf.sprintf "%s %s %s w=%d" qname tname lname workers)
                        base r))
                [ 1; 4 ])
            [ `Row; `Column ])
        techniques)
    queries

(* ---- goldens over the annotated tree ---- *)

let analyze_family sql =
  let catalog = family_catalog 100 in
  let q = parse sql in
  let rel, rep, n = Analyze.run catalog q in
  (catalog, rel, rep, n)

let golden_tests =
  [ t "complex query: NLJP sides and probe loop annotated" (fun () ->
        let _, _, _, n =
          analyze_family (Workload.Queries.listing3 ~threshold:6)
        in
        let s = Analyze.to_text n in
        List.iter
          (fun needle ->
            if not (contains s needle) then
              Alcotest.failf "missing %S in:\n%s" needle s)
          [ "query"; "execute"; "Q_B (outer side)"; "Q_R (inner side)";
            "NLJP probe loop"; "est~"; "q="; "est_distinct_bindings";
            "outer_rows=" ])
      ;
    t "complex query: summary lists worst estimates" (fun () ->
        let catalog, _, rep, n =
          analyze_family (Workload.Queries.listing3 ~threshold:6)
        in
        let flips = Analyze.decision_flips catalog rep n in
        let s = Analyze.summary_to_text (Analyze.summarize ~flips n) in
        List.iter
          (fun needle ->
            if not (contains s needle) then
              Alcotest.failf "missing %S in:\n%s" needle s)
          [ "plan summary:"; "Q-error max"; "worst estimates:"; "decision flips" ])
      ;
    t "CTE query: block labelled cte:<name> in tree and report" (fun () ->
        let _, _, rep, n =
          analyze_family (Workload.Queries.listing4 ~c:2 ~k:4)
        in
        let s = Analyze.to_text n in
        if not (contains s "cte:pair") then
          Alcotest.failf "missing cte:pair in:\n%s" s;
        let r = Runner.report_to_string rep in
        if not (contains r "cte:pair:") then
          Alcotest.failf "missing cte:pair: in report:\n%s" r)
      ;
    t "CTE report renders nested notes" (fun () ->
        let _, _, rep, _ =
          analyze_family (Workload.Queries.listing4 ~c:2 ~k:4)
        in
        (match rep.Runner.cte_reports with
         | [] -> Alcotest.fail "expected a CTE report"
         | (name, sub) :: _ ->
           Alcotest.(check string) "cte name" "pair" name;
           if sub.Runner.notes = [] then
             Alcotest.fail "expected notes inside the CTE report";
           let rendered = Runner.report_to_string rep in
           List.iter
             (fun note ->
               if not (contains rendered note) then
                 Alcotest.failf "nested note %S not rendered in:\n%s" note
                   rendered)
             sub.Runner.notes))
      ;
    t "baseline fallback: per-plan-node actuals attach to Cost labels"
      (fun () ->
        (* Single-table aggregate: outside the iceberg shape, so the block
           runs as the instrumented baseline plan. *)
        let _, _, _, n =
          analyze_family
            "SELECT id, COUNT(*) FROM object GROUP BY id HAVING COUNT(*) >= 1"
        in
        let s = Analyze.to_text n in
        List.iter
          (fun needle ->
            if not (contains s needle) then
              Alcotest.failf "missing %S in:\n%s" needle s)
          [ "HashAggregate"; "Scan object"; "act=120"; "pipelined" ])
      ;
    t "Q_B misestimate surfaces as a pick_memprune flip" (fun () ->
        (* Hand-built tree: a Q_B node off by 8x must be flagged. *)
        let tree =
          node "query"
            ~children:[ node ~est:10. ~act:80 "Q_B (outer side)" ]
        in
        let catalog = family_catalog 100 in
        let rep =
          {
            Runner.technique = Optimizer.no_techniques;
            apriori = [];
            nljp_outer = None;
            nljp_stats = None;
            nljp_describe = None;
            transfer = None;
            notes = [];
            cte_reports = [];
          }
        in
        let flips = Analyze.decision_flips catalog rep tree in
        match flips with
        | [ f ] ->
          if not (contains f "pick_memprune") then
            Alcotest.failf "unexpected flip text: %s" f
        | other ->
          Alcotest.failf "expected exactly one flip, got %d" (List.length other))
  ]

(* ---- JSON payload ---- *)

let json_tests =
  [ t "document round-trips through the Obs.Json parser" (fun () ->
        let catalog, _, rep, n =
          analyze_family (Workload.Queries.listing3 ~threshold:6)
        in
        let flips = Analyze.decision_flips catalog rep n in
        let doc = Analyze.document n (Analyze.summarize ~flips n) in
        let reparsed = Obs.Json.of_string (Obs.Json.to_string doc) in
        (match Obs.Json.member "analyze" reparsed with
         | Some (Obs.Json.Obj _ as tree) ->
           (match Obs.Json.member "label" tree with
            | Some (Obs.Json.Str l) -> Alcotest.(check string) "root" "query" l
            | _ -> Alcotest.fail "missing label")
         | _ -> Alcotest.fail "missing analyze tree");
        match Obs.Json.member "summary" reparsed with
        | Some (Obs.Json.Obj _ as s) ->
          (match Obs.Json.member "nodes" s with
           | Some (Obs.Json.Num x) ->
             if x < 1. then Alcotest.fail "node count missing"
           | _ -> Alcotest.fail "missing nodes")
        | _ -> Alcotest.fail "missing summary") ]

(* ---- calibration ---- *)

let calibrate_tests =
  [ t "calibrate emits cardinality and technique rows" (fun () ->
        let catalog = family_catalog 100 in
        let rows =
          Calibrate.calibrate ~workload:"test" catalog
            [ ("skyband", Workload.Queries.listing2 ~k:8) ]
        in
        if rows = [] then Alcotest.fail "expected calibration rows";
        List.iter
          (fun r ->
            if r.Calibrate.c_q < 1. then
              Alcotest.failf "q-error below 1 on %s" r.Calibrate.c_metric)
          rows;
        let has prefix =
          List.exists
            (fun r ->
              String.length r.Calibrate.c_metric >= String.length prefix
              && String.sub r.Calibrate.c_metric 0 (String.length prefix)
                 = prefix)
            rows
        in
        if not (has "cardinality:") then Alcotest.fail "no cardinality rows";
        if not (has "prune:inner_evals") then Alcotest.fail "no prune row")
      ;
    t "worst sorts by descending Q-error" (fun () ->
        let catalog = family_catalog 100 in
        let rows =
          Calibrate.calibrate ~workload:"test" catalog
            [ ("complex", Workload.Queries.listing3 ~threshold:6) ]
        in
        let w = Calibrate.worst 3 rows in
        let qs = List.map (fun r -> r.Calibrate.c_q) w in
        Alcotest.(check (list (float 1e-9)))
          "sorted desc" (List.sort (fun a b -> Float.compare b a) qs) qs)
      ;
    t "to_text and to_json cover every row" (fun () ->
        let catalog = family_catalog 100 in
        let rows =
          Calibrate.calibrate ~workload:"test" catalog
            [ ("skyband", Workload.Queries.listing2 ~k:8) ]
        in
        let txt = Calibrate.to_text rows in
        List.iter
          (fun r ->
            if not (contains txt r.Calibrate.c_metric) then
              Alcotest.failf "metric %s missing from text" r.Calibrate.c_metric)
          rows;
        match Calibrate.to_json rows with
        | Obs.Json.Arr l ->
          Alcotest.(check int) "arity" (List.length rows) (List.length l)
        | _ -> Alcotest.fail "expected a JSON array") ]

let suite =
  qerror_tests @ summary_tests @ of_span_tests @ differential @ golden_tests
  @ json_tests @ calibrate_tests
