(* Plan-tree and executor coverage: schema derivation for every node kind,
   EXPLAIN output shapes (the Appendix E comparison), streaming vs
   materializing paths, and parallel-domain equivalence. *)
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let catalog () =
  let c = Catalog.create () in
  Catalog.add_table c ~keys:[ [ "id" ] ] "pts"
    (rel [ "id"; "x"; "grp" ]
       (List.init 60 (fun i -> [ iv i; iv (i mod 12); iv (i mod 4) ])));
  Catalog.build_sorted_index c "pts" [ "x" ];
  c

let scan alias = Plan.Scan { table = "pts"; alias = Some alias; filter = None }

let schema_tests =
  [ t "scan schema is alias-qualified" (fun () ->
        let s = Plan.schema_of (catalog ()) (scan "a") in
        Alcotest.(check string) "cols" "(a.id, a.x, a.grp)" (Schema.to_string s));
    t "join schema concatenates" (fun () ->
        let s =
          Plan.schema_of (catalog ())
            (Plan.Nl_join { pred = Expr.tt; left = scan "a"; right = scan "b" })
        in
        Alcotest.(check int) "arity" 6 (Schema.arity s));
    t "group schema is group cols then aggs" (fun () ->
        let s =
          Plan.schema_of (catalog ())
            (Plan.Group
               {
                 group_cols = [ (Expr.col ~q:"a" "grp", Schema.col ~q:"a" "grp") ];
                 aggs = [ (Agg.Count_star, Schema.col "n") ];
                 input = scan "a";
               })
        in
        Alcotest.(check string) "cols" "(a.grp, n)" (Schema.to_string s));
    t "rename unqualifies then requalifies" (fun () ->
        let s = Plan.schema_of (catalog ()) (Plan.Rename ("z", scan "a")) in
        Alcotest.(check string) "cols" "(z.id, z.x, z.grp)" (Schema.to_string s));
    t "values schema uses the embedded name" (fun () ->
        let s =
          Plan.schema_of (catalog ())
            (Plan.Values { name = "v"; rel = rel [ "k" ] [ [ iv 1 ] ] })
        in
        Alcotest.(check string) "cols" "(v.k)" (Schema.to_string s)) ]

let explain_tests =
  [ t "appendix E shape: index scan under nested loop" (fun () ->
        let c = catalog () in
        let plan =
          Sqlfront.Binder.bind c
            (Sqlfront.Parser.parse
               "SELECT a.id, COUNT(*) FROM pts a, pts b WHERE a.x < b.x \
                GROUP BY a.id HAVING COUNT(*) <= 5")
        in
        let text = Plan.explain plan in
        List.iter
          (fun needle -> Alcotest.(check bool) needle true (contains text needle))
          [ "HashAggregate"; "Nested Loop"; "Index Scan"; "Filter: __agg0" ]);
    t "merge join label in explain" (fun () ->
        let c = catalog () in
        let plan =
          Sqlfront.Binder.bind ~join_pref:`Merge c
            (Sqlfront.Parser.parse "SELECT a.id FROM pts a, pts b WHERE a.grp = b.grp")
        in
        Alcotest.(check bool) "Merge Join" true (contains (Plan.explain plan) "Merge Join")) ]

let exec_tests =
  [ t "filter above a join" (fun () ->
        let c = catalog () in
        let r =
          run_sql c
            "SELECT a.id, b.id FROM pts a, pts b \
             WHERE a.grp = b.grp AND a.x + b.x = 22"
        in
        (* cross-check against a nested-loop-only formulation *)
        let r2 =
          Exec.run c
            (Plan.Filter
               ( Expr.Cmp
                   ( Expr.Eq,
                     Expr.Binop (Expr.Add, Expr.col ~q:"a" "x", Expr.col ~q:"b" "x"),
                     Expr.int 22 ),
                 Plan.Nl_join
                   {
                     pred = Expr.Cmp (Expr.Eq, Expr.col ~q:"a" "grp", Expr.col ~q:"b" "grp");
                     left = scan "a";
                     right = scan "b";
                   } ))
        in
        Alcotest.(check int) "same cardinality" (Relation.cardinality r2)
          (Relation.cardinality r));
    t "index join falls back without the index" (fun () ->
        let c = catalog () in
        let plan =
          Plan.Index_nl_join
            {
              pred = Expr.Cmp (Expr.Lt, Expr.col ~q:"a" "x", Expr.col ~q:"b" "x");
              left = scan "a";
              table = "pts";
              alias = Some "b";
              key_col = "x";
              lo = Some (Expr.col ~q:"a" "x", `Strict);
              hi = None;
            }
        in
        let with_index = Exec.run c plan in
        Catalog.drop_indexes c "pts";
        let without = Exec.run c plan in
        check_bag "fallback equal" with_index without);
    t "parallel collect equals sequential for materialized joins" (fun () ->
        let c = catalog () in
        let plan =
          Plan.Nl_join
            {
              pred = Expr.Cmp (Expr.Le, Expr.col ~q:"a" "x", Expr.col ~q:"b" "x");
              left = scan "a";
              right = scan "b";
            }
        in
        check_bag "par=seq" (Exec.run c plan) (Exec.run ~workers:4 c plan));
    t "parallel group over index join equals sequential" (fun () ->
        let c = catalog () in
        let q =
          Sqlfront.Parser.parse
            "SELECT a.grp, COUNT(*), SUM(b.x) FROM pts a, pts b WHERE a.x < b.x \
             GROUP BY a.grp HAVING COUNT(*) >= 1"
        in
        check_bag "par=seq" (Sqlfront.Binder.run c q) (Sqlfront.Binder.run ~workers:3 c q));
    t "semijoin plan node" (fun () ->
        let c = catalog () in
        let sub = Plan.Project ([ (Expr.col ~q:"a" "grp", Schema.col "g") ],
                                Plan.Filter (Expr.Cmp (Expr.Eq, Expr.col ~q:"a" "id", Expr.int 1), scan "a")) in
        let plan =
          Plan.Semijoin { keys = [ Expr.col ~q:"b" "grp" ]; sub; input = scan "b" }
        in
        let r = Exec.run c plan in
        Alcotest.(check int) "grp of id 1 only" 15 (Relation.cardinality r));
    t "limit above sort is stable under workers" (fun () ->
        let c = catalog () in
        let q =
          Sqlfront.Parser.parse "SELECT id FROM pts ORDER BY x DESC, id ASC LIMIT 3"
        in
        check_bag "same" (Sqlfront.Binder.run c q) (Sqlfront.Binder.run ~workers:4 c q)) ]

let pretty_tests =
  [ t "rewritten queries re-parse (a-priori output is valid SQL)" (fun () ->
        let catalog = basket_catalog () in
        let spec =
          Core.Qspec.analyze catalog
            (Sqlfront.Parser.parse
               "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
                WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2")
            ~left_aliases:[ "i1" ]
        in
        let sql = Sqlfront.Pretty.query (Core.Apriori.apply spec `Left) in
        let reparsed = Sqlfront.Parser.parse sql in
        Alcotest.(check string) "fixpoint" sql (Sqlfront.Pretty.query reparsed));
    t "memo rewrite output re-parses" (fun () ->
        let catalog = random_catalog 71 in
        let spec =
          Core.Qspec.analyze catalog
            (Sqlfront.Parser.parse (Workload.Queries.listing2 ~k:5))
            ~left_aliases:[ "L" ]
        in
        let sql = Sqlfront.Pretty.query (Core.Memo_rewrite.rewrite catalog spec) in
        let reparsed = Sqlfront.Parser.parse sql in
        Alcotest.(check string) "fixpoint" sql (Sqlfront.Pretty.query reparsed)) ]

let suite = schema_tests @ explain_tests @ exec_tests @ pretty_tests
