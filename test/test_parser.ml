open Sqlfront

let t name f = Alcotest.test_case name `Quick f

let parses sql = ignore (Parser.parse sql)

let roundtrip sql =
  (* parse → print → parse → print must be a fixpoint *)
  let q1 = Parser.parse sql in
  let s1 = Pretty.query q1 in
  let q2 = Parser.parse s1 in
  let s2 = Pretty.query q2 in
  Alcotest.(check string) "pretty fixpoint" s1 s2

let lexing =
  [ t "keywords case-insensitive" (fun () ->
        parses "select 1 a from t";
        parses "SELECT 1 a FROM t";
        parses "SeLeCt 1 a FrOm t");
    t "comments skipped" (fun () -> parses "SELECT a FROM t -- trailing comment");
    t "operators" (fun () ->
        let toks = Lexer.tokenize "<= >= <> != < > =" in
        Alcotest.(check int) "7+eof" 8 (Array.length toks));
    t "string literal with escaped quote" (fun () ->
        match Lexer.tokenize "'it''s'" with
        | [| Lexer.STRING s; Lexer.EOF |] -> Alcotest.(check string) "s" "it's" s
        | _ -> Alcotest.fail "bad tokens");
    t "unterminated string raises" (fun () ->
        match Lexer.tokenize "'oops" with
        | exception Lexer.Lex_error _ -> ()
        | _ -> Alcotest.fail "expected lex error");
    t "float literal" (fun () ->
        match Lexer.tokenize "3.25" with
        | [| Lexer.FLOAT f; Lexer.EOF |] -> Alcotest.(check (float 0.0)) "f" 3.25 f
        | _ -> Alcotest.fail "bad tokens") ]

let structure =
  [ t "select list with aliases" (fun () ->
        let q = Parser.parse "SELECT a AS x, b y, c FROM t" in
        match q.Ast.select with
        | [ Ast.Sel_expr (_, Some "x"); Ast.Sel_expr (_, Some "y"); Ast.Sel_expr (_, None) ] ->
          ()
        | _ -> Alcotest.fail "bad select list");
    t "table aliases with and without AS" (fun () ->
        let q = Parser.parse "SELECT * FROM foo AS f, bar b, baz" in
        match q.Ast.from with
        | [ Ast.T_table ("foo", Some "f"); Ast.T_table ("bar", Some "b");
            Ast.T_table ("baz", None) ] ->
          ()
        | _ -> Alcotest.fail "bad from list");
    t "count star and count(1)" (fun () ->
        let q = Parser.parse "SELECT COUNT(*) c1, COUNT(1) c2 FROM t" in
        match q.Ast.select with
        | [ Ast.Sel_expr (Ast.S_agg Ast.A_count_star, _);
            Ast.Sel_expr (Ast.S_agg Ast.A_count_star, _) ] ->
          ()
        | _ -> Alcotest.fail "bad aggregates");
    t "count distinct" (fun () ->
        let q = Parser.parse "SELECT COUNT(DISTINCT a) FROM t" in
        match q.Ast.select with
        | [ Ast.Sel_expr (Ast.S_agg (Ast.A_count_distinct _), _) ] -> ()
        | _ -> Alcotest.fail "bad count distinct");
    t "group by qualified columns" (fun () ->
        let q = Parser.parse "SELECT t.a FROM t GROUP BY t.a, b" in
        Alcotest.(check int) "2 cols" 2 (List.length q.Ast.group_by));
    t "having with aggregate" (fun () ->
        let q = Parser.parse "SELECT a FROM t GROUP BY a HAVING COUNT(*) >= 10" in
        match q.Ast.having with
        | Some (Ast.P_cmp (Relalg.Expr.Ge, Ast.S_agg Ast.A_count_star, Ast.S_const _)) -> ()
        | _ -> Alcotest.fail "bad having");
    t "where precedence: AND binds tighter than OR" (fun () ->
        let q = Parser.parse "SELECT a FROM t WHERE a = 1 OR a = 2 AND b = 3" in
        match q.Ast.where with
        | Some (Ast.P_or (_, Ast.P_and (_, _))) -> ()
        | _ -> Alcotest.fail "bad precedence");
    t "parenthesized or inside and" (fun () ->
        let q = Parser.parse "SELECT a FROM t WHERE (a = 1 OR a = 2) AND b = 3" in
        match q.Ast.where with
        | Some (Ast.P_and (Ast.P_or (_, _), _)) -> ()
        | _ -> Alcotest.fail "bad grouping");
    t "scalar parentheses vs predicate parentheses" (fun () ->
        let q = Parser.parse "SELECT a FROM t WHERE (a + 1) * 2 > b" in
        match q.Ast.where with
        | Some (Ast.P_cmp (Relalg.Expr.Gt, Ast.S_binop (Relalg.Expr.Mul, _, _), _)) -> ()
        | _ -> Alcotest.fail "bad scalar parens");
    t "tuple IN subquery" (fun () ->
        let q = Parser.parse "SELECT a FROM t WHERE (a, b) IN (SELECT x, y FROM u)" in
        match q.Ast.where with
        | Some (Ast.P_in ([ _; _ ], _)) -> ()
        | _ -> Alcotest.fail "bad tuple IN");
    t "single-column IN without parens" (fun () ->
        let q = Parser.parse "SELECT a FROM t WHERE a IN (SELECT x FROM u)" in
        match q.Ast.where with
        | Some (Ast.P_in ([ _ ], _)) -> ()
        | _ -> Alcotest.fail "bad IN");
    t "with clause" (fun () ->
        let q =
          Parser.parse
            "WITH c1 AS (SELECT a FROM t), c2 AS (SELECT b FROM u) SELECT * FROM c1, c2"
        in
        Alcotest.(check int) "2 ctes" 2 (List.length q.Ast.with_defs));
    t "subquery in FROM" (fun () ->
        let q = Parser.parse "SELECT s.a FROM (SELECT a FROM t) s" in
        match q.Ast.from with
        | [ Ast.T_subquery (_, "s") ] -> ()
        | _ -> Alcotest.fail "bad subquery");
    t "order by and limit" (fun () ->
        let q = Parser.parse "SELECT a FROM t ORDER BY a DESC, b LIMIT 5" in
        Alcotest.(check int) "2 keys" 2 (List.length q.Ast.order_by);
        Alcotest.(check (option int)) "limit" (Some 5) q.Ast.limit);
    t "trailing semicolon allowed" (fun () -> parses "SELECT a FROM t;");
    t "trailing garbage rejected" (fun () ->
        match Parser.parse "SELECT a FROM t extra stuff everywhere" with
        | exception Parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    t "arithmetic precedence" (fun () ->
        match Parser.parse_scalar "1 + 2 * 3" with
        | Ast.S_binop (Relalg.Expr.Add, _, Ast.S_binop (Relalg.Expr.Mul, _, _)) -> ()
        | _ -> Alcotest.fail "bad precedence");
    t "NOT binds predicates" (fun () ->
        match Parser.parse_pred "NOT a = 1 AND b = 2" with
        | Ast.P_and (Ast.P_not _, _) -> ()
        | _ -> Alcotest.fail "bad NOT") ]

let paper_queries =
  let queries =
    [ ("listing1", Workload.Queries.listing1 ~threshold:20);
      ("listing2", Workload.Queries.listing2 ~k:50);
      ("listing3", Workload.Queries.listing3 ~threshold:10);
      ("listing4", Workload.Queries.listing4 ~c:3 ~k:20) ]
    @ Workload.Queries.figure1
  in
  List.map
    (fun (name, sql) -> t (Printf.sprintf "roundtrip %s" name) (fun () -> roundtrip sql))
    queries

let suite = lexing @ structure @ paper_queries
