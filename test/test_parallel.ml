(* Edge cases of the Domain-chunking helpers: splitting must lose nothing,
   keep order, and degrade to a single chunk on degenerate inputs, because
   both the Vendor-A executor and parallel NLJP rely on [concat (split n a)]
   being [a] to reassemble results in outer order. *)
open Relalg

let t name f = Alcotest.test_case name `Quick f

let concat_chunks chunks = Array.concat chunks

let check_split msg n arr =
  let chunks = Parallel.split n arr in
  Alcotest.(check (array int)) (msg ^ ": concat = original") arr (concat_chunks chunks);
  List.iter
    (fun c ->
      if Array.length arr > 0 && List.length chunks > 1 && Array.length c = 0 then
        Alcotest.failf "%s: empty chunk in multi-chunk split" msg)
    chunks;
  chunks

let suite =
  [ t "split of empty array is a single empty chunk" (fun () ->
        Alcotest.(check int) "one chunk" 1 (List.length (Parallel.split 4 [||]));
        Alcotest.(check (array int)) "empty" [||] (List.hd (Parallel.split 4 [||])));
    t "split with workers greater than length" (fun () ->
        let arr = [| 1; 2; 3 |] in
        let chunks = check_split "workers>len" 8 arr in
        Alcotest.(check bool) "at most len chunks" true (List.length chunks <= 3));
    t "split with workers <= 0 keeps the array whole" (fun () ->
        let arr = [| 5; 6; 7; 8 |] in
        List.iter
          (fun n ->
            let chunks = check_split (Printf.sprintf "workers=%d" n) n arr in
            Alcotest.(check int) "single chunk" 1 (List.length chunks))
          [ 0; -1; 1 ]);
    t "split chunk sizes are near-equal" (fun () ->
        let arr = Array.init 103 (fun i -> i) in
        let chunks = check_split "near-equal" 4 arr in
        Alcotest.(check int) "four chunks" 4 (List.length chunks);
        let sizes = List.map Array.length chunks in
        let mn = List.fold_left min max_int sizes
        and mx = List.fold_left max 0 sizes in
        Alcotest.(check bool) "sizes differ by at most 1" true (mx - mn <= 1));
    t "run_chunks preserves chunk order" (fun () ->
        let arr = Array.init 57 (fun i -> i) in
        List.iter
          (fun workers ->
            let results = Parallel.run_chunks ~workers arr Array.to_list in
            Alcotest.(check (list int))
              (Printf.sprintf "order stable with %d workers" workers)
              (Array.to_list arr) (List.concat results))
          [ 1; 2; 4; 16 ]);
    t "run_chunks on empty and degenerate inputs" (fun () ->
        Alcotest.(check (list (list int)))
          "empty array" [ [] ]
          (Parallel.run_chunks ~workers:4 [||] Array.to_list);
        Alcotest.(check (list int))
          "workers=0" [ 1; 2 ]
          (List.concat (Parallel.run_chunks ~workers:0 [| 1; 2 |] Array.to_list));
        Alcotest.(check (list int))
          "workers > length" [ 1; 2; 3 ]
          (List.concat (Parallel.run_chunks ~workers:9 [| 1; 2; 3 |] Array.to_list))) ]
