(* Predicate transfer (DESIGN.md §11): Bloom-filter unit properties, the
   optimizer gate's verdicts, one end-to-end reduction check, and the
   differential fuzz grid proving transfer-on results stay bag-equal to
   transfer-off across technique × layout × workers — including under
   deliberately tiny, collision-heavy filters ([Bloom.test_force_bits]),
   so false positives can only ever cost work, never rows. *)
open Core
open Relalg
open Helpers

let with_ref r v f =
  let saved = !r in
  r := v;
  Fun.protect ~finally:(fun () -> r := saved) f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- Bloom filter units ---- *)

let test_bloom_membership () =
  let bl = Column.Bloom.create ~expected:64 () in
  let vals =
    List.init 64 (fun i ->
        if i mod 3 = 0 then Value.Str (Printf.sprintf "s%d" i)
        else Value.Int (i * 7919))
  in
  List.iter (Column.Bloom.add bl) vals;
  List.iter
    (fun v ->
      Alcotest.(check bool) "no false negative" true (Column.Bloom.mem bl v))
    vals;
  Alcotest.(check int) "count" 64 (Column.Bloom.count bl)

let test_bloom_null_and_empty () =
  let bl = Column.Bloom.create ~expected:8 () in
  Alcotest.(check bool) "empty filter" false (Column.Bloom.mem bl (iv 3));
  Column.Bloom.add bl Value.Null;
  Alcotest.(check int) "null add ignored" 0 (Column.Bloom.count bl);
  Column.Bloom.add bl (iv 1);
  Alcotest.(check bool) "null probe" false (Column.Bloom.mem bl Value.Null);
  Alcotest.(check bool) "real member" true (Column.Bloom.mem bl (iv 1))

let test_bloom_int_float_equality () =
  (* SQL equality: 2 = 2.0, so the filter must agree across numeric types. *)
  let bl = Column.Bloom.create ~expected:4 () in
  Column.Bloom.add bl (Value.Float 2.0);
  Alcotest.(check bool) "int image member" true (Column.Bloom.mem bl (iv 2))

let test_bloom_forced_tiny () =
  with_ref Column.Bloom.test_force_bits (Some 63) @@ fun () ->
  let bl = Column.Bloom.create ~expected:10_000 () in
  Alcotest.(check int) "clamped to forced bits" 63 (Column.Bloom.nbits bl);
  let vals = List.init 500 (fun i -> Value.Int i) in
  List.iter (Column.Bloom.add bl) vals;
  (* A saturated filter answers true a lot — but never false for a member. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "saturated, no false negative" true
        (Column.Bloom.mem bl v))
    vals

let test_bloom_range_skip () =
  let bl = Column.Bloom.create ~expected:4 () in
  List.iter (Column.Bloom.add bl) [ iv 100; iv 200 ];
  let zm vals = List.fold_left Column.Zmap.observe Column.Zmap.empty vals in
  Alcotest.(check bool) "overlapping block" true
    (Column.Bloom.range_may_match bl (zm [ iv 150; iv 250 ]));
  Alcotest.(check bool) "disjoint block refuted" false
    (Column.Bloom.range_may_match bl (zm [ iv 300; iv 400 ]))

(* ---- catalogs and queries ---- *)

let kv_catalog ?(rows = 400) ?(layout = `Row) () =
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register_unpivoted catalog ~rows ~seed:2017);
  Workload.Baseball.build_indexes catalog ~bt:true;
  if layout = `Column then Catalog.set_all_layouts catalog `Column;
  catalog

(* A category value that actually occurs, read off the generated table, so
   the filtered query is selective but non-empty at any scale. *)
let some_category catalog =
  let tbl = Catalog.find catalog Workload.Baseball.unpivoted_name in
  let i = Schema.index_of tbl.Catalog.rel.Relation.schema "category" in
  let found = ref None in
  Relation.iter
    (fun row -> if !found = None then found := Some (Value.to_string row.(i)))
    tbl.Catalog.rel;
  Option.get !found

let decide ?(tech = Optimizer.all_techniques) ?(transfer = true) catalog sql =
  Optimizer.decide ~transfer catalog
    (Sqlfront.Parser.parse sql)
    ~tech ~nljp_config:Nljp.default_config

let has_note needle (d : Optimizer.decision) =
  List.exists (fun n -> contains n needle) d.Optimizer.notes

(* ---- gate verdicts ---- *)

let test_gate_rows_floor () =
  let catalog = kv_catalog ~rows:200 () in
  let sql = Workload.Queries.complex_filtered ~threshold:2 () in
  let d = decide catalog sql in
  Alcotest.(check bool) "no spec" true (d.Optimizer.transfer = None);
  Alcotest.(check bool) "floor note" true (has_note "inputs below" d)

let test_gate_disabled () =
  let catalog = kv_catalog () in
  let d =
    decide ~transfer:false catalog (Workload.Queries.complex_filtered ~threshold:2 ())
  in
  Alcotest.(check bool) "no spec" true (d.Optimizer.transfer = None);
  Alcotest.(check bool) "disabled note" true (has_note "disabled by configuration" d)

let test_gate_only_apriori_sources () =
  with_ref Optimizer.transfer_force true @@ fun () ->
  let catalog = kv_catalog () in
  (* The stock complex query has no single-alias σ; with all techniques the
     a-priori reducers install IN conjuncts, which the gate declines to
     re-execute as transfer sources by default. *)
  let d = decide catalog (Workload.Queries.complex ~threshold:3) in
  Alcotest.(check bool) "no spec" true (d.Optimizer.transfer = None);
  Alcotest.(check bool) "costed rejection" true
    (has_note "only a-priori IN sources" d);
  (* Without a-priori there is no source predicate at all. *)
  let d2 =
    decide ~tech:(Optimizer.only `Pruning) catalog
      (Workload.Queries.complex ~threshold:3)
  in
  Alcotest.(check bool) "no sources note" true
    (has_note "no selective source predicates" d2)

let test_gate_accepts_filtered () =
  with_ref Optimizer.transfer_force true @@ fun () ->
  let catalog = kv_catalog () in
  let cat = some_category catalog in
  let d =
    decide catalog (Workload.Queries.complex_filtered ~category:cat ~threshold:2 ())
  in
  match d.Optimizer.transfer with
  | None -> Alcotest.fail "expected a transfer spec"
  | Some spec ->
    Alcotest.(check int) "join edges" 5 (List.length spec.Transfer.t_edges);
    Alcotest.(check bool) "accepted note" true (has_note "transfer: on" d);
    let s1_locals =
      Option.value ~default:[] (List.assoc_opt "S1" spec.Transfer.t_locals)
    in
    Alcotest.(check bool) "S1 carries the σ" true (s1_locals <> []);
    Alcotest.(check bool) "no IN sources by default" true
      (List.for_all
         (fun (_, ps) ->
           List.for_all
             (function Sqlfront.Ast.P_in _ -> false | _ -> true)
             ps)
         spec.Transfer.t_locals)

let test_gate_apriori_sources_opt_in () =
  with_ref Optimizer.transfer_force true @@ fun () ->
  with_ref Optimizer.transfer_apriori_sources true @@ fun () ->
  let catalog = kv_catalog () in
  let d = decide catalog (Workload.Queries.complex ~threshold:3) in
  Alcotest.(check bool) "spec with reducer sources" true
    (d.Optimizer.transfer <> None)

(* ---- end-to-end reduction ---- *)

let test_transfer_reduces_and_agrees () =
  with_ref Optimizer.transfer_force true @@ fun () ->
  List.iter
    (fun layout ->
      let catalog = kv_catalog ~layout () in
      let cat = some_category catalog in
      let q =
        Sqlfront.Parser.parse
          (Workload.Queries.complex_filtered ~category:cat ~threshold:2 ())
      in
      let off, _ = Runner.run ~transfer:false catalog q in
      let on, rep = Runner.run ~transfer:true catalog q in
      check_bag "transfer on = off" off on;
      match rep.Runner.transfer with
      | None -> Alcotest.fail "expected a transfer result in the report"
      | Some r ->
        Alcotest.(check bool) "filters produced" true (r.Transfer.r_filters <> []);
        let reduced =
          List.exists (fun (_, (k, t)) -> k < t) r.Transfer.r_kept
        in
        Alcotest.(check bool) "some alias reduced" true reduced)
    [ `Row; `Column ]

let test_transfer_counters_move () =
  with_ref Optimizer.transfer_force true @@ fun () ->
  let catalog = kv_catalog ~layout:`Column () in
  let cat = some_category catalog in
  let q =
    Sqlfront.Parser.parse
      (Workload.Queries.complex_filtered ~category:cat ~threshold:2 ())
  in
  let _, p0, _ = Colscan.transfer_counters () in
  let built0 = Transfer.filters_built () in
  let _ = Runner.run ~transfer:true catalog q in
  let _, p1, _ = Colscan.transfer_counters () in
  Alcotest.(check bool) "filters built" true (Transfer.filters_built () > built0);
  Alcotest.(check bool) "rows probed" true (p1 > p0)

(* ---- differential fuzz grid ---- *)

let grid_queries catalog =
  let cat = some_category catalog in
  [
    Workload.Queries.complex_filtered ~category:cat ~threshold:2 ();
    Workload.Queries.complex_filtered ~category:cat ~threshold:5 ();
    (* Non-existent category: every alias reduces to zero survivors. *)
    Workload.Queries.complex_filtered ~category:"no-such-team" ~threshold:2 ();
    (* Stock complex: the gate skips transfer; a degenerate grid point that
       keeps the off-path honest under every configuration. *)
    Workload.Queries.complex ~threshold:3;
    (* σ on an attr edge endpoint instead of category. *)
    "SELECT S1.id, S1.attr, S2.attr, COUNT(*) \
     FROM perf_kv S1, perf_kv S2, perf_kv T1, perf_kv T2 \
     WHERE S1.id = S2.id AND T1.id = T2.id AND S1.category = T1.category \
     AND T1.attr = S1.attr AND T2.attr = S2.attr \
     AND T1.val > S1.val AND T2.val > S2.val AND T2.attr = 'b_hr' \
     GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= 2";
  ]

let test_differential_grid () =
  with_ref Optimizer.transfer_force true @@ fun () ->
  let techs =
    [
      ("all", Optimizer.all_techniques);
      ("pruning", Optimizer.only `Pruning);
      ("memo", Optimizer.only `Memo);
    ]
  in
  List.iter
    (fun (tname, tech) ->
      List.iter
        (fun layout ->
          let catalog = kv_catalog ~rows:300 ~layout () in
          List.iter
            (fun workers ->
              List.iter
                (fun force_bits ->
                  with_ref Column.Bloom.test_force_bits force_bits @@ fun () ->
                  List.iter
                    (fun sql ->
                      let q = Sqlfront.Parser.parse sql in
                      let off, _ =
                        Runner.run ~tech ~workers ~transfer:false catalog q
                      in
                      let on, _ =
                        Runner.run ~tech ~workers ~transfer:true catalog q
                      in
                      if not (Relation.equal_bag off on) then
                        Alcotest.failf
                          "transfer changed results (tech=%s layout=%s \
                           workers=%d bits=%s):\n%s\noff %d rows, on %d rows"
                          tname
                          (match layout with `Row -> "row" | `Column -> "column")
                          workers
                          (match force_bits with
                           | None -> "default"
                           | Some b -> string_of_int b)
                          sql (Relation.cardinality off)
                          (Relation.cardinality on))
                    (grid_queries catalog))
                [ None; Some 127 ])
            [ 1; 3 ])
        [ `Row; `Column ])
    techs

let suite =
  [
    Alcotest.test_case "bloom membership" `Quick test_bloom_membership;
    Alcotest.test_case "bloom null and empty" `Quick test_bloom_null_and_empty;
    Alcotest.test_case "bloom int/float equality" `Quick
      test_bloom_int_float_equality;
    Alcotest.test_case "bloom forced tiny" `Quick test_bloom_forced_tiny;
    Alcotest.test_case "bloom range skip" `Quick test_bloom_range_skip;
    Alcotest.test_case "gate rows floor" `Quick test_gate_rows_floor;
    Alcotest.test_case "gate disabled" `Quick test_gate_disabled;
    Alcotest.test_case "gate only a-priori sources" `Quick
      test_gate_only_apriori_sources;
    Alcotest.test_case "gate accepts filtered complex" `Quick
      test_gate_accepts_filtered;
    Alcotest.test_case "gate a-priori sources opt-in" `Quick
      test_gate_apriori_sources_opt_in;
    Alcotest.test_case "transfer reduces and agrees" `Quick
      test_transfer_reduces_and_agrees;
    Alcotest.test_case "transfer counters move" `Quick
      test_transfer_counters_move;
    Alcotest.test_case "differential grid" `Slow test_differential_grid;
  ]
