open Relalg

let t name f = Alcotest.test_case name `Quick f

let suite =
  [ t "prng is deterministic" (fun () ->
        let a = Workload.Prng.create 42 and b = Workload.Prng.create 42 in
        let xs g = List.init 10 (fun _ -> Workload.Prng.int g 1000) in
        Alcotest.(check (list int)) "same stream" (xs a) (xs b));
    t "prng int respects bound" (fun () ->
        let g = Workload.Prng.create 1 in
        for _ = 1 to 1000 do
          let v = Workload.Prng.int g 7 in
          if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
        done);
    t "gaussian has sane mean" (fun () ->
        let g = Workload.Prng.create 2 in
        let n = 5000 in
        let sum = ref 0. in
        for _ = 1 to n do
          sum := !sum +. Workload.Prng.gaussian g
        done;
        Alcotest.(check bool) "|mean| < 0.1" true (Float.abs (!sum /. float_of_int n) < 0.1));
    t "zipf favors low ranks" (fun () ->
        let g = Workload.Prng.create 3 in
        let sample = Workload.Prng.zipf_sampler g ~n:50 ~s:1.2 in
        let low = ref 0 in
        for _ = 1 to 1000 do
          if sample () <= 5 then incr low
        done;
        Alcotest.(check bool) "rank<=5 majority-ish" true (!low > 300));
    t "baseball generator row count and keys" (fun () ->
        let catalog = Catalog.create () in
        let n = Workload.Baseball.register catalog ~rows:500 ~seed:1 in
        Alcotest.(check int) "rows" 500 n;
        let tbl = Catalog.find catalog Workload.Baseball.table_name in
        Alcotest.(check int) "cardinality" 500 (Relation.cardinality tbl.Catalog.rel);
        (* key (playerid, year, round) has no duplicates *)
        let keys = Hashtbl.create 512 in
        Relation.iter
          (fun row ->
            let k = (row.(0), row.(1), row.(2)) in
            if Hashtbl.mem keys k then Alcotest.fail "duplicate key";
            Hashtbl.add keys k ())
          tbl.Catalog.rel);
    t "baseball stats are non-negative" (fun () ->
        let catalog = Catalog.create () in
        ignore (Workload.Baseball.register catalog ~rows:300 ~seed:5);
        let tbl = Catalog.find catalog Workload.Baseball.table_name in
        Relation.iter
          (fun row ->
            Array.iteri
              (fun i v ->
                if i >= 4 then
                  match v with
                  | Value.Int x when x < 0 -> Alcotest.fail "negative stat"
                  | _ -> ())
              row)
          tbl.Catalog.rel);
    t "attribute pairings have different correlation (Figure 2)" (fun () ->
        let catalog = Catalog.create () in
        ignore (Workload.Baseball.register catalog ~rows:2000 ~seed:11);
        let tbl = Catalog.find catalog Workload.Baseball.table_name in
        let col name =
          let i = Schema.index_of tbl.Catalog.rel.Relation.schema name in
          Relation.fold (fun acc row -> Value.to_float row.(i) :: acc) [] tbl.Catalog.rel
        in
        let corr xs ys =
          let n = float_of_int (List.length xs) in
          let mean l = List.fold_left ( +. ) 0. l /. n in
          let mx = mean xs and my = mean ys in
          let cov =
            List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys /. n
          in
          let sd l m =
            sqrt (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. l /. n)
          in
          cov /. (sd xs mx *. sd ys my +. 1e-9)
        in
        let c_hhr = corr (col "b_h") (col "b_hr") in
        let c_23 = corr (col "b_2b") (col "b_3b") in
        Alcotest.(check bool)
          (Printf.sprintf "h/hr strongly correlated (%.2f) vs 2b/3b (%.2f)" c_hhr c_23)
          true
          (c_hhr > 0.6 && c_23 < c_hhr -. 0.3));
    t "unpivoted table has id->category FD" (fun () ->
        let catalog = Catalog.create () in
        ignore (Workload.Baseball.register_unpivoted catalog ~rows:400 ~seed:2);
        let tbl = Catalog.find catalog Workload.Baseball.unpivoted_name in
        let seen = Hashtbl.create 128 in
        Relation.iter
          (fun row ->
            match Hashtbl.find_opt seen row.(0) with
            | Some cat ->
              if not (Value.equal_total cat row.(1)) then
                Alcotest.fail "id -> category violated"
            | None -> Hashtbl.add seen row.(0) row.(1))
          tbl.Catalog.rel);
    t "indexes build and rebuild on resize" (fun () ->
        let catalog = Catalog.create () in
        ignore (Workload.Baseball.register catalog ~rows:200 ~seed:3);
        Workload.Baseball.build_indexes catalog;
        let tbl = Catalog.find catalog Workload.Baseball.table_name in
        Alcotest.(check bool) "bt present" true
          (Catalog.sorted_index_on tbl "b_h" <> None);
        ignore (Workload.Baseball.register catalog ~rows:400 ~seed:3);
        Workload.Baseball.build_indexes catalog ~bt:false;
        let tbl = Catalog.find catalog Workload.Baseball.table_name in
        Alcotest.(check bool) "bt dropped" true (Catalog.sorted_index_on tbl "b_h" = None));
    t "basket generator has frequent pairs" (fun () ->
        let catalog = Catalog.create () in
        let n =
          Workload.Basket.register catalog ~baskets:100 ~items:30 ~avg_size:4 ~seed:1
        in
        Alcotest.(check bool) "rows generated" true (n > 100);
        let r =
          Sqlfront.Binder.run catalog
            (Sqlfront.Parser.parse (Workload.Queries.listing1 ~threshold:10))
        in
        Alcotest.(check bool) "some frequent pairs" true (Relation.cardinality r > 0));
    t "object distributions differ in skyline size" (fun () ->
        let skyline dist =
          let catalog = Catalog.create () in
          ignore (Workload.Objects.register catalog ~n:400 ~dist ~seed:9);
          let r =
            Sqlfront.Binder.run catalog
              (Sqlfront.Parser.parse
                 "SELECT L.id, COUNT(*) FROM object L, object R \
                  WHERE R.x <= L.x AND R.y <= L.y AND (R.x < L.x OR R.y < L.y) \
                  GROUP BY L.id HAVING COUNT(*) <= 3")
          in
          Relation.cardinality r
        in
        let corr = skyline Workload.Objects.Correlated in
        let anti = skyline Workload.Objects.Anticorrelated in
        Alcotest.(check bool)
          (Printf.sprintf "anticorrelated skyline (%d) larger than correlated (%d)" anti corr)
          true (anti > corr));
    t "figure1 queries all parse and analyze" (fun () ->
        List.iter
          (fun (_, sql) -> ignore (Sqlfront.Parser.parse sql))
          Workload.Queries.figure1) ]
