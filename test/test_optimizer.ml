open Core
open Helpers

let t name f = Alcotest.test_case name `Quick f

let suite =
  [ t "proper_subsets enumerates smallest first" (fun () ->
        let subs = Optimizer.proper_subsets [ "a"; "b"; "c" ] in
        Alcotest.(check int) "2^3 - 2" 6 (List.length subs);
        (match subs with
         | [ "a" ] :: _ -> ()
         | _ -> Alcotest.fail "singletons first");
        let last = List.nth subs (List.length subs - 1) in
        Alcotest.(check int) "largest last" 2 (List.length last));
    t "proper_subsets of a pair" (fun () ->
        Alcotest.(check int) "2" 2 (List.length (Optimizer.proper_subsets [ "x"; "y" ])));
    t "decide with all techniques off does nothing" (fun () ->
        let catalog = random_catalog 3 in
        let q = Sqlfront.Parser.parse (Workload.Queries.listing2 ~k:5) in
        let d =
          Optimizer.decide catalog q ~tech:Optimizer.no_techniques
            ~nljp_config:Nljp.default_config
        in
        Alcotest.(check bool) "no rewrites" true (d.Optimizer.apriori_rewrites = []);
        Alcotest.(check bool) "no nljp" true (d.Optimizer.nljp = None));
    t "a-priori rewrites target disjoint alias sets" (fun () ->
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog ~keys:[ [ "id"; "attr" ] ]
          ~fds:[ ([ "id" ], [ "category" ]) ] ~nonneg:[ "val" ] "product"
          (rel [ "id"; "category"; "attr"; "val" ]
             (List.concat_map
                (fun id ->
                  List.map
                    (fun a -> [ iv id; sv "c"; sv a; iv (id * 7 mod 13) ])
                    [ "a"; "b" ])
                (List.init 12 Fun.id)));
        let q = Sqlfront.Parser.parse (Workload.Queries.listing3 ~threshold:3) in
        let d =
          Optimizer.decide catalog q ~tech:Optimizer.all_techniques
            ~nljp_config:Nljp.default_config
        in
        let considered = List.map (fun rw -> rw.Optimizer.considered) d.Optimizer.apriori_rewrites in
        let rec disjoint = function
          | [] -> true
          | s :: rest ->
            List.for_all (fun s' -> List.for_all (fun a -> not (List.mem a s')) s) rest
            && disjoint rest
        in
        Alcotest.(check bool) "disjoint" true (disjoint considered));
    t "NLJP outer side compatible with a-priori groupings" (fun () ->
        let catalog = random_catalog 5 in
        let q =
          Sqlfront.Parser.parse
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
        in
        let d =
          Optimizer.decide catalog q ~tech:Optimizer.all_techniques
            ~nljp_config:Nljp.default_config
        in
        match d.Optimizer.nljp with
        | None -> () (* acceptable: memo/prune may not apply *)
        | Some (_, outer) ->
          List.iter
            (fun rw ->
              let grp = rw.Optimizer.reduced in
              let all_in = List.for_all (fun a -> List.mem a outer) grp in
              let none_in = List.for_all (fun a -> not (List.mem a outer)) grp in
              Alcotest.(check bool) "compatible" true (all_in || none_in))
            d.Optimizer.apriori_rewrites);
    t "rewritten_query substitutes reduced tables" (fun () ->
        let catalog = random_catalog 7 in
        let q =
          Sqlfront.Parser.parse
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
             WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
        in
        let d =
          Optimizer.decide catalog q ~tech:(Optimizer.only `Apriori)
            ~nljp_config:Nljp.default_config
        in
        Alcotest.(check bool) "found rewrites" true (d.Optimizer.apriori_rewrites <> []);
        let sql = Sqlfront.Pretty.query (Optimizer.rewritten_query d) in
        Alcotest.(check bool) "has IN semijoin" true (contains sql "IN (SELECT"));
    t "technique constructors" (fun () ->
        Alcotest.(check bool) "only memo" true
          (Optimizer.only `Memo).Optimizer.memo;
        Alcotest.(check bool) "only memo no pruning" false
          (Optimizer.only `Memo).Optimizer.pruning) ]
