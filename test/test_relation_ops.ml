open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let people () =
  rel [ "id"; "dept"; "salary" ]
    [ [ iv 1; sv "eng"; iv 100 ]; [ iv 2; sv "eng"; iv 120 ];
      [ iv 3; sv "ops"; iv 90 ]; [ iv 4; sv "ops"; iv 90 ]; [ iv 5; sv "hr"; iv 80 ] ]

let select_project =
  [ t "select by predicate" (fun () ->
        let r =
          Ops.select
            (Expr.Cmp (Expr.Gt, Expr.col "salary", Expr.int 90))
            (people ())
        in
        Alcotest.(check int) "rows" 2 (Relation.cardinality r));
    t "select keeps duplicates" (fun () ->
        let r =
          Ops.select (Expr.Cmp (Expr.Eq, Expr.col "salary", Expr.int 90)) (people ())
        in
        Alcotest.(check int) "rows" 2 (Relation.cardinality r));
    t "project computes expressions" (fun () ->
        let r =
          Ops.project
            [ (Expr.Binop (Expr.Mul, Expr.col "salary", Expr.int 2), Schema.col "double") ]
            (people ())
        in
        check_rows "doubled"
          (rel [ "double" ] [ [ iv 200 ]; [ iv 240 ]; [ iv 180 ]; [ iv 180 ]; [ iv 160 ] ])
          r);
    t "project is duplicate-preserving" (fun () ->
        let r = Ops.project [ (Expr.col "dept", Schema.col "dept") ] (people ()) in
        Alcotest.(check int) "rows" 5 (Relation.cardinality r));
    t "distinct removes duplicates" (fun () ->
        let r =
          Ops.distinct (Ops.project [ (Expr.col "dept", Schema.col "dept") ] (people ()))
        in
        Alcotest.(check int) "rows" 3 (Relation.cardinality r)) ]

let joins =
  let depts =
    rel [ "name"; "floor" ] [ [ sv "eng"; iv 3 ]; [ sv "ops"; iv 1 ]; [ sv "sales"; iv 2 ] ]
  in
  [ t "nl join theta" (fun () ->
        let r =
          Ops.nl_join
            ~pred:(Expr.Cmp (Expr.Eq, Expr.col "dept", Expr.col "name"))
            (people ()) depts
        in
        Alcotest.(check int) "rows" 4 (Relation.cardinality r));
    t "hash join equals nl join" (fun () ->
        let nl =
          Ops.nl_join
            ~pred:(Expr.Cmp (Expr.Eq, Expr.col "dept", Expr.col "name"))
            (people ()) depts
        in
        let hj =
          Ops.hash_join ~left_keys:[ Expr.col "dept" ] ~right_keys:[ Expr.col "name" ]
            ~residual:Expr.tt (people ()) depts
        in
        check_bag "hash=nl" nl hj);
    t "hash join residual filters" (fun () ->
        let hj =
          Ops.hash_join ~left_keys:[ Expr.col "dept" ] ~right_keys:[ Expr.col "name" ]
            ~residual:(Expr.Cmp (Expr.Gt, Expr.col "salary", Expr.int 100))
            (people ()) depts
        in
        Alcotest.(check int) "rows" 1 (Relation.cardinality hj));
    t "merge join equals hash join" (fun () ->
        let hj =
          Ops.hash_join ~left_keys:[ Expr.col "dept" ] ~right_keys:[ Expr.col "name" ]
            ~residual:Expr.tt (people ()) depts
        in
        let mj =
          Ops.merge_join ~left_keys:[ Expr.col "dept" ] ~right_keys:[ Expr.col "name" ]
            ~residual:Expr.tt (people ()) depts
        in
        check_bag "merge=hash" hj mj);
    t "merge join residual filters" (fun () ->
        let mj =
          Ops.merge_join ~left_keys:[ Expr.col "dept" ] ~right_keys:[ Expr.col "name" ]
            ~residual:(Expr.Cmp (Expr.Gt, Expr.col "salary", Expr.int 100))
            (people ()) depts
        in
        Alcotest.(check int) "rows" 1 (Relation.cardinality mj));
    t "cross product size" (fun () ->
        Alcotest.(check int) "5*3" 15 (Relation.cardinality (Ops.cross (people ()) depts)));
    t "semijoin keeps matching" (fun () ->
        let sub = rel [ "d" ] [ [ sv "eng" ] ] in
        let r = Ops.semijoin [ Expr.col "dept" ] sub (people ()) in
        Alcotest.(check int) "rows" 2 (Relation.cardinality r));
    t "union_all concatenates" (fun () ->
        Alcotest.(check int) "10" 10
          (Relation.cardinality (Ops.union_all (people ()) (people ())))) ]

let grouping =
  [ t "group by dept count" (fun () ->
        let r =
          Ops.group_by
            ~group_cols:[ (Expr.col "dept", Schema.col "dept") ]
            ~aggs:[ (Agg.Count_star, Schema.col "n") ]
            (people ())
        in
        check_rows "counts"
          (rel [ "dept"; "n" ] [ [ sv "eng"; iv 2 ]; [ sv "ops"; iv 2 ]; [ sv "hr"; iv 1 ] ])
          r);
    t "group by sum" (fun () ->
        let r =
          Ops.group_by
            ~group_cols:[ (Expr.col "dept", Schema.col "dept") ]
            ~aggs:[ (Agg.Sum (Expr.col "salary"), Schema.col "s") ]
            (people ())
        in
        check_rows "sums"
          (rel [ "dept"; "s" ]
             [ [ sv "eng"; iv 220 ]; [ sv "ops"; iv 180 ]; [ sv "hr"; iv 80 ] ])
          r);
    t "global aggregate over empty input yields one row" (fun () ->
        let r =
          Ops.group_by ~group_cols:[]
            ~aggs:[ (Agg.Count_star, Schema.col "n") ]
            (rel [ "a" ] [])
        in
        check_rows "count 0" (rel [ "n" ] [ [ iv 0 ] ]) r);
    t "grouped aggregate over empty input yields no rows" (fun () ->
        let r =
          Ops.group_by
            ~group_cols:[ (Expr.col "a", Schema.col "a") ]
            ~aggs:[ (Agg.Count_star, Schema.col "n") ]
            (rel [ "a" ] [])
        in
        Alcotest.(check int) "rows" 0 (Relation.cardinality r));
    t "min max avg" (fun () ->
        let r =
          Ops.group_by ~group_cols:[]
            ~aggs:
              [ (Agg.Min (Expr.col "salary"), Schema.col "mn");
                (Agg.Max (Expr.col "salary"), Schema.col "mx");
                (Agg.Avg (Expr.col "salary"), Schema.col "av") ]
            (people ())
        in
        check_rows "mma" (rel [ "mn"; "mx"; "av" ] [ [ iv 80; iv 120; fv 96. ] ]) r);
    t "count distinct" (fun () ->
        let r =
          Ops.group_by ~group_cols:[]
            ~aggs:[ (Agg.Count_distinct (Expr.col "dept"), Schema.col "n") ]
            (people ())
        in
        check_rows "cd" (rel [ "n" ] [ [ iv 3 ] ]) r);
    t "count skips nulls, count star does not" (fun () ->
        let data = rel [ "a" ] [ [ iv 1 ]; [ Value.Null ]; [ iv 2 ] ] in
        let r =
          Ops.group_by ~group_cols:[]
            ~aggs:
              [ (Agg.Count (Expr.col "a"), Schema.col "c");
                (Agg.Count_star, Schema.col "cs") ]
            data
        in
        check_rows "nulls" (rel [ "c"; "cs" ] [ [ iv 2; iv 3 ] ]) r) ]

let ordering =
  [ t "order by desc" (fun () ->
        let r = Ops.order_by [ (Expr.col "salary", `Desc) ] (people ()) in
        Alcotest.(check bool) "first is 120" true
          (Value.equal_total (Relation.rows r).(0).(2) (Value.Int 120)));
    t "limit truncates" (fun () ->
        Alcotest.(check int) "2" 2 (Relation.cardinality (Ops.limit 2 (people ()))));
    t "limit larger than input" (fun () ->
        Alcotest.(check int) "5" 5 (Relation.cardinality (Ops.limit 100 (people ())))) ]

let bag_equality =
  [ t "equal_bag ignores order" (fun () ->
        let a = rel [ "x" ] [ [ iv 1 ]; [ iv 2 ] ] in
        let b = rel [ "x" ] [ [ iv 2 ]; [ iv 1 ] ] in
        Alcotest.(check bool) "eq" true (Relation.equal_bag a b));
    t "equal_bag respects multiplicity" (fun () ->
        let a = rel [ "x" ] [ [ iv 1 ]; [ iv 1 ] ] in
        let b = rel [ "x" ] [ [ iv 1 ]; [ iv 2 ] ] in
        Alcotest.(check bool) "neq" false (Relation.equal_bag a b)) ]

let props =
  let point_list =
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 10) (int_range 0 10)))
  in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hash and merge joins agree with nl join on random data"
         ~count:100 point_list
         (fun pts ->
           let left = rel [ "a"; "b" ] (List.map (fun (a, b) -> [ iv a; iv b ]) pts) in
           let right = rel [ "c"; "d" ] (List.map (fun (a, b) -> [ iv b; iv a ]) pts) in
           let pred = Expr.Cmp (Expr.Eq, Expr.col "a", Expr.col "c") in
           let nl = Ops.nl_join ~pred left right in
           let hj =
             Ops.hash_join ~left_keys:[ Expr.col "a" ] ~right_keys:[ Expr.col "c" ]
               ~residual:Expr.tt left right
           in
           let mj =
             Ops.merge_join ~left_keys:[ Expr.col "a" ] ~right_keys:[ Expr.col "c" ]
               ~residual:Expr.tt left right
           in
           Relation.equal_bag nl hj && Relation.equal_bag nl mj));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"group counts sum to input size" ~count:100 point_list
         (fun pts ->
           let data = rel [ "a"; "b" ] (List.map (fun (a, b) -> [ iv a; iv b ]) pts) in
           let grouped =
             Ops.group_by
               ~group_cols:[ (Expr.col "a", Schema.col "a") ]
               ~aggs:[ (Agg.Count_star, Schema.col "n") ]
               data
           in
           let total =
             Relation.fold
               (fun acc row -> acc + match row.(1) with Value.Int n -> n | _ -> 0)
               0 grouped
           in
           total = Relation.cardinality data)) ]

let suite = select_project @ joins @ grouping @ ordering @ bag_equality @ props
