open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let suite =
  [ t "parse simple csv" (fun () ->
        let r = Csv.parse_string "a,b\n1,x\n2,y\n" in
        check_rows "parsed" (rel [ "a"; "b" ] [ [ iv 1; sv "x" ]; [ iv 2; sv "y" ] ]) r);
    t "quoted fields with commas" (fun () ->
        let r = Csv.parse_string "a\n\"x,y\"\n" in
        check_rows "quoted" (rel [ "a" ] [ [ sv "x,y" ] ]) r);
    t "escaped quotes" (fun () ->
        let r = Csv.parse_string "a\n\"he said \"\"hi\"\"\"\n" in
        check_rows "escaped" (rel [ "a" ] [ [ sv "he said \"hi\"" ] ]) r);
    t "empty fields become null" (fun () ->
        let r = Csv.parse_string "a,b\n1,\n" in
        Alcotest.(check bool) "null" true (Value.is_null (Relation.rows r).(0).(1)));
    t "blank trailing lines skipped" (fun () ->
        let r = Csv.parse_string "a\n1\n\n\n" in
        Alcotest.(check int) "rows" 1 (Relation.cardinality r));
    t "arity mismatch raises" (fun () ->
        match Csv.parse_string "a,b\n1\n" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected arity error");
    t "roundtrip through string" (fun () ->
        let original =
          rel [ "a"; "b" ] [ [ iv 1; sv "x,y" ]; [ fv 2.5; sv "q\"z" ] ]
        in
        let r = Csv.parse_string (Csv.to_csv_string original) in
        check_bag "roundtrip" original r);
    t "roundtrip through file" (fun () ->
        let original = rel [ "k"; "v" ] [ [ iv 1; sv "one" ]; [ iv 2; sv "two" ] ] in
        let path = Filename.temp_file "si_test" ".csv" in
        Csv.save path original;
        let r = Csv.load path in
        Sys.remove path;
        check_bag "file roundtrip" original r);
    t "mixed int/float columns promote to float" (fun () ->
        (* a column mixing 1 and 2.5 must come back all-Float, so columnar
           blocks stay unboxed — and identically so in both layouts *)
        let text = "a,b\n1,1\n2.5,2\n,3\n" in
        let expect =
          rel [ "a"; "b" ]
            [ [ fv 1.0; iv 1 ]; [ fv 2.5; iv 2 ]; [ Value.Null; iv 3 ] ]
        in
        List.iter
          (fun layout ->
            let r = Csv.parse_string ~layout text in
            check_bag "promoted" expect r;
            (* exact representation, not just numeric equality *)
            Array.iter
              (fun row ->
                match row.(0) with
                | Value.Float _ | Value.Null -> ()
                | v ->
                  Alcotest.failf "expected Float/Null in col a, got %s"
                    (Value.to_string v))
              (Relation.rows r);
            (* the all-int column must NOT be promoted *)
            Array.iter
              (fun row ->
                match row.(1) with
                | Value.Int _ -> ()
                | v ->
                  Alcotest.failf "expected Int in col b, got %s" (Value.to_string v))
              (Relation.rows r))
          [ `Row; `Column ]);
    t "quoted-field edge cases (table-driven)" (fun () ->
        (* CRLF endings, unterminated quotes, ""-escapes, trailing commas
           and empty quoted fields, in one table. *)
        List.iter
          (fun (label, text, expected) ->
            check_rows label expected (Csv.parse_string text))
          [ ("crlf line endings",
             "a,b\r\n1,x\r\n2,y\r\n",
             rel [ "a"; "b" ] [ [ iv 1; sv "x" ]; [ iv 2; sv "y" ] ]);
            ("crlf on header only",
             "a,b\r\n1,x\n",
             rel [ "a"; "b" ] [ [ iv 1; sv "x" ] ]);
            ("unterminated quote at eol",
             "a,b\n1,\"oops\n",
             rel [ "a"; "b" ] [ [ iv 1; sv "oops" ] ]);
            ("unterminated quote keeps crlf stripped",
             "a\n\"oops\r\n",
             (* the '\r' is dropped before quote scanning starts: it ended
                the line, it was never field content *)
             rel [ "a" ] [ [ sv "oops" ] ]);
            ("doubled-quote escape mid-field",
             "a\n\"x\"\"y\"\"z\"\n",
             rel [ "a" ] [ [ sv "x\"y\"z" ] ]);
            ("trailing comma means trailing null",
             "a,b,c\n1,x,\n",
             rel [ "a"; "b"; "c" ] [ [ iv 1; sv "x"; Value.Null ] ]);
            ("empty quoted field is null like an empty field",
             "a,b\n\"\",2\n",
             rel [ "a"; "b" ] [ [ Value.Null; iv 2 ] ]);
            ("quoted comma before crlf",
             "a,b\r\n\"x,y\",2\r\n",
             rel [ "a"; "b" ] [ [ sv "x,y"; iv 2 ] ]) ]);
    t "columnar layout parses edge cases identically" (fun () ->
        let text = "a,b,c\n\"x,y\",1,\n\"he said \"\"hi\"\"\",2,w\n,3,z\n" in
        let r = Csv.parse_string ~layout:`Row text in
        let c = Csv.parse_string ~layout:`Column text in
        Alcotest.(check bool) "column primary" true (Relation.layout c = `Column);
        check_bag "layouts agree" r c;
        (* trailing empty field really is Null in the columnar store *)
        let cs = Relation.cstore c in
        let nulls = ref 0 in
        Column.Cstore.iter_col cs 2 (fun v -> if Value.is_null v then incr nulls);
        Alcotest.(check int) "nulls in c" 1 !nulls;
        Alcotest.(check int) "nulls via zone map" 1
          (Column.Cstore.col_zmap cs 2).Column.Zmap.nulls) ]
