open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let suite =
  [ t "parse simple csv" (fun () ->
        let r = Csv.parse_string "a,b\n1,x\n2,y\n" in
        check_rows "parsed" (rel [ "a"; "b" ] [ [ iv 1; sv "x" ]; [ iv 2; sv "y" ] ]) r);
    t "quoted fields with commas" (fun () ->
        let r = Csv.parse_string "a\n\"x,y\"\n" in
        check_rows "quoted" (rel [ "a" ] [ [ sv "x,y" ] ]) r);
    t "escaped quotes" (fun () ->
        let r = Csv.parse_string "a\n\"he said \"\"hi\"\"\"\n" in
        check_rows "escaped" (rel [ "a" ] [ [ sv "he said \"hi\"" ] ]) r);
    t "empty fields become null" (fun () ->
        let r = Csv.parse_string "a,b\n1,\n" in
        Alcotest.(check bool) "null" true (Value.is_null r.Relation.rows.(0).(1)));
    t "blank trailing lines skipped" (fun () ->
        let r = Csv.parse_string "a\n1\n\n\n" in
        Alcotest.(check int) "rows" 1 (Relation.cardinality r));
    t "arity mismatch raises" (fun () ->
        match Csv.parse_string "a,b\n1\n" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected arity error");
    t "roundtrip through string" (fun () ->
        let original =
          rel [ "a"; "b" ] [ [ iv 1; sv "x,y" ]; [ fv 2.5; sv "q\"z" ] ]
        in
        let r = Csv.parse_string (Csv.to_csv_string original) in
        check_bag "roundtrip" original r);
    t "roundtrip through file" (fun () ->
        let original = rel [ "k"; "v" ] [ [ iv 1; sv "one" ]; [ iv 2; sv "two" ] ] in
        let path = Filename.temp_file "si_test" ".csv" in
        Csv.save path original;
        let r = Csv.load path in
        Sys.remove path;
        check_bag "file roundtrip" original r) ]
