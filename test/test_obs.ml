(* lib/obs: sharded counters (including merge determinism when NLJP runs
   Domain-parallel), trace JSON round-trips, and EXPLAIN golden output. *)
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* ---- counters ---- *)

let test_counter_basics () =
  let c = Obs.Metrics.counter "test.basics" in
  Obs.Metrics.reset c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "read" 42 (Obs.Metrics.read c);
  Alcotest.(check string) "name" "test.basics" (Obs.Metrics.name c);
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Metrics.read (Obs.Metrics.counter "test.basics") = 42);
  Obs.Metrics.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Metrics.read c)

let test_counter_merge_across_domains () =
  (* Each domain increments its private cell; the joined total must be
     exact — no lost updates, no double counting. *)
  let c = Obs.Metrics.counter "test.merge" in
  Obs.Metrics.reset c;
  let per_domain = 25_000 and domains = 4 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "merged total" (domains * per_domain) (Obs.Metrics.read c)

let test_snapshot_delta () =
  let c = Obs.Metrics.counter "test.delta" in
  Obs.Metrics.reset c;
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.add c 7;
  let d = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
  Alcotest.(check (option int)) "moved counter appears" (Some 7)
    (List.assoc_opt "test.delta" d);
  Alcotest.(check bool) "unmoved counters are absent" false
    (List.mem_assoc "test.basics" d)

(* ---- deterministic totals: sequential vs SI_WORKERS>1 NLJP ---- *)

let obs_catalog () =
  let catalog = Catalog.create () in
  let n = 600 in
  Catalog.add_table catalog "ev"
    (rel [ "k"; "x" ]
       (List.init n (fun i -> [ iv i; fv (float_of_int (i mod 83)) ])));
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
    (rel [ "id"; "lo"; "hi" ]
       (List.init 40 (fun i ->
            let lo = i * 37 mod 500 in
            [ iv i; iv lo; iv (lo + 60) ])));
  Catalog.set_all_layouts catalog `Column;
  catalog

let obs_sql =
  "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo AND \
   R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 1"

let run_counting workers =
  let q = Sqlfront.Parser.parse obs_sql in
  let before = Obs.Metrics.snapshot () in
  let r, _ = Core.Runner.run ~workers (obs_catalog ()) q in
  (r, Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()))

let test_parallel_totals () =
  let counter d name = Option.value (List.assoc_opt name d) ~default:0 in
  let r1, d1 = run_counting 1 in
  let r3, d3 = run_counting 3 in
  check_bag "results agree" r1 r3;
  Alcotest.(check bool) "outer rows flowed" true
    (counter d1 "nljp.outer_rows" > 0);
  (* The outer relation is the same either way, so its size — and the
     memo/prune/eval partition of it — must not depend on the domain
     count. *)
  List.iter
    (fun name ->
      Alcotest.(check int) name (counter d1 name) (counter d3 name))
    [ "nljp.outer_rows"; "nljp.inner_evals"; "nljp.vector_evals";
      "nljp.pruned"; "nljp.memo_hits" ];
  List.iter
    (fun d ->
      Alcotest.(check int) "evals + pruned + memo hits partition the outer"
        (counter d "nljp.outer_rows")
        (counter d "nljp.inner_evals" + counter d "nljp.pruned"
        + counter d "nljp.memo_hits"))
    [ d1; d3 ]

(* ---- trace JSON ---- *)

let test_span_roundtrip () =
  let root = Obs.Span.enter "query" in
  let child =
    Obs.Span.with_span ~parent:root "execute" (fun s ->
        Obs.Span.set_counter s "outer_rows" 123;
        Obs.Span.set_counter s "memo_hits" 7;
        Obs.Span.note s "vector off: disabled by configuration";
        s.Obs.Span.rows_out <- Some 40;
        s)
  in
  Obs.Span.finish ~rows_in:10 ~rows_out:40 root;
  let r = Obs.Span.of_json_string (Obs.Span.to_json_string root) in
  Alcotest.(check string) "name" "query" r.Obs.Span.name;
  Alcotest.(check (option int)) "rows_in" (Some 10) r.Obs.Span.rows_in;
  Alcotest.(check (option int)) "rows_out" (Some 40) r.Obs.Span.rows_out;
  (match Obs.Span.children r with
   | [ c ] ->
     Alcotest.(check string) "child name" "execute" c.Obs.Span.name;
     Alcotest.(check (option int)) "child rows_out" (Some 40) c.Obs.Span.rows_out;
     Alcotest.(check (list (pair string int))) "counters"
       c.Obs.Span.counters child.Obs.Span.counters;
     Alcotest.(check (list string)) "notes" child.Obs.Span.notes c.Obs.Span.notes;
     Alcotest.(check bool) "duration preserved" true
       (Float.abs (c.Obs.Span.dur_ms -. child.Obs.Span.dur_ms) < 1e-6)
   | cs -> Alcotest.failf "expected 1 child, got %d" (List.length cs));
  (* the EXPLAIN ANALYZE text renders every node *)
  let text = Obs.Span.to_text root in
  Alcotest.(check bool) "text tree mentions both spans" true
    (contains text "query" && contains text "execute")

let test_trace_json_schema () =
  let root = Obs.Span.enter "query" in
  ignore (Obs.Span.with_span ~parent:root "parse" (fun s -> s));
  Obs.Span.finish root;
  let j = Obs.Span.trace_json root in
  (match Obs.Json.member "trace" j with
   | Some tr ->
     Alcotest.(check bool) "trace.name" true
       (Obs.Json.member "name" tr = Some (Obs.Json.Str "query"))
   | None -> Alcotest.fail "no trace member");
  (match Obs.Json.member "metrics" j with
   | Some (Obs.Json.Obj _) -> ()
   | _ -> Alcotest.fail "no metrics object");
  (* the document survives its own printer/parser *)
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "trace document did not round-trip"

let test_span_roundtrip_hostile_strings () =
  (* Names and notes with every character class the escaper must handle:
     quotes, backslashes, newlines, tabs, raw control characters, and
     multi-byte UTF-8 (emitted byte-for-byte, not \u-escaped). *)
  let hostile =
    "he said \"hi\\there\"\nline2\ttab \x01\x1f ctrl \xc3\xa9 utf8"
  in
  let root = Obs.Span.enter hostile in
  Obs.Span.note root hostile;
  Obs.Span.set_counter root hostile 3;
  root.Obs.Span.rows_out <- Some 1;
  root.Obs.Span.dur_ms <- 0.5;
  let r = Obs.Span.of_json_string (Obs.Span.to_json_string root) in
  Alcotest.(check string) "name" hostile r.Obs.Span.name;
  Alcotest.(check (list string)) "notes" [ hostile ] r.Obs.Span.notes;
  Alcotest.(check (list (pair string int))) "counters" [ (hostile, 3) ]
    r.Obs.Span.counters

let test_json_escapes () =
  (* \uXXXX escapes decode to UTF-8, including surrogate pairs; printing
     non-finite numbers degrades to null instead of emitting invalid JSON. *)
  (match Obs.Json.of_string "\"\\u00e9 \\u0041 \\ud83d\\ude00\"" with
   | Obs.Json.Str s -> Alcotest.(check string) "decoded" "\xc3\xa9 A \xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "expected a string");
  Alcotest.(check string) "nan prints as null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.nan));
  Alcotest.(check string) "inf prints as null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.infinity));
  let s = Obs.Json.to_string (Obs.Json.Str "\x00\x07\x1b") in
  Alcotest.(check bool) "control chars are escaped" true
    (contains s "\\u0000" && not (contains s "\x00"))

let test_json_parser () =
  let s = "{\"a\": [1, 2.5, null, true, \"x\\n\\\"y\\\"\"], \"b\": {}}" in
  let j = Obs.Json.of_string s in
  (match Obs.Json.member "a" j with
   | Some (Obs.Json.Arr [ Obs.Json.Num 1.; Obs.Json.Num 2.5; Obs.Json.Null;
                          Obs.Json.Bool true; Obs.Json.Str "x\n\"y\"" ]) -> ()
   | _ -> Alcotest.fail "array members");
  Alcotest.(check bool) "reprint parses back" true
    (Obs.Json.of_string (Obs.Json.to_string j) = j)

(* ---- EXPLAIN goldens (substring checks, not byte-for-byte) ---- *)

let test_explain_simple () =
  let catalog = basket_catalog () in
  let q =
    Sqlfront.Parser.parse
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 WHERE \
       i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
  in
  let out = Core.Explain.query catalog q in
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "EXPLAIN output missing %S:\n%s" needle out)
    [ "query:"; "NLJP outer side:"; "NLJP component queries:";
      "inner access path: hash probe"; "baseline physical plan (cost model):";
      "Scan basket" ]

let complex_catalog () =
  (* The real unpivoted baseball table: its catalog facts (keys, value
     domains) are what make the a-priori reducers provably safe. *)
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register_unpivoted catalog ~rows:400 ~seed:2017);
  catalog

let complex_sql =
  "SELECT S1.id, S1.attr, S2.attr, COUNT(*) FROM perf_kv S1, perf_kv S2, \
   perf_kv T1, perf_kv T2 WHERE S1.id = S2.id AND T1.id = T2.id AND \
   S1.category = T1.category AND T1.attr = S1.attr AND T2.attr = S2.attr \
   AND T1.val > S1.val AND T2.val > S2.val GROUP BY S1.id, S1.attr, S2.attr \
   HAVING COUNT(*) >= 3"

let test_explain_complex () =
  let out =
    Core.Explain.query (complex_catalog ()) (Sqlfront.Parser.parse complex_sql)
  in
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "EXPLAIN output missing %S:\n%s" needle out)
    [ "a-priori reducer on"; "NLJP outer side:"; "Q_B (binding query";
      "memoization: on"; "inner access path:";
      "baseline physical plan (cost model):" ];
  (* EXPLAIN must not execute: the same catalog explains a query whose
     execution would throw (division by zero in the HAVING threshold is
     not needed — instead check a filter over a missing-at-runtime value
     is still planned).  Cheap proxy: explaining twice is idempotent and
     leaves no temp tables behind. *)
  let again =
    Core.Explain.query (complex_catalog ()) (Sqlfront.Parser.parse complex_sql)
  in
  Alcotest.(check string) "idempotent" out again

let test_explain_baseline_shape () =
  (* Outside the iceberg shape (no HAVING): flagged, with cost model only. *)
  let catalog = basket_catalog () in
  let q = Sqlfront.Parser.parse "SELECT item FROM basket WHERE bid >= 2" in
  let out = Core.Explain.query catalog q in
  Alcotest.(check bool) "flagged as not optimized" true
    (contains out "not optimized: outside the iceberg query shape");
  Alcotest.(check bool) "still costed" true
    (contains out "baseline physical plan (cost model):")

let suite =
  [ t "counter basics" test_counter_basics;
    t "counter cells merge across domains" test_counter_merge_across_domains;
    t "snapshot delta reports movement only" test_snapshot_delta;
    t "NLJP counter totals match sequential under workers>1"
      test_parallel_totals;
    t "span tree round-trips through JSON" test_span_roundtrip;
    t "hostile strings survive the span JSON round-trip"
      test_span_roundtrip_hostile_strings;
    t "json escape handling (\\u decode, non-finite nums)" test_json_escapes;
    t "trace document has trace + metrics members" test_trace_json_schema;
    t "json printer/parser round-trip" test_json_parser;
    t "EXPLAIN simple iceberg query" test_explain_simple;
    t "EXPLAIN four-way complex query" test_explain_complex;
    t "EXPLAIN non-iceberg query falls back to cost model"
      test_explain_baseline_shape ]
