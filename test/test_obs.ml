(* lib/obs: sharded counters (including merge determinism when NLJP runs
   Domain-parallel), trace JSON round-trips, and EXPLAIN golden output. *)
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* ---- counters ---- *)

let test_counter_basics () =
  let c = Obs.Metrics.counter "test.basics" in
  Obs.Metrics.reset c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "read" 42 (Obs.Metrics.read c);
  Alcotest.(check string) "name" "test.basics" (Obs.Metrics.name c);
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Metrics.read (Obs.Metrics.counter "test.basics") = 42);
  Obs.Metrics.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Metrics.read c)

let test_counter_merge_across_domains () =
  (* Each domain increments its private cell; the joined total must be
     exact — no lost updates, no double counting. *)
  let c = Obs.Metrics.counter "test.merge" in
  Obs.Metrics.reset c;
  let per_domain = 25_000 and domains = 4 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "merged total" (domains * per_domain) (Obs.Metrics.read c)

let test_snapshot_delta () =
  let c = Obs.Metrics.counter "test.delta" in
  Obs.Metrics.reset c;
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.add c 7;
  let d = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
  Alcotest.(check (option int)) "moved counter appears" (Some 7)
    (List.assoc_opt "test.delta" d);
  Alcotest.(check bool) "unmoved counters are absent" false
    (List.mem_assoc "test.basics" d)

(* ---- deterministic totals: sequential vs SI_WORKERS>1 NLJP ---- *)

let obs_catalog () =
  let catalog = Catalog.create () in
  let n = 600 in
  Catalog.add_table catalog "ev"
    (rel [ "k"; "x" ]
       (List.init n (fun i -> [ iv i; fv (float_of_int (i mod 83)) ])));
  Catalog.add_table catalog ~keys:[ [ "id" ] ] "probe"
    (rel [ "id"; "lo"; "hi" ]
       (List.init 40 (fun i ->
            let lo = i * 37 mod 500 in
            [ iv i; iv lo; iv (lo + 60) ])));
  Catalog.set_all_layouts catalog `Column;
  catalog

let obs_sql =
  "SELECT L.id, COUNT(*), SUM(R.x) FROM probe L, ev R WHERE R.k >= L.lo AND \
   R.k <= L.hi GROUP BY L.id HAVING COUNT(*) >= 1"

let run_counting workers =
  let q = Sqlfront.Parser.parse obs_sql in
  let before = Obs.Metrics.snapshot () in
  let r, _ = Core.Runner.run ~workers (obs_catalog ()) q in
  (r, Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()))

let test_parallel_totals () =
  let counter d name = Option.value (List.assoc_opt name d) ~default:0 in
  let r1, d1 = run_counting 1 in
  let r3, d3 = run_counting 3 in
  check_bag "results agree" r1 r3;
  Alcotest.(check bool) "outer rows flowed" true
    (counter d1 "nljp.outer_rows" > 0);
  (* The outer relation is the same either way, so its size — and the
     memo/prune/eval partition of it — must not depend on the domain
     count. *)
  List.iter
    (fun name ->
      Alcotest.(check int) name (counter d1 name) (counter d3 name))
    [ "nljp.outer_rows"; "nljp.inner_evals"; "nljp.vector_evals";
      "nljp.pruned"; "nljp.memo_hits" ];
  List.iter
    (fun d ->
      Alcotest.(check int) "evals + pruned + memo hits partition the outer"
        (counter d "nljp.outer_rows")
        (counter d "nljp.inner_evals" + counter d "nljp.pruned"
        + counter d "nljp.memo_hits"))
    [ d1; d3 ]

(* ---- bucket quantile estimation ---- *)

let test_hist_quantiles () =
  let h = Obs.Metrics.histogram "test.quant_ms" in
  Obs.Metrics.hist_reset h;
  (* 90 fast observations in [2,4), 10 slow in [64,128): p50 must land in
     the fast bucket, p95/p99 in the slow one — within the buckets'
     factor-of-2 resolution. *)
  for _ = 1 to 90 do
    Obs.Metrics.observe h 3.
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe h 100.
  done;
  let s = Obs.Metrics.hist_read h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.hs_count;
  let p50 = Obs.Metrics.hist_quantile s 0.5 in
  let p95 = Obs.Metrics.hist_quantile s 0.95 in
  let p99 = Obs.Metrics.hist_quantile s 0.99 in
  Alcotest.(check bool) "p50 in the fast bucket" true (p50 >= 2. && p50 <= 4.);
  Alcotest.(check bool) "p95 in the slow bucket" true
    (p95 >= 64. && p95 <= 128.);
  Alcotest.(check bool) "quantiles are monotone" true (p50 <= p95 && p95 <= p99);
  (* edge cases: empty histogram, and q clamped to [0,1] *)
  Alcotest.(check (float 0.)) "empty reads 0" 0.
    (Obs.Metrics.quantile_of_buckets (Array.make 64 0) 0 0.5);
  Alcotest.(check bool) "q is clamped" true
    (Obs.Metrics.hist_quantile s 2. >= Obs.Metrics.hist_quantile s 1.)

(* ---- rolling windows ---- *)

let feq msg want got =
  if Float.abs (want -. got) > 1e-9 then
    Alcotest.failf "%s: expected %g, got %g" msg want got

let test_rolling_rotation () =
  (* Injected clock: deterministic window boundaries, including a clock
     that skips many windows at once. *)
  let now = ref 0.5 in
  let r =
    Obs.Rolling.roll ~window_s:1. ~windows:3
      ~clock:(fun () -> !now)
      "test.roll_rot"
  in
  Obs.Rolling.reset r;
  Obs.Rolling.observe r 3.;
  Obs.Rolling.observe r 3.;
  let s = Obs.Rolling.read r in
  Alcotest.(check int) "both land in window 0" 2 s.Obs.Rolling.rs_count;
  feq "sum" 6. s.Obs.Rolling.rs_sum;
  Alcotest.(check bool) "p50 in the value's bucket" true
    (s.Obs.Rolling.rs_p50 >= 2. && s.Obs.Rolling.rs_p50 <= 4.);
  (* next window: both windows are inside the 3-window horizon *)
  now := 1.5;
  Obs.Rolling.observe r 3.;
  Alcotest.(check int) "merged across two live windows" 3
    (Obs.Rolling.read r).Obs.Rolling.rs_count;
  (* window 0 ages out of the horizon; window 1 survives *)
  now := 3.2;
  let s = Obs.Rolling.read r in
  Alcotest.(check int) "oldest window aged out" 1 s.Obs.Rolling.rs_count;
  feq "surviving sum" 3. s.Obs.Rolling.rs_sum;
  (* clock skips far past every window: the roll reads empty without any
     catch-up work, and quantiles degrade to 0 *)
  now := 100.25;
  let s = Obs.Rolling.read r in
  Alcotest.(check int) "all windows stale after a skip" 0
    s.Obs.Rolling.rs_count;
  feq "empty rate" 0. s.Obs.Rolling.rs_rate;
  feq "empty p95" 0. s.Obs.Rolling.rs_p95;
  (* the next write recycles a stale cell in place *)
  Obs.Rolling.observe r 5.;
  let s = Obs.Rolling.read r in
  Alcotest.(check int) "write after skip starts fresh" 1
    s.Obs.Rolling.rs_count;
  feq "fresh sum" 5. s.Obs.Rolling.rs_sum

let test_rolling_rate () =
  let now = ref 20.25 in
  let r =
    Obs.Rolling.roll ~window_s:1. ~windows:6
      ~clock:(fun () -> !now)
      "test.roll_rate"
  in
  Obs.Rolling.reset r;
  Obs.Rolling.mark ~n:10 r;
  (* covered span runs from the live window's start (t=20) to now (20.25):
     the rate is not diluted by the five windows that never existed *)
  feq "rate over covered span" 40. (Obs.Rolling.read r).Obs.Rolling.rs_rate;
  now := 21.5;
  Obs.Rolling.mark ~n:5 r;
  (* span 20..21.5, 15 events *)
  feq "rate across two windows" 10. (Obs.Rolling.read r).Obs.Rolling.rs_rate;
  Alcotest.(check bool) "same name returns the same roll" true
    (Obs.Rolling.name (Obs.Rolling.roll "test.roll_rate") = "test.roll_rate")

let test_rolling_concurrent () =
  (* Concurrent observe from several domains: totals must be exact — the
     mutex serializes cell updates; nothing is lost or double-counted.
     The window is far wider than the test's runtime, so no rotation. *)
  let r = Obs.Rolling.roll ~window_s:3600. ~windows:2 "test.roll_conc" in
  Obs.Rolling.reset r;
  let per_domain = 25_000 and domains = 4 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Rolling.observe r 2.
            done))
  in
  List.iter Domain.join workers;
  let s = Obs.Rolling.read r in
  Alcotest.(check int) "exact count" (domains * per_domain)
    s.Obs.Rolling.rs_count;
  feq "exact sum" (float_of_int (domains * per_domain) *. 2.)
    s.Obs.Rolling.rs_sum;
  Alcotest.(check bool) "p50 lands in the observed bucket" true
    (s.Obs.Rolling.rs_p50 >= 2. && s.Obs.Rolling.rs_p50 <= 4.)

(* ---- metric-name audit ---- *)

(* DESIGN.md §15: every registered counter, histogram and roll is named
   `subsystem.name` — dotted lowercase [a-z0-9_] segments, at least two —
   so the Prometheus exporter's mangling (dots to underscores) is
   collision-free and dashboards can group by prefix. *)
let valid_metric_name n =
  let ok_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' in
  let parts = String.split_on_char '.' n in
  List.length parts >= 2
  && List.for_all (fun p -> p <> "" && String.for_all ok_char p) parts

let test_metric_name_convention () =
  Alcotest.(check bool) "validator accepts" true
    (List.for_all valid_metric_name
       [ "serve.query_ms"; "nljp.outer_rows"; "sic.cache_hits" ]);
  Alcotest.(check bool) "validator rejects" false
    (List.exists valid_metric_name
       [ "queries"; "Serve.queries"; "serve..x"; "serve."; ".serve";
         "serve.q-ms"; "serve.q ms" ]);
  (* Force-register every subsystem's metrics (most are registered at
     module init by the libraries this binary links), then audit the
     registries. *)
  ignore (Obs.Metrics.counter "test.audit_probe");
  List.iter
    (fun n ->
      if not (valid_metric_name n) then
        Alcotest.failf "counter %S violates the subsystem.name convention" n)
    (List.map fst (Obs.Metrics.snapshot ()));
  List.iter
    (fun (h : Obs.Metrics.hist_summary) ->
      if not (valid_metric_name h.Obs.Metrics.hs_name) then
        Alcotest.failf "histogram %S violates the subsystem.name convention"
          h.Obs.Metrics.hs_name)
    (Obs.Metrics.hist_snapshot ());
  List.iter
    (fun (s : Obs.Rolling.snap) ->
      if not (valid_metric_name s.Obs.Rolling.rs_name) then
        Alcotest.failf "roll %S violates the subsystem.name convention"
          s.Obs.Rolling.rs_name)
    (Obs.Rolling.snapshot_all ())

(* ---- trace JSON ---- *)

let test_span_roundtrip () =
  let root = Obs.Span.enter "query" in
  let child =
    Obs.Span.with_span ~parent:root "execute" (fun s ->
        Obs.Span.set_counter s "outer_rows" 123;
        Obs.Span.set_counter s "memo_hits" 7;
        Obs.Span.note s "vector off: disabled by configuration";
        s.Obs.Span.rows_out <- Some 40;
        s)
  in
  Obs.Span.finish ~rows_in:10 ~rows_out:40 root;
  let r = Obs.Span.of_json_string (Obs.Span.to_json_string root) in
  Alcotest.(check string) "name" "query" r.Obs.Span.name;
  Alcotest.(check (option int)) "rows_in" (Some 10) r.Obs.Span.rows_in;
  Alcotest.(check (option int)) "rows_out" (Some 40) r.Obs.Span.rows_out;
  (match Obs.Span.children r with
   | [ c ] ->
     Alcotest.(check string) "child name" "execute" c.Obs.Span.name;
     Alcotest.(check (option int)) "child rows_out" (Some 40) c.Obs.Span.rows_out;
     Alcotest.(check (list (pair string int))) "counters"
       c.Obs.Span.counters child.Obs.Span.counters;
     Alcotest.(check (list string)) "notes" child.Obs.Span.notes c.Obs.Span.notes;
     Alcotest.(check bool) "duration preserved" true
       (Float.abs (c.Obs.Span.dur_ms -. child.Obs.Span.dur_ms) < 1e-6)
   | cs -> Alcotest.failf "expected 1 child, got %d" (List.length cs));
  (* the EXPLAIN ANALYZE text renders every node *)
  let text = Obs.Span.to_text root in
  Alcotest.(check bool) "text tree mentions both spans" true
    (contains text "query" && contains text "execute")

let test_trace_json_schema () =
  let root = Obs.Span.enter "query" in
  ignore (Obs.Span.with_span ~parent:root "parse" (fun s -> s));
  Obs.Span.finish root;
  let j = Obs.Span.trace_json root in
  (match Obs.Json.member "trace" j with
   | Some tr ->
     Alcotest.(check bool) "trace.name" true
       (Obs.Json.member "name" tr = Some (Obs.Json.Str "query"))
   | None -> Alcotest.fail "no trace member");
  (match Obs.Json.member "metrics" j with
   | Some (Obs.Json.Obj _) -> ()
   | _ -> Alcotest.fail "no metrics object");
  (* the document survives its own printer/parser *)
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "trace document did not round-trip"

let test_span_roundtrip_hostile_strings () =
  (* Names and notes with every character class the escaper must handle:
     quotes, backslashes, newlines, tabs, raw control characters, and
     multi-byte UTF-8 (emitted byte-for-byte, not \u-escaped). *)
  let hostile =
    "he said \"hi\\there\"\nline2\ttab \x01\x1f ctrl \xc3\xa9 utf8"
  in
  let root = Obs.Span.enter hostile in
  Obs.Span.note root hostile;
  Obs.Span.set_counter root hostile 3;
  root.Obs.Span.rows_out <- Some 1;
  root.Obs.Span.dur_ms <- 0.5;
  let r = Obs.Span.of_json_string (Obs.Span.to_json_string root) in
  Alcotest.(check string) "name" hostile r.Obs.Span.name;
  Alcotest.(check (list string)) "notes" [ hostile ] r.Obs.Span.notes;
  Alcotest.(check (list (pair string int))) "counters" [ (hostile, 3) ]
    r.Obs.Span.counters

let test_json_escapes () =
  (* \uXXXX escapes decode to UTF-8, including surrogate pairs; printing
     non-finite numbers degrades to null instead of emitting invalid JSON. *)
  (match Obs.Json.of_string "\"\\u00e9 \\u0041 \\ud83d\\ude00\"" with
   | Obs.Json.Str s -> Alcotest.(check string) "decoded" "\xc3\xa9 A \xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "expected a string");
  Alcotest.(check string) "nan prints as null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.nan));
  Alcotest.(check string) "inf prints as null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.infinity));
  let s = Obs.Json.to_string (Obs.Json.Str "\x00\x07\x1b") in
  Alcotest.(check bool) "control chars are escaped" true
    (contains s "\\u0000" && not (contains s "\x00"))

let test_json_parser () =
  let s = "{\"a\": [1, 2.5, null, true, \"x\\n\\\"y\\\"\"], \"b\": {}}" in
  let j = Obs.Json.of_string s in
  (match Obs.Json.member "a" j with
   | Some (Obs.Json.Arr [ Obs.Json.Num 1.; Obs.Json.Num 2.5; Obs.Json.Null;
                          Obs.Json.Bool true; Obs.Json.Str "x\n\"y\"" ]) -> ()
   | _ -> Alcotest.fail "array members");
  Alcotest.(check bool) "reprint parses back" true
    (Obs.Json.of_string (Obs.Json.to_string j) = j)

(* ---- EXPLAIN goldens (substring checks, not byte-for-byte) ---- *)

let test_explain_simple () =
  let catalog = basket_catalog () in
  let q =
    Sqlfront.Parser.parse
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 WHERE \
       i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
  in
  let out = Core.Explain.query catalog q in
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "EXPLAIN output missing %S:\n%s" needle out)
    [ "query:"; "NLJP outer side:"; "NLJP component queries:";
      "inner access path: hash probe"; "baseline physical plan (cost model):";
      "Scan basket" ]

let complex_catalog () =
  (* The real unpivoted baseball table: its catalog facts (keys, value
     domains) are what make the a-priori reducers provably safe. *)
  let catalog = Catalog.create () in
  ignore (Workload.Baseball.register_unpivoted catalog ~rows:400 ~seed:2017);
  catalog

let complex_sql =
  "SELECT S1.id, S1.attr, S2.attr, COUNT(*) FROM perf_kv S1, perf_kv S2, \
   perf_kv T1, perf_kv T2 WHERE S1.id = S2.id AND T1.id = T2.id AND \
   S1.category = T1.category AND T1.attr = S1.attr AND T2.attr = S2.attr \
   AND T1.val > S1.val AND T2.val > S2.val GROUP BY S1.id, S1.attr, S2.attr \
   HAVING COUNT(*) >= 3"

let test_explain_complex () =
  let out =
    Core.Explain.query (complex_catalog ()) (Sqlfront.Parser.parse complex_sql)
  in
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "EXPLAIN output missing %S:\n%s" needle out)
    [ "a-priori reducer on"; "NLJP outer side:"; "Q_B (binding query";
      "memoization: on"; "inner access path:";
      "baseline physical plan (cost model):" ];
  (* EXPLAIN must not execute: the same catalog explains a query whose
     execution would throw (division by zero in the HAVING threshold is
     not needed — instead check a filter over a missing-at-runtime value
     is still planned).  Cheap proxy: explaining twice is idempotent and
     leaves no temp tables behind. *)
  let again =
    Core.Explain.query (complex_catalog ()) (Sqlfront.Parser.parse complex_sql)
  in
  Alcotest.(check string) "idempotent" out again

let test_explain_baseline_shape () =
  (* Outside the iceberg shape (no HAVING): flagged, with cost model only. *)
  let catalog = basket_catalog () in
  let q = Sqlfront.Parser.parse "SELECT item FROM basket WHERE bid >= 2" in
  let out = Core.Explain.query catalog q in
  Alcotest.(check bool) "flagged as not optimized" true
    (contains out "not optimized: outside the iceberg query shape");
  Alcotest.(check bool) "still costed" true
    (contains out "baseline physical plan (cost model):")

let suite =
  [ t "counter basics" test_counter_basics;
    t "counter cells merge across domains" test_counter_merge_across_domains;
    t "snapshot delta reports movement only" test_snapshot_delta;
    t "NLJP counter totals match sequential under workers>1"
      test_parallel_totals;
    t "histogram quantile estimation (p50/p95/p99, edges)" test_hist_quantiles;
    t "rolling windows rotate, age out and survive clock skips"
      test_rolling_rotation;
    t "rolling rate covers the live span only" test_rolling_rate;
    t "rolling totals exact under concurrent observe" test_rolling_concurrent;
    t "metric names follow the subsystem.name convention"
      test_metric_name_convention;
    t "span tree round-trips through JSON" test_span_roundtrip;
    t "hostile strings survive the span JSON round-trip"
      test_span_roundtrip_hostile_strings;
    t "json escape handling (\\u decode, non-finite nums)" test_json_escapes;
    t "trace document has trace + metrics members" test_trace_json_schema;
    t "json printer/parser round-trip" test_json_parser;
    t "EXPLAIN simple iceberg query" test_explain_simple;
    t "EXPLAIN four-way complex query" test_explain_complex;
    t "EXPLAIN non-iceberg query falls back to cost model"
      test_explain_baseline_shape ]
