open Core
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let jl_xy = [ Schema.col ~q:"L" "x"; Schema.col ~q:"L" "y" ]
let jr_xy = [ Schema.col ~q:"R" "x"; Schema.col ~q:"R" "y" ]

let skyband_theta =
  (* L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) *)
  Expr.And
    ( Expr.And
        ( Expr.Cmp (Expr.Le, Expr.col ~q:"L" "x", Expr.col ~q:"R" "x"),
          Expr.Cmp (Expr.Le, Expr.col ~q:"L" "y", Expr.col ~q:"R" "y") ),
      Expr.Or
        ( Expr.Cmp (Expr.Lt, Expr.col ~q:"L" "x", Expr.col ~q:"R" "x"),
          Expr.Cmp (Expr.Lt, Expr.col ~q:"L" "y", Expr.col ~q:"R" "y") ) )

let derive_skyband () =
  match
    Subsume.derive ~theta:skyband_theta ~jl:jl_xy ~jr:jr_xy ~numeric:(fun _ -> true)
  with
  | Some s -> s
  | None -> Alcotest.fail "skyband subsumption must be derivable"

let unit_tests =
  [ t "skyband p>= is componentwise <=" (fun () ->
        let s = derive_skyband () in
        let test = Subsume.compile s in
        List.iter
          (fun (w, w', expected) ->
            Alcotest.(check bool)
              (Printf.sprintf "p((%d,%d),(%d,%d))" (fst w) (snd w) (fst w') (snd w'))
              expected
              (test [| iv (fst w); iv (snd w) |] [| iv (fst w'); iv (snd w') |]))
          [ ((0, 0), (1, 1), true); ((1, 1), (1, 1), true); ((2, 1), (1, 2), false);
            ((1, 2), (2, 1), false); ((2, 2), (1, 1), false); ((0, 5), (0, 5), true) ]);
    t "derivation refused for non-linear theta" (fun () ->
        let theta =
          Expr.Cmp
            ( Expr.Le,
              Expr.Binop (Expr.Mul, Expr.col ~q:"L" "x", Expr.col ~q:"L" "y"),
              Expr.col ~q:"R" "x" )
        in
        Alcotest.(check bool) "none" true
          (Subsume.derive ~theta ~jl:jl_xy ~jr:jr_xy ~numeric:(fun _ -> true) = None));
    t "string equality join supported via interning" (fun () ->
        let theta = Expr.Cmp (Expr.Eq, Expr.col ~q:"L" "c", Expr.col ~q:"R" "c") in
        let jl = [ Schema.col ~q:"L" "c" ] and jr = [ Schema.col ~q:"R" "c" ] in
        (match Subsume.derive ~theta ~jl ~jr ~numeric:(fun _ -> false) with
         | None -> Alcotest.fail "equality on strings should derive"
         | Some s ->
           let test = Subsume.compile s in
           Alcotest.(check bool) "same string subsumes" true
             (test [| sv "a" |] [| sv "a" |]);
           Alcotest.(check bool) "different string does not" false
             (test [| sv "a" |] [| sv "b" |])));
    t "string inequality join refused" (fun () ->
        let theta = Expr.Cmp (Expr.Le, Expr.col ~q:"L" "c", Expr.col ~q:"R" "c") in
        let jl = [ Schema.col ~q:"L" "c" ] and jr = [ Schema.col ~q:"R" "c" ] in
        Alcotest.(check bool) "none" true
          (Subsume.derive ~theta ~jl ~jr ~numeric:(fun c -> c.Schema.qualifier = None) = None));
    t "weak dominance (pairs query direction)" (fun () ->
        (* R dominates L: R.h >= L.h AND R.r >= L.r AND (R.h > L.h OR R.r > L.r);
           outer is L, so J_L = {L.h, L.r}. A larger L joins with fewer R. *)
        let theta =
          Expr.And
            ( Expr.And
                ( Expr.Cmp (Expr.Ge, Expr.col ~q:"R" "h", Expr.col ~q:"L" "h"),
                  Expr.Cmp (Expr.Ge, Expr.col ~q:"R" "r", Expr.col ~q:"L" "r") ),
              Expr.Or
                ( Expr.Cmp (Expr.Gt, Expr.col ~q:"R" "h", Expr.col ~q:"L" "h"),
                  Expr.Cmp (Expr.Gt, Expr.col ~q:"R" "r", Expr.col ~q:"L" "r") ) )
        in
        let jl = [ Schema.col ~q:"L" "h"; Schema.col ~q:"L" "r" ] in
        let jr = [ Schema.col ~q:"R" "h"; Schema.col ~q:"R" "r" ] in
        match Subsume.derive ~theta ~jl ~jr ~numeric:(fun _ -> true) with
        | None -> Alcotest.fail "derivable"
        | Some s ->
          let test = Subsume.compile s in
          Alcotest.(check bool) "smaller subsumes larger" true
            (test [| iv 1; iv 1 |] [| iv 3; iv 3 |]);
          Alcotest.(check bool) "larger does not subsume smaller" false
            (test [| iv 3; iv 3 |] [| iv 1; iv 1 |])) ]

(* Soundness against the instance oracle of Definition 4: whenever the
   derived predicate claims w ⪰ w', the joining sets must nest. *)
let oracle_props =
  let point = QCheck.pair (QCheck.int_range 0 6) (QCheck.int_range 0 6) in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"derived p>= matches Definition 4 oracle (skyband)"
         ~count:300
         (QCheck.triple point point (QCheck.list_of_size (QCheck.Gen.int_range 0 25) point))
         (fun ((wx, wy), (wx', wy'), rpts) ->
           let s = derive_skyband () in
           let test = Subsume.compile s in
           let jl_schema = Schema.of_cols jl_xy in
           let r =
             Relation.of_rows
               (Schema.of_cols (jr_xy @ [ Schema.col ~q:"R" "id" ]))
               (List.mapi (fun i (x, y) -> [| iv x; iv y; iv i |]) rpts)
           in
           let w = [| iv wx; iv wy |] and w' = [| iv wx'; iv wy' |] in
           let claimed = test w w' in
           let oracle =
             Subsume.subsumes_instance ~theta:skyband_theta ~jl_schema ~r ~w ~w'
           in
           (* the derived predicate is instance-oblivious: it must never
              claim subsumption that an instance refutes *)
           (not claimed) || oracle));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"derived p>= equals Example 10's hand-derived predicate" ~count:300
         (QCheck.pair point point)
         (fun ((wx, wy), (wx', wy')) ->
           (* Example 10/Appendix B establish p⪰((x,y),(x',y')) ≡ x≤x' ∧ y≤y'
              for the skyband Θ; the automatic derivation must coincide. *)
           let s = derive_skyband () in
           let test = Subsume.compile s in
           Bool.equal
             (test [| iv wx; iv wy |] [| iv wx'; iv wy' |])
             (wx <= wx' && wy <= wy'))) ]

let suite = unit_tests @ oracle_props
