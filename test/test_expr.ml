open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let schema = Schema.of_cols [ Schema.col ~q:"t" "a"; Schema.col ~q:"t" "b" ]
let sample = row [ iv 10; iv 3 ]

let eval e = Expr.eval schema sample e
let check_v = Alcotest.check Helpers.value_testable

let evaluation =
  [ t "column lookup" (fun () -> check_v "a" (iv 10) (eval (Expr.col "a")));
    t "qualified column lookup" (fun () -> check_v "t.a" (iv 10) (eval (Expr.col ~q:"t" "a")));
    t "unknown column raises" (fun () ->
        match eval (Expr.col "zz") with
        | exception Schema.Unknown_column _ -> ()
        | v -> Alcotest.failf "expected Unknown_column, got %s" (Value.to_string v));
    t "arithmetic" (fun () ->
        check_v "a*b+1" (iv 31)
          (eval
             (Expr.Binop
                (Expr.Add, Expr.Binop (Expr.Mul, Expr.col "a", Expr.col "b"), Expr.int 1))));
    t "comparison" (fun () ->
        check_v "a > b" (Value.Bool true) (eval (Expr.Cmp (Expr.Gt, Expr.col "a", Expr.col "b"))));
    t "null comparison is false" (fun () ->
        check_v "null < 1" (Value.Bool false)
          (eval (Expr.Cmp (Expr.Lt, Expr.Const Value.Null, Expr.int 1))));
    t "and or not" (fun () ->
        let p =
          Expr.And
            ( Expr.Cmp (Expr.Gt, Expr.col "a", Expr.int 5),
              Expr.Not (Expr.Cmp (Expr.Eq, Expr.col "b", Expr.int 3)) )
        in
        check_v "and" (Value.Bool false) (eval p));
    t "in_set" (fun () ->
        let set = Expr.row_set_of [ row [ iv 10; iv 3 ] ] in
        check_v "in" (Value.Bool true) (eval (Expr.In_set ([ Expr.col "a"; Expr.col "b" ], set)))) ]

let structure =
  [ t "conjuncts splits nested ands" (fun () ->
        let p =
          Expr.And
            ( Expr.And
                ( Expr.Cmp (Expr.Eq, Expr.col "a", Expr.int 1),
                  Expr.Cmp (Expr.Eq, Expr.col "b", Expr.int 2) ),
              Expr.Cmp (Expr.Gt, Expr.col "a", Expr.col "b") )
        in
        Alcotest.(check int) "3 conjuncts" 3 (List.length (Expr.conjuncts p)));
    t "conj of empty list is true" (fun () ->
        Alcotest.(check bool) "tt" true (Expr.equal (Expr.conj []) Expr.tt));
    t "columns in order without duplicates" (fun () ->
        let p =
          Expr.And
            ( Expr.Cmp (Expr.Lt, Expr.col "b", Expr.col "a"),
              Expr.Cmp (Expr.Gt, Expr.col "b", Expr.int 0) )
        in
        Alcotest.(check (list string)) "cols" [ "b"; "a" ]
          (List.map (fun c -> c.Schema.name) (Expr.columns p)));
    t "bind substitutes resolvable columns" (fun () ->
        let p = Expr.Cmp (Expr.Lt, Expr.col "a", Expr.col "zz") in
        let bound = Expr.bind schema sample p in
        (match bound with
         | Expr.Cmp (Expr.Lt, Expr.Const (Value.Int 10), Expr.Col c) ->
           Alcotest.(check string) "zz kept" "zz" c.Schema.name
         | _ -> Alcotest.fail "unexpected bind result"));
    t "requalify rewrites qualifiers" (fun () ->
        let p = Expr.col ~q:"t" "a" in
        match Expr.requalify (fun _ -> Some "u") p with
        | Expr.Col c -> Alcotest.(check (option string)) "u" (Some "u") c.Schema.qualifier
        | _ -> Alcotest.fail "not a column");
    t "canonicalize resolves bare columns" (fun () ->
        match Expr.canonicalize schema (Expr.col "a") with
        | Expr.Col c -> Alcotest.(check (option string)) "t" (Some "t") c.Schema.qualifier
        | _ -> Alcotest.fail "not a column");
    t "flip and negate cmp" (fun () ->
        Alcotest.(check bool) "flip lt = gt" true (Expr.flip_cmp Expr.Lt = Expr.Gt);
        Alcotest.(check bool) "negate le = gt" true (Expr.negate_cmp Expr.Le = Expr.Gt)) ]

(* compile must agree with eval on arbitrary small expressions *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun i -> Expr.Const (Value.Int i)) (int_range (-20) 20);
        return (Expr.col "a");
        return (Expr.col "b") ]
  in
  let rec go n =
    if n <= 0 then leaf
    else
      frequency
        [ (2, leaf);
          ( 3,
            map3
              (fun op l r -> Expr.Binop (op, l, r))
              (oneofl [ Expr.Add; Expr.Sub; Expr.Mul ])
              (go (n - 1)) (go (n - 1)) );
          ( 2,
            map3
              (fun op l r -> Expr.Cmp (op, l, r))
              (oneofl [ Expr.Eq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Ne ])
              (go (n - 1)) (go (n - 1)) ) ]
  in
  go 3

(* Generated expressions may mix booleans into arithmetic; both evaluation
   paths must then agree on raising Type_error. *)
let outcome f = try Ok (f ()) with Value.Type_error _ -> Error `Type_error

let same_outcome a b =
  match outcome a, outcome b with
  | Ok x, Ok y -> Value.equal_total x y
  | Error `Type_error, Error `Type_error -> true
  | _ -> false

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compile agrees with eval" ~count:500
         (QCheck.make ~print:Expr.to_string expr_gen)
         (fun e ->
           same_outcome
             (fun () -> Expr.eval schema sample e)
             (fun () -> Expr.compile schema e sample)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compile_join_bool agrees with eval on concatenation"
         ~count:300
         (QCheck.make ~print:Expr.to_string expr_gen)
         (fun e ->
           let left = Schema.of_cols [ Schema.col ~q:"t" "a" ] in
           let right = Schema.of_cols [ Schema.col ~q:"t" "b" ] in
           let p = Expr.Cmp (Expr.Ne, e, Expr.int 0) in
           same_outcome
             (fun () ->
               Value.Bool (Expr.eval_bool (Schema.append left right) sample p))
             (fun () ->
               let f = Expr.compile_join_bool left right p in
               Value.Bool (f [| iv 10 |] [| iv 3 |])))) ]

let suite = evaluation @ structure @ props
