(* The columnar storage subsystem: block construction, lossless row
   roundtrips, dictionary coding, zone-map semantics (including SQL NULL
   edge cases) and the block-skipping scan path. *)
open Relalg
open Helpers

let t name f = Alcotest.test_case name `Quick f

let bv b = Value.Bool b
let nv = Value.Null

(* A deliberately awkward relation: every typed vector kind, nulls in each
   column, one mixed-type column, and a length that is not a multiple of
   the block size. *)
let awkward_rows =
  List.init 23 (fun i ->
      row
        [ (if i mod 7 = 3 then nv else iv i);
          (if i mod 5 = 0 then nv else fv (float_of_int i /. 2.));
          (if i mod 6 = 1 then nv else sv (Printf.sprintf "s%d" (i mod 4)));
          (if i mod 4 = 2 then nv else bv (i mod 2 = 0));
          (match i mod 3 with 0 -> iv i | 1 -> sv "mix" | _ -> nv) ])

let awkward_schema = Schema.of_names [ "i"; "f"; "s"; "b"; "m" ]

let check_same_rows msg (expected : Row.t array) (actual : Row.t array) =
  Alcotest.(check int) (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun r erow ->
      Array.iteri
        (fun c ev ->
          if not (Value.equal_total ev actual.(r).(c)) then
            Alcotest.failf "%s: row %d col %d: expected %s, got %s" msg r c
              (Value.to_string ev)
              (Value.to_string actual.(r).(c)))
        erow)
    expected

let suite =
  [ t "roundtrip is lossless and order-preserving" (fun () ->
        let rows = Array.of_list awkward_rows in
        List.iter
          (fun bs ->
            let cs = Column.Cstore.of_rows ~block_size:bs awkward_schema rows in
            check_same_rows
              (Printf.sprintf "block_size=%d" bs)
              rows (Column.Cstore.to_rows cs))
          [ 1; 4; 7; 23; 100 ]);
    t "empty relation roundtrips" (fun () ->
        let cs = Column.Cstore.of_rows awkward_schema [||] in
        Alcotest.(check int) "length" 0 (Column.Cstore.length cs);
        Alcotest.(check int) "rows" 0 (Array.length (Column.Cstore.to_rows cs)));
    t "block sizing" (fun () ->
        let rows = Array.of_list awkward_rows in
        let cs = Column.Cstore.of_rows ~block_size:7 awkward_schema rows in
        (* 23 rows at 7 per block: 7 + 7 + 7 + 2 *)
        Alcotest.(check int) "nblocks" 4 (Column.Cstore.nblocks cs);
        Alcotest.(check int) "last block"
          2 (Column.Cstore.block cs 3).Column.Cstore.length;
        Alcotest.(check int) "total" 23 (Column.Cstore.length cs));
    t "value_at and row_of agree with to_rows" (fun () ->
        let rows = Array.of_list awkward_rows in
        let cs = Column.Cstore.of_rows ~block_size:5 awkward_schema rows in
        let r = ref 0 in
        Column.Cstore.iter_blocks
          (fun (b : Column.Cstore.block) ->
            for k = 0 to b.Column.Cstore.length - 1 do
              let expected = rows.(!r) in
              check_same_rows "row_of" [| expected |]
                [| Column.Cstore.row_of cs b k |];
              Array.iteri
                (fun c ev ->
                  if not (Value.equal_total ev (Column.Cstore.value_at cs b c k))
                  then Alcotest.failf "value_at row %d col %d" !r c)
                expected;
              incr r
            done)
          cs;
        Alcotest.(check int) "visited all" (Array.length rows) !r);
    t "iter_col visits one column in order" (fun () ->
        let rows = Array.of_list awkward_rows in
        let cs = Column.Cstore.of_rows ~block_size:4 awkward_schema rows in
        let seen = ref [] in
        Column.Cstore.iter_col cs 2 (fun v -> seen := v :: !seen);
        let got = Array.of_list (List.rev !seen) in
        check_same_rows "col 2"
          (Array.map (fun r -> [| r.(2) |]) rows)
          (Array.map (fun v -> [| v |]) got));
    t "string columns are dictionary-coded" (fun () ->
        let rows =
          Array.init 20 (fun i -> [| sv (Printf.sprintf "v%d" (i mod 3)) |])
        in
        let cs = Column.Cstore.of_rows ~block_size:8 (Schema.of_names [ "s" ]) rows in
        (match Column.Cstore.dict cs 0 with
         | None -> Alcotest.fail "expected a dictionary"
         | Some d ->
           Alcotest.(check int) "distinct" 3 (Column.Dict.size d);
           Alcotest.(check (option int)) "absent string" None
             (Column.Dict.find_opt d "nope");
           (match Column.Dict.find_opt d "v1" with
            | Some c -> Alcotest.(check string) "code roundtrip" "v1" (Column.Dict.get d c)
            | None -> Alcotest.fail "v1 not interned"));
        (* every block of the column should use the dictionary encoding *)
        Column.Cstore.iter_blocks
          (fun (b : Column.Cstore.block) ->
            match b.Column.Cstore.cols.(0) with
            | Column.Cstore.C_dict _ -> ()
            | _ -> Alcotest.fail "expected C_dict block")
          cs);
    t "zone maps summarize each block" (fun () ->
        let rows = Array.init 10 (fun i -> [| iv i |]) in
        let cs = Column.Cstore.of_rows ~block_size:5 (Schema.of_names [ "x" ]) rows in
        let b0 = Column.Cstore.block cs 0 and b1 = Column.Cstore.block cs 1 in
        let z0 = b0.Column.Cstore.zmaps.(0) and z1 = b1.Column.Cstore.zmaps.(0) in
        Alcotest.(check string) "block 0" "[0, 4] nulls=0/5" (Column.Zmap.to_string z0);
        Alcotest.(check string) "block 1" "[5, 9] nulls=0/5" (Column.Zmap.to_string z1);
        let z = Column.Cstore.col_zmap cs 0 in
        Alcotest.(check string) "merged" "[0, 9] nulls=0/10" (Column.Zmap.to_string z));
    t "zone map min/max ignore nulls" (fun () ->
        let z =
          List.fold_left Column.Zmap.observe Column.Zmap.empty
            [ nv; iv 3; nv; iv 7; nv ]
        in
        Alcotest.(check string) "summary" "[3, 7] nulls=3/5" (Column.Zmap.to_string z));
    t "may_match interval logic" (fun () ->
        let z =
          List.fold_left Column.Zmap.observe Column.Zmap.empty [ iv 10; iv 20 ]
        in
        let check op v expected =
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" (Value.to_string v)
               (match op with
                | Column.Zmap.Eq -> "=" | Ne -> "<>" | Lt -> "<"
                | Le -> "<=" | Gt -> ">" | Ge -> ">="))
            expected
            (Column.Zmap.may_match z op v)
        in
        check Column.Zmap.Eq (iv 15) true;
        check Column.Zmap.Eq (iv 10) true;
        check Column.Zmap.Eq (iv 9) false;
        check Column.Zmap.Eq (iv 21) false;
        (* row < 10 is impossible when min = 10 *)
        check Column.Zmap.Lt (iv 10) false;
        check Column.Zmap.Lt (iv 11) true;
        check Column.Zmap.Le (iv 10) true;
        check Column.Zmap.Le (iv 9) false;
        (* row > 20 is impossible when max = 20 *)
        check Column.Zmap.Gt (iv 20) false;
        check Column.Zmap.Gt (iv 19) true;
        check Column.Zmap.Ge (iv 20) true;
        check Column.Zmap.Ge (iv 21) false;
        check Column.Zmap.Ne (iv 15) true;
        (* numeric comparison crosses representations *)
        check Column.Zmap.Eq (fv 15.0) true;
        check Column.Zmap.Gt (fv 20.5) false);
    t "may_match NULL semantics" (fun () ->
        let z =
          List.fold_left Column.Zmap.observe Column.Zmap.empty [ iv 1; iv 2 ]
        in
        (* comparisons against a NULL constant are false for every row *)
        Alcotest.(check bool) "null probe" false
          (Column.Zmap.may_match z Column.Zmap.Eq nv);
        (* an all-null block has no row that satisfies any comparison *)
        let all_null =
          List.fold_left Column.Zmap.observe Column.Zmap.empty [ nv; nv ]
        in
        Alcotest.(check bool) "all-null block" false
          (Column.Zmap.may_match all_null Column.Zmap.Ge (iv 0));
        (* nulls inside a block don't widen the range *)
        let with_nulls =
          List.fold_left Column.Zmap.observe Column.Zmap.empty [ nv; iv 5; nv ]
        in
        Alcotest.(check bool) "nulls don't match Lt" false
          (Column.Zmap.may_match with_nulls Column.Zmap.Lt (iv 5)));
    t "may_match Ne skips single-value blocks" (fun () ->
        let z = List.fold_left Column.Zmap.observe Column.Zmap.empty [ iv 7; iv 7 ] in
        Alcotest.(check bool) "all equal" false
          (Column.Zmap.may_match z Column.Zmap.Ne (iv 7));
        Alcotest.(check bool) "different constant" true
          (Column.Zmap.may_match z Column.Zmap.Ne (iv 8)));
    t "block-skipping select agrees with row scan and skips" (fun () ->
        let n = 4000 in
        let schema = Schema.of_names [ "id"; "grp" ] in
        let rows = Array.init n (fun i -> [| iv i; iv (i mod 13) |]) in
        let col_rel =
          Relation.of_cstore (Column.Cstore.of_rows ~block_size:256 schema rows)
        in
        let row_rel = Relation.make schema rows in
        let pred lo hi =
          Expr.And
            ( Expr.Cmp (Expr.Ge, Expr.col "id", Expr.int lo),
              Expr.Cmp (Expr.Lt, Expr.col "id", Expr.int hi) )
        in
        Colscan.reset_counters ();
        let p = pred 1000 1100 in
        check_bag "selective window" (Ops.select p row_rel) (Ops.select p col_rel);
        let skipped, scanned = Colscan.counters () in
        Alcotest.(check bool) "skipped some blocks" true (skipped > 0);
        Alcotest.(check bool) "scanned the window" true (scanned >= 1);
        Alcotest.(check int) "accounted every block"
          (4000 / 256 + 1) (skipped + scanned);
        (* a predicate the zone probes can't cover falls back to the row
           predicate per block, still correct *)
        let fancy =
          Expr.Cmp
            ( Expr.Eq,
              Expr.Binop (Expr.Mul, Expr.col "grp", Expr.int 2),
              Expr.int 6 )
        in
        check_bag "generic fallback" (Ops.select fancy row_rel)
          (Ops.select fancy col_rel);
        (* dictionary equality fast path, including an absent constant *)
        let srows = Array.init 100 (fun i -> [| sv (if i mod 2 = 0 then "a" else "b") |]) in
        let sschema = Schema.of_names [ "s" ] in
        let scol = Relation.of_cstore (Column.Cstore.of_rows ~block_size:16 sschema srows) in
        let srow = Relation.make sschema srows in
        List.iter
          (fun c ->
            let p = Expr.Cmp (Expr.Eq, Expr.col "s", Expr.Const (sv c)) in
            check_bag ("dict eq " ^ c) (Ops.select p srow) (Ops.select p scol);
            let p = Expr.Cmp (Expr.Ne, Expr.col "s", Expr.Const (sv c)) in
            check_bag ("dict ne " ^ c) (Ops.select p srow) (Ops.select p scol))
          [ "a"; "b"; "absent" ]);
    t "approx_bytes is layout-aware" (fun () ->
        let n = 10_000 in
        let schema = Schema.of_names [ "x" ] in
        let rows = Array.init n (fun i -> [| iv i |]) in
        let row_rel = Relation.make schema rows in
        let col_rel = Relation.to_layout `Column row_rel in
        let rb = Relation.approx_bytes row_rel
        and cb = Relation.approx_bytes col_rel in
        Alcotest.(check bool) "row footprint counts boxes" true (rb > n * 8);
        (* unboxed int vectors: well under the boxed-row figure *)
        Alcotest.(check bool) "columnar footprint smaller" true (cb < rb);
        Alcotest.(check bool) "columnar footprint sane" true (cb >= n * 8));
    t "to_layout converts and preserves the bag" (fun () ->
        let rel = rel [ "a"; "b" ] [ [ iv 1; sv "x" ]; [ iv 2; sv "y" ]; [ iv 1; sv "x" ] ] in
        let col = Relation.to_layout `Column rel in
        Alcotest.(check bool) "column primary" true (Relation.layout col = `Column);
        check_bag "same bag" rel col;
        let back = Relation.to_layout `Row col in
        Alcotest.(check bool) "row primary" true (Relation.layout back = `Row);
        check_bag "same bag back" rel back) ]
