(* The append path and incremental maintenance (DESIGN.md §14): delta
   blocks in the storage layer, per-table delta epochs in the catalog,
   §6 algebraic partial-state folding, and in-place revalidation of a
   prepared NLJP plan's shared cache tier. *)

open Relalg
open Helpers

(* ---- Relation.append / slice_from ---- *)

let test_relation_append () =
  let base = rel [ "a"; "b" ] [ [ iv 1; sv "x" ]; [ iv 2; sv "y" ] ] in
  let fresh = [| row [ iv 3; sv "z" ]; row [ iv 4; sv "w" ] |] in
  List.iter
    (fun layout ->
      let r0 = Relation.to_layout layout base in
      let r1 = Relation.append r0 fresh in
      Alcotest.(check int) "cardinality grows" 4 (Relation.cardinality r1);
      check_bag "append keeps layout contents"
        (rel [ "a"; "b" ]
           [ [ iv 1; sv "x" ]; [ iv 2; sv "y" ]; [ iv 3; sv "z" ];
             [ iv 4; sv "w" ] ])
        r1;
      (* the base relation is untouched (append is functional) *)
      Alcotest.(check int) "base untouched" 2 (Relation.cardinality r0);
      check_bag "slice_from is the delta view"
        (rel [ "a"; "b" ] [ [ iv 3; sv "z" ]; [ iv 4; sv "w" ] ])
        (Relation.slice_from r1 2))
    [ `Row; `Column ];
  (* column-primary appends land in delta blocks, never rebuilding base *)
  let c0 = Relation.to_layout `Column base in
  let c1 = Relation.append c0 fresh in
  Alcotest.(check int) "delta rows tracked" 2
    (Column.Cstore.delta_rows (Relation.cstore c1));
  Alcotest.(check int) "fresh store has no delta" 0
    (Column.Cstore.delta_rows (Relation.cstore c0))

let test_cstore_delta_blocks () =
  let names = [ "a"; "b" ] in
  let base = Relation.cstore (Relation.to_layout `Column
    (rel names (List.init 10 (fun i -> [ iv i; sv (string_of_int i) ])))) in
  (* many tiny appends: correctness must survive lazy coalescing *)
  let st = ref base in
  for k = 10 to 40 do
    st := Column.Cstore.append_rows !st [| row [ iv k; sv (string_of_int k) ] |]
  done;
  Alcotest.(check int) "length includes deltas" 41 (Column.Cstore.length !st);
  let all = Column.Cstore.rows_from !st 0 in
  Alcotest.(check int) "decode sees every row" 41 (Array.length all);
  Array.iteri
    (fun i r ->
      Alcotest.(check value_testable)
        (Printf.sprintf "row %d col a" i)
        (iv i) r.(0))
    all;
  (* suffix decode touches only the tail *)
  let tail = Column.Cstore.rows_from !st 38 in
  Alcotest.(check int) "suffix length" 3 (Array.length tail);
  Alcotest.(check value_testable) "suffix starts at lo" (iv 38) tail.(0).(0)

(* ---- Catalog stamps and delta_since ---- *)

let test_catalog_stamp () =
  let catalog = basket_catalog () in
  let s0 = Catalog.stamp catalog "basket" in
  Alcotest.(check int) "seed length" 8 s0.Catalog.s_len;
  let v0 = Catalog.version catalog in
  let fresh = [| row [ iv 9; sv "z" ]; row [ iv 9; sv "w" ] |] in
  Catalog.append_rows catalog "basket" fresh;
  Alcotest.(check bool) "append bumps version" true
    (Catalog.version catalog > v0);
  let s1 = Catalog.stamp catalog "basket" in
  Alcotest.(check int) "same generation across append" s0.Catalog.s_gen
    s1.Catalog.s_gen;
  Alcotest.(check int) "length grew" 10 s1.Catalog.s_len;
  (* the delta since the old stamp is exactly the appended rows *)
  (match Catalog.delta_since catalog "basket" s0 with
   | `Delta d ->
     check_bag "delta_since returns the appended suffix"
       (rel [ "bid"; "item" ] [ [ iv 9; sv "z" ]; [ iv 9; sv "w" ] ])
       d
   | `Invalid -> Alcotest.fail "append must keep the stamp deltable");
  (* since the current stamp: empty delta, still valid *)
  (match Catalog.delta_since catalog "basket" s1 with
   | `Delta d -> Alcotest.(check int) "empty delta" 0 (Relation.cardinality d)
   | `Invalid -> Alcotest.fail "current stamp must be valid");
  (* a structural rewrite starts a new generation: delta reasoning ends *)
  let tbl = Catalog.find catalog "basket" in
  Catalog.replace_rows catalog "basket" tbl.Catalog.rel;
  (match Catalog.delta_since catalog "basket" s1 with
   | `Invalid -> ()
   | `Delta _ -> Alcotest.fail "replace_rows must invalidate old stamps");
  Alcotest.(check bool) "replace bumps generation" true
    ((Catalog.stamp catalog "basket").Catalog.s_gen > s1.Catalog.s_gen);
  (* stamps: normalized multi-table form *)
  let st = Catalog.stamps catalog [ "BASKET" ] in
  Alcotest.(check int) "stamps normalizes names" 1 (List.length st);
  Alcotest.(check string) "lowercase key" "basket" (fst (List.hd st))

let test_catalog_append_keeps_indexes () =
  let catalog = basket_catalog () in
  Catalog.append_rows catalog "basket" [| row [ iv 9; sv "z" ] |];
  (* indexes were rebuilt over the grown table and queries still work *)
  let r =
    Core.Runner.run_baseline catalog
      (Sqlfront.Parser.parse "SELECT bid FROM basket WHERE item = 'z'")
  in
  check_bag "index-backed lookup sees the delta" (rel [ "bid" ] [ [ iv 9 ] ]) r

(* ---- Core.Delta: §6 partial-state maintenance ---- *)

let parse = Sqlfront.Parser.parse

let test_delta_supported () =
  let catalog = basket_catalog () in
  let sup sql = Core.Delta.supported catalog (parse sql) in
  Alcotest.(check bool) "iceberg self-join" true
    (sup
       "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 WHERE i1.bid = \
        i2.bid GROUP BY i1.item HAVING COUNT(*) >= 2");
  Alcotest.(check bool) "algebraic aggregates" true
    (sup
       "SELECT item, COUNT(*), SUM(bid), MIN(bid), MAX(bid), AVG(bid) FROM \
        basket GROUP BY item");
  Alcotest.(check bool) "DISTINCT is refused" false
    (sup "SELECT DISTINCT item FROM basket");
  Alcotest.(check bool) "COUNT DISTINCT is holistic" false
    (sup "SELECT item, COUNT(DISTINCT bid) FROM basket GROUP BY item");
  Alcotest.(check bool) "ORDER BY is refused" false
    (sup "SELECT item, COUNT(*) FROM basket GROUP BY item ORDER BY item");
  Alcotest.(check bool) "WITH is refused" false
    (sup
       "WITH t AS (SELECT bid FROM basket) SELECT bid, COUNT(*) FROM t GROUP \
        BY bid")

let basket_sql =
  "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 WHERE i1.bid = i2.bid \
   GROUP BY i1.item HAVING COUNT(*) >= 2"

(* Append [fresh] to [table] in [catalog] and fold it into [st], asserting
   the maintained result stays bag-equal to a from-scratch recompute. *)
let fold_and_check ?expect catalog st table sql fresh =
  Catalog.append_rows catalog table fresh;
  let schema = (Catalog.find catalog table).Catalog.rel.Relation.schema in
  let delta = Relation.make schema fresh in
  (match (Core.Delta.apply st ~table ~delta, expect) with
   | Ok got, Some want ->
     if got <> want then Alcotest.failf "unexpected apply outcome for %s" sql
   | Ok _, None -> ()
   | Error m, _ -> Alcotest.failf "apply failed for %s: %s" sql m);
  let want = Core.Runner.run_baseline catalog (parse sql) in
  check_bag ("maintained result for " ^ sql) want (Core.Delta.result st)

let test_delta_basket () =
  let catalog = basket_catalog () in
  let st =
    match Core.Delta.init catalog (parse basket_sql) with
    | Some st -> st
    | None -> Alcotest.fail "basket_sql must have a delta rule"
  in
  Alcotest.(check (list string)) "tables" [ "basket" ] (Core.Delta.tables st);
  check_bag "initial state round-trips"
    (Core.Runner.run_baseline catalog (parse basket_sql))
    (Core.Delta.result st);
  (* three bursts through the k=2 telescoping path: rows that extend
     existing groups, create a new group, and push a group over the
     HAVING threshold *)
  (* 2 delta rows at each of the 2 occurrences survive local filtering *)
  fold_and_check catalog st "basket" basket_sql
    ~expect:(`Incremental 4)
    [| row [ iv 1; sv "z" ]; row [ iv 1; sv "w" ] |];
  fold_and_check catalog st "basket" basket_sql
    [| row [ iv 7; sv "solo" ] |];
  fold_and_check catalog st "basket" basket_sql
    [| row [ iv 7; sv "pair" ]; row [ iv 2; sv "z" ] |];
  Alcotest.(check bool) "groups span both threshold sides" true
    (Core.Delta.groups st > 0)

let test_delta_revalidate () =
  let catalog =
    objects_catalog (List.init 20 (fun i -> (i mod 4, i mod 3)))
  in
  let sql =
    "SELECT o1.x, COUNT(*) FROM object o1, object o2 WHERE o1.x = o2.x AND \
     o1.y < 2 AND o2.y < 2 GROUP BY o1.x HAVING COUNT(*) >= 2"
  in
  let st =
    match Core.Delta.init catalog (parse sql) with
    | Some st -> st
    | None -> Alcotest.fail "query must have a delta rule"
  in
  (* every occurrence carries y < 2 locally: a delta of y = 50 rows is
     refuted without running any join *)
  fold_and_check catalog st "object" sql
    ~expect:`Revalidated
    [| row [ iv 100; iv 1; iv 50 ]; row [ iv 101; iv 2; iv 50 ] |];
  (* a joinable delta row goes through the incremental path instead
     (placed at each of the 2 occurrences) *)
  fold_and_check catalog st "object" sql
    ~expect:(`Incremental 2)
    [| row [ iv 102; iv 1; iv 0 ] |]

let test_delta_oversized () =
  let catalog = basket_catalog () in
  let st =
    match Core.Delta.init catalog (parse basket_sql) with
    | Some st -> st
    | None -> Alcotest.fail "basket_sql must have a delta rule"
  in
  (* a delta bigger than half the table: folding would cost more than a
     recompute, so apply refuses and the caller starts over *)
  let fresh =
    Array.init 30 (fun i -> row [ iv (100 + i); sv "bulk" ])
  in
  Catalog.append_rows catalog "basket" fresh;
  let schema = (Catalog.find catalog "basket").Catalog.rel.Relation.schema in
  (match
     Core.Delta.apply st ~table:"basket" ~delta:(Relation.make schema fresh)
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "oversized delta must be refused")

(* Differential fuzz: random iceberg self-joins maintained across random
   append bursts, each checkpoint bag-compared against a recompute. *)
let test_delta_fuzz () =
  let rng = Workload.Prng.create 2026 in
  let checked = ref 0 in
  for _case = 1 to 12 do
    let points =
      List.init
        (30 + Workload.Prng.int rng 30)
        (fun _ -> (Workload.Prng.int rng 10, Workload.Prng.int rng 10))
    in
    let catalog = objects_catalog points in
    let sql = Test_fuzz.object_query rng in
    match Core.Delta.init catalog (parse sql) with
    | None -> Alcotest.failf "fuzz query lost its delta rule: %s" sql
    | Some st ->
      for _burst = 1 to 3 do
        let dn = 1 + Workload.Prng.int rng 4 in
        let fresh =
          Array.init dn (fun i ->
              row
                [ iv (1000 + !checked + i); iv (Workload.Prng.int rng 10);
                  iv (Workload.Prng.int rng 10) ])
        in
        checked := !checked + dn;
        fold_and_check catalog st "object" sql fresh
      done
  done;
  Alcotest.(check bool) "fuzz exercised appends" true (!checked > 0)

(* ---- prepared-plan revalidation across appends ---- *)

let test_refresh_prepared () =
  let catalog = basket_catalog () in
  let q = parse basket_sql in
  let p = Core.Runner.prepare catalog q in
  (* warm the shared tier, then append and refresh in place *)
  ignore (Core.Runner.run_prepared p);
  let fresh = [| row [ iv 1; sv "z" ]; row [ iv 5; sv "a" ] |] in
  Catalog.append_rows catalog "basket" fresh;
  let schema = (Catalog.find catalog "basket").Catalog.rel.Relation.schema in
  let delta = Relation.make schema fresh in
  (match Core.Runner.refresh_prepared p ~table:"basket" ~delta with
   | `Kept | `Refreshed -> ()
   | `Reprepare m -> Alcotest.failf "append forced a re-prepare: %s" m);
  Alcotest.(check int) "version advanced to the live catalog"
    (Catalog.version catalog)
    (Core.Runner.prepared_version p);
  (* the refreshed plan (with its surviving cache entries) is bag-equal
     to one-shot execution over the grown table *)
  let want = Core.Runner.run_baseline catalog q in
  let got, _ = Core.Runner.run_prepared p in
  check_bag "refreshed plan over grown table" want got;
  (* second round: the tier warmed by the post-append run revalidates too *)
  let fresh2 = [| row [ iv 2; sv "q" ] |] in
  Catalog.append_rows catalog "basket" fresh2;
  (match
     Core.Runner.refresh_prepared p ~table:"basket"
       ~delta:(Relation.make schema fresh2)
   with
   | `Kept | `Refreshed -> ()
   | `Reprepare m -> Alcotest.failf "second append forced a re-prepare: %s" m);
  let want2 = Core.Runner.run_baseline catalog q in
  let got2, _ = Core.Runner.run_prepared p in
  check_bag "second refresh" want2 got2

let test_refresh_prepared_unrelated () =
  let catalog = basket_catalog () in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] ~nonneg:[ "x"; "y" ] "object"
    (rel [ "id"; "x"; "y" ]
       (List.init 12 (fun i -> [ iv i; iv (i mod 4); iv (i mod 3) ])));
  let sql =
    "SELECT o1.x, COUNT(*) FROM object o1, object o2 WHERE o1.x = o2.x GROUP \
     BY o1.x HAVING COUNT(*) >= 2"
  in
  let p = Core.Runner.prepare catalog (parse sql) in
  ignore (Core.Runner.run_prepared p);
  let fresh = [| row [ iv 9; sv "z" ] |] in
  Catalog.append_rows catalog "basket" fresh;
  let schema = (Catalog.find catalog "basket").Catalog.rel.Relation.schema in
  (match
     Core.Runner.refresh_prepared p ~table:"basket"
       ~delta:(Relation.make schema fresh)
   with
   | `Kept -> ()
   | `Refreshed -> Alcotest.fail "unrelated append must keep the tier as-is"
   | `Reprepare m -> Alcotest.failf "unrelated append forced re-prepare: %s" m);
  let want = Core.Runner.run_baseline catalog (parse sql) in
  let got, _ = Core.Runner.run_prepared p in
  check_bag "plan unaffected by unrelated append" want got

let suite =
  [
    Alcotest.test_case "relation append" `Quick test_relation_append;
    Alcotest.test_case "cstore delta blocks" `Quick test_cstore_delta_blocks;
    Alcotest.test_case "catalog stamp" `Quick test_catalog_stamp;
    Alcotest.test_case "append keeps indexes" `Quick
      test_catalog_append_keeps_indexes;
    Alcotest.test_case "delta supported" `Quick test_delta_supported;
    Alcotest.test_case "delta basket" `Quick test_delta_basket;
    Alcotest.test_case "delta revalidate" `Quick test_delta_revalidate;
    Alcotest.test_case "delta oversized" `Quick test_delta_oversized;
    Alcotest.test_case "delta fuzz" `Quick test_delta_fuzz;
    Alcotest.test_case "refresh prepared" `Quick test_refresh_prepared;
    Alcotest.test_case "refresh prepared unrelated" `Quick
      test_refresh_prepared_unrelated;
  ]
