(* Tests for the Appendix D equality/FD congruence inference: effective
   group columns and strengthened local conjuncts. *)
open Core
open Helpers

let t name f = Alcotest.test_case name `Quick f

let product_catalog () =
  let catalog = Relalg.Catalog.create () in
  Relalg.Catalog.add_table catalog ~keys:[ [ "id"; "attr" ] ]
    ~fds:[ ([ "id" ], [ "category" ]) ]
    ~nonneg:[ "val" ] "product"
    (rel [ "id"; "category"; "attr"; "val" ]
       (List.concat_map
          (fun id ->
            List.map
              (fun (a, v) -> [ iv id; sv (Printf.sprintf "c%d" (id mod 2)); sv a; iv v ])
              [ ("a", id mod 7); ("b", (id * 3) mod 7) ])
          (List.init 14 Fun.id)));
  catalog

let complex_sql = Workload.Queries.listing3 ~threshold:3

let analyze catalog left = Qspec.analyze catalog (Sqlfront.Parser.parse complex_sql) ~left_aliases:left

let names cols = List.map Qspec.col_name cols

let suite =
  [ t "S1.id is represented by S2.id on the {S2,T2} side" (fun () ->
        let spec = analyze (product_catalog ()) [ "S2"; "T2" ] in
        Alcotest.(check (list string)) "raw group cols" [ "S2.attr" ]
          (names spec.Qspec.left.Qspec.group_cols);
        Alcotest.(check (list string)) "effective group cols"
          [ "S2.attr"; "S2.id" ]
          (List.sort compare (names spec.Qspec.left.Qspec.group_cols_eff)));
    t "S2.category = T2.category is inferred as a local conjunct" (fun () ->
        let spec = analyze (product_catalog ()) [ "S2"; "T2" ] in
        let locals = List.map Sqlfront.Pretty.pred spec.Qspec.left.Qspec.local in
        Alcotest.(check bool)
          (Printf.sprintf "locals: %s" (String.concat "; " locals))
          true
          (List.exists
             (fun l -> contains l "category" && contains l "=")
             locals));
    t "the paper's finer reducer Q_S2 is derived" (fun () ->
        let catalog = product_catalog () in
        let spec = analyze catalog [ "S2"; "T2" ] in
        (match Apriori.safe catalog spec `Left with
         | Ok () -> ()
         | Error e -> Alcotest.failf "should be safe: %s" e);
        let sql = Sqlfront.Pretty.query (Apriori.reducer spec `Left) in
        Alcotest.(check bool) (Printf.sprintf "groups by id+attr: %s" sql) true
          (contains sql "GROUP BY S2.id, S2.attr"
          || contains sql "GROUP BY S2.attr, S2.id"));
    t "equivalence-strengthened analysis preserves results" (fun () ->
        let catalog = product_catalog () in
        check_sql_equiv catalog complex_sql);
    t "strengthened conjuncts only equate provably equal columns" (fun () ->
        (* without the FD id -> category the inference must not fire *)
        let catalog = Relalg.Catalog.create () in
        Relalg.Catalog.add_table catalog ~keys:[ [ "id"; "attr" ] ] "product"
          (rel [ "id"; "category"; "attr"; "val" ] []);
        let spec = analyze catalog [ "S2"; "T2" ] in
        let locals = List.map Sqlfront.Pretty.pred spec.Qspec.left.Qspec.local in
        Alcotest.(check bool)
          (Printf.sprintf "no category equality: %s" (String.concat "; " locals))
          false
          (List.exists (fun l -> contains l "category") locals));
    t "effective group cols do not leak across unrelated columns" (fun () ->
        let catalog = product_catalog () in
        let spec = analyze catalog [ "T1" ] in
        (* T1 reaches S1.attr through T1.attr = S1.attr; S1.id has no T1
           equivalent (only S2.id) *)
        Alcotest.(check (list string)) "eff on T1" [ "T1.attr" ]
          (names spec.Qspec.left.Qspec.group_cols_eff));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"full pipeline equals baseline on random complex instances" ~count:10
         (QCheck.int_range 0 999)
         (fun seed ->
           let catalog = Relalg.Catalog.create () in
           let rng = Workload.Prng.create seed in
           Relalg.Catalog.add_table catalog ~keys:[ [ "id"; "attr" ] ]
             ~fds:[ ([ "id" ], [ "category" ]) ]
             ~nonneg:[ "val" ] "product"
             (rel [ "id"; "category"; "attr"; "val" ]
                (List.concat_map
                   (fun id ->
                     List.filter_map
                       (fun a ->
                         if Workload.Prng.int rng 4 = 0 then None
                         else
                           Some
                             [ iv id;
                               sv (Printf.sprintf "c%d" (id mod 3));
                               sv a;
                               iv (Workload.Prng.int rng 10) ])
                       [ "a"; "b"; "c" ])
                   (List.init 20 Fun.id)));
           let q = Sqlfront.Parser.parse (Workload.Queries.listing3 ~threshold:(1 + Workload.Prng.int rng 6)) in
           let base = Runner.run_baseline catalog q in
           let opt, _ = Runner.run catalog q in
           Relalg.Relation.equal_bag base opt)) ]
