(** Zone maps: per-block min/max (under [Value.compare_total]'s total
    order) and null count, built in the same pass that loads the block.

    [may_match] is the data-skipping test: it answers "could any row in
    this block satisfy [row_value op constant]?" conservatively (false
    positives allowed, false negatives never).  SQL NULL semantics are
    baked in: comparisons against NULL are false at row level, so a NULL
    probe constant or an all-null block never matches, and null rows inside
    a block cannot force [may_match] true — min/max range only over the
    block's non-null values. *)

type t = { min_v : Value.t; max_v : Value.t; nulls : int; rows : int }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

val empty : t
val all_null : t -> bool

(** Fold one value into the zone map (functional; used by block builders). *)
val observe : t -> Value.t -> t

(** Union of two zone maps, for deriving table-level statistics. *)
val merge : t -> t -> t

val may_match : t -> cmp -> Value.t -> bool
val to_string : t -> string
