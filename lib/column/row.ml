type t = Value.t array

let make = Array.of_list
let append = Array.append
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal_total a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = Value.compare_total a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

(* SQL: a NULL in an equi-join key matches nothing, so key-based join
   operators (hash, merge) must drop such rows rather than let the
   hashtable's structural equality pair NULL with NULL. *)
let has_null t = Array.exists (fun v -> v = Value.Null) t

let to_string t =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string t)) ^ ")"

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
