type col = { qualifier : string option; name : string }

type t = col array

exception Unknown_column of string
exception Ambiguous_column of string

let col ?q name = { qualifier = q; name }

let col_to_string c =
  match c.qualifier with
  | None -> c.name
  | Some q -> q ^ "." ^ c.name

let of_cols cs = Array.of_list cs
let of_names ?q names = Array.of_list (List.map (fun n -> col ?q n) names)
let cols t = Array.to_list t
let arity = Array.length

let matches ~q ~name c =
  String.equal c.name name
  &&
  match q, c.qualifier with
  | None, _ -> true
  | Some q, Some cq -> String.equal q cq
  | Some _, None -> false

let index_of t ?q name =
  let hits = ref [] in
  Array.iteri (fun i c -> if matches ~q ~name c then hits := i :: !hits) t;
  match !hits with
  | [ i ] -> i
  | [] ->
    raise
      (Unknown_column (col_to_string { qualifier = q; name } ^ " in " ^ "(" ^ String.concat ", " (List.map col_to_string (cols t)) ^ ")"))
  | _ -> raise (Ambiguous_column (col_to_string { qualifier = q; name }))

let index_of_col t c = index_of t ?q:c.qualifier c.name

let mem t c =
  try
    ignore (index_of_col t c);
    true
  with
  | Unknown_column _ -> false
  | Ambiguous_column _ -> true

let nth t i = t.(i)
let append = Array.append
let requalify q t = Array.map (fun c -> { c with qualifier = Some q }) t
let unqualified t = Array.map (fun c -> { c with qualifier = None }) t
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)
let to_string t = "(" ^ String.concat ", " (List.map col_to_string (cols t)) ^ ")"

let equal_names a b =
  arity a = arity b
  && Array.for_all2 (fun c d -> String.equal c.name d.name) a b
