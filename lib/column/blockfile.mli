(** The [.sic] binary columnar file format (DESIGN.md §13).

    A file is a 4-byte magic ["SIC1"], the concatenated per-block encoded
    segments (each segment: one {!Encode.col} per column), a footer holding
    everything needed to plan without touching a block — schema, per-block
    lengths, shared dictionaries, per-block per-column zone maps, column
    kinds, optional whole-table Bloom filters, and the block directory —
    and a 12-byte trailer (footer offset + ["SICE"]).

    Loading therefore skips CSV parsing, dictionary interning, and
    zone-map building entirely: {!load_resident} decodes every block once
    (fast cold start), {!open_paged} reads only the trailer + footer and
    fetches blocks on demand through {!Blockcache} (bounded resident
    memory; encoded columns stay reachable for the direct kernels). *)

val save : string -> Cstore.t -> unit
(** Write a store (resident or paged) to [path], re-encoding each block. *)

type writer

val create_writer : ?block_size:int -> string -> Schema.t -> writer
(** Streaming writer: rows are buffered into blocks of [block_size]
    (default {!Cstore.default_block_size}) and flushed as they fill, so
    memory stays O(block) regardless of file size. *)

val add_row : writer -> Row.t -> unit

val close_writer : writer -> unit
(** Flush the tail block and write footer + trailer. *)

val save_rows : ?block_size:int -> string -> Schema.t -> Row.t Seq.t -> unit

val load_resident : string -> Cstore.t
(** Read and decode the whole file into a resident store. *)

val open_paged : string -> Cstore.t
(** Read only the footer; blocks are fetched (and decoded) on demand via
    the global {!Blockcache}.  The file descriptor stays open for the
    store's lifetime and is closed by a GC finalizer. *)
