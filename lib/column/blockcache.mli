(** Process-global, byte-weighted cache of [.sic] blocks.

    One {!Cache.Lru} instance is shared by every open paged file: decoded
    blocks weigh their in-RAM footprint, encoded column sets weigh their
    compressed size, and the two kinds compete for the same byte budget —
    so total block-resident memory stays under the cap no matter how many
    relations are open.

    Capacity comes from [--cache-mb] / [SI_CACHE_MB] (default
    {!default_capacity_mb}); changing it drops resident entries.

    Obs counters: [sic.cache_hits], [sic.cache_misses],
    [sic.cache_evictions]. *)

type entry = Enc of Encode.col array | Dec of Cstore.block

val file_id : unit -> int
(** Fresh identity for one opened file (cache keys never collide across
    opens, so re-saving a path can't serve stale blocks). *)

val find : int -> variant:char -> int -> entry option
(** [find id ~variant bi] looks up block [bi] of file [id]; [variant] is
    ['d'] (decoded) or ['e'] (encoded). *)

val store : int -> variant:char -> int -> weight:int -> entry -> unit

val default_capacity_mb : int

val capacity_bytes : unit -> int

val set_capacity_mb : int -> unit
(** Replace the cache with a fresh one of the given capacity (≥ 1 MB). *)

val stats : unit -> Cache.Lru.stats

val clear : unit -> unit
