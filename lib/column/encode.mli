(** Block compression codecs and compressed-execution kernels.

    One {!col} is the encoded form of a single column within one block:

    - int and dict-code vectors: frame-of-reference + bit-packing (widths up
      to 57 bits; wider ranges fall back to raw 64-bit), or run-length
      encoding when runs are cheaper — whichever costs fewer bytes;
    - null bitmaps: alternating run lengths (starting with the non-null
      run, which may be zero);
    - floats: raw 64-bit little-endian;
    - booleans: packed bits;
    - mixed-type blocks: boxed values (storage fallback).

    The module owns the {!cvec} decoded-vector type; {!Cstore} re-exports it
    so the execution layer keeps using [Cstore.C_int] etc.

    Direct kernels evaluate predicates and iterate run segments over the
    encoded form without materializing decoded arrays — the compressed
    execution path used by [Colscan]/[Colagg]. *)

type cvec =
  | C_int of int array * Bitset.t option
  | C_float of float array * Bitset.t option
  | C_dict of int array * Bitset.t option  (** codes into the column dictionary *)
  | C_bool of Bitset.t * Bitset.t option  (** (values, null bitmap) *)
  | C_mixed of Value.t array  (** fallback for blocks mixing value types *)

type nulls =
  | N_none
  | N_runs of int array
      (** alternating run lengths over row positions, first run non-null
          (possibly 0), then null, then non-null, … summing to the block
          length *)

type ints =
  | I_for of { base : int; width : int; packed : Bytes.t }
      (** frame-of-reference deltas, [width] bits each (≤ 57), LSB-first *)
  | I_rle of { values : int array; lengths : int array }
  | I_raw of Bytes.t  (** 8 bytes LE per value *)

type col =
  | E_int of { n : int; data : ints; nulls : nulls }
  | E_dict of { n : int; data : ints; nulls : nulls }
  | E_float of { n : int; data : Bytes.t; nulls : nulls }
  | E_bool of { n : int; bits : Bytes.t; nulls : nulls }
  | E_mixed of Value.t array

val of_cvec : len:int -> cvec -> col
(** Encode one block column.  Int-kind data picks the cheapest of
    FOR+bit-packing, RLE, and raw by byte cost. *)

val to_cvec : col -> cvec
(** Decode back to a typed vector.  Lossless up to null-bitmap
    normalization (an all-clear bitmap decodes to [None]). *)

val length : col -> int
val null_count : col -> int

val null_bitset : col -> Bitset.t option
(** Materializes the null bitmap from its run encoding ([None] if the
    column has no nulls). *)

val encoded_bytes : col -> int
(** Serialized size in bytes (cache weights, compression-ratio metrics). *)

(** {2 Serialization} *)

val write : Buffer.t -> col -> unit

val read : Bytes.t -> int -> col * int
(** [read buf pos] parses one column, returning it and the next offset. *)

(** Tagged single-value IO, shared with the [.sic] footer writer (zone-map
    bounds, dictionary-free constants). *)
val write_value : Buffer.t -> Value.t -> unit

val read_value : Bytes.t -> int -> Value.t * int

(** {2 Direct kernels} *)

val int_test : col -> Zmap.cmp -> int -> (int -> bool) option
(** Random-access row test [v cmp k] over an [E_int] column; null rows
    fail.  [None] when the column is not int-encoded. *)

val code_test : col -> [ `Eq | `Ne ] -> int option -> (int -> bool) option
(** Same over an [E_dict] column's codes.  The probe code is [None] when
    the probe string is absent from the dictionary (Eq matches nothing, Ne
    matches every non-null row). *)

val sel_fill_int : col -> Zmap.cmp -> int -> int array -> int option
(** Sequential selection fill over an [E_int] column: writes the matching
    non-null row indices (ascending) into [sel], returns the count.
    Run-length segments are tested once per run. *)

val sel_fill_code : col -> [ `Eq | `Ne ] -> int option -> int array -> int option
(** Same over an [E_dict] column's codes. *)

val iter_int_segments : col -> (int -> int -> bool -> unit) -> bool
(** [iter_int_segments c f] calls [f value run_length is_null] over an
    int-encoded column ([E_int]/[E_dict]) in row order; RLE data yields
    whole runs, FOR/raw data yields per-row segments (nulls still
    batched).  Returns [false] (no calls) for other encodings. *)

val iter_floats_nonnull : col -> (float -> unit) -> bool
(** Iterate non-null float values in row order; [false] for non-float
    columns. *)
