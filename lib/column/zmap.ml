type t = { min_v : Value.t; max_v : Value.t; nulls : int; rows : int }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let empty = { min_v = Value.Null; max_v = Value.Null; nulls = 0; rows = 0 }

let all_null t = t.nulls = t.rows

(* NaN is excluded from the bounds and counted with the nulls ("null-ish"):
   it compares false against everything, so including it in min/max would
   poison the interval and let [may_match] refute blocks that do contain
   matching rows. *)
let observe t v =
  if Value.is_null v || Value.is_nan v then
    { t with nulls = t.nulls + 1; rows = t.rows + 1 }
  else
    let min_v =
      if Value.is_null t.min_v || Value.compare_total v t.min_v < 0 then v
      else t.min_v
    and max_v =
      if Value.is_null t.max_v || Value.compare_total v t.max_v > 0 then v
      else t.max_v
    in
    { min_v; max_v; nulls = t.nulls; rows = t.rows + 1 }

(* Union of two zone maps (for table-level stats). *)
let merge a b =
  if a.rows = 0 then b
  else if b.rows = 0 then a
  else
    let pick cmp x y =
      if Value.is_null x then y
      else if Value.is_null y then x
      else if cmp (Value.compare_total x y) 0 then x
      else y
    in
    {
      min_v = pick ( < ) a.min_v b.min_v;
      max_v = pick ( > ) a.max_v b.max_v;
      nulls = a.nulls + b.nulls;
      rows = a.rows + b.rows;
    }

(* Could any row of the block satisfy [v_row op v]?  Row-level comparison
   semantics: any comparison against NULL is false, non-null pairs compare
   with [Value.compare_total] (numerics cross-representation, other type
   mixes by rank) — exactly what [Compile.value_cmp] evaluates per row, so
   interval reasoning over the block's min/max of *stored* values is sound:
   a NULL or NaN probe constant, or an all-null(-ish) block, fails every
   comparison and the whole block can be skipped.  Stored NaNs are kept out
   of the bounds by [observe]/the cstore builder, so the interval only
   describes values a comparison could actually accept. *)
let may_match t op v =
  if Value.is_null v || Value.is_nan v || all_null t then false
  else
    let cmin = Value.compare_total t.min_v v in
    let cmax = Value.compare_total t.max_v v in
    match op with
    | Eq -> cmin <= 0 && cmax >= 0
    | Ne ->
      (* only an all-equal block [min = v = max] has no v' <> v *)
      not (cmin = 0 && cmax = 0)
    | Lt -> cmin < 0
    | Le -> cmin <= 0
    | Gt -> cmax > 0
    | Ge -> cmax >= 0

let to_string t =
  Printf.sprintf "[%s, %s] nulls=%d/%d"
    (Value.to_string t.min_v) (Value.to_string t.max_v) t.nulls t.rows
