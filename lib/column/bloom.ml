(* One filter is an array of 63-bit words; a key selects one word (its
   cache line) and sets [k_probes] bits inside it.  Splitting the word
   index and the in-word bit pattern from independently mixed hashes keeps
   the per-word load uniform even though Hashtbl.hash only fills the low
   30 bits. *)

type t = {
  words : int array;
  mask : int;  (* word count - 1 (power of two) *)
  mutable count : int;
  mutable zmap : Zmap.t;  (* observed range of added values *)
}

let test_force_bits = ref None

let k_probes = 4
let default_bits_per_key = 10

(* splitmix-style finalizers; constants truncated to OCaml's 63-bit ints
   (multiplication wraps, which is all a mixer needs). *)
let mix1 h =
  let h = (h lxor (h lsr 30)) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 27)) * 0x27D4EB2F165667C5 in
  (h lxor (h lsr 31)) land max_int

let mix2 h =
  let h = (h lxor (h lsr 33)) * 0x165667B19E3779F9 in
  let h = (h lxor (h lsr 29)) * 0x1D8E4E27C47D124F in
  (h lxor (h lsr 32)) land max_int

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(bits_per_key = default_bits_per_key) ~expected () =
  let bits =
    match !test_force_bits with
    | Some b -> max 63 b
    | None -> max 192 (bits_per_key * max 1 expected)
  in
  let nwords = pow2_at_least ((bits + 62) / 63) 1 in
  { words = Array.make nwords 0; mask = nwords - 1; count = 0; zmap = Zmap.empty }

(* The in-word pattern: [k_probes] bit positions in 0..62 cut from
   independent 6-bit slices of the second hash. *)
let word_pattern h2 =
  let m = ref 0 in
  for j = 0 to k_probes - 1 do
    m := !m lor (1 lsl ((h2 lsr (6 * j)) mod 63))
  done;
  !m

let add t v =
  match v with
  | Value.Null -> ()
  | _ ->
    let h = Value.hash v in
    let wi = mix1 h land t.mask in
    t.words.(wi) <- t.words.(wi) lor word_pattern (mix2 h);
    t.count <- t.count + 1;
    t.zmap <- Zmap.observe t.zmap v

let mem t v =
  match v with
  | Value.Null -> false
  | _ ->
    t.count > 0
    &&
    let h = Value.hash v in
    let wi = mix1 h land t.mask in
    let pat = word_pattern (mix2 h) in
    t.words.(wi) land pat = pat

let count t = t.count
let range t = t.zmap

(* Overlap of the filter's observed [min, max] with the block's: disjoint
   ranges prove no block value was ever added (equality can't hold), while
   NaN-only filters keep [zmap] rangeless and conservatively pass.  An
   all-null(-ish) block can't match because [mem Null] is false and NaN
   compares false to everything. *)
let range_may_match t (z : Zmap.t) =
  t.count > 0
  &&
  let f = t.zmap in
  if Value.is_null f.Zmap.min_v || Value.is_null f.Zmap.max_v then true
  else if Value.is_null z.Zmap.min_v || Value.is_null z.Zmap.max_v then false
  else
    Value.compare_total f.Zmap.min_v z.Zmap.max_v <= 0
    && Value.compare_total z.Zmap.min_v f.Zmap.max_v <= 0

let nbits t = 63 * Array.length t.words
let approx_bytes t = 8 * (Array.length t.words + 4)

let words t = t.words

let restore ~words ~count ~zmap =
  { words; mask = Array.length words - 1; count; zmap }
