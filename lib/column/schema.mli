(** Relation schemas: ordered lists of (possibly qualified) column names.

    A column is identified by an optional relation qualifier and a name,
    e.g. [L.x] or [item].  Name resolution mirrors SQL: an unqualified
    reference matches any column with that name (and is ambiguous if several
    match); a qualified reference matches only columns carrying that
    qualifier. *)

type col = { qualifier : string option; name : string }

type t

exception Unknown_column of string
exception Ambiguous_column of string

val col : ?q:string -> string -> col
val col_to_string : col -> string

val of_cols : col list -> t
val of_names : ?q:string -> string list -> t
val cols : t -> col list
val arity : t -> int

(** [index_of t ~q name] resolves a column reference to its position. *)
val index_of : t -> ?q:string -> string -> int

val index_of_col : t -> col -> int
val mem : t -> col -> bool
val nth : t -> int -> col

(** Concatenate two schemas (for join output). *)
val append : t -> t -> t

(** Re-qualify every column with the given alias, as SQL does for
    [FROM tbl AS alias]. *)
val requalify : string -> t -> t

(** Drop qualifiers (e.g. for a subquery result exported under one alias). *)
val unqualified : t -> t

val project : t -> int list -> t
val to_string : t -> string
val equal_names : t -> t -> bool
