type t = { bits : Bytes.t; len : int }

let create len = { bits = Bytes.make ((len + 7) lsr 3) '\000'; len }
let length t = t.len

let set t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl bit)))

let get t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl bit) <> 0

let count t =
  let c = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr c
  done;
  !c

let approx_bytes t = 16 + Bytes.length t.bits
