(* Block compression codecs and compressed-execution kernels.

   Encoding choices are made per block column from the values actually
   present, mirroring how Cstore picks a physical type per block:

   - int / dict-code vectors: one pass computes min, max, and run count;
     frame-of-reference + bit-packing, RLE, and raw 64-bit are costed in
     bytes and the cheapest wins.  FOR widths stop at 57 bits so any
     packed value spans at most one aligned 64-bit window read
     (width + intra-byte shift ≤ 64); wider ranges (or a max-min that
     overflows the 63-bit native int) go raw.
   - null bitmaps: alternating run lengths starting with the non-null run
     (sparse nulls — the common case — collapse to a handful of ints).
   - floats raw LE, bools packed bits, mixed blocks boxed values.

   Direct kernels (int_test / sel_fill_* / iter_int_segments) evaluate over
   the encoded form: FOR gives O(1) random access, RLE gives one test per
   run.  They are the "operate on compressed data" half of the tentpole. *)

type cvec =
  | C_int of int array * Bitset.t option
  | C_float of float array * Bitset.t option
  | C_dict of int array * Bitset.t option
  | C_bool of Bitset.t * Bitset.t option
  | C_mixed of Value.t array

type nulls = N_none | N_runs of int array

type ints =
  | I_for of { base : int; width : int; packed : Bytes.t }
  | I_rle of { values : int array; lengths : int array }
  | I_raw of Bytes.t

type col =
  | E_int of { n : int; data : ints; nulls : nulls }
  | E_dict of { n : int; data : ints; nulls : nulls }
  | E_float of { n : int; data : Bytes.t; nulls : nulls }
  | E_bool of { n : int; bits : Bytes.t; nulls : nulls }
  | E_mixed of Value.t array

(* ---- null runs ---- *)

let runs_of_bitset n bm =
  if Bitset.count bm = 0 then N_none
  else begin
    let runs = ref [] and run = ref 0 and cur = ref false in
    for i = 0 to n - 1 do
      let b = Bitset.get bm i in
      if b = !cur then incr run
      else begin
        runs := !run :: !runs;
        cur := b;
        run := 1
      end
    done;
    runs := !run :: !runs;
    N_runs (Array.of_list (List.rev !runs))
  end

let nulls_of_bitmap n = function
  | None -> N_none
  | Some bm -> runs_of_bitset n bm

let bitset_of_runs n runs =
  let bm = Bitset.create n in
  let pos = ref 0 and isnull = ref false in
  Array.iter
    (fun len ->
      if !isnull then
        for i = !pos to !pos + len - 1 do
          Bitset.set bm i
        done;
      pos := !pos + len;
      isnull := not !isnull)
    runs;
  bm

let null_bitset = function
  | E_int { n; nulls = N_runs r; _ }
  | E_dict { n; nulls = N_runs r; _ }
  | E_float { n; nulls = N_runs r; _ }
  | E_bool { n; nulls = N_runs r; _ } ->
    Some (bitset_of_runs n r)
  | E_mixed a ->
    let n = Array.length a in
    let bm = Bitset.create n in
    let any = ref false in
    Array.iteri
      (fun i v ->
        if Value.is_null v then begin
          Bitset.set bm i;
          any := true
        end)
      a;
    if !any then Some bm else None
  | _ -> None

let null_count_of = function
  | N_none -> 0
  | N_runs runs ->
    let c = ref 0 and isnull = ref false in
    Array.iter
      (fun len ->
        if !isnull then c := !c + len;
        isnull := not !isnull)
      runs;
    !c

let null_count = function
  | E_int { nulls; _ } | E_dict { nulls; _ } | E_float { nulls; _ }
  | E_bool { nulls; _ } ->
    null_count_of nulls
  | E_mixed a ->
    Array.fold_left (fun acc v -> if Value.is_null v then acc + 1 else acc) 0 a

let length = function
  | E_int { n; _ } | E_dict { n; _ } | E_float { n; _ } | E_bool { n; _ } -> n
  | E_mixed a -> Array.length a

(* ---- int codecs ---- *)

let bits_needed r =
  let w = ref 0 and x = ref r in
  while !x > 0 do
    incr w;
    x := !x lsr 1
  done;
  !w

(* Packed buffers carry 8 slack bytes so the 64-bit window covering the
   last value never reads past the end. *)
let pack_for base width a =
  let n = Array.length a in
  let nbytes = (((n * width) + 7) / 8) + 8 in
  let b = Bytes.make nbytes '\000' in
  if width > 0 then
    for i = 0 to n - 1 do
      let d = a.(i) - base in
      let bitpos = i * width in
      let byte = bitpos lsr 3 and shift = bitpos land 7 in
      let cur = Bytes.get_int64_le b byte in
      Bytes.set_int64_le b byte
        (Int64.logor cur (Int64.shift_left (Int64.of_int d) shift))
    done;
  b

let get_for base width packed i =
  if width = 0 then base
  else begin
    let bitpos = i * width in
    let byte = bitpos lsr 3 and shift = bitpos land 7 in
    let w = Bytes.get_int64_le packed byte in
    let mask = Int64.sub (Int64.shift_left 1L width) 1L in
    base + Int64.to_int (Int64.logand (Int64.shift_right_logical w shift) mask)
  end

let max_for_width = 57

let encode_ints a =
  let n = Array.length a in
  if n = 0 then I_for { base = 0; width = 0; packed = Bytes.create 0 }
  else begin
    let mn = ref a.(0) and mx = ref a.(0) and nruns = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) < !mn then mn := a.(i);
      if a.(i) > !mx then mx := a.(i);
      if a.(i) <> a.(i - 1) then incr nruns
    done;
    let range = !mx - !mn in
    let for_cost =
      if range < 0 then max_int (* max-min overflowed the native int *)
      else
        let w = bits_needed range in
        if w > max_for_width then max_int else 17 + (((n * w) + 7) / 8) + 8
    in
    let rle_cost = 4 + (12 * !nruns) in
    let raw_cost = 8 * n in
    if for_cost <= rle_cost && for_cost <= raw_cost then
      let w = bits_needed range in
      I_for { base = !mn; width = w; packed = pack_for !mn w a }
    else if rle_cost <= raw_cost then begin
      let values = Array.make !nruns 0 and lengths = Array.make !nruns 0 in
      let k = ref (-1) in
      for i = 0 to n - 1 do
        if i = 0 || a.(i) <> a.(i - 1) then begin
          incr k;
          values.(!k) <- a.(i);
          lengths.(!k) <- 1
        end
        else lengths.(!k) <- lengths.(!k) + 1
      done;
      I_rle { values; lengths }
    end
    else begin
      let b = Bytes.create (8 * n) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (8 * i) (Int64.of_int a.(i))
      done;
      I_raw b
    end
  end

let decode_ints n data =
  match data with
  | I_for { base; width; packed } -> Array.init n (get_for base width packed)
  | I_rle { values; lengths } ->
    let a = Array.make n 0 in
    let pos = ref 0 in
    Array.iteri
      (fun k v ->
        for i = !pos to !pos + lengths.(k) - 1 do
          a.(i) <- v
        done;
        pos := !pos + lengths.(k))
      values;
    a
  | I_raw b -> Array.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (8 * i)))

(* Random access over any int encoding (RLE via prefix-sum binary search). *)
let int_get data =
  match data with
  | I_for { base; width; packed } -> fun i -> get_for base width packed i
  | I_raw b -> fun i -> Int64.to_int (Bytes.get_int64_le b (8 * i))
  | I_rle { values; lengths } ->
    let starts = Array.make (Array.length lengths + 1) 0 in
    Array.iteri (fun k l -> starts.(k + 1) <- starts.(k) + l) lengths;
    fun i ->
      let lo = ref 0 and hi = ref (Array.length values - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if starts.(mid) <= i then lo := mid else hi := mid - 1
      done;
      values.(!lo)

(* ---- encode / decode ---- *)

let of_cvec ~len vec =
  match vec with
  | C_int (a, bm) -> E_int { n = len; data = encode_ints a; nulls = nulls_of_bitmap len bm }
  | C_dict (a, bm) -> E_dict { n = len; data = encode_ints a; nulls = nulls_of_bitmap len bm }
  | C_float (a, bm) ->
    let b = Bytes.create (8 * len) in
    for i = 0 to len - 1 do
      Bytes.set_int64_le b (8 * i) (Int64.bits_of_float a.(i))
    done;
    E_float { n = len; data = b; nulls = nulls_of_bitmap len bm }
  | C_bool (v, bm) ->
    let b = Bytes.make ((len + 7) / 8) '\000' in
    for i = 0 to len - 1 do
      if Bitset.get v i then
        Bytes.set b (i lsr 3)
          (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))
    done;
    E_bool { n = len; bits = b; nulls = nulls_of_bitmap len bm }
  | C_mixed a -> E_mixed a

let bitmap_of_nulls n = function
  | N_none -> None
  | N_runs runs -> Some (bitset_of_runs n runs)

let to_cvec = function
  | E_int { n; data; nulls } -> C_int (decode_ints n data, bitmap_of_nulls n nulls)
  | E_dict { n; data; nulls } -> C_dict (decode_ints n data, bitmap_of_nulls n nulls)
  | E_float { n; data; nulls } ->
    let a = Array.init n (fun i -> Int64.float_of_bits (Bytes.get_int64_le data (8 * i))) in
    C_float (a, bitmap_of_nulls n nulls)
  | E_bool { n; bits; nulls } ->
    let v = Bitset.create n in
    for i = 0 to n - 1 do
      if Char.code (Bytes.get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0 then
        Bitset.set v i
    done;
    C_bool (v, bitmap_of_nulls n nulls)
  | E_mixed a -> C_mixed a

(* ---- footprint ---- *)

let ints_bytes = function
  | I_for { packed; _ } -> 17 + Bytes.length packed
  | I_rle { values; _ } -> 4 + (12 * Array.length values)
  | I_raw b -> Bytes.length b

let nulls_bytes = function N_none -> 1 | N_runs r -> 5 + (4 * Array.length r)

let encoded_bytes = function
  | E_int { data; nulls; _ } | E_dict { data; nulls; _ } ->
    5 + ints_bytes data + nulls_bytes nulls
  | E_float { data; nulls; _ } -> 5 + Bytes.length data + nulls_bytes nulls
  | E_bool { bits; nulls; _ } -> 5 + Bytes.length bits + nulls_bytes nulls
  | E_mixed a ->
    Array.fold_left (fun acc v -> acc + 1 + Value.approx_bytes v) 5 a

(* ---- serialization ----

   Fixed-width little-endian throughout; see DESIGN.md §13 for the layout.
   u32 counts are read back unsigned. *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let w_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

type cursor = { buf : Bytes.t; mutable pos : int }

let r_u8 c =
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let r_i64 c =
  let v = Int64.to_int (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_bytes c len =
  let b = Bytes.sub c.buf c.pos len in
  c.pos <- c.pos + len;
  b

let w_nulls buf = function
  | N_none -> w_u8 buf 0
  | N_runs runs ->
    w_u8 buf 1;
    w_u32 buf (Array.length runs);
    Array.iter (w_u32 buf) runs

let r_nulls c =
  match r_u8 c with
  | 0 -> N_none
  | 1 ->
    let k = r_u32 c in
    N_runs (Array.init k (fun _ -> r_u32 c))
  | t -> failwith (Printf.sprintf "Encode.read: bad null tag %d" t)

let w_ints buf = function
  | I_for { base; width; packed } ->
    w_u8 buf 0;
    w_i64 buf base;
    w_u8 buf width;
    w_u32 buf (Bytes.length packed);
    Buffer.add_bytes buf packed
  | I_rle { values; lengths } ->
    w_u8 buf 1;
    w_u32 buf (Array.length values);
    Array.iteri
      (fun k v ->
        w_i64 buf v;
        w_u32 buf lengths.(k))
      values
  | I_raw b ->
    w_u8 buf 2;
    w_u32 buf (Bytes.length b);
    Buffer.add_bytes buf b

let r_ints c =
  match r_u8 c with
  | 0 ->
    let base = r_i64 c in
    let width = r_u8 c in
    let nbytes = r_u32 c in
    I_for { base; width; packed = r_bytes c nbytes }
  | 1 ->
    let k = r_u32 c in
    let values = Array.make k 0 and lengths = Array.make k 0 in
    for i = 0 to k - 1 do
      values.(i) <- r_i64 c;
      lengths.(i) <- r_u32 c
    done;
    I_rle { values; lengths }
  | 2 ->
    let nbytes = r_u32 c in
    I_raw (r_bytes c nbytes)
  | t -> failwith (Printf.sprintf "Encode.read: bad ints tag %d" t)

let w_value buf = function
  | Value.Null -> w_u8 buf 0
  | Value.Int x ->
    w_u8 buf 1;
    w_i64 buf x
  | Value.Float f ->
    w_u8 buf 2;
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    w_u8 buf 3;
    w_u32 buf (String.length s);
    Buffer.add_string buf s
  | Value.Bool b ->
    w_u8 buf 4;
    w_u8 buf (if b then 1 else 0)

let r_value c =
  match r_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (r_i64 c)
  | 2 ->
    let bits = Bytes.get_int64_le c.buf c.pos in
    c.pos <- c.pos + 8;
    Value.Float (Int64.float_of_bits bits)
  | 3 ->
    let len = r_u32 c in
    let s = Bytes.sub_string c.buf c.pos len in
    c.pos <- c.pos + len;
    Value.Str s
  | 4 -> Value.Bool (r_u8 c <> 0)
  | t -> failwith (Printf.sprintf "Encode.read: bad value tag %d" t)

let write buf col =
  match col with
  | E_int { n; data; nulls } ->
    w_u8 buf 0;
    w_u32 buf n;
    w_nulls buf nulls;
    w_ints buf data
  | E_dict { n; data; nulls } ->
    w_u8 buf 1;
    w_u32 buf n;
    w_nulls buf nulls;
    w_ints buf data
  | E_float { n; data; nulls } ->
    w_u8 buf 2;
    w_u32 buf n;
    w_nulls buf nulls;
    Buffer.add_bytes buf data
  | E_bool { n; bits; nulls } ->
    w_u8 buf 3;
    w_u32 buf n;
    w_nulls buf nulls;
    Buffer.add_bytes buf bits
  | E_mixed a ->
    w_u8 buf 4;
    w_u32 buf (Array.length a);
    Array.iter (w_value buf) a

let read buf pos =
  let c = { buf; pos } in
  let col =
    match r_u8 c with
    | 0 ->
      let n = r_u32 c in
      let nulls = r_nulls c in
      E_int { n; data = r_ints c; nulls }
    | 1 ->
      let n = r_u32 c in
      let nulls = r_nulls c in
      E_dict { n; data = r_ints c; nulls }
    | 2 ->
      let n = r_u32 c in
      let nulls = r_nulls c in
      E_float { n; data = r_bytes c (8 * n); nulls }
    | 3 ->
      let n = r_u32 c in
      let nulls = r_nulls c in
      E_bool { n; bits = r_bytes c ((n + 7) / 8); nulls }
    | 4 ->
      let n = r_u32 c in
      E_mixed (Array.init n (fun _ -> r_value c))
    | t -> failwith (Printf.sprintf "Encode.read: bad column tag %d" t)
  in
  (col, c.pos)

(* ---- direct kernels ---- *)

let cmp_int (cmp : Zmap.cmp) v k =
  match cmp with
  | Zmap.Eq -> v = k
  | Zmap.Ne -> v <> k
  | Zmap.Lt -> v < k
  | Zmap.Le -> v <= k
  | Zmap.Gt -> v > k
  | Zmap.Ge -> v >= k

let null_test n nulls =
  match nulls with
  | N_none -> fun _ -> false
  | N_runs runs ->
    let bm = bitset_of_runs n runs in
    fun i -> Bitset.get bm i

let int_test col cmp k =
  match col with
  | E_int { n; data; nulls } ->
    let get = int_get data in
    let isnull = null_test n nulls in
    Some (fun i -> (not (isnull i)) && cmp_int cmp (get i) k)
  | _ -> None

let code_test col op code =
  match col with
  | E_dict { n; data; nulls } ->
    let get = int_get data in
    let isnull = null_test n nulls in
    (match op, code with
     | `Eq, None -> Some (fun _ -> false)
     | `Ne, None -> Some (fun i -> not (isnull i))
     | `Eq, Some c -> Some (fun i -> (not (isnull i)) && get i = c)
     | `Ne, Some c -> Some (fun i -> (not (isnull i)) && get i <> c))
  | _ -> None

(* Walk null runs; [f is_null run_len] in row order, zero-length runs
   suppressed. *)
let iter_null_runs n nulls f =
  match nulls with
  | N_none -> if n > 0 then f false n
  | N_runs runs ->
    let isnull = ref false in
    Array.iter
      (fun len ->
        if len > 0 then f !isnull len;
        isnull := not !isnull)
      runs

let iter_int_segments col f =
  match col with
  | E_int { n; data; nulls } | E_dict { n; data; nulls } ->
    (match data with
     | I_rle { values; lengths } ->
       (* Two-pointer merge of data runs and null runs. *)
       let nd = Array.length values in
       let di = ref 0 and dleft = ref (if nd > 0 then lengths.(0) else 0) in
       let emit isnull len =
         let left = ref len in
         while !left > 0 do
           while !dleft = 0 && !di < nd - 1 do
             incr di;
             dleft := lengths.(!di)
           done;
           let seg = min !left !dleft in
           f values.(!di) seg isnull;
           dleft := !dleft - seg;
           left := !left - seg
         done
       in
       iter_null_runs n nulls emit
     | I_for _ | I_raw _ ->
       let get = int_get data in
       let pos = ref 0 in
       iter_null_runs n nulls (fun isnull len ->
           if isnull then f 0 len true
           else
             for i = !pos to !pos + len - 1 do
               f (get i) 1 false
             done;
           pos := !pos + len));
    true
  | _ -> false

let sel_fill_segments col test sel =
  let cnt = ref 0 and pos = ref 0 in
  let ok =
    iter_int_segments col (fun v len isnull ->
        if (not isnull) && test v then
          for i = !pos to !pos + len - 1 do
            sel.(!cnt) <- i;
            incr cnt
          done;
        pos := !pos + len)
  in
  if ok then Some !cnt else None

let sel_fill_int col cmp k sel =
  match col with
  | E_int _ -> sel_fill_segments col (fun v -> cmp_int cmp v k) sel
  | _ -> None

let sel_fill_code col op code sel =
  match col with
  | E_dict _ ->
    let test =
      match op, code with
      | `Eq, None -> fun _ -> false
      | `Ne, None -> fun _ -> true
      | `Eq, Some c -> fun v -> v = c
      | `Ne, Some c -> fun v -> v <> c
    in
    sel_fill_segments col test sel
  | _ -> None

let iter_floats_nonnull col f =
  match col with
  | E_float { n; data; nulls } ->
    let isnull = null_test n nulls in
    for i = 0 to n - 1 do
      if not (isnull i) then f (Int64.float_of_bits (Bytes.get_int64_le data (8 * i)))
    done;
    true
  | _ -> false

let write_value buf v = w_value buf v

let read_value buf pos =
  let c = { buf; pos } in
  let v = r_value c in
  (v, c.pos)
