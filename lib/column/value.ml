type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

(* NaN behaves like NULL in SQL predicate comparisons: any comparison
   involving it is false.  (The total order still places it below other
   floats, so sorting and MIN/MAX remain deterministic.) *)
let is_nan = function Float f -> Float.is_nan f | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare_total a b =
  match a, b with
  | Int x, Int y -> compare x y
  | Float x, Float y -> compare x y
  | Int x, Float y -> compare (float_of_int x) y
  | Float x, Int y -> compare x (float_of_int y)
  | Str x, Str y -> compare x y
  | Bool x, Bool y -> compare x y
  | Null, Null -> 0
  | _ -> compare (rank a) (rank b)

let equal_total a b = compare_total a b = 0

let compare_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | _ -> Some (compare_total a b)

let compare_sql_code a b =
  match a, b with
  | Null, _ | _, Null -> min_int
  | _ -> if is_nan a || is_nan b then min_int else compare_total a b

let arith name fi ff a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fi x y)
  | Float x, Float y -> Float (ff x y)
  | Int x, Float y -> Float (ff (float_of_int x) y)
  | Float x, Int y -> Float (ff x (float_of_int y))
  | _ -> type_error "%s: non-numeric operands" name

(* Int addition that promotes to float instead of wrapping: two same-sign
   operands whose sum flips sign overflowed the 63-bit range.  SUM/AVG fold
   through this, so large sums degrade to float precision rather than
   silently wrapping — and the vectorized kernels replay the same rule
   (Colprobe.step_sum_int) to stay bit-identical. *)
let add a b =
  match a, b with
  | Int x, Int y ->
    let s = x + y in
    if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then
      Float (float_of_int x +. float_of_int y)
    else Int s
  | _ -> arith "add" ( + ) ( +. ) a b
let sub = arith "sub" ( - ) ( -. )
let mul = arith "mul" ( * ) ( *. )

let div a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> type_error "div: division by zero"
  | Int x, Int y -> Int (x / y)
  | _ ->
    let fa =
      (match a with
       | Int x -> float_of_int x
       | Float x -> x
       | _ -> type_error "div: non-numeric operands")
    and fb =
      (match b with
       | Int y -> float_of_int y
       | Float y -> y
       | _ -> type_error "div: non-numeric operands")
    in
    Float (fa /. fb)

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> type_error "neg: non-numeric operand %s" (match v with Str s -> s | _ -> "bool")

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Null -> type_error "to_float: null"
  | Str s -> type_error "to_float: string %S" s
  | Bool _ -> type_error "to_float: bool"

let to_bool = function
  | Bool b -> b
  | Null -> false
  | v -> type_error "to_bool: %s" (match v with Int _ -> "int" | Float _ -> "float" | _ -> "string")

let of_int x = Int x
let of_float x = Float x
let of_string s = Str s
let of_bool b = Bool b

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%g" x
  | Str s -> s
  | Bool b -> if b then "true" else "false"

let pp fmt v = Format.pp_print_string fmt (to_string v)

let of_csv_field s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None ->
         (match String.lowercase_ascii s with
          | "true" -> Bool true
          | "false" -> Bool false
          | _ -> Str s))

let approx_bytes = function
  | Null -> 8
  | Int _ -> 8
  | Float _ -> 8
  | Bool _ -> 1
  | Str s -> 16 + String.length s

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Float x -> if Float.is_integer x then Hashtbl.hash (int_of_float x) else Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
