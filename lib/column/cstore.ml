(* Chunked columnar storage: a relation is split into fixed-size blocks;
   each block stores every column as a typed vector (unboxed where the
   block's values allow) plus a zone map built in the same pass.

   A column's physical type is chosen per block from the values actually
   present, so conversion is lossless: an [Int]-only block becomes an
   [int array], a block that mixes types falls back to boxed values.
   Strings are dictionary-coded against a per-column dictionary shared by
   all blocks (codes are first-appearance-ordered; ordered tests use the
   zone map's min/max strings).

   Blocks come from one of two sources.  [Resident] keeps them decoded in
   RAM (the [of_rows] build path).  [Paged] fetches them on demand from a
   compressed file through the block cache; zone maps, block lengths, and
   column kinds stay resident so skipping decisions cost no I/O, and the
   encoded columns are reachable without decoding for the direct
   (compressed-execution) kernels. *)

type cvec = Encode.cvec =
  | C_int of int array * Bitset.t option
  | C_float of float array * Bitset.t option
  | C_dict of int array * Bitset.t option
  | C_bool of Bitset.t * Bitset.t option
  | C_mixed of Value.t array

type block = { length : int; cols : cvec array; zmaps : Zmap.t array }

type kind = K_int | K_float | K_dict | K_bool | K_mixed | K_varied | K_empty

type pager = {
  p_lengths : int array;
  p_zmaps : Zmap.t array array;
  p_kinds : kind array;
  p_blooms : Bloom.t option array;
  p_bytes : int;  (* compressed payload size *)
  p_fetch : int -> block;
  p_enc : int -> Encode.col array;
}

type source = Resident of block array | Paged of pager

(* [delta] holds blocks appended after the store was built (the streaming
   append path).  They are ordinary decoded blocks — own zone maps, codes
   interned into the shared per-column dicts (codes are first-appearance
   ordered, so growing a dict never invalidates older blocks) — logically
   concatenated after the base source, which itself may be resident or
   paged.  Appends are O(delta); fragmented tails are coalesced lazily. *)
type t = {
  schema : Schema.t;
  dicts : Dict.t option array;
  source : source;
  delta : block array;
  length : int;
}

(* 4096 rows/block: large enough that zone-map tests and per-block closure
   setup amortize to noise, small enough that selective predicates over
   clustered data skip most of the table (see DESIGN.md §7). *)
let default_block_size = 4096

let schema t = t.schema
let length t = t.length

let base_nblocks t =
  match t.source with
  | Resident blocks -> Array.length blocks
  | Paged p -> Array.length p.p_lengths

let nblocks t = base_nblocks t + Array.length t.delta

let delta_rows t =
  Array.fold_left (fun acc (b : block) -> acc + b.length) 0 t.delta

let block t i =
  let nb = base_nblocks t in
  if i >= nb then t.delta.(i - nb)
  else match t.source with Resident blocks -> blocks.(i) | Paged p -> p.p_fetch i

let dict t ci = t.dicts.(ci)
let is_paged t = match t.source with Paged _ -> true | Resident _ -> false

let block_length t i =
  let nb = base_nblocks t in
  if i >= nb then t.delta.(i - nb).length
  else
    match t.source with
    | Resident blocks -> blocks.(i).length
    | Paged p -> p.p_lengths.(i)

let block_zmaps t i =
  let nb = base_nblocks t in
  if i >= nb then t.delta.(i - nb).zmaps
  else
    match t.source with
    | Resident blocks -> blocks.(i).zmaps
    | Paged p -> p.p_zmaps.(i)

(* Delta blocks are decoded, so they have no encoded form: callers fall
   back to the decoded path for them, exactly as for resident blocks. *)
let block_enc t i =
  if i >= base_nblocks t then None
  else match t.source with Resident _ -> None | Paged p -> Some (p.p_enc i)

let kind_of_cvec = function
  | C_int _ -> K_int
  | C_float _ -> K_float
  | C_dict _ -> K_dict
  | C_bool _ -> K_bool
  | C_mixed _ -> K_mixed

let kind_merge a b =
  match (a, b) with
  | K_empty, k | k, K_empty -> k
  | a, b -> if a = b then a else K_varied

let col_kind t ci =
  let base =
    match t.source with
    | Paged p -> p.p_kinds.(ci)
    | Resident blocks ->
      if Array.length blocks = 0 then K_empty
      else begin
        let k = kind_of_cvec blocks.(0).cols.(ci) in
        let uniform = ref true in
        for bi = 1 to Array.length blocks - 1 do
          if kind_of_cvec blocks.(bi).cols.(ci) <> k then uniform := false
        done;
        if !uniform then k else K_varied
      end
  in
  Array.fold_left
    (fun acc (b : block) -> kind_merge acc (kind_of_cvec b.cols.(ci)))
    base t.delta

let with_schema schema t = { t with schema }

(* ---- building ---- *)

(* Build one column vector + zone map over rows.(lo .. lo+len-1).(ci). *)
let build_col dicts ci rows lo len =
  let nulls = ref 0 and nans = ref 0 in
  let ints = ref 0 and floats = ref 0 and strs = ref 0 and bools = ref 0 in
  let min_v = ref Value.Null and max_v = ref Value.Null in
  for k = 0 to len - 1 do
    let v = rows.(lo + k).(ci) in
    match v with
    | Value.Null -> incr nulls
    | _ ->
      (match v with
       | Value.Int _ -> incr ints
       | Value.Float _ -> incr floats
       | Value.Str _ -> incr strs
       | Value.Bool _ -> incr bools
       | Value.Null -> ());
      (* NaN stays out of the zone bounds (it compares false against
         everything) and counts as null-ish, mirroring [Zmap.observe]. *)
      if Value.is_nan v then incr nans
      else begin
        if Value.is_null !min_v || Value.compare_total v !min_v < 0 then min_v := v;
        if Value.is_null !max_v || Value.compare_total v !max_v > 0 then max_v := v
      end
  done;
  let zmap =
    { Zmap.min_v = !min_v; max_v = !max_v; nulls = !nulls + !nans; rows = len }
  in
  let non_null = len - !nulls in
  let bitmap () =
    if !nulls = 0 then None
    else begin
      let b = Bitset.create len in
      for k = 0 to len - 1 do
        if Value.is_null rows.(lo + k).(ci) then Bitset.set b k
      done;
      Some b
    end
  in
  let vec =
    if non_null = 0 then
      (* all-null block: a zeroed int vector under a full null bitmap *)
      C_int (Array.make len 0, bitmap ())
    else if !ints = non_null then begin
      let a = Array.make len 0 in
      for k = 0 to len - 1 do
        match rows.(lo + k).(ci) with Value.Int x -> a.(k) <- x | _ -> ()
      done;
      C_int (a, bitmap ())
    end
    else if !floats = non_null then begin
      let a = Array.make len 0. in
      for k = 0 to len - 1 do
        match rows.(lo + k).(ci) with Value.Float x -> a.(k) <- x | _ -> ()
      done;
      C_float (a, bitmap ())
    end
    else if !strs = non_null then begin
      let d =
        match dicts.(ci) with
        | Some d -> d
        | None ->
          let d = Dict.create () in
          dicts.(ci) <- Some d;
          d
      in
      let a = Array.make len 0 in
      for k = 0 to len - 1 do
        match rows.(lo + k).(ci) with
        | Value.Str s -> a.(k) <- Dict.intern d s
        | _ -> ()
      done;
      C_dict (a, bitmap ())
    end
    else if !bools = non_null then begin
      let b = Bitset.create len in
      for k = 0 to len - 1 do
        match rows.(lo + k).(ci) with Value.Bool true -> Bitset.set b k | _ -> ()
      done;
      C_bool (b, bitmap ())
    end
    else C_mixed (Array.init len (fun k -> rows.(lo + k).(ci)))
  in
  (vec, zmap)

(* One block over rows.(lo .. lo+len-1), interning strings into the shared
   [dicts] — the streaming [.sic] writer builds blocks one at a time with
   file-lifetime dictionaries. *)
let build_block ~dicts ~arity rows ~lo ~len =
  let cols = Array.make arity (C_mixed [||]) in
  let zmaps = Array.make arity Zmap.empty in
  for ci = 0 to arity - 1 do
    let vec, zmap = build_col dicts ci rows lo len in
    cols.(ci) <- vec;
    zmaps.(ci) <- zmap
  done;
  { length = len; cols; zmaps }

let of_rows ?(block_size = default_block_size) schema rows =
  if block_size <= 0 then invalid_arg "Cstore.of_rows: block_size <= 0";
  let n = Array.length rows in
  let arity = Schema.arity schema in
  let dicts = Array.make (max arity 1) None in
  let nb = (n + block_size - 1) / block_size in
  let blocks =
    Array.init nb (fun bi ->
        let lo = bi * block_size in
        let len = min block_size (n - lo) in
        let cols = Array.make arity (C_mixed [||]) in
        let zmaps = Array.make arity Zmap.empty in
        for ci = 0 to arity - 1 do
          let vec, zmap = build_col dicts ci rows lo len in
          cols.(ci) <- vec;
          zmaps.(ci) <- zmap
        done;
        { length = len; cols; zmaps })
  in
  { schema; dicts; source = Resident blocks; delta = [||]; length = n }

let make_resident ~schema ~dicts ~blocks =
  let length = Array.fold_left (fun acc (b : block) -> acc + b.length) 0 blocks in
  { schema; dicts; source = Resident blocks; delta = [||]; length }

let make_paged ~schema ~dicts ~lengths ~zmaps ~kinds ~blooms ~bytes ~fetch ~enc =
  let length = Array.fold_left ( + ) 0 lengths in
  {
    schema;
    dicts;
    source =
      Paged
        {
          p_lengths = lengths;
          p_zmaps = zmaps;
          p_kinds = kinds;
          p_blooms = blooms;
          p_bytes = bytes;
          p_fetch = fetch;
          p_enc = enc;
        };
    delta = [||];
    length;
  }

(* A file footer's Bloom filter covers only the rows present at save time;
   once a delta exists it would wrongly refute probes for appended values,
   so it is withdrawn rather than consulted. *)
let col_bloom t ci =
  if Array.length t.delta > 0 then None
  else match t.source with Resident _ -> None | Paged p -> p.p_blooms.(ci)

(* ---- reading ---- *)

let is_null vec i =
  match vec with
  | C_int (_, Some b) | C_float (_, Some b) | C_dict (_, Some b)
  | C_bool (_, Some b) ->
    Bitset.get b i
  | C_mixed a -> Value.is_null a.(i)
  | _ -> false

let value_at t b ci i =
  let vec = b.cols.(ci) in
  if is_null vec i then Value.Null
  else
    match vec with
    | C_int (a, _) -> Value.Int a.(i)
    | C_float (a, _) -> Value.Float a.(i)
    | C_dict (a, _) ->
      (match t.dicts.(ci) with
       | Some d -> Value.Str (Dict.get d a.(i))
       | None -> Value.Null)
    | C_bool (a, _) -> Value.Bool (Bitset.get a i)
    | C_mixed a -> a.(i)

let row_of t (b : block) i : Row.t =
  Array.init (Array.length b.cols) (fun ci -> value_at t b ci i)

let block_rows t (b : block) : Row.t array = Array.init b.length (row_of t b)

let iter_blocks f t =
  (match t.source with
   | Resident blocks -> Array.iter f blocks
   | Paged p ->
     for bi = 0 to Array.length p.p_lengths - 1 do
       f (p.p_fetch bi)
     done);
  Array.iter f t.delta

let to_rows t : Row.t array =
  let out = Array.make t.length [||] in
  let pos = ref 0 in
  iter_blocks
    (fun (b : block) ->
      for i = 0 to b.length - 1 do
        out.(!pos) <- row_of t b i;
        incr pos
      done)
    t;
  out

(* Decode only the suffix rows.(lo ..): blocks wholly before [lo] are never
   fetched, so extracting a fresh delta from a large table is O(delta). *)
let rows_from t lo =
  if lo < 0 || lo > t.length then invalid_arg "Cstore.rows_from";
  let out = Array.make (t.length - lo) [||] in
  let pos = ref 0 and off = ref 0 in
  for bi = 0 to nblocks t - 1 do
    let len = block_length t bi in
    if !off + len > lo then begin
      let b = block t bi in
      for i = max 0 (lo - !off) to len - 1 do
        out.(!pos) <- row_of t b i;
        incr pos
      done
    end;
    off := !off + len
  done;
  out

(* ---- appending ---- *)

let chunk_blocks ~dicts ~arity rows =
  let n = Array.length rows in
  let nb = (n + default_block_size - 1) / default_block_size in
  Array.init nb (fun bi ->
      let lo = bi * default_block_size in
      let len = min default_block_size (n - lo) in
      build_block ~dicts ~arity rows ~lo ~len)

(* Lazy merge: every append lands a (possibly short) tail block, so a
   streaming appender fragments the delta.  Once the delta is ≥ 8 blocks
   averaging under a quarter fill, rebuild it from its own rows into full
   blocks — O(delta), so appends stay O(delta) amortized. *)
let coalesce t =
  let nd = Array.length t.delta in
  if nd < 8 then t
  else begin
    let dlen = delta_rows t in
    if dlen >= nd * (default_block_size / 4) then t
    else begin
      let rows = Array.make dlen [||] in
      let pos = ref 0 in
      Array.iter
        (fun (b : block) ->
          for i = 0 to b.length - 1 do
            rows.(!pos) <- row_of t b i;
            incr pos
          done)
        t.delta;
      let delta = chunk_blocks ~dicts:t.dicts ~arity:(Schema.arity t.schema) rows in
      { t with delta }
    end
  end

let append_rows t rows =
  let n = Array.length rows in
  if n = 0 then t
  else begin
    let fresh = chunk_blocks ~dicts:t.dicts ~arity:(Schema.arity t.schema) rows in
    coalesce
      { t with delta = Array.append t.delta fresh; length = t.length + n }
  end

(* ---- selection vectors ----

   A selection vector is a prefix of an [int array] holding the in-block
   row indices that survive the predicates applied so far, in row order.
   Kernels compile to (fill; refine; refine; …) pipelines over it. *)

let sel_all (b : block) sel =
  for i = 0 to b.length - 1 do
    sel.(i) <- i
  done;
  b.length

let sel_refine sel n test =
  let kept = ref 0 in
  for k = 0 to n - 1 do
    let i = sel.(k) in
    if test i then begin
      sel.(!kept) <- i;
      incr kept
    end
  done;
  !kept

let max_block_length t =
  let acc = ref 0 in
  for bi = 0 to nblocks t - 1 do
    acc := max !acc (block_length t bi)
  done;
  !acc

let iter_col t ci f =
  iter_blocks
    (fun (b : block) ->
      for i = 0 to b.length - 1 do
        f (value_at t b ci i)
      done)
    t

(* Table-level zone map of one column: union over all blocks (metadata
   only — no block fetch for paged stores). *)
let col_zmap t ci =
  let acc = ref Zmap.empty in
  for bi = 0 to nblocks t - 1 do
    acc := Zmap.merge !acc (block_zmaps t bi).(ci)
  done;
  !acc

(* ---- footprint ---- *)

let vec_bytes = function
  | C_int (a, bm) | C_dict (a, bm) ->
    (8 * Array.length a)
    + (match bm with Some b -> Bitset.approx_bytes b | None -> 0)
  | C_float (a, bm) ->
    (8 * Array.length a)
    + (match bm with Some b -> Bitset.approx_bytes b | None -> 0)
  | C_bool (v, bm) ->
    Bitset.approx_bytes v
    + (match bm with Some b -> Bitset.approx_bytes b | None -> 0)
  | C_mixed a -> Array.fold_left (fun acc v -> acc + 8 + Value.approx_bytes v) 0 a

let block_bytes (b : block) =
  Array.fold_left (fun acc vec -> acc + vec_bytes vec) 0 b.cols

let dict_bytes dicts =
  Array.fold_left
    (fun acc d -> match d with Some d -> acc + Dict.approx_bytes d | None -> acc)
    0 dicts

let approx_bytes t =
  let delta_body = Array.fold_left (fun acc b -> acc + block_bytes b) 0 t.delta in
  match t.source with
  | Resident blocks ->
    let body =
      Array.fold_left
        (fun acc b -> Array.fold_left (fun acc vec -> acc + vec_bytes vec) acc b.cols)
        0 blocks
    in
    body + delta_body + dict_bytes t.dicts
  | Paged p -> p.p_bytes + delta_body + dict_bytes t.dicts
