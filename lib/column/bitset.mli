(** Bit-packed boolean vector, used for null bitmaps and boolean columns.
    Mutable during construction ([set]); treated as immutable once a block
    is frozen. *)

type t

val create : int -> t
val length : t -> int
val set : t -> int -> unit
val get : t -> int -> bool
val count : t -> int
val approx_bytes : t -> int
