type t = {
  mutable strs : string array;
  mutable n : int;
  codes : (string, int) Hashtbl.t;
}

let create () = { strs = Array.make 16 ""; n = 0; codes = Hashtbl.create 64 }

let intern t s =
  match Hashtbl.find_opt t.codes s with
  | Some c -> c
  | None ->
    if t.n >= Array.length t.strs then begin
      let strs = Array.make (2 * Array.length t.strs) "" in
      Array.blit t.strs 0 strs 0 t.n;
      t.strs <- strs
    end;
    let c = t.n in
    t.strs.(c) <- s;
    t.n <- c + 1;
    Hashtbl.add t.codes s c;
    c

let get t c = t.strs.(c)
let find_opt t s = Hashtbl.find_opt t.codes s
let size t = t.n

let approx_bytes t =
  let total = ref (8 * Array.length t.strs) in
  for i = 0 to t.n - 1 do
    total := !total + 16 + String.length t.strs.(i)
  done;
  !total
