(** Per-column string dictionary: interns each distinct string once and
    stores dense integer codes in the blocks.  Codes are assigned in first-
    appearance order, so they are NOT value-ordered — range tests on
    dictionary columns go through the zone map's min/max strings instead. *)

type t

val create : unit -> t

(** Return the code for [s], interning it if new. *)
val intern : t -> string -> int

val get : t -> int -> string
val find_opt : t -> string -> int option

(** Number of distinct interned strings (= exact distinct count of the
    column's non-null values when the dictionary covers every block). *)
val size : t -> int

val approx_bytes : t -> int
