(* Process-global byte-weighted block cache (see the mli).

   Entries are keyed "<file-id>:<variant>:<block-index>"; the file id is a
   fresh integer per open, so re-saving a file and re-opening it can never
   observe stale blocks.  Evictions are mirrored into the obs registry as
   a delta after every store, so EXPLAIN ANALYZE and the bench JSON see
   [sic.cache_evictions] move per query like every other counter. *)

type entry = Enc of Encode.col array | Dec of Cstore.block

let cache_hits = Obs.Metrics.counter "sic.cache_hits"
let cache_misses = Obs.Metrics.counter "sic.cache_misses"
let cache_evictions = Obs.Metrics.counter "sic.cache_evictions"

let default_capacity_mb = 256

let env_capacity_mb () =
  match Sys.getenv_opt "SI_CACHE_MB" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> default_capacity_mb)
  | None -> default_capacity_mb

let cache : entry Cache.Lru.t ref = ref (Cache.Lru.create (env_capacity_mb () * 1024 * 1024))
let capacity = ref (env_capacity_mb () * 1024 * 1024)

(* The Lru's eviction tally is cumulative per instance; this remembers the
   last value mirrored into the obs counter. *)
let mirrored_evictions = ref 0
let mu = Mutex.create ()

let next_id = Atomic.make 0
let file_id () = Atomic.fetch_and_add next_id 1

let key id ~variant bi = Printf.sprintf "%d:%c:%d" id variant bi

let find id ~variant bi =
  let r = Cache.Lru.find !cache (key id ~variant bi) in
  (match r with
   | Some _ -> Obs.Metrics.incr cache_hits
   | None -> Obs.Metrics.incr cache_misses);
  r

let sync_evictions () =
  let s = Cache.Lru.stats !cache in
  Mutex.lock mu;
  let delta = s.Cache.Lru.s_evictions - !mirrored_evictions in
  if delta > 0 then mirrored_evictions := s.Cache.Lru.s_evictions;
  Mutex.unlock mu;
  if delta > 0 then Obs.Metrics.add cache_evictions delta

let store id ~variant bi ~weight entry =
  Cache.Lru.put ~weight !cache (key id ~variant bi) entry;
  sync_evictions ()

let capacity_bytes () = !capacity

let set_capacity_mb mb =
  let mb = max 1 mb in
  Mutex.lock mu;
  capacity := mb * 1024 * 1024;
  cache := Cache.Lru.create !capacity;
  mirrored_evictions := 0;
  Mutex.unlock mu

let stats () = Cache.Lru.stats !cache
let clear () = Cache.Lru.clear !cache
