(** Rows are immutable-by-convention arrays of values. *)

type t = Value.t array

val make : Value.t list -> t
val append : t -> t -> t
val project : t -> int list -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val has_null : t -> bool
(** [true] when any field is [Value.Null] — an equi-join key containing a
    NULL matches nothing under SQL semantics, while {!Tbl}'s structural
    equality would pair it with an identical key; key-based joins must
    check this before inserting or probing. *)

val to_string : t -> string

(** Hashtbl key module with total (SQL-agnostic) equality. *)
module Key : Hashtbl.HashedType with type t = t

module Tbl : Hashtbl.S with type key = t
