(** SQL-style atomic values.

    Comparisons follow SQL semantics restricted to the subset the paper
    exercises: [Null] never compares equal to anything (predicates involving
    it evaluate to false), integers and floats compare numerically across the
    two representations, and heterogeneous comparisons raise
    [Type_error]. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

val is_null : t -> bool

(** [Float nan] (any comparison involving it is false, like [Null]). *)
val is_nan : t -> bool

(** Total order used for sorting and index keys; [Null] sorts first.
    Unlike SQL predicate comparison this is total so rows can be ordered. *)
val compare_total : t -> t -> int

val equal_total : t -> t -> bool

(** SQL predicate comparison: [None] when either side is [Null], otherwise
    [Some c] with [c] as [compare]. *)
val compare_sql : t -> t -> int option

(** Allocation-free variant for hot loops: [min_int] when either side is
    [Null], otherwise the sign of the comparison. *)
val compare_sql_code : t -> t -> int

(** Arithmetic; NULL propagates.  [add] on two ints promotes the result to
    float when the sum overflows instead of wrapping silently — the rule
    SUM/AVG accumulation folds through. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

(** Numeric view used by aggregates; raises [Type_error] on non-numbers. *)
val to_float : t -> float

val to_bool : t -> bool
val of_int : int -> t
val of_float : float -> t
val of_string : string -> t
val of_bool : bool -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parse a CSV field: tries int, then float, then bool, else string;
    the empty string becomes [Null]. *)
val of_csv_field : string -> t

(** Rough in-memory footprint of one value, for cache accounting. *)
val approx_bytes : t -> int

val hash : t -> int
