(** Register-blocked Bloom filters over {!Value.t} (DESIGN.md §11).

    Built by the predicate-transfer pass (one filter per transferred join
    edge) and probed by scans and the vectorized NLJP inner loop.  Each key
    maps to a single 63-bit word of the filter and sets [k] bits inside it,
    so a membership probe touches one cache line — the layout of the
    Predicate Transfer paper's per-edge filters adapted to OCaml's boxed-free
    [int array].

    Hashing goes through {!Value.hash}, which normalizes integral [Float]s
    to their [Int] image, so membership agrees with SQL equality across the
    numeric types.  [Null] never matches anything (SQL equality): [add]
    ignores it and [mem] refuses it, which makes dropping [Null]-keyed rows
    on an equality edge sound.

    The contract consumers rely on: {b no false negatives}.  A false
    positive only keeps a row that a later join discards; a false negative
    would lose result tuples.  Transfer therefore stays a performance hint
    (see the differential fuzz suite, which forces tiny, collision-heavy
    filters through {!test_force_bits}). *)

type t

(** [create ~expected ()] sizes the filter for [expected] distinct keys at
    [bits_per_key] (default 10, ≈1% false positives with the 4 probe bits
    used here), rounded up to a power-of-two word count. *)
val create : ?bits_per_key:int -> expected:int -> unit -> t

val add : t -> Value.t -> unit

(** No false negatives over the values passed to [add]; [Null] and an
    empty filter always answer [false]. *)
val mem : t -> Value.t -> bool

(** Number of [add]ed (non-null) values, duplicates included. *)
val count : t -> int

(** Observed range of the added values as a zone map (min/max under
    [Value.compare_total], NaN excluded like {!Zmap.observe}). *)
val range : t -> Zmap.t

(** Can any value of a block with zone map [z] possibly be in the filter?
    Conservative range-overlap test: block-level data skipping for
    transferred filters, composing with the σ zone probes. *)
val range_may_match : t -> Zmap.t -> bool

val nbits : t -> int
val approx_bytes : t -> int

(** Raw filter words (serialization — the [.sic] footer persists filters
    built at save time). *)
val words : t -> int array

(** Rebuild a filter from serialized parts.  [words] must be the
    power-of-two-length array a filter was built with. *)
val restore : words:int array -> count:int -> zmap:Zmap.t -> t

(** Test hook: when [Some n], [create] clamps every new filter to [n] total
    bits, forcing high false-positive rates so the fuzz suite can prove
    transfer never filters results, only work. *)
val test_force_bits : int option ref
