(* .sic reader/writer (layout in the mli and DESIGN.md §13).

   All integers little-endian: u8 | u32 (read back unsigned) | i64.
   Strings are u32 length + bytes.  Values use Encode's tagged form.

   Footer, in order:
     u32 arity
     per col:    u8 has_qualifier, [str], str name
     u32 nblocks
     per block:  u32 row count
     per col:    u8 has_dict, [u32 size, size * str]   (codes = entry order)
     per block:  per col: zmap (value min, value max, u32 nulls, u32 rows)
     per col:    u8 kind tag
     per col:    u8 has_bloom, [u32 count, zmap, u32 nwords, nwords * i64]
     per block:  i64 offset, u32 segment length
   Trailer: i64 footer_offset, "SICE". *)

let magic = "SIC1"
let end_magic = "SICE"

let blocks_decoded = Obs.Metrics.counter "sic.blocks_decoded"
let bytes_compressed = Obs.Metrics.counter "sic.bytes_compressed"

(* Whole-table Bloom filters over int columns stop accumulating past this
   many rows (a saturated filter refutes nothing and bloats the footer). *)
let int_bloom_max_rows = 2_000_000
let int_bloom_expected = 65_536

(* ---- primitive IO ---- *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let w_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

type cursor = { buf : Bytes.t; mutable pos : int }

let r_u8 c =
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let r_i64 c =
  let v = Int64.to_int (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c =
  let len = r_u32 c in
  let s = Bytes.sub_string c.buf c.pos len in
  c.pos <- c.pos + len;
  s

let r_value c =
  let v, pos = Encode.read_value c.buf c.pos in
  c.pos <- pos;
  v

let w_zmap buf (z : Zmap.t) =
  Encode.write_value buf z.Zmap.min_v;
  Encode.write_value buf z.Zmap.max_v;
  w_u32 buf z.Zmap.nulls;
  w_u32 buf z.Zmap.rows

let r_zmap c =
  let min_v = r_value c in
  let max_v = r_value c in
  let nulls = r_u32 c in
  let rows = r_u32 c in
  { Zmap.min_v; max_v; nulls; rows }

let kind_tag = function
  | Cstore.K_int -> 0
  | Cstore.K_float -> 1
  | Cstore.K_dict -> 2
  | Cstore.K_bool -> 3
  | Cstore.K_mixed -> 4
  | Cstore.K_varied -> 5
  | Cstore.K_empty -> 6

let kind_of_tag = function
  | 0 -> Cstore.K_int
  | 1 -> Cstore.K_float
  | 2 -> Cstore.K_dict
  | 3 -> Cstore.K_bool
  | 4 -> Cstore.K_mixed
  | 5 -> Cstore.K_varied
  | 6 -> Cstore.K_empty
  | t -> failwith (Printf.sprintf "Blockfile: bad kind tag %d" t)

let cvec_kind = function
  | Cstore.C_int _ -> Cstore.K_int
  | Cstore.C_float _ -> Cstore.K_float
  | Cstore.C_dict _ -> Cstore.K_dict
  | Cstore.C_bool _ -> Cstore.K_bool
  | Cstore.C_mixed _ -> Cstore.K_mixed

(* ---- writer ---- *)

type writer = {
  oc : out_channel;
  path : string;
  schema : Schema.t;
  arity : int;
  block_size : int;
  dicts : Dict.t option array;
  buf_rows : Row.t array;
  mutable nbuf : int;
  mutable pos : int;
  mutable rows_total : int;
  mutable lengths_rev : int list;
  mutable zmaps_rev : Zmap.t array list;
  mutable dir_rev : (int * int) list;
  (* per-col running kind: None until the first block, K_varied once blocks
     disagree *)
  kinds : Cstore.kind option array;
  int_blooms : Bloom.t option array;
  mutable int_blooms_dead : bool;
}

let create_writer ?(block_size = Cstore.default_block_size) path schema =
  if block_size <= 0 then invalid_arg "Blockfile.create_writer: block_size <= 0";
  let oc = open_out_bin path in
  output_string oc magic;
  let arity = Schema.arity schema in
  {
    oc;
    path;
    schema;
    arity;
    block_size;
    dicts = Array.make (max arity 1) None;
    buf_rows = Array.make block_size [||];
    nbuf = 0;
    pos = String.length magic;
    rows_total = 0;
    lengths_rev = [];
    zmaps_rev = [];
    dir_rev = [];
    kinds = Array.make (max arity 1) None;
    int_blooms = Array.make (max arity 1) None;
    int_blooms_dead = false;
  }

let note_kind w ci k =
  match w.kinds.(ci) with
  | None -> w.kinds.(ci) <- Some k
  | Some k0 when k0 = k -> ()
  | Some Cstore.K_varied -> ()
  | Some _ -> w.kinds.(ci) <- Some Cstore.K_varied

let feed_int_bloom w ci (vec : Cstore.cvec) =
  if not w.int_blooms_dead then
    match vec with
    | Cstore.C_int (a, bm) ->
      let bloom =
        match w.int_blooms.(ci) with
        | Some b -> b
        | None ->
          let b = Bloom.create ~expected:int_bloom_expected () in
          w.int_blooms.(ci) <- Some b;
          b
      in
      Array.iteri
        (fun i v ->
          let null = match bm with Some bm -> Bitset.get bm i | None -> false in
          if not null then Bloom.add bloom (Value.Int v))
        a
    | _ -> w.int_blooms.(ci) <- None

(* Encode and append one built block; records directory + footer rows. *)
let emit_block w (b : Cstore.block) =
  let buf = Buffer.create 4096 in
  for ci = 0 to w.arity - 1 do
    let vec = b.Cstore.cols.(ci) in
    note_kind w ci (cvec_kind vec);
    feed_int_bloom w ci vec;
    Encode.write buf (Encode.of_cvec ~len:b.Cstore.length vec)
  done;
  let seg = Buffer.contents buf in
  output_string w.oc seg;
  w.dir_rev <- (w.pos, String.length seg) :: w.dir_rev;
  w.pos <- w.pos + String.length seg;
  w.rows_total <- w.rows_total + b.Cstore.length;
  w.lengths_rev <- b.Cstore.length :: w.lengths_rev;
  w.zmaps_rev <- b.Cstore.zmaps :: w.zmaps_rev;
  if w.rows_total > int_bloom_max_rows then begin
    w.int_blooms_dead <- true;
    Array.fill w.int_blooms 0 (Array.length w.int_blooms) None
  end

let flush_rows w =
  if w.nbuf > 0 then begin
    let b = Cstore.build_block ~dicts:w.dicts ~arity:w.arity w.buf_rows ~lo:0 ~len:w.nbuf in
    w.nbuf <- 0;
    emit_block w b
  end

let add_row w row =
  w.buf_rows.(w.nbuf) <- row;
  w.nbuf <- w.nbuf + 1;
  if w.nbuf = w.block_size then flush_rows w

let write_footer w =
  let buf = Buffer.create 4096 in
  w_u32 buf w.arity;
  List.iter
    (fun (c : Schema.col) ->
      (match c.Schema.qualifier with
       | Some q ->
         w_u8 buf 1;
         w_str buf q
       | None -> w_u8 buf 0);
      w_str buf c.Schema.name)
    (Schema.cols w.schema);
  let lengths = Array.of_list (List.rev w.lengths_rev) in
  let zmaps = Array.of_list (List.rev w.zmaps_rev) in
  let dir = Array.of_list (List.rev w.dir_rev) in
  w_u32 buf (Array.length lengths);
  Array.iter (w_u32 buf) lengths;
  for ci = 0 to w.arity - 1 do
    match w.dicts.(ci) with
    | None -> w_u8 buf 0
    | Some d ->
      w_u8 buf 1;
      w_u32 buf (Dict.size d);
      for code = 0 to Dict.size d - 1 do
        w_str buf (Dict.get d code)
      done
  done;
  Array.iter (fun zs -> Array.iter (w_zmap buf) zs) zmaps;
  for ci = 0 to w.arity - 1 do
    let k = match w.kinds.(ci) with Some k -> k | None -> Cstore.K_empty in
    w_u8 buf (kind_tag k)
  done;
  for ci = 0 to w.arity - 1 do
    let bloom =
      match w.kinds.(ci) with
      | Some Cstore.K_int -> w.int_blooms.(ci)
      | Some Cstore.K_dict ->
        (* exact over the dictionary: every string the column ever held *)
        (match w.dicts.(ci) with
         | Some d ->
           let b = Bloom.create ~expected:(Dict.size d) () in
           for code = 0 to Dict.size d - 1 do
             Bloom.add b (Value.Str (Dict.get d code))
           done;
           Some b
         | None -> None)
      | _ -> None
    in
    match bloom with
    | None -> w_u8 buf 0
    | Some b ->
      w_u8 buf 1;
      w_u32 buf (Bloom.count b);
      w_zmap buf (Bloom.range b);
      let words = Bloom.words b in
      w_u32 buf (Array.length words);
      Array.iter (w_i64 buf) words
  done;
  Array.iter
    (fun (off, len) ->
      w_i64 buf off;
      w_u32 buf len)
    dir;
  let footer_off = w.pos in
  output_string w.oc (Buffer.contents buf);
  let trailer = Buffer.create 12 in
  w_i64 trailer footer_off;
  Buffer.add_string trailer end_magic;
  output_string w.oc (Buffer.contents trailer)

let close_writer w =
  flush_rows w;
  write_footer w;
  close_out w.oc

let save_rows ?block_size path schema rows =
  let w = create_writer ?block_size path schema in
  Seq.iter (add_row w) rows;
  close_writer w

let save path cs =
  let w = create_writer path (Cstore.schema cs) in
  (* Blocks are already built; reuse the store's dictionaries (codes in the
     emitted blocks refer to them). *)
  for ci = 0 to w.arity - 1 do
    w.dicts.(ci) <- Cstore.dict cs ci
  done;
  for bi = 0 to Cstore.nblocks cs - 1 do
    emit_block w (Cstore.block cs bi)
  done;
  write_footer w;
  close_out w.oc

(* ---- footer parsing ---- *)

type meta = {
  m_schema : Schema.t;
  m_lengths : int array;
  m_dicts : Dict.t option array;
  m_zmaps : Zmap.t array array;
  m_kinds : Cstore.kind array;
  m_blooms : Bloom.t option array;
  m_dir : (int * int) array;
}

let parse_footer c =
  let arity = r_u32 c in
  let cols =
    List.init arity (fun _ ->
        let q = if r_u8 c = 1 then Some (r_str c) else None in
        let name = r_str c in
        { Schema.qualifier = q; name })
  in
  let schema = Schema.of_cols cols in
  let nblocks = r_u32 c in
  let lengths = Array.init nblocks (fun _ -> r_u32 c) in
  let dicts =
    Array.init (max arity 1) (fun ci ->
        if ci >= arity then None
        else if r_u8 c = 1 then begin
          let size = r_u32 c in
          let d = Dict.create () in
          for _ = 1 to size do
            ignore (Dict.intern d (r_str c))
          done;
          Some d
        end
        else None)
  in
  let zmaps =
    Array.init nblocks (fun _ -> Array.init arity (fun _ -> r_zmap c))
  in
  let kinds =
    Array.init (max arity 1) (fun ci ->
        if ci >= arity then Cstore.K_empty else kind_of_tag (r_u8 c))
  in
  let blooms =
    Array.init (max arity 1) (fun ci ->
        if ci >= arity then None
        else if r_u8 c = 1 then begin
          let count = r_u32 c in
          let zmap = r_zmap c in
          let nwords = r_u32 c in
          let words = Array.init nwords (fun _ -> r_i64 c) in
          Some (Bloom.restore ~words ~count ~zmap)
        end
        else None)
  in
  let dir =
    Array.init nblocks (fun _ ->
        let off = r_i64 c in
        let len = r_u32 c in
        (off, len))
  in
  { m_schema = schema; m_lengths = lengths; m_dicts = dicts; m_zmaps = zmaps;
    m_kinds = kinds; m_blooms = blooms; m_dir = dir }

let check_magic path s =
  if s <> magic then
    failwith (Printf.sprintf "%s: not a .sic file (bad magic)" path)

(* ---- resident load ---- *)

let parse_segment ~arity buf off =
  let pos = ref off in
  Array.init arity (fun _ ->
      let col, pos' = Encode.read buf !pos in
      pos := pos';
      col)

let block_of_enc ~zmaps ~length enc =
  {
    Cstore.length;
    cols = Array.map Encode.to_cvec enc;
    zmaps;
  }

let load_resident path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let buf = Bytes.create size in
      really_input ic buf 0 size;
      check_magic path (Bytes.sub_string buf 0 4);
      if Bytes.sub_string buf (size - 4) 4 <> end_magic then
        failwith (Printf.sprintf "%s: truncated .sic file" path);
      let footer_off = Int64.to_int (Bytes.get_int64_le buf (size - 12)) in
      let m = parse_footer { buf; pos = footer_off } in
      let arity = Schema.arity m.m_schema in
      let blocks =
        Array.mapi
          (fun bi (off, len) ->
            Obs.Metrics.incr blocks_decoded;
            Obs.Metrics.add bytes_compressed len;
            block_of_enc ~zmaps:m.m_zmaps.(bi) ~length:m.m_lengths.(bi)
              (parse_segment ~arity buf off))
          m.m_dir
      in
      Cstore.make_resident ~schema:m.m_schema ~dicts:m.m_dicts ~blocks)

(* ---- paged open ---- *)

let really_pread fd off buf len =
  let mu_off = ref 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  while !mu_off < len do
    let k = Unix.read fd buf !mu_off (len - !mu_off) in
    if k = 0 then failwith "Blockfile: unexpected EOF";
    mu_off := !mu_off + k
  done

let open_paged path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let mu = Mutex.create () in
  let closed = ref false in
  let read_at off len =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        if !closed then failwith "Blockfile: file closed";
        let buf = Bytes.create len in
        really_pread fd off buf len;
        buf)
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size < 16 then failwith (Printf.sprintf "%s: not a .sic file" path);
  check_magic path (Bytes.to_string (read_at 0 4));
  let trailer = read_at (size - 12) 12 in
  if Bytes.sub_string trailer 8 4 <> end_magic then
    failwith (Printf.sprintf "%s: truncated .sic file" path);
  let footer_off = Int64.to_int (Bytes.get_int64_le trailer 0) in
  let footer = read_at footer_off (size - 12 - footer_off) in
  let m = parse_footer { buf = footer; pos = 0 } in
  let arity = Schema.arity m.m_schema in
  let id = Blockcache.file_id () in
  let read_enc bi =
    let off, len = m.m_dir.(bi) in
    let buf = read_at off len in
    Obs.Metrics.add bytes_compressed len;
    (parse_segment ~arity buf 0, len)
  in
  let enc bi =
    match Blockcache.find id ~variant:'e' bi with
    | Some (Blockcache.Enc e) -> e
    | _ ->
      let e, len = read_enc bi in
      Blockcache.store id ~variant:'e' bi ~weight:len (Blockcache.Enc e);
      e
  in
  let fetch bi =
    match Blockcache.find id ~variant:'d' bi with
    | Some (Blockcache.Dec b) -> b
    | _ ->
      (* Prefer an already-cached encoded segment over a disk read. *)
      let e =
        match Blockcache.find id ~variant:'e' bi with
        | Some (Blockcache.Enc e) -> e
        | _ -> fst (read_enc bi)
      in
      Obs.Metrics.incr blocks_decoded;
      let b = block_of_enc ~zmaps:m.m_zmaps.(bi) ~length:m.m_lengths.(bi) e in
      Blockcache.store id ~variant:'d' bi ~weight:(Cstore.block_bytes b)
        (Blockcache.Dec b);
      b
  in
  let bytes = Array.fold_left (fun acc (_, len) -> acc + len) 0 m.m_dir in
  let cs =
    Cstore.make_paged ~schema:m.m_schema ~dicts:m.m_dicts ~lengths:m.m_lengths
      ~zmaps:m.m_zmaps ~kinds:m.m_kinds ~blooms:m.m_blooms ~bytes ~fetch ~enc
  in
  (* The closures above are reachable exactly as long as [cs] is; closing
     the fd when the store is collected leaks nothing and frees the
     descriptor for long sessions that open many files. *)
  Gc.finalise
    (fun _ ->
      Mutex.lock mu;
      if not !closed then begin
        closed := true;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end;
      Mutex.unlock mu)
    cs;
  cs
