(** Chunked columnar relation storage.

    Rows are split into fixed-size blocks; within a block every column is a
    typed vector (unboxed [int array]/[float array], dictionary-coded
    strings, bit-packed booleans, or a boxed fallback for mixed-type
    blocks) with an optional null bitmap, plus a {!Zmap.t} zone map built
    in the same pass.  Conversion to and from row form is lossless.

    A store's blocks are either {e resident} (decoded in RAM, built by
    {!of_rows}) or {e paged}: fetched on demand from a compressed source —
    a [.sic] file behind the block cache — via {!make_paged}.  Per-block
    zone maps, lengths, and column kinds are always resident, so block
    skipping and kernel selection never touch the disk tier; only
    surviving blocks are fetched.  [block_enc] additionally exposes a
    paged block's encoded columns so scans can evaluate predicates
    directly on the compressed form. *)

type cvec = Encode.cvec =
  | C_int of int array * Bitset.t option
  | C_float of float array * Bitset.t option
  | C_dict of int array * Bitset.t option  (** codes into the column dictionary *)
  | C_bool of Bitset.t * Bitset.t option  (** (values, null bitmap) *)
  | C_mixed of Value.t array  (** fallback for blocks mixing value types *)

type block = { length : int; cols : cvec array; zmaps : Zmap.t array }

type t

(** Uniform physical kind of a column across all blocks ([K_varied] when
    blocks disagree, [K_empty] for a zero-block store). *)
type kind = K_int | K_float | K_dict | K_bool | K_mixed | K_varied | K_empty

val default_block_size : int

val of_rows : ?block_size:int -> Schema.t -> Row.t array -> t

val make_resident :
  schema:Schema.t -> dicts:Dict.t option array -> blocks:block array -> t
(** Wrap already-decoded blocks (the [.sic] resident-load path). *)

val make_paged :
  schema:Schema.t ->
  dicts:Dict.t option array ->
  lengths:int array ->
  zmaps:Zmap.t array array ->
  kinds:kind array ->
  blooms:Bloom.t option array ->
  bytes:int ->
  fetch:(int -> block) ->
  enc:(int -> Encode.col array) ->
  t
(** Build a paged store over [Array.length lengths] blocks.  [fetch bi]
    returns block [bi] decoded (typically via the block cache); [enc bi]
    returns its encoded columns.  [zmaps.(bi)] are the per-block zone maps,
    [blooms] optional per-column whole-table filters from the file footer,
    and [bytes] the compressed payload size ({!approx_bytes}). *)

val build_block :
  dicts:Dict.t option array -> arity:int -> Row.t array -> lo:int -> len:int -> block
(** Build one block over [rows.(lo .. lo+len-1)], interning strings into
    the shared [dicts] (the streaming [.sic] writer's per-chunk step). *)

val append_rows : t -> Row.t array -> t
(** O(delta) append: the rows become {e delta blocks} (own zone maps, codes
    interned into the shared dicts) logically concatenated after the base
    source — resident or paged — without touching it.  Fragmented delta
    tails are coalesced lazily, keeping appends O(delta) amortized.  The
    result shares base blocks and dictionaries with the input store. *)

val delta_rows : t -> int
(** Number of rows living in delta blocks (0 for a freshly built store). *)

val rows_from : t -> int -> Row.t array
(** [rows_from t lo] decodes rows [lo ..] only, fetching just the blocks
    that overlap the suffix — the delta-extraction path for incremental
    maintenance. *)

val schema : t -> Schema.t
val length : t -> int
val nblocks : t -> int
val block : t -> int -> block
val dict : t -> int -> Dict.t option

val is_paged : t -> bool

val block_length : t -> int -> int
(** Row count of block [i], without fetching it. *)

val block_zmaps : t -> int -> Zmap.t array
(** Zone maps of block [i], without fetching it. *)

val block_enc : t -> int -> Encode.col array option
(** Encoded columns of block [i] for a paged store ([None] if resident). *)

val col_kind : t -> int -> kind
(** Physical kind of column [ci] across blocks (metadata-only for paged
    stores; a tag scan over resident blocks). *)

val col_bloom : t -> int -> Bloom.t option
(** Whole-table Bloom filter over column [ci]'s values, when the paged
    source's footer carries one ([None] for resident stores).  Used to
    refute equality probes without touching any block.  Withdrawn (returns
    [None]) once delta blocks exist: the saved filter does not cover
    appended rows and would refute probes unsoundly. *)

(** Same blocks under a different schema (e.g. requalified aliases). *)
val with_schema : Schema.t -> t -> t

val value_at : t -> block -> int -> int -> Value.t
val row_of : t -> block -> int -> Row.t
val block_rows : t -> block -> Row.t array
val to_rows : t -> Row.t array
val iter_blocks : (block -> unit) -> t -> unit

(** Selection vectors: a prefix of [sel] holds surviving in-block row
    indices in row order.  [sel_all b sel] fills the identity selection and
    returns the block length; [sel_refine sel n test] compacts the first [n]
    entries in place, keeping those satisfying [test], and returns the new
    count.  [sel] must be at least [max_block_length] long. *)
val sel_all : block -> int array -> int

val sel_refine : int array -> int -> (int -> bool) -> int

(** Largest block length (scratch sizing for selection vectors). *)
val max_block_length : t -> int
val iter_col : t -> int -> (Value.t -> unit) -> unit

(** Union of a column's per-block zone maps (table-level min/max/nulls). *)
val col_zmap : t -> int -> Zmap.t

val approx_bytes : t -> int
(** Resident: decoded in-RAM footprint.  Paged: compressed payload size
    (the resident footprint is whatever the block cache holds). *)

val block_bytes : block -> int
(** Decoded in-RAM footprint of one block (block-cache entry weights). *)
