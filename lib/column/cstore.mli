(** Chunked columnar relation storage.

    Rows are split into fixed-size blocks; within a block every column is a
    typed vector (unboxed [int array]/[float array], dictionary-coded
    strings, bit-packed booleans, or a boxed fallback for mixed-type
    blocks) with an optional null bitmap, plus a {!Zmap.t} zone map built
    in the same pass.  Conversion to and from row form is lossless.

    The representation is exposed so the execution layer can compile
    column-aware scan kernels against it. *)

type cvec =
  | C_int of int array * Bitset.t option
  | C_float of float array * Bitset.t option
  | C_dict of int array * Bitset.t option  (** codes into the column dictionary *)
  | C_bool of Bitset.t * Bitset.t option  (** (values, null bitmap) *)
  | C_mixed of Value.t array  (** fallback for blocks mixing value types *)

type block = { length : int; cols : cvec array; zmaps : Zmap.t array }

type t = private {
  schema : Schema.t;
  dicts : Dict.t option array;
  blocks : block array;
  length : int;
}

val default_block_size : int

val of_rows : ?block_size:int -> Schema.t -> Row.t array -> t

val schema : t -> Schema.t
val length : t -> int
val nblocks : t -> int
val block : t -> int -> block
val dict : t -> int -> Dict.t option

(** Same blocks under a different schema (e.g. requalified aliases). *)
val with_schema : Schema.t -> t -> t

val value_at : t -> block -> int -> int -> Value.t
val row_of : t -> block -> int -> Row.t
val block_rows : t -> block -> Row.t array
val to_rows : t -> Row.t array
val iter_blocks : (block -> unit) -> t -> unit

(** Selection vectors: a prefix of [sel] holds surviving in-block row
    indices in row order.  [sel_all b sel] fills the identity selection and
    returns the block length; [sel_refine sel n test] compacts the first [n]
    entries in place, keeping those satisfying [test], and returns the new
    count.  [sel] must be at least [max_block_length] long. *)
val sel_all : block -> int array -> int

val sel_refine : int array -> int -> (int -> bool) -> int

(** Largest block length (scratch sizing for selection vectors). *)
val max_block_length : t -> int
val iter_col : t -> int -> (Value.t -> unit) -> unit

(** Union of a column's per-block zone maps (table-level min/max/nulls). *)
val col_zmap : t -> int -> Zmap.t

val approx_bytes : t -> int
