(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Parse_error of string

(** Parse one statement; a trailing [;] is allowed. *)
val parse : string -> Ast.query

(** Parse a standalone predicate (used by tests). *)
val parse_pred : string -> Ast.pred

(** Parse a standalone scalar expression (used by tests). *)
val parse_scalar : string -> Ast.scalar
