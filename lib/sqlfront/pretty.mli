(** Render an AST back to SQL text (used by EXPLAIN output to show the NLJP
    component queries à la Listings 7 and 10, and by parser round-trip
    tests). *)

val scalar : Ast.scalar -> string
val pred : Ast.pred -> string
val query : Ast.query -> string
