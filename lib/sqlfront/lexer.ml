type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then emit EOF
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '.' when not (i + 1 < n && is_digit input.[i + 1]) -> emit DOT; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | '=' -> emit EQ; go (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> emit NE; go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '>' -> emit NE; go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' -> emit LE; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' -> emit GE; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go next
      | c when is_digit c || (c = '.' && i + 1 < n && is_digit input.[i + 1]) ->
        let rec num j seen_dot =
          if j < n && (is_digit input.[j] || (input.[j] = '.' && not seen_dot)) then
            num (j + 1) (seen_dot || input.[j] = '.')
          else j
        in
        let stop = num i false in
        let text = String.sub input i (stop - i) in
        if String.contains text '.' then emit (FLOAT (float_of_string text))
        else emit (INT (int_of_string text));
        go stop
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char input.[j] then ident (j + 1) else j in
        let stop = ident i in
        emit (IDENT (String.sub input i (stop - i)));
        go stop
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | SEMI -> ";"
  | EOF -> "<eof>"
