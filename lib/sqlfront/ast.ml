type scalar =
  | S_const of Relalg.Value.t
  | S_col of string option * string
  | S_binop of Relalg.Expr.binop * scalar * scalar
  | S_neg of scalar
  | S_agg of agg

and agg =
  | A_count_star
  | A_count of scalar
  | A_count_distinct of scalar
  | A_sum of scalar
  | A_min of scalar
  | A_max of scalar
  | A_avg of scalar

type pred =
  | P_true
  | P_cmp of Relalg.Expr.cmp * scalar * scalar
  | P_and of pred * pred
  | P_or of pred * pred
  | P_not of pred
  | P_in of scalar list * query

and select_item =
  | Sel_star
  | Sel_expr of scalar * string option

and table_ref =
  | T_table of string * string option
  | T_subquery of query * string

and query = {
  with_defs : (string * query) list;
  distinct : bool;
  select : select_item list;
  from : table_ref list;
  where : pred option;
  group_by : (string option * string) list;
  having : pred option;
  order_by : (scalar * [ `Asc | `Desc ]) list;
  limit : int option;
}

let simple_select ?(with_defs = []) ?(distinct = false) ?where ?(group_by = [])
    ?having ?(order_by = []) ?limit select from =
  { with_defs; distinct; select; from; where; group_by; having; order_by; limit }

let col ?q name = S_col (q, name)
let icst i = S_const (Relalg.Value.Int i)

let conj = function
  | [] -> P_true
  | p :: ps -> List.fold_left (fun acc p -> P_and (acc, p)) p ps

let rec conjuncts = function
  | P_and (a, b) -> conjuncts a @ conjuncts b
  | P_true -> []
  | p -> [ p ]

let rec equal_scalar a b =
  match a, b with
  | S_const x, S_const y -> Relalg.Value.equal_total x y
  | S_col (q1, n1), S_col (q2, n2) -> q1 = q2 && String.equal n1 n2
  | S_binop (o1, a1, b1), S_binop (o2, a2, b2) ->
    o1 = o2 && equal_scalar a1 a2 && equal_scalar b1 b2
  | S_neg x, S_neg y -> equal_scalar x y
  | S_agg x, S_agg y -> equal_agg x y
  | _ -> false

and equal_agg a b =
  match a, b with
  | A_count_star, A_count_star -> true
  | A_count x, A_count y
  | A_count_distinct x, A_count_distinct y
  | A_sum x, A_sum y
  | A_min x, A_min y
  | A_max x, A_max y
  | A_avg x, A_avg y -> equal_scalar x y
  | _ -> false

let rec equal_pred a b =
  match a, b with
  | P_true, P_true -> true
  | P_cmp (o1, a1, b1), P_cmp (o2, a2, b2) ->
    o1 = o2 && equal_scalar a1 a2 && equal_scalar b1 b2
  | P_and (a1, b1), P_and (a2, b2) | P_or (a1, b1), P_or (a2, b2) ->
    equal_pred a1 a2 && equal_pred b1 b2
  | P_not x, P_not y -> equal_pred x y
  | P_in (e1, q1), P_in (e2, q2) ->
    List.length e1 = List.length e2 && List.for_all2 equal_scalar e1 e2 && q1 == q2
  | _ -> false

let add_unique eq x xs = if List.exists (eq x) xs then xs else xs @ [ x ]

let aggs_of_scalar s =
  let rec go acc = function
    | S_const _ | S_col _ -> acc
    | S_binop (_, a, b) -> go (go acc a) b
    | S_neg a -> go acc a
    | S_agg a -> add_unique equal_agg a acc
  in
  go [] s

let aggs_of_pred p =
  let rec go acc = function
    | P_true -> acc
    | P_cmp (_, a, b) ->
      List.fold_left (fun acc x -> add_unique equal_agg x acc) acc
        (aggs_of_scalar a @ aggs_of_scalar b)
    | P_and (a, b) | P_or (a, b) -> go (go acc a) b
    | P_not a -> go acc a
    | P_in (es, _) ->
      List.fold_left
        (fun acc e ->
          List.fold_left (fun acc x -> add_unique equal_agg x acc) acc (aggs_of_scalar e))
        acc es
  in
  go [] p

let cols_of_scalar s =
  let rec go acc = function
    | S_const _ -> acc
    | S_col (q, n) -> add_unique ( = ) (q, n) acc
    | S_binop (_, a, b) -> go (go acc a) b
    | S_neg a -> go acc a
    | S_agg a ->
      (match a with
       | A_count_star -> acc
       | A_count x | A_count_distinct x | A_sum x | A_min x | A_max x | A_avg x ->
         go acc x)
  in
  go [] s

let cols_of_pred p =
  let rec go acc = function
    | P_true -> acc
    | P_cmp (_, a, b) ->
      List.fold_left (fun acc c -> add_unique ( = ) c acc) acc
        (cols_of_scalar a @ cols_of_scalar b)
    | P_and (a, b) | P_or (a, b) -> go (go acc a) b
    | P_not a -> go acc a
    | P_in (es, _) ->
      List.fold_left
        (fun acc e ->
          List.fold_left (fun acc c -> add_unique ( = ) c acc) acc (cols_of_scalar e))
        acc es
  in
  go [] p

let rec is_agg_free = function
  | S_const _ | S_col _ -> true
  | S_binop (_, a, b) -> is_agg_free a && is_agg_free b
  | S_neg a -> is_agg_free a
  | S_agg _ -> false

let rec map_cols_scalar f = function
  | S_const _ as s -> s
  | S_col (q, n) -> f (q, n)
  | S_binop (op, a, b) -> S_binop (op, map_cols_scalar f a, map_cols_scalar f b)
  | S_neg a -> S_neg (map_cols_scalar f a)
  | S_agg a -> S_agg (map_cols_agg f a)

and map_cols_agg f = function
  | A_count_star -> A_count_star
  | A_count x -> A_count (map_cols_scalar f x)
  | A_count_distinct x -> A_count_distinct (map_cols_scalar f x)
  | A_sum x -> A_sum (map_cols_scalar f x)
  | A_min x -> A_min (map_cols_scalar f x)
  | A_max x -> A_max (map_cols_scalar f x)
  | A_avg x -> A_avg (map_cols_scalar f x)

(* Every base table a query can read, normalized to lowercase: FROM refs
   plus WITH bodies, derived-table and IN-subqueries, minus names bound by
   an enclosing WITH (those are derived, not catalog tables). *)
let tables_of_query q =
  let acc = ref [] in
  let add n =
    let n = String.lowercase_ascii n in
    if not (List.mem n !acc) then acc := n :: !acc
  in
  let rec go_q defined q =
    let defined =
      List.map (fun (n, _) -> String.lowercase_ascii n) q.with_defs @ defined
    in
    List.iter (fun (_, dq) -> go_q defined dq) q.with_defs;
    List.iter
      (function
        | T_table (n, _) ->
          if not (List.mem (String.lowercase_ascii n) defined) then add n
        | T_subquery (sq, _) -> go_q defined sq)
      q.from;
    Option.iter (go_p defined) q.where;
    Option.iter (go_p defined) q.having
  and go_p defined = function
    | P_true | P_cmp _ -> ()
    | P_and (a, b) | P_or (a, b) ->
      go_p defined a;
      go_p defined b
    | P_not a -> go_p defined a
    | P_in (_, sq) -> go_q defined sq
  in
  go_q [] q;
  List.rev !acc

let rec map_cols_pred f = function
  | P_true -> P_true
  | P_cmp (op, a, b) -> P_cmp (op, map_cols_scalar f a, map_cols_scalar f b)
  | P_and (a, b) -> P_and (map_cols_pred f a, map_cols_pred f b)
  | P_or (a, b) -> P_or (map_cols_pred f a, map_cols_pred f b)
  | P_not a -> P_not (map_cols_pred f a)
  | P_in (es, q) -> P_in (List.map (map_cols_scalar f) es, q)
