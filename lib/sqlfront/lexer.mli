(** Hand-rolled SQL lexer.  Keywords are case-insensitive; identifiers keep
    their original case.  [--] comments run to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string * int  (** message, character offset *)

val tokenize : string -> token array
val token_to_string : token -> string
