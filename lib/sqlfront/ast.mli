(** Abstract syntax for the SQL subset of the paper's queries: single- or
    multi-block SELECT with WITH (CTEs), self-joins, GROUP BY / HAVING,
    IN-subqueries, the aggregates of Table 2, and arithmetic. *)

type scalar =
  | S_const of Relalg.Value.t
  | S_col of string option * string  (** qualifier, column *)
  | S_binop of Relalg.Expr.binop * scalar * scalar
  | S_neg of scalar
  | S_agg of agg

and agg =
  | A_count_star
  | A_count of scalar
  | A_count_distinct of scalar
  | A_sum of scalar
  | A_min of scalar
  | A_max of scalar
  | A_avg of scalar

type pred =
  | P_true
  | P_cmp of Relalg.Expr.cmp * scalar * scalar
  | P_and of pred * pred
  | P_or of pred * pred
  | P_not of pred
  | P_in of scalar list * query  (** (e1, …, ek) IN (subquery) *)

and select_item =
  | Sel_star
  | Sel_expr of scalar * string option  (** expr, alias *)

and table_ref =
  | T_table of string * string option  (** table, alias *)
  | T_subquery of query * string

and query = {
  with_defs : (string * query) list;
  distinct : bool;
  select : select_item list;
  from : table_ref list;
  where : pred option;
  group_by : (string option * string) list;
  having : pred option;
  order_by : (scalar * [ `Asc | `Desc ]) list;
  limit : int option;
}

val simple_select :
  ?with_defs:(string * query) list ->
  ?distinct:bool ->
  ?where:pred ->
  ?group_by:(string option * string) list ->
  ?having:pred ->
  ?order_by:(scalar * [ `Asc | `Desc ]) list ->
  ?limit:int ->
  select_item list ->
  table_ref list ->
  query

val col : ?q:string -> string -> scalar
val icst : int -> scalar

(** Conjunction of a predicate list ([P_true] when empty). *)
val conj : pred list -> pred

val conjuncts : pred -> pred list

(** All aggregate subexpressions, left-to-right, duplicates removed. *)
val aggs_of_scalar : scalar -> agg list

val aggs_of_pred : pred -> agg list

(** Columns referenced outside aggregate arguments / inside (both useful to
    the analyzer). *)
val cols_of_scalar : scalar -> (string option * string) list

val cols_of_pred : pred -> (string option * string) list

(** True when the scalar contains no aggregate. *)
val is_agg_free : scalar -> bool

val equal_scalar : scalar -> scalar -> bool
val equal_agg : agg -> agg -> bool
val equal_pred : pred -> pred -> bool

(** Map column references (qualifier, name) everywhere, including inside
    subqueries of [P_in]. *)
val map_cols_scalar : (string option * string -> scalar) -> scalar -> scalar

val map_cols_pred : (string option * string -> scalar) -> pred -> pred

val tables_of_query : query -> string list
(** Every base table the query can read, normalized to lowercase — FROM
    refs plus WITH bodies, derived-table and [P_in] subqueries, excluding
    names bound by an enclosing WITH.  The server keys result-cache entries
    on this set so appends to unrelated tables don't evict them. *)
