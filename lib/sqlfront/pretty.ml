open Ast

let binop_str = function
  | Relalg.Expr.Add -> "+"
  | Relalg.Expr.Sub -> "-"
  | Relalg.Expr.Mul -> "*"
  | Relalg.Expr.Div -> "/"

let cmp_str = function
  | Relalg.Expr.Eq -> "="
  | Relalg.Expr.Ne -> "<>"
  | Relalg.Expr.Lt -> "<"
  | Relalg.Expr.Le -> "<="
  | Relalg.Expr.Gt -> ">"
  | Relalg.Expr.Ge -> ">="

let const_str v =
  match v with
  | Relalg.Value.Str s -> "'" ^ s ^ "'"
  | _ -> Relalg.Value.to_string v

let rec scalar = function
  | S_const v -> const_str v
  | S_col (None, n) -> n
  | S_col (Some q, n) -> q ^ "." ^ n
  | S_binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (scalar a) (binop_str op) (scalar b)
  | S_neg a -> Printf.sprintf "(-%s)" (scalar a)
  | S_agg a -> agg a

and agg = function
  | A_count_star -> "COUNT(*)"
  | A_count x -> Printf.sprintf "COUNT(%s)" (scalar x)
  | A_count_distinct x -> Printf.sprintf "COUNT(DISTINCT %s)" (scalar x)
  | A_sum x -> Printf.sprintf "SUM(%s)" (scalar x)
  | A_min x -> Printf.sprintf "MIN(%s)" (scalar x)
  | A_max x -> Printf.sprintf "MAX(%s)" (scalar x)
  | A_avg x -> Printf.sprintf "AVG(%s)" (scalar x)

let rec pred = function
  | P_true -> "TRUE"
  | P_cmp (op, a, b) -> Printf.sprintf "%s %s %s" (scalar a) (cmp_str op) (scalar b)
  | P_and (a, b) -> Printf.sprintf "(%s AND %s)" (pred a) (pred b)
  | P_or (a, b) -> Printf.sprintf "(%s OR %s)" (pred a) (pred b)
  | P_not a -> Printf.sprintf "NOT (%s)" (pred a)
  | P_in (es, q) ->
    Printf.sprintf "(%s) IN (%s)" (String.concat ", " (List.map scalar es)) (query q)

and select_item = function
  | Sel_star -> "*"
  | Sel_expr (s, None) -> scalar s
  | Sel_expr (s, Some a) -> scalar s ^ " AS " ^ a

and table_ref = function
  | T_table (n, None) -> n
  | T_table (n, Some a) -> n ^ " " ^ a
  | T_subquery (q, a) -> "(" ^ query q ^ ") " ^ a

and query q =
  let b = Buffer.create 128 in
  if q.with_defs <> [] then begin
    Buffer.add_string b "WITH ";
    Buffer.add_string b
      (String.concat ", "
         (List.map (fun (n, def) -> n ^ " AS (" ^ query def ^ ")") q.with_defs));
    Buffer.add_char b ' '
  end;
  Buffer.add_string b "SELECT ";
  if q.distinct then Buffer.add_string b "DISTINCT ";
  Buffer.add_string b (String.concat ", " (List.map select_item q.select));
  Buffer.add_string b " FROM ";
  Buffer.add_string b (String.concat ", " (List.map table_ref q.from));
  (match q.where with
   | None -> ()
   | Some p -> Buffer.add_string b (" WHERE " ^ pred p));
  if q.group_by <> [] then begin
    let gb =
      List.map (function None, n -> n | Some qq, n -> qq ^ "." ^ n) q.group_by
    in
    Buffer.add_string b (" GROUP BY " ^ String.concat ", " gb)
  end;
  (match q.having with
   | None -> ()
   | Some p -> Buffer.add_string b (" HAVING " ^ pred p));
  if q.order_by <> [] then begin
    let ob =
      List.map
        (fun (s, d) -> scalar s ^ match d with `Asc -> " ASC" | `Desc -> " DESC")
        q.order_by
    in
    Buffer.add_string b (" ORDER BY " ^ String.concat ", " ob)
  end;
  (match q.limit with
   | None -> ()
   | Some n -> Buffer.add_string b (Printf.sprintf " LIMIT %d" n));
  Buffer.contents b
