open Ast

exception Parse_error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let save st = st.pos
let restore st p = st.pos <- p

let error st msg =
  let t = peek st in
  raise
    (Parse_error
       (Printf.sprintf "%s at token %d (%S)" msg st.pos (Lexer.token_to_string t)))

let expect st tok msg = if peek st = tok then advance st else error st msg

let is_kw t kw =
  match t with
  | Lexer.IDENT s -> String.uppercase_ascii s = kw
  | _ -> false

let accept_kw st kw =
  if is_kw (peek st) kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw = if not (accept_kw st kw) then error st ("expected " ^ kw)

let reserved =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "AND"; "OR"; "NOT"; "IN"; "AS"; "ON"; "ASC"; "DESC"; "WITH"; "DISTINCT";
    "UNION"; "ALL"; "TRUE"; "FALSE"; "NULL"; "JOIN"; "INNER"; "LEFT"; "RIGHT" ]

let is_reserved s = List.mem (String.uppercase_ascii s) reserved

let agg_keywords = [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ]

(* ---- scalars ---- *)

let rec parse_scalar_expr st =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (S_binop (Relalg.Expr.Add, acc, parse_term st))
    | Lexer.MINUS ->
      advance st;
      loop (S_binop (Relalg.Expr.Sub, acc, parse_term st))
    | _ -> acc
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (S_binop (Relalg.Expr.Mul, acc, parse_factor st))
    | Lexer.SLASH ->
      advance st;
      loop (S_binop (Relalg.Expr.Div, acc, parse_factor st))
    | _ -> acc
  in
  loop lhs

and parse_factor st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    S_const (Relalg.Value.Int i)
  | Lexer.FLOAT f ->
    advance st;
    S_const (Relalg.Value.Float f)
  | Lexer.STRING s ->
    advance st;
    S_const (Relalg.Value.Str s)
  | Lexer.MINUS ->
    advance st;
    S_neg (parse_factor st)
  | Lexer.LPAREN ->
    advance st;
    let s = parse_scalar_expr st in
    expect st Lexer.RPAREN "expected ) after scalar";
    s
  | Lexer.IDENT id when is_kw (peek st) "TRUE" ->
    ignore id;
    advance st;
    S_const (Relalg.Value.Bool true)
  | Lexer.IDENT _ when is_kw (peek st) "FALSE" ->
    advance st;
    S_const (Relalg.Value.Bool false)
  | Lexer.IDENT _ when is_kw (peek st) "NULL" ->
    advance st;
    S_const Relalg.Value.Null
  | Lexer.IDENT id when List.mem (String.uppercase_ascii id) agg_keywords
                        && st.tokens.(st.pos + 1) = Lexer.LPAREN ->
    parse_agg st
  | Lexer.IDENT id ->
    advance st;
    if peek st = Lexer.DOT then begin
      advance st;
      match next st with
      | Lexer.IDENT col -> S_col (Some id, col)
      | _ -> error st "expected column name after ."
    end
    else S_col (None, id)
  | _ -> error st "expected scalar expression"

and parse_agg st =
  let name =
    match next st with
    | Lexer.IDENT id -> String.uppercase_ascii id
    | _ -> error st "expected aggregate name"
  in
  expect st Lexer.LPAREN "expected ( after aggregate";
  let finish mk =
    let arg = parse_scalar_expr st in
    expect st Lexer.RPAREN "expected ) after aggregate argument";
    S_agg (mk arg)
  in
  match name with
  | "COUNT" ->
    if peek st = Lexer.STAR then begin
      advance st;
      expect st Lexer.RPAREN "expected ) after COUNT(*";
      S_agg A_count_star
    end
    else if accept_kw st "DISTINCT" then begin
      let arg = parse_scalar_expr st in
      expect st Lexer.RPAREN "expected ) after COUNT(DISTINCT ...";
      S_agg (A_count_distinct arg)
    end
    else if peek st = Lexer.INT 1 then begin
      (* COUNT(1) is treated as COUNT star, as in the Appendix E query *)
      advance st;
      expect st Lexer.RPAREN "expected ) after COUNT(1";
      S_agg A_count_star
    end
    else finish (fun a -> A_count a)
  | "SUM" -> finish (fun a -> A_sum a)
  | "MIN" -> finish (fun a -> A_min a)
  | "MAX" -> finish (fun a -> A_max a)
  | "AVG" -> finish (fun a -> A_avg a)
  | _ -> error st "unknown aggregate"

(* ---- predicates ---- *)

let cmp_of_token = function
  | Lexer.EQ -> Some Relalg.Expr.Eq
  | Lexer.NE -> Some Relalg.Expr.Ne
  | Lexer.LT -> Some Relalg.Expr.Lt
  | Lexer.LE -> Some Relalg.Expr.Le
  | Lexer.GT -> Some Relalg.Expr.Gt
  | Lexer.GE -> Some Relalg.Expr.Ge
  | _ -> None

let rec parse_pred_expr st =
  let lhs = parse_and_pred st in
  let rec loop acc =
    if accept_kw st "OR" then loop (P_or (acc, parse_and_pred st)) else acc
  in
  loop lhs

and parse_and_pred st =
  let lhs = parse_not_pred st in
  let rec loop acc =
    if accept_kw st "AND" then loop (P_and (acc, parse_not_pred st)) else acc
  in
  loop lhs

and parse_not_pred st =
  if accept_kw st "NOT" then P_not (parse_not_pred st) else parse_primary_pred st

and parse_primary_pred st =
  if is_kw (peek st) "TRUE" then begin
    advance st;
    P_true
  end
  else if peek st = Lexer.LPAREN then begin
    (* Could be: a tuple for IN, a parenthesized predicate, or a scalar. *)
    let p0 = save st in
    match try_tuple_in st with
    | Some p -> p
    | None ->
      restore st p0;
      (match try_paren_pred st with
       | Some p -> p
       | None ->
         restore st p0;
         parse_comparison st)
  end
  else parse_comparison st

and try_tuple_in st =
  try
    expect st Lexer.LPAREN "(";
    let rec items acc =
      let s = parse_scalar_expr st in
      if peek st = Lexer.COMMA then begin
        advance st;
        items (s :: acc)
      end
      else List.rev (s :: acc)
    in
    let es = items [] in
    expect st Lexer.RPAREN ")";
    if not (accept_kw st "IN") then raise (Parse_error "not tuple-in");
    expect st Lexer.LPAREN "expected ( after IN";
    let q = parse_query st in
    expect st Lexer.RPAREN "expected ) after IN subquery";
    Some (P_in (es, q))
  with Parse_error _ -> None

and try_paren_pred st =
  try
    expect st Lexer.LPAREN "(";
    let p = parse_pred_expr st in
    expect st Lexer.RPAREN ")";
    (* If a comparison or arithmetic operator follows, the parentheses were
       grouping a scalar, not a predicate. *)
    (match peek st with
     | Lexer.EQ | Lexer.NE | Lexer.LT | Lexer.LE | Lexer.GT | Lexer.GE
     | Lexer.PLUS | Lexer.MINUS | Lexer.STAR | Lexer.SLASH ->
       raise (Parse_error "scalar parentheses")
     | _ -> ());
    Some p
  with Parse_error _ -> None

and parse_comparison st =
  let lhs = parse_scalar_expr st in
  if accept_kw st "IN" then begin
    expect st Lexer.LPAREN "expected ( after IN";
    let q = parse_query st in
    expect st Lexer.RPAREN "expected ) after IN subquery";
    P_in ([ lhs ], q)
  end
  else
    match cmp_of_token (peek st) with
    | Some op ->
      advance st;
      let rhs = parse_scalar_expr st in
      P_cmp (op, lhs, rhs)
    | None -> error st "expected comparison operator"

(* ---- queries ---- *)

and parse_query st =
  let with_defs =
    if accept_kw st "WITH" then begin
      let rec defs acc =
        let name =
          match next st with
          | Lexer.IDENT id -> id
          | _ -> error st "expected CTE name"
        in
        expect_kw st "AS";
        expect st Lexer.LPAREN "expected ( after AS";
        let q = parse_query st in
        expect st Lexer.RPAREN "expected ) after CTE body";
        let acc = (name, q) :: acc in
        if peek st = Lexer.COMMA then begin
          advance st;
          defs acc
        end
        else List.rev acc
      in
      defs []
    end
    else []
  in
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let select = parse_select_items st in
  expect_kw st "FROM";
  let from = parse_table_refs st in
  let where = if accept_kw st "WHERE" then Some (parse_pred_expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      parse_col_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_pred_expr st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec keys acc =
        let s = parse_scalar_expr st in
        let dir =
          if accept_kw st "DESC" then `Desc
          else begin
            ignore (accept_kw st "ASC");
            `Asc
          end
        in
        let acc = (s, dir) :: acc in
        if peek st = Lexer.COMMA then begin
          advance st;
          keys acc
        end
        else List.rev acc
      in
      keys []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match next st with
      | Lexer.INT n -> Some n
      | _ -> error st "expected integer after LIMIT"
    else None
  in
  { with_defs; distinct; select; from; where; group_by; having; order_by; limit }

and parse_select_items st =
  let parse_item () =
    if peek st = Lexer.STAR then begin
      advance st;
      Sel_star
    end
    else begin
      let s = parse_scalar_expr st in
      let alias =
        if accept_kw st "AS" then
          match next st with
          | Lexer.IDENT id -> Some id
          | _ -> error st "expected alias after AS"
        else
          match peek st with
          | Lexer.IDENT id when not (is_reserved id) ->
            advance st;
            Some id
          | _ -> None
      in
      Sel_expr (s, alias)
    end
  in
  let rec items acc =
    let i = parse_item () in
    if peek st = Lexer.COMMA then begin
      advance st;
      items (i :: acc)
    end
    else List.rev (i :: acc)
  in
  items []

and parse_table_refs st =
  let parse_ref () =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let q = parse_query st in
      expect st Lexer.RPAREN "expected ) after subquery";
      ignore (accept_kw st "AS");
      match next st with
      | Lexer.IDENT id -> T_subquery (q, id)
      | _ -> error st "expected alias after subquery"
    end
    else
      match next st with
      | Lexer.IDENT name ->
        let alias =
          if accept_kw st "AS" then
            match next st with
            | Lexer.IDENT id -> Some id
            | _ -> error st "expected alias after AS"
          else
            match peek st with
            | Lexer.IDENT id when not (is_reserved id) ->
              advance st;
              Some id
            | _ -> None
        in
        T_table (name, alias)
      | _ -> error st "expected table name or subquery"
  in
  let rec refs acc =
    let r = parse_ref () in
    if peek st = Lexer.COMMA then begin
      advance st;
      refs (r :: acc)
    end
    else List.rev (r :: acc)
  in
  refs []

and parse_col_list st =
  let parse_col () =
    match next st with
    | Lexer.IDENT a ->
      if peek st = Lexer.DOT then begin
        advance st;
        match next st with
        | Lexer.IDENT b -> (Some a, b)
        | _ -> error st "expected column after ."
      end
      else (None, a)
    | _ -> error st "expected column"
  in
  let rec cols acc =
    let c = parse_col () in
    if peek st = Lexer.COMMA then begin
      advance st;
      cols (c :: acc)
    end
    else List.rev (c :: acc)
  in
  cols []

let run_parser f input =
  let st = { tokens = Lexer.tokenize input; pos = 0 } in
  let result = f st in
  if peek st = Lexer.SEMI then advance st;
  if peek st <> Lexer.EOF then error st "trailing tokens after statement";
  result

let parse input = run_parser parse_query input
let parse_pred input = run_parser parse_pred_expr input
let parse_scalar input = run_parser parse_scalar_expr input
