open Relalg
open Ast

exception Bind_error of string

let err fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

type env = {
  catalog : Catalog.t;
  workers : int;
  join_pref : [ `Hash | `Merge ];
  ctes : (string * Relation.t) list;
}

let find_cte env name =
  List.find_opt (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name) env.ctes
  |> Option.map snd

(* ---- scalar conversion ---- *)

let rec scalar_expr_env env s =
  match s with
  | S_const v -> Expr.Const v
  | S_col (q, n) -> Expr.Col (Schema.col ?q n)
  | S_binop (op, a, b) -> Expr.Binop (op, scalar_expr_env env a, scalar_expr_env env b)
  | S_neg a -> Expr.Neg (scalar_expr_env env a)
  | S_agg _ -> err "aggregate not allowed in this context"

and pred_expr_env env p =
  match p with
  | P_true -> Expr.tt
  | P_cmp (op, a, b) -> Expr.Cmp (op, scalar_expr_env env a, scalar_expr_env env b)
  | P_and (a, b) -> Expr.And (pred_expr_env env a, pred_expr_env env b)
  | P_or (a, b) -> Expr.Or (pred_expr_env env a, pred_expr_env env b)
  | P_not a -> Expr.Not (pred_expr_env env a)
  | P_in (es, q) ->
    let sub = run_env env q in
    if List.length es <> Schema.arity sub.Relation.schema then
      err "IN: arity mismatch between tuple and subquery";
    Expr.In_set (List.map (scalar_expr_env env) es, Expr.row_set_of (Array.to_list (Relation.rows sub)))

and agg_func_env env = function
  | A_count_star -> Agg.Count_star
  | A_count s -> Agg.Count (scalar_expr_env env s)
  | A_count_distinct s -> Agg.Count_distinct (scalar_expr_env env s)
  | A_sum s -> Agg.Sum (scalar_expr_env env s)
  | A_min s -> Agg.Min (scalar_expr_env env s)
  | A_max s -> Agg.Max (scalar_expr_env env s)
  | A_avg s -> Agg.Avg (scalar_expr_env env s)

(* ---- FROM items and join planning ---- *)

and from_item env ref_ =
  match ref_ with
  | T_table (name, alias) ->
    let a = Option.value alias ~default:name in
    (match find_cte env name with
     | Some rel -> (Plan.Values { name = a; rel }, a)
     | None ->
       if not (Catalog.mem env.catalog name) then err "unknown table %s" name;
       (Plan.Scan { table = name; alias = Some a; filter = None }, a))
  | T_subquery (q, alias) -> (Plan.Rename (alias, bind_env env q), alias)

and cols_covered schema cols =
  List.for_all (fun (q, n) -> Schema.mem schema (Schema.col ?q n)) cols

(* Try to turn a conjunct into an index bound on a base-table column of the
   right side: returns (key column name, lo bound, hi bound). *)
and index_bound_of_conjunct env ~left_schema ~table ~alias conjunct =
  match conjunct with
  | P_cmp (op, a, b) ->
    let tbl = Catalog.find env.catalog table in
    let is_right_col s =
      match s with
      | S_col (q, n) ->
        let qok = match q with None -> true | Some q -> String.equal q alias in
        if qok && Schema.mem tbl.Catalog.rel.Relation.schema (Schema.col n) then Some n
        else None
      | _ -> None
    in
    let left_only s = cols_covered left_schema (cols_of_scalar s) in
    let attempt col_name other op =
      match Catalog.sorted_index_on tbl col_name with
      | None -> None
      | Some _ ->
        let bound = scalar_expr_env env other in
        (match op with
         | Expr.Le -> Some (col_name, None, Some (bound, `Inclusive))
         | Expr.Lt -> Some (col_name, None, Some (bound, `Strict))
         | Expr.Ge -> Some (col_name, Some (bound, `Inclusive), None)
         | Expr.Gt -> Some (col_name, Some (bound, `Strict), None)
         | Expr.Eq -> Some (col_name, Some (bound, `Inclusive), Some (bound, `Inclusive))
         | Expr.Ne -> None)
    in
    (match is_right_col a, left_only b, is_right_col b, left_only a with
     | Some n, true, _, _ -> attempt n b op
     | _, _, Some n, true -> attempt n a (Expr.flip_cmp op)
     | _ -> None)
  | _ -> None

and plan_joins env items conjs =
  (* [conjs]: (pred, cols, used-flag ref). Returns plan and leftovers. *)
  match items with
  | [] -> err "empty FROM"
  | (first, _) :: rest ->
    let used = Array.make (List.length conjs) false in
    let conjs = Array.of_list conjs in
    let take_available schema =
      let avail = ref [] in
      Array.iteri
        (fun i (p, cols) ->
          if (not used.(i)) && cols_covered schema cols then begin
            used.(i) <- true;
            avail := p :: !avail
          end)
        conjs;
      List.rev !avail
    in
    (* Single-item filters for the first item. *)
    let schema0 = Plan.schema_of env.catalog first in
    let filters0 = take_available schema0 in
    let plan0 =
      match filters0 with
      | [] -> first
      | ps -> Plan.Filter (Expr.conj (List.map (pred_expr_env env) ps), first)
    in
    let step (acc_plan, acc_schema) (item_plan, _item_alias) =
      let item_schema = Plan.schema_of env.catalog item_plan in
      (* Push single-table filters into the new item first. *)
      let item_filters = take_available item_schema in
      let item_plan =
        match item_filters with
        | [] -> item_plan
        | ps -> Plan.Filter (Expr.conj (List.map (pred_expr_env env) ps), item_plan)
      in
      let combined = Schema.append acc_schema item_schema in
      let avail = take_available combined in
      (* Partition into equi-join keys and the rest. *)
      let keys, residual =
        List.partition_map
          (fun p ->
            match p with
            | P_cmp (Expr.Eq, a, b)
              when is_agg_free a && is_agg_free b
                   && cols_covered acc_schema (cols_of_scalar a)
                   && cols_covered item_schema (cols_of_scalar b) ->
              Left (scalar_expr_env env a, scalar_expr_env env b)
            | P_cmp (Expr.Eq, a, b)
              when is_agg_free a && is_agg_free b
                   && cols_covered acc_schema (cols_of_scalar b)
                   && cols_covered item_schema (cols_of_scalar a) ->
              Left (scalar_expr_env env b, scalar_expr_env env a)
            | p -> Right p)
          avail
      in
      let plan =
        if keys <> [] then begin
          let residual = Expr.conj (List.map (pred_expr_env env) residual) in
          match env.join_pref with
          | `Hash -> Plan.Hash_join { keys; residual; left = acc_plan; right = item_plan }
          | `Merge -> Plan.Merge_join { keys; residual; left = acc_plan; right = item_plan }
        end
        else begin
          (* Look for an index nested-loop opportunity on a bare base table. *)
          let base =
            match item_plan with
            | Plan.Scan { table; alias; filter = None } -> Some (table, Option.value alias ~default:table)
            | _ -> None
          in
          let bound =
            match base with
            | None -> None
            | Some (table, alias) ->
              List.find_map
                (fun c -> index_bound_of_conjunct env ~left_schema:acc_schema ~table ~alias c)
                residual
          in
          match base, bound with
          | Some (table, alias), Some (key_col, lo, hi) ->
            Plan.Index_nl_join
              {
                pred = Expr.conj (List.map (pred_expr_env env) residual);
                left = acc_plan;
                table;
                alias = Some alias;
                key_col;
                lo;
                hi;
              }
          | _ ->
            Plan.Nl_join
              {
                pred = Expr.conj (List.map (pred_expr_env env) avail);
                left = acc_plan;
                right = item_plan;
              }
        end
      in
      (plan, combined)
    in
    let plan, schema = List.fold_left step (plan0, schema0) rest in
    let leftovers = ref [] in
    Array.iteri (fun i (p, _) -> if not used.(i) then leftovers := p :: !leftovers) conjs;
    let plan =
      match !leftovers with
      | [] -> plan
      | ps -> Plan.Filter (Expr.conj (List.map (pred_expr_env env) ps), plan)
    in
    (plan, schema)

(* ---- grouping, having, projection ---- *)

and replace_aggs_scalar mapping s =
  match s with
  | S_const _ | S_col _ -> s
  | S_binop (op, a, b) ->
    S_binop (op, replace_aggs_scalar mapping a, replace_aggs_scalar mapping b)
  | S_neg a -> S_neg (replace_aggs_scalar mapping a)
  | S_agg a ->
    (match List.find_opt (fun (ag, _) -> equal_agg ag a) mapping with
     | Some (_, name) -> S_col (None, name)
     | None -> err "aggregate %s not collected" (Pretty.scalar s))

and replace_aggs_pred mapping p =
  match p with
  | P_true -> P_true
  | P_cmp (op, a, b) ->
    P_cmp (op, replace_aggs_scalar mapping a, replace_aggs_scalar mapping b)
  | P_and (a, b) -> P_and (replace_aggs_pred mapping a, replace_aggs_pred mapping b)
  | P_or (a, b) -> P_or (replace_aggs_pred mapping a, replace_aggs_pred mapping b)
  | P_not a -> P_not (replace_aggs_pred mapping a)
  | P_in _ -> err "IN-subquery not supported in HAVING"

and bind_env env q =
  (* Materialize CTEs in order; later CTEs see earlier ones. *)
  let env =
    List.fold_left
      (fun env (name, def) ->
        let rel = run_env env def in
        { env with ctes = (name, rel) :: env.ctes })
      env q.with_defs
  in
  let items = List.map (from_item env) q.from in
  let conjs =
    match q.where with
    | None -> []
    | Some p -> List.map (fun c -> (c, cols_of_pred c)) (conjuncts p)
  in
  let joined, join_schema = plan_joins env items conjs in
  let select_aggs =
    List.concat_map
      (function Sel_star -> [] | Sel_expr (s, _) -> aggs_of_scalar s)
      q.select
  in
  let having_aggs = match q.having with None -> [] | Some p -> aggs_of_pred p in
  let order_aggs = List.concat_map (fun (s, _) -> aggs_of_scalar s) q.order_by in
  let all_aggs =
    List.fold_left
      (fun acc a -> if List.exists (equal_agg a) acc then acc else acc @ [ a ])
      [] (select_aggs @ having_aggs @ order_aggs)
  in
  let grouped = q.group_by <> [] || all_aggs <> [] in
  let plan, out_schema =
    if not grouped then begin
      (match q.having with
       | Some _ -> err "HAVING without GROUP BY or aggregates"
       | None -> ());
      match q.select with
      | [ Sel_star ] -> (joined, join_schema)
      | items ->
        let outs =
          List.mapi
            (fun i item ->
              match item with
              | Sel_star -> err "SELECT * mixed with other select items"
              | Sel_expr (s, alias) ->
                let e = scalar_expr_env env s in
                let name =
                  match alias, s with
                  | Some a, _ -> Schema.col a
                  | None, S_col (qq, n) ->
                    (* keep the canonical qualified column *)
                    let idx = Schema.index_of join_schema ?q:qq n in
                    Schema.nth join_schema idx
                  | None, _ -> Schema.col (Printf.sprintf "col%d" i)
                in
                (e, name))
            items
        in
        (Plan.Project (outs, joined), Schema.of_cols (List.map snd outs))
    end
    else begin
      (* Grouped (or globally aggregated) query. *)
      let group_cols =
        List.map
          (fun (qq, n) ->
            let idx = Schema.index_of join_schema ?q:qq n in
            let canon = Schema.nth join_schema idx in
            (Expr.Col canon, canon))
          q.group_by
      in
      let agg_mapping =
        List.mapi (fun i a -> (a, Printf.sprintf "__agg%d" i)) all_aggs
      in
      let aggs =
        List.map (fun (a, name) -> (agg_func_env env a, Schema.col name)) agg_mapping
      in
      let gplan = Plan.Group { group_cols; aggs; input = joined } in
      let gschema =
        Schema.of_cols (List.map snd group_cols @ List.map (fun (_, c) -> c) aggs)
      in
      let hplan =
        match q.having with
        | None -> gplan
        | Some p ->
          let p' = replace_aggs_pred agg_mapping p in
          Plan.Filter (pred_expr_env env p', gplan)
      in
      let outs =
        List.mapi
          (fun i item ->
            match item with
            | Sel_star -> err "SELECT * not allowed with GROUP BY"
            | Sel_expr (s, alias) ->
              let s' = replace_aggs_scalar agg_mapping s in
              let e = scalar_expr_env env s' in
              let name =
                match alias, s with
                | Some a, _ -> Schema.col a
                | None, S_col (qq, n) ->
                  let idx = Schema.index_of gschema ?q:qq n in
                  Schema.nth gschema idx
                | None, S_agg _ -> Schema.col (Printf.sprintf "col%d" i)
                | None, _ -> Schema.col (Printf.sprintf "col%d" i)
              in
              (e, name))
          q.select
      in
      (Plan.Project (outs, hplan), Schema.of_cols (List.map snd outs))
    end
  in
  let plan = if q.distinct then Plan.Distinct plan else plan in
  let plan =
    match q.order_by with
    | [] -> plan
    | keys ->
      let agg_mapping =
        List.mapi (fun i a -> (a, Printf.sprintf "__agg%d" i)) all_aggs
      in
      let keys' =
        List.map
          (fun (s, d) ->
            let s' = if grouped then replace_aggs_scalar agg_mapping s else s in
            (scalar_expr_env env s', d))
          keys
      in
      (* SQL sorts conceptually before the final projection: when a key does
         not resolve in the output schema, push the sort below Project. *)
      let resolves_in schema e =
        List.for_all (fun c -> Schema.mem schema c) (Expr.columns e)
      in
      let all_resolve = List.for_all (fun (e, _) -> resolves_in out_schema e) keys' in
      if all_resolve then Plan.Order_by (keys', plan)
      else begin
        match plan with
        | Plan.Project (outs, inner) -> Plan.Project (outs, Plan.Order_by (keys', inner))
        | p -> Plan.Order_by (keys', p)
      end
  in
  match q.limit with None -> plan | Some n -> Plan.Limit (n, plan)

and run_env env q = Exec.run ~workers:env.workers env.catalog (bind_env env q)

let bind ?(workers = 1) ?(join_pref = `Hash) catalog q =
  bind_env { catalog; workers; join_pref; ctes = [] } q

let run ?(workers = 1) ?(join_pref = `Hash) catalog q =
  Exec.run ~workers catalog (bind ~workers ~join_pref catalog q)

let empty_env () =
  { catalog = Catalog.create (); workers = 1; join_pref = `Hash; ctes = [] }

let scalar_expr s = scalar_expr_env (empty_env ()) s

let pred_expr ?(workers = 1) catalog p =
  pred_expr_env { catalog; workers; join_pref = `Hash; ctes = [] } p

let agg_func a = agg_func_env (empty_env ()) a
