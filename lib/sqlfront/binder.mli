(** Compile an AST query to a physical plan over a catalog.

    Planning mirrors the paper's baseline systems: CTEs are materialized
    once; equality join conjuncts become hash joins; inequality joins probe
    a sorted ("BT") index through an index nested-loop when one exists,
    else fall back to nested loop; grouping is hash-based; HAVING is a
    filter applied after aggregation (the plans of Appendix E).

    IN-subqueries are materialized at bind time into hash sets
    ([Relalg.Expr.In_set]), so binding can execute subqueries — callers that
    time queries must time bind + execute together. *)

exception Bind_error of string

(** [join_pref] selects the physical operator for equality joins —
    [`Hash] (default) or [`Merge] (sort-merge, the method the baseline
    systems fall back to when indexes are dropped, §8.1). *)
val bind :
  ?workers:int ->
  ?join_pref:[ `Hash | `Merge ] ->
  Relalg.Catalog.t ->
  Ast.query ->
  Relalg.Plan.t

(** Bind then execute. *)
val run :
  ?workers:int ->
  ?join_pref:[ `Hash | `Merge ] ->
  Relalg.Catalog.t ->
  Ast.query ->
  Relalg.Relation.t

(** Convert an aggregate-free scalar to a row expression.
    Raises [Bind_error] on aggregates. *)
val scalar_expr : Ast.scalar -> Relalg.Expr.t

(** Convert a predicate to a row expression, materializing IN-subqueries
    against the catalog.  Raises [Bind_error] on aggregates. *)
val pred_expr : ?workers:int -> Relalg.Catalog.t -> Ast.pred -> Relalg.Expr.t

val agg_func : Ast.agg -> Relalg.Agg.func
