(** Bounded, thread-safe LRU cache keyed by string, shared by the server's
    plan/result caches and the columnar block cache.  All operations take the
    cache's single mutex; critical sections are O(1) hashtable probes and
    list relinks (plus O(n) for {!retain}'s sweep).

    Capacity is a total *weight* budget.  [put] defaults each entry's weight
    to 1, which recovers plain entry-count semantics; callers caching blocks
    pass the entry's byte size so eviction is byte-bounded. *)

type 'a t

val create : int -> 'a t
(** [create capacity]: maximum total weight, clamped to ≥ 1. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes recency.  Hit/miss tallies feed {!stats}. *)

val put : ?weight:int -> 'a t -> string -> 'a -> unit
(** Insert or overwrite (weight defaults to 1, clamped to ≥ 1).  While the
    total weight exceeds capacity, least-recently-used entries are evicted —
    except the entry just written, which is always retained so an oversized
    single entry still caches. *)

val remove : 'a t -> string -> unit

val retain : 'a t -> (string -> 'a -> bool) -> int
(** Drop every entry failing the predicate (explicit invalidation); returns
    how many were dropped. *)

val clear : 'a t -> unit
val length : 'a t -> int

val weight : 'a t -> int
(** Current total weight of resident entries. *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_len : int;
  s_weight : int;
}

val stats : 'a t -> stats
