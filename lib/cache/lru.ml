(* Bounded, thread-safe LRU keyed by string.  One mutex per cache: every
   operation is a handful of hashtable probes and pointer swaps, so the
   critical sections are tiny next to query execution.  Recency is an
   intrusive doubly-linked list — [find] unlinks the node and re-links it at
   the head; [put] evicts from the tail while the weight budget is exceeded.

   Capacity is a total weight rather than an entry count: the block cache
   weighs entries by compressed byte size, while the server's plan/result
   caches use the default weight of 1 per entry (count semantics). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable weight : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;  (* max total weight *)
  mu : Mutex.t;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable total : int;  (* sum of resident weights *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create capacity =
  {
    capacity = max 1 capacity;
    mu = Mutex.create ();
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    total = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

(* Evict tail entries until the budget holds, but never [keep]: a single
   entry heavier than the whole cache still gets to live (alone). *)
let evict_over t ~keep =
  let continue_ = ref true in
  while t.total > t.capacity && !continue_ do
    match t.tail with
    | Some lru when lru != keep ->
      unlink t lru;
      Hashtbl.remove t.tbl lru.key;
      t.total <- t.total - lru.weight;
      t.evictions <- t.evictions + 1
    | _ -> continue_ := false
  done

let put ?(weight = 1) t key value =
  let weight = max 1 weight in
  locked t (fun () ->
      let n =
        match Hashtbl.find_opt t.tbl key with
        | Some n ->
          n.value <- value;
          t.total <- t.total - n.weight + weight;
          n.weight <- weight;
          unlink t n;
          push_front t n;
          n
        | None ->
          let n = { key; value; weight; prev = None; next = None } in
          Hashtbl.add t.tbl key n;
          t.total <- t.total + weight;
          push_front t n;
          n
      in
      evict_over t ~keep:n)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl key;
        t.total <- t.total - n.weight
      | None -> ())

(* Drop every entry failing [keep] (explicit invalidation sweeps). *)
let retain t keep =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold (fun k n acc -> if keep k n.value then acc else n :: acc) t.tbl []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.tbl n.key;
          t.total <- t.total - n.weight)
        doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None;
      t.total <- 0)

let length t = locked t (fun () -> Hashtbl.length t.tbl)
let weight t = locked t (fun () -> t.total)

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_len : int;
  s_weight : int;
}

let stats t =
  locked t (fun () ->
      {
        s_hits = t.hits;
        s_misses = t.misses;
        s_evictions = t.evictions;
        s_len = Hashtbl.length t.tbl;
        s_weight = t.total;
      })
