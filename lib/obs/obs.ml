(* Unified observability: named metrics every operator reports into, and a
   span tracer for the query lifecycle (DESIGN.md §9).

   Counters are sharded per domain: each domain that touches a counter gets
   its own cell through domain-local storage, so the increment on the
   parallel NLJP hot path touches a cell no other domain writes.  Cells are
   atomic — an increment is an uncontended fetch-and-add — so concurrent
   sys-threads on one domain (the server's connection handlers) and
   cross-domain [read]/[reset] are race-free; after a [Domain.join] every
   worker write is visible, so totals are deterministic.  [SI_OBS=0] turns
   every increment into a no-op (the zero-overhead ablation switch). *)

let enabled =
  match Sys.getenv_opt "SI_OBS" with
  | Some ("0" | "false" | "off") -> false
  | _ -> true

module Metrics = struct
  type counter = {
    c_name : string;
    c_mu : Mutex.t;  (* guards [c_cells]; never held on the increment path *)
    c_cells : int Atomic.t list ref;
    c_key : int Atomic.t Domain.DLS.key;
  }

  type histogram = {
    h_name : string;
    h_mu : Mutex.t;
    h_cells : hcell list ref;
    h_key : hcell Domain.DLS.key;
  }

  (* Power-of-two buckets: bucket 0 is (-inf, 1), bucket i covers
     [2^(i-1), 2^i) for observed values (milliseconds, rows, ...). *)
  and hcell = { mutable hc_n : int; mutable hc_sum : float; hc_buckets : int array }

  let nbuckets = 64
  let registry_mu = Mutex.create ()
  let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
  let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

  let counter name =
    Mutex.lock registry_mu;
    let c =
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
        let c_mu = Mutex.create () in
        let c_cells = ref [] in
        let c_key =
          Domain.DLS.new_key (fun () ->
              let r = Atomic.make 0 in
              Mutex.lock c_mu;
              c_cells := r :: !c_cells;
              Mutex.unlock c_mu;
              r)
        in
        let c = { c_name = name; c_mu; c_cells; c_key } in
        Hashtbl.add counters_tbl name c;
        c
    in
    Mutex.unlock registry_mu;
    c

  let add c n =
    if enabled && n <> 0 then begin
      let r = Domain.DLS.get c.c_key in
      ignore (Atomic.fetch_and_add r n)
    end

  let incr c = add c 1

  let read c =
    Mutex.lock c.c_mu;
    let total = List.fold_left (fun acc r -> acc + Atomic.get r) 0 !(c.c_cells) in
    Mutex.unlock c.c_mu;
    total

  let reset c =
    Mutex.lock c.c_mu;
    List.iter (fun r -> Atomic.set r 0) !(c.c_cells);
    Mutex.unlock c.c_mu

  let name c = c.c_name

  let histogram name =
    Mutex.lock registry_mu;
    let h =
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
        let h_mu = Mutex.create () in
        let h_cells = ref [] in
        let h_key =
          Domain.DLS.new_key (fun () ->
              let cell =
                { hc_n = 0; hc_sum = 0.; hc_buckets = Array.make nbuckets 0 }
              in
              Mutex.lock h_mu;
              h_cells := cell :: !h_cells;
              Mutex.unlock h_mu;
              cell)
        in
        let h = { h_name = name; h_mu; h_cells; h_key } in
        Hashtbl.add histograms_tbl name h;
        h
    in
    Mutex.unlock registry_mu;
    h

  let bucket_of v =
    let rec go i x = if x < 1. || i = nbuckets - 1 then i else go (i + 1) (x /. 2.) in
    if Float.is_nan v then 0 else go 0 v

  let observe h v =
    if enabled then begin
      let cell = Domain.DLS.get h.h_key in
      cell.hc_n <- cell.hc_n + 1;
      cell.hc_sum <- cell.hc_sum +. v;
      let b = bucket_of v in
      cell.hc_buckets.(b) <- cell.hc_buckets.(b) + 1
    end

  type hist_summary = { hs_name : string; hs_count : int; hs_sum : float; hs_buckets : int array }

  (* Estimated value at quantile [q] of a merged power-of-two bucket array
     holding [n] observations: walk the cumulative counts to the target
     rank, then interpolate linearly inside the landing bucket's value
     range ([0,1) for bucket 0, [2^(i-1), 2^i) otherwise).  The estimate
     is within a factor of 2 of the true order statistic by construction
     — the price of constant-space histograms. *)
  let quantile_of_buckets buckets n q =
    if n <= 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let target = Float.max 1. (q *. float_of_int n) in
      let nb = Array.length buckets in
      let rec go i cum =
        if i >= nb then ldexp 1. (nb - 1)
        else begin
          let c = buckets.(i) in
          if c > 0 && float_of_int (cum + c) >= target then begin
            let lo = if i = 0 then 0. else ldexp 1. (i - 1) in
            let hi = ldexp 1. i in
            let frac = (target -. float_of_int cum) /. float_of_int c in
            lo +. ((hi -. lo) *. frac)
          end
          else go (i + 1) (cum + c)
        end
      in
      go 0 0
    end

  let hist_quantile hs q = quantile_of_buckets hs.hs_buckets hs.hs_count q

  let hist_read h =
    Mutex.lock h.h_mu;
    let merged = Array.make nbuckets 0 in
    let n = ref 0 and sum = ref 0. in
    List.iter
      (fun cell ->
        n := !n + cell.hc_n;
        sum := !sum +. cell.hc_sum;
        Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) cell.hc_buckets)
      !(h.h_cells);
    Mutex.unlock h.h_mu;
    { hs_name = h.h_name; hs_count = !n; hs_sum = !sum; hs_buckets = merged }

  let hist_reset h =
    Mutex.lock h.h_mu;
    List.iter
      (fun cell ->
        cell.hc_n <- 0;
        cell.hc_sum <- 0.;
        Array.fill cell.hc_buckets 0 nbuckets 0)
      !(h.h_cells);
    Mutex.unlock h.h_mu

  let snapshot () =
    Mutex.lock registry_mu;
    let names = Hashtbl.fold (fun name _ acc -> name :: acc) counters_tbl [] in
    Mutex.unlock registry_mu;
    List.sort String.compare names
    |> List.map (fun name -> (name, read (counter name)))

  let hist_snapshot () =
    Mutex.lock registry_mu;
    let names = Hashtbl.fold (fun name _ acc -> name :: acc) histograms_tbl [] in
    Mutex.unlock registry_mu;
    List.sort String.compare names |> List.map (fun name -> hist_read (histogram name))

  let reset_all () =
    Mutex.lock registry_mu;
    let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters_tbl [] in
    let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms_tbl [] in
    Mutex.unlock registry_mu;
    List.iter reset cs;
    List.iter hist_reset hs

  (* (name, after - before) for counters that moved between two snapshots;
     bench rows are built from this. *)
  let delta ~before ~after =
    List.filter_map
      (fun (name, v1) ->
        let v0 = match List.assoc_opt name before with Some v -> v | None -> 0 in
        if v1 <> v0 then Some (name, v1 - v0) else None)
      after
end

(* ---- rolling windows ---- *)

(* Windowed view over the same power-of-two buckets: a ring of per-window
   cells, each stamped with the absolute window index (epoch) it holds
   data for.  Writes land in the cell for the current epoch, recycling it
   in place if it still holds an older window's data; reads merge only the
   cells whose epoch falls inside the horizon, so a clock that skips any
   number of windows needs no catch-up work — stale cells are simply
   excluded and recycled on their next write.  One mutex per roll: these
   feed request-path telemetry (per query / per append), not operator hot
   loops, so a lock is cheap and keeps torn cells impossible. *)
module Rolling = struct
  type cell = {
    mutable rc_epoch : int;  (* absolute window index the data belongs to *)
    mutable rc_n : int;
    mutable rc_sum : float;
    rc_buckets : int array;
  }

  type t = {
    r_name : string;
    r_window_s : float;
    r_windows : int;  (* ring size; horizon = window_s * windows *)
    r_clock : unit -> float;
    r_mu : Mutex.t;
    r_cells : cell array;
  }

  type snap = {
    rs_name : string;
    rs_window_s : float;
    rs_windows : int;
    rs_count : int;
    rs_sum : float;
    rs_rate : float;  (* events per second over the covered span *)
    rs_p50 : float;
    rs_p90 : float;
    rs_p95 : float;
    rs_p99 : float;
  }

  let registry_mu = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let roll ?(window_s = 10.) ?(windows = 6) ?clock name =
    Mutex.lock registry_mu;
    let r =
      match Hashtbl.find_opt registry name with
      | Some r -> r
      | None ->
        let windows = max 1 windows in
        let r =
          {
            r_name = name;
            r_window_s = (if window_s <= 0. then 1. else window_s);
            r_windows = windows;
            r_clock = (match clock with Some f -> f | None -> Unix.gettimeofday);
            r_mu = Mutex.create ();
            r_cells =
              Array.init windows (fun _ ->
                  { rc_epoch = min_int;
                    rc_n = 0;
                    rc_sum = 0.;
                    rc_buckets = Array.make Metrics.nbuckets 0 });
          }
        in
        Hashtbl.add registry name r;
        r
    in
    Mutex.unlock registry_mu;
    r

  let name r = r.r_name

  (* The cell for the current epoch, recycled in place when it still holds
     an older (or sentinel) epoch.  Caller holds [r_mu]. *)
  let live_cell r =
    let epoch = int_of_float (r.r_clock () /. r.r_window_s) in
    let cell = r.r_cells.(epoch mod r.r_windows) in
    if cell.rc_epoch <> epoch then begin
      cell.rc_epoch <- epoch;
      cell.rc_n <- 0;
      cell.rc_sum <- 0.;
      Array.fill cell.rc_buckets 0 Metrics.nbuckets 0
    end;
    cell

  let observe r v =
    if enabled then begin
      Mutex.lock r.r_mu;
      let cell = live_cell r in
      cell.rc_n <- cell.rc_n + 1;
      cell.rc_sum <- cell.rc_sum +. v;
      let b = Metrics.bucket_of v in
      cell.rc_buckets.(b) <- cell.rc_buckets.(b) + 1;
      Mutex.unlock r.r_mu
    end

  (* Count-only event (a counter-rate feed: qps, appends/s).  Buckets stay
     empty, so quantiles read 0 — only [rs_count]/[rs_rate] are meaningful. *)
  let mark ?(n = 1) r =
    if enabled && n <> 0 then begin
      Mutex.lock r.r_mu;
      let cell = live_cell r in
      cell.rc_n <- cell.rc_n + n;
      Mutex.unlock r.r_mu
    end

  let read r =
    Mutex.lock r.r_mu;
    let now = r.r_clock () in
    let epoch = int_of_float (now /. r.r_window_s) in
    let merged = Array.make Metrics.nbuckets 0 in
    let n = ref 0 and sum = ref 0. and oldest = ref epoch in
    Array.iter
      (fun c ->
        if c.rc_n > 0 && c.rc_epoch > epoch - r.r_windows && c.rc_epoch <= epoch
        then begin
          n := !n + c.rc_n;
          sum := !sum +. c.rc_sum;
          if c.rc_epoch < !oldest then oldest := c.rc_epoch;
          Array.iteri (fun i x -> merged.(i) <- merged.(i) + x) c.rc_buckets
        end)
      r.r_cells;
    Mutex.unlock r.r_mu;
    (* Rate over the span actually covered — from the start of the oldest
       live window to now — so a roll younger than its horizon doesn't
       dilute the rate with windows that never existed. *)
    let span = now -. (float_of_int !oldest *. r.r_window_s) in
    let rate = if !n = 0 || span <= 0. then 0. else float_of_int !n /. span in
    let q p = Metrics.quantile_of_buckets merged !n p in
    {
      rs_name = r.r_name;
      rs_window_s = r.r_window_s;
      rs_windows = r.r_windows;
      rs_count = !n;
      rs_sum = !sum;
      rs_rate = rate;
      rs_p50 = q 0.5;
      rs_p90 = q 0.9;
      rs_p95 = q 0.95;
      rs_p99 = q 0.99;
    }

  let reset r =
    Mutex.lock r.r_mu;
    Array.iter
      (fun c ->
        c.rc_epoch <- min_int;
        c.rc_n <- 0;
        c.rc_sum <- 0.;
        Array.fill c.rc_buckets 0 Metrics.nbuckets 0)
      r.r_cells;
    Mutex.unlock r.r_mu

  let snapshot_all () =
    Mutex.lock registry_mu;
    let rs = Hashtbl.fold (fun _ r acc -> r :: acc) registry [] in
    Mutex.unlock registry_mu;
    List.sort (fun a b -> String.compare a.r_name b.r_name) rs |> List.map read
end

(* ---- minimal JSON (printer + parser), for trace export/round-trip ---- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let escape_to b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let num_to_string x =
    if not (Float.is_finite x) then "null"  (* JSON has no nan/inf *)
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%d" (int_of_float x)
    else
      (* Shortest representation that parses back to the same float: the
         query server ships result values through this printer, so lossy
         rounding would show up as differential-test divergence. *)
      let s = Printf.sprintf "%.15g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

  let rec to_buf b j =
    match j with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num x -> Buffer.add_string b (num_to_string x)
    | Str s -> escape_to b s
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          to_buf b x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          escape_to b k;
          Buffer.add_string b ": ";
          to_buf b v)
        kvs;
      Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    to_buf b j;
    Buffer.contents b

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let ln = String.length word in
      if !pos + ln <= n && String.sub s !pos ln = word then begin
        pos := !pos + ln;
        v
      end
      else error ("expected " ^ word)
    in
    let add_utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string"
        else begin
          let c = s.[!pos] in
          advance ();
          if c = '"' then Buffer.contents b
          else if c = '\\' then begin
            if !pos >= n then error "unterminated escape";
            let e = s.[!pos] in
            advance ();
            (match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               let read4 () =
                 if !pos + 4 > n then error "bad \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some code -> code
                 | None -> error "bad \\u escape"
               in
               let code = read4 () in
               let code =
                 if code >= 0xD800 && code <= 0xDBFF then begin
                   (* high surrogate: must be followed by \uDC00-\uDFFF *)
                   if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                     pos := !pos + 2;
                     let low = read4 () in
                     if low >= 0xDC00 && low <= 0xDFFF then
                       0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                     else 0xFFFD
                   end
                   else 0xFFFD
                 end
                 else if code >= 0xDC00 && code <= 0xDFFF then 0xFFFD
                 else code
               in
               add_utf8 b code
             | _ -> error "bad escape");
            go ()
          end
          else begin
            Buffer.add_char b c;
            go ()
          end
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> error "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> error "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> error "expected , or }"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> error "expected , or ]"
          in
          Arr (elements [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing input";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* ---- span tracer ---- *)

module Span = struct
  type t = {
    name : string;
    mutable start_s : float;
    mutable dur_ms : float;
    mutable session_id : int option;  (* owning server session, if any *)
    mutable rows_in : int option;
    mutable rows_out : int option;
    mutable est_rows : float option;  (* optimizer cardinality estimate *)
    mutable est_cost : float option;  (* optimizer cost estimate *)
    mutable counters : (string * int) list;  (* insertion order *)
    mutable notes : string list;
    mutable children : t list;  (* reversed; [children] re-reverses *)
  }

  let now () = Unix.gettimeofday ()

  let enter ?parent ?session_id name =
    let s =
      {
        name;
        start_s = now ();
        dur_ms = 0.;
        session_id =
          (match session_id, parent with
           | Some _, _ -> session_id
           | None, Some p -> p.session_id  (* children inherit the slice *)
           | None, None -> None);
        rows_in = None;
        rows_out = None;
        est_rows = None;
        est_cost = None;
        counters = [];
        notes = [];
        children = [];
      }
    in
    (match parent with Some p -> p.children <- s :: p.children | None -> ());
    s

  let set_estimate ?rows ?cost s =
    (match rows with Some _ -> s.est_rows <- rows | None -> ());
    (match cost with Some _ -> s.est_cost <- cost | None -> ())

  let finish ?rows_in ?rows_out s =
    (match rows_in with Some _ -> s.rows_in <- rows_in | None -> ());
    (match rows_out with Some _ -> s.rows_out <- rows_out | None -> ());
    s.dur_ms <- (now () -. s.start_s) *. 1000.

  let set_counter s k v =
    if List.mem_assoc k s.counters then
      s.counters <- List.map (fun (k', v') -> if k' = k then (k', v) else (k', v')) s.counters
    else s.counters <- s.counters @ [ (k, v) ]

  let add_counter s k v =
    let prev = match List.assoc_opt k s.counters with Some x -> x | None -> 0 in
    set_counter s k (prev + v)

  let note s msg = s.notes <- s.notes @ [ msg ]
  let children s = List.rev s.children

  let with_span ?parent ?rows_out name f =
    let s = enter ?parent name in
    match f s with
    | v ->
      finish ?rows_out s;
      v
    | exception e ->
      note s "aborted by exception";
      finish s;
      raise e

  (* EXPLAIN ANALYZE-style tree. *)
  let to_text s =
    let b = Buffer.create 256 in
    let rec go indent s =
      let pad = String.make indent ' ' in
      Buffer.add_string b (Printf.sprintf "%s%s  %.3f ms" pad s.name s.dur_ms);
      (match s.rows_in with
       | Some r -> Buffer.add_string b (Printf.sprintf "  rows_in=%d" r)
       | None -> ());
      (match s.rows_out with
       | Some r -> Buffer.add_string b (Printf.sprintf "  rows_out=%d" r)
       | None -> ());
      (match s.est_rows with
       | Some e -> Buffer.add_string b (Printf.sprintf "  est_rows~%.0f" e)
       | None -> ());
      Buffer.add_char b '\n';
      if s.counters <> [] then begin
        Buffer.add_string b
          (pad ^ "  ["
          ^ String.concat " "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.counters)
          ^ "]\n")
      end;
      List.iter
        (fun n -> Buffer.add_string b (pad ^ "  note: " ^ n ^ "\n"))
        s.notes;
      List.iter (go (indent + 2)) (children s)
    in
    go 0 s;
    Buffer.contents b

  let rec to_json s : Json.t =
    let opt_int = function Some i -> Json.Num (float_of_int i) | None -> Json.Null in
    let opt_num = function Some x -> Json.Num x | None -> Json.Null in
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("ms", Json.Num s.dur_ms);
        ("session_id", opt_int s.session_id);
        ("rows_in", opt_int s.rows_in);
        ("rows_out", opt_int s.rows_out);
        ("est_rows", opt_num s.est_rows);
        ("est_cost", opt_num s.est_cost);
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) s.counters) );
        ("notes", Json.Arr (List.map (fun n -> Json.Str n) s.notes));
        ("children", Json.Arr (List.map to_json (children s)));
      ]

  let rec of_json j =
    let str_field k d = match Json.member k j with Some (Json.Str s) -> s | _ -> d in
    let num_field k =
      match Json.member k j with Some (Json.Num x) -> Some x | _ -> None
    in
    let int_opt k =
      match num_field k with Some x -> Some (int_of_float x) | None -> None
    in
    let counters =
      match Json.member "counters" j with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match v with Json.Num x -> Some (k, int_of_float x) | _ -> None)
          kvs
      | _ -> []
    in
    let notes =
      match Json.member "notes" j with
      | Some (Json.Arr xs) ->
        List.filter_map (function Json.Str s -> Some s | _ -> None) xs
      | _ -> []
    in
    let kids =
      match Json.member "children" j with
      | Some (Json.Arr xs) -> List.rev_map of_json xs
      | _ -> []
    in
    {
      name = str_field "name" "?";
      start_s = 0.;
      dur_ms = (match num_field "ms" with Some x -> x | None -> 0.);
      session_id = int_opt "session_id";
      rows_in = int_opt "rows_in";
      rows_out = int_opt "rows_out";
      est_rows = num_field "est_rows";
      est_cost = num_field "est_cost";
      counters;
      notes;
      children = kids;
    }

  let to_json_string s = Json.to_string (to_json s)
  let of_json_string str = of_json (Json.of_string str)

  (* A trace document: the span tree plus the global metric totals at
     export time (so skipping-effectiveness analysis has both views). *)
  let trace_json s =
    Json.Obj
      [
        ("trace", to_json s);
        ( "metrics",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Num (float_of_int v)))
               (Metrics.snapshot ())) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (h : Metrics.hist_summary) ->
                 ( h.Metrics.hs_name,
                   Json.Obj
                     [
                       ("count", Json.Num (float_of_int h.Metrics.hs_count));
                       ("sum", Json.Num h.Metrics.hs_sum);
                     ] ))
               (Metrics.hist_snapshot ())) );
      ]
end
