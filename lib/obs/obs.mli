(** Unified observability layer (DESIGN.md §9).

    Every operator reports into one registry of named monotonic counters
    and histograms, and query execution is recorded as a tree of spans
    exportable as an [EXPLAIN ANALYZE]-style text tree or JSON.  The layer
    sits below [relalg] and [core] so the columnar scan kernels and the
    NLJP operator share one vocabulary. *)

(** [false] when [SI_OBS] is [0]/[false]/[off]: every increment and
    observation becomes a no-op (the zero-overhead ablation switch).
    Spans are unaffected — tracing is explicit and opt-in at call sites. *)
val enabled : bool

module Metrics : sig
  type counter
  (** A named monotonic counter, sharded per domain: each domain that
      touches it increments a private atomic cell (one uncontended
      fetch-and-add), and {!read} merges the cells.  Concurrent increments
      from sys-threads sharing a domain, and {!read}/{!reset} racing
      writers, are well-defined; totals are deterministic once the writing
      domains have been joined. *)

  (** Find or register the counter with this name (process-global). *)
  val counter : string -> counter

  val add : counter -> int -> unit
  val incr : counter -> unit
  val read : counter -> int
  val reset : counter -> unit
  val name : counter -> string

  type histogram
  (** Power-of-two-bucket histogram with per-domain cells, same sharding
      discipline as counters. *)

  val histogram : string -> histogram
  val observe : histogram -> float -> unit

  type hist_summary = {
    hs_name : string;
    hs_count : int;
    hs_sum : float;
    hs_buckets : int array;
  }

  val hist_read : histogram -> hist_summary
  val hist_reset : histogram -> unit

  (** Estimated value at quantile [q] (clamped to [0,1]) of a power-of-two
      bucket array holding [n] observations: cumulative walk to the target
      rank with linear interpolation inside the landing bucket.  [0.] when
      empty; within a factor of 2 of the true order statistic. *)
  val quantile_of_buckets : int array -> int -> float -> float

  (** [quantile_of_buckets] applied to a {!hist_read} summary. *)
  val hist_quantile : hist_summary -> float -> float

  (** All counters as (name, total), sorted by name. *)
  val snapshot : unit -> (string * int) list

  val hist_snapshot : unit -> hist_summary list
  val reset_all : unit -> unit

  (** Counters that moved between two {!snapshot}s, as (name, increase). *)
  val delta :
    before:(string * int) list -> after:(string * int) list -> (string * int) list
end

(** Rolling-window telemetry: a ring of per-window cells over the same
    power-of-two buckets as {!Metrics} histograms, so p50/p95/qps reflect
    the last [windows * window_s] seconds of traffic rather than process
    lifetime.  Cells are stamped with their absolute window index; a clock
    that skips any number of windows needs no catch-up — stale cells are
    excluded on read and recycled in place on their next write.  Rolls are
    mutex-guarded (they feed request-path telemetry, not operator hot
    loops) and live in a process-global registry keyed by name, separate
    from the cumulative histogram registry. *)
module Rolling : sig
  type t

  (** Find or register the roll with this name.  [window_s] (default 10s),
      [windows] (default 6 — a one-minute horizon) and [clock] (default
      [Unix.gettimeofday], injectable for tests) apply only on first
      registration. *)
  val roll : ?window_s:float -> ?windows:int -> ?clock:(unit -> float) -> string -> t

  val name : t -> string

  (** Record a value (histogram semantics: count, sum and buckets). *)
  val observe : t -> float -> unit

  (** Record [n] count-only events (a counter-rate feed: qps, appends/s);
      buckets stay empty, so only [rs_count]/[rs_rate] are meaningful. *)
  val mark : ?n:int -> t -> unit

  type snap = {
    rs_name : string;
    rs_window_s : float;
    rs_windows : int;
    rs_count : int;  (** observations inside the horizon *)
    rs_sum : float;
    rs_rate : float;
        (** events per second over the covered span: from the start of the
            oldest live window to now, so a roll younger than its horizon
            is not diluted by windows that never existed *)
    rs_p50 : float;
    rs_p90 : float;
    rs_p95 : float;
    rs_p99 : float;
  }

  (** Merge the live cells and estimate quantiles
      ({!Metrics.quantile_of_buckets}). *)
  val read : t -> snap

  val reset : t -> unit

  (** Every registered roll, read, sorted by name. *)
  val snapshot_all : unit -> snap list
end

(** Minimal JSON values with a printer and a parser — enough for trace
    export and its round-trip test, with no external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  val of_string : string -> t
  val member : string -> t -> t option
end

module Span : sig
  type t = {
    name : string;
    mutable start_s : float;
    mutable dur_ms : float;
    mutable session_id : int option;
        (** owning server session: stamped on a session's root spans and
            inherited by children, so one session's EXPLAIN ANALYZE slice
            never reads another's traffic *)
    mutable rows_in : int option;
    mutable rows_out : int option;
    mutable est_rows : float option;  (** optimizer cardinality estimate *)
    mutable est_cost : float option;  (** optimizer cost estimate *)
    mutable counters : (string * int) list;
    mutable notes : string list;
    mutable children : t list;  (** reversed; use {!children} *)
  }

  (** Start a span now; appends to [parent]'s children when given.  The
      span's [session_id] is [session_id] when given, else inherited from
      [parent]. *)
  val enter : ?parent:t -> ?session_id:int -> string -> t

  (** Attach the optimizer's estimated cardinality/cost to the span, so an
      EXPLAIN ANALYZE view can print estimate next to actual. *)
  val set_estimate : ?rows:float -> ?cost:float -> t -> unit

  (** Stamp the duration (and optionally row counts). *)
  val finish : ?rows_in:int -> ?rows_out:int -> t -> unit

  val set_counter : t -> string -> int -> unit
  val add_counter : t -> string -> int -> unit
  val note : t -> string -> unit

  (** Children in creation order. *)
  val children : t -> t list

  (** [with_span name f] runs [f span] between [enter] and [finish];
      exceptions still finish the span (with a note) before re-raising. *)
  val with_span : ?parent:t -> ?rows_out:int -> string -> (t -> 'a) -> 'a

  (** Human [EXPLAIN ANALYZE]-style tree. *)
  val to_text : t -> string

  val to_json : t -> Json.t
  val of_json : Json.t -> t
  val to_json_string : t -> string
  val of_json_string : string -> t

  (** Span tree plus global metric/histogram totals, the [--trace] document. *)
  val trace_json : t -> Json.t
end
