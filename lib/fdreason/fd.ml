module S = Set.Make (String)

type t = { lhs : string list; rhs : string list }

let make lhs rhs = { lhs; rhs }

let to_string fd =
  Printf.sprintf "{%s} -> {%s}"
    (String.concat ", " fd.lhs)
    (String.concat ", " fd.rhs)

let closure fds attrs =
  let rec fixpoint current =
    let next =
      List.fold_left
        (fun acc fd ->
          if List.for_all (fun a -> S.mem a acc) fd.lhs then
            S.union acc (S.of_list fd.rhs)
          else acc)
        current fds
    in
    if S.equal next current then current else fixpoint next
  in
  S.elements (fixpoint (S.of_list attrs))

let implies fds fd =
  let closed = S.of_list (closure fds fd.lhs) in
  List.for_all (fun a -> S.mem a closed) fd.rhs

let superkey fds ~all xs =
  let closed = S.of_list (closure fds xs) in
  List.for_all (fun a -> S.mem a closed) all

let of_equalities ?(constants = []) pairs =
  let eq_fds =
    List.concat_map
      (fun (a, b) -> [ { lhs = [ a ]; rhs = [ b ] }; { lhs = [ b ]; rhs = [ a ] } ])
      pairs
  in
  let const_fds = List.map (fun a -> { lhs = []; rhs = [ a ] }) constants in
  eq_fds @ const_fds

let qualify f fds =
  List.map (fun fd -> { lhs = List.map f fd.lhs; rhs = List.map f fd.rhs }) fds

let project fds attrs =
  let attr_set = S.of_list attrs in
  let keep_attrs xs = List.filter (fun a -> S.mem a attr_set) xs in
  List.filter_map
    (fun fd ->
      if List.for_all (fun a -> S.mem a attr_set) fd.lhs then begin
        let rhs = keep_attrs (closure fds fd.lhs) in
        let rhs = List.filter (fun a -> not (List.mem a fd.lhs)) rhs in
        if rhs = [] then None else Some { fd with rhs }
      end
      else None)
    fds
