(** Functional-dependency reasoning over abstract string attributes.

    Used for every schema-based safety check in the paper: Theorem 2's
    superkey and [G_L → J_L] conditions, Theorem 3's [G_L → A_L], the
    memoization conditions of §6, and Appendix D's inference of dependencies
    that hold in a join result (equality predicates contribute X = Y as the
    pair of FDs X → Y, Y → X; equality with a constant contributes ∅ → X). *)

type t = { lhs : string list; rhs : string list }

val make : string list -> string list -> t
val to_string : t -> string

(** Attribute-set closure X⁺ under the given FDs. *)
val closure : t list -> string list -> string list

(** [implies fds fd]: does the set entail [fd]? *)
val implies : t list -> t -> bool

(** [superkey fds ~all xs]: X⁺ ⊇ all. *)
val superkey : t list -> all:string list -> string list -> bool

(** FDs contributed by equality predicates in a join/selection condition:
    each [(a, b)] pair yields a → b and b → a; each constant-bound
    attribute yields ∅ → a. *)
val of_equalities :
  ?constants:string list -> (string * string) list -> t list

(** Qualify every attribute of every FD, e.g. with a table alias. *)
val qualify : (string -> string) -> t list -> t list

(** Restrict FDs to those expressible over the given attribute set after
    closure-based projection (sound, possibly incomplete beyond what the
    checks need: computes X⁺ ∩ attrs for every X ⊆ attrs appearing as an
    LHS). *)
val project : t list -> string list -> t list
