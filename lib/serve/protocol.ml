(* Line-delimited JSON protocol: one request object per line in, one
   response object per line out, correlated by a client-chosen [id] (so a
   client may pipeline requests; responses to a session's queries may come
   back out of order under concurrent workers).

   Requests:
     {"id":N, "op":"ping"}
     {"id":N, "op":"query", "sql":"SELECT ...", "analyze":false}
     {"id":N, "op":"set", "config":{"layout":"column", "workers":2, ...}}
     {"id":N, "op":"append", "table":"t", "rows":[[1,"a"], ...]}
     {"id":N, "op":"stats"}
     {"id":N, "op":"metrics"}
     {"id":N, "op":"shutdown"}

   Responses: {"id":N, "ok":true, ...} or
     {"id":N, "ok":false, "code":"overloaded"|"bad_request"|"error",
      "error":"..."} — [overloaded] is the admission-control backpressure
   signal: the request was rejected without executing and may be retried. *)

open Relalg
module Json = Obs.Json

(* Where a server listens / a client connects. *)
type addr = [ `Unix of string | `Tcp of string * int ]

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* "unix:/path", "tcp:host:port", bare "/path" (unix) or "host:port". *)
let addr_of_string s =
  match String.index_opt s ':' with
  | None -> `Unix s
  | Some i ->
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match scheme with
    | "unix" -> `Unix rest
    | "tcp" ->
      (match String.rindex_opt rest ':' with
      | Some j ->
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        (match int_of_string_opt port with
        | Some p -> `Tcp ((if host = "" then "127.0.0.1" else host), p)
        | None -> invalid_arg ("bad port in address: " ^ s))
      | None -> invalid_arg ("tcp address needs host:port: " ^ s))
    | host ->
      (match int_of_string_opt rest with
      | Some p -> `Tcp (host, p)
      | None -> `Unix s))

type request =
  | Ping
  | Query of { sql : string; analyze : bool }
  | Set of (string * Json.t) list
  | Append of { table : string; rows : Json.t list }
  | Stats
  | Metrics
  | Shutdown

type envelope = { rq_id : int; rq : request }

let value_to_json v =
  match v with
  | Value.Null -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int i -> Json.Num (float_of_int i)
  | Value.Float f -> Json.Num f
  | Value.Str s -> Json.Str s

(* JSON numbers don't distinguish 2 from 2.0; integral numbers decode as
   [Int] (appending float-typed columns with integral values loses the
   float tag — send a fractional part or accept the coercion). *)
let value_of_json j =
  match j with
  | Json.Null -> Value.Null
  | Json.Bool b -> Value.Bool b
  | Json.Num x ->
    if Float.is_integer x && Float.abs x < 1e15 then Value.Int (int_of_float x)
    else Value.Float x
  | Json.Str s -> Value.Str s
  | Json.Arr _ | Json.Obj _ -> invalid_arg "value_of_json: not a scalar"

let relation_to_json ?max_rows rel =
  let cols =
    List.map (fun c -> Json.Str c.Schema.name) (Schema.cols rel.Relation.schema)
  in
  let rows = Relation.rows rel in
  let n = Array.length rows in
  let shown = match max_rows with Some m -> min m n | None -> n in
  let out = ref [] in
  for i = shown - 1 downto 0 do
    out :=
      Json.Arr (Array.to_list (Array.map value_to_json rows.(i))) :: !out
  done;
  [
    ("columns", Json.Arr cols);
    ("rows", Json.Arr !out);
    ("rows_n", Json.Num (float_of_int n));
  ]

let int_member k j =
  match Json.member k j with
  | Some (Json.Num x) -> Some (int_of_float x)
  | _ -> None

let str_member k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let bool_member k j =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let parse_request j =
  let id = Option.value (int_member "id" j) ~default:0 in
  let req =
    match str_member "op" j with
    | Some "ping" -> Ok Ping
    | Some "query" ->
      (match str_member "sql" j with
       | Some sql ->
         Ok (Query { sql; analyze = Option.value (bool_member "analyze" j) ~default:false })
       | None -> Error "query: missing sql")
    | Some "set" ->
      (match Json.member "config" j with
       | Some (Json.Obj kvs) -> Ok (Set kvs)
       | _ -> Error "set: missing config object")
    | Some "append" ->
      (match str_member "table" j, Json.member "rows" j with
       | Some table, Some (Json.Arr rows) -> Ok (Append { table; rows })
       | _ -> Error "append: missing table or rows")
    | Some "stats" -> Ok Stats
    | Some "metrics" -> Ok Metrics
    | Some "shutdown" -> Ok Shutdown
    | Some other -> Error ("unknown op: " ^ other)
    | None -> Error "missing op"
  in
  Result.map (fun rq -> { rq_id = id; rq }) req

let encode_request { rq_id; rq } =
  let base = [ ("id", Json.Num (float_of_int rq_id)) ] in
  let fields =
    match rq with
    | Ping -> [ ("op", Json.Str "ping") ]
    | Query { sql; analyze } ->
      [ ("op", Json.Str "query"); ("sql", Json.Str sql) ]
      @ if analyze then [ ("analyze", Json.Bool true) ] else []
    | Set kvs -> [ ("op", Json.Str "set"); ("config", Json.Obj kvs) ]
    | Append { table; rows } ->
      [ ("op", Json.Str "append"); ("table", Json.Str table); ("rows", Json.Arr rows) ]
    | Stats -> [ ("op", Json.Str "stats") ]
    | Metrics -> [ ("op", Json.Str "metrics") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
  in
  Json.Obj (base @ fields)

let response ~id ~ok fields =
  Json.Obj (("id", Json.Num (float_of_int id)) :: ("ok", Json.Bool ok) :: fields)

let response_ok ~id fields = response ~id ~ok:true fields

let response_error ~id ~code msg =
  response ~id ~ok:false [ ("code", Json.Str code); ("error", Json.Str msg) ]
