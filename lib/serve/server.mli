(** The always-on multi-session query server (DESIGN.md §12).

    One process owns the catalogs; clients hold sessions over a
    line-delimited JSON protocol ({!Protocol}).  A sys-thread per
    connection parses requests and answers control operations inline;
    queries and appends go through a bounded job queue drained by a fixed
    pool of worker domains, with submission past the queue's high-water
    mark rejected immediately ([overloaded] — admission control by
    backpressure).  Catalog access is readers/writer: plain queries run
    concurrently, appends and CTE-bearing queries run exclusively.

    Two shared cache tiers front execution, both keyed by normalized query
    text plus the session's execution config (layout, workers, transfer,
    tech): a plan cache of {!Core.Runner.prepared} statements and a result
    cache whose entries carry their delta epoch (the tables read and their
    {!Relalg.Catalog.stamp}s).  Appends are O(delta) (delta-block append,
    all layout catalogs in lockstep, all-or-nothing validation) and
    maintain both tiers instead of evicting them: plans refresh in place
    ({!Core.Runner.refresh_prepared}), result entries for unrelated tables
    survive untouched, and entries with §6 algebraic partial state
    ({!Core.Delta}) are folded forward or revalidated — only entries
    without a delta rule drop and recompute on next demand. *)

type config = {
  listen : Protocol.addr;
  pool : int;  (** worker domains executing queued jobs *)
  queue_cap : int;  (** admission-control high-water mark *)
  plan_cache_cap : int;
  result_cache_cap : int;
  max_rows : int option;  (** rows per query response; [None] = all *)
  maintain : bool;
      (** maintain cached results incrementally across appends: each cached
          query with a delta rule keeps §6 algebraic partials (one extra
          partials-query execution when first cached) so appends cost
          O(delta join) instead of a recompute *)
  metrics_addr : Protocol.addr option;
      (** optional plain-HTTP listener answering every request with the
          Prometheus text exposition of the metrics registries (cumulative
          counters/histograms, rolling windows, cache/queue gauges,
          per-session tallies); [`Tcp (host, 0)] binds an ephemeral port,
          resolved by {!metrics_addr} *)
  slow_ms : float option;
      (** default slow-query threshold in milliseconds (per-session
          overridable with [set slow_ms=...]; negative resets to off):
          queries at or above it append a JSONL record — query text,
          session config, plan/cache disposition, per-node Analyze summary
          with est-vs-actual Q-errors — to [slow_log].  [None] = off. *)
  slow_log : string option;
      (** slow-query log path, opened lazily on the first record *)
  trace_sample : float;
      (** default fraction (0..1, per-session overridable with
          [set trace_sample=...]) of queries run fully instrumented —
          bypassing both caches, like an explicit analyze — and logged to
          [slow_log] with their complete span tree, so est-vs-actual
          coverage includes fast queries *)
}

val default_config : config

type t

(** [start ~config catalogs] binds the listener, spawns the worker pool
    and the accept thread, and returns immediately.  [catalogs] maps each
    loadable layout to its catalog (sessions switch with
    [set layout=...]); the first entry is the session default.  The
    catalogs become server-owned: mutate them only through the protocol's
    [append] once serving has started. *)
val start : ?config:config -> ([ `Row | `Column ] * Relalg.Catalog.t) list -> t

(** The metrics listener's effective address — the configured one with an
    ephemeral TCP port resolved to the actually bound port — or [None]
    when no [metrics_addr] was configured. *)
val metrics_addr : t -> Protocol.addr option

(** Initiate shutdown: stop accepting, close the job queue (queued jobs
    still drain), unblock the accept thread.  Idempotent; also triggered
    by a client's [shutdown] request. *)
val stop : t -> unit

(** Block until the accept thread and every worker domain have exited. *)
val wait : t -> unit

(** [stop] followed by [wait]. *)
val shutdown : t -> unit
