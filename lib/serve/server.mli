(** The always-on multi-session query server (DESIGN.md §12).

    One process owns the catalogs; clients hold sessions over a
    line-delimited JSON protocol ({!Protocol}).  A sys-thread per
    connection parses requests and answers control operations inline;
    queries and appends go through a bounded job queue drained by a fixed
    pool of worker domains, with submission past the queue's high-water
    mark rejected immediately ([overloaded] — admission control by
    backpressure).  Catalog access is readers/writer: plain queries run
    concurrently, appends and CTE-bearing queries run exclusively.

    Two shared cache tiers front execution, both keyed by normalized query
    text plus the session's execution config (layout, workers, transfer,
    tech): a plan cache of {!Core.Runner.prepared} statements (lazily
    re-prepared when {!Relalg.Catalog.version} has moved) and a result
    cache additionally keyed by catalog version, swept explicitly on
    append. *)

type config = {
  listen : Protocol.addr;
  pool : int;  (** worker domains executing queued jobs *)
  queue_cap : int;  (** admission-control high-water mark *)
  plan_cache_cap : int;
  result_cache_cap : int;
  max_rows : int option;  (** rows per query response; [None] = all *)
}

val default_config : config

type t

(** [start ~config catalogs] binds the listener, spawns the worker pool
    and the accept thread, and returns immediately.  [catalogs] maps each
    loadable layout to its catalog (sessions switch with
    [set layout=...]); the first entry is the session default.  The
    catalogs become server-owned: mutate them only through the protocol's
    [append] once serving has started. *)
val start : ?config:config -> ([ `Row | `Column ] * Relalg.Catalog.t) list -> t

(** Initiate shutdown: stop accepting, close the job queue (queued jobs
    still drain), unblock the accept thread.  Idempotent; also triggered
    by a client's [shutdown] request. *)
val stop : t -> unit

(** Block until the accept thread and every worker domain have exited. *)
val wait : t -> unit

(** [stop] followed by [wait]. *)
val shutdown : t -> unit
