(* The always-on query server (DESIGN.md §12).

   One process owns the catalogs; any number of clients hold sessions
   against them.  The concurrency architecture in one paragraph: a
   sys-thread per connection parses requests off the socket and either
   answers cheap control operations inline (ping / set / stats) or submits
   the request to a bounded job queue; a fixed pool of worker domains
   drains the queue and executes queries.  Submission past the queue's
   high-water mark is rejected immediately with an [overloaded] response —
   admission control by backpressure, never by unbounded buffering.
   Catalog access follows a readers/writer discipline: plain queries take
   the read side and run concurrently; appends and CTE-bearing queries
   (whose execution registers temp tables in the shared catalog) take the
   exclusive side.

   Two cache tiers sit in front of execution, both keyed by the normalized
   query text plus the session's execution-relevant config (layout,
   workers, transfer, tech):

   - the PLAN cache maps that key to a {!Runner.prepared} — optimizer
     decision, NLJP operator with its cross-query shared prune/memo tier,
     and memoized predicate-transfer Blooms.  Entries are validated
     lazily: a hit whose {!Runner.prepared_version} trails the catalog's
     {!Catalog.version} is re-prepared in place (and counted as a miss).
     An append refreshes every entry in place ({!Runner.refresh_prepared}):
     the version advances and the NLJP shared tier is revalidated entry by
     entry instead of discarded, so only plans the delta actually
     invalidates re-prepare.
   - the RESULT cache holds the already-encoded JSON response fields plus
     the entry's delta epoch: the tables the query reads and their
     {!Catalog.stamp}s at execution time.  A hit is exact iff every stamp
     still matches — same text, same config, same data.  An append
     maintains affected entries instead of evicting them: entries whose
     tables don't include the appended table are untouched; entries with
     §6 algebraic partial state ({!Core.Delta}) are folded forward
     (telescoping delta joins) or revalidated (every delta row refuted by
     occurrence-local predicates); only entries without a delta rule — or
     whose delta step fails — are dropped and recomputed on next demand.

   Correctness of both tiers leans on every base-data mutation going
   through [append] under the exclusive lock, and on the temp-table
   lifecycle leaving versions and stamps alone. *)

open Relalg
module Json = Obs.Json
module P = Protocol

(* ---------------------------------------------------------------- *)
(* Readers/writer lock *)

module Rwlock = struct
  type t = {
    mu : Mutex.t;
    cv : Condition.t;
    mutable readers : int;
    mutable writer : bool;
  }

  let create () =
    { mu = Mutex.create (); cv = Condition.create (); readers = 0; writer = false }

  let read t f =
    Mutex.lock t.mu;
    while t.writer do
      Condition.wait t.cv t.mu
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.mu;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.mu;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.broadcast t.cv;
        Mutex.unlock t.mu)

  let write t f =
    Mutex.lock t.mu;
    while t.writer || t.readers > 0 do
      Condition.wait t.cv t.mu
    done;
    t.writer <- true;
    Mutex.unlock t.mu;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.mu;
        t.writer <- false;
        Condition.broadcast t.cv;
        Mutex.unlock t.mu)
end

(* ---------------------------------------------------------------- *)
(* Configuration *)

type config = {
  listen : P.addr;
  pool : int;  (* worker domains *)
  queue_cap : int;  (* admission-control high-water mark *)
  plan_cache_cap : int;
  result_cache_cap : int;
  max_rows : int option;  (* rows per response; None = all *)
  maintain : bool;
      (* maintain cached results incrementally across appends (build §6
         algebraic partial state per cached query; fold deltas in) *)
  metrics_addr : P.addr option;
      (* optional plain-HTTP listener answering every request with the
         Prometheus text exposition of the metrics registry *)
  slow_ms : float option;
      (* default slow-query threshold (per-session overridable with
         [set slow_ms=...]); queries at or above it are written to the
         slow-query log.  None = off. *)
  slow_log : string option;  (* JSONL path; opened lazily on first record *)
  trace_sample : float;
      (* default fraction of queries (decided per request id, before
         execution) run with full analyze instrumentation and logged with
         their span tree — est-vs-actual coverage for fast queries too *)
}

let default_config =
  {
    listen = `Unix "/tmp/iceberg-serve.sock";
    pool = 2;
    queue_cap = 32;
    plan_cache_cap = 64;
    result_cache_cap = 128;
    max_rows = None;
    maintain = true;
    metrics_addr = None;
    slow_ms = None;
    slow_log = None;
    trace_sample = 0.;
  }

(* ---------------------------------------------------------------- *)
(* Sessions *)

type session = {
  sid : int;
  mutable layout : [ `Row | `Column ];
  mutable workers : int;
  mutable transfer : bool;
  mutable tech : Core.Optimizer.technique;
  mutable use_plan_cache : bool;
  mutable use_result_cache : bool;
  mutable slow_ms : float option;  (* slow-query threshold; None = off *)
  mutable trace_sample : float;  (* fraction of queries traced end to end *)
  s_mu : Mutex.t;  (* guards the mutable tallies below *)
  mutable s_queries : int;
  mutable s_errors : int;
  mutable s_plan_hits : int;
  mutable s_result_hits : int;
  mutable s_ms : float;
  mutable s_counters : (string * int) list;
      (* cumulative per-session slice of span counters: summed over the
         span trees of this session's queries only, so it never reads
         another session's traffic *)
}

let layout_str = function `Row -> "row" | `Column -> "column"

let tech_str (t : Core.Optimizer.technique) =
  match (t.apriori, t.memo, t.pruning) with
  | true, true, true -> "all"
  | false, false, false -> "none"
  | a, m, p ->
    String.concat "+"
      (List.filter_map
         (fun (on, s) -> if on then Some s else None)
         [ (a, "apriori"); (m, "memo"); (p, "pruning") ])

let tech_of_str s =
  match String.lowercase_ascii s with
  | "all" -> Some Core.Optimizer.all_techniques
  | "none" -> Some { Core.Optimizer.apriori = false; memo = false; pruning = false }
  | s ->
    let parts = String.split_on_char '+' s in
    let t = ref { Core.Optimizer.apriori = false; memo = false; pruning = false } in
    let ok =
      List.for_all
        (fun p ->
          match p with
          | "apriori" -> t := { !t with Core.Optimizer.apriori = true }; true
          | "memo" -> t := { !t with Core.Optimizer.memo = true }; true
          | "pruning" -> t := { !t with Core.Optimizer.pruning = true }; true
          | _ -> false)
        parts
    in
    if ok then Some !t else None

let session_config_json s =
  Json.Obj
    [
      ("layout", Json.Str (layout_str s.layout));
      ("workers", Json.Num (float_of_int s.workers));
      ("transfer", Json.Bool s.transfer);
      ("tech", Json.Str (tech_str s.tech));
      ("plan_cache", Json.Bool s.use_plan_cache);
      ("result_cache", Json.Bool s.use_result_cache);
      ( "slow_ms",
        match s.slow_ms with Some x -> Json.Num x | None -> Json.Null );
      ("trace_sample", Json.Num s.trace_sample);
    ]

(* ---------------------------------------------------------------- *)
(* Server state *)

type plan_entry = {
  pe_mu : Mutex.t;  (* guards the re-prepare swap, not execution *)
  mutable pe_prepared : Core.Runner.prepared;
}

(* A cached result and its delta epoch.  Mutable fields are only written
   under the exclusive lock (fresh inserts happen via [Lru.put], appends
   maintain in place); readers under the shared lock see a coherent entry
   because appends exclude them entirely. *)
type cached_result = {
  mutable cr_fields : (string * Json.t) list;  (* encoded response payload *)
  cr_layout : [ `Row | `Column ];
  cr_tables : string list;  (* normalized base tables the query reads *)
  mutable cr_stamps : (string * Catalog.stamp) list;  (* per-table epochs *)
  cr_state : Core.Delta.t option;  (* §6 partials, when the query has a delta rule *)
}

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  w_mu : Mutex.t;  (* one response line at a time per connection *)
  session : session;
}

(* [j_rid] is the server-wide request id stamped by the reader thread and
   threaded through the queue into the worker's spans and the slow-query
   log; [j_submit_s] times the queue wait. *)
type job = {
  j_conn : conn;
  j_id : int;
  j_rid : int;
  j_submit_s : float;
  j_req : P.request;
}

type t = {
  config : config;
  catalogs : ([ `Row | `Column ] * Catalog.t) list;
  plan_cache : plan_entry Cache.Lru.t;
  result_cache : cached_result Cache.Lru.t;
  lock : Rwlock.t;
  queue : job Queue.t;
  q_mu : Mutex.t;
  q_cv : Condition.t;
  mutable q_closed : bool;
  sessions : (int, session) Hashtbl.t;
  sess_mu : Mutex.t;
  next_sid : int Atomic.t;
  stopping : bool Atomic.t;
  started : float;
  mutable listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable workers : unit Domain.t list;
  mutable metrics_fd : Unix.file_descr option;
  mutable metrics_thread : Thread.t option;
  slow_mu : Mutex.t;  (* guards the lazily opened slow-query log channel *)
  mutable slow_oc : out_channel option;
}

(* Server-level counters live in the shared Obs registry so they surface in
   [--metrics] dumps and bench JSON alongside operator counters. *)
let c_queries = Obs.Metrics.counter "serve.queries"
let c_rejected = Obs.Metrics.counter "serve.rejected"
let c_plan_hit = Obs.Metrics.counter "serve.plan_hit"
let c_plan_miss = Obs.Metrics.counter "serve.plan_miss"
let c_result_hit = Obs.Metrics.counter "serve.result_hit"
let c_result_miss = Obs.Metrics.counter "serve.result_miss"
let c_appends = Obs.Metrics.counter "serve.appends"
let c_errors = Obs.Metrics.counter "serve.errors"
let c_maint_incremental = Obs.Metrics.counter "serve.maint_incremental"
let c_maint_revalidate = Obs.Metrics.counter "serve.maint_revalidate"
let c_maint_recompute = Obs.Metrics.counter "serve.maint_recompute"
let c_plan_refreshed = Obs.Metrics.counter "serve.plan_refreshed"
let h_query_ms = Obs.Metrics.histogram "serve.query_ms"
let h_maint_ms = Obs.Metrics.histogram "serve.maint_ms"
let h_queue_wait_ms = Obs.Metrics.histogram "serve.queue_wait_ms"

(* Rolling windows over the last minute (6 x 10s), feeding the metrics
   endpoint and the live monitor: current qps and p50/p95, not lifetime. *)
let r_queries = Obs.Rolling.roll "serve.queries"
let r_query_ms = Obs.Rolling.roll "serve.query_ms"
let r_maint_ms = Obs.Rolling.roll "serve.maint_ms"
let r_queue_wait_ms = Obs.Rolling.roll "serve.queue_wait_ms"

(* Server-wide request ids, stamped on jobs by the reader threads. *)
let next_rid = Atomic.make 1

(* Deterministic per-request sampling decision: an integer hash of the
   request id mapped into [0,1) — no shared RNG state, and a given rid
   samples identically however the request is routed. *)
let sample_hit rid frac =
  if frac <= 0. then false
  else if frac >= 1. then true
  else begin
    let z = rid * 0x2545F4914F6CDD1 in
    let z = z lxor (z lsr 29) in
    let z = z * 0x9E3779B97F4A7 in
    let z = z lxor (z lsr 32) in
    float_of_int (z land 0xFFFFFF) /. 16777216. < frac
  end

let catalog_for t layout =
  match List.assoc_opt layout t.catalogs with
  | Some c -> c
  | None -> snd (List.hd t.catalogs)

let fresh_session t =
  let sid = Atomic.fetch_and_add t.next_sid 1 in
  let layout, _ = List.hd t.catalogs in
  let s =
    {
      sid;
      layout;
      workers = 1;
      transfer = true;
      tech = Core.Optimizer.all_techniques;
      use_plan_cache = true;
      use_result_cache = true;
      slow_ms = t.config.slow_ms;
      trace_sample = t.config.trace_sample;
      s_mu = Mutex.create ();
      s_queries = 0;
      s_errors = 0;
      s_plan_hits = 0;
      s_result_hits = 0;
      s_ms = 0.;
      s_counters = [];
    }
  in
  Mutex.lock t.sess_mu;
  Hashtbl.replace t.sessions sid s;
  Mutex.unlock t.sess_mu;
  s

let drop_session t s =
  Mutex.lock t.sess_mu;
  Hashtbl.remove t.sessions s.sid;
  Mutex.unlock t.sess_mu

(* ---------------------------------------------------------------- *)
(* Responses *)

let send conn json =
  Mutex.lock conn.w_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.w_mu)
    (fun () ->
      output_string conn.oc (Json.to_string json);
      output_char conn.oc '\n';
      flush conn.oc)

let send_ok conn ~id fields = send conn (P.response_ok ~id fields)

let send_error conn ~id ~code msg =
  Obs.Metrics.incr c_errors;
  Mutex.lock conn.session.s_mu;
  conn.session.s_errors <- conn.session.s_errors + 1;
  Mutex.unlock conn.session.s_mu;
  send conn (P.response_error ~id ~code msg)

(* ---------------------------------------------------------------- *)
(* Query execution *)

let merge_counts acc kvs =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some v0 -> (k, v0 + v) :: List.remove_assoc k acc
      | None -> (k, v) :: acc)
    acc kvs

let rec span_counter_slice acc (s : Obs.Span.t) =
  let acc = merge_counts acc s.Obs.Span.counters in
  List.fold_left span_counter_slice acc (Obs.Span.children s)

let plan_key session ast =
  Printf.sprintf "%s|layout=%s|workers=%d|transfer=%b|tech=%s"
    (Sqlfront.Pretty.query ast) (layout_str session.layout) session.workers
    session.transfer (tech_str session.tech)

let bump_session session ~ms ~plan_hit ~result_hit slice =
  Mutex.lock session.s_mu;
  session.s_queries <- session.s_queries + 1;
  session.s_ms <- session.s_ms +. ms;
  if plan_hit then session.s_plan_hits <- session.s_plan_hits + 1;
  if result_hit then session.s_result_hits <- session.s_result_hits + 1;
  session.s_counters <- merge_counts session.s_counters slice;
  Mutex.unlock session.s_mu

(* ---- structured slow-query log ----

   One JSON object per line, written under [slow_mu] (the channel is opened
   lazily, so a server that never logs never touches the filesystem).  A
   record carries the query text, the session's execution config, the
   plan/cache disposition, the per-node Analyze summary derived from the
   request's span tree (actual rows, counters, per-node times; est-vs-actual
   Q-errors wherever estimates were stamped), and — for sampled requests,
   which run fully instrumented — the complete span tree. *)

let slow_log_write t json =
  match t.config.slow_log with
  | None -> ()
  | Some path ->
    Mutex.lock t.slow_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.slow_mu)
      (fun () ->
        let oc =
          match t.slow_oc with
          | Some oc -> oc
          | None ->
            let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
            t.slow_oc <- Some oc;
            oc
        in
        output_string oc (Json.to_string json);
        output_char oc '\n';
        flush oc)

let slow_record ~kind ~rid ~wait_ms ~ms ~plan ~sql ~sampled session span =
  let node = Core.Analyze.of_span span in
  let summary = Core.Analyze.summarize node in
  Json.Obj
    [
      ("ts", Json.Num (Unix.gettimeofday ()));
      ("rid", Json.Num (float_of_int rid));
      ("session", Json.Num (float_of_int session.sid));
      ("kind", Json.Str kind);
      ("ms", Json.Num ms);
      ("queue_ms", Json.Num wait_ms);
      ( "slow_ms",
        match session.slow_ms with Some x -> Json.Num x | None -> Json.Null );
      ("sql", Json.Str sql);
      ("config", session_config_json session);
      ("plan", Json.Str plan);
      ("analyze", Core.Analyze.document node summary);
      ("trace", if sampled then Obs.Span.to_json span else Json.Null);
    ]

let handle_query t conn ~id ~rid ~wait_ms ~analyze sql =
  let session = conn.session in
  match Sqlfront.Parser.parse sql with
  | exception Sqlfront.Parser.Parse_error m ->
    send_error conn ~id ~code:"bad_request" ("parse error: " ^ m)
  | exception Sqlfront.Lexer.Lex_error (m, off) ->
    send_error conn ~id ~code:"bad_request"
      (Printf.sprintf "lex error at %d: %s" off m)
  | ast ->
    let cat = catalog_for t session.layout in
    (* CTE execution registers temp tables in the shared catalog, so those
       queries take the writer side; everything else runs concurrently. *)
    let exclusive = ast.Sqlfront.Ast.with_defs <> [] in
    let with_lock f = if exclusive then Rwlock.write t.lock f else Rwlock.read t.lock f in
    (* A sampled request runs fully instrumented like an explicit analyze
       (fresh trace with per-node estimates, caches bypassed), so the log
       gets complete est-vs-actual span trees for a fraction of ordinary
       traffic; everything else keeps its cached path untouched. *)
    let sampled = sample_hit rid session.trace_sample in
    let instrument = analyze || sampled in
    let outcome =
      with_lock (fun () ->
          let version = Catalog.version cat in
          let key = plan_key session ast in
          let cached =
            if instrument || not session.use_result_cache then None
            else
              match Cache.Lru.find t.result_cache key with
              | None -> None
              | Some cr ->
                (* A hit is exact iff every table the query read still has
                   the stamp the entry was computed (or maintained) at.
                   Appends keep maintained entries current, so a mismatch
                   only means the entry predates an unmaintainable change —
                   fall through to a fresh execution that overwrites it. *)
                (match Catalog.stamps cat cr.cr_tables with
                 | exception _ -> None
                 | now -> if now = cr.cr_stamps then Some cr else None)
          in
          match cached with
          | Some cr ->
            Obs.Metrics.incr c_result_hit;
            `Hit cr.cr_fields
          | None ->
            if (not instrument) && session.use_result_cache then
              Obs.Metrics.incr c_result_miss;
            let span = Obs.Span.enter ~session_id:session.sid "serve.query" in
            Obs.Span.note span
              (Printf.sprintf "rid=%d queue_ms=%.3f" rid wait_ms);
            let exec () =
              (* Plan caching needs a stable prepared plan; analyze (and a
                 sampled trace) wants a fresh instrumented run and CTE
                 queries re-register temps per run, so all three bypass. *)
              if instrument || exclusive || not session.use_plan_cache then begin
                let rel, report =
                  Core.Runner.run ~span ~analyze:instrument ~tech:session.tech
                    ~workers:session.workers ~transfer:session.transfer cat ast
                in
                (rel, Some report, `Bypass)
              end
              else begin
                let prepare () =
                  Core.Runner.prepare ~tech:session.tech
                    ~workers:session.workers ~transfer:session.transfer cat ast
                in
                let entry, status =
                  match Cache.Lru.find t.plan_cache key with
                  | Some e ->
                    (* Stale entries are re-prepared in place under the
                       entry mutex; that is a logical miss. *)
                    Mutex.lock e.pe_mu;
                    let st =
                      if Core.Runner.prepared_version e.pe_prepared <> version
                      then begin
                        e.pe_prepared <- prepare ();
                        `Miss
                      end
                      else `Hit
                    in
                    Mutex.unlock e.pe_mu;
                    (e, st)
                  | None ->
                    let e = { pe_mu = Mutex.create (); pe_prepared = prepare () } in
                    Cache.Lru.put t.plan_cache key e;
                    (e, `Miss)
                in
                (match status with
                | `Hit -> Obs.Metrics.incr c_plan_hit
                | `Miss -> Obs.Metrics.incr c_plan_miss);
                let rel, report = Core.Runner.run_prepared ~span entry.pe_prepared in
                (rel, Some report, status)
              end
            in
            (match exec () with
            | exception e ->
              Obs.Span.finish span;
              `Err (Printexc.to_string e)
            | rel, _report, status ->
              Obs.Span.finish span;
              let ms = span.Obs.Span.dur_ms in
              Obs.Metrics.observe h_query_ms ms;
              Obs.Rolling.observe r_query_ms ms;
              let slice = span_counter_slice [] span in
              bump_session session ~ms
                ~plan_hit:(status = `Hit)
                ~result_hit:false slice;
              let plan_s =
                match status with
                | `Hit -> "hit"
                | `Miss -> "miss"
                | `Bypass -> "bypass"
              in
              let slow =
                match session.slow_ms with Some th -> ms >= th | None -> false
              in
              if slow || sampled then begin
                let kind =
                  match (slow, sampled) with
                  | true, true -> "slow+sampled"
                  | true, false -> "slow"
                  | false, _ -> "sampled"
                in
                slow_log_write t
                  (slow_record ~kind ~rid ~wait_ms ~ms ~plan:plan_s ~sql
                     ~sampled session span)
              end;
              let fields =
                P.relation_to_json ?max_rows:t.config.max_rows rel
                @ [ ("ms", Json.Num ms); ("plan", Json.Str plan_s) ]
                @ (if analyze then [ ("trace", Obs.Span.to_json span) ] else [])
              in
              if (not instrument) && session.use_result_cache then begin
                let tables =
                  List.filter (Catalog.mem cat)
                    (Sqlfront.Ast.tables_of_query ast)
                in
                (* Delta state costs one partials-query execution now and
                   buys O(Δ ⋈ rest) maintenance on every later append;
                   queries without a delta rule (CTEs, DISTINCT, holistic
                   aggregates, …) get [None] and are dropped on append. *)
                let state =
                  if t.config.maintain && not exclusive then
                    Core.Delta.init cat ast
                  else None
                in
                Cache.Lru.put t.result_cache key
                  {
                    cr_fields = fields;
                    cr_layout = session.layout;
                    cr_tables = tables;
                    cr_stamps = Catalog.stamps cat tables;
                    cr_state = state;
                  }
              end;
              `Fresh fields))
    in
    (match outcome with
    | `Hit fields ->
      bump_session session ~ms:0. ~plan_hit:false ~result_hit:true [];
      Obs.Metrics.incr c_queries;
      Obs.Rolling.mark r_queries;
      send_ok conn ~id
        (fields
        @ [
            ("cached", Json.Bool true);
            ("session", Json.Num (float_of_int session.sid));
            ("rid", Json.Num (float_of_int rid));
          ])
    | `Fresh fields ->
      Obs.Metrics.incr c_queries;
      Obs.Rolling.mark r_queries;
      send_ok conn ~id
        (fields
        @ [
            ("cached", Json.Bool false);
            ("session", Json.Num (float_of_int session.sid));
            ("rid", Json.Num (float_of_int rid));
          ])
    | `Err msg -> send_error conn ~id ~code:"error" msg)

(* ---------------------------------------------------------------- *)
(* Appends *)

let handle_append t conn ~id table rows =
  match
    Rwlock.write t.lock (fun () ->
        (* Resolve the table in every layout catalog and decode the payload
           completely BEFORE mutating anything: a bad row (or a table known
           to one catalog but not another) then can never leave the layout
           catalogs out of lockstep — either every catalog appends the same
           rows or none does. *)
        let cats =
          List.map
            (fun (_, cat) ->
              match Catalog.find_opt cat table with
              | Some tb -> (cat, tb)
              | None -> failwith ("append: no such table " ^ table))
            t.catalogs
        in
        let schema = (snd (List.hd cats)).Catalog.rel.Relation.schema in
        let arity = Schema.arity schema in
        let fresh =
          Array.of_list
            (List.map
               (fun rj ->
                 match rj with
                 | Json.Arr cells when List.length cells = arity ->
                   Array.of_list (List.map P.value_of_json cells)
                 | Json.Arr _ ->
                   failwith
                     (Printf.sprintf "append %s: row arity mismatch (want %d)"
                        table arity)
                 | _ -> failwith "append: each row must be a JSON array")
               rows)
        in
        (* O(delta): the rows land in delta blocks ({!Relation.append}),
           never rebuilding the resident prefix. *)
        List.iter (fun (cat, _) -> Catalog.append_rows cat table fresh) cats;
        let delta = Relation.make schema fresh in
        (* Cached plans survive the append: direct/rewrite plans re-execute
           against the live catalog anyway, NLJP plans revalidate their
           shared prune/memo tier entry by entry.  Only a plan whose
           operator the delta invalidates stays stale (it re-prepares
           lazily on its next hit). *)
        let plans_refreshed = ref 0 in
        ignore
          (Cache.Lru.retain t.plan_cache (fun _ e ->
               Mutex.lock e.pe_mu;
               (match
                  Core.Runner.refresh_prepared e.pe_prepared ~table ~delta
                with
               | `Kept | `Refreshed -> incr plans_refreshed
               | `Reprepare _ -> ());
               Mutex.unlock e.pe_mu;
               true));
        (* Maintain the result cache.  Entries that don't read the table
           keep their payload and stamps untouched; entries with delta
           state fold the append in (or prove it can't change the result);
           the rest drop and recompute on next demand. *)
        let t_norm = String.lowercase_ascii table in
        let maint_inc = ref 0 and maint_reval = ref 0 in
        let dropped =
          Cache.Lru.retain t.result_cache (fun _ cr ->
              if not (List.mem t_norm cr.cr_tables) then true
              else
                let keep =
                  match cr.cr_state with
                  | None -> false
                  | Some st ->
                    let t0 = Unix.gettimeofday () in
                    (match Core.Delta.apply st ~table ~delta with
                    | Ok outcome ->
                      (match outcome with
                      | `Revalidated -> incr maint_reval
                      | `Incremental _ ->
                        let rel = Core.Delta.result st in
                        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
                        cr.cr_fields <-
                          P.relation_to_json ?max_rows:t.config.max_rows rel
                          @ [ ("ms", Json.Num ms);
                              ("plan", Json.Str "maintained") ];
                        incr maint_inc);
                      let maint_ms = (Unix.gettimeofday () -. t0) *. 1000. in
                      Obs.Metrics.observe h_maint_ms maint_ms;
                      Obs.Rolling.observe r_maint_ms maint_ms;
                      true
                    | Error _ -> false)
                in
                (if keep then
                   match
                     Catalog.stamps (catalog_for t cr.cr_layout) cr.cr_tables
                   with
                   | exception _ -> ()
                   | st -> cr.cr_stamps <- st);
                keep)
        in
        (!plans_refreshed, !maint_inc, !maint_reval, dropped))
  with
  | exception Failure m -> send_error conn ~id ~code:"bad_request" m
  | exception e -> send_error conn ~id ~code:"error" (Printexc.to_string e)
  | plans_refreshed, inc, reval, dropped ->
    Obs.Metrics.incr c_appends;
    Obs.Metrics.add c_maint_incremental inc;
    Obs.Metrics.add c_maint_revalidate reval;
    Obs.Metrics.add c_maint_recompute dropped;
    Obs.Metrics.add c_plan_refreshed plans_refreshed;
    send_ok conn ~id
      [
        ("appended", Json.Num (float_of_int (List.length rows)));
        ("maintained", Json.Num (float_of_int (inc + reval)));
        ("incremental", Json.Num (float_of_int inc));
        ("revalidated", Json.Num (float_of_int reval));
        ("invalidated", Json.Num (float_of_int dropped));
        ("plans_refreshed", Json.Num (float_of_int plans_refreshed));
        ( "version",
          Json.Num (float_of_int (Catalog.version (catalog_for t conn.session.layout))) );
      ]

(* ---------------------------------------------------------------- *)
(* Control operations (handled inline on the reader thread) *)

let handle_set t conn ~id kvs =
  let session = conn.session in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  List.iter
    (fun (k, v) ->
      match (k, v) with
      | "layout", Json.Str l ->
        (match l with
        | "row" when List.mem_assoc `Row t.catalogs -> session.layout <- `Row
        | "column" when List.mem_assoc `Column t.catalogs -> session.layout <- `Column
        | "row" | "column" -> fail ("layout " ^ l ^ " not loaded on this server")
        | _ -> fail "layout must be \"row\" or \"column\"")
      | "workers", Json.Num n ->
        let n = int_of_float n in
        if n >= 1 && n <= 64 then session.workers <- n
        else fail "workers must be in 1..64"
      | "transfer", Json.Bool b -> session.transfer <- b
      | "tech", Json.Str s ->
        (match tech_of_str s with
        | Some tech -> session.tech <- tech
        | None -> fail ("unknown tech " ^ s))
      | "plan_cache", Json.Bool b -> session.use_plan_cache <- b
      | "result_cache", Json.Bool b -> session.use_result_cache <- b
      | "slow_ms", Json.Num x ->
        (* negative disables; 0 logs every query (the CI smoke's setting) *)
        session.slow_ms <- (if x < 0. then None else Some x)
      | "trace_sample", Json.Num x ->
        if x >= 0. && x <= 1. then session.trace_sample <- x
        else fail "trace_sample must be in 0..1"
      | k, _ -> fail ("unknown or ill-typed config key " ^ k))
    kvs;
  match !err with
  | Some m -> send_error conn ~id ~code:"bad_request" m
  | None -> send_ok conn ~id [ ("config", session_config_json session) ]

let lru_stats_json (s : Cache.Lru.stats) ~hits ~misses =
  Json.Obj
    [
      ("hits", Json.Num (float_of_int hits));
      ("misses", Json.Num (float_of_int misses));
      ("evictions", Json.Num (float_of_int s.Cache.Lru.s_evictions));
      ("entries", Json.Num (float_of_int s.Cache.Lru.s_len));
    ]

let session_stats_json s =
  Mutex.lock s.s_mu;
  let j =
    Json.Obj
      [
        ("session", Json.Num (float_of_int s.sid));
        ("queries", Json.Num (float_of_int s.s_queries));
        ("errors", Json.Num (float_of_int s.s_errors));
        ("plan_hits", Json.Num (float_of_int s.s_plan_hits));
        ("result_hits", Json.Num (float_of_int s.s_result_hits));
        ("ms", Json.Num s.s_ms);
        ( "counters",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Num (float_of_int v)))
               (List.sort compare s.s_counters)) );
        ("config", session_config_json s);
      ]
  in
  Mutex.unlock s.s_mu;
  j

let queue_depth t =
  Mutex.lock t.q_mu;
  let n = Queue.length t.queue in
  Mutex.unlock t.q_mu;
  n

let handle_stats t conn ~id =
  let sessions =
    Mutex.lock t.sess_mu;
    let xs = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
    Mutex.unlock t.sess_mu;
    List.sort (fun a b -> compare a.sid b.sid) xs
  in
  send_ok conn ~id
    [
      ("uptime_ms", Json.Num ((Unix.gettimeofday () -. t.started) *. 1000.));
      ("queries", Json.Num (float_of_int (Obs.Metrics.read c_queries)));
      ("rejected", Json.Num (float_of_int (Obs.Metrics.read c_rejected)));
      ("queue_depth", Json.Num (float_of_int (queue_depth t)));
      ("queue_cap", Json.Num (float_of_int t.config.queue_cap));
      ("pool", Json.Num (float_of_int t.config.pool));
      ( "catalog_versions",
        Json.Obj
          (List.map
             (fun (l, c) -> (layout_str l, Json.Num (float_of_int (Catalog.version c))))
             t.catalogs) );
      ( "plan_cache",
        lru_stats_json (Cache.Lru.stats t.plan_cache)
          ~hits:(Obs.Metrics.read c_plan_hit)
          ~misses:(Obs.Metrics.read c_plan_miss) );
      ( "result_cache",
        lru_stats_json (Cache.Lru.stats t.result_cache)
          ~hits:(Obs.Metrics.read c_result_hit)
          ~misses:(Obs.Metrics.read c_result_miss) );
      ( "maintenance",
        Json.Obj
          [
            ( "incremental",
              Json.Num (float_of_int (Obs.Metrics.read c_maint_incremental)) );
            ( "revalidated",
              Json.Num (float_of_int (Obs.Metrics.read c_maint_revalidate)) );
            ( "recompute",
              Json.Num (float_of_int (Obs.Metrics.read c_maint_recompute)) );
            ( "plans_refreshed",
              Json.Num (float_of_int (Obs.Metrics.read c_plan_refreshed)) );
          ] );
      ("sessions", Json.Arr (List.map session_stats_json sessions));
      ("session", Json.Num (float_of_int conn.session.sid));
    ]

(* ---------------------------------------------------------------- *)
(* Metrics exposition: the [metrics] protocol op (JSON) and the optional
   plain-HTTP listener (Prometheus text format).  Both render the same
   registries: cumulative counters/histograms, rolling windows, cache and
   queue gauges, per-session tallies. *)

let sessions_sorted t =
  Mutex.lock t.sess_mu;
  let xs = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
  Mutex.unlock t.sess_mu;
  List.sort (fun a b -> compare a.sid b.sid) xs

let hist_summary_json (h : Obs.Metrics.hist_summary) =
  let q p = Obs.Metrics.hist_quantile h p in
  Json.Obj
    [
      ("count", Json.Num (float_of_int h.Obs.Metrics.hs_count));
      ("sum", Json.Num h.Obs.Metrics.hs_sum);
      ("p50", Json.Num (q 0.5));
      ("p95", Json.Num (q 0.95));
      ("p99", Json.Num (q 0.99));
    ]

let rolling_json (s : Obs.Rolling.snap) =
  Json.Obj
    [
      ("window_s", Json.Num s.Obs.Rolling.rs_window_s);
      ("windows", Json.Num (float_of_int s.Obs.Rolling.rs_windows));
      ("count", Json.Num (float_of_int s.Obs.Rolling.rs_count));
      ("sum", Json.Num s.Obs.Rolling.rs_sum);
      ("rate", Json.Num s.Obs.Rolling.rs_rate);
      ("p50", Json.Num s.Obs.Rolling.rs_p50);
      ("p90", Json.Num s.Obs.Rolling.rs_p90);
      ("p95", Json.Num s.Obs.Rolling.rs_p95);
      ("p99", Json.Num s.Obs.Rolling.rs_p99);
    ]

let handle_metrics t conn ~id =
  send_ok conn ~id
    [
      ("uptime_ms", Json.Num ((Unix.gettimeofday () -. t.started) *. 1000.));
      ("queue_depth", Json.Num (float_of_int (queue_depth t)));
      ("queue_cap", Json.Num (float_of_int t.config.queue_cap));
      ("pool", Json.Num (float_of_int t.config.pool));
      ( "sessions",
        Json.Num (float_of_int (List.length (sessions_sorted t))) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             (Obs.Metrics.snapshot ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (h : Obs.Metrics.hist_summary) ->
               (h.Obs.Metrics.hs_name, hist_summary_json h))
             (Obs.Metrics.hist_snapshot ())) );
      ( "rolling",
        Json.Obj
          (List.map
             (fun (s : Obs.Rolling.snap) -> (s.Obs.Rolling.rs_name, rolling_json s))
             (Obs.Rolling.snapshot_all ())) );
      ( "plan_cache",
        lru_stats_json (Cache.Lru.stats t.plan_cache)
          ~hits:(Obs.Metrics.read c_plan_hit)
          ~misses:(Obs.Metrics.read c_plan_miss) );
      ( "result_cache",
        lru_stats_json (Cache.Lru.stats t.result_cache)
          ~hits:(Obs.Metrics.read c_result_hit)
          ~misses:(Obs.Metrics.read c_result_miss) );
      ("session", Json.Num (float_of_int conn.session.sid));
    ]

(* Prometheus text exposition (version 0.0.4): dotted registry names are
   mangled to underscores, counters gain the [_total] suffix, histograms
   emit cumulative power-of-two [le] buckets, rolling snapshots and
   per-session tallies surface as gauges. *)
let prom_name s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    s

let prometheus_text t =
  let b = Buffer.create 8192 in
  let typ name kind = Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind) in
  let gauge name v =
    typ name "gauge";
    Buffer.add_string b (Printf.sprintf "%s %.6g\n" name v)
  in
  List.iter
    (fun (name, v) ->
      let n = prom_name name ^ "_total" in
      typ n "counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    (Obs.Metrics.snapshot ());
  List.iter
    (fun (h : Obs.Metrics.hist_summary) ->
      let n = prom_name h.Obs.Metrics.hs_name in
      typ n "histogram";
      let buckets = h.Obs.Metrics.hs_buckets in
      let top = ref 0 in
      Array.iteri (fun i c -> if c > 0 then top := i) buckets;
      let cum = ref 0 in
      for i = 0 to !top do
        cum := !cum + buckets.(i);
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"%.6g\"} %d\n" n (ldexp 1. i) !cum)
      done;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %.6g\n%s_count %d\n" n
           h.Obs.Metrics.hs_count n h.Obs.Metrics.hs_sum n h.Obs.Metrics.hs_count))
    (Obs.Metrics.hist_snapshot ());
  List.iter
    (fun (s : Obs.Rolling.snap) ->
      let n = prom_name s.Obs.Rolling.rs_name ^ "_rolling" in
      gauge (n ^ "_count") (float_of_int s.Obs.Rolling.rs_count);
      gauge (n ^ "_rate") s.Obs.Rolling.rs_rate;
      gauge (n ^ "_p50") s.Obs.Rolling.rs_p50;
      gauge (n ^ "_p95") s.Obs.Rolling.rs_p95;
      gauge (n ^ "_p99") s.Obs.Rolling.rs_p99)
    (Obs.Rolling.snapshot_all ());
  gauge "serve_uptime_seconds" (Unix.gettimeofday () -. t.started);
  gauge "serve_queue_depth" (float_of_int (queue_depth t));
  gauge "serve_queue_cap" (float_of_int t.config.queue_cap);
  gauge "serve_pool" (float_of_int t.config.pool);
  let plan_stats = Cache.Lru.stats t.plan_cache in
  let result_stats = Cache.Lru.stats t.result_cache in
  gauge "serve_plan_cache_entries" (float_of_int plan_stats.Cache.Lru.s_len);
  gauge "serve_plan_cache_evictions" (float_of_int plan_stats.Cache.Lru.s_evictions);
  gauge "serve_result_cache_entries" (float_of_int result_stats.Cache.Lru.s_len);
  gauge "serve_result_cache_evictions"
    (float_of_int result_stats.Cache.Lru.s_evictions);
  let sessions = sessions_sorted t in
  gauge "serve_sessions" (float_of_int (List.length sessions));
  List.iter
    (fun (family, get) ->
      if sessions <> [] then begin
        typ family "gauge";
        List.iter
          (fun s ->
            Mutex.lock s.s_mu;
            let v = get s in
            Mutex.unlock s.s_mu;
            Buffer.add_string b
              (Printf.sprintf "%s{session=\"%d\"} %.6g\n" family s.sid v))
          sessions
      end)
    [
      ("serve_session_queries", fun s -> float_of_int s.s_queries);
      ("serve_session_errors", fun s -> float_of_int s.s_errors);
      ("serve_session_plan_hits", fun s -> float_of_int s.s_plan_hits);
      ("serve_session_result_hits", fun s -> float_of_int s.s_result_hits);
      ("serve_session_ms", fun s -> s.s_ms);
    ];
  Buffer.contents b

(* Minimal HTTP/1.0 server for scrapers: read whatever request head arrives,
   answer every path with the full exposition, close.  One short-lived
   thread per scrape connection. *)
let metrics_conn t fd =
  let buf = Bytes.create 1024 in
  (try ignore (Unix.read fd buf 0 1024) with _ -> ());
  (try
     let body = prometheus_text t in
     let resp =
       Printf.sprintf
         "HTTP/1.0 200 OK\r\n\
          Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
          Content-Length: %d\r\n\
          Connection: close\r\n\r\n%s"
         (String.length body) body
     in
     let rec out pos len =
       if len > 0 then begin
         let w = Unix.write_substring fd resp pos len in
         out (pos + w) (len - w)
       end
     in
     out 0 (String.length resp)
   with _ -> ());
  try Unix.close fd with _ -> ()

let metrics_loop t fd =
  let finished = ref false in
  while not !finished do
    match Unix.accept fd with
    | exception _ -> finished := true
    | cfd, _ ->
      if Atomic.get t.stopping then begin
        (try Unix.close cfd with _ -> ());
        finished := true
      end
      else ignore (Thread.create (fun () -> metrics_conn t cfd) ())
  done;
  (try Unix.close fd with _ -> ());
  match t.config.metrics_addr with
  | Some (`Unix path) -> ( try Unix.unlink path with _ -> ())
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* Job queue and worker pool *)

let submit t job =
  Mutex.lock t.q_mu;
  let r =
    if t.q_closed then `Closed
    else if Queue.length t.queue >= t.config.queue_cap then `Full
    else begin
      Queue.add job t.queue;
      Condition.signal t.q_cv;
      `Ok
    end
  in
  Mutex.unlock t.q_mu;
  r

let take t =
  Mutex.lock t.q_mu;
  let rec loop () =
    if not (Queue.is_empty t.queue) then Some (Queue.take t.queue)
    else if t.q_closed then None
    else begin
      Condition.wait t.q_cv t.q_mu;
      loop ()
    end
  in
  let r = loop () in
  Mutex.unlock t.q_mu;
  r

let run_job t { j_conn; j_id; j_rid; j_submit_s; j_req } =
  let wait_ms = (Unix.gettimeofday () -. j_submit_s) *. 1000. in
  Obs.Metrics.observe h_queue_wait_ms wait_ms;
  Obs.Rolling.observe r_queue_wait_ms wait_ms;
  match j_req with
  | P.Query { sql; analyze } ->
    handle_query t j_conn ~id:j_id ~rid:j_rid ~wait_ms ~analyze sql
  | P.Append { table; rows } -> handle_append t j_conn ~id:j_id table rows
  | P.Ping | P.Set _ | P.Stats | P.Metrics | P.Shutdown ->
    (* control ops never reach the queue *)
    send_error j_conn ~id:j_id ~code:"error" "internal: control op queued"

let rec worker_loop t =
  match take t with
  | None -> ()
  | Some job ->
    (try run_job t job
     with e ->
       (try send_error job.j_conn ~id:job.j_id ~code:"error" (Printexc.to_string e)
        with _ -> ()));
    worker_loop t

(* ---------------------------------------------------------------- *)
(* Lifecycle *)

(* Closing a listening fd does not wake a thread blocked in accept(2), so
   poke the listener with a throwaway connection; its accept loop sees
   [stopping] and exits, closing the fd itself.  [port] overrides the
   configured port (an ephemeral bind resolves port 0 at listen time). *)
let poke_listener ?port addr =
  try
    let domain, sockaddr =
      match addr with
      | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | `Tcp (_, p) ->
        let p = match port with Some p -> p | None -> p in
        ( Unix.PF_INET,
          Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", p) )
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.connect fd sockaddr;
    Unix.close fd
  with _ -> ()

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | _ | (exception _) -> None

(* The metrics listener's effective address (the configured one with an
   ephemeral TCP port resolved to the bound port), None when disabled. *)
let metrics_addr t =
  match (t.metrics_fd, t.config.metrics_addr) with
  | Some fd, Some (`Tcp (host, port)) ->
    (match bound_port fd with
     | Some p -> Some (`Tcp (host, p))
     | None -> Some (`Tcp (host, port)))
  | Some _, addr -> addr
  | None, _ -> None

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    poke_listener t.config.listen;
    (match (t.metrics_fd, t.config.metrics_addr) with
     | Some fd, Some addr -> poke_listener ?port:(bound_port fd) addr
     | _ -> ());
    Mutex.lock t.q_mu;
    t.q_closed <- true;
    Condition.broadcast t.q_cv;
    Mutex.unlock t.q_mu
  end

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.metrics_thread with Some th -> Thread.join th | None -> ());
  List.iter Domain.join t.workers;
  t.workers <- [];
  Mutex.lock t.slow_mu;
  (match t.slow_oc with
   | Some oc ->
     t.slow_oc <- None;
     close_out_noerr oc
   | None -> ());
  Mutex.unlock t.slow_mu

let reader_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let finished = ref false in
  while not !finished do
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> finished := true
    | line when String.trim line = "" -> ()
    | line -> (
      match P.parse_request (Json.of_string line) with
      | exception Json.Parse_error m ->
        send_error conn ~id:0 ~code:"bad_request" ("invalid json: " ^ m)
      | Error m -> send_error conn ~id:0 ~code:"bad_request" m
      | Ok { P.rq_id = id; rq } -> (
        match rq with
        | P.Ping -> send_ok conn ~id [ ("pong", Json.Bool true) ]
        | P.Set kvs -> handle_set t conn ~id kvs
        | P.Stats -> handle_stats t conn ~id
        | P.Metrics -> handle_metrics t conn ~id
        | P.Shutdown ->
          send_ok conn ~id [ ("stopping", Json.Bool true) ];
          stop t;
          finished := true
        | P.Query _ | P.Append _ -> (
          match
            submit t
              {
                j_conn = conn;
                j_id = id;
                j_rid = Atomic.fetch_and_add next_rid 1;
                j_submit_s = Unix.gettimeofday ();
                j_req = rq;
              }
          with
          | `Ok -> ()
          | `Full ->
            Obs.Metrics.incr c_rejected;
            send_error conn ~id ~code:"overloaded"
              (Printf.sprintf "queue full (%d jobs queued); retry later"
                 t.config.queue_cap)
          | `Closed ->
            send_error conn ~id ~code:"error" "server shutting down")))
  done;
  drop_session t conn.session;
  (try close_out_noerr conn.oc with _ -> ());
  try Unix.close conn.fd with _ -> ()

let accept_loop t =
  let finished = ref false in
  while not !finished do
    match Unix.accept t.listen_fd with
    | exception _ -> finished := true
    | fd, _ ->
      if Atomic.get t.stopping then begin
        (try Unix.close fd with _ -> ());
        finished := true
      end
      else begin
        let session = fresh_session t in
        let conn =
          { fd; oc = Unix.out_channel_of_descr fd; w_mu = Mutex.create (); session }
        in
        send conn
          (Json.Obj
             [
               ("hello", Json.Str "iceberg");
               ("session", Json.Num (float_of_int session.sid));
             ]);
        ignore (Thread.create (fun () -> reader_loop t conn) ())
      end
  done;
  (try Unix.close t.listen_fd with _ -> ());
  match t.config.listen with
  | `Unix path -> ( try Unix.unlink path with _ -> ())
  | `Tcp _ -> ()

let bind_listener addr =
  match addr with
  | `Unix path ->
    (try Unix.unlink path with _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let ip =
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd 64;
    fd

let start ?(config = default_config) catalogs =
  if catalogs = [] then invalid_arg "Server.start: no catalogs";
  let t =
    {
      config;
      catalogs;
      plan_cache = Cache.Lru.create config.plan_cache_cap;
      result_cache = Cache.Lru.create config.result_cache_cap;
      lock = Rwlock.create ();
      queue = Queue.create ();
      q_mu = Mutex.create ();
      q_cv = Condition.create ();
      q_closed = false;
      sessions = Hashtbl.create 16;
      sess_mu = Mutex.create ();
      next_sid = Atomic.make 1;
      stopping = Atomic.make false;
      started = Unix.gettimeofday ();
      listen_fd = Unix.stdin;  (* replaced below *)
      accept_thread = None;
      workers = [];
      metrics_fd = None;
      metrics_thread = None;
      slow_mu = Mutex.create ();
      slow_oc = None;
    }
  in
  t.listen_fd <- bind_listener config.listen;
  (match config.metrics_addr with
   | None -> ()
   | Some addr ->
     let fd = bind_listener addr in
     t.metrics_fd <- Some fd;
     t.metrics_thread <- Some (Thread.create (fun () -> metrics_loop t fd) ()));
  t.workers <-
    List.init (max 1 config.pool) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let shutdown t =
  stop t;
  wait t
