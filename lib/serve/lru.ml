(* Bounded, thread-safe LRU keyed by string.  One mutex per cache: every
   operation is a handful of hashtable probes and pointer swaps, so the
   critical sections are tiny next to query execution.  Recency is an
   intrusive doubly-linked list — [get] unlinks the node and re-links it at
   the head, [put] beyond capacity evicts the tail. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  mu : Mutex.t;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create capacity =
  {
    capacity = max 1 capacity;
    mu = Mutex.create ();
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let put t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        n.value <- value;
        unlink t n;
        push_front t n
      | None ->
        if Hashtbl.length t.tbl >= t.capacity then begin
          match t.tail with
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.key;
            t.evictions <- t.evictions + 1
          | None -> ()
        end;
        let n = { key; value; prev = None; next = None } in
        Hashtbl.add t.tbl key n;
        push_front t n)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl key
      | None -> ())

(* Drop every entry failing [keep] (explicit invalidation sweeps). *)
let retain t keep =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold (fun k n acc -> if keep k n.value then acc else n :: acc) t.tbl []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.tbl n.key)
        doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None)

let length t = locked t (fun () -> Hashtbl.length t.tbl)

type stats = { s_hits : int; s_misses : int; s_evictions : int; s_len : int }

let stats t =
  locked t (fun () ->
      {
        s_hits = t.hits;
        s_misses = t.misses;
        s_evictions = t.evictions;
        s_len = Hashtbl.length t.tbl;
      })
