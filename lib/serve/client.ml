(* Synchronous client for the query server: one request on the wire at a
   time, response matched by id.  Each [t] owns one connection and is NOT
   itself thread-safe — concurrent clients (the bench harness, the
   differential fuzz tests) each open their own. *)

open Relalg
module Json = Obs.Json
module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  session : int;  (* server-assigned, from the hello line *)
}

exception Server_error of { code : string; message : string }

let connect (addr : P.addr) =
  let fd =
    match addr with
    | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.connect fd (Unix.ADDR_INET (ip, port));
      fd
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let hello = Json.of_string (input_line ic) in
  let session =
    match Json.member "session" hello with
    | Some (Json.Num n) -> int_of_float n
    | _ -> 0
  in
  { fd; ic; oc; next_id = 1; session }

let session t = t.session

let close t =
  close_out_noerr t.oc;
  try Unix.close t.fd with _ -> ()

(* Send one request and block for its response.  Raises {!Server_error} on
   an [ok:false] response, so call sites read straight-line. *)
let rpc t rq =
  let id = t.next_id in
  t.next_id <- id + 1;
  output_string t.oc (Json.to_string (P.encode_request { P.rq_id = id; rq }));
  output_char t.oc '\n';
  flush t.oc;
  let rec read_response () =
    let j = Json.of_string (input_line t.ic) in
    match Json.member "id" j with
    | Some (Json.Num n) when int_of_float n = id -> j
    | _ -> read_response ()  (* unsolicited/stale line; keep looking *)
  in
  let j = read_response () in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> j
  | _ ->
    let str k =
      match Json.member k j with Some (Json.Str s) -> s | _ -> ""
    in
    raise (Server_error { code = str "code"; message = str "error" })

let ping t = ignore (rpc t P.Ping)
let query ?(analyze = false) t sql = rpc t (P.Query { sql; analyze })
let set t kvs = rpc t (P.Set kvs)
let append t table rows = rpc t (P.Append { table; rows })
let stats t = rpc t P.Stats
let metrics t = rpc t P.Metrics

let shutdown t =
  try ignore (rpc t P.Shutdown) with End_of_file | Sys_error _ -> ()

(* Decode a query response's row payload back into a relation (column
   names keep any qualifiers verbatim; result comparison in the tests goes
   through [Runner.same_result], which ignores names). *)
let relation_of_response j =
  let cols =
    match Json.member "columns" j with
    | Some (Json.Arr cs) ->
      List.map (function Json.Str s -> s | _ -> invalid_arg "columns") cs
    | _ -> invalid_arg "response has no columns"
  in
  let rows =
    match Json.member "rows" j with
    | Some (Json.Arr rs) ->
      List.map
        (function
          | Json.Arr cells -> Array.of_list (List.map P.value_of_json cells)
          | _ -> invalid_arg "rows")
        rs
    | _ -> invalid_arg "response has no rows"
  in
  Relation.of_rows (Schema.of_names cols) rows

let cached j = Json.member "cached" j = Some (Json.Bool true)

let ms j =
  match Json.member "ms" j with Some (Json.Num x) -> x | _ -> 0.

let rows_n j =
  match Json.member "rows_n" j with
  | Some (Json.Num x) -> int_of_float x
  | _ -> 0
