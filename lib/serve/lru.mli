(** Bounded, thread-safe LRU cache keyed by string (the server's plan and
    result caches).  All operations take the cache's single mutex; critical
    sections are O(1) hashtable probes and list relinks (plus O(n) for
    {!retain}'s sweep). *)

type 'a t

val create : int -> 'a t
(** [create capacity]: capacity is clamped to ≥ 1. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes recency.  Hit/miss tallies feed {!stats}. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or overwrite; beyond capacity the least-recently-used entry is
    evicted. *)

val remove : 'a t -> string -> unit

val retain : 'a t -> (string -> 'a -> bool) -> int
(** Drop every entry failing the predicate (explicit invalidation); returns
    how many were dropped. *)

val clear : 'a t -> unit
val length : 'a t -> int

type stats = { s_hits : int; s_misses : int; s_evictions : int; s_len : int }

val stats : 'a t -> stats
