(** Synchronous client for the query server: one request on the wire at a
    time, response matched by id.  A [t] owns one connection/session and
    is not itself thread-safe — concurrent load generators (the bench
    harness, the differential fuzz tests) each open their own. *)

type t

(** An [ok:false] response, re-raised at the call site.  [code] is
    [overloaded] (admission backpressure — safe to retry), [bad_request]
    or [error]. *)
exception Server_error of { code : string; message : string }

val connect : Protocol.addr -> t

(** The server-assigned session id (from the hello line). *)
val session : t -> int

val close : t -> unit

(** Send one request and block for its response.  Raises {!Server_error}
    on failure responses. *)
val rpc : t -> Protocol.request -> Obs.Json.t

val ping : t -> unit
val query : ?analyze:bool -> t -> string -> Obs.Json.t
val set : t -> (string * Obs.Json.t) list -> Obs.Json.t
val append : t -> string -> Obs.Json.t list -> Obs.Json.t
val stats : t -> Obs.Json.t

(** The metrics exposition document: cumulative counters and histogram
    summaries, rolling-window snapshots (qps, p50/p95 over the last
    minute), queue/cache gauges — the [monitor] view's data source. *)
val metrics : t -> Obs.Json.t

(** Request shutdown; tolerates the connection dropping as the server
    stops. *)
val shutdown : t -> unit

(** Decode a query response's row payload back into a relation.  Column
    names keep qualifiers verbatim; compare results with
    {!Core.Runner.same_result}, which ignores names. *)
val relation_of_response : Obs.Json.t -> Relalg.Relation.t

(** The [cached] flag of a query response (result-cache hit). *)
val cached : Obs.Json.t -> bool

(** Server-side execution time of a query response, in milliseconds (the
    original execution's time when the response was served from the result
    cache). *)
val ms : Obs.Json.t -> float

(** Total result cardinality, independent of any [max_rows] truncation. *)
val rows_n : Obs.Json.t -> int
