open Relalg

type algorithm = Naive | Coarse_count | Defer_count | Multi_stage

type config = {
  buckets : int;
  stages : int;
  sample_rate : float;
  seed : int;
}

let default_config = { buckets = 512; stages = 3; sample_rate = 0.05; seed = 7 }

type stats = {
  scans : int;
  candidates : int;
  false_positives : int;
  exact_counters : int;
}

(* A cheap deterministic per-stage hash of a key row. *)
let key_hash stage key =
  let h = ref (0x9E3779B9 + (stage * 0x85EBCA6B)) in
  Array.iter (fun v -> h := (!h * 31) + Value.hash v) key;
  !h land max_int

(* splitmix-style PRN for sampling, independent of the key hash *)
let sample_rand seed i =
  let z = (seed + (i * 0x9E3779B9)) land max_int in
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  float_of_int (z land 0xFFFFFF) /. float_of_int 0x1000000

let out_schema rel key =
  Schema.of_cols
    (List.map (fun i -> Schema.nth rel.Relation.schema i) key @ [ Schema.col "count" ])

(* The per-row contribution under the chosen metric: 1 for COUNT, the
   (non-negative) value for SUM. *)
let weight_of metric row =
  match metric with
  | `Count -> 1
  | `Sum i ->
    (match row.(i) with
     | Value.Int v -> max 0 v
     | Value.Float v -> max 0 (int_of_float v)
     | Value.Null | Value.Str _ | Value.Bool _ -> 0)

(* Exact counting of a set of rows' keys into a fresh table. *)
let exact_counts ~metric rel key_idx ~keep =
  let counts = Row.Tbl.create 1024 in
  Relation.iter
    (fun row ->
      let k = Row.project row key_idx in
      if keep k then
        Row.Tbl.replace counts k
          (weight_of metric row + Option.value (Row.Tbl.find_opt counts k) ~default:0))
    rel;
  counts

let result_of_counts schema counts threshold =
  let out = ref [] in
  Row.Tbl.iter
    (fun k n -> if n >= threshold then out := Array.append k [| Value.Int n |] :: !out)
    counts;
  Relation.of_rows schema !out

let iceberg_count ?(config = default_config) ?(metric = `Count) ~algorithm rel ~key
    ~threshold =
  let schema = out_schema rel key in
  match algorithm with
  | Naive ->
    let counts = exact_counts ~metric rel key ~keep:(fun _ -> true) in
    ( result_of_counts schema counts threshold,
      {
        scans = 1;
        candidates = Row.Tbl.length counts;
        false_positives = 0;
        exact_counters = Row.Tbl.length counts;
      } )
  | Coarse_count | Multi_stage ->
    let stages = if algorithm = Coarse_count then 1 else max 1 config.stages in
    (* pass 1..stages folded into one scan: bucket counting *)
    let arrays = Array.init stages (fun _ -> Array.make config.buckets 0) in
    Relation.iter
      (fun row ->
        let k = Row.project row key in
        let w = weight_of metric row in
        for s = 0 to stages - 1 do
          let b = key_hash s k mod config.buckets in
          arrays.(s).(b) <- arrays.(s).(b) + w
        done)
      rel;
    (* candidate-selection scan + final exact count, folded: a key is a
       candidate iff every stage bucket is heavy *)
    let candidate k =
      let rec go s =
        s >= stages
        || (arrays.(s).(key_hash s k mod config.buckets) >= threshold && go (s + 1))
      in
      go 0
    in
    let counts = exact_counts ~metric rel key ~keep:candidate in
    let n_candidates = Row.Tbl.length counts in
    let result = result_of_counts schema counts threshold in
    ( result,
      {
        scans = 2;
        candidates = n_candidates;
        false_positives = n_candidates - Relation.cardinality result;
        exact_counters = n_candidates;
      } )
  | Defer_count ->
    (* pass 1: sample to find likely-heavy keys.  The sample must give a
       heavy key a few expected occurrences or it cannot discriminate, so
       the rate is raised to at least 3/threshold. *)
    let rate = Float.max config.sample_rate (3. /. float_of_int (max 1 threshold)) in
    let sampled = Row.Tbl.create 256 in
    let i = ref 0 in
    Relation.iter
      (fun row ->
        incr i;
        if sample_rand config.seed !i < rate then begin
          let k = Row.project row key in
          Row.Tbl.replace sampled k
            (1 + Option.value (Row.Tbl.find_opt sampled k) ~default:0)
        end)
      rel;
    let sample_cut =
      (* a key with true count = threshold has expected sampled count
         rate·threshold; use half of that to keep false negatives of the
         sampling phase harmless (they fall through to the buckets) *)
      Float.max 2. (rate *. float_of_int threshold /. 2.)
    in
    let heavy = Row.Tbl.create 64 in
    Row.Tbl.iter
      (fun k n -> if float_of_int n >= sample_cut then Row.Tbl.replace heavy k ())
      sampled;
    (* pass 2: count heavy keys exactly; everything else goes to buckets *)
    let buckets = Array.make config.buckets 0 in
    let heavy_counts = Row.Tbl.create 64 in
    Relation.iter
      (fun row ->
        let k = Row.project row key in
        let w = weight_of metric row in
        if Row.Tbl.mem heavy k then
          Row.Tbl.replace heavy_counts k
            (w + Option.value (Row.Tbl.find_opt heavy_counts k) ~default:0)
        else begin
          let b = key_hash 0 k mod config.buckets in
          buckets.(b) <- buckets.(b) + w
        end)
      rel;
    (* pass 3: exact count of bucket-implied candidates *)
    let candidate k =
      (not (Row.Tbl.mem heavy k)) && buckets.(key_hash 0 k mod config.buckets) >= threshold
    in
    let counts = exact_counts ~metric rel key ~keep:candidate in
    let n_candidates = Row.Tbl.length counts + Row.Tbl.length heavy_counts in
    Row.Tbl.iter (fun k n -> Row.Tbl.replace counts k n) heavy_counts;
    let result = result_of_counts schema counts threshold in
    ( result,
      {
        scans = 3;
        candidates = n_candidates;
        false_positives = n_candidates - Relation.cardinality result;
        exact_counters = n_candidates;
      } )
