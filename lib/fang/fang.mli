(** The classic iceberg-query algorithms of Fang et al. (VLDB'99) — the
    paper's reference [9] and the origin of the term.  They compute

      SELECT K, COUNT(.) FROM R GROUP BY K HAVING COUNT(.) >= threshold

    without materializing a per-group table for every candidate group:
    probabilistic counting passes produce a small candidate set with no
    false negatives, and one final scan removes the false positives.

    Implemented variants:
    - [Naive] — exact hash aggregation (the correctness oracle).
    - [Coarse_count] — one bucket-counting pass: each key hashes to one of
      [buckets] counters; keys landing in a "heavy" bucket (count ≥
      threshold) are candidates.
    - [Defer_count] — sample first; keys that look heavy in the sample are
      counted exactly and {e excluded} from the buckets, which removes the
      dominant source of bucket over-counts (the paper's DEFER-COUNT).
    - [Multi_stage] — several independent bucket arrays (à la Bloom): a key
      is a candidate only if {e all} of its buckets are heavy
      (the paper's MULTI-STAGE).

    The Smart-Iceberg framework targets the join in front of the grouping;
    these techniques target the grouping itself, so they compose: the
    relation scanned here may be any join result.  We include them as the
    historical baseline for the grouping stage. *)

type algorithm = Naive | Coarse_count | Defer_count | Multi_stage

type config = {
  buckets : int;  (** counters per bucket array *)
  stages : int;  (** bucket arrays for [Multi_stage] *)
  sample_rate : float;  (** sampling fraction for [Defer_count] *)
  seed : int;
}

val default_config : config

type stats = {
  scans : int;  (** passes over the input *)
  candidates : int;  (** groups surviving the probabilistic passes *)
  false_positives : int;  (** candidates removed by the final scan *)
  exact_counters : int;  (** peak exactly-counted groups (memory proxy) *)
}

(** [iceberg_count ?config ?metric ~algorithm rel ~key ~threshold] returns
    the groups (key columns ++ aggregate) whose aggregate is ≥ [threshold],
    plus execution statistics.  [key] gives the grouping column indexes.
    [metric] is the aggregate: [`Count] (default) or [`Sum i], summing the
    i-th column — the paper's opening example (revenue ≥ 10⁶) is a SUM
    iceberg.  For [`Sum] the values must be non-negative integers, or the
    coarse passes could produce false negatives. *)
val iceberg_count :
  ?config:config ->
  ?metric:[ `Count | `Sum of int ] ->
  algorithm:algorithm ->
  Relalg.Relation.t ->
  key:int list ->
  threshold:int ->
  Relalg.Relation.t * stats
