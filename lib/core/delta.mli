(** Incremental maintenance of cached iceberg results under appends.

    An entry holds the query's algebraic partial states (one partial row per
    group, HAVING not yet applied).  Appending Δ rows to a table folds in
    via telescoping delta joins — for k occurrences of the table in FROM,
    k runs that each place Δ at one occurrence (old prefix before it, the
    grown table after) — so maintenance is O(Δ ⋈ rest), not a recompute.
    When the WHERE conjuncts local to every occurrence refute all delta
    rows, the result provably cannot change ([`Revalidated]).

    The catalog is temporarily extended with delta/prefix temp tables while
    a step runs: callers must hold the same exclusive lock they use for
    catalog mutation (the server applies maintenance inside [handle_append]'s
    write section). *)

type t

val supported : Relalg.Catalog.t -> Sqlfront.Ast.query -> bool
(** Whether the query has a delta rule: base tables only, no WITH /
    DISTINCT / ORDER BY / LIMIT / subqueries / SELECT *, and all aggregates
    algebraic (COUNT DISTINCT is holistic and refused). *)

val init : ?max_groups:int -> Relalg.Catalog.t -> Sqlfront.Ast.query -> t option
(** Build maintenance state by running the partials query (one full
    execution, comparable to the query itself).  [None] when the query is
    unsupported, the group count exceeds [max_groups] (default 200k), or
    compilation fails — callers just serve the query uncached-maintained. *)

val tables : t -> string list
(** Normalized base tables the query reads (the entry's invalidation key). *)

val apply :
  ?max_delta_frac:float ->
  t ->
  table:string ->
  delta:Relalg.Relation.t ->
  ([ `Incremental of int | `Revalidated ], string) result
(** Fold an append of [delta] rows to [table] into the partial states.
    [`Revalidated]: every delta row was refuted by occurrence-local WHERE
    conjuncts — state and result unchanged.  [`Incremental n]: the delta
    was folded in; [n] counts delta rows per occurrence placement that
    survived local filtering (a row joining at both occurrences of a
    self-join counts twice).  [Error] (delta larger than
    [max_delta_frac] of the table, default 0.5, or an execution failure):
    the state is unreliable and the caller must recompute from scratch. *)

val result : t -> Relalg.Relation.t
(** Finalize: compute finals from partials, apply HAVING, evaluate the
    SELECT list.  Bag-equal to re-running the query from scratch. *)

val groups : t -> int
(** Number of maintained groups (below- and above-threshold). *)
