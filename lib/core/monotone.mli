(** Monotonicity classification of HAVING conditions (Definition 1, Table 2).

    A condition Φ is monotone when T ⊆ T' implies Φ(T) ⇒ Φ(T'), and
    anti-monotone when T ⊇ T' implies Φ(T) ⇒ Φ(T').  Set-insensitive
    conditions (no aggregates) are [Both].  The classification is
    conservative: anything unrecognized is [Neither].

    Note on Table 2: the paper's table lists MIN(A) >= c as monotone and
    MIN(A) <= c as anti-monotone, but under Definition 1 the directions for
    MIN are the mirror image of MAX (growing a set can only decrease its
    minimum); we implement the mathematically consistent classification
    (MIN >= c anti-monotone, MIN <= c monotone) and record the discrepancy
    in DESIGN.md.

    SUM thresholds are only classified when the argument is provably
    non-negative (Table 2's dom(A) ⊆ ℝ≥0 caveat), via the [nonneg] oracle
    backed by catalog domain facts. *)

type t = Monotone | Anti_monotone | Both | Neither

val to_string : t -> string
val is_monotone : t -> bool
val is_anti_monotone : t -> bool

(** [classify ~nonneg phi]. [nonneg] answers whether a column's domain is
    known ⊆ ℝ≥0. *)
val classify :
  nonneg:(string option * string -> bool) -> Sqlfront.Ast.pred -> t
