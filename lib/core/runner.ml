open Sqlfront
open Relalg

type report = {
  technique : Optimizer.technique;
  apriori : Optimizer.apriori_rewrite list;
  nljp_outer : string list option;
  nljp_stats : Nljp.stats option;
  nljp_describe : string option;
  transfer : Transfer.result option;
      (** predicate-transfer passes that ran before NLJP, if any *)
  notes : string list;
  cte_reports : (string * report) list;
}

(* Predicate transfer defaults on; SI_TRANSFER=0 is the ablation switch
   (the CLI's [--no-transfer] sets the same thing explicitly). *)
let transfer_default () =
  match Sys.getenv_opt "SI_TRANSFER" with
  | Some ("0" | "false" | "off" | "no") -> false
  | _ -> true

(* ---- metadata derivation for materialized CTE results ---- *)

(* Output columns of a query's SELECT list, in order. *)
let output_names (q : Ast.query) =
  List.mapi
    (fun i item ->
      match item with
      | Ast.Sel_star -> None
      | Ast.Sel_expr (s, alias) ->
        (match alias, s with
         | Some a, _ -> Some (a, s)
         | None, Ast.S_col (_, n) -> Some (n, s)
         | None, _ -> Some (Printf.sprintf "col%d" i, s)))
    q.Ast.select

(* If every GROUP BY column survives into the SELECT list, those output
   columns form a key of the result. *)
let derived_key (q : Ast.query) =
  if q.Ast.group_by = [] then None
  else begin
    let names = output_names q in
    let covers (gq, gn) =
      List.find_map
        (fun entry ->
          match entry with
          | Some (out, Ast.S_col (sq, sn)) when String.equal sn gn ->
            (match gq, sq with
             | None, _ | _, None -> Some out
             | Some a, Some b -> if String.equal a b then Some out else None)
          | _ -> None)
        names
    in
    let keys = List.map covers q.Ast.group_by in
    if List.for_all Option.is_some keys then Some (List.map Option.get keys)
    else None
  end

(* Non-negativity of a source column of the query, from catalog facts. *)
let source_nonneg catalog (q : Ast.query) (qq, n) =
  let tables =
    List.filter_map
      (function
        | Ast.T_table (name, alias) -> Some (name, Option.value alias ~default:name)
        | Ast.T_subquery _ -> None)
      q.Ast.from
  in
  let check (tname, alias) =
    match qq with
    | Some a when not (String.equal a alias) -> false
    | _ ->
      (match Catalog.find_opt catalog tname with
       | None -> false
       | Some tbl ->
         Schema.mem tbl.Catalog.rel.Relation.schema (Schema.col n)
         && Catalog.is_nonneg tbl n)
  in
  List.exists check tables

let rec scalar_nonneg catalog q s =
  match s with
  | Ast.S_const (Value.Int i) -> i >= 0
  | Ast.S_const (Value.Float f) -> f >= 0.
  | Ast.S_const _ -> false
  | Ast.S_col (qq, n) -> source_nonneg catalog q (qq, n)
  | Ast.S_binop ((Expr.Add | Expr.Mul), a, b) ->
    scalar_nonneg catalog q a && scalar_nonneg catalog q b
  | Ast.S_binop ((Expr.Sub | Expr.Div), _, _) -> false
  | Ast.S_neg _ -> false
  | Ast.S_agg a ->
    (match a with
     | Ast.A_count_star | Ast.A_count _ | Ast.A_count_distinct _ -> true
     | Ast.A_sum x | Ast.A_min x | Ast.A_max x | Ast.A_avg x ->
       scalar_nonneg catalog q x)

let derived_nonneg catalog (q : Ast.query) =
  List.filter_map
    (function
      | Some (out, s) -> if scalar_nonneg catalog q s then Some out else None
      | None -> None)
    (output_names q)

(* ---- execution ---- *)

(* Span plumbing: spans are explicit and optional — when the caller passes
   none, tracing costs nothing. *)
let in_span span name f =
  match span with
  | None -> f None
  | Some parent -> Obs.Span.with_span ~parent name (fun s -> f (Some s))

let span_rows_out s n =
  match s with Some sp -> sp.Obs.Span.rows_out <- Some n | None -> ()

let span_counter s k v =
  match s with Some sp -> Obs.Span.set_counter sp k v | None -> ()

let span_note s msg = match s with Some sp -> Obs.Span.note sp msg | None -> ()

let fresh_temp_name catalog base =
  if not (Catalog.mem catalog base) then base
  else begin
    let rec go i =
      let name = Printf.sprintf "%s__%d" base i in
      if Catalog.mem catalog name then go (i + 1) else name
    in
    go 0
  end

let rename_table_refs (q : Ast.query) renames =
  {
    q with
    Ast.from =
      List.map
        (fun item ->
          match item with
          | Ast.T_table (name, alias) ->
            (match List.assoc_opt (String.lowercase_ascii name) renames with
             | Some fresh ->
               Ast.T_table (fresh, Some (Option.value alias ~default:name))
             | None -> item)
          | Ast.T_subquery _ -> item)
        q.Ast.from;
  }

let rec run ?span ?(analyze = false) ?(tech = Optimizer.all_techniques)
    ?(nljp_config = Nljp.default_config) ?workers ?(memo_strategy = `Nljp)
    ?(adaptive_apriori = false) ?transfer catalog (q : Ast.query) =
  let transfer = match transfer with Some t -> t | None -> transfer_default () in
  (* [?workers] overrides the NLJP worker count; once folded into the config
     it propagates to CTE blocks through the recursive call below. *)
  let nljp_config =
    match workers with
    | None -> nljp_config
    | Some w -> { nljp_config with Nljp.workers = w }
  in
  (* Materialize CTE blocks (each optimized recursively), registering them
     as temp tables carrying derived keys and domain facts. *)
  let temp_names = ref [] in
  let renames = ref [] in
  let cte_reports = ref [] in
  List.iter
    (fun (name, def) ->
      let def = rename_table_refs def !renames in
      let rel, rep =
        in_span span ("cte:" ^ name) (fun s ->
            let rel, rep =
              run ?span:s ~analyze ~tech ~nljp_config ~memo_strategy
                ~adaptive_apriori ~transfer catalog def
            in
            span_rows_out s (Relation.cardinality rel);
            (rel, rep))
      in
      let fresh = fresh_temp_name catalog name in
      let keys = match derived_key def with Some k -> [ k ] | None -> [] in
      let nonneg = derived_nonneg catalog def in
      Catalog.add_temp catalog ~keys ~nonneg fresh
        (Relation.with_schema (Schema.unqualified rel.Relation.schema) rel);
      temp_names := fresh :: !temp_names;
      renames := (String.lowercase_ascii name, fresh) :: !renames;
      cte_reports := (name, rep) :: !cte_reports)
    q.Ast.with_defs;
  let main = rename_table_refs { q with Ast.with_defs = [] } !renames in
  (* Delta of the global block counters across this query, so nested (CTE)
     runs report their own scans without resets clobbering the enclosing
     query's accounting. *)
  let skipped0, scanned0 = Colscan.counters () in
  let tb0, tp0, td0 = Colscan.transfer_counters () in
  (* Compressed-storage tier: blocks decoded vs answered directly on the
     encoded form, and block-cache traffic (lib/column DESIGN.md §13). *)
  let sic_counters =
    List.map Obs.Metrics.counter
      [ "sic.blocks_decoded"; "sic.blocks_direct"; "sic.cache_hits";
        "sic.cache_misses"; "sic.cache_evictions" ]
  in
  let sic0 = List.map Obs.Metrics.read sic_counters in
  let result, rep =
    run_block ~span ~analyze ~tech ~nljp_config ~memo_strategy ~adaptive_apriori
      ~transfer catalog main
  in
  List.iter (Catalog.remove_table catalog) !temp_names;
  let skipped1, scanned1 = Colscan.counters () in
  let tb1, tp1, td1 = Colscan.transfer_counters () in
  let block_notes =
    (if skipped1 > skipped0 || scanned1 > scanned0 then
       [ Printf.sprintf "columnar scan: blocks skipped=%d scanned=%d"
           (skipped1 - skipped0) (scanned1 - scanned0) ]
     else [])
    @
    if tb1 > tb0 || tp1 > tp0 then
      [ Printf.sprintf
          "predicate transfer: blocks skipped=%d rows probed=%d dropped=%d"
          (tb1 - tb0) (tp1 - tp0) (td1 - td0) ]
    else []
  in
  (* Zone-map slice for this block (CTE blocks record their own above). *)
  (match span with
   | Some sp when skipped1 > skipped0 || scanned1 > scanned0 ->
     Obs.Span.add_counter sp "colscan.blocks_skipped" (skipped1 - skipped0);
     Obs.Span.add_counter sp "colscan.blocks_scanned" (scanned1 - scanned0)
   | _ -> ());
  (match span with
   | Some sp when tb1 > tb0 || tp1 > tp0 ->
     Obs.Span.add_counter sp "transfer.blocks_skipped" (tb1 - tb0);
     Obs.Span.add_counter sp "transfer.rows_probed" (tp1 - tp0);
     Obs.Span.add_counter sp "transfer.rows_dropped" (td1 - td0)
   | _ -> ());
  let sic_deltas =
    List.map2
      (fun c v0 -> (Obs.Metrics.name c, Obs.Metrics.read c - v0))
      sic_counters sic0
    |> List.filter (fun (_, d) -> d > 0)
  in
  (match span with
   | Some sp ->
     List.iter (fun (n, d) -> Obs.Span.add_counter sp n d) sic_deltas
   | None -> ());
  let sic_notes =
    if sic_deltas = [] then []
    else
      [ "compressed tier: "
        ^ String.concat " "
            (List.map
               (fun (n, d) ->
                 let n =
                   if String.length n > 4 && String.sub n 0 4 = "sic." then
                     String.sub n 4 (String.length n - 4)
                   else n
                 in
                 Printf.sprintf "%s=%d" n d)
               sic_deltas) ]
  in
  ( result,
    { rep with
      notes = rep.notes @ block_notes @ sic_notes;
      cte_reports = List.rev !cte_reports
    } )

and run_block ~span ~analyze ~tech ~nljp_config ~memo_strategy ~adaptive_apriori
    ~transfer catalog (q : Ast.query) =
  (* Baseline execution of [query].  Under [analyze] with a live span, bind
     once, execute with a per-plan-node recorder, and attach the full plan
     tree as zero-duration child spans — each carrying the cost model's
     estimated rows/cost next to the recorded actual rows.  Plan nodes are
     pipelined, so only the block's wall time is attributable, not
     per-node times (DESIGN.md §10). *)
  let exec_baseline s query =
    match (if analyze then s else None) with
    | None -> Binder.run catalog query
    | Some sp ->
      let plan = Binder.bind catalog query in
      let acts = ref [] in
      let recorder =
        { Exec.rec_rows = (fun path label rows -> acts := (path, (label, rows)) :: !acts) }
      in
      let rel = Exec.run ~recorder catalog plan in
      let tree = Cost.tree catalog plan in
      Obs.Span.set_estimate ~rows:tree.Cost.t_rows ~cost:tree.Cost.t_cost sp;
      Obs.Span.note sp "plan nodes below are pipelined; per-node time not attributed";
      let rec attach parent path (t : Cost.tree) =
        let node = Obs.Span.enter ~parent t.Cost.t_label in
        node.Obs.Span.dur_ms <- 0.;
        Obs.Span.set_estimate ~rows:t.Cost.t_rows ~cost:t.Cost.t_cost node;
        (match List.assoc_opt path !acts with
         | Some (_, rows) -> node.Obs.Span.rows_out <- Some rows
         | None -> ());
        List.iteri (fun i c -> attach node (path @ [ i ]) c) t.Cost.t_children
      in
      attach sp [] tree;
      rel
  in
  (* Estimated output cardinality/cost of the block's baseline plan,
     stamped on the execute span so the block-level Q-error is reported
     even when execution goes through NLJP instead of that plan. *)
  let stamp_block_estimate s query =
    if analyze then
      match s with
      | Some sp ->
        (try
           let est = Cost.estimate catalog (Binder.bind catalog query) in
           Obs.Span.set_estimate ~rows:est.Cost.rows ~cost:est.Cost.cost sp
         with _ -> ())
      | None -> ()
  in
  let fallback notes =
    let rel =
      in_span span "execute" (fun s ->
          List.iter (span_note s) notes;
          let rel = exec_baseline s q in
          span_rows_out s (Relation.cardinality rel);
          rel)
    in
    ( rel,
      {
        technique = tech;
        apriori = [];
        nljp_outer = None;
        nljp_stats = None;
        nljp_describe = None;
        transfer = None;
        notes;
        cte_reports = [];
      } )
  in
  (* Queries outside the iceberg shape (single table, no HAVING, …) run
     directly on the baseline engine. *)
  let optimizable =
    q.Ast.having <> None
    && List.length q.Ast.from >= 2
    && List.for_all (function Ast.T_table _ -> true | _ -> false) q.Ast.from
    && (tech.Optimizer.apriori || tech.Optimizer.memo || tech.Optimizer.pruning)
  in
  if not optimizable then fallback []
  else if
    memo_strategy = `Static_rewrite && tech.Optimizer.memo
    && not tech.Optimizer.pruning
  then begin
    (* Appendix C: memoization through static query rewriting. *)
    match in_span span "optimize" (fun _ -> Optimizer.pick_static_memo catalog q) with
    | Some rewritten ->
      let rel =
        in_span span "execute" (fun s ->
            span_note s "memoization via static rewrite (Listing 8)";
            let rel = exec_baseline s rewritten in
            span_rows_out s (Relation.cardinality rel);
            rel)
      in
      ( rel,
        {
          technique = tech;
          apriori = [];
          nljp_outer = None;
          nljp_stats = None;
          nljp_describe = None;
          transfer = None;
          notes = [ "memoization via static rewrite (Listing 8)" ];
          cte_reports = [];
        } )
    | None -> fallback [ "static memo rewrite not applicable" ]
  end
  else begin
    match
      in_span span "optimize" (fun s ->
          match
            Optimizer.decide ~adaptive:adaptive_apriori ~transfer catalog q
              ~tech ~nljp_config
          with
          | decision ->
            span_counter s "apriori_rewrites"
              (List.length decision.Optimizer.apriori_rewrites);
            List.iter (span_note s) decision.Optimizer.notes;
            decision
          | exception e ->
            span_note s "unsupported query shape";
            raise e)
    with
    | exception Qspec.Unsupported reason ->
      fallback [ "not optimized: " ^ reason ]
    | decision ->
      let base_report =
        {
          technique = tech;
          apriori = decision.Optimizer.apriori_rewrites;
          nljp_outer = None;
          nljp_stats = None;
          nljp_describe = None;
          transfer = None;
          notes = decision.Optimizer.notes;
          cte_reports = [];
        }
      in
      (match decision.Optimizer.nljp with
       | Some (op, aliases) ->
         (* Predicate transfer runs its two semi-join passes before NLJP so
            both side queries scan through the resulting filters. *)
         let transfer_result =
           match decision.Optimizer.transfer with
           | None -> None
           | Some spec ->
             Some
               (in_span span "transfer" (fun s ->
                    let r = Transfer.run ?span:s catalog spec in
                    List.iter (span_note s) r.Transfer.r_notes;
                    r))
         in
         let transfer_filters =
           match transfer_result with
           | Some r -> r.Transfer.r_filters
           | None -> []
         in
         let rel, stats =
           in_span span "execute" (fun s ->
               stamp_block_estimate s q;
               let rel, stats =
                 Nljp.execute ?span:s ~estimate:analyze
                   ~transfer:transfer_filters op
               in
               span_rows_out s (Relation.cardinality rel);
               span_counter s "outer_rows" stats.Nljp.outer_rows;
               span_counter s "inner_evals" stats.Nljp.inner_evals;
               span_counter s "pruned" stats.Nljp.pruned;
               span_counter s "memo_hits" stats.Nljp.memo_hits;
               span_counter s "vector_evals" stats.Nljp.vector_evals;
               span_counter s "waves" stats.Nljp.waves;
               List.iter (span_note s) stats.Nljp.notes;
               (rel, stats))
         in
         ( rel,
           {
             base_report with
             nljp_outer = Some aliases;
             nljp_stats = Some stats;
             nljp_describe = Some (Nljp.describe op);
             transfer = transfer_result;
           } )
       | None ->
         let rel =
           in_span span "execute" (fun s ->
               let rel = exec_baseline s (Optimizer.rewritten_query decision) in
               span_rows_out s (Relation.cardinality rel);
               rel)
         in
         (rel, base_report))
  end

let run_baseline ?(workers = 1) catalog q = Binder.run ~workers catalog q

(* ---- prepared statements (the query server's plan cache entries) ---- *)

(* A prepared query pins the optimizer's decision so repeated executions
   skip the Listing 9 procedure (subset enumeration, reducer analysis,
   pick_* costing).  NLJP decisions additionally carry a cross-query shared
   prune/memo tier and memoize the predicate-transfer Bloom build; both are
   only valid for the catalog version the plan was prepared against — the
   owner re-prepares after any catalog mutation ({!prepared_version}). *)
type prepared_kind =
  | P_direct  (** CTE / non-iceberg / unsupported shape: full [run] per call *)
  | P_rewrite of Ast.query * Optimizer.decision
      (** decision without an NLJP operator: execute the rewritten query *)
  | P_nljp of {
      decision : Optimizer.decision;
      op : Nljp.t;
      aliases : string list;
      shared : Nljp.shared_cache;
      mutable transfer_run : Transfer.result option;
    }

type prepared = {
  p_catalog : Catalog.t;
  p_query : Ast.query;
  p_tech : Optimizer.technique;
  p_nljp_config : Nljp.config;
  p_transfer : bool;
  mutable p_version : int;
  p_kind : prepared_kind;
  p_mu : Mutex.t;
      (* Serializes executions of one prepared plan: the NLJP operator's
         stats record and shared tier are mutated in place.  Distinct
         prepared plans execute concurrently without contention. *)
}

let prepare ?(tech = Optimizer.all_techniques) ?(nljp_config = Nljp.default_config)
    ?workers ?transfer catalog (q : Ast.query) =
  let transfer = match transfer with Some t -> t | None -> transfer_default () in
  let nljp_config =
    match workers with
    | None -> nljp_config
    | Some w -> { nljp_config with Nljp.workers = w }
  in
  (* Same gate as [run_block]; CTE queries go direct — their temp-table
     registration needs the full per-call lifecycle. *)
  let optimizable =
    q.Ast.with_defs = []
    && q.Ast.having <> None
    && List.length q.Ast.from >= 2
    && List.for_all (function Ast.T_table _ -> true | _ -> false) q.Ast.from
    && (tech.Optimizer.apriori || tech.Optimizer.memo || tech.Optimizer.pruning)
  in
  let kind =
    if not optimizable then P_direct
    else
      match Optimizer.decide ~transfer catalog q ~tech ~nljp_config with
      | exception Qspec.Unsupported _ -> P_direct
      | decision ->
        (match decision.Optimizer.nljp with
         | Some (op, aliases) ->
           P_nljp
             {
               decision;
               op;
               aliases;
               shared = Nljp.shared_cache ();
               transfer_run = None;
             }
         | None -> P_rewrite (Optimizer.rewritten_query decision, decision))
  in
  {
    p_catalog = catalog;
    p_query = q;
    p_tech = tech;
    p_nljp_config = nljp_config;
    p_transfer = transfer;
    p_version = Catalog.version catalog;
    p_kind = kind;
    p_mu = Mutex.create ();
  }

let prepared_version p = p.p_version

(* Carry a prepared plan across an append instead of re-preparing it.
   P_direct and P_rewrite re-bind and re-execute against the live catalog
   on every call (a-priori reducer subqueries re-materialize per run), so
   they survive any append unchanged; P_nljp delegates to the operator's
   delta rules for its shared prune/memo tier and always discards the
   predicate-transfer Bloom memo (Blooms describe pre-append tables).
   On [`Kept]/[`Refreshed] the plan's version is advanced to the current
   catalog version so version-keyed owners keep accepting it; [`Reprepare]
   leaves it stale and the owner must rebuild. *)
let refresh_prepared p ~table ~delta =
  Mutex.lock p.p_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.p_mu) @@ fun () ->
  let outcome =
    match p.p_kind with
    | P_direct | P_rewrite _ -> `Kept
    | P_nljp pn ->
      pn.transfer_run <- None;
      (match Nljp.delta_refresh pn.op pn.shared ~table ~delta with
       | `Kept -> `Kept
       | `Refreshed _ -> `Refreshed
       | `Reprepare reason -> `Reprepare reason)
  in
  (match outcome with
   | `Reprepare _ -> ()
   | `Kept | `Refreshed -> p.p_version <- Catalog.version p.p_catalog);
  outcome

let prepared_kind p =
  match p.p_kind with
  | P_direct -> `Direct
  | P_rewrite _ -> `Rewrite
  | P_nljp _ -> `Nljp

let prepared_shared_rows p =
  match p.p_kind with
  | P_nljp pn -> Some (Nljp.shared_cache_rows pn.shared)
  | _ -> None

(* Per-execution delta of the operator's cumulative stats record. *)
let stats_delta (s0 : Nljp.stats) (s1 : Nljp.stats) =
  {
    s1 with
    Nljp.outer_rows = s1.Nljp.outer_rows - s0.Nljp.outer_rows;
    inner_evals = s1.Nljp.inner_evals - s0.Nljp.inner_evals;
    pruned = s1.Nljp.pruned - s0.Nljp.pruned;
    memo_hits = s1.Nljp.memo_hits - s0.Nljp.memo_hits;
    vector_evals = s1.Nljp.vector_evals - s0.Nljp.vector_evals;
    vector_fallbacks = s1.Nljp.vector_fallbacks - s0.Nljp.vector_fallbacks;
    inner_blocks_skipped =
      s1.Nljp.inner_blocks_skipped - s0.Nljp.inner_blocks_skipped;
    inner_blocks_scanned =
      s1.Nljp.inner_blocks_scanned - s0.Nljp.inner_blocks_scanned;
    waves = s1.Nljp.waves - s0.Nljp.waves;
  }

let run_prepared ?span p =
  match p.p_kind with
  | P_direct ->
    run ?span ~tech:p.p_tech ~nljp_config:p.p_nljp_config
      ~transfer:p.p_transfer p.p_catalog p.p_query
  | P_rewrite (rw, decision) ->
    let rel =
      in_span span "execute" (fun s ->
          List.iter (span_note s) decision.Optimizer.notes;
          let rel = Binder.run ~workers:p.p_nljp_config.Nljp.workers p.p_catalog rw in
          span_rows_out s (Relation.cardinality rel);
          rel)
    in
    ( rel,
      {
        technique = p.p_tech;
        apriori = decision.Optimizer.apriori_rewrites;
        nljp_outer = None;
        nljp_stats = None;
        nljp_describe = None;
        transfer = None;
        notes = decision.Optimizer.notes;
        cte_reports = [];
      } )
  | P_nljp pn ->
    Mutex.lock p.p_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock p.p_mu) @@ fun () ->
    let transfer_result =
      match pn.transfer_run with
      | Some r -> Some r
      | None ->
        (match pn.decision.Optimizer.transfer with
         | None -> None
         | Some spec ->
           let r =
             in_span span "transfer" (fun s ->
                 let r = Transfer.run ?span:s p.p_catalog spec in
                 List.iter (span_note s) r.Transfer.r_notes;
                 r)
           in
           pn.transfer_run <- Some r;
           Some r)
    in
    let transfer_filters =
      match transfer_result with Some r -> r.Transfer.r_filters | None -> []
    in
    let before = { (Nljp.op_stats pn.op) with Nljp.notes = [] } in
    let rel, stats =
      in_span span "execute" (fun s ->
          let rel, stats =
            Nljp.execute ?span:s ~transfer:transfer_filters ~shared:pn.shared
              pn.op
          in
          let d = stats_delta before stats in
          span_rows_out s (Relation.cardinality rel);
          span_counter s "outer_rows" d.Nljp.outer_rows;
          span_counter s "inner_evals" d.Nljp.inner_evals;
          span_counter s "pruned" d.Nljp.pruned;
          span_counter s "memo_hits" d.Nljp.memo_hits;
          List.iter (span_note s) stats.Nljp.notes;
          (rel, stats))
    in
    ( rel,
      {
        technique = p.p_tech;
        apriori = pn.decision.Optimizer.apriori_rewrites;
        nljp_outer = Some pn.aliases;
        nljp_stats = Some (stats_delta before stats);
        nljp_describe = Some (Nljp.describe pn.op);
        transfer = transfer_result;
        notes = pn.decision.Optimizer.notes;
        cte_reports = [];
      } )

let rec cache_rows rep =
  let own =
    match rep.nljp_stats with
    | Some s -> s.Nljp.prune_cache_rows + s.Nljp.memo_cache_rows
    | None -> 0
  in
  own + List.fold_left (fun acc (_, r) -> acc + cache_rows r) 0 rep.cte_reports

let rec cache_bytes rep =
  let own = match rep.nljp_stats with Some s -> s.Nljp.cache_bytes | None -> 0 in
  own + List.fold_left (fun acc (_, r) -> acc + cache_bytes r) 0 rep.cte_reports

let same_result = Relation.equal_bag

let report_to_string rep =
  let b = Buffer.create 256 in
  let rec go indent rep =
    let pad = String.make indent ' ' in
    List.iter
      (fun rw ->
        Buffer.add_string b
          (Printf.sprintf "%sa-priori reducer on {%s}:\n%s  %s\n" pad
             (String.concat ", " rw.Optimizer.reduced)
             pad rw.Optimizer.reducer_sql))
      rep.apriori;
    (match rep.nljp_outer with
     | Some aliases ->
       Buffer.add_string b
         (Printf.sprintf "%sNLJP outer side: {%s}\n" pad (String.concat ", " aliases))
     | None -> ());
    (match rep.nljp_describe with
     | Some d ->
       String.split_on_char '\n' d
       |> List.iter (fun line ->
              if line <> "" then Buffer.add_string b (pad ^ line ^ "\n"))
     | None -> ());
    (match rep.transfer with
     | Some t ->
       let per_alias =
         List.map
           (fun (a, (k, n)) -> Printf.sprintf "%s %d/%d" a k n)
           t.Transfer.r_kept
       in
       Buffer.add_string b
         (Printf.sprintf "%spredicate transfer: kept %s\n" pad
            (String.concat ", " per_alias))
     | None -> ());
    (match rep.nljp_stats with
     | Some s ->
       Buffer.add_string b
         (Printf.sprintf
            "%souter=%d inner_evals=%d pruned=%d memo_hits=%d cache_rows=%d cache_kB=%d\n"
            pad s.Nljp.outer_rows s.Nljp.inner_evals s.Nljp.pruned s.Nljp.memo_hits
            (s.Nljp.prune_cache_rows + s.Nljp.memo_cache_rows)
            (s.Nljp.cache_bytes / 1024));
       if s.Nljp.vector_on then
         Buffer.add_string b
           (Printf.sprintf
              "%svectorized inner loop: evals=%d blocks skipped=%d scanned=%d\n"
              pad s.Nljp.vector_evals s.Nljp.inner_blocks_skipped
              s.Nljp.inner_blocks_scanned);
       List.iter (fun n -> Buffer.add_string b (pad ^ "note: " ^ n ^ "\n")) s.Nljp.notes
     | None -> ());
    List.iter (fun n -> Buffer.add_string b (pad ^ n ^ "\n")) rep.notes;
    List.iter
      (fun (name, r) ->
        (* nested notes (e.g. "vector off" degrades) render through [go] *)
        Buffer.add_string b (Printf.sprintf "%scte:%s:\n" pad name);
        go (indent + 2) r)
      rep.cte_reports
  in
  go 0 rep;
  Buffer.contents b
