open Relalg

type estimate = { rows : float; cost : float }

type lookup = Schema.col -> Stats.col_stats option

let default_sel = 1. /. 3.

(* Selectivity of a row predicate given column statistics. *)
let rec selectivity (lookup : lookup) p =
  match p with
  | Expr.Const (Value.Bool true) -> 1.
  | Expr.Const (Value.Bool false) -> 0.
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) ->
    (match lookup c with
     | Some cs -> Stats.range_selectivity cs op v
     | None -> default_sel)
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
    (match lookup c with
     | Some cs -> Stats.range_selectivity cs (Expr.flip_cmp op) v
     | None -> default_sel)
  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
    (* equi-join selectivity: 1 / max(distinct) *)
    (match lookup a, lookup b with
     | Some sa, Some sb ->
       1. /. float_of_int (max 1 (max sa.Stats.distinct sb.Stats.distinct))
     | Some sa, None -> Stats.eq_selectivity sa
     | None, Some sb -> Stats.eq_selectivity sb
     | None, None -> default_sel)
  | Expr.Cmp ((Expr.Le | Expr.Lt | Expr.Ge | Expr.Gt), _, _) -> 0.5
  | Expr.Cmp (Expr.Ne, _, _) -> 1.
  | Expr.Cmp (Expr.Eq, _, _) -> default_sel
  | Expr.And (a, b) -> selectivity lookup a *. selectivity lookup b
  | Expr.Or (a, b) ->
    let sa = selectivity lookup a and sb = selectivity lookup b in
    sa +. sb -. (sa *. sb)
  | Expr.Not a -> 1. -. selectivity lookup a
  | Expr.In_set (es, set) ->
    let eq_sel =
      List.fold_left
        (fun acc e ->
          match e with
          | Expr.Col c ->
            (match lookup c with
             | Some cs -> acc *. Stats.eq_selectivity cs
             | None -> acc *. default_sel)
          | _ -> acc *. default_sel)
        1. es
    in
    Float.min 1. (float_of_int (Expr.row_set_cardinality set) *. eq_sel)
  | Expr.Const _ | Expr.Col _ | Expr.Binop _ | Expr.Neg _ -> default_sel

let distinct_of lookup e =
  match e with
  | Expr.Col c -> Option.map (fun cs -> cs.Stats.distinct) (lookup c)
  | _ -> None

type node = { est : estimate; lookup : lookup; label : string; children : node list }

(* Cached by table name, validated by the relation's physical identity: a
   renamed or replaced table (CTE temp tables, layout flips, a different
   catalog reusing the name) recomputes, while repeated estimates over an
   unchanged catalog — EXPLAIN ANALYZE issues several per block — reuse the
   one stats pass.  Bounded by the number of distinct table names seen.
   Mutex-guarded: the query server plans from several worker domains at
   once, and a torn [Hashtbl] resize is a segfault, not a stale answer. *)
let table_stats_cache : (string, Relation.t * Stats.t) Hashtbl.t = Hashtbl.create 16
let table_stats_mu = Mutex.create ()

let stats_of_table catalog name =
  let key = String.lowercase_ascii name in
  let tbl = Catalog.find catalog name in
  Mutex.lock table_stats_mu;
  let cached =
    match Hashtbl.find_opt table_stats_cache key with
    | Some (rel, s) when rel == tbl.Catalog.rel -> Some s
    | _ -> None
  in
  Mutex.unlock table_stats_mu;
  match cached with
  | Some s -> s
  | None ->
    let s = Stats.of_relation tbl.Catalog.rel in
    Mutex.lock table_stats_mu;
    Hashtbl.replace table_stats_cache key (tbl.Catalog.rel, s);
    Mutex.unlock table_stats_mu;
    s

let lookup_of_stats stats : lookup = fun c -> Stats.col stats c.Schema.name

let combine_lookup a b : lookup =
  fun c -> match a c with Some s -> Some s | None -> b c

let rec analyze catalog plan : node =
  match plan with
  | Plan.Scan { table; alias; filter } ->
    let stats = stats_of_table catalog table in
    let lookup = lookup_of_stats stats in
    let rows0 = float_of_int stats.Stats.row_count in
    let sel = match filter with None -> 1. | Some p -> selectivity lookup p in
    {
      est = { rows = rows0 *. sel; cost = rows0 };
      lookup;
      label =
        Printf.sprintf "Scan %s%s" table
          (match alias with Some a when a <> table -> " AS " ^ a | _ -> "");
      children = [];
    }
  | Plan.Values { name; rel } ->
    let stats = Stats.of_relation rel in
    {
      est = { rows = float_of_int stats.Stats.row_count; cost = 0. };
      lookup = lookup_of_stats stats;
      label = Printf.sprintf "Materialized %s" name;
      children = [];
    }
  | Plan.Filter (p, inner) ->
    let n = analyze catalog inner in
    let sel = selectivity n.lookup p in
    {
      est = { rows = n.est.rows *. sel; cost = n.est.cost +. n.est.rows };
      lookup = n.lookup;
      label = "Filter";
      children = [ n ];
    }
  | Plan.Project (outs, inner) ->
    let n = analyze catalog inner in
    let lookup c =
      List.find_map
        (fun (e, name) ->
          if name.Schema.name = c.Schema.name then
            match e with Expr.Col src -> n.lookup src | _ -> None
          else None)
        outs
    in
    {
      est = { n.est with cost = n.est.cost +. n.est.rows };
      lookup;
      label = "Project";
      children = [ n ];
    }
  | Plan.Nl_join { pred; left; right } ->
    let l = analyze catalog left and r = analyze catalog right in
    let lookup = combine_lookup l.lookup r.lookup in
    let pairs = l.est.rows *. r.est.rows in
    let rows = pairs *. selectivity lookup pred in
    {
      est = { rows; cost = l.est.cost +. r.est.cost +. pairs +. rows };
      lookup;
      label = "Nested Loop";
      children = [ l; r ];
    }
  | Plan.Hash_join { keys; residual; left; right }
  | Plan.Merge_join { keys; residual; left; right } ->
    let l = analyze catalog left and r = analyze catalog right in
    let lookup = combine_lookup l.lookup r.lookup in
    let key_sel =
      List.fold_left
        (fun acc (a, b) ->
          let d =
            max
              (Option.value (distinct_of l.lookup a) ~default:10)
              (Option.value (distinct_of r.lookup b) ~default:10)
          in
          acc /. float_of_int (max 1 d))
        1. keys
    in
    let rows = l.est.rows *. r.est.rows *. key_sel *. selectivity lookup residual in
    let is_merge = match plan with Plan.Merge_join _ -> true | _ -> false in
    let sort_cost n = n *. Float.max 1. (Float.log (Float.max 2. n)) in
    let extra = if is_merge then sort_cost l.est.rows +. sort_cost r.est.rows else 0. in
    {
      est =
        {
          rows;
          cost = l.est.cost +. r.est.cost +. l.est.rows +. r.est.rows +. rows +. extra;
        };
      lookup;
      label = (if is_merge then "Merge Join" else "Hash Join");
      children = [ l; r ];
    }
  | Plan.Index_nl_join { pred; left; table; alias; lo; hi; _ } ->
    let l = analyze catalog left in
    let stats = stats_of_table catalog table in
    let r_lookup = lookup_of_stats stats in
    let lookup = combine_lookup l.lookup r_lookup in
    let r_rows = float_of_int stats.Stats.row_count in
    let bound_frac =
      match lo, hi with Some _, Some _ -> 0.25 | Some _, None | None, Some _ -> 0.5 | None, None -> 1.
    in
    let scanned = l.est.rows *. r_rows *. bound_frac in
    let rows = l.est.rows *. r_rows *. selectivity lookup pred in
    {
      est = { rows; cost = l.est.cost +. scanned +. rows };
      lookup;
      label =
        Printf.sprintf "Index Nested Loop (%s%s)" table
          (match alias with Some a when a <> table -> " AS " ^ a | _ -> "");
      children = [ l ];
    }
  | Plan.Group { group_cols; aggs = _; input } ->
    let n = analyze catalog input in
    let groups =
      List.fold_left
        (fun acc (e, _) ->
          match distinct_of n.lookup e with
          | Some d -> acc *. float_of_int (max 1 d)
          | None -> acc *. Float.max 1. (n.est.rows /. 10.))
        1. group_cols
    in
    let rows = if group_cols = [] then 1. else Float.min n.est.rows groups in
    {
      est = { rows; cost = n.est.cost +. n.est.rows };
      lookup = n.lookup;
      label = "HashAggregate";
      children = [ n ];
    }
  | Plan.Distinct inner ->
    let n = analyze catalog inner in
    {
      est = { rows = n.est.rows *. 0.5; cost = n.est.cost +. n.est.rows };
      lookup = n.lookup;
      label = "Distinct";
      children = [ n ];
    }
  | Plan.Order_by (_, inner) ->
    let n = analyze catalog inner in
    let sort_cost = n.est.rows *. Float.max 1. (Float.log (Float.max 2. n.est.rows)) in
    {
      est = { n.est with cost = n.est.cost +. sort_cost };
      lookup = n.lookup;
      label = "Sort";
      children = [ n ];
    }
  | Plan.Limit (k, inner) ->
    let n = analyze catalog inner in
    {
      est = { rows = Float.min (float_of_int k) n.est.rows; cost = n.est.cost };
      lookup = n.lookup;
      label = Printf.sprintf "Limit %d" k;
      children = [ n ];
    }
  | Plan.Semijoin { keys = _; sub; input } ->
    let s = analyze catalog sub and n = analyze catalog input in
    {
      est = { rows = n.est.rows *. 0.5; cost = s.est.cost +. n.est.cost +. n.est.rows };
      lookup = n.lookup;
      label = "Hash Semi Join (IN)";
      children = [ n; s ];
    }
  | Plan.Rename (alias, inner) ->
    let n = analyze catalog inner in
    {
      est = n.est;
      lookup = n.lookup;
      label = "Subquery " ^ alias;
      children = [ n ];
    }

let estimate catalog plan = (analyze catalog plan).est

(* Public estimate tree: the same per-node labels and estimates [explain]
   prints, with children ordered exactly like the executor visits plan
   children, so a node at child-index path [i; j; ...] here pairs with the
   actual row count the instrumented executor records under that path. *)
type tree = { t_label : string; t_rows : float; t_cost : float; t_children : tree list }

let rec to_tree n =
  {
    t_label = n.label;
    t_rows = n.est.rows;
    t_cost = n.est.cost;
    t_children = List.map to_tree n.children;
  }

let tree catalog plan = to_tree (analyze catalog plan)

let explain catalog plan =
  let root = analyze catalog plan in
  let b = Buffer.create 256 in
  let rec go depth node =
    Buffer.add_string b
      (Printf.sprintf "%s%s  (rows≈%.0f cost≈%.0f)\n"
         (String.make (2 * depth) ' ')
         node.label node.est.rows node.est.cost);
    List.iter (go (depth + 1)) node.children
  in
  go 0 root;
  Buffer.contents b
