open Sqlfront.Ast

let rec scalar f = function
  | (S_const _ | S_col _) as s -> s
  | S_binop (op, a, b) -> S_binop (op, scalar f a, scalar f b)
  | S_neg a -> S_neg (scalar f a)
  | S_agg a -> f a

let rec pred f = function
  | P_true -> P_true
  | P_cmp (op, a, b) -> P_cmp (op, scalar f a, scalar f b)
  | P_and (a, b) -> P_and (pred f a, pred f b)
  | P_or (a, b) -> P_or (pred f a, pred f b)
  | P_not a -> P_not (pred f a)
  | P_in (es, q) -> P_in (List.map (scalar f) es, q)
