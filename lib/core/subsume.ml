open Relalg

type t = {
  formula : Qelim.Formula.t;
  jl : Schema.col list;
}

(* Variable naming: the candidate binding w uses w0, w1, …; the cached
   binding w' uses wp0, wp1, …; R's join attributes use r0, r1, …. *)
let w_var i = Printf.sprintf "w%d" i
let wp_var i = Printf.sprintf "wp%d" i
let r_var i = Printf.sprintf "r%d" i

let index_of col cols =
  let rec go i = function
    | [] -> None
    | c :: rest -> if c = col then Some i else go (i + 1) rest
  in
  go 0 cols

(* Check the non-numeric restriction: every conjunct containing a
   non-numeric column must be a plain (in)equality between columns or
   constants — interning then preserves = and ≠. *)
let nonnumeric_ok theta numeric =
  let conjs = Expr.conjuncts theta in
  let rec pred_ok = function
    | Expr.Cmp ((Expr.Eq | Expr.Ne), a, b) ->
      let simple = function Expr.Col _ | Expr.Const _ -> true | _ -> false in
      simple a && simple b
    | Expr.Cmp _ -> false
    | Expr.And (a, b) | Expr.Or (a, b) -> pred_ok a && pred_ok b
    | Expr.Not a -> pred_ok a
    | _ -> false
  in
  List.for_all
    (fun c ->
      let has_nonnum = List.exists (fun col -> not (numeric col)) (Expr.columns c) in
      (not has_nonnum) || pred_ok c)
    conjs

let derive ~theta ~jl ~jr ~numeric =
  if not (nonnumeric_ok theta numeric) then None
  else begin
    let var_for ~primed col =
      match index_of col jl with
      | Some i -> Some (if primed then wp_var i else w_var i)
      | None ->
        (match index_of col jr with
         | Some i -> Some (r_var i)
         | None -> None)
    in
    (* Translation fails (None) if some Θ column is neither in J_L nor J_R
       (should not happen) — map it to a sentinel that forces failure. *)
    let ok = ref true in
    let mk primed col =
      match var_for ~primed col with
      | Some v -> v
      | None ->
        ok := false;
        "__unknown"
    in
    let premise = Qelim.Translate.formula ~var:(mk true) theta in
    let conclusion = Qelim.Translate.formula ~var:(mk false) theta in
    match premise, conclusion with
    | Some premise, Some conclusion when !ok ->
      let rvars = List.mapi (fun i _ -> r_var i) jr in
      let formula = Qelim.Qe.forall_implies ~vars:rvars ~premise ~conclusion in
      Some { formula; jl }
    | _ -> None
  end

(* The test runs once per cache entry per outer tuple, so we compile the
   formula down to closures over the two binding rows instead of re-walking
   it with a name-lookup environment. *)
let compile t =
  let n = List.length t.jl in
  (* Interned codes for non-numeric values, shared across calls. *)
  let interned : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let next_code = ref 0. in
  let to_float v =
    match v with
    | Value.Int i -> float_of_int i
    | Value.Float f -> f
    | Value.Bool b -> if b then 1. else 0.
    | Value.Null -> nan
    | Value.Str s ->
      (match Hashtbl.find_opt interned s with
       | Some f -> f
       | None ->
         next_code := !next_code +. 1.;
         Hashtbl.add interned s !next_code;
         !next_code)
  in
  let resolve name =
    let rec find i =
      if i >= n then invalid_arg ("Subsume: unbound variable " ^ name)
      else if String.equal name (w_var i) then `W i
      else if String.equal name (wp_var i) then `Wp i
      else find (i + 1)
    in
    find 0
  in
  (* Linear expressions evaluate over flat coefficient arrays, split by
     which binding row the variable reads from, so the per-probe cost is
     two tight float loops with no tag dispatch. *)
  let compile_linexpr e =
    let w_terms = ref [] and wp_terms = ref [] in
    List.iter
      (fun v ->
        let c = Qelim.Rat.to_float (Qelim.Linexpr.coeff e v) in
        match resolve v with
        | `W i -> w_terms := (i, c) :: !w_terms
        | `Wp i -> wp_terms := (i, c) :: !wp_terms)
      (Qelim.Linexpr.vars e);
    let widx = Array.of_list (List.rev_map fst !w_terms)
    and wcoef = Array.of_list (List.rev_map snd !w_terms)
    and pidx = Array.of_list (List.rev_map fst !wp_terms)
    and pcoef = Array.of_list (List.rev_map snd !wp_terms) in
    let nw = Array.length widx and np = Array.length pidx in
    let const = Qelim.Rat.to_float (Qelim.Linexpr.constant e) in
    fun w w' ->
      let acc = ref const in
      for k = 0 to nw - 1 do
        acc := !acc +. (wcoef.(k) *. to_float w.(widx.(k)))
      done;
      for k = 0 to np - 1 do
        acc := !acc +. (pcoef.(k) *. to_float w'.(pidx.(k)))
      done;
      !acc
  in
  let rec compile_formula f =
    match f with
    | Qelim.Formula.True -> fun _ _ -> true
    | Qelim.Formula.False -> fun _ _ -> false
    | Qelim.Formula.Atom a ->
      let ev = compile_linexpr a.Qelim.Atom.e in
      (match a.Qelim.Atom.op with
       | Qelim.Atom.Le -> fun w w' -> ev w w' <= 0.
       | Qelim.Atom.Lt -> fun w w' -> ev w w' < 0.
       | Qelim.Atom.Eq -> fun w w' -> ev w w' = 0.)
    | Qelim.Formula.Not g ->
      let fg = compile_formula g in
      fun w w' -> not (fg w w')
    | Qelim.Formula.And gs ->
      let fgs = Array.of_list (List.map compile_formula gs) in
      let n = Array.length fgs in
      fun w w' ->
        let rec go i = i >= n || (fgs.(i) w w' && go (i + 1)) in
        go 0
    | Qelim.Formula.Or gs ->
      let fgs = Array.of_list (List.map compile_formula gs) in
      let n = Array.length fgs in
      fun w w' ->
        let rec go i = i < n && (fgs.(i) w w' || go (i + 1)) in
        go 0
    | Qelim.Formula.Exists _ | Qelim.Formula.Forall _ ->
      invalid_arg "Subsume.compile: quantified formula"
  in
  compile_formula t.formula

let to_string t =
  let names =
    String.concat ", "
      (List.mapi
         (fun i c -> Printf.sprintf "%s=%s" (w_var i) (Schema.col_to_string c))
         t.jl)
  in
  Printf.sprintf "p>=(w, w') = %s  [%s]" (Qelim.Formula.to_string t.formula) names

let subsumes_instance ~theta ~jl_schema ~r ~w ~w' =
  let ok = Compile.join_pred jl_schema r.Relation.schema theta in
  Relation.fold
    (fun acc rrow -> acc && ((not (ok w' rrow)) || ok w rrow))
    true r
