(** Top-level execution entry points.

    [run] is Smart-Iceberg: CTE blocks are optimized recursively and
    materialized as temporary tables (with derived keys and domain facts, so
    the outer block's safety checks can reason about them), then the main
    block goes through the Appendix D procedure and executes via rewrites
    and/or the NLJP operator.  [run_baseline] is the stand-in for stock
    PostgreSQL ([workers = 1]) and Vendor A ([workers = 4]). *)

type report = {
  technique : Optimizer.technique;
  apriori : Optimizer.apriori_rewrite list;
  nljp_outer : string list option;
  nljp_stats : Nljp.stats option;
  nljp_describe : string option;
  transfer : Transfer.result option;
      (** predicate-transfer passes that ran before NLJP, if any *)
  notes : string list;
  cte_reports : (string * report) list;
}

(** [memo_strategy] selects how memoization is realized when it is the only
    requested technique: through the NLJP operator's cache (default) or
    through Appendix C's static SQL rewrite (Listing 8).  [workers] overrides
    [nljp_config.workers] for the smart path (main block and CTE blocks
    alike): NLJP chunks its outer relation across that many Domains.  Results
    are bag-equal to sequential execution.  [span] attaches the query
    lifecycle (per-CTE [cte:<name>], [optimize], [execute] children with row
    counts and operator counters) under the given parent span; omitted,
    tracing costs nothing.

    [analyze] (requires [span]) turns the trace into EXPLAIN ANALYZE
    accounting: baseline-executed blocks attach their full physical plan as
    child spans pairing the cost model's estimated rows/cost with recorded
    actual rows per node, and NLJP blocks record Q_B / Q_R side spans with
    side-query estimates plus the probe-loop counter slice.  Results stay
    bag-equal to a plain [run].

    [transfer] enables predicate transfer ({!Transfer}): when the optimizer
    accepts the plan, a Bloom semi-join reduction of every base relation
    runs before NLJP and its filters are pushed into the side-query scans.
    Defaults from the [SI_TRANSFER] environment variable (on unless
    [0]/[false]/[off]/[no]); results are bag-equal either way. *)
val run :
  ?span:Obs.Span.t ->
  ?analyze:bool ->
  ?tech:Optimizer.technique ->
  ?nljp_config:Nljp.config ->
  ?workers:int ->
  ?memo_strategy:[ `Nljp | `Static_rewrite ] ->
  ?adaptive_apriori:bool ->
  ?transfer:bool ->
  Relalg.Catalog.t ->
  Sqlfront.Ast.query ->
  Relalg.Relation.t * report

val run_baseline :
  ?workers:int -> Relalg.Catalog.t -> Sqlfront.Ast.query -> Relalg.Relation.t

(** {2 Prepared statements}

    A prepared query pins the optimizer's decision (the expensive Listing 9
    procedure) so repeated executions skip planning.  NLJP plans
    additionally carry a {!Nljp.shared_cache} — prune/memo entries learned
    by one execution warm the next — and memoize their predicate-transfer
    Bloom build.  Both are valid only for the catalog version the plan was
    prepared against: after any catalog mutation, compare
    {!prepared_version} with {!Relalg.Catalog.version} and re-prepare.
    Executions of one prepared plan are serialized internally (the NLJP
    operator's stats and shared tier are mutated in place); distinct
    prepared plans may execute concurrently. *)

type prepared

val prepare :
  ?tech:Optimizer.technique ->
  ?nljp_config:Nljp.config ->
  ?workers:int ->
  ?transfer:bool ->
  Relalg.Catalog.t ->
  Sqlfront.Ast.query ->
  prepared

(** Execute a prepared plan.  [span] attaches [transfer]/[execute] children
    as {!run} does.  The report's [nljp_stats] is this execution's delta
    (not the operator's cumulative totals). *)
val run_prepared : ?span:Obs.Span.t -> prepared -> Relalg.Relation.t * report

(** Catalog version the plan was prepared against. *)
val prepared_version : prepared -> int

(** Carry a prepared plan across an append of [delta] rows to base table
    [table] instead of re-preparing.  [`Kept]: the plan and its caches are
    untouched (direct/rewrite plans re-execute against the live catalog
    anyway; an NLJP plan whose inner side doesn't read [table] keeps its
    tier).  [`Refreshed]: the NLJP shared tier was revalidated entry by
    entry (see {!Nljp.delta_refresh}).  In both cases the plan's version is
    advanced to the current catalog version.  [`Reprepare]: the delta
    invalidates the operator itself — caches are cleared, the version stays
    stale, and the owner must rebuild the plan.  Predicate-transfer Bloom
    state is always discarded.  Call under the same exclusive lock the
    append ran under. *)
val refresh_prepared :
  prepared ->
  table:string ->
  delta:Relalg.Relation.t ->
  [ `Kept | `Refreshed | `Reprepare of string ]

(** How the plan executes: [`Nljp] (cached operator + shared cache tier),
    [`Rewrite] (cached decision, rewritten-query execution), or [`Direct]
    (CTE / non-iceberg / unsupported shape — full [run] per call). *)
val prepared_kind : prepared -> [ `Direct | `Nljp | `Rewrite ]

(** (prune, memo) entry counts of the plan's shared cache tier, when it has
    one. *)
val prepared_shared_rows : prepared -> (int * int) option

(** Total cache footprint of a report (pruning + memo caches of the main
    block and every CTE block), for the Figure 3 accounting. *)
val cache_rows : report -> int

val cache_bytes : report -> int

(** Multiset equality of results (column names ignored). *)
val same_result : Relalg.Relation.t -> Relalg.Relation.t -> bool

val report_to_string : report -> string

(**/**)

(* Internal helpers shared with [Explain], so its CTE handling registers
   temp tables exactly as [run] does (same renaming, keys, domain facts). *)
val rename_table_refs :
  Sqlfront.Ast.query -> (string * string) list -> Sqlfront.Ast.query

val fresh_temp_name : Relalg.Catalog.t -> string -> string
val derived_key : Sqlfront.Ast.query -> string list option
val derived_nonneg : Relalg.Catalog.t -> Sqlfront.Ast.query -> string list

(**/**)
