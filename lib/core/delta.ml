(* Incremental maintenance of cached iceberg results under appends.

   A maintained entry keeps the query's §6 algebraic partial states — one
   [Value.t array] of partials per group — built by running a "partials
   query": the original SELECT/FROM/WHERE/GROUP BY with the HAVING dropped
   and every aggregate replaced by its intermediate form (AVG becomes
   SUM + COUNT; COUNT/SUM/MIN/MAX are their own partials).  An append of Δ
   rows to table R is folded in without re-materializing the join: for k
   occurrences of R in the FROM list, the telescoping (inclusion–exclusion)
   identity

     Q(R∪Δ, …, R∪Δ) − Q(R, …, R) = Σ_{j=1..k} Q(occ<j ↦ R, occ j ↦ Δ, occ>j ↦ R∪Δ)

   turns the delta into k joins that each touch Δ at one occurrence, so a
   1k-row append against a 1M-row table costs O(Δ ⋈ rest) instead of a full
   recompute.  When every delta row is refuted by the WHERE conjuncts local
   to each occurrence of R, the result provably cannot change and the entry
   is merely revalidated.  Finalization mirrors the NLJP Λ step: finals are
   computed from the partials, HAVING is applied over the (group, finals)
   row, and the SELECT list is evaluated with aggregates substituted by
   their final columns.

   Holistic aggregates (COUNT DISTINCT), subqueries, WITH, DISTINCT and
   ORDER BY/LIMIT have no delta rule here — [supported] refuses them and
   the server falls back to full recompute. *)

open Sqlfront
open Relalg

type aggkind = K_count | K_sum | K_min | K_max | K_avg

type t = {
  d_catalog : Catalog.t;
  d_query : Ast.query;
  d_tables : string list;  (* distinct base tables, normalized *)
  d_aggs : (Ast.agg * aggkind * int) list;  (* agg, kind, first partial slot *)
  d_ncols : int;  (* partial slots per group *)
  d_ng : int;  (* group-key width *)
  d_merge : (Value.t -> Value.t -> Value.t) array;
  d_tbl : Value.t array Row.Tbl.t;  (* group key -> partials *)
  d_max_groups : int;
  (* finalization, compiled once against the lambda schema *)
  d_out_schema : Schema.t;
  d_out_fns : (Row.t -> Value.t) array;
  d_phi : (Row.t -> bool) option;
}

exception Unsupported_delta of string

let norm = String.lowercase_ascii

let rec pred_has_in = function
  | Ast.P_true | Ast.P_cmp _ -> false
  | Ast.P_and (a, b) | Ast.P_or (a, b) -> pred_has_in a || pred_has_in b
  | Ast.P_not a -> pred_has_in a
  | Ast.P_in _ -> true

let query_aggs (q : Ast.query) =
  let sel =
    List.concat_map
      (function
        | Ast.Sel_star -> []
        | Ast.Sel_expr (s, _) -> Ast.aggs_of_scalar s)
      q.Ast.select
  in
  let hav = match q.Ast.having with Some p -> Ast.aggs_of_pred p | None -> [] in
  List.fold_left
    (fun acc a ->
      if List.exists (Ast.equal_agg a) acc then acc else acc @ [ a ])
    [] (sel @ hav)

let kind_of_agg = function
  | Ast.A_count_star | Ast.A_count _ -> Some K_count
  | Ast.A_sum _ -> Some K_sum
  | Ast.A_min _ -> Some K_min
  | Ast.A_max _ -> Some K_max
  | Ast.A_avg _ -> Some K_avg
  | Ast.A_count_distinct _ -> None (* holistic: no bounded partial state *)

let supported catalog (q : Ast.query) =
  q.Ast.with_defs = [] && (not q.Ast.distinct) && q.Ast.order_by = []
  && q.Ast.limit = None
  && q.Ast.from <> []
  && List.for_all
       (function
         | Ast.T_table (n, _) -> Catalog.mem catalog n
         | Ast.T_subquery _ -> false)
       q.Ast.from
  && List.for_all
       (function Ast.Sel_star -> false | Ast.Sel_expr _ -> true)
       q.Ast.select
  && (match q.Ast.where with Some p -> not (pred_has_in p) | None -> true)
  && (match q.Ast.having with Some p -> not (pred_has_in p) | None -> true)
  && (let aggs = query_aggs q in
      (q.Ast.group_by <> [] || aggs <> [])
      && List.for_all (fun a -> kind_of_agg a <> None) aggs)

(* ---- partial-state plumbing ---- *)

(* Merge one delta partial into an accumulated partial, per slot — exactly
   the [Agg.compile] merge semantics at the [Value.t] level. *)
let merge_count a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | _ -> raise (Unsupported_delta "count partial not an int")

let merge_sum a b =
  if Value.is_null b then a
  else if Value.is_null a then b
  else Value.add a b

let merge_minmax smaller a b =
  if Value.is_null b then a
  else if Value.is_null a then b
  else
    match Value.compare_sql b a with
    | None -> a (* incomparable: keep first, as the engine's merge does *)
    | Some c -> if (if smaller then c < 0 else c > 0) then b else a

let agg_layout aggs =
  let slots = ref 0 in
  let laid =
    List.map
      (fun a ->
        let kind =
          match kind_of_agg a with
          | Some k -> k
          | None -> raise (Unsupported_delta "holistic aggregate")
        in
        let first = !slots in
        slots := !slots + (match kind with K_avg -> 2 | _ -> 1);
        (a, kind, first))
      aggs
  in
  (laid, !slots)

let merge_fns laid ncols =
  let fns = Array.make ncols merge_sum in
  List.iter
    (fun (_, kind, slot) ->
      match kind with
      | K_count -> fns.(slot) <- merge_count
      | K_sum -> fns.(slot) <- merge_sum
      | K_min -> fns.(slot) <- merge_minmax true
      | K_max -> fns.(slot) <- merge_minmax false
      | K_avg ->
        fns.(slot) <- merge_sum;
        fns.(slot + 1) <- merge_count)
    laid;
  fns

(* The partials query: group columns then partial aggregate columns, same
   FROM/WHERE/GROUP BY, no HAVING (below-threshold groups must keep state —
   an append may later lift them above it). *)
let partials_query (q : Ast.query) laid =
  let groups =
    List.mapi
      (fun i (gq, gn) ->
        Ast.Sel_expr (Ast.S_col (gq, gn), Some (Printf.sprintf "__g%d" i)))
      q.Ast.group_by
  in
  let parts =
    List.concat_map
      (fun (a, kind, slot) ->
        match (kind, a) with
        | K_avg, Ast.A_avg x ->
          [ Ast.Sel_expr (Ast.S_agg (Ast.A_sum x), Some (Printf.sprintf "__p%d" slot));
            Ast.Sel_expr (Ast.S_agg (Ast.A_count x), Some (Printf.sprintf "__p%d" (slot + 1)))
          ]
        | _ -> [ Ast.Sel_expr (Ast.S_agg a, Some (Printf.sprintf "__p%d" slot)) ])
      laid
  in
  {
    q with
    Ast.select = groups @ parts;
    having = None;
    order_by = [];
    limit = None;
    distinct = false;
  }

let fold_partials t rel =
  let ng = t.d_ng in
  Relation.iter
    (fun row ->
      let key = Array.sub row 0 ng in
      let part = Array.sub row ng t.d_ncols in
      match Row.Tbl.find_opt t.d_tbl key with
      | None -> Row.Tbl.replace t.d_tbl key part
      | Some acc ->
        for i = 0 to t.d_ncols - 1 do
          acc.(i) <- t.d_merge.(i) acc.(i) part.(i)
        done)
    rel;
  if Row.Tbl.length t.d_tbl > t.d_max_groups then
    raise (Unsupported_delta "group count above maintenance cap")

(* ---- finalization (the Λ step over maintained partials) ---- *)

let finals_of t (part : Value.t array) =
  Array.of_list
    (List.map
       (fun (_, kind, slot) ->
         match kind with
         | K_count | K_sum | K_min | K_max -> part.(slot)
         | K_avg ->
           (match part.(slot + 1) with
            | Value.Int 0 -> Value.Null
            | Value.Int n ->
              Value.Float (Value.to_float part.(slot) /. float_of_int n)
            | _ -> raise (Unsupported_delta "avg count partial not an int")))
       t.d_aggs)

let result t =
  let out = ref [] in
  Row.Tbl.iter
    (fun key part ->
      let lambda = Array.append key (finals_of t part) in
      let keep = match t.d_phi with None -> true | Some phi -> phi lambda in
      if keep then
        out := Array.map (fun f -> f lambda) t.d_out_fns :: !out)
    t.d_tbl;
  Relation.make t.d_out_schema (Array.of_list !out)

(* ---- building ---- *)

let compile_output catalog (q : Ast.query) laid =
  let gb = q.Ast.group_by in
  let lambda_schema =
    Schema.append
      (Schema.of_cols (List.map (fun (gq, gn) -> Schema.col ?q:gq gn) gb))
      (Schema.of_cols
         (List.mapi (fun i _ -> Schema.col (Printf.sprintf "__agg%d" i)) laid))
  in
  let subst a =
    let rec go i = function
      | [] -> raise (Unsupported_delta "aggregate missing from layout")
      | (a', _, _) :: rest ->
        if Ast.equal_agg a a' then Ast.S_col (None, Printf.sprintf "__agg%d" i)
        else go (i + 1) rest
    in
    go 0 laid
  in
  let out_cols, out_fns =
    List.mapi
      (fun i item ->
        match item with
        | Ast.Sel_star -> raise (Unsupported_delta "SELECT *")
        | Ast.Sel_expr (s, alias) ->
          let name =
            match (alias, s) with
            | Some a, _ -> a
            | None, Ast.S_col (_, n) -> n
            | None, _ -> Printf.sprintf "col%d" i
          in
          let expr = Binder.scalar_expr (Aggmap.scalar subst s) in
          (Schema.col name, Compile.scalar lambda_schema expr))
      q.Ast.select
    |> List.split
  in
  let phi =
    Option.map
      (fun h ->
        Compile.pred lambda_schema
          (Binder.pred_expr catalog (Aggmap.pred subst h)))
      q.Ast.having
  in
  (Schema.of_cols out_cols, Array.of_list out_fns, phi)

let init ?(max_groups = 200_000) catalog (q : Ast.query) =
  if not (supported catalog q) then None
  else
    match
      let laid, ncols = agg_layout (query_aggs q) in
      let out_schema, out_fns, phi = compile_output catalog q laid in
      let t =
        {
          d_catalog = catalog;
          d_query = q;
          d_tables = Ast.tables_of_query q;
          d_aggs = laid;
          d_ncols = ncols;
          d_ng = List.length q.Ast.group_by;
          d_merge = merge_fns laid ncols;
          d_tbl = Row.Tbl.create 256;
          d_max_groups = max_groups;
          d_out_schema = out_schema;
          d_out_fns = out_fns;
          d_phi = phi;
        }
      in
      fold_partials t (Binder.run catalog (partials_query q laid));
      t
    with
    | t -> Some t
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception _ -> None

let tables t = t.d_tables

(* ---- the delta step ---- *)

(* WHERE conjuncts that constrain only one FROM occurrence: every column is
   either qualified with its alias, or unqualified, present in its table and
   absent from every other FROM table (so the binder must have resolved it
   here).  Evaluating them over a delta row is a sound necessary condition
   for that row to contribute through this occurrence. *)
let local_pred catalog (q : Ast.query) ~alias ~table =
  let own_schema =
    (Catalog.find catalog table).Catalog.rel.Relation.schema
  in
  let other_schemas =
    List.filter_map
      (function
        | Ast.T_table (n, a) ->
          let a = Option.value a ~default:n in
          if String.equal a alias then None
          else
            Option.map
              (fun tb -> tb.Catalog.rel.Relation.schema)
              (Catalog.find_opt catalog n)
        | Ast.T_subquery _ -> None)
      q.Ast.from
  in
  let col_is_local (cq, cn) =
    match cq with
    | Some a -> String.equal a alias
    | None ->
      Schema.mem own_schema (Schema.col cn)
      && not (List.exists (fun s -> Schema.mem s (Schema.col cn)) other_schemas)
  in
  let conjs =
    match q.Ast.where with
    | None -> []
    | Some w ->
      List.filter
        (fun c ->
          (not (pred_has_in c))
          && Ast.aggs_of_pred c = []
          && List.for_all col_is_local (Ast.cols_of_pred c))
        (Ast.conjuncts w)
  in
  if conjs = [] then None
  else
    let schema = Schema.requalify alias own_schema in
    Some (Compile.pred schema (Binder.pred_expr catalog (Ast.conj conjs)))

let fresh_name catalog base =
  let rec go i =
    let n = Printf.sprintf "%s__delta%d" base i in
    if Catalog.mem catalog n then go (i + 1) else n
  in
  go 0

(* Rewrite the FROM list for telescoping run [m] (1-based): occurrences of
   [table] before the m-th read the old prefix, the m-th reads the delta,
   later ones read the grown table as-is.  Aliases are pinned so column
   references resolve unchanged. *)
let from_for_run (q : Ast.query) ~table ~old_name ~delta_name ~m =
  let ord = ref 0 in
  List.map
    (function
      | Ast.T_table (n, a) when String.equal (norm n) table ->
        incr ord;
        let alias = Some (Option.value a ~default:n) in
        if !ord < m then Ast.T_table (old_name, alias)
        else if !ord = m then Ast.T_table (delta_name, alias)
        else Ast.T_table (n, alias)
      | item -> item)
    q.Ast.from

let apply ?(max_delta_frac = 0.5) t ~table ~delta =
  let table = norm table in
  if not (List.mem table t.d_tables) then Ok `Revalidated
  else
    try
      let catalog = t.d_catalog in
      let tbl = Catalog.find catalog table in
      let n = Relation.cardinality tbl.Catalog.rel in
      let dn = Relation.cardinality delta in
      if dn = 0 then Ok `Revalidated
      else if float_of_int dn > max_delta_frac *. float_of_int (max n 1) then
        Error "delta too large; recompute"
      else begin
        let occurrences =
          List.filter_map
            (function
              | Ast.T_table (nm, a) when String.equal (norm nm) table ->
                Some (Option.value a ~default:nm)
              | _ -> None)
            t.d_query.Ast.from
        in
        let k = List.length occurrences in
        (* per-occurrence delta views, pre-filtered by that occurrence's
           local WHERE conjuncts: refuted rows cannot contribute there *)
        let drows = Relation.rows delta in
        let filtered =
          List.map
            (fun alias ->
              match local_pred catalog t.d_query ~alias ~table with
              | None -> drows
              | Some p -> Array.of_seq (Seq.filter p (Array.to_seq drows)))
            occurrences
        in
        if List.for_all (fun r -> Array.length r = 0) filtered then
          Ok `Revalidated
        else begin
          let old_len = n - dn in
          let schema = tbl.Catalog.rel.Relation.schema in
          let old_name = fresh_name catalog (table ^ "_old") in
          let delta_name = fresh_name catalog (table ^ "_new") in
          let temps = ref [] in
          let add_temp name rel =
            Catalog.add_temp catalog ~keys:tbl.Catalog.keys ~fds:tbl.Catalog.fds
              ~nonneg:tbl.Catalog.nonneg name rel;
            temps := name :: !temps
          in
          Fun.protect
            ~finally:(fun () -> List.iter (Catalog.remove_table catalog) !temps)
            (fun () ->
              if k > 1 then
                add_temp old_name
                  (Relation.make schema
                     (Array.sub (Relation.rows tbl.Catalog.rel) 0 old_len));
              let laid = t.d_aggs in
              let joined = ref 0 in
              List.iteri
                (fun i rows ->
                  let m = i + 1 in
                  if Array.length rows > 0 then begin
                    joined := !joined + Array.length rows;
                    add_temp delta_name (Relation.make schema rows);
                    Fun.protect
                      ~finally:(fun () ->
                        Catalog.remove_table catalog delta_name;
                        temps := List.filter (fun n -> n <> delta_name) !temps)
                      (fun () ->
                        let pq = partials_query t.d_query laid in
                        let pq =
                          { pq with
                            Ast.from =
                              from_for_run t.d_query ~table ~old_name
                                ~delta_name ~m }
                        in
                        fold_partials t (Binder.run catalog pq))
                  end)
                filtered;
              Ok (`Incremental !joined))
        end
      end
    with
    | (Out_of_memory | Stack_overflow) as e -> raise e
    | Unsupported_delta msg -> Error msg
    | e -> Error (Printexc.to_string e)

let groups t = Row.Tbl.length t.d_tbl
