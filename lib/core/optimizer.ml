open Sqlfront

type technique = { apriori : bool; memo : bool; pruning : bool }

let all_techniques = { apriori = true; memo = true; pruning = true }
let no_techniques = { apriori = false; memo = false; pruning = false }

let only = function
  | `Apriori -> { no_techniques with apriori = true }
  | `Memo -> { no_techniques with memo = true }
  | `Pruning -> { no_techniques with pruning = true }

type apriori_rewrite = {
  considered : string list;
  reduced : string list;
  reducer : Ast.query;
  reducer_sql : string;
  replacements : (string * Ast.table_ref) list;
}

type decision = {
  query : Ast.query;
  apriori_rewrites : apriori_rewrite list;
  nljp : (Nljp.t * string list) option;
  notes : string list;
}

(* Non-empty proper subsets, smallest first, preserving input order inside a
   subset.  Queries join at most a handful of relations, so the exponential
   enumeration the paper describes is fine. *)
let proper_subsets xs =
  let n = List.length xs in
  let arr = Array.of_list xs in
  let subsets = ref [] in
  for mask = 1 to (1 lsl n) - 2 do
    let members = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then members := arr.(i) :: !members
    done;
    subsets := (List.length !members, !members) :: !subsets
  done;
  List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !subsets))

let try_analyze catalog q ~left_aliases =
  match Qspec.analyze catalog q ~left_aliases with
  | spec -> Some spec
  | exception Qspec.Unsupported _ -> None

(* pick_gapriori: find a subset of the still-considered aliases that can be
   safely reduced (treating it as L and the rest of the query as R).
   Subsets owning a GROUP BY column as written are tried first: their
   reducers constrain the actual grouping attributes, whereas subsets that
   only reach a group column through an equality-equivalence produce much
   weaker (though still safe) reducers. *)
let pick_gapriori catalog q remaining =
  let all = Qspec.aliases_of q in
  let candidates =
    List.filter (fun s -> List.for_all (fun a -> List.mem a remaining) s) (proper_subsets all)
  in
  let attempt ~require_raw_group left_aliases =
    match try_analyze catalog q ~left_aliases with
    | None -> None
    | Some spec ->
      if require_raw_group && spec.Qspec.left.Qspec.group_cols = [] then None
      else if (not require_raw_group) && spec.Qspec.left.Qspec.group_cols <> [] then
        None (* already tried in the first pass *)
      else begin
        match Apriori.safe catalog spec `Left with
        | Error _ -> None
        | Ok () when Apriori.vacuous spec `Left -> None
        | Ok () ->
          let replacements = Apriori.replacements spec `Left in
          if replacements = [] then None
          else
            let reducer = Apriori.reducer spec `Left in
            Some
              {
                considered = left_aliases;
                reduced = List.map fst replacements;
                reducer;
                reducer_sql = Pretty.query reducer;
                replacements;
              }
      end
  in
  match List.find_map (attempt ~require_raw_group:true) candidates with
  | Some rw -> Some rw
  | None -> List.find_map (attempt ~require_raw_group:false) candidates

(* pick_memprune: choose the outer side for NLJP.  Prefer minimal subsets
   that contain every alias owning a GROUP BY column, then fall back to any
   split; respect the a-priori groupings (T_L ⊇ T or T_L ∩ T = ∅). *)
let pick_memprune catalog q ~tech ~nljp_config ~apriori_groups ~overrides =
  let all = Qspec.aliases_of q in
  let group_aliases =
    (* aliases mentioned by GROUP BY columns (when qualified) *)
    List.filter_map (fun (qq, _) -> qq) q.Ast.group_by
  in
  let covers_groups s = List.for_all (fun a -> List.mem a s) group_aliases in
  let compatible s =
    List.for_all
      (fun grp ->
        List.for_all (fun a -> List.mem a s) grp
        || List.for_all (fun a -> not (List.mem a s)) grp)
      apriori_groups
  in
  let candidates =
    let subs = List.filter compatible (proper_subsets all) in
    let preferred, others = List.partition covers_groups subs in
    preferred @ others
  in
  let config =
    { nljp_config with Nljp.pruning = tech.pruning; Nljp.memo = tech.memo }
  in
  List.find_map
    (fun left_aliases ->
      match try_analyze catalog q ~left_aliases with
      | None -> None
      | Some spec ->
        (match Nljp.build ~overrides catalog spec config with
         | Ok op -> Some (op, left_aliases)
         | Error _ -> None))
    candidates

let pick_static_memo catalog q =
  match Qspec.aliases_of q with
  | exception Qspec.Unsupported _ -> None
  | all ->
    let group_aliases = List.filter_map (fun (qq, _) -> qq) q.Ast.group_by in
    let covers_groups s = List.for_all (fun a -> List.mem a s) group_aliases in
    let preferred, others = List.partition covers_groups (proper_subsets all) in
    List.find_map
      (fun left_aliases ->
        match try_analyze catalog q ~left_aliases with
        | None -> None
        | Some spec ->
          (match Memo_rewrite.applicable catalog spec with
           | Ok () -> Some (Memo_rewrite.rewrite catalog spec)
           | Error _ -> None))
      (preferred @ others)

(* Adaptive gate: execute the reducer; if it keeps almost every candidate
   group, drop the rewrite (the semijoins would cost more than they save).
   The group-count denominator is a cheap DISTINCT over the owning table,
   an over-estimate, so the gate is conservative. *)
let adaptive_threshold = 0.9

(* The two queries the gate compares: a DISTINCT over the reducer's
   grouping columns on their owning table (candidate groups) and the
   reducer itself (kept groups).  [None] when the reducer's shape makes the
   ratio unmeasurable — multi-alias grouping, subquery FROM items — in
   which case the gate keeps the rewrite. *)
let reducer_queries rw =
  let reducer = rw.reducer in
  match reducer.Ast.group_by with
  | [] -> None
  | (q0, _) :: _ as group_by ->
    let same_alias = List.for_all (fun (q, _) -> q = q0) group_by in
    if not same_alias then None
    else
      let owner =
        List.find_map
          (function
            | Ast.T_table (name, alias) ->
              let a = Option.value alias ~default:name in
              if Some a = q0 || (q0 = None && reducer.Ast.from = [ Ast.T_table (name, alias) ])
              then Some (name, a)
              else None
            | Ast.T_subquery _ -> None)
          reducer.Ast.from
      in
      Option.map
        (fun (name, alias) ->
          let distinct_q =
            Ast.simple_select ~distinct:true
              (List.map (fun (_, n) -> Ast.Sel_expr (Ast.S_col (Some alias, n), None)) group_by)
              [ Ast.T_table (name, Some alias) ]
          in
          (distinct_q, reducer))
        owner

(* Actual kept/total group ratio, by executing both gate queries. *)
let reducer_keep_ratio catalog rw =
  match reducer_queries rw with
  | None -> None
  | Some (distinct_q, reducer) ->
    (match Binder.run catalog distinct_q, Binder.run catalog reducer with
     | total, kept ->
       let nt = Relalg.Relation.cardinality total in
       let nk = Relalg.Relation.cardinality kept in
       if nt = 0 then None
       else Some (float_of_int nk /. float_of_int nt)
     | exception _ -> None)

(* Estimated kept/total group ratio from the cost model, for calibration:
   what the gate would decide if it trusted estimates instead of running
   the reducer. *)
let reducer_est_ratio catalog rw =
  match reducer_queries rw with
  | None -> None
  | Some (distinct_q, reducer) ->
    (match
       ( Cost.estimate catalog (Binder.bind catalog distinct_q),
         Cost.estimate catalog (Binder.bind catalog reducer) )
     with
     | total, kept ->
       if total.Cost.rows <= 0. then None
       else Some (Float.min 1. (kept.Cost.rows /. total.Cost.rows))
     | exception _ -> None)

let adaptive_keep catalog rw =
  match reducer_keep_ratio catalog rw with
  | None -> true
  | Some ratio -> ratio < adaptive_threshold

(* Decision-mix metrics (DESIGN.md §9): how often each optimization fires. *)
let m_decisions = Obs.Metrics.counter "optimizer.decisions"
let m_apriori = Obs.Metrics.counter "optimizer.apriori_rewrites"
let m_adaptive_dropped = Obs.Metrics.counter "optimizer.adaptive_dropped"
let m_nljp_plans = Obs.Metrics.counter "optimizer.nljp_plans"

let decide ?(adaptive = false) catalog q ~tech ~nljp_config =
  Obs.Metrics.incr m_decisions;
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  (* Phase 1: generalized a-priori over disjoint subsets (Listing 9). *)
  let rewrites = ref [] in
  if tech.apriori then begin
    let remaining = ref (Qspec.aliases_of q) in
    let continue = ref true in
    while !continue && !remaining <> [] do
      match pick_gapriori catalog q !remaining with
      | None -> continue := false
      | Some rw ->
        rewrites := rw :: !rewrites;
        note "a-priori: reduced %s via reducer over {%s}"
          (String.concat ", " rw.reduced)
          (String.concat ", " rw.considered);
        remaining := List.filter (fun a -> not (List.mem a rw.considered)) !remaining
    done
  end;
  let rewrites = List.rev !rewrites in
  let rewrites =
    if not adaptive then rewrites
    else
      List.filter
        (fun rw ->
          let keep = adaptive_keep catalog rw in
          if not keep then begin
            Obs.Metrics.incr m_adaptive_dropped;
            note "a-priori: dropped unselective reducer on {%s} (adaptive gate)"
              (String.concat ", " rw.reduced)
          end;
          keep)
        rewrites
  in
  Obs.Metrics.add m_apriori (List.length rewrites);
  let overrides = List.concat_map (fun rw -> rw.replacements) rewrites in
  (* Phase 2: memoization and pruning via NLJP. *)
  let nljp =
    if tech.memo || tech.pruning then begin
      let apriori_groups = List.map (fun rw -> rw.reduced) rewrites in
      match pick_memprune catalog q ~tech ~nljp_config ~apriori_groups ~overrides with
      | Some (op, aliases) ->
        Obs.Metrics.incr m_nljp_plans;
        note "NLJP: outer side {%s}" (String.concat ", " aliases);
        Some (op, aliases)
      | None ->
        note "NLJP: no applicable outer/inner split";
        None
    end
    else None
  in
  { query = q; apriori_rewrites = rewrites; nljp; notes = List.rev !notes }

let rewritten_query d =
  let repl = List.concat_map (fun rw -> rw.replacements) d.apriori_rewrites in
  {
    d.query with
    Ast.from =
      List.map
        (fun item ->
          match item with
          | Ast.T_table (name, al) ->
            let alias = Option.value al ~default:name in
            (match List.assoc_opt alias repl with
             | Some sub -> sub
             | None -> item)
          | Ast.T_subquery _ -> item)
        d.query.Ast.from;
  }
