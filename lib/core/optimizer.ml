open Sqlfront

type technique = { apriori : bool; memo : bool; pruning : bool }

let all_techniques = { apriori = true; memo = true; pruning = true }
let no_techniques = { apriori = false; memo = false; pruning = false }

let only = function
  | `Apriori -> { no_techniques with apriori = true }
  | `Memo -> { no_techniques with memo = true }
  | `Pruning -> { no_techniques with pruning = true }

type apriori_rewrite = {
  considered : string list;
  reduced : string list;
  reducer : Ast.query;
  reducer_sql : string;
  replacements : (string * Ast.table_ref) list;
}

type decision = {
  query : Ast.query;
  apriori_rewrites : apriori_rewrite list;
  nljp : (Nljp.t * string list) option;
  transfer : Transfer.spec option;
  notes : string list;
}

(* Non-empty proper subsets, smallest first, preserving input order inside a
   subset.  Queries join at most a handful of relations, so the exponential
   enumeration the paper describes is fine. *)
let proper_subsets xs =
  let n = List.length xs in
  let arr = Array.of_list xs in
  let subsets = ref [] in
  for mask = 1 to (1 lsl n) - 2 do
    let members = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then members := arr.(i) :: !members
    done;
    subsets := (List.length !members, !members) :: !subsets
  done;
  List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !subsets))

let try_analyze catalog q ~left_aliases =
  match Qspec.analyze catalog q ~left_aliases with
  | spec -> Some spec
  | exception Qspec.Unsupported _ -> None

(* pick_gapriori: find a subset of the still-considered aliases that can be
   safely reduced (treating it as L and the rest of the query as R).
   Subsets owning a GROUP BY column as written are tried first: their
   reducers constrain the actual grouping attributes, whereas subsets that
   only reach a group column through an equality-equivalence produce much
   weaker (though still safe) reducers. *)
let pick_gapriori catalog q remaining =
  let all = Qspec.aliases_of q in
  let candidates =
    List.filter (fun s -> List.for_all (fun a -> List.mem a remaining) s) (proper_subsets all)
  in
  let attempt ~require_raw_group left_aliases =
    match try_analyze catalog q ~left_aliases with
    | None -> None
    | Some spec ->
      if require_raw_group && spec.Qspec.left.Qspec.group_cols = [] then None
      else if (not require_raw_group) && spec.Qspec.left.Qspec.group_cols <> [] then
        None (* already tried in the first pass *)
      else begin
        match Apriori.safe catalog spec `Left with
        | Error _ -> None
        | Ok () when Apriori.vacuous spec `Left -> None
        | Ok () ->
          let replacements = Apriori.replacements spec `Left in
          if replacements = [] then None
          else
            let reducer = Apriori.reducer spec `Left in
            Some
              {
                considered = left_aliases;
                reduced = List.map fst replacements;
                reducer;
                reducer_sql = Pretty.query reducer;
                replacements;
              }
      end
  in
  match List.find_map (attempt ~require_raw_group:true) candidates with
  | Some rw -> Some rw
  | None -> List.find_map (attempt ~require_raw_group:false) candidates

(* pick_memprune: choose the outer side for NLJP.  Prefer minimal subsets
   that contain every alias owning a GROUP BY column, then fall back to any
   split; respect the a-priori groupings (T_L ⊇ T or T_L ∩ T = ∅). *)
let pick_memprune catalog q ~tech ~nljp_config ~apriori_groups ~overrides =
  let all = Qspec.aliases_of q in
  let group_aliases =
    (* aliases mentioned by GROUP BY columns (when qualified) *)
    List.filter_map (fun (qq, _) -> qq) q.Ast.group_by
  in
  let covers_groups s = List.for_all (fun a -> List.mem a s) group_aliases in
  let compatible s =
    List.for_all
      (fun grp ->
        List.for_all (fun a -> List.mem a s) grp
        || List.for_all (fun a -> not (List.mem a s)) grp)
      apriori_groups
  in
  let candidates =
    let subs = List.filter compatible (proper_subsets all) in
    let preferred, others = List.partition covers_groups subs in
    preferred @ others
  in
  let config =
    { nljp_config with Nljp.pruning = tech.pruning; Nljp.memo = tech.memo }
  in
  let last_error = ref None in
  let picked =
    List.find_map
      (fun left_aliases ->
        match try_analyze catalog q ~left_aliases with
        | None -> None
        | Some spec ->
          (match Nljp.build ~overrides catalog spec config with
           | Ok op -> Some (op, left_aliases)
           | Error e ->
             last_error := Some (left_aliases, e);
             None))
      candidates
  in
  (picked, !last_error)

let pick_static_memo catalog q =
  match Qspec.aliases_of q with
  | exception Qspec.Unsupported _ -> None
  | all ->
    let group_aliases = List.filter_map (fun (qq, _) -> qq) q.Ast.group_by in
    let covers_groups s = List.for_all (fun a -> List.mem a s) group_aliases in
    let preferred, others = List.partition covers_groups (proper_subsets all) in
    List.find_map
      (fun left_aliases ->
        match try_analyze catalog q ~left_aliases with
        | None -> None
        | Some spec ->
          (match Memo_rewrite.applicable catalog spec with
           | Ok () -> Some (Memo_rewrite.rewrite catalog spec)
           | Error _ -> None))
      (preferred @ others)

(* Adaptive gate: execute the reducer; if it keeps almost every candidate
   group, drop the rewrite (the semijoins would cost more than they save).
   The group-count denominator is a cheap DISTINCT over the owning table,
   an over-estimate, so the gate is conservative. *)
let adaptive_threshold = 0.9

(* The two queries the gate compares: a DISTINCT over the reducer's
   grouping columns on their owning table (candidate groups) and the
   reducer itself (kept groups).  [None] when the reducer's shape makes the
   ratio unmeasurable — multi-alias grouping, subquery FROM items — in
   which case the gate keeps the rewrite. *)
let reducer_queries rw =
  let reducer = rw.reducer in
  match reducer.Ast.group_by with
  | [] -> None
  | (q0, _) :: _ as group_by ->
    let same_alias = List.for_all (fun (q, _) -> q = q0) group_by in
    if not same_alias then None
    else
      let owner =
        List.find_map
          (function
            | Ast.T_table (name, alias) ->
              let a = Option.value alias ~default:name in
              if Some a = q0 || (q0 = None && reducer.Ast.from = [ Ast.T_table (name, alias) ])
              then Some (name, a)
              else None
            | Ast.T_subquery _ -> None)
          reducer.Ast.from
      in
      Option.map
        (fun (name, alias) ->
          let distinct_q =
            Ast.simple_select ~distinct:true
              (List.map (fun (_, n) -> Ast.Sel_expr (Ast.S_col (Some alias, n), None)) group_by)
              [ Ast.T_table (name, Some alias) ]
          in
          (distinct_q, reducer))
        owner

(* Actual kept/total group ratio, by executing both gate queries. *)
let reducer_keep_ratio catalog rw =
  match reducer_queries rw with
  | None -> None
  | Some (distinct_q, reducer) ->
    (match Binder.run catalog distinct_q, Binder.run catalog reducer with
     | total, kept ->
       let nt = Relalg.Relation.cardinality total in
       let nk = Relalg.Relation.cardinality kept in
       if nt = 0 then None
       else Some (float_of_int nk /. float_of_int nt)
     | exception _ -> None)

(* Estimated kept/total group ratio from the cost model, for calibration:
   what the gate would decide if it trusted estimates instead of running
   the reducer. *)
let reducer_est_ratio catalog rw =
  match reducer_queries rw with
  | None -> None
  | Some (distinct_q, reducer) ->
    (match
       ( Cost.estimate catalog (Binder.bind catalog distinct_q),
         Cost.estimate catalog (Binder.bind catalog reducer) )
     with
     | total, kept ->
       if total.Cost.rows <= 0. then None
       else Some (Float.min 1. (kept.Cost.rows /. total.Cost.rows))
     | exception _ -> None)

let adaptive_keep catalog rw =
  match reducer_keep_ratio catalog rw with
  | None -> true
  | Some ratio -> ratio < adaptive_threshold

(* ---- predicate transfer (DESIGN.md §11) ---- *)

(* Below this many total base rows the Bloom passes cost more than they
   save; a ref so tests can lower it (or [transfer_force] past it). *)
let transfer_min_rows = ref 4096
let transfer_force = ref false

(* IN-subquery conjuncts (the a-priori reducer outputs) are not used as
   transfer sources by default: materializing the reducer inside the
   transfer pass re-executes a join NLJP will materialize again anyway,
   and on the complex four-way workload that costs ~20x more than the
   Bloom passes themselves save.  Plain pushed-down σ conjuncts carry the
   reduction through the join edges instead.  Tests and experiments can
   flip this to measure the trade-off. *)
let transfer_apriori_sources = ref false

(* pick_transfer: decide whether the two semi-join passes pay for
   themselves, and assemble the {!Transfer.spec} if so.  Every rejection is
   recorded through [note] so EXPLAIN ANALYZE can show why the technique
   was considered but not used (same contract as the NLJP notes). *)
let pick_transfer catalog q ~nljp ~overrides ~note =
  let reject reason =
    note (Printf.sprintf "transfer: skipped (%s)" reason);
    None
  in
  if nljp = None then reject "no NLJP plan"
  else begin
    let tables =
      List.filter_map
        (function
          | Ast.T_table (name, al) -> Some (Option.value al ~default:name, name)
          | Ast.T_subquery _ -> None)
        q.Ast.from
    in
    if List.length tables <> List.length q.Ast.from then
      reject "subquery FROM item"
    else begin
      (* Which single alias owns a column reference (unqualified names
         resolve when exactly one FROM table has the column). *)
      let owner_of (qq, n) =
        match qq with
        | Some a -> if List.mem_assoc a tables then Some a else None
        | None ->
          let owners =
            List.filter
              (fun (_, tname) ->
                match Relalg.Catalog.find_opt catalog tname with
                | None -> false
                | Some tbl ->
                  (match
                     Relalg.Schema.index_of tbl.Relalg.Catalog.rel.Relalg.Relation.schema n
                   with
                   | _ -> true
                   | exception Relalg.Schema.Unknown_column _ -> false
                   | exception Relalg.Schema.Ambiguous_column _ -> false))
              tables
          in
          (match owners with [ (a, _) ] -> Some a | _ -> None)
      in
      let conjs = match q.Ast.where with None -> [] | Some w -> Ast.conjuncts w in
      let edges =
        List.filter_map
          (function
            | Ast.P_cmp (Relalg.Expr.Eq, Ast.S_col (q1, n1), Ast.S_col (q2, n2)) ->
              (match owner_of (q1, n1), owner_of (q2, n2) with
               | Some a, Some b when a <> b ->
                 Some { Transfer.e_left = (a, n1); e_right = (b, n2) }
               | _ -> None)
            | _ -> None)
          conjs
      in
      if edges = [] then reject "no equality join edges"
      else begin
        let base_rows (_, tname) =
          match Relalg.Catalog.find_opt catalog tname with
          | Some tbl -> Relalg.Relation.cardinality tbl.Relalg.Catalog.rel
          | None -> 0
        in
        let total_rows = List.fold_left (fun acc t -> acc + base_rows t) 0 tables in
        (* A conjunct is a transfer source for alias [a] when every column
           it mentions belongs to [a] (IN-subquery conjuncts by their
           left-hand scalars: the subquery's own columns are internal). *)
        let pred_owner p =
          let cols =
            match p with
            | Ast.P_in (es, _) -> List.concat_map Ast.cols_of_scalar es
            | p -> Ast.cols_of_pred p
          in
          match cols with
          | [] -> None
          | c0 :: rest ->
            (match owner_of c0 with
             | None -> None
             | Some a ->
               if List.for_all (fun c -> owner_of c = Some a) rest then Some a
               else None)
        in
        let override_locals alias =
          match List.assoc_opt alias overrides with
          | Some (Ast.T_subquery (sq, _)) ->
            (match sq.Ast.where with None -> [] | Some w -> Ast.conjuncts w)
          | _ -> []
        in
        let all_locals =
          List.map
            (fun (a, _) ->
              let own = List.filter (fun p -> pred_owner p = Some a) conjs in
              (a, own @ override_locals a))
            tables
        in
        let locals =
          if !transfer_apriori_sources then all_locals
          else
            List.map
              (fun (a, ps) ->
                (a, List.filter (function Ast.P_in _ -> false | _ -> true) ps))
              all_locals
        in
        if (not !transfer_force) && total_rows < !transfer_min_rows then
          reject (Printf.sprintf "inputs below %d rows" !transfer_min_rows)
        else if List.for_all (fun (_, ps) -> ps = []) locals then
          if List.exists (fun (_, ps) -> ps <> []) all_locals then
            reject "only a-priori IN sources; re-running reducers costs more than the passes save"
          else reject "no selective source predicates"
        else begin
          (* Coarse keep-fraction estimate per alias: local σ selectivity
             from the cost model (IN conjuncts excluded — estimating them
             would execute the reducer at bind time), then two relaxation
             sweeps along the edges under the uniform-containment
             assumption that a semi-join keeps about the source's fraction.
             Only a calibration target for EXPLAIN ANALYZE's est-vs-actual
             notes, never a correctness input. *)
          let local_sel (a, tname) =
            let no_in =
              List.filter
                (function Ast.P_in _ -> false | _ -> true)
                (List.assoc a locals)
            in
            let base = float_of_int (max 1 (base_rows (a, tname))) in
            if no_in = [] then 1.
            else
              try
                let sq =
                  Ast.simple_select ~where:(Ast.conj no_in) [ Ast.Sel_star ]
                    [ Ast.T_table (tname, Some a) ]
                in
                let est = Cost.estimate catalog (Binder.bind catalog sq) in
                Float.max 0.01 (Float.min 1. (est.Cost.rows /. base))
              with _ -> 1.
          in
          let est = ref (List.map (fun t -> (fst t, local_sel t)) tables) in
          let get a = Option.value ~default:1. (List.assoc_opt a !est) in
          let set a v = est := (a, v) :: List.remove_assoc a !est in
          let sweep es =
            List.iter
              (fun e ->
                let (a, _) = e.Transfer.e_left and (b, _) = e.Transfer.e_right in
                set b (Float.min (get b) (get a));
                set a (Float.min (get a) (get b)))
              es
          in
          sweep edges;
          sweep (List.rev edges);
          let sources =
            List.filter_map (fun (a, ps) -> if ps = [] then None else Some a) locals
          in
          note
            (Printf.sprintf "transfer: on (%d edges, sources {%s})"
               (List.length edges)
               (String.concat ", " sources));
          Some
            {
              Transfer.t_aliases = tables;
              t_locals = locals;
              t_edges = edges;
              t_est_kept = !est;
            }
        end
      end
    end
  end

(* Decision-mix metrics (DESIGN.md §9): how often each optimization fires. *)
let m_decisions = Obs.Metrics.counter "optimizer.decisions"
let m_apriori = Obs.Metrics.counter "optimizer.apriori_rewrites"
let m_adaptive_dropped = Obs.Metrics.counter "optimizer.adaptive_dropped"
let m_nljp_plans = Obs.Metrics.counter "optimizer.nljp_plans"
let m_transfer_plans = Obs.Metrics.counter "optimizer.transfer_plans"

let decide ?(adaptive = false) ?(transfer = true) catalog q ~tech ~nljp_config =
  Obs.Metrics.incr m_decisions;
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  (* Phase 1: generalized a-priori over disjoint subsets (Listing 9). *)
  let rewrites = ref [] in
  if tech.apriori then begin
    let remaining = ref (Qspec.aliases_of q) in
    let continue = ref true in
    while !continue && !remaining <> [] do
      match pick_gapriori catalog q !remaining with
      | None -> continue := false
      | Some rw ->
        rewrites := rw :: !rewrites;
        note "a-priori: reduced %s via reducer over {%s}"
          (String.concat ", " rw.reduced)
          (String.concat ", " rw.considered);
        remaining := List.filter (fun a -> not (List.mem a rw.considered)) !remaining
    done;
    (* Considered-but-rejected is part of the record: calibrate replays
       should see why a technique did not fire, not just that it didn't. *)
    if !rewrites = [] then note "a-priori: considered, no safe reducer found"
  end;
  let rewrites = List.rev !rewrites in
  let rewrites =
    if not adaptive then rewrites
    else
      List.filter
        (fun rw ->
          let keep = adaptive_keep catalog rw in
          if not keep then begin
            Obs.Metrics.incr m_adaptive_dropped;
            note "a-priori: dropped unselective reducer on {%s} (adaptive gate)"
              (String.concat ", " rw.reduced)
          end;
          keep)
        rewrites
  in
  Obs.Metrics.add m_apriori (List.length rewrites);
  let overrides = List.concat_map (fun rw -> rw.replacements) rewrites in
  (* Phase 2: memoization and pruning via NLJP. *)
  let nljp =
    if tech.memo || tech.pruning then begin
      let apriori_groups = List.map (fun rw -> rw.reduced) rewrites in
      match pick_memprune catalog q ~tech ~nljp_config ~apriori_groups ~overrides with
      | Some (op, aliases), _ ->
        Obs.Metrics.incr m_nljp_plans;
        note "NLJP: outer side {%s}" (String.concat ", " aliases);
        Some (op, aliases)
      | None, last_error ->
        (match last_error with
         | Some (aliases, e) ->
           note "NLJP: no applicable outer/inner split (last tried {%s}: %s)"
             (String.concat ", " aliases) e
         | None -> note "NLJP: no applicable outer/inner split");
        None
    end
    else None
  in
  (* Phase 3: predicate transfer (semi-join reduction along join edges). *)
  let transfer_spec =
    if not transfer then begin
      note "transfer: disabled by configuration";
      None
    end
    else begin
      let spec =
        pick_transfer catalog q ~nljp ~overrides
          ~note:(fun s -> notes := s :: !notes)
      in
      if spec <> None then Obs.Metrics.incr m_transfer_plans;
      spec
    end
  in
  {
    query = q;
    apriori_rewrites = rewrites;
    nljp;
    transfer = transfer_spec;
    notes = List.rev !notes;
  }

let rewritten_query d =
  let repl = List.concat_map (fun rw -> rw.replacements) d.apriori_rewrites in
  {
    d.query with
    Ast.from =
      List.map
        (fun item ->
          match item with
          | Ast.T_table (name, al) ->
            let alias = Option.value al ~default:name in
            (match List.assoc_opt alias repl with
             | Some sub -> sub
             | None -> item)
          | Ast.T_subquery _ -> item)
        d.query.Ast.from;
  }
