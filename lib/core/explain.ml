(* EXPLAIN: print the optimizer's decision for a query without running it.

   The output stitches together the pieces the optimizer settles statically:
   the generalized-a-priori reducers ([Optimizer.pick_gapriori]), the NLJP
   outer/inner split and its memo/prune configuration
   ([Optimizer.pick_memprune] via [Optimizer.decide]), the inner-side access
   path in priority order (hash probe ≻ vectorized column probe ≻ sorted
   inner index ≻ row scan, [Nljp.plan_access]) and the cost model's estimate
   of the baseline physical plan ([Cost.explain]).

   [Optimizer.decide] with [adaptive:false] only analyzes — Qspec analysis,
   subsumption derivation and [Nljp.build] are static — so nothing of the
   main query executes.  The one caveat is WITH: planning the main block
   needs the CTE temp tables to exist, so CTE blocks are materialized first
   (flagged in the output). *)

open Sqlfront
open Relalg

let add_block b title body =
  Buffer.add_string b title;
  Buffer.add_char b '\n';
  String.split_on_char '\n' body
  |> List.iter (fun line -> if line <> "" then Buffer.add_string b ("  " ^ line ^ "\n"))

let explain_block ~tech ~nljp_config catalog (q : Ast.query) b =
  (* Mirrors Runner.run_block's shape gate: queries outside the iceberg form
     run as the baseline plan. *)
  let optimizable =
    q.Ast.having <> None
    && List.length q.Ast.from >= 2
    && List.for_all (function Ast.T_table _ -> true | _ -> false) q.Ast.from
    && (tech.Optimizer.apriori || tech.Optimizer.memo || tech.Optimizer.pruning)
  in
  let decision =
    if not optimizable then None
    else
      match Optimizer.decide ~adaptive:false catalog q ~tech ~nljp_config with
      | d -> Some d
      | exception Qspec.Unsupported reason ->
        Buffer.add_string b ("not optimized: " ^ reason ^ "\n");
        None
  in
  (match decision with
   | None ->
     if not optimizable then
       Buffer.add_string b "not optimized: outside the iceberg query shape\n"
   | Some d ->
     List.iter
       (fun n -> Buffer.add_string b ("note: " ^ n ^ "\n"))
       d.Optimizer.notes;
     List.iter
       (fun rw ->
         add_block b
           (Printf.sprintf "a-priori reducer on {%s}:"
              (String.concat ", " rw.Optimizer.reduced))
           rw.Optimizer.reducer_sql)
       d.Optimizer.apriori_rewrites;
     (match d.Optimizer.nljp with
      | None -> Buffer.add_string b "NLJP: not applicable; executes as baseline plan\n"
      | Some (op, aliases) ->
        Buffer.add_string b
          (Printf.sprintf "NLJP outer side: {%s}\n" (String.concat ", " aliases));
        add_block b "NLJP component queries:" (Nljp.describe op);
        let access, access_notes = Nljp.plan_access op in
        Buffer.add_string b
          ("inner access path: " ^ Nljp.access_to_string access ^ "\n");
        List.iter
          (fun n -> Buffer.add_string b ("  note: " ^ n ^ "\n"))
          access_notes;
        (* Estimated side cardinalities — the numbers --analyze checks
           against the actual Q_B / Q_R materializations. *)
        (try
           let lq, rq = Nljp.side_queries op in
           let le = Cost.estimate catalog (Binder.bind catalog lq) in
           let re = Cost.estimate catalog (Binder.bind catalog rq) in
           Buffer.add_string b
             (Printf.sprintf
                "estimated Q_B (outer side): rows~%.0f; Q_R (inner side): rows~%.0f\n"
                le.Cost.rows re.Cost.rows)
         with _ -> ()));
     (* The transfer plan itself (the gate's verdict is in the notes). *)
     (match d.Optimizer.transfer with
      | None -> ()
      | Some spec ->
        let edges =
          List.map
            (fun e ->
              let (a, ca) = e.Transfer.e_left and (b, cb) = e.Transfer.e_right in
              Printf.sprintf "%s.%s = %s.%s" a ca b cb)
            spec.Transfer.t_edges
        in
        let ests =
          List.filter_map
            (fun (a, _) ->
              Option.map
                (fun f -> Printf.sprintf "%s~%.0f%%" a (100. *. f))
                (List.assoc_opt a spec.Transfer.t_est_kept))
            spec.Transfer.t_aliases
        in
        add_block b "predicate transfer plan:"
          (Printf.sprintf "edges: %s\nestimated kept: %s"
             (String.concat "; " edges)
             (String.concat ", " ests))));
  (* The cost model ranges over the baseline physical plan — the yardstick
     the NLJP rewrite is competing with. *)
  (match Binder.bind catalog q with
   | plan -> add_block b "baseline physical plan (cost model):" (Cost.explain catalog plan)
   | exception e ->
     Buffer.add_string b
       ("baseline plan unavailable: " ^ Printexc.to_string e ^ "\n"))

let rec query ?(tech = Optimizer.all_techniques)
    ?(nljp_config = Nljp.default_config) catalog (q : Ast.query) =
  let b = Buffer.create 1024 in
  add_block b "query:" (Pretty.query q);
  (* WITH blocks: materialize each (the only execution EXPLAIN performs —
     the main block needs their schemas and catalog facts to plan), then
     explain the main block against the augmented catalog, as Runner would
     run it. *)
  let temp_names = ref [] in
  let renames = ref [] in
  List.iter
    (fun (name, def) ->
      let def = Runner.rename_table_refs def !renames in
      Buffer.add_string b (Printf.sprintf "CTE %s (materialized for planning):\n" name);
      let sub = query ~tech ~nljp_config catalog def in
      String.split_on_char '\n' sub
      |> List.iter (fun line ->
             if line <> "" then Buffer.add_string b ("  " ^ line ^ "\n"));
      let rel = Binder.run catalog def in
      let fresh = Runner.fresh_temp_name catalog name in
      let keys = match Runner.derived_key def with Some k -> [ k ] | None -> [] in
      let nonneg = Runner.derived_nonneg catalog def in
      Catalog.add_table catalog ~keys ~nonneg fresh
        (Relation.with_schema (Schema.unqualified rel.Relation.schema) rel);
      temp_names := fresh :: !temp_names;
      renames := (String.lowercase_ascii name, fresh) :: !renames)
    q.Ast.with_defs;
  let main = Runner.rename_table_refs { q with Ast.with_defs = [] } !renames in
  explain_block ~tech ~nljp_config catalog main b;
  List.iter (Catalog.remove_table catalog) !temp_names;
  Buffer.contents b
