(** EXPLAIN: the optimizer's plan for a query, without executing it.

    The report shows the chosen generalized-a-priori reducers, the NLJP
    outer/inner split with its component queries and memo/prune
    configuration (including the reasons when either is off), the
    inner-side access path in priority order (hash probe ≻ vectorized
    column probe ≻ sorted inner index ≻ row scan), and the cost model's
    per-node estimates for the baseline physical plan.

    Nothing of the main query runs: [Optimizer.decide] with adaptivity off
    is pure analysis.  The one exception is WITH — CTE blocks must be
    materialized so the main block can be planned against their schemas;
    the output flags this. *)

val query :
  ?tech:Optimizer.technique ->
  ?nljp_config:Nljp.config ->
  Relalg.Catalog.t ->
  Sqlfront.Ast.query ->
  string
