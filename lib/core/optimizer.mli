(** The Appendix D optimization procedure (Listing 9) for iceberg queries
    with multiway joins: collect generalized-a-priori rewrites over disjoint
    relation subsets, then pick an outer/inner split for NLJP-based
    memoization and pruning compatible with those rewrites. *)

type technique = { apriori : bool; memo : bool; pruning : bool }

val all_techniques : technique
val no_techniques : technique
val only : [ `Apriori | `Memo | `Pruning ] -> technique

type apriori_rewrite = {
  considered : string list;  (** the T_L whose analysis found the reducer *)
  reduced : string list;  (** Ť: aliases actually wrapped *)
  reducer : Sqlfront.Ast.query;
  reducer_sql : string;
  replacements : (string * Sqlfront.Ast.table_ref) list;
}

type decision = {
  query : Sqlfront.Ast.query;
  apriori_rewrites : apriori_rewrite list;
  nljp : (Nljp.t * string list) option;  (** operator + chosen outer aliases *)
  transfer : Transfer.spec option;
      (** predicate-transfer plan ({!Transfer.run} input); [None] with a
          "transfer: skipped (...)" note when the gate rejects *)
  notes : string list;
}

(** [decide catalog q ~tech ~nljp_config]: run the Listing 9 procedure on a
    single-block query whose FROM items are all plain tables.

    With [adaptive:true] (a first cut of the cost-based decisions the paper
    leaves as future work), each chosen reducer is executed up front and
    dropped when it would keep ≥ 90% of the candidate groups — the regime
    where the paper observes a-priori costing more than it saves.

    With [transfer:false] (the [--no-transfer] / [SI_TRANSFER=0] ablation),
    phase 3 is skipped entirely; otherwise [pick_transfer] gates on an NLJP
    plan being present, equality join edges existing, the inputs clearing
    [transfer_min_rows], and at least one alias carrying a local predicate
    or a-priori IN — each rejection recorded in [notes]. *)
val decide :
  ?adaptive:bool ->
  ?transfer:bool ->
  Relalg.Catalog.t ->
  Sqlfront.Ast.query ->
  tech:technique ->
  nljp_config:Nljp.config ->
  decision

(** Transfer gate's minimum total base rows (default 4096) and its bypass —
    refs so tests can exercise the passes on tiny relations. *)
val transfer_min_rows : int ref

val transfer_force : bool ref

(** When set, IN-subquery conjuncts (a-priori reducer outputs) also act as
    transfer sources.  Off by default: materializing a reducer inside the
    transfer pass duplicates work NLJP performs anyway and measures as a
    net loss on the complex workload. *)
val transfer_apriori_sources : bool ref

(** The query with all chosen a-priori rewrites applied (for non-NLJP
    execution paths). *)
val rewritten_query : decision -> Sqlfront.Ast.query

(** Appendix C's alternative to NLJP-based memoization: choose an
    outer/inner split for which the Listing 8 static rewrite applies and
    return the rewritten query. *)
val pick_static_memo :
  Relalg.Catalog.t -> Sqlfront.Ast.query -> Sqlfront.Ast.query option

(** All non-empty proper subsets of a list, smallest first (shared with
    tests). *)
val proper_subsets : 'a list -> 'a list list

(** The adaptive gate drops a reducer when it keeps at least this fraction
    of the candidate groups (0.9). *)
val adaptive_threshold : float

(** Actual kept/total candidate-group ratio of a reducer, measured by
    executing it (the adaptive gate's evidence).  [None] when unmeasurable
    (no grouping, multi-alias grouping, missing tables, empty domain). *)
val reducer_keep_ratio : Relalg.Catalog.t -> apriori_rewrite -> float option

(** The same ratio as the cost model predicts it, for estimate-vs-actual
    calibration of the gate. *)
val reducer_est_ratio : Relalg.Catalog.t -> apriori_rewrite -> float option
