(** Cost-model calibration: replay a workload under EXPLAIN ANALYZE and
    tabulate estimated vs actual per technique — plan-node cardinalities,
    the a-priori gate's keep ratio, memo repeat-binding payoff, pruning's
    unmodeled eval savings, and the vectorized access path's realized
    coverage (DESIGN.md §10). *)

type row = {
  c_workload : string;
  c_query : string;
  c_metric : string;
  c_est : float;
  c_act : float;
  c_q : float;  (** Q-error of est vs act *)
  c_note : string;
}

(** Replay [(name, sql)] queries against [catalog]; rows in replay order. *)
val calibrate :
  ?tech:Optimizer.technique ->
  ?nljp_config:Nljp.config ->
  ?workers:int ->
  workload:string ->
  Relalg.Catalog.t ->
  (string * string) list ->
  row list

val to_text : row list -> string
val to_json : row list -> Obs.Json.t

(** The [k] worst rows by Q-error. *)
val worst : int -> row list -> row list
