(** A first-cut cost model over physical plans — the cost-based optimization
    the paper's conclusion names as the necessary next step.

    Cardinalities are estimated System-R style: equality predicates select
    1/distinct, ranges interpolate between column min/max (uniformity
    assumption), unknown predicates default to 1/3; joins multiply input
    cardinalities by the join predicate's selectivity; grouping yields
    min(input, product of the group columns' distinct counts).  Costs count
    processed tuples: a nested loop pays |L|·|R|, a hash join |L|+|R|+out,
    an index nested loop |L|·|R|·bound-fraction, and so on.

    The estimates feed the EXPLAIN output and {!Optimizer}'s adaptive
    a-priori gate; they are deliberately simple but directionally sound
    (see the tests). *)

type estimate = { rows : float; cost : float }

(** Estimate a plan bottom-up.  Statistics are computed per referenced base
    table on demand and memoized per call. *)
val estimate : Relalg.Catalog.t -> Relalg.Plan.t -> estimate

type tree = { t_label : string; t_rows : float; t_cost : float; t_children : tree list }
(** Per-node estimates as a tree.  Child order matches the executor's plan
    traversal ([Exec.run]'s recorder paths), so EXPLAIN ANALYZE can pair
    each estimate with the actual row count observed at the same path. *)

val tree : Relalg.Catalog.t -> Relalg.Plan.t -> tree

(** EXPLAIN with per-node estimates appended, e.g.
    [HashAggregate ... (rows≈120 cost≈45000)]. *)
val explain : Relalg.Catalog.t -> Relalg.Plan.t -> string
