open Sqlfront.Ast

type t = Monotone | Anti_monotone | Both | Neither

let to_string = function
  | Monotone -> "monotone"
  | Anti_monotone -> "anti-monotone"
  | Both -> "set-insensitive"
  | Neither -> "neither"

let is_monotone = function Monotone | Both -> true | Anti_monotone | Neither -> false

let is_anti_monotone = function
  | Anti_monotone | Both -> true
  | Monotone | Neither -> false

let flip = function
  | Monotone -> Anti_monotone
  | Anti_monotone -> Monotone
  | Both -> Both
  | Neither -> Neither

(* Conjunction and disjunction both preserve the common class. *)
let combine a b =
  match a, b with
  | Both, x | x, Both -> x
  | Monotone, Monotone -> Monotone
  | Anti_monotone, Anti_monotone -> Anti_monotone
  | _ -> Neither

(* Is a scalar expression non-negative and monotonically non-decreasing in
   its inputs?  Sums and products of non-negative columns and non-negative
   constants qualify; this is what SUM thresholds need. *)
let rec nonneg_scalar nonneg = function
  | S_const (Relalg.Value.Int i) -> i >= 0
  | S_const (Relalg.Value.Float f) -> f >= 0.
  | S_const _ -> false
  | S_col (q, n) -> nonneg (q, n)
  | S_binop (Relalg.Expr.Add, a, b) | S_binop (Relalg.Expr.Mul, a, b) ->
    nonneg_scalar nonneg a && nonneg_scalar nonneg b
  | S_binop (Relalg.Expr.Sub, _, _) | S_binop (Relalg.Expr.Div, _, _) -> false
  | S_neg _ -> false
  | S_agg _ -> false

(* Growing the input set can only move the aggregate in one direction (or
   either).  COUNT and MAX grow; MIN shrinks; SUM of a non-negative
   expression grows. *)
type direction = Grows | Shrinks | Unknown

let agg_direction nonneg = function
  | A_count_star | A_count _ | A_count_distinct _ -> Grows
  | A_max _ -> Grows
  | A_min _ -> Shrinks
  | A_sum e -> if nonneg_scalar nonneg e then Grows else Unknown
  | A_avg _ -> Unknown

let classify ~nonneg phi =
  let atom op lhs rhs =
    let normalized =
      match lhs, rhs with
      | S_agg a, c when is_agg_free c -> Some (a, op, c)
      | c, S_agg a when is_agg_free c -> Some (a, Relalg.Expr.flip_cmp op, c)
      | _ -> None
    in
    match normalized with
    | None ->
      if is_agg_free lhs && is_agg_free rhs then Both else Neither
    | Some (agg, op, _threshold) ->
      (match agg_direction nonneg agg, op with
       | Grows, (Relalg.Expr.Ge | Relalg.Expr.Gt) -> Monotone
       | Grows, (Relalg.Expr.Le | Relalg.Expr.Lt) -> Anti_monotone
       | Shrinks, (Relalg.Expr.Ge | Relalg.Expr.Gt) -> Anti_monotone
       | Shrinks, (Relalg.Expr.Le | Relalg.Expr.Lt) -> Monotone
       | _, (Relalg.Expr.Eq | Relalg.Expr.Ne) -> Neither
       | Unknown, _ -> Neither)
  in
  let rec go = function
    | P_true -> Both
    | P_cmp (op, a, b) -> atom op a b
    | P_and (a, b) | P_or (a, b) -> combine (go a) (go b)
    | P_not a -> flip (go a)
    | P_in _ -> Neither
  in
  go phi
