open Sqlfront
open Relalg

type target = [ `Left | `Right ]

let target_side (t : Qspec.t) = function `Left -> t.Qspec.left | `Right -> t.Qspec.right
let other_side (t : Qspec.t) = function `Left -> t.Qspec.right | `Right -> t.Qspec.left

let classification catalog (t : Qspec.t) =
  Monotone.classify ~nonneg:(Qspec.col_nonneg catalog t) t.Qspec.having

let names cols = List.map Qspec.col_name cols

let safe catalog (t : Qspec.t) target =
  let s = target_side t target in
  let o = other_side t target in
  if not (Qspec.pred_applicable s t.Qspec.having) then
    Error "HAVING condition not applicable to the target side"
  else begin
    let cls = classification catalog t in
    let mono_ok () =
      (* G_R ∪ J_R= must be a superkey of the other side. *)
      let attrs = names o.Qspec.group_cols_eff @ names o.Qspec.eq_join_cols in
      Fdreason.Fd.superkey o.Qspec.fds ~all:(Qspec.side_attrs o) attrs
    in
    let anti_ok () =
      (* G_L → J_L on the target side. *)
      Fdreason.Fd.implies s.Qspec.fds
        (Fdreason.Fd.make (names s.Qspec.group_cols_eff) (names s.Qspec.join_cols))
    in
    if Monotone.is_monotone cls && mono_ok () then Ok ()
    else if Monotone.is_anti_monotone cls && anti_ok () then Ok ()
    else
      match cls with
      | Monotone.Monotone ->
        Error "monotone HAVING but G ∪ J= is not a superkey of the other side"
      | Monotone.Anti_monotone ->
        Error "anti-monotone HAVING but G does not determine J on the target side"
      | Monotone.Both ->
        Error "set-insensitive HAVING but neither schema condition holds"
      | Monotone.Neither -> Error "HAVING condition is neither monotone nor anti-monotone"
  end

let reducer (t : Qspec.t) target =
  let s = target_side t target in
  let select =
    List.map
      (fun c -> Ast.Sel_expr (Ast.S_col (c.Schema.qualifier, c.Schema.name), None))
      s.Qspec.group_cols_eff
  in
  let group_by =
    List.map (fun c -> (c.Schema.qualifier, c.Schema.name)) s.Qspec.group_cols_eff
  in
  let from = List.map (fun (n, a) -> Ast.T_table (n, Some a)) s.Qspec.tables in
  let where = match s.Qspec.local with [] -> None | ps -> Some (Ast.conj ps) in
  Ast.simple_select ?where ~group_by ~having:t.Qspec.having select from

let vacuous (t : Qspec.t) target =
  let s = target_side t target in
  let singleton_groups =
    Fdreason.Fd.superkey s.Qspec.fds ~all:(Qspec.side_attrs s)
      (names s.Qspec.group_cols_eff)
  in
  if not singleton_groups then false
  else begin
    (* Over singleton groups every COUNT aggregate is 1; if Φ then reduces
       to a closed true condition, the reducer keeps everything. *)
    let counts_only = ref true in
    let phi' =
      Aggmap.pred
        (fun a ->
          match a with
          | Ast.A_count_star | Ast.A_count _ | Ast.A_count_distinct _ -> Ast.icst 1
          | Ast.A_sum _ | Ast.A_min _ | Ast.A_max _ | Ast.A_avg _ ->
            counts_only := false;
            Ast.icst 0)
        t.Qspec.having
    in
    !counts_only
    && Ast.cols_of_pred phi' = []
    &&
    match Binder.pred_expr (Catalog.create ()) phi' with
    | e -> (try Expr.eval_bool (Schema.of_cols []) [||] e with _ -> false)
    | exception _ -> false
  end

(* Wrap one table of the target side with a semijoin against the reducer on
   the group columns that live in that table. *)
let reduced_table (t : Qspec.t) target (name, alias) =
  let s = target_side t target in
  let own =
    List.filter (fun c -> c.Schema.qualifier = Some alias) s.Qspec.group_cols_eff
  in
  if own = [] then Ast.T_table (name, Some alias)
  else begin
    let red = reducer t target in
    (* Project the reducer onto this table's columns. *)
    let red =
      {
        red with
        Ast.select =
          List.map
            (fun c -> Ast.Sel_expr (Ast.S_col (c.Schema.qualifier, c.Schema.name), None))
            own;
      }
    in
    let tuple = List.map (fun c -> Ast.S_col (Some alias, c.Schema.name)) own in
    let sub =
      Ast.simple_select
        ~where:(Ast.P_in (tuple, red))
        [ Ast.Sel_star ]
        [ Ast.T_table (name, Some alias) ]
    in
    Ast.T_subquery (sub, alias)
  end

let replacements (t : Qspec.t) target =
  let s = target_side t target in
  List.filter_map
    (fun (name, alias) ->
      match reduced_table t target (name, alias) with
      | Ast.T_table _ -> None  (* no reducer output columns in this table *)
      | Ast.T_subquery _ as sub -> Some (alias, sub))
    s.Qspec.tables

let reduced_from (t : Qspec.t) target =
  let repl = replacements t target in
  List.map
    (fun item ->
      match item with
      | Ast.T_table (name, al) ->
        let alias = Option.value al ~default:name in
        (match List.assoc_opt alias repl with
         | Some sub -> sub
         | None -> item)
      | Ast.T_subquery _ -> item)
    t.Qspec.query.Ast.from

let apply (t : Qspec.t) target =
  { t.Qspec.query with Ast.from = reduced_from t target }

(* ---- instance-based checks (Definition 3) ---- *)

(* Materialize the candidate LR-join (no grouping) and the target side, then
   count, per (side-tuple, LR-group), how many joined tuples the side tuple
   contributes. *)
let joined_with_sides catalog (t : Qspec.t) =
  let lq = Qspec.side_query t.Qspec.left in
  let rq = Qspec.side_query t.Qspec.right in
  let l = Binder.run catalog lq in
  let r = Binder.run catalog rq in
  let theta = Qspec.theta_expr catalog t in
  let lr = Ops.nl_join ~pred:theta l r in
  (l, r, lr)

let group_key schema cols row =
  Row.project row (List.map (fun c -> Schema.index_of_col schema c) cols)

let check_instance catalog (t : Qspec.t) target ~deflationary =
  let l, r, lr = joined_with_sides catalog t in
  let side, side_rel = match target with `Left -> (t.Qspec.left, l) | `Right -> (t.Qspec.right, r) in
  ignore r;
  let lr_schema = lr.Relation.schema in
  let all_group_cols = t.Qspec.left.Qspec.group_cols @ t.Qspec.right.Qspec.group_cols in
  let side_idxs =
    List.map
      (fun c -> Schema.index_of_col lr_schema c)
      (Schema.cols side.Qspec.schema)
  in
  (* contribution count per (side tuple, group key) *)
  let contrib = Row.Tbl.create 256 in
  let groups = Row.Tbl.create 256 in
  Relation.iter
    (fun row ->
      let stup = Row.project row side_idxs in
      let gkey = group_key lr_schema all_group_cols row in
      let key = Row.append stup gkey in
      Row.Tbl.replace contrib key
        (1 + Option.value (Row.Tbl.find_opt contrib key) ~default:0);
      Row.Tbl.replace groups gkey ())
    lr;
  if not deflationary then
    (* non-inflationary: every (side tuple, group) pair appears at most once *)
    Row.Tbl.fold (fun _ n acc -> acc && n <= 1) contrib true
  else begin
    (* non-deflationary: for every candidate group and every side tuple in
       the corresponding side group, the side tuple contributes >= 1 *)
    let sg_cols = side.Qspec.group_cols in
    let sg_idx_in_side =
      List.map (fun c -> Schema.index_of_col side_rel.Relation.schema c) sg_cols
    in
    let sg_idx_in_lr = List.map (fun c -> Schema.index_of_col lr_schema c) sg_cols in
    let gcols_idx_in_group =
      (* position of side's group cols within the combined group key *)
      List.filter_map
        (fun c ->
          let rec find i = function
            | [] -> None
            | c' :: rest -> if c' = c then Some i else find (i + 1) rest
          in
          find 0 all_group_cols)
        sg_cols
    in
    ignore sg_idx_in_lr;
    Row.Tbl.fold
      (fun gkey () acc ->
        acc
        &&
        let u = Row.project gkey gcols_idx_in_group in
        Relation.fold
          (fun acc srow ->
            acc
            &&
            let su = Row.project srow sg_idx_in_side in
            if not (Row.equal su u) then true
            else
              let key = Row.append srow gkey in
              Option.value (Row.Tbl.find_opt contrib key) ~default:0 >= 1)
          true side_rel)
      groups true
  end

let non_inflationary catalog t target = check_instance catalog t target ~deflationary:false
let non_deflationary catalog t target = check_instance catalog t target ~deflationary:true
