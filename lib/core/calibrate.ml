(* Cost-model calibration: replay a workload under EXPLAIN ANALYZE and
   tabulate estimated vs actual per technique (DESIGN.md §10).

   Each row is one estimate the optimizer acted on, next to what actually
   happened:
   - [cardinality:*] — per-node cardinalities of executed plans (baseline
     plan nodes, NLJP side queries, block outputs);
   - [apriori:keep_ratio] — the fraction of candidate groups a chosen
     reducer keeps, as the cost model predicts it vs measured by running
     the gate queries (pick_gapriori's evidence);
   - [memo:repeat_bindings] — repeated outer bindings predicted from
     distinct-count statistics vs actual memo hits (pick_memprune's payoff);
   - [prune:inner_evals] — distinct bindings the model expects to evaluate
     vs inner evaluations actually performed (the gap is what pruning and
     memoization removed — unmodeled);
   - [access:vector_evals] — inner evaluations the vectorized path was
     planned for vs those it actually served (fallbacks degrade to the row
     path). *)

type row = {
  c_workload : string;
  c_query : string;
  c_metric : string;
  c_est : float;
  c_act : float;
  c_q : float;
  c_note : string;
}

let mk ~workload ~query ~metric ?(note = "") est act =
  {
    c_workload = workload;
    c_query = query;
    c_metric = metric;
    c_est = est;
    c_act = act;
    c_q = Analyze.qerror ~est ~act;
    c_note = note;
  }

(* Cardinality observations from the annotated tree, labelled with the
   nearest enclosing block (cte:<name> or the main query). *)
let cardinality_rows ~workload ~query node =
  let rows = ref [] in
  let rec go ctx (n : Analyze.node) =
    let ctx =
      if String.length n.Analyze.n_label >= 4 && String.sub n.Analyze.n_label 0 4 = "cte:"
      then n.Analyze.n_label
      else ctx
    in
    (match n.Analyze.n_est_rows, n.Analyze.n_rows_out with
     | Some est, Some act ->
       let metric =
         if ctx = "" then "cardinality:" ^ n.Analyze.n_label
         else "cardinality:" ^ ctx ^ "/" ^ n.Analyze.n_label
       in
       rows := mk ~workload ~query ~metric est (float_of_int act) :: !rows
     | _ -> ());
    List.iter (go ctx) n.Analyze.n_children
  in
  go "" node;
  List.rev !rows

(* Technique observations from the NLJP probe-loop counter slices. *)
let technique_rows ~workload ~query node =
  let rows = ref [] in
  let rec go (n : Analyze.node) =
    (if String.equal n.Analyze.n_label "NLJP probe loop" then begin
       let c k = List.assoc_opt k n.Analyze.n_counters in
       match c "est_distinct_bindings" with
       | None -> ()
       | Some est_distinct ->
         let outer = Option.value (c "outer_rows") ~default:0 in
         let memo_hits = Option.value (c "memo_hits") ~default:0 in
         let inner_evals = Option.value (c "inner_evals") ~default:0 in
         let pruned = Option.value (c "pruned") ~default:0 in
         let vector_evals = Option.value (c "vector_evals") ~default:0 in
         let fallbacks = Option.value (c "vector_fallbacks") ~default:0 in
         let est_repeats = float_of_int (max 0 (outer - est_distinct)) in
         rows :=
           mk ~workload ~query ~metric:"memo:repeat_bindings"
             ~note:
               (Printf.sprintf "outer=%d est_distinct=%d" outer est_distinct)
             est_repeats
             (float_of_int memo_hits)
           :: !rows;
         rows :=
           mk ~workload ~query ~metric:"prune:inner_evals"
             ~note:
               (Printf.sprintf
                  "pruned=%d evals avoided by subsumption (unmodeled)" pruned)
             (float_of_int est_distinct)
             (float_of_int inner_evals)
           :: !rows;
         if vector_evals + fallbacks > 0 then
           rows :=
             mk ~workload ~query ~metric:"access:vector_evals"
               ~note:(Printf.sprintf "row-path fallbacks=%d" fallbacks)
               (float_of_int inner_evals)
               (float_of_int vector_evals)
             :: !rows
     end);
    List.iter go n.Analyze.n_children
  in
  go node;
  List.rev !rows

(* pick_gapriori's gate: estimated vs measured keep ratio per reducer the
   optimizer chose.  Reducers over since-dropped CTE temp tables are
   unmeasurable after the run and are skipped. *)
let apriori_rows ~workload ~query catalog (rep : Runner.report) =
  let rows = ref [] in
  let rec walk ctx (r : Runner.report) =
    List.iter
      (fun rw ->
        match
          ( Optimizer.reducer_est_ratio catalog rw,
            Optimizer.reducer_keep_ratio catalog rw )
        with
        | Some est, Some act ->
          (* In percent: [Analyze.qerror] clamps both sides to >= 1, which
             would collapse any pair of sub-1 ratios to q = 1. *)
          rows :=
            mk ~workload ~query
              ~metric:(Printf.sprintf "apriori:keep_pct%s" ctx)
              ~note:
                (Printf.sprintf "reducer on {%s}; gate drops at %.0f%%"
                   (String.concat ", " rw.Optimizer.reduced)
                   (100. *. Optimizer.adaptive_threshold))
              (100. *. est) (100. *. act)
            :: !rows
        | _ -> ())
      r.Runner.apriori;
    List.iter
      (fun (name, r') -> walk (Printf.sprintf "(cte:%s)" name) r')
      r.Runner.cte_reports
  in
  walk "" rep;
  List.rev !rows

let calibrate_query ?tech ?nljp_config ?workers ~workload catalog (name, sql) =
  let q = Sqlfront.Parser.parse sql in
  let _, rep, node = Analyze.run ?tech ?nljp_config ?workers catalog q in
  cardinality_rows ~workload ~query:name node
  @ apriori_rows ~workload ~query:name catalog rep
  @ technique_rows ~workload ~query:name node

(** Replay [queries] (name, SQL) against [catalog]. *)
let calibrate ?tech ?nljp_config ?workers ~workload catalog queries =
  List.concat_map (calibrate_query ?tech ?nljp_config ?workers ~workload catalog) queries

let to_text rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-10s %-14s %-34s %12s %12s %8s  %s\n" "workload" "query"
       "metric" "est" "act" "q" "note");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-10s %-14s %-34s %12.1f %12.1f %8.2f  %s\n"
           r.c_workload r.c_query r.c_metric r.c_est r.c_act r.c_q r.c_note))
    rows;
  Buffer.contents b

let to_json rows : Obs.Json.t =
  Obs.Json.Arr
    (List.map
       (fun r ->
         Obs.Json.Obj
           [
             ("workload", Obs.Json.Str r.c_workload);
             ("query", Obs.Json.Str r.c_query);
             ("metric", Obs.Json.Str r.c_metric);
             ("est", Obs.Json.Num r.c_est);
             ("act", Obs.Json.Num r.c_act);
             ("q_error", Obs.Json.Num r.c_q);
             ("note", Obs.Json.Str r.c_note);
           ])
       rows)

(* Worst estimates first — the EXPERIMENTS.md calibration table. *)
let worst k rows =
  let sorted = List.sort (fun a b -> Float.compare b.c_q a.c_q) rows in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest
  in
  take k sorted
