(** Replace aggregate subexpressions inside AST scalars/predicates (used to
    retarget Φ and Λ onto computed aggregate columns). *)

val scalar :
  (Sqlfront.Ast.agg -> Sqlfront.Ast.scalar) -> Sqlfront.Ast.scalar -> Sqlfront.Ast.scalar

val pred :
  (Sqlfront.Ast.agg -> Sqlfront.Ast.scalar) -> Sqlfront.Ast.pred -> Sqlfront.Ast.pred
