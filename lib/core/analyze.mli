(** EXPLAIN ANALYZE: estimate-vs-actual plan accounting (DESIGN.md §10).

    Executes a query with full span instrumentation and renders the
    operator tree EXPLAIN prints, annotated per node with actual rows,
    self/cumulative wall time, counter slices, the optimizer's estimated
    cardinality and cost, and the per-node Q-error; plus a plan-level
    summary (max/median Q-error, worst estimates, decision flips). *)

type node = {
  n_label : string;
  n_est_rows : float option;
  n_est_cost : float option;
  n_rows_in : int option;
  n_rows_out : int option;  (** actual rows produced *)
  n_total_ms : float;  (** cumulative wall time *)
  n_self_ms : float;  (** total minus children *)
  n_counters : (string * int) list;
  n_notes : string list;
  n_children : node list;
}

(** [max(est/act, act/est)], both sides clamped to >= 1. *)
val qerror : est:float -> act:float -> float

(** Per-node Q-error when both estimate and actual are present. *)
val node_q : node -> float option

(** Convert a finished span tree (self time derived from children). *)
val of_span : Obs.Span.t -> node

(** Execute under a fresh root span with [Runner.run ~analyze:true];
    results are bag-equal to a plain [Runner.run]. *)
val run :
  ?tech:Optimizer.technique ->
  ?nljp_config:Nljp.config ->
  ?workers:int ->
  ?memo_strategy:[ `Nljp | `Static_rewrite ] ->
  ?adaptive_apriori:bool ->
  ?transfer:bool ->
  Relalg.Catalog.t ->
  Sqlfront.Ast.query ->
  Relalg.Relation.t * Runner.report * node

type summary = {
  s_nodes : int;
  s_compared : int;
  s_max_q : float;
  s_median_q : float;
  s_worst : (string * float * int * float) list;  (** label, est, act, q *)
  s_flips : string list;
}

val summarize : ?flips:string list -> node -> summary

(** Replay the optimizer's pick_* evidence against the measured tree:
    reducers the adaptive gate would drop (measured keep ratio >= the 90%
    threshold) and outer/inner splits chosen from Q_B estimates that were
    off by >= 4x.  Ratios needing since-dropped CTE temp tables are
    skipped. *)
val decision_flips :
  Relalg.Catalog.t -> Runner.report -> node -> string list

val to_text : node -> string
val summary_to_text : summary -> string
val to_json : node -> Obs.Json.t
val summary_to_json : summary -> Obs.Json.t

(** [{"analyze": tree, "summary": ...}] — the [--analyze --json] payload. *)
val document : node -> summary -> Obs.Json.t
