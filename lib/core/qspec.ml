open Sqlfront
open Relalg

type side = {
  aliases : string list;
  tables : (string * string) list;
  local : Ast.pred list;
  schema : Schema.t;
  group_cols : Schema.col list;
  group_cols_eff : Schema.col list;
  join_cols : Schema.col list;
  eq_join_cols : Schema.col list;
  fds : Fdreason.Fd.t list;
}

type t = {
  query : Ast.query;
  left : side;
  right : side;
  theta : Ast.pred list;
  having : Ast.pred;
  group_by : (string option * string) list;
  select : Ast.select_item list;
}

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let col_name c = Schema.col_to_string c

let aliases_of (q : Ast.query) =
  List.map
    (function
      | Ast.T_table (name, alias) -> Option.value alias ~default:name
      | Ast.T_subquery _ -> unsupported "subquery FROM item (materialize it first)")
    q.Ast.from

let table_of_item = function
  | Ast.T_table (name, alias) -> (name, Option.value alias ~default:name)
  | Ast.T_subquery _ -> unsupported "subquery FROM item"

let side_schema catalog tables =
  List.fold_left
    (fun acc (name, alias) ->
      let tbl = Catalog.find catalog name in
      Schema.append acc (Schema.requalify alias tbl.Catalog.rel.Relation.schema))
    (Schema.of_cols []) tables

(* Resolve an AST column against a side schema, if it belongs there. *)
let resolve_in schema (q, n) =
  match Schema.index_of schema ?q n with
  | i -> Some (Schema.nth schema i)
  | exception Schema.Unknown_column _ -> None
  | exception Schema.Ambiguous_column _ ->
    unsupported "ambiguous column %s" (match q with Some q -> q ^ "." ^ n | None -> n)

type owner = Left_side | Right_side | Cross

let owner_of left_schema right_schema cols =
  let one (q, n) =
    match resolve_in left_schema (q, n), resolve_in right_schema (q, n) with
    | Some _, None -> Left_side
    | None, Some _ -> Right_side
    | Some _, Some _ ->
      unsupported "column %s resolves on both sides"
        (match q with Some q -> q ^ "." ^ n | None -> n)
    | None, None ->
      unsupported "column %s resolves on neither side"
        (match q with Some q -> q ^ "." ^ n | None -> n)
  in
  match cols with
  | [] -> Cross
  | _ ->
    let owners = List.map one cols in
    if List.for_all (fun o -> o = Left_side) owners then Left_side
    else if List.for_all (fun o -> o = Right_side) owners then Right_side
    else Cross

let dedup_cols cols =
  List.fold_left (fun acc c -> if List.mem c acc then acc else acc @ [ c ]) [] cols

(* FDs of one side: each table's catalog FDs qualified by its alias, plus
   the FDs induced by this side's local equality conjuncts (Appendix D). *)
let side_fds catalog tables local schema =
  let table_fds =
    List.concat_map
      (fun (name, alias) ->
        let tbl = Catalog.find catalog name in
        Catalog.all_fds tbl
        |> List.map (fun (lhs, rhs) -> Fdreason.Fd.make lhs rhs)
        |> Fdreason.Fd.qualify (fun a -> alias ^ "." ^ a))
      tables
  in
  let simple_col s =
    match s with
    | Ast.S_col (q, n) -> resolve_in schema (q, n)
    | _ -> None
  in
  let eqs, consts =
    List.fold_left
      (fun (eqs, consts) p ->
        match p with
        | Ast.P_cmp (Expr.Eq, a, b) ->
          (match simple_col a, simple_col b with
           | Some ca, Some cb -> ((col_name ca, col_name cb) :: eqs, consts)
           | Some ca, None when (match b with Ast.S_const _ -> true | _ -> false) ->
             (eqs, col_name ca :: consts)
           | None, Some cb when (match a with Ast.S_const _ -> true | _ -> false) ->
             (eqs, col_name cb :: consts)
           | _ -> (eqs, consts))
        | _ -> (eqs, consts))
      ([], []) local
  in
  table_fds @ Fdreason.Fd.of_equalities ~constants:consts eqs

(* Congruence closure over column equalities: seeded by the query's
   top-level equality conjuncts, closed under same-table functional
   dependencies (two aliases of one table agreeing on an FD's left side
   agree on its right side).  This is the Appendix D inference that lets
   S1.id be represented by S2.id on the {S2,T2} side and derives
   S2.category = T2.category. *)
module Equiv = struct
  type t = (Schema.col, Schema.col) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let rec find t c =
    match Hashtbl.find_opt t c with
    | None -> c
    | Some p ->
      let root = find t p in
      if root <> p then Hashtbl.replace t c root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb

  let same t a b = find t a = find t b
end

let close_equivalences catalog items combined conjs =
  let eq = Equiv.create () in
  let simple s = match s with Ast.S_col (qq, n) -> resolve_in combined (qq, n) | _ -> None in
  List.iter
    (fun p ->
      match p with
      | Ast.P_cmp (Expr.Eq, a, b) ->
        (match simple a, simple b with
         | Some ca, Some cb -> Equiv.union eq ca cb
         | _ -> ())
      | _ -> ())
    conjs;
  (* Fixpoint: same-table FD congruence across alias pairs. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (tname, a) ->
        List.iter
          (fun (tname', b) ->
            if String.equal tname tname' && a < b then begin
              let tbl = Catalog.find catalog tname in
              List.iter
                (fun (lhs, rhs) ->
                  let qual alias n = Schema.col ~q:alias n in
                  let agree =
                    lhs <> []
                    && List.for_all (fun x -> Equiv.same eq (qual a x) (qual b x)) lhs
                  in
                  if agree then
                    List.iter
                      (fun y ->
                        if not (Equiv.same eq (qual a y) (qual b y)) then begin
                          Equiv.union eq (qual a y) (qual b y);
                          changed := true
                        end)
                      rhs)
                (Catalog.all_fds tbl)
            end)
          items)
      items
  done;
  eq

let analyze catalog (q : Ast.query) ~left_aliases =
  if q.Ast.with_defs <> [] then unsupported "WITH block (materialize CTEs first)";
  if q.Ast.distinct then unsupported "DISTINCT";
  let having = match q.Ast.having with Some h -> h | None -> unsupported "no HAVING" in
  let items = List.map table_of_item q.Ast.from in
  let is_left (_, alias) = List.mem alias left_aliases in
  let ltables, rtables = List.partition is_left items in
  if ltables = [] || rtables = [] then unsupported "empty side";
  let lschema = side_schema catalog ltables in
  let rschema = side_schema catalog rtables in
  let conjs = match q.Ast.where with None -> [] | Some w -> Ast.conjuncts w in
  let llocal = ref [] and rlocal = ref [] and theta = ref [] in
  List.iter
    (fun p ->
      match owner_of lschema rschema (Ast.cols_of_pred p) with
      | Left_side -> llocal := p :: !llocal
      | Right_side -> rlocal := p :: !rlocal
      | Cross -> theta := p :: !theta)
    conjs;
  let llocal = List.rev !llocal and rlocal = List.rev !rlocal in
  let theta = List.rev !theta in
  let combined = Schema.append lschema rschema in
  let equiv = close_equivalences catalog items combined conjs in
  let equivalents c =
    (* all combined-schema columns equivalent to c (including c) *)
    List.filter (fun c' -> Equiv.same equiv c c') (Schema.cols combined)
  in
  (* Group columns per side. *)
  let lgroup = ref [] and rgroup = ref [] in
  List.iter
    (fun (qq, n) ->
      match resolve_in lschema (qq, n), resolve_in rschema (qq, n) with
      | Some c, None -> lgroup := c :: !lgroup
      | None, Some c -> rgroup := c :: !rgroup
      | Some _, Some _ -> unsupported "ambiguous group column"
      | None, None -> unsupported "unresolved group column %s" n)
    q.Ast.group_by;
  (* Effective group columns: represent each global GROUP BY column by an
     equivalent column of the side when possible. *)
  let eff_group schema =
    List.filter_map
      (fun (qq, n) ->
        match resolve_in combined (qq, n) with
        | None -> None
        | Some g ->
          if Schema.mem schema g then Some g
          else List.find_opt (fun c -> Schema.mem schema c) (equivalents g))
      q.Ast.group_by
  in
  (* Strengthened local conjuncts: equalities between same-side columns that
     follow from Θ and FDs (they hold on every tuple that can contribute to
     the join result, so filtering by them is safe on either side). *)
  let strengthened schema local =
    let cols = Schema.cols schema in
    let extra = ref [] in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j && Equiv.same equiv a b then begin
              let pred =
                Ast.P_cmp
                  ( Expr.Eq,
                    Ast.S_col (a.Schema.qualifier, a.Schema.name),
                    Ast.S_col (b.Schema.qualifier, b.Schema.name) )
              in
              if
                not
                  (List.exists
                     (fun p ->
                       Ast.equal_pred p pred
                       || Ast.equal_pred p
                            (Ast.P_cmp
                               ( Expr.Eq,
                                 Ast.S_col (b.Schema.qualifier, b.Schema.name),
                                 Ast.S_col (a.Schema.qualifier, a.Schema.name) )))
                     (local @ !extra))
              then extra := pred :: !extra
            end)
          cols)
      cols;
    local @ List.rev !extra
  in
  let llocal = strengthened lschema llocal in
  let rlocal = strengthened rschema rlocal in
  (* Join columns per side, and the equality subset. *)
  let ljoin = ref [] and rjoin = ref [] and leq = ref [] and req = ref [] in
  List.iter
    (fun p ->
      let classify_col (qq, n) =
        match resolve_in lschema (qq, n), resolve_in rschema (qq, n) with
        | Some c, None -> ljoin := c :: !ljoin
        | None, Some c -> rjoin := c :: !rjoin
        | _ -> ()
      in
      List.iter classify_col (Ast.cols_of_pred p);
      match p with
      | Ast.P_cmp (Expr.Eq, Ast.S_col (qa, na), Ast.S_col (qb, nb)) ->
        let a = (qa, na) and b = (qb, nb) in
        let note (qq, n) =
          match resolve_in lschema (qq, n), resolve_in rschema (qq, n) with
          | Some c, None -> leq := c :: !leq
          | None, Some c -> req := c :: !req
          | _ -> ()
        in
        note a;
        note b
      | _ -> ())
    theta;
  let mk_side aliases tables local schema group join eq =
    {
      aliases;
      tables;
      local;
      schema;
      group_cols = dedup_cols (List.rev group);
      group_cols_eff = dedup_cols (eff_group schema);
      join_cols = dedup_cols (List.rev join);
      eq_join_cols = dedup_cols (List.rev eq);
      fds = side_fds catalog tables local schema;
    }
  in
  let left =
    mk_side
      (List.map snd ltables)
      ltables llocal lschema !lgroup !ljoin !leq
  in
  let right =
    mk_side
      (List.map snd rtables)
      rtables rlocal rschema !rgroup !rjoin !req
  in
  {
    query = q;
    left;
    right;
    theta;
    having;
    group_by = q.Ast.group_by;
    select = q.Ast.select;
  }

let pred_applicable side p =
  List.for_all
    (fun (q, n) -> Option.is_some (resolve_in side.schema (q, n)))
    (Ast.cols_of_pred p)

let theta_expr catalog t =
  Sqlfront.Binder.pred_expr catalog (Ast.conj t.theta)

let side_query ?(overrides = []) side =
  let from =
    List.map
      (fun (name, alias) ->
        match List.assoc_opt alias overrides with
        | Some item -> item
        | None -> Ast.T_table (name, Some alias))
      side.tables
  in
  let where = match side.local with [] -> None | ps -> Some (Ast.conj ps) in
  Ast.simple_select ?where [ Ast.Sel_star ] from

let side_attrs side = List.map col_name (Schema.cols side.schema)

let resolve_cols side cols =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
      (match resolve_in side.schema c with
       | Some col -> go (col :: acc) rest
       | None -> None)
  in
  go [] cols

let lambda_applicable t =
  let group_cols = t.left.group_cols @ t.right.group_cols in
  let is_group_col (q, n) =
    List.exists
      (fun c ->
        String.equal c.Schema.name n
        && match q with None -> true | Some q -> c.Schema.qualifier = Some q)
      group_cols
  in
  let arg_cols a =
    match a with
    | Ast.A_count_star -> []
    | Ast.A_count x | Ast.A_count_distinct x | Ast.A_sum x | Ast.A_min x
    | Ast.A_max x | Ast.A_avg x -> Ast.cols_of_scalar x
  in
  List.for_all
    (fun item ->
      match item with
      | Ast.Sel_star -> false
      | Ast.Sel_expr (s, _) ->
        let aggs = Ast.aggs_of_scalar s in
        let agg_args_ok =
          List.for_all
            (fun a ->
              List.for_all
                (fun (q, n) -> Option.is_some (resolve_in t.right.schema (q, n)))
                (arg_cols a))
            aggs
        in
        (* Strip aggregates, then the remaining column references must be
           group columns. *)
        let stripped =
          let rec strip = function
            | (Ast.S_const _ | Ast.S_col _) as s -> s
            | Ast.S_binop (op, a, b) -> Ast.S_binop (op, strip a, strip b)
            | Ast.S_neg a -> Ast.S_neg (strip a)
            | Ast.S_agg _ -> Ast.icst 0
          in
          strip s
        in
        agg_args_ok && List.for_all is_group_col (Ast.cols_of_scalar stripped))
    t.select

let outer_group_is_key t =
  let names = List.map col_name t.left.group_cols_eff in
  Fdreason.Fd.superkey t.left.fds ~all:(side_attrs t.left) names

let all_aggs t =
  List.fold_left
    (fun acc a -> if List.exists (Ast.equal_agg a) acc then acc else acc @ [ a ])
    []
    (Ast.aggs_of_pred t.having
    @ List.concat_map
        (function Ast.Sel_star -> [] | Ast.Sel_expr (s, _) -> Ast.aggs_of_scalar s)
        t.select)

let col_nonneg catalog t (q, n) =
  let check side =
    match resolve_in side.schema (q, n) with
    | None -> None
    | Some col ->
      let alias = Option.value col.Schema.qualifier ~default:"" in
      (match List.find_opt (fun (_, a) -> String.equal a alias) side.tables with
       | None -> Some false
       | Some (tname, _) ->
         Some (Catalog.is_nonneg (Catalog.find catalog tname) col.Schema.name))
  in
  match check t.left with
  | Some b -> b
  | None -> (match check t.right with Some b -> b | None -> false)
