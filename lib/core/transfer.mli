(** Predicate transfer: Bloom/IN pre-filtering across the join graph.

    Before NLJP materializes its side queries, every base relation of the
    query is semi-join-reduced along the equality join edges: a forward
    pass (FROM order) and a backward pass (reverse) each scan the relation
    under its local predicates plus the Bloom filters received so far, and
    publish a Bloom filter over each outgoing join column's surviving
    values.  The final per-alias filter sets are handed to
    {!Nljp.execute}, which registers them in the catalog around plan
    execution so base scans probe them (composing with zone-map skipping —
    {!Relalg.Colscan.select_bloom}) and the vectorized inner path refutes
    blocks against them.

    Soundness: a filter may only drop rows that join no tuple of the final
    result.  Blooms have no false negatives, so a row is dropped only when
    its join-key value is definitely absent from the neighbouring side's
    surviving values (rows with NULL join keys also drop — equality never
    holds for them).  Filters are built from a-priori-reduced inputs when
    a reducer rewrite is in force, but are never applied to the reducer
    subqueries themselves (see {!Nljp.execute}). *)

(** One equality join edge [a.ca = b.cb] between two FROM aliases. *)
type edge = {
  e_left : string * string;  (** (alias, unqualified column) *)
  e_right : string * string;
}

(** What to transfer, assembled by {!Optimizer.decide}. *)
type spec = {
  t_aliases : (string * string) list;
      (** (alias, base table name) in FROM order *)
  t_locals : (string * Sqlfront.Ast.pred list) list;
      (** per-alias single-alias WHERE conjuncts, including the IN
          predicate of an a-priori reducer replacement when one wraps the
          alias — the transfer sources *)
  t_edges : edge list;
  t_est_kept : (string * float) list;
      (** optimizer's predicted keep fraction per alias, for EXPLAIN
          ANALYZE's est-vs-actual accounting *)
}

type result = {
  r_filters : (string * (string * Column.Bloom.t) list) list;
      (** final per-alias filters: (column, Bloom) — feed to
          [Nljp.execute ~transfer] *)
  r_kept : (string * (int * int)) list;
      (** per-alias (kept, total) rows at the last (backward-pass) scan:
          exactly the reduction the registered filters will reproduce *)
  r_notes : string list;  (** per-pass / per-edge log, oldest first *)
}

(** Run the two semi-join passes against the base tables in [catalog].
    Under [span], each pass gets a timed child span carrying per-alias
    row counts; est-vs-actual reduction notes land in [r_notes]. *)
val run : ?span:Obs.Span.t -> Relalg.Catalog.t -> spec -> result

(** Filters built since process start (obs counter, for tests/EXPLAIN). *)
val filters_built : unit -> int
