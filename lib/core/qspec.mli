(** The generic iceberg query form of Listing 5.

    [analyze] views a single-block query [Q] over a set of FROM items as a
    two-relation iceberg query by partitioning the items into an outer side
    L and inner side R (Appendix D's  L = Q^⋈[T_L], R = Q^⋈[T_R]): WHERE
    conjuncts local to one side stay inside that side's subquery; the rest
    form Θ.  All FROM items must be plain table references (base tables or
    pre-materialized CTE temp tables); the optimizer guarantees this. *)

type side = {
  aliases : string list;
  tables : (string * string) list;  (** (table name, alias) *)
  local : Sqlfront.Ast.pred list;
      (** conjuncts over this side only, including equalities inferred by
          congruence closure over Θ equalities and same-table FDs (the
          Appendix D inference that derives S2.category = T2.category) *)
  schema : Relalg.Schema.t;  (** concatenated, alias-qualified *)
  group_cols : Relalg.Schema.col list;  (** G on this side, as written *)
  group_cols_eff : Relalg.Schema.col list;
      (** effective G: each global GROUP BY column represented by an
          equivalent column of this side when one exists (e.g. S1.id is
          represented by S2.id on the {S2,T2} side) — what the safety
          checks and reducers use *)
  join_cols : Relalg.Schema.col list;  (** J: this side's columns in Θ *)
  eq_join_cols : Relalg.Schema.col list;  (** J=: those under equality *)
  fds : Fdreason.Fd.t list;
      (** FDs holding on this side's join result, over alias-qualified
          attribute names (table FDs + local equalities, Appendix D) *)
}

type t = {
  query : Sqlfront.Ast.query;
  left : side;
  right : side;
  theta : Sqlfront.Ast.pred list;  (** cross-side conjuncts *)
  having : Sqlfront.Ast.pred;  (** Φ *)
  group_by : (string option * string) list;
  select : Sqlfront.Ast.select_item list;  (** Λ *)
}

exception Unsupported of string

(** [analyze catalog q ~left_aliases] splits [q]'s FROM items by alias.
    Raises [Unsupported] for queries outside the Listing 5 shape (no GROUP
    BY+HAVING, subquery FROM items, DISTINCT, …). *)
val analyze :
  Relalg.Catalog.t -> Sqlfront.Ast.query -> left_aliases:string list -> t

(** All aliases of the query's FROM items, in order.
    Raises [Unsupported] on subquery items. *)
val aliases_of : Sqlfront.Ast.query -> string list

(** Does every column mentioned by the predicate (including inside aggregate
    arguments) belong to this side? — "Φ is applicable to" the side. *)
val pred_applicable : side -> Sqlfront.Ast.pred -> bool

(** Θ as a single row expression over the concatenated L++R schema. *)
val theta_expr : Relalg.Catalog.t -> t -> Relalg.Expr.t

(** The side as a runnable query [SELECT * FROM tables WHERE local].
    [overrides] substitutes a FROM item per alias (used to plug the
    generalized-a-priori reducers into NLJP's binding query, Listing 11);
    an override must preserve the table's schema. *)
val side_query :
  ?overrides:(string * Sqlfront.Ast.table_ref) list -> side -> Sqlfront.Ast.query

(** Qualified attribute names of the side (FD universe). *)
val side_attrs : side -> string list

val col_name : Relalg.Schema.col -> string

(** Columns of Φ's aggregate-free parts and aggregate arguments resolved
    against a side's schema; [None] if some column is not resolvable. *)
val resolve_cols :
  side -> (string option * string) list -> Relalg.Schema.col list option

(** Is [col]'s domain known non-negative? (catalog fact, for Table 2's SUM
    caveat; CTE temp tables carry derived facts). *)
val col_nonneg : Relalg.Catalog.t -> t -> string option * string -> bool

(** §6's condition on the output expressions Λ: every aggregate argument
    ranges over the inner (right) side only, and every aggregate-free column
    reference is a GROUP BY column. *)
val lambda_applicable : t -> bool

(** Is [G_L → A_L]: the outer side's group columns form a superkey of it? *)
val outer_group_is_key : t -> bool

(** All aggregates of Φ and Λ in first-occurrence order, deduplicated. *)
val all_aggs : t -> Sqlfront.Ast.agg list
