(** NLJP — Nested-Loop Join with Pruning (§5–§7).

    The operator is specified by four component queries:
    - the {e binding query} Q_B producing outer tuples (their J_L projection
      is the binding),
    - the parameterized {e inner query} Q_R(b) aggregating the joining inner
      tuples per G_R partition,
    - the {e pruning query} Q_C(b') probing the cache of unpromising
      bindings through the derived subsumption predicate p⪰ (§5.2), and
    - the {e post-processing query} Q_P assembling final result tuples
      (per-tuple when G_L → A_L; by combining algebraic partial states
      otherwise, Appendix C).

    [build] verifies the paper's applicability conditions and degrades
    gracefully: if pruning's Theorem 3 conditions fail, pruning is disabled
    (with a recorded reason) while memoization may stay on, and vice versa. *)

type config = {
  pruning : bool;
  memo : bool;
  cache_index : bool;
      (** CI: index the cache of unpromising bindings — hash-partitioned on
          the dimensions where p⪰ implies equality, else binary-searched on
          the first binding column when p⪰ implies an order on it *)
  inner_index : bool;
      (** BT: probe the materialized inner side through a sorted index
          derived from a Θ bound (equality conjuncts always probe a hash
          index, mirroring PostgreSQL's prepared Q_R plans) *)
  vector : bool;
      (** Vectorized inner loop ({!Relalg.Colprobe}): when the inner side is
          column-primary, no equality conjunct feeds the hash probe, and
          Q_R(b) compiles entirely to [r_col op f(binding)] probes + typed
          aggregation kernels, evaluate it per binding by zone-map block
          skipping and selection-vector kernels over the unboxed column
          vectors, never materializing an inner row.  Falls back to the row
          path — with the reason recorded in [stats.notes] — otherwise. *)
  outer_order : [ `Default | `Auto | `Asc of int | `Desc of int ];
      (** §7 leaves Q_B's exploration order unspecified and flags choosing
          it as future work; [`Asc i]/[`Desc i] sort the outer input by the
          i-th binding column.  [`Auto] derives a direction from p⪰: it
          orders so that the most-subsuming bindings are explored (and
          cached) first, which maximizes later pruning *)
  max_cache_rows : int option;
      (** §7's future-work cache bound: both caches stop admitting entries
          beyond this size (a keep-first replacement policy — safe because
          dropping cache entries only costs pruning/memo opportunities) *)
  workers : int;
      (** With [workers > 1], the outer relation is processed in waves of
          [workers] chunks, one Domain per chunk.  Each domain probes a
          frozen shared prune/memo cache plus its own local cache; local
          caches are merged into the shared cache at wave boundaries (the
          same §7 argument that makes [max_cache_rows] safe makes the merge
          lock-free: dropping or duplicating entries never changes results,
          only pruning opportunity).  Results are [Relation.equal_bag]-equal
          to sequential execution; stats counters are summed across chunks.
          Small outer sides fall back to sequential execution. *)
}

val default_config : config

type stats = {
  mutable outer_rows : int;
  mutable inner_evals : int;
  mutable pruned : int;
  mutable memo_hits : int;
  mutable prune_cache_rows : int;
  mutable memo_cache_rows : int;
  mutable cache_bytes : int;
  mutable pruning_on : bool;
  mutable memo_on : bool;
  mutable vector_on : bool;  (** the vectorized inner loop was used *)
  mutable vector_evals : int;  (** inner evals served by it *)
  mutable vector_fallbacks : int;
      (** evals the vectorized path abandoned mid-flight
          ([Relalg.Colprobe.Fallback]) and redid on the row path *)
  mutable inner_blocks_skipped : int;
      (** blocks refuted per binding by a zone-map probe, summed over evals *)
  mutable inner_blocks_scanned : int;
  mutable waves : int;  (** outer-side slices processed (1 when sequential) *)
  mutable notes : string list;
}

type t

(** Check applicability and assemble the operator; [Error reason] when the
    query shape cannot run as NLJP at all (Φ or Λ not applicable to the
    inner side).  [overrides] plugs substituted FROM items (e.g. a-priori
    reducers, Listing 11) into the side queries by alias; they must preserve
    each table's schema and only remove rows. *)
val build :
  ?overrides:(string * Sqlfront.Ast.table_ref) list ->
  Relalg.Catalog.t ->
  Qspec.t ->
  config ->
  (t, string) result

type shared_cache
(** Cross-query shared prune/memo cache tier (§7's wave-merge discipline
    extended across executions): seeds the shared caches of the next
    [execute ~shared] of the {e same} operator and absorbs what it learns.
    Owned by a caller that caches plans (the query server); the owner must
    (a) never overlap two executions of one operator — the tier is read
    lock-free during waves and mutated at boundaries — and (b) discard the
    tier when the underlying data changes (cache entries are only valid for
    the catalog version they were computed from).  Dropping a tier is
    always safe: it costs pruning/memo opportunity, never correctness. *)

val shared_cache : unit -> shared_cache
(** A fresh, empty tier. *)

val shared_cache_rows : shared_cache -> int * int
(** Current (prune, memo) entry counts — accounting/tests. *)

(** Execute; the result schema matches the original query's SELECT list. *)
val execute :
  ?span:Obs.Span.t ->
  ?estimate:bool ->
  ?transfer:(string * (string * Column.Bloom.t) list) list ->
  ?shared:shared_cache ->
  t ->
  Relalg.Relation.t * stats
(** Execute the operator.  With [span], child spans record the Q_B / Q_R
    materializations and the probe loop (with its counter slice); with
    [estimate] additionally, each side span carries the cost model's
    cardinality estimate and the loop span an [est_distinct_bindings]
    counter, for EXPLAIN ANALYZE's estimate-vs-actual accounting.

    [transfer] supplies predicate-transfer Bloom filters per FROM alias
    (see {!Transfer}): each side's filters are passed to that side's plan
    execution as per-plan state — never during binding, so a-priori
    reducer subqueries always see unfiltered inputs — and the inner side's
    filters additionally compose with the vectorized probe path.  Filters
    must be sound semi-join reductions: dropping a row may only remove
    tuples that join nothing in the final result.

    [shared] plugs in a cross-query cache tier (see {!shared_cache}); a
    repeated execution then starts with the previous runs' prune/memo
    entries already warm, and [stats] counts its hits as memo hits /
    prunes. *)

(** Per-cache survival counts of one {!delta_refresh}. *)
type refresh = {
  rf_prune_kept : int;
  rf_prune_dropped : int;
  rf_memo_kept : int;
  rf_memo_dropped : int;
}

(** [delta_refresh op shared ~table ~delta] revalidates the shared tier
    after [delta] rows were appended to base table [table] (normalized
    name), instead of discarding it wholesale.

    [`Kept]: every entry provably survives untouched — the table does not
    occur in the operator, occurs only on the outer side (Q_R is untouched;
    per-binding entries stay exact and new bindings simply miss), or the
    delta is empty.  [`Refreshed]: the table occurs on the inner side; each
    entry was kept iff no delta row can join its binding — a binding-only Θ
    gate fails, or at every inner occurrence a Θ probe refutes the delta's
    column zone map.  Anti-monotone Φ keeps all prune entries (¬Φ is
    preserved under appends); monotone Φ filters them like memo entries.
    [`Reprepare]: the delta contradicts the build-time numeric judgement a
    derived p⪰ relies on — the caches are cleared and the caller must
    rebuild the operator.

    Callers must not overlap this with [execute] of the same operator (the
    server refreshes under the exclusive lock it appends under), and must
    separately discard any predicate-transfer Bloom state: Blooms describe
    pre-append tables and refreshing them is the caller's job. *)
val delta_refresh :
  t ->
  shared_cache ->
  table:string ->
  delta:Relalg.Relation.t ->
  [ `Kept | `Refreshed of refresh | `Reprepare of string ]

(** Human-readable description of the component queries (cf. Listings 7
    and 10), including the derived p⪰. *)
val describe : t -> string

(** The derived subsumption predicate, if pruning is active. *)
val subsumption : t -> Subsume.t option

(** The operator's stats record — cumulative across [execute] calls
    (mutated in place); snapshot around a call for per-execution deltas. *)
val op_stats : t -> stats

(** The Q_B / Q_R component queries as materialized (overrides applied). *)
val side_queries : t -> Sqlfront.Ast.query * Sqlfront.Ast.query

(** The inner-side access path, in [execute]'s priority order: hash probe
    on equality Θ conjuncts ≻ vectorized column probe ≻ sorted inner index
    on a Θ bound ≻ row scan. *)
type access =
  | A_hash of int  (** equality conjuncts feeding the hash-index probe *)
  | A_vector
  | A_index of string  (** sorted inner index on this column *)
  | A_scan

val access_to_string : access -> string

(** Statically mirror [execute]'s access-path decision — no side query is
    materialized, so this is safe for EXPLAIN.  The notes say why faster
    paths were rejected (mirroring [stats.notes]'s wording). *)
val plan_access : t -> access * string list
