(* EXPLAIN ANALYZE: estimate-vs-actual plan accounting (DESIGN.md §10).

   [run] executes a query through [Runner.run ~analyze:true] under a root
   span and converts the span tree into an annotated node tree: per node
   the actual rows in/out, wall time (self = total minus children),
   operator counter slices, and — where the optimizer produced one — the
   estimated cardinality and cost, with the Q-error max(est/act, act/est)
   derivable per node.  [summarize] condenses the tree into the plan-level
   view (max/median Q-error, worst offenders) and [decision_flips] replays
   the optimizer's pick_* evidence to say which decisions the estimation
   errors would have flipped. *)

open Relalg

type node = {
  n_label : string;
  n_est_rows : float option;
  n_est_cost : float option;
  n_rows_in : int option;
  n_rows_out : int option;
  n_total_ms : float;
  n_self_ms : float;
  n_counters : (string * int) list;
  n_notes : string list;
  n_children : node list;
}

let qerror ~est ~act =
  (* Smoothed Q-error: both sides clamped to >= 1 so empty results and
     sub-row estimates do not blow up to infinity. *)
  let e = Float.max est 1. and a = Float.max act 1. in
  Float.max (e /. a) (a /. e)

let node_q n =
  match n.n_est_rows, n.n_rows_out with
  | Some e, Some a -> Some (qerror ~est:e ~act:(float_of_int a))
  | _ -> None

let rec of_span (s : Obs.Span.t) =
  let kids = List.map of_span (Obs.Span.children s) in
  let child_ms = List.fold_left (fun acc c -> acc +. c.n_total_ms) 0. kids in
  {
    n_label = s.Obs.Span.name;
    n_est_rows = s.Obs.Span.est_rows;
    n_est_cost = s.Obs.Span.est_cost;
    n_rows_in = s.Obs.Span.rows_in;
    n_rows_out = s.Obs.Span.rows_out;
    n_total_ms = s.Obs.Span.dur_ms;
    n_self_ms = Float.max 0. (s.Obs.Span.dur_ms -. child_ms);
    n_counters = s.Obs.Span.counters;
    n_notes = s.Obs.Span.notes;
    n_children = kids;
  }

let run ?tech ?nljp_config ?workers ?memo_strategy ?adaptive_apriori ?transfer
    catalog q =
  let root = Obs.Span.enter "query" in
  let rel, rep =
    Runner.run ~span:root ~analyze:true ?tech ?nljp_config ?workers
      ?memo_strategy ?adaptive_apriori ?transfer catalog q
  in
  Obs.Span.finish ~rows_out:(Relation.cardinality rel) root;
  (rel, rep, of_span root)

(* ---- plan-level summary ---- *)

type summary = {
  s_nodes : int;
  s_compared : int;  (* nodes with both an estimate and an actual *)
  s_max_q : float;
  s_median_q : float;
  s_worst : (string * float * int * float) list;  (* label, est, act, q *)
  s_flips : string list;
}

(* All (label, est, act, q) observations, preorder. *)
let observations node =
  let rec go acc n =
    let acc =
      match node_q n with
      | Some q -> (n.n_label, Option.get n.n_est_rows, Option.get n.n_rows_out, q) :: acc
      | None -> acc
    in
    List.fold_left go acc n.n_children
  in
  List.rev (go [] node)

let count_nodes node =
  let rec go acc n = List.fold_left go (acc + 1) n.n_children in
  go 0 node

let median xs =
  match List.sort Float.compare xs with
  | [] -> 1.
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let rec take k = function
  | [] -> []
  | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let summarize ?(flips = []) node =
  let obs = observations node in
  let by_q_desc =
    List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a) obs
  in
  {
    s_nodes = count_nodes node;
    s_compared = List.length obs;
    s_max_q = (match by_q_desc with [] -> 1. | (_, _, _, q) :: _ -> q);
    s_median_q = median (List.map (fun (_, _, _, q) -> q) obs);
    s_worst = take 5 by_q_desc;
    s_flips = flips;
  }

(* Which pick_* decisions would the estimation errors have flipped?
   - pick_gapriori keeps a reducer the adaptive gate (measured keep ratio
     >= threshold) would drop: the cost model said "selective", reality
     says "keeps almost everything".
   - pick_memprune chose the outer/inner split from side-query
     cardinalities; a Q_B estimate off by >= 4x means the split was chosen
     on evidence of that quality.
   CTE temp tables are dropped after the run, so ratios that reference
   them are unmeasurable here and are skipped (ratio = None). *)
let split_misestimate_threshold = 4.

let decision_flips catalog (rep : Runner.report) node =
  let flips = ref [] in
  let add fmt = Printf.ksprintf (fun s -> flips := s :: !flips) fmt in
  let rec walk_rep ctx (r : Runner.report) =
    List.iter
      (fun rw ->
        match Optimizer.reducer_keep_ratio catalog rw with
        | Some ratio when ratio >= Optimizer.adaptive_threshold ->
          add
            "pick_gapriori%s: reducer on {%s} keeps %.0f%% of candidate groups (>= %.0f%% gate) — adaptive gate would drop it"
            ctx
            (String.concat ", " rw.Optimizer.reduced)
            (100. *. ratio)
            (100. *. Optimizer.adaptive_threshold)
        | _ -> ())
      r.Runner.apriori;
    List.iter
      (fun (name, r') -> walk_rep (Printf.sprintf " (cte:%s)" name) r')
      r.Runner.cte_reports
  in
  walk_rep "" rep;
  let rec walk_node n =
    (if String.equal n.n_label "Q_B (outer side)" then
       match node_q n with
       | Some q when q >= split_misestimate_threshold ->
         add
           "pick_memprune: outer side (Q_B) cardinality off by q=%.1f (est~%.0f act=%d) — the outer/inner split was chosen on estimates of this quality"
           q
           (Option.get n.n_est_rows)
           (Option.get n.n_rows_out)
       | _ -> ());
    List.iter walk_node n.n_children
  in
  walk_node node;
  List.rev !flips

(* ---- rendering ---- *)

let to_text node =
  let b = Buffer.create 512 in
  let rec go indent n =
    let pad = String.make indent ' ' in
    Buffer.add_string b (pad ^ n.n_label);
    if n.n_total_ms > 0. then
      Buffer.add_string b
        (Printf.sprintf "  %.3f ms total (%.3f ms self)" n.n_total_ms n.n_self_ms);
    (match n.n_rows_in with
     | Some r -> Buffer.add_string b (Printf.sprintf "  rows_in=%d" r)
     | None -> ());
    (match n.n_est_rows, n.n_rows_out with
     | Some e, Some a ->
       Buffer.add_string b
         (Printf.sprintf "  est~%.0f act=%d q=%.2f" e a
            (qerror ~est:e ~act:(float_of_int a)))
     | Some e, None -> Buffer.add_string b (Printf.sprintf "  est~%.0f" e)
     | None, Some a -> Buffer.add_string b (Printf.sprintf "  rows_out=%d" a)
     | None, None -> ());
    (match n.n_est_cost with
     | Some c -> Buffer.add_string b (Printf.sprintf "  cost~%.0f" c)
     | None -> ());
    Buffer.add_char b '\n';
    if n.n_counters <> [] then
      Buffer.add_string b
        (pad ^ "  ["
        ^ String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) n.n_counters)
        ^ "]\n");
    List.iter (fun m -> Buffer.add_string b (pad ^ "  note: " ^ m ^ "\n")) n.n_notes;
    List.iter (go (indent + 2)) n.n_children
  in
  go 0 node;
  Buffer.contents b

let summary_to_text s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "plan summary: %d nodes, %d with estimates; Q-error max %.2f, median %.2f\n"
       s.s_nodes s.s_compared s.s_max_q s.s_median_q);
  if s.s_worst <> [] then begin
    Buffer.add_string b "worst estimates:\n";
    List.iteri
      (fun i (label, est, act, q) ->
        Buffer.add_string b
          (Printf.sprintf "  %d. %s  est~%.0f act=%d q=%.2f\n" (i + 1) label est
             act q))
      s.s_worst
  end;
  (match s.s_flips with
   | [] -> Buffer.add_string b "decision flips: none\n"
   | flips ->
     Buffer.add_string b "decision flips:\n";
     List.iter (fun f -> Buffer.add_string b ("  - " ^ f ^ "\n")) flips);
  Buffer.contents b

let rec to_json n : Obs.Json.t =
  let opt_num = function Some x -> Obs.Json.Num x | None -> Obs.Json.Null in
  let opt_int = function
    | Some i -> Obs.Json.Num (float_of_int i)
    | None -> Obs.Json.Null
  in
  Obs.Json.Obj
    [
      ("label", Obs.Json.Str n.n_label);
      ("est_rows", opt_num n.n_est_rows);
      ("est_cost", opt_num n.n_est_cost);
      ("rows_in", opt_int n.n_rows_in);
      ("act_rows", opt_int n.n_rows_out);
      ("q_error", opt_num (node_q n));
      ("total_ms", Obs.Json.Num n.n_total_ms);
      ("self_ms", Obs.Json.Num n.n_self_ms);
      ( "counters",
        Obs.Json.Obj
          (List.map (fun (k, v) -> (k, Obs.Json.Num (float_of_int v))) n.n_counters)
      );
      ("notes", Obs.Json.Arr (List.map (fun m -> Obs.Json.Str m) n.n_notes));
      ("children", Obs.Json.Arr (List.map to_json n.n_children));
    ]

let summary_to_json s : Obs.Json.t =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Num (float_of_int s.s_nodes));
      ("compared", Obs.Json.Num (float_of_int s.s_compared));
      ("max_q_error", Obs.Json.Num s.s_max_q);
      ("median_q_error", Obs.Json.Num s.s_median_q);
      ( "worst",
        Obs.Json.Arr
          (List.map
             (fun (label, est, act, q) ->
               Obs.Json.Obj
                 [
                   ("label", Obs.Json.Str label);
                   ("est_rows", Obs.Json.Num est);
                   ("act_rows", Obs.Json.Num (float_of_int act));
                   ("q_error", Obs.Json.Num q);
                 ])
             s.s_worst) );
      ("flips", Obs.Json.Arr (List.map (fun f -> Obs.Json.Str f) s.s_flips));
    ]

let document node s : Obs.Json.t =
  Obs.Json.Obj [ ("analyze", to_json node); ("summary", summary_to_json s) ]
