(** Static memoization rewrite (Appendix C, Listing 8).

    Rewrites the iceberg query into a three-stage SQL query: LJT (the
    distinct bindings), LJR (aggregates per binding × G_R partition, with Φ
    applied there when [G_L → A_L]), and a final join of the outer side back
    to LJR — combining algebraic partial aggregates when [G_L → A_L] does
    not hold.  Unlike NLJP-based memoization this needs no new operator and
    handles [G_R ≠ ∅] directly. *)

val applicable : Relalg.Catalog.t -> Qspec.t -> (unit, string) result

(** The rewritten query; raises [Invalid_argument] when not applicable. *)
val rewrite : Relalg.Catalog.t -> Qspec.t -> Sqlfront.Ast.query
