open Relalg
open Sqlfront

type config = {
  pruning : bool;
  memo : bool;
  cache_index : bool;
  inner_index : bool;
  vector : bool;
  outer_order : [ `Default | `Auto | `Asc of int | `Desc of int ];
  max_cache_rows : int option;
  workers : int;
}

let default_config =
  {
    pruning = true;
    memo = true;
    cache_index = true;
    inner_index = true;
    vector = true;
    outer_order = `Default;
    max_cache_rows = None;
    workers = 1;
  }

type stats = {
  mutable outer_rows : int;
  mutable inner_evals : int;
  mutable pruned : int;
  mutable memo_hits : int;
  mutable prune_cache_rows : int;
  mutable memo_cache_rows : int;
  mutable cache_bytes : int;
  mutable pruning_on : bool;
  mutable memo_on : bool;
  mutable vector_on : bool;
  mutable vector_evals : int;
  mutable vector_fallbacks : int;
  mutable inner_blocks_skipped : int;
  mutable inner_blocks_scanned : int;
  mutable waves : int;
  mutable notes : string list;
}

let fresh_stats () =
  {
    outer_rows = 0;
    inner_evals = 0;
    pruned = 0;
    memo_hits = 0;
    prune_cache_rows = 0;
    memo_cache_rows = 0;
    cache_bytes = 0;
    pruning_on = false;
    memo_on = false;
    vector_on = false;
    vector_evals = 0;
    vector_fallbacks = 0;
    inner_blocks_skipped = 0;
    inner_blocks_scanned = 0;
    waves = 0;
    notes = [];
  }

(* Global metric mirrors of the per-execution stats (DESIGN.md §9), bumped
   once per [execute] on the spawning domain so Runner and the bench read
   every NLJP counter from the one obs registry. *)
let m_outer_rows = Obs.Metrics.counter "nljp.outer_rows"
let m_inner_evals = Obs.Metrics.counter "nljp.inner_evals"
let m_pruned = Obs.Metrics.counter "nljp.pruned"
let m_memo_hits = Obs.Metrics.counter "nljp.memo_hits"
let m_vector_evals = Obs.Metrics.counter "nljp.vector_evals"
let m_vector_fallbacks = Obs.Metrics.counter "nljp.vector_fallbacks"
let m_blocks_skipped = Obs.Metrics.counter "nljp.inner_blocks_skipped"
let m_blocks_scanned = Obs.Metrics.counter "nljp.inner_blocks_scanned"
let m_prune_cache_rows = Obs.Metrics.counter "nljp.prune_cache_rows"
let m_memo_cache_rows = Obs.Metrics.counter "nljp.memo_cache_rows"
let m_cache_bytes = Obs.Metrics.counter "nljp.cache_bytes"
let m_waves = Obs.Metrics.counter "nljp.waves"

type t = {
  catalog : Catalog.t;
  spec : Qspec.t;
  overrides : (string * Ast.table_ref) list;
  config : config;
  cls : Monotone.t;
  key_case : bool;  (* G_L → A_L *)
  all_aggs : Ast.agg list;
  subsume : Subsume.t option;
  prune_reason : string option;  (* why pruning is off, if it is *)
  memo_reason : string option;
  numeric_theta : (Schema.col * bool) list;
      (* build-time numeric judgement of Θ's columns: p⪰'s arithmetic was
         derived under it, so [delta_refresh] rechecks it after appends *)
  stats : stats;
}

(* ---- build-time checks ---- *)

let row_bytes row =
  24 + Array.fold_left (fun a v -> a + Value.approx_bytes v) 0 row

(* Sample a column's type from its owning base table. *)
let col_numeric catalog (spec : Qspec.t) col =
  let find_in (side : Qspec.side) =
    match col.Schema.qualifier with
    | None -> None
    | Some alias ->
      List.find_opt (fun (_, a) -> String.equal a alias) side.Qspec.tables
  in
  let owner =
    match find_in spec.Qspec.left with
    | Some x -> Some x
    | None -> find_in spec.Qspec.right
  in
  match owner with
  | None -> false
  | Some (tname, _) ->
    let tbl = Catalog.find catalog tname in
    (match Schema.index_of tbl.Catalog.rel.Relation.schema col.Schema.name with
     | exception Schema.Unknown_column _ -> false
     | idx ->
       let numeric_or_null = function
         | Value.Int _ | Value.Float _ | Value.Null -> true
         | Value.Str _ | Value.Bool _ -> false
       in
       (match Relation.cstore_opt tbl.Catalog.rel with
        | Some cs ->
          (* Columnar table: the column-level zone map already knows the
             value domain.  Both ends must be numeric: values order by type
             rank, so a mixed column hides its strings at [max_v] (and its
             bools at [min_v]) while the other bound still looks numeric. *)
          let zm = Column.Cstore.col_zmap cs idx in
          numeric_or_null zm.Column.Zmap.min_v
          && numeric_or_null zm.Column.Zmap.max_v
        | None ->
          (* Every value must be checked: sampling the first non-null row
             would misjudge a mixed column that happens to lead with a
             number, and the subsumption arithmetic downstream is only
             sound if no string can flow into an ordered comparison. *)
          let rows = Relation.rows tbl.Catalog.rel in
          let rec all i =
            i >= Array.length rows
            || (numeric_or_null rows.(i).(idx) && all (i + 1))
          in
          all 0))

let build ?(overrides = []) catalog (spec : Qspec.t) config =
  if not (Qspec.pred_applicable spec.Qspec.right spec.Qspec.having) then
    Error "HAVING condition is not applicable to the inner side"
  else if not (Qspec.lambda_applicable spec) then
    Error "SELECT aggregates must range over the inner side only"
  else begin
    let cls =
      Monotone.classify ~nonneg:(Qspec.col_nonneg catalog spec) spec.Qspec.having
    in
    let left = spec.Qspec.left in
    let key_case = Qspec.outer_group_is_key spec in
    (* Pruning conditions (Theorem 3). *)
    let prune_reason =
      if not config.pruning then Some "disabled by configuration"
      else if not key_case then Some "G_L is not a superkey of the outer side"
      else if
        Monotone.is_anti_monotone cls
        && spec.Qspec.right.Qspec.group_cols <> []
      then Some "anti-monotone HAVING requires no inner-side GROUP BY columns"
      else if cls = Monotone.Neither then
        Some "HAVING condition is neither monotone nor anti-monotone"
      else None
    in
    let subsume =
      match prune_reason with
      | Some _ -> None
      | None ->
        let theta =
          Expr.canonicalize
            (Schema.append left.Qspec.schema spec.Qspec.right.Qspec.schema)
            (Qspec.theta_expr catalog spec)
        in
        Subsume.derive ~theta ~jl:left.Qspec.join_cols
          ~jr:spec.Qspec.right.Qspec.join_cols
          ~numeric:(col_numeric catalog spec)
    in
    let prune_reason =
      match prune_reason, subsume with
      | Some r, _ -> Some r
      | None, None -> Some "no subsumption predicate derivable from Θ"
      | None, Some _ -> None
    in
    (* Memoization conditions (§6 / Appendix C). *)
    let all_aggs = Qspec.all_aggs spec in
    let algebraic_ok =
      key_case
      || List.for_all
           (fun a -> Relalg.Agg.is_algebraic (Sqlfront.Binder.agg_func a))
           all_aggs
    in
    let jl_key =
      (* J_L → A_L means bindings are distinct: memoization cannot pay off. *)
      Fdreason.Fd.superkey left.Qspec.fds ~all:(Qspec.side_attrs left)
        (List.map Qspec.col_name left.Qspec.join_cols)
    in
    let memo_reason =
      if not config.memo then Some "disabled by configuration"
      else if not algebraic_ok then
        Some "non-algebraic aggregate with G_L not a key of the outer side"
      else if jl_key then Some "J_L determines the outer side: bindings never repeat"
      else None
    in
    if (not key_case) && not algebraic_ok then
      Error "non-algebraic aggregates with G_L not a key cannot be combined"
    else begin
      let numeric_theta =
        match
          Expr.canonicalize
            (Schema.append left.Qspec.schema spec.Qspec.right.Qspec.schema)
            (Qspec.theta_expr catalog spec)
        with
        | theta ->
          List.map (fun c -> (c, col_numeric catalog spec c)) (Expr.columns theta)
        | exception _ -> []
      in
      Ok
        {
          catalog;
          spec;
          overrides;
          config;
          cls;
          key_case;
          all_aggs;
          subsume;
          prune_reason;
          memo_reason;
          numeric_theta;
          stats = fresh_stats ();
        }
    end
  end

(* ---- pruning cache ---- *)

module Prune_cache = struct
  (* Three physical layouts for the cache of unpromising bindings:
     - [Partitioned]: p⪰ implies equality on some binding dimensions
       (equality Θ conjuncts), so only cache entries agreeing with the probe
       on those dimensions can match — hash-partition on them (this is what
       makes pruning effective for the "complex" query, whose p⪰ equates
       category and both attr dimensions);
     - [Sorted]: CI configuration with a numeric first binding column whose
       order is constrained by p⪰ — binary-search to a candidate range;
     - [Flat]: plain list scan. *)
  type restrict = All | Le of float | Ge of float

  type sorted = {
    mutable rows : Row.t array;
    mutable keys : float array;
    mutable len : int;
    (* Unsorted append buffer: [add] lands here in O(1) instead of an
       O(len) [Array.blit] shifted insertion per entry, and is merged into
       the sorted arrays only when the buffer fills.  [exists] scans the
       (bounded) buffer linearly on top of the binary search, so probes
       stay strictly read-only — worker domains scan a frozen shared cache
       concurrently. *)
    mutable brows : Row.t array;
    mutable bkeys : float array;
    mutable blen : int;
    key_of : Row.t -> float;
  }

  type t =
    | Flat of { mutable items : Row.t list; mutable n : int }
    | Sorted of sorted
    | Partitioned of {
        dims : int list;
        tbl : Row.t list ref Row.Tbl.t;
        mutable n : int;
      }

  let flat () = Flat { items = []; n = 0 }

  let sorted ~key_of =
    Sorted
      {
        rows = Array.make 64 [||];
        keys = Array.make 64 0.;
        len = 0;
        brows = Array.make 64 [||];
        bkeys = Array.make 64 0.;
        blen = 0;
        key_of;
      }

  let partitioned dims = Partitioned { dims; tbl = Row.Tbl.create 256; n = 0 }

  (* Sort the buffer and merge the two sorted runs in one pass. *)
  let flush t =
    if t.blen > 0 then begin
      let n = t.blen in
      let idx = Array.init n Fun.id in
      Array.sort (fun i j -> Float.compare t.bkeys.(i) t.bkeys.(j)) idx;
      let total = t.len + n in
      let cap = max total (Array.length t.rows) in
      let rows = Array.make cap [||] and keys = Array.make cap 0. in
      let i = ref 0 and j = ref 0 in
      for k = 0 to total - 1 do
        if !i < t.len && (!j >= n || t.keys.(!i) <= t.bkeys.(idx.(!j))) then begin
          rows.(k) <- t.rows.(!i);
          keys.(k) <- t.keys.(!i);
          incr i
        end
        else begin
          rows.(k) <- t.brows.(idx.(!j));
          keys.(k) <- t.bkeys.(idx.(!j));
          incr j
        end
      done;
      t.rows <- rows;
      t.keys <- keys;
      t.len <- total;
      t.blen <- 0
    end

  (* First position whose key is >= k (resp. > k). *)
  let lower_bound t k =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.keys.(mid) < k then go (mid + 1) hi else go lo mid
    in
    go 0 t.len

  let upper_bound t k =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.keys.(mid) <= k then go (mid + 1) hi else go lo mid
    in
    go 0 t.len

  let add cache row =
    match cache with
    | Flat f ->
      f.items <- row :: f.items;
      f.n <- f.n + 1
    | Sorted t ->
      t.brows.(t.blen) <- row;
      t.bkeys.(t.blen) <- t.key_of row;
      t.blen <- t.blen + 1;
      if t.blen = Array.length t.brows then flush t
    | Partitioned p ->
      let key = Row.project row p.dims in
      (match Row.Tbl.find_opt p.tbl key with
       | Some cell -> cell := row :: !cell
       | None -> Row.Tbl.add p.tbl key (ref [ row ]));
      p.n <- p.n + 1

  (* Does any candidate cache row satisfy [test]?  [probe] is the binding
     being tested (used to locate the partition / range). *)
  let exists cache ~probe ~restrict test =
    match cache with
    | Flat f -> List.exists test f.items
    | Sorted t ->
      let lo, hi =
        match restrict with
        | All -> (0, t.len)
        | Le k -> (0, upper_bound t k)
        | Ge k -> (lower_bound t k, t.len)
      in
      let rec go i = i < hi && (test t.rows.(i) || go (i + 1)) in
      let in_range k =
        match restrict with All -> true | Le b -> k <= b | Ge b -> k >= b
      in
      let rec go_buf i =
        i < t.blen && ((in_range t.bkeys.(i) && test t.brows.(i)) || go_buf (i + 1))
      in
      go lo || go_buf 0
    | Partitioned p ->
      (match Row.Tbl.find_opt p.tbl (Row.project probe p.dims) with
       | None -> false
       | Some cell -> List.exists test !cell)

  let length = function
    | Flat f -> f.n
    | Sorted t -> t.len + t.blen
    | Partitioned p -> p.n

  let iter cache f =
    match cache with
    | Flat fl -> List.iter f fl.items
    | Sorted t ->
      for i = 0 to t.len - 1 do
        f t.rows.(i)
      done;
      for i = 0 to t.blen - 1 do
        f t.brows.(i)
      done
    | Partitioned p -> Row.Tbl.iter (fun _ cell -> List.iter f !cell) p.tbl

  (* Drop every entry failing [keep], preserving layout invariants (sorted
     order survives filtering; partition cells are trimmed and emptied cells
     removed).  Returns the number of entries dropped.  Single-threaded:
     callers must not overlap this with probes (the server refreshes under
     the same exclusive lock it appends under). *)
  let filter_in_place cache keep =
    match cache with
    | Flat f ->
      let items = List.filter keep f.items in
      let n' = List.length items in
      let dropped = f.n - n' in
      f.items <- items;
      f.n <- n';
      dropped
    | Sorted t ->
      flush t;
      let k = ref 0 in
      for i = 0 to t.len - 1 do
        if keep t.rows.(i) then begin
          t.rows.(!k) <- t.rows.(i);
          t.keys.(!k) <- t.keys.(i);
          incr k
        end
      done;
      let dropped = t.len - !k in
      for i = !k to t.len - 1 do
        t.rows.(i) <- [||]
      done;
      t.len <- !k;
      dropped
    | Partitioned p ->
      let dropped = ref 0 in
      let dead = ref [] in
      Row.Tbl.iter
        (fun key cell ->
          let kept = List.filter keep !cell in
          dropped := !dropped + (List.length !cell - List.length kept);
          if kept = [] then dead := key :: !dead else cell := kept)
        p.tbl;
      List.iter (Row.Tbl.remove p.tbl) !dead;
      p.n <- p.n - !dropped;
      !dropped

  let bytes cache =
    match cache with
    | Flat f -> List.fold_left (fun acc r -> acc + row_bytes r) 0 f.items
    | Sorted t ->
      let total = ref (8 * (t.len + t.blen)) in
      for i = 0 to t.len - 1 do
        total := !total + row_bytes t.rows.(i)
      done;
      for i = 0 to t.blen - 1 do
        total := !total + row_bytes t.brows.(i)
      done;
      !total
    | Partitioned p ->
      Row.Tbl.fold
        (fun key cell acc ->
          acc + row_bytes key
          + List.fold_left (fun acc r -> acc + row_bytes r) 0 !cell)
        p.tbl 0
end

(* ---- execution ---- *)

type partition = { v : Row.t; states : Agg.state list; finals : Value.t array }

(* Everything one outer-relation chunk produces; chunks are combined in
   chunk order so results are deterministic regardless of [workers]. *)
type chunk_out = {
  c_rows : Row.t list;  (* key-case emissions, in chunk order *)
  c_acc : (Row.t * Row.t * Agg.state list) Row.Tbl.t;  (* non-key partials *)
  c_prune : Prune_cache.t;
  c_memo : partition list Row.Tbl.t;
  c_stats : stats;
}

(* Cross-query shared cache tier (the server's plan cache owns one per
   cached operator): prune/memo caches that outlive a single [execute],
   lazily shaped on first use because the prune cache's structure
   (flat/sorted/partitioned) is derived per operator. *)
type shared_cache = {
  mutable sc_prune : Prune_cache.t option;
  mutable sc_memo : partition list Row.Tbl.t option;
}

let shared_cache () = { sc_prune = None; sc_memo = None }

let shared_cache_rows sc =
  ( (match sc.sc_prune with Some p -> Prune_cache.length p | None -> 0),
    match sc.sc_memo with Some m -> Row.Tbl.length m | None -> 0 )

let execute ?span ?(estimate = false) ?(transfer = []) ?shared op =
  let { catalog; spec; overrides; config; cls; key_case; all_aggs; subsume; _ } = op in
  let stats = op.stats in
  let waves0 = stats.waves in
  stats.notes <-
    (match op.prune_reason with
     | Some r when config.pruning -> [ "pruning off: " ^ r ]
     | _ -> [])
    @ (match op.memo_reason with
       | Some r when config.memo -> [ "memo off: " ^ r ]
       | _ -> []);
  let left_side = spec.Qspec.left and right_side = spec.Qspec.right in
  (* Q_B: materialize the outer side; Q_R's relation: the inner side.
     Under [span] each side gets a timed child span; under [estimate] the
     cost model's cardinality for the side query is stamped next to the
     actual so EXPLAIN ANALYZE can report the per-side Q-error. *)
  let run_side name side =
    let q = Qspec.side_query ~overrides side in
    (* Transferred Bloom filters for this side's aliases are passed to
       [Exec.run] as per-plan state — never to [Binder.bind], so the
       a-priori reducer subqueries (materialized at bind time) never see
       them.  Filtering a reducer's input is unsound: a monotone HAVING
       group can qualify on the full join yet lose rows the reducer counted.
       Keeping filters out of the shared catalog also means two in-flight
       queries can never observe each other's filters. *)
    let side_filters =
      List.filter (fun (a, fs) -> fs <> [] && List.mem a side.Qspec.aliases) transfer
    in
    let exec_with_filters plan = Exec.run ~filters:side_filters catalog plan in
    match span with
    | None -> exec_with_filters (Binder.bind catalog q)
    | Some parent ->
      Obs.Span.with_span ~parent name (fun s ->
          (* Bind once and share the plan between the estimate and the
             execution: binding a side query with a-priori overrides
             materializes the reducer IN-subqueries, so a separate bind for
             the estimate would run each reducer twice. *)
          let plan = Binder.bind catalog q in
          if estimate then
            (try
               let est = Cost.estimate catalog plan in
               Obs.Span.set_estimate ~rows:est.Cost.rows ~cost:est.Cost.cost s
             with _ -> ());
          let rel = exec_with_filters plan in
          s.Obs.Span.rows_out <- Some (Relation.cardinality rel);
          rel)
  in
  let l_rel = run_side "Q_B (outer side)" left_side in
  let r_rel = run_side "Q_R (inner side)" right_side in
  (* Estimated distinct bindings (product of per-column distinct counts,
     capped by the outer cardinality): what the cost model would predict
     for the number of distinct inner evaluations without pruning.  Counts
     only the binding columns — a full Stats pass over every Q_B column
     would dominate the --analyze overhead budget. *)
  let est_distinct =
    if not estimate then None
    else
      try
        let d_of c =
          let i = Schema.index_of_col l_rel.Relation.schema c in
          let seen = Hashtbl.create 64 in
          Relation.iter
            (fun row -> Hashtbl.replace seen row.(i) ())
            l_rel;
          max 1 (Hashtbl.length seen)
        in
        let d =
          List.fold_left (fun acc c -> acc * d_of c) 1 left_side.Qspec.join_cols
        in
        Some (min d (Relation.cardinality l_rel))
      with _ -> None
  in
  let l_schema = l_rel.Relation.schema and r_schema = r_rel.Relation.schema in
  let jl_idx =
    List.map (fun c -> Schema.index_of_col l_schema c) left_side.Qspec.join_cols
  in
  (* Optional Q_B exploration order (an ORDER BY on the binding query).
     [`Auto] wants the most-subsuming bindings first so the cache fills with
     maximally useful unpromising entries: with an anti-monotone Φ a binding
     b prunes when b ⪰ cached, so cache ⪰-small entries early — if p⪰
     implies w0 ≤ wp0 ("subsuming means smaller"), that is descending order
     on the first binding column; the monotone case and the opposite p⪰
     direction mirror this. *)
  let auto_order () =
    match subsume with
    | None -> `Default
    | Some su ->
      let w0 = Qelim.Linexpr.var "w0" and wp0 = Qelim.Linexpr.var "wp0" in
      let w_le_wp = Qelim.Qe.implies_atom su.Subsume.formula (Qelim.Atom.le w0 wp0) in
      let wp_le_w = Qelim.Qe.implies_atom su.Subsume.formula (Qelim.Atom.le wp0 w0) in
      let anti = Monotone.is_anti_monotone cls in
      if w_le_wp && not wp_le_w then if anti then `Desc 0 else `Asc 0
      else if wp_le_w && not w_le_wp then if anti then `Asc 0 else `Desc 0
      else `Default
  in
  let l_rel =
    let by dim flipped =
      match List.nth_opt jl_idx dim with
      | None -> l_rel
      | Some col ->
        Relation.sort_by
          (fun a b ->
            let c = Value.compare_total a.(col) b.(col) in
            if flipped then -c else c)
          l_rel
    in
    let order =
      match config.outer_order with `Auto -> auto_order () | o -> (o :> [ `Default | `Auto | `Asc of int | `Desc of int ])
    in
    match order with
    | `Default | `Auto -> l_rel
    | `Asc dim -> by dim false
    | `Desc dim -> by dim true
  in
  let binding_schema = Schema.project l_schema jl_idx in
  let theta =
    Expr.canonicalize
      (Schema.append binding_schema r_schema)
      (Qspec.theta_expr catalog spec)
  in
  let theta_ok = Compile.join_pred binding_schema r_schema theta in
  let gl_idx =
    List.map (fun c -> Schema.index_of_col l_schema c) left_side.Qspec.group_cols
  in
  let gr_idx =
    List.map (fun c -> Schema.index_of_col r_schema c) right_side.Qspec.group_cols
  in
  (* Aggregates compiled against the inner schema. *)
  let agg_mapping = List.mapi (fun i a -> (a, Printf.sprintf "__agg%d" i)) all_aggs in
  let compiled =
    List.map (fun (a, _) -> Agg.compile r_schema (Binder.agg_func a)) agg_mapping
  in
  (* Φ over (G_R columns ++ aggregate columns). *)
  let phi_schema =
    Schema.of_cols
      (right_side.Qspec.group_cols @ List.map (fun (_, n) -> Schema.col n) agg_mapping)
  in
  let phi_ast =
    Aggmap.pred
      (fun a ->
        match List.find_opt (fun (a', _) -> Ast.equal_agg a a') agg_mapping with
        | Some (_, n) -> Ast.S_col (None, n)
        | None -> invalid_arg "Nljp: uncollected aggregate in HAVING")
      spec.Qspec.having
  in
  let phi_ok = Compile.pred phi_schema (Binder.pred_expr catalog phi_ast) in
  (* Λ over (G_L ++ G_R ++ aggregate columns). *)
  let lambda_schema =
    Schema.of_cols
      (left_side.Qspec.group_cols @ right_side.Qspec.group_cols
      @ List.map (fun (_, n) -> Schema.col n) agg_mapping)
  in
  let out_items =
    List.mapi
      (fun i item ->
        match item with
        | Ast.Sel_star -> invalid_arg "Nljp: SELECT *"
        | Ast.Sel_expr (s, alias) ->
          let s' =
            Aggmap.scalar
              (fun a ->
                match List.find_opt (fun (a', _) -> Ast.equal_agg a a') agg_mapping with
                | Some (_, n) -> Ast.S_col (None, n)
                | None -> invalid_arg "Nljp: uncollected aggregate in SELECT")
              s
          in
          let e = Binder.scalar_expr s' in
          let name =
            match alias, s with
            | Some a, _ -> Schema.col a
            | None, Ast.S_col (qq, n) ->
              let idx = Schema.index_of lambda_schema ?q:qq n in
              Schema.nth lambda_schema idx
            | None, _ -> Schema.col (Printf.sprintf "col%d" i)
          in
          (Compile.scalar lambda_schema (Expr.canonicalize lambda_schema e), name))
      spec.Qspec.select
  in
  let out_schema = Schema.of_cols (List.map snd out_items) in
  (* Inner-side access paths for Q_R(b).  Equality Θ conjuncts between a
     bare inner column and a binding expression become a hash-index probe
     (what the paper gets from PostgreSQL preparing Q_R once); with the BT
     configuration, an inequality conjunct additionally gives a sorted-index
     range restriction. *)
  let bare_r = function
    | Expr.Col c ->
      (match Schema.index_of_col r_schema c with
       | i -> Some i
       | exception Schema.Unknown_column _ -> None
       | exception Schema.Ambiguous_column _ -> None)
    | _ -> None
  in
  let binding_only e =
    List.for_all
      (fun c ->
        match Schema.index_of_col binding_schema c with
        | _ -> true
        | exception Schema.Unknown_column _ -> false
        | exception Schema.Ambiguous_column _ -> false)
      (Expr.columns e)
  in
  let eq_probes =
    List.filter_map
      (fun conj ->
        match conj with
        | Expr.Cmp (Expr.Eq, a, b) ->
          (match bare_r a, bare_r b with
           | Some ridx, _ when binding_only b -> Some (ridx, Compile.scalar binding_schema b)
           | _, Some ridx when binding_only a -> Some (ridx, Compile.scalar binding_schema a)
           | _ -> None)
        | _ -> None)
      (Expr.conjuncts theta)
  in
  let inner_hash =
    match eq_probes with
    | [] -> None
    | probes ->
      let idx = Index.Hash.build r_rel (List.map fst probes) in
      let fs = Array.of_list (List.map snd probes) in
      let key_of b = Array.map (fun f -> f b) fs in
      Some (idx, key_of)
  in
  (* Vectorized inner path (Colprobe): engaged when no equality conjunct
     feeds the hash probe, the inner side is column-primary, and the whole
     inner query compiles to parameterized probes + typed aggregation
     kernels.  It subsumes the sorted index: the zone-map tests restrict
     the scan per binding block-wise, for every probe at once. *)
  let colprobe, vector_reason =
    if not config.vector then (None, Some "disabled by configuration")
    else if inner_hash <> None then
      (None, Some "equality Θ conjunct uses the hash probe path")
    else if Relation.layout r_rel <> `Column then
      (None, Some "inner side is not column-primary")
    else begin
      (* Transferred filters on inner-side columns also ride the vectorized
         path: resolved to inner schema indices, they refute blocks against
         the filter's observed range and cull selected rows by membership
         (composing with the per-binding zone probes).  The inner side was
         already semi-join-reduced at scan time, so this is cheap backstop
         work — it matters when a filter's name didn't resolve on the base
         scan (e.g. the side query renamed columns). *)
      let extra =
        List.concat_map
          (fun (alias, fs) ->
            if not (List.mem alias right_side.Qspec.aliases) then []
            else
              List.filter_map
                (fun (col, bl) ->
                  match Schema.index_of r_schema ~q:alias col with
                  | i -> Some (i, bl)
                  | exception Schema.Unknown_column _ -> None
                  | exception Schema.Ambiguous_column _ -> None)
                fs)
          transfer
      in
      match
        Colprobe.build ~extra ~binding:binding_schema
          ~inner:(Relation.cstore r_rel) ~theta ~gr_idx
          ~aggs:(List.map (fun (a, _) -> Binder.agg_func a) agg_mapping)
      with
      | Ok cp -> (Some cp, None)
      | Error r -> (None, Some r)
    end
  in
  stats.vector_on <- colprobe <> None;
  (match vector_reason with
   | Some r -> stats.notes <- stats.notes @ [ "vector off: " ^ r ]
   | None -> ());
  (* Force the inner side's row view now, on this domain, when a row-path
     access method will run inside worker domains ([eval_inner] must not
     race on the lazy row cache).  The vectorized path never touches rows. *)
  if colprobe = None then ignore (Relation.rows r_rel : Row.t array);
  let inner_index =
    if (not config.inner_index) || colprobe <> None then None
    else
      List.find_map
        (fun conj ->
          match conj with
          | Expr.Cmp (cmp_op, a, b) ->
            let mk ridx bound_e op =
              let idx = Index.Sorted.build r_rel [ ridx ] in
              let f = Compile.scalar binding_schema bound_e in
              let bound b =
                match op with
                | Expr.Le -> (None, Some (f b, `Inclusive))
                | Expr.Lt -> (None, Some (f b, `Strict))
                | Expr.Ge -> (Some (f b, `Inclusive), None)
                | Expr.Gt -> (Some (f b, `Strict), None)
                | Expr.Eq -> (Some (f b, `Inclusive), Some (f b, `Inclusive))
                | Expr.Ne -> (None, None)
              in
              Some (idx, bound)
            in
            (match cmp_op with
             | Expr.Eq -> None (* handled by the hash probe *)
             | _ ->
               (match bare_r a, bare_r b with
                | Some ridx, _ when binding_only b -> mk ridx b cmp_op
                | _, Some ridx when binding_only a -> mk ridx a (Expr.flip_cmp cmp_op)
                | _ -> None))
          | _ -> None)
        (Expr.conjuncts theta)
  in
  (* Pruning setup. *)
  let pruning_active = config.pruning && op.prune_reason = None in
  let memo_active = config.memo && op.memo_reason = None in
  stats.pruning_on <- pruning_active;
  stats.memo_on <- memo_active;
  let first_binding_numeric =
    match left_side.Qspec.join_cols with
    | [] -> false
    | c :: _ -> col_numeric catalog spec c
  in
  let key_to_float v =
    match v with
    | Value.Int i -> float_of_int i
    | Value.Float f -> f
    | Value.Bool b -> if b then 1. else 0.
    | Value.Null | Value.Str _ -> 0.
  in
  (* Binding dimensions on which p⪰ implies equality: only cache entries
     agreeing with the probe there can ever match, so partition on them. *)
  let eq_dims =
    match subsume with
    | Some su when pruning_active && config.cache_index ->
      List.filter_map
        (fun i ->
          let w = Qelim.Linexpr.var (Printf.sprintf "w%d" i) in
          let wp = Qelim.Linexpr.var (Printf.sprintf "wp%d" i) in
          if
            Qelim.Qe.implies_atom su.Subsume.formula (Qelim.Atom.le w wp)
            && Qelim.Qe.implies_atom su.Subsume.formula (Qelim.Atom.le wp w)
          then Some i
          else None)
        (List.init (List.length left_side.Qspec.join_cols) Fun.id)
    | _ -> []
  in
  let ci_restrict =
    (* With no equality dimensions, CI falls back to ordering the cache by
       the first binding column when p⪰ constrains its order. *)
    match subsume with
    | Some su
      when pruning_active && config.cache_index && eq_dims = []
           && first_binding_numeric ->
      let w0 = Qelim.Linexpr.var "w0" and wp0 = Qelim.Linexpr.var "wp0" in
      let imp_w_le_wp = Qelim.Qe.implies_atom su.Subsume.formula (Qelim.Atom.le w0 wp0) in
      let imp_wp_le_w = Qelim.Qe.implies_atom su.Subsume.formula (Qelim.Atom.le wp0 w0) in
      if imp_w_le_wp then Some `W_le_wp
      else if imp_wp_le_w then Some `Wp_le_w
      else None
    | _ -> None
  in
  let mk_prune_cache () =
    if eq_dims <> [] then Prune_cache.partitioned eq_dims
    else
      match ci_restrict with
      | Some _ ->
        Prune_cache.sorted ~key_of:(fun row ->
            if Array.length row = 0 then 0. else key_to_float row.(0))
      | None -> Prune_cache.flat ()
  in
  (* [caches] lets a domain consult both the frozen shared cache and its
     chunk-local one. *)
  let prune ~test ~caches b =
    let b0 = if Array.length b = 0 then 0. else key_to_float b.(0) in
    (* monotone: prune when some cached w' subsumes b; anti-monotone: when
       b subsumes some cached w'. *)
    if Monotone.is_monotone cls then
      let restrict =
        match ci_restrict with
        | Some `W_le_wp -> Prune_cache.Le b0  (* cached key <= b0 *)
        | Some `Wp_le_w -> Prune_cache.Ge b0
        | None -> Prune_cache.All
      in
      List.exists
        (fun cache ->
          Prune_cache.exists cache ~probe:b ~restrict (fun cached -> test cached b))
        caches
    else
      let restrict =
        match ci_restrict with
        | Some `W_le_wp -> Prune_cache.Ge b0  (* b is w: b0 <= cached *)
        | Some `Wp_le_w -> Prune_cache.Le b0
        | None -> Prune_cache.All
      in
      List.exists
        (fun cache ->
          Prune_cache.exists cache ~probe:b ~restrict (fun cached -> test b cached))
        caches
  in
  (* Q_R(b): evaluate the inner query for one binding, counting the eval
     against the caller's (chunk-local) stats.  [row_eval] is the row-path
     body, also the degradation target when the vectorized evaluator hits a
     block it cannot handle ([Colprobe.Fallback]). *)
  let row_eval b =
    let parts : Agg.state list Row.Tbl.t = Row.Tbl.create 8 in
    let order = ref [] in
    let consider rrow =
      if theta_ok b rrow then begin
        let v = Row.project rrow gr_idx in
        let states =
          match Row.Tbl.find_opt parts v with
          | Some s -> s
          | None ->
            let s = List.map (fun c -> c.Agg.fresh ()) compiled in
            Row.Tbl.add parts v s;
            order := v :: !order;
            s
        in
        List.iter2 (fun c st -> c.Agg.step st rrow) compiled states
      end
    in
    (match inner_hash, inner_index with
     | Some (idx, key_of), _ -> List.iter consider (Index.Hash.probe idx (key_of b))
     | None, Some (idx, bound) ->
       let lo, hi = bound b in
       Index.Sorted.iter_range idx ~lo ~hi consider
     | None, None -> Relation.iter consider r_rel);
    List.rev_map
      (fun v ->
        let states = Row.Tbl.find parts v in
        let finals = Array.of_list (List.map2 (fun c st -> c.Agg.final st) compiled states) in
        { v; states; finals })
      !order
  in
  let eval_inner st b =
    st.inner_evals <- st.inner_evals + 1;
    match colprobe with
    | None -> row_eval b
    | Some cp ->
      (match Colprobe.eval cp b with
       | out ->
         st.vector_evals <- st.vector_evals + 1;
         st.inner_blocks_skipped <-
           st.inner_blocks_skipped + out.Colprobe.blocks_skipped;
         st.inner_blocks_scanned <-
           st.inner_blocks_scanned + out.Colprobe.blocks_scanned;
         List.map
           (fun (v, states) ->
             let finals =
               Array.of_list (List.map2 (fun c st -> c.Agg.final st) compiled states)
             in
             { v; states; finals })
           out.Colprobe.groups
       | exception Colprobe.Fallback reason ->
         (* A block's physical layout contradicted the build-time check:
            degrade this binding to the row path (a full inner scan — the
            vector path only engages when no hash/index access applies) and
            record why, once per distinct reason.  [Relation.iter] may force
            the inner row view lazily here; racing domains at worst
            duplicate that materialization, never tear it. *)
         st.vector_fallbacks <- st.vector_fallbacks + 1;
         let note = "vector off: " ^ reason in
         if not (List.mem note st.notes) then st.notes <- st.notes @ [ note ];
         row_eval b)
  in
  (* Definition 5.  With G_R = ∅ the condition reduces to ¬Φ(R⋉w), which for
     an empty join set means evaluating Φ on the empty input (COUNT = 0 may
     well satisfy an anti-monotone threshold — such a binding is promising).
     With G_R ≠ ∅ an empty join set is vacuously unpromising. *)
  let empty_finals =
    (* Computed eagerly: forcing a [lazy] from several domains at once is a
       race, and this array is shared by every chunk. *)
    Array.of_list
      (List.map (fun (c : Agg.compiled) -> c.Agg.final (c.Agg.fresh ())) compiled)
  in
  let unpromising parts =
    match parts with
    | [] -> if gr_idx = [] then not (phi_ok empty_finals) else true
    | _ -> List.for_all (fun p -> not (phi_ok (Array.append p.v p.finals))) parts
  in
  let below_cap len =
    match config.max_cache_rows with None -> true | Some cap -> len < cap
  in
  let fresh_merge states =
    List.map2
      (fun c st ->
        let s = c.Agg.fresh () in
        c.Agg.merge s st;
        s)
      compiled states
  in
  (* Main loop over one chunk of the outer relation.  Probes a frozen
     shared prune/memo cache (when given) plus chunk-local caches; every
     value the closure captures from the surrounding scope is immutable or
     a pure compiled closure, so chunks may run on separate domains.  The
     subsumption test is compiled per chunk because its string-interning
     table is mutable. *)
  let process_chunk ~shared_prune ~shared_memo chunk =
    let st = fresh_stats () in
    let subsume_test =
      match subsume with
      | Some s when pruning_active -> Some (Subsume.compile s)
      | _ -> None
    in
    let local_prune = mk_prune_cache () in
    let local_memo : partition list Row.Tbl.t = Row.Tbl.create 64 in
    let out_rows = ref [] in
    let emit u v finals =
      let lam_row = Array.concat [ u; v; finals ] in
      out_rows :=
        Array.of_list (List.map (fun (f, _) -> f lam_row) out_items) :: !out_rows
    in
    let acc : (Row.t * Row.t * Agg.state list) Row.Tbl.t = Row.Tbl.create 256 in
    let prune_len () =
      Prune_cache.length local_prune
      + match shared_prune with Some c -> Prune_cache.length c | None -> 0
    in
    let memo_len () =
      Row.Tbl.length local_memo
      + match shared_memo with Some m -> Row.Tbl.length m | None -> 0
    in
    let memo_find b =
      match Row.Tbl.find_opt local_memo b with
      | Some parts -> Some parts
      | None ->
        (match shared_memo with Some m -> Row.Tbl.find_opt m b | None -> None)
    in
    let pruned_now b =
      pruning_active
      &&
      match subsume_test with
      | None -> false
      | Some test ->
        let caches =
          match shared_prune with
          | Some c -> [ c; local_prune ]
          | None -> [ local_prune ]
        in
        prune ~test ~caches b
    in
    let handle lrow parts =
      let u = Row.project lrow gl_idx in
      if key_case then
        List.iter
          (fun p -> if phi_ok (Array.append p.v p.finals) then emit u p.v p.finals)
          parts
      else
        List.iter
          (fun p ->
            let key = Row.append u p.v in
            match Row.Tbl.find_opt acc key with
            | None -> Row.Tbl.add acc key (u, p.v, fresh_merge p.states)
            | Some (_, _, states) ->
              List.iter2
                (fun c (dst, src) -> c.Agg.merge dst src)
                compiled
                (List.combine states p.states))
          parts
    in
    if memo_active && config.max_cache_rows = None then begin
      (* Binding-batch dedup: collect the chunk's distinct bindings, resolve
         each exactly once, then replay the rows against an array-indexed
         resolution — repeated bindings skip the per-row memo hashing.
         Resolution runs in first-occurrence order, which is exactly the
         order the per-row loop evaluates fresh bindings in, so cache
         contents, emission order and float merge order are unchanged.
         (With a cache cap the per-row loop below is kept: capped stores
         interleave with repeat rows and batching would change what gets
         cached.) *)
      let nrows = Array.length chunk in
      let bid_of : int Row.Tbl.t = Row.Tbl.create 64 in
      let bidx = Array.make (max 1 nrows) 0 in
      let rev_dbind = ref [] in
      let ndist = ref 0 in
      for i = 0 to nrows - 1 do
        st.outer_rows <- st.outer_rows + 1;
        let b = Row.project chunk.(i) jl_idx in
        match Row.Tbl.find_opt bid_of b with
        | Some id -> bidx.(i) <- id
        | None ->
          let id = !ndist in
          incr ndist;
          Row.Tbl.add bid_of b id;
          rev_dbind := b :: !rev_dbind;
          bidx.(i) <- id
      done;
      let dbind = Array.of_list (List.rev !rev_dbind) in
      let res =
        Array.map
          (fun b ->
            match memo_find b with
            | Some parts -> `Hit parts
            | None ->
              if pruned_now b then `Pruned
              else begin
                let parts = eval_inner st b in
                if pruning_active && unpromising parts then
                  Prune_cache.add local_prune b;
                Row.Tbl.replace local_memo b parts;
                `Fresh parts
              end)
          dbind
      in
      (* A fresh binding's first row is the eval itself; its repeats are
         memo hits, same as the per-row loop would count them. *)
      let seen = Array.make (max 1 !ndist) false in
      for i = 0 to nrows - 1 do
        let id = bidx.(i) in
        match res.(id) with
        | `Pruned -> st.pruned <- st.pruned + 1
        | `Hit parts ->
          st.memo_hits <- st.memo_hits + 1;
          handle chunk.(i) parts
        | `Fresh parts ->
          if seen.(id) then st.memo_hits <- st.memo_hits + 1
          else seen.(id) <- true;
          handle chunk.(i) parts
      done
    end
    else
      Array.iter
        (fun lrow ->
          st.outer_rows <- st.outer_rows + 1;
          let b = Row.project lrow jl_idx in
          let result =
            match (if memo_active then memo_find b else None) with
            | Some parts ->
              st.memo_hits <- st.memo_hits + 1;
              Some parts
            | None ->
              if pruned_now b then begin
                st.pruned <- st.pruned + 1;
                None
              end
              else begin
                let parts = eval_inner st b in
                if pruning_active && unpromising parts && below_cap (prune_len ())
                then Prune_cache.add local_prune b;
                if memo_active && below_cap (memo_len ()) then
                  Row.Tbl.replace local_memo b parts;
                Some parts
              end
          in
          match result with None -> () | Some parts -> handle lrow parts)
        chunk;
    {
      c_rows = List.rev !out_rows;
      c_acc = acc;
      c_prune = local_prune;
      c_memo = local_memo;
      c_stats = st;
    }
  in
  (* The probe loop proper: everything from the first binding probe to the
     assembled result, as one timed child span (the side materializations
     above have their own spans, so this span's self time is the loop). *)
  let loop_span = Option.map (fun p -> Obs.Span.enter ~parent:p "NLJP probe loop") span in
  let n = Relation.cardinality l_rel in
  let workers = max 1 config.workers in
  (* Cross-query shared tier: when the caller owns a [shared_cache] for this
     operator, seed the wave-shared prune/memo caches from it and persist
     the merged caches back, under the same §7 discipline that makes the
     wave merge safe — dropping or duplicating entries only costs pruning
     and memo opportunity, never correctness.  The owner must reset the
     tier on catalog mutation (cached entries describe the data they were
     computed from) and must not overlap executions of one operator: tier
     caches are read without locks during waves and mutated at boundaries. *)
  let tier =
    match shared with
    | None -> None
    | Some sc ->
      let p =
        match sc.sc_prune with
        | Some p -> p
        | None ->
          let p = mk_prune_cache () in
          sc.sc_prune <- Some p;
          p
      in
      let m =
        match sc.sc_memo with
        | Some m -> m
        | None ->
          let m : partition list Row.Tbl.t = Row.Tbl.create 1024 in
          sc.sc_memo <- Some m;
          m
      in
      if Prune_cache.length p > 0 || Row.Tbl.length m > 0 then
        stats.notes <-
          stats.notes
          @ [ Printf.sprintf "shared cache tier seeded: prune=%d memo=%d"
                (Prune_cache.length p) (Row.Tbl.length m) ];
      Some (p, m)
  in
  let chunk_results, final_prune, final_memo =
    if workers = 1 || n < workers * 32 then begin
      (* Sequential: one chunk; with a tier, it plays the frozen shared
         cache and absorbs the chunk-local caches afterwards. *)
      stats.waves <- stats.waves + 1;
      let shared_prune = Option.map fst tier in
      let shared_memo = Option.map snd tier in
      let r = process_chunk ~shared_prune ~shared_memo (Relation.rows l_rel) in
      match tier with
      | None -> ([ r ], r.c_prune, r.c_memo)
      | Some (tp, tm) ->
        Prune_cache.iter r.c_prune (fun b ->
            if below_cap (Prune_cache.length tp) then Prune_cache.add tp b);
        Row.Tbl.iter
          (fun b parts ->
            if (not (Row.Tbl.mem tm b)) && below_cap (Row.Tbl.length tm) then
              Row.Tbl.add tm b parts)
          r.c_memo;
        ([ r ], tp, tm)
    end
    else begin
      (* Process the outer side in waves of [workers] chunks.  During a
         wave the shared caches are frozen — domains only read them, so no
         locks are needed; at each wave boundary the domains' local caches
         are merged into the shared ones here, on the spawning domain.  An
         entry dropped by the cap (or duplicated because two domains found
         the same binding unpromising) only costs pruning opportunities,
         never correctness — §7's cache-bound argument. *)
      let shared_prune =
        match tier with Some (p, _) -> p | None -> mk_prune_cache ()
      in
      let shared_memo : partition list Row.Tbl.t =
        match tier with Some (_, m) -> m | None -> Row.Tbl.create 1024
      in
      (* Wave slices of the outer side.  A columnar outer is consumed block
         by block ([workers] blocks per wave) without ever materializing
         the whole row array; a row outer is sliced as before. *)
      let slices : Row.t array Seq.t =
        match Relation.layout l_rel, Relation.cstore_opt l_rel with
        | `Column, Some cs ->
          let nb = Column.Cstore.nblocks cs in
          let rec from bi () =
            if bi >= nb then Seq.Nil
            else begin
              let hi = min nb (bi + workers) in
              let parts =
                List.init (hi - bi) (fun k ->
                    Column.Cstore.block_rows cs (Column.Cstore.block cs (bi + k)))
              in
              Seq.Cons (Array.concat parts, from hi)
            end
          in
          from 0
        | _ ->
          let rows = Relation.rows l_rel in
          let wave = workers * 256 in
          let rec from pos () =
            if pos >= n then Seq.Nil
            else
              let len = min wave (n - pos) in
              Seq.Cons (Array.sub rows pos len, from (pos + len))
          in
          from 0
      in
      let results = ref [] in
      Seq.iter
        (fun slice ->
        stats.waves <- stats.waves + 1;
        let rs =
          Parallel.run_chunks ~workers slice
            (process_chunk ~shared_prune:(Some shared_prune)
               ~shared_memo:(Some shared_memo))
        in
        List.iter
          (fun r ->
            Prune_cache.iter r.c_prune (fun b ->
                if below_cap (Prune_cache.length shared_prune) then
                  Prune_cache.add shared_prune b);
            Row.Tbl.iter
              (fun b parts ->
                if
                  (not (Row.Tbl.mem shared_memo b))
                  && below_cap (Row.Tbl.length shared_memo)
                then Row.Tbl.add shared_memo b parts)
              r.c_memo)
          rs;
          (* Prepend and reverse once at the end: appending per wave would
             rescan the accumulated list every wave (quadratic in waves). *)
          results := List.rev_append rs !results)
        slices;
      (List.rev !results, shared_prune, shared_memo)
    end
  in
  (* Combine chunk outputs in chunk order. *)
  let out_rows = ref [] in
  List.iter
    (fun r -> List.iter (fun row -> out_rows := row :: !out_rows) r.c_rows)
    chunk_results;
  (* Q_P for the non-key case: merge the per-chunk partial states, then
     evaluate Φ and Λ on the combined groups. *)
  (if not key_case then
     match chunk_results with
     | [] -> ()
     | first :: rest ->
       let acc = first.c_acc in
       List.iter
         (fun r ->
           Row.Tbl.iter
             (fun key (u, v, states) ->
               match Row.Tbl.find_opt acc key with
               | None -> Row.Tbl.add acc key (u, v, states)
               | Some (_, _, dst) ->
                 List.iter2
                   (fun c (d, s) -> c.Agg.merge d s)
                   compiled (List.combine dst states))
             r.c_acc)
         rest;
       let emit u v finals =
         let lam_row = Array.concat [ u; v; finals ] in
         out_rows :=
           Array.of_list (List.map (fun (f, _) -> f lam_row) out_items)
           :: !out_rows
       in
       Row.Tbl.iter
         (fun _ (u, v, states) ->
           let finals =
             Array.of_list (List.map2 (fun c st -> c.Agg.final st) compiled states)
           in
           if phi_ok (Array.append v finals) then emit u v finals)
         acc);
  (* Aggregate per-chunk stats into the operator's stats record. *)
  List.iter
    (fun r ->
      let s = r.c_stats in
      stats.outer_rows <- stats.outer_rows + s.outer_rows;
      stats.inner_evals <- stats.inner_evals + s.inner_evals;
      stats.pruned <- stats.pruned + s.pruned;
      stats.memo_hits <- stats.memo_hits + s.memo_hits;
      stats.vector_evals <- stats.vector_evals + s.vector_evals;
      stats.vector_fallbacks <- stats.vector_fallbacks + s.vector_fallbacks;
      stats.inner_blocks_skipped <-
        stats.inner_blocks_skipped + s.inner_blocks_skipped;
      stats.inner_blocks_scanned <-
        stats.inner_blocks_scanned + s.inner_blocks_scanned;
      List.iter
        (fun note ->
          if not (List.mem note stats.notes) then
            stats.notes <- stats.notes @ [ note ])
        s.notes)
    chunk_results;
  stats.prune_cache_rows <- Prune_cache.length final_prune;
  stats.memo_cache_rows <- Row.Tbl.length final_memo;
  let memo_bytes =
    Row.Tbl.fold
      (fun b parts acc ->
        acc + row_bytes b
        + List.fold_left
            (fun acc p ->
              acc + row_bytes p.v
              + List.fold_left (fun a st -> a + Agg.state_bytes st) 0 p.states
              + (8 * Array.length p.finals))
            0 parts)
      final_memo 0
  in
  stats.cache_bytes <- Prune_cache.bytes final_prune + memo_bytes;
  (* Publish this execution's totals into the metrics registry.  Cache and
     wave figures are end-of-run values, not per-chunk sums, so they are
     added here rather than in the chunk loop above. *)
  let this_run get = List.fold_left (fun a r -> a + get r.c_stats) 0 chunk_results in
  Obs.Metrics.add m_outer_rows (this_run (fun s -> s.outer_rows));
  Obs.Metrics.add m_inner_evals (this_run (fun s -> s.inner_evals));
  Obs.Metrics.add m_pruned (this_run (fun s -> s.pruned));
  Obs.Metrics.add m_memo_hits (this_run (fun s -> s.memo_hits));
  Obs.Metrics.add m_vector_evals (this_run (fun s -> s.vector_evals));
  Obs.Metrics.add m_vector_fallbacks (this_run (fun s -> s.vector_fallbacks));
  Obs.Metrics.add m_blocks_skipped (this_run (fun s -> s.inner_blocks_skipped));
  Obs.Metrics.add m_blocks_scanned (this_run (fun s -> s.inner_blocks_scanned));
  Obs.Metrics.add m_prune_cache_rows stats.prune_cache_rows;
  Obs.Metrics.add m_memo_cache_rows stats.memo_cache_rows;
  Obs.Metrics.add m_cache_bytes stats.cache_bytes;
  Obs.Metrics.add m_waves (stats.waves - waves0);
  let result = Relation.of_rows out_schema (List.rev !out_rows) in
  (match loop_span with
   | None -> ()
   | Some ls ->
     let set = Obs.Span.set_counter ls in
     set "outer_rows" (this_run (fun s -> s.outer_rows));
     set "inner_evals" (this_run (fun s -> s.inner_evals));
     set "pruned" (this_run (fun s -> s.pruned));
     set "memo_hits" (this_run (fun s -> s.memo_hits));
     set "vector_evals" (this_run (fun s -> s.vector_evals));
     set "vector_fallbacks" (this_run (fun s -> s.vector_fallbacks));
     set "inner_blocks_skipped" (this_run (fun s -> s.inner_blocks_skipped));
     set "inner_blocks_scanned" (this_run (fun s -> s.inner_blocks_scanned));
     set "waves" (stats.waves - waves0);
     (match est_distinct with Some d -> set "est_distinct_bindings" d | None -> ());
     Obs.Span.finish ~rows_in:n ~rows_out:(Relation.cardinality result) ls);
  (result, stats)

let describe op =
  let spec = op.spec in
  let b = Buffer.create 512 in
  let jl = String.concat ", " (List.map Qspec.col_name spec.Qspec.left.Qspec.join_cols) in
  Buffer.add_string b
    (Printf.sprintf "-- Q_B (binding query; binding = (%s)):\n%s;\n" jl
       (Pretty.query (Qspec.side_query spec.Qspec.left)));
  Buffer.add_string b
    (Printf.sprintf "-- Q_R(b) (inner query over):\n%s;\n-- with Θ(b, ·) = %s\n"
       (Pretty.query (Qspec.side_query spec.Qspec.right))
       (Pretty.pred (Ast.conj spec.Qspec.theta)));
  (match op.subsume with
   | Some s ->
     Buffer.add_string b
       (Printf.sprintf "-- Q_C(b') (pruning): %s\n" (Subsume.to_string s))
   | None ->
     Buffer.add_string b
       (Printf.sprintf "-- Q_C: pruning inactive (%s)\n"
          (Option.value op.prune_reason ~default:"unavailable")));
  (match op.memo_reason with
   | None -> Buffer.add_string b "-- memoization: on (cache keyed by binding)\n"
   | Some r -> Buffer.add_string b (Printf.sprintf "-- memoization: off (%s)\n" r));
  Buffer.add_string b
    (Printf.sprintf "-- Q_P: emit groups satisfying %s (%s)\n"
       (Pretty.pred spec.Qspec.having)
       (if op.key_case then "per outer tuple: G_L is a key"
        else "combining algebraic partial aggregates"));
  Buffer.contents b

let subsumption op = op.subsume

(* The operator's cumulative stats record (mutated in place by [execute];
   callers wanting per-execution deltas snapshot it around the call). *)
let op_stats op = op.stats

(* ---- incremental cache refresh after appends (delta maintenance) ----

   After [Catalog.append_rows] the shared cross-query tier can often be kept
   instead of discarded.  The delta rules, per entry (a binding b):

   - the appended table occurs only on the outer side: Q_R is untouched, so
     per-binding cache contents stay exact (new bindings simply miss);
   - it occurs on the inner side: a memo entry stays exact iff no delta row
     can join b — either a binding-only Θ gate already fails for b (Q_R(b)
     was empty and stays empty) or, at every inner occurrence of the table,
     some Θ probe [r_col op f(b)] refutes the delta's column zone map;
   - prune entries additionally survive wholesale when Φ is anti-monotone:
     ¬Φ on a subset implies ¬Φ on every superset, so an unpromising binding
     cannot become promising by appending rows.  Monotone Φ can flip, so
     those entries need the same per-binding refutation as memo entries.

   Probes are necessary conditions of Θ conjuncts, so refuting one against
   the delta's min/max is sound even when Θ has conjuncts outside the probe
   shape.  When p⪰'s build-time numeric judgement of a Θ column is
   contradicted by the delta (a string lands in a column the subsumption
   arithmetic ordered numerically), the operator itself — not just the
   caches — is invalid and the caller must rebuild it. *)

let m_delta_refreshes = Obs.Metrics.counter "nljp.delta_refreshes"
let m_delta_entries_kept = Obs.Metrics.counter "nljp.delta_entries_kept"
let m_delta_entries_dropped = Obs.Metrics.counter "nljp.delta_entries_dropped"

type refresh = {
  rf_prune_kept : int;
  rf_prune_dropped : int;
  rf_memo_kept : int;
  rf_memo_dropped : int;
}

let delta_refresh op shared ~table ~delta =
  let { catalog; spec; cls; _ } = op in
  let norm = String.lowercase_ascii in
  let t_norm = norm table in
  let left_side = spec.Qspec.left and right_side = spec.Qspec.right in
  let occurs (side : Qspec.side) =
    List.exists (fun (tn, _) -> String.equal (norm tn) t_norm) side.Qspec.tables
  in
  if not (occurs left_side || occurs right_side) then `Kept
  else if
    List.exists
      (fun (c, was) -> was && not (col_numeric catalog spec c))
      op.numeric_theta
  then begin
    shared.sc_prune <- None;
    shared.sc_memo <- None;
    `Reprepare "a Θ column lost its numeric domain in the appended rows"
  end
  else if not (occurs right_side) then `Kept
  else begin
    let drows = Relation.rows delta in
    if Array.length drows = 0 then `Kept
    else begin
      Obs.Metrics.add m_delta_refreshes 1;
      let l_schema = left_side.Qspec.schema
      and r_schema = right_side.Qspec.schema in
      let jl_idx =
        List.map (fun c -> Schema.index_of_col l_schema c) left_side.Qspec.join_cols
      in
      let binding_schema = Schema.project l_schema jl_idx in
      let theta =
        Expr.canonicalize
          (Schema.append binding_schema r_schema)
          (Qspec.theta_expr catalog spec)
      in
      let probes, gates, _exact =
        Compile.param_probes ~binding:binding_schema ~inner:r_schema theta
      in
      (* Column span of each inner FROM item inside r_schema ([side_schema]
         appends the per-alias requalified base schemas in FROM order). *)
      let spans, total =
        List.fold_left
          (fun (acc, off) (tn, _alias) ->
            let ar =
              Schema.arity (Catalog.find catalog tn).Catalog.rel.Relation.schema
            in
            ((tn, off, ar) :: acc, off + ar))
          ([], 0) right_side.Qspec.tables
      in
      let occ_probes =
        if total <> Schema.arity r_schema then [ [] ]
          (* layout mismatch: treat every entry as joinable by the delta *)
        else
          List.filter_map
            (fun (tn, off, ar) ->
              if String.equal (norm tn) t_norm then
                Some
                  (List.filter_map
                     (fun p ->
                       if p.Compile.pp_col >= off && p.Compile.pp_col < off + ar
                       then Some (p.Compile.pp_col - off, p)
                       else None)
                     probes)
              else None)
            (List.rev spans)
      in
      (* Per-column zone map over the delta rows, built lazily: refuting a
         probe against it proves no delta row satisfies that conjunct. *)
      let zm_cache : (int, Column.Zmap.t) Hashtbl.t = Hashtbl.create 8 in
      let delta_zmap ci =
        match Hashtbl.find_opt zm_cache ci with
        | Some z -> z
        | None ->
          let z =
            Array.fold_left
              (fun z r -> Column.Zmap.observe z r.(ci))
              Column.Zmap.empty drows
          in
          Hashtbl.add zm_cache ci z;
          z
      in
      let refuted b =
        List.exists (fun g -> not (g b)) gates
        || List.for_all
             (fun ps ->
               List.exists
                 (fun (ci, p) ->
                   match p.Compile.pp_val b with
                   | v ->
                     not
                       (Column.Zmap.may_match (delta_zmap ci)
                          (Compile.zmap_cmp p.Compile.pp_op) v)
                   | exception _ -> false)
                 ps)
             occ_probes
      in
      let prune_kept, prune_dropped =
        match shared.sc_prune with
        | None -> (0, 0)
        | Some pc ->
          if Monotone.is_anti_monotone cls then (Prune_cache.length pc, 0)
          else
            let dropped = Prune_cache.filter_in_place pc refuted in
            (Prune_cache.length pc, dropped)
      in
      let memo_kept, memo_dropped =
        match shared.sc_memo with
        | None -> (0, 0)
        | Some m ->
          let dead = ref [] in
          Row.Tbl.iter (fun b _ -> if not (refuted b) then dead := b :: !dead) m;
          List.iter (Row.Tbl.remove m) !dead;
          (Row.Tbl.length m, List.length !dead)
      in
      Obs.Metrics.add m_delta_entries_kept (prune_kept + memo_kept);
      Obs.Metrics.add m_delta_entries_dropped (prune_dropped + memo_dropped);
      op.stats.notes <-
        op.stats.notes
        @ [ Printf.sprintf
              "delta refresh (%s, +%d rows): prune kept %d dropped %d, memo \
               kept %d dropped %d"
              t_norm (Array.length drows) prune_kept prune_dropped memo_kept
              memo_dropped ];
      `Refreshed
        {
          rf_prune_kept = prune_kept;
          rf_prune_dropped = prune_dropped;
          rf_memo_kept = memo_kept;
          rf_memo_dropped = memo_dropped;
        }
    end
  end

(* The component queries NLJP actually materializes (a-priori overrides
   applied), so EXPLAIN can estimate their cardinalities. *)
let side_queries op =
  ( Qspec.side_query ~overrides:op.overrides op.spec.Qspec.left,
    Qspec.side_query ~overrides:op.overrides op.spec.Qspec.right )

(* ---- static access-path planning (EXPLAIN) ----

   Mirror of [execute]'s inner access decision — hash probe (equality Θ
   conjunct) ≻ vectorized column probe ≻ sorted inner index ≻ row scan —
   computed from the side schemas and catalog layout facts alone, without
   materializing either side query.  Where the runtime decision depends on
   materialized data (a filtered scan of a columnar table currently yields
   a row relation, an override replaces the inner FROM item), the mirror
   predicts the degradation and says why in its notes. *)

type access =
  | A_hash of int
  | A_vector
  | A_index of string
  | A_scan

let access_to_string = function
  | A_hash n ->
    Printf.sprintf "hash probe (%d equality conjunct%s)" n
      (if n = 1 then "" else "s")
  | A_vector -> "vectorized column probe (zone-map skipping)"
  | A_index c -> Printf.sprintf "sorted inner index on %s" c
  | A_scan -> "row scan"

let plan_access op =
  let { catalog; spec; overrides; config; _ } = op in
  let notes = ref [] in
  let note n = if not (List.mem n !notes) then notes := !notes @ [ n ] in
  try
    let left_side = spec.Qspec.left and right_side = spec.Qspec.right in
    let l_schema = left_side.Qspec.schema
    and r_schema = right_side.Qspec.schema in
    let jl_idx =
      List.map (fun c -> Schema.index_of_col l_schema c) left_side.Qspec.join_cols
    in
    let binding_schema = Schema.project l_schema jl_idx in
    let theta =
      Expr.canonicalize
        (Schema.append binding_schema r_schema)
        (Qspec.theta_expr catalog spec)
    in
    let bare_r = function
      | Expr.Col c ->
        (match Schema.index_of_col r_schema c with
         | i -> Some i
         | exception Schema.Unknown_column _ -> None
         | exception Schema.Ambiguous_column _ -> None)
      | _ -> None
    in
    let binding_only e =
      List.for_all
        (fun c ->
          match Schema.index_of_col binding_schema c with
          | _ -> true
          | exception Schema.Unknown_column _ -> false
          | exception Schema.Ambiguous_column _ -> false)
        (Expr.columns e)
    in
    let conjs = Expr.conjuncts theta in
    let eq_probes =
      List.filter_map
        (fun conj ->
          match conj with
          | Expr.Cmp (Expr.Eq, a, b) ->
            (match bare_r a, bare_r b with
             | Some ridx, _ when binding_only b -> Some ridx
             | _, Some ridx when binding_only a -> Some ridx
             | _ -> None)
          | _ -> None)
        conjs
    in
    if eq_probes <> [] then (A_hash (List.length eq_probes), !notes)
    else begin
      let inner_columnar =
        match right_side.Qspec.tables with
        | [ (tname, alias) ] ->
          if List.mem_assoc alias overrides then begin
            note "vector off: inner FROM item is overridden (a-priori reducer)";
            false
          end
          else if right_side.Qspec.local <> [] then begin
            note
              "vector off: inner-side local predicates materialize a row relation";
            false
          end
          else (
            match Relation.layout (Catalog.find catalog tname).Catalog.rel with
            | `Column -> true
            | _ ->
              note "vector off: inner side is not column-primary";
              false)
        | _ ->
          note "vector off: inner side joins several tables";
          false
      in
      let vector_ok =
        if not config.vector then begin
          note "vector off: disabled by configuration";
          false
        end
        else if not inner_columnar then false
        else begin
          let _, _, exact =
            Compile.param_probes ~binding:binding_schema ~inner:r_schema theta
          in
          if not exact then begin
            note "vector off: Θ has conjuncts outside the r_col-vs-binding shape";
            false
          end
          else
            List.for_all
              (fun f ->
                match (f : Agg.func) with
                | Agg.Count_star -> true
                | Agg.Count_distinct _ ->
                  note "vector off: COUNT(DISTINCT) has no bounded kernel state";
                  false
                | Agg.Count e | Agg.Sum e | Agg.Min e | Agg.Max e | Agg.Avg e ->
                  (match e with
                   | Expr.Col c ->
                     (match f with
                      | Agg.Count _ -> true
                      | _ ->
                        if col_numeric catalog spec c then true
                        else begin
                          note
                            ("vector off: " ^ Agg.to_string f
                           ^ ": input column is not numeric");
                          false
                        end)
                   | _ ->
                     note
                       ("vector off: " ^ Agg.to_string f
                      ^ " ranges over a computed expression");
                     false))
              (List.map Binder.agg_func op.all_aggs)
        end
      in
      if vector_ok then (A_vector, !notes)
      else if not config.inner_index then (A_scan, !notes)
      else
        let idx =
          List.find_map
            (fun conj ->
              match conj with
              | Expr.Cmp (Expr.Eq, _, _) -> None
              | Expr.Cmp (_, a, b) ->
                (match bare_r a, bare_r b with
                 | Some ridx, _ when binding_only b -> Some ridx
                 | _, Some ridx when binding_only a -> Some ridx
                 | _ -> None)
              | _ -> None)
            conjs
        in
        (match idx with
         | Some ridx -> (A_index (Qspec.col_name (Schema.nth r_schema ridx)), !notes)
         | None -> (A_scan, !notes))
    end
  with e ->
    (A_scan, !notes @ [ "access-path planning degraded: " ^ Printexc.to_string e ])
