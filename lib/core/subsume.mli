(** Automatic subsumption-test generation (§5.2, Appendix B).

    [w ⪰ w'] (Definition 4) holds for every instance exactly when
    ∀w_r (Θ(w', w_r) ⇒ Θ(w, w_r)).  [derive] eliminates the w_r variables
    with the UE/DE/EE procedure, yielding a quantifier-free predicate
    p⪰(w, w') over the two bindings alone, then compiles it to a closure
    over binding rows.

    String- and bool-valued join attributes are supported by interning
    values into distinct numeric codes; this preserves semantics only if
    such attributes occur in equality (or the ≠ pattern produced by its
    negation) — [derive] refuses when a non-equality Θ conjunct touches a
    column marked non-numeric. *)

type t = {
  formula : Qelim.Formula.t;  (** over variables w0…, wp0… *)
  jl : Relalg.Schema.col list;  (** binding columns, fixing variable order *)
}

(** [derive ~theta ~jl ~jr ~numeric]: [theta] is the join condition over the
    concatenated L++R schema; [numeric col] says whether the column is
    numeric (non-numeric columns may only appear in equality conjuncts).
    [None] when Θ is not translatable to linear arithmetic. *)
val derive :
  theta:Relalg.Expr.t ->
  jl:Relalg.Schema.col list ->
  jr:Relalg.Schema.col list ->
  numeric:(Relalg.Schema.col -> bool) ->
  t option

(** [compile t] returns a test [p w w'] deciding p⪰(w, w') — "w subsumes
    w'" — on binding rows laid out in [t.jl] order.  Interning state for
    non-numeric values is shared inside the returned closure. *)
val compile : t -> Relalg.Row.t -> Relalg.Row.t -> bool

val to_string : t -> string

(** Oracle form of Definition 4 for testing: does w subsume w' on this
    instance, i.e. R⋉w ⊇ R⋉w'? *)
val subsumes_instance :
  theta:Relalg.Expr.t ->
  jl_schema:Relalg.Schema.t ->
  r:Relalg.Relation.t ->
  w:Relalg.Row.t ->
  w':Relalg.Row.t ->
  bool
