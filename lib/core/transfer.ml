open Relalg
open Sqlfront

type edge = {
  e_left : string * string;
  e_right : string * string;
}

type spec = {
  t_aliases : (string * string) list;
  t_locals : (string * Ast.pred list) list;
  t_edges : edge list;
  t_est_kept : (string * float) list;
}

type result = {
  r_filters : (string * (string * Column.Bloom.t) list) list;
  r_kept : (string * (int * int)) list;
  r_notes : string list;
}

let m_filters_built = Obs.Metrics.counter "transfer.filters_built"
let filters_built () = Obs.Metrics.read m_filters_built

(* A received filter is keyed (target column, source alias) so a tighter
   filter from a later pass over the same directed edge replaces, never
   stacks with, the earlier one. *)
type inbox = ((string * string) * Column.Bloom.t) list ref

let run ?span catalog spec =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  let base =
    List.filter_map
      (fun (alias, tname) ->
        match Catalog.find_opt catalog tname with
        | Some tbl -> Some (alias, Relation.requalify alias tbl.Catalog.rel)
        | None -> None)
      spec.t_aliases
  in
  (* Local σ compiled once per alias and shared by both passes:
     [Binder.pred_expr] materializes any a-priori IN-subquery at compile
     time, so memoizing here keeps each reducer in [t_locals] to a single
     extra execution for the whole transfer. *)
  let local_cache = Hashtbl.create 8 in
  let local_expr alias =
    match Hashtbl.find_opt local_cache alias with
    | Some e -> e
    | None ->
      let e =
        match List.assoc_opt alias spec.t_locals with
        | None | Some [] -> None
        | Some preds -> Some (Binder.pred_expr catalog (Ast.conj preds))
      in
      Hashtbl.add local_cache alias e;
      e
  in
  let inboxes : (string * inbox) list =
    List.map (fun (alias, _) -> (alias, ref [])) base
  in
  let inbox_of alias = List.assoc alias inboxes in
  let filters_of alias =
    List.map (fun ((col, _), bl) -> (col, bl)) !(inbox_of alias)
  in
  let receive ~target ~col ~source bl =
    let box = inbox_of target in
    box := ((col, source), bl) :: List.remove_assoc (col, source) !box
  in
  (* Directed edges out of [alias] toward aliases later in [order]. *)
  let outgoing order alias =
    let pos a = Option.value ~default:(-1) (List.assoc_opt a order) in
    let p = pos alias in
    List.filter_map
      (fun e ->
        let (la, lc) = e.e_left and (ra, rc) = e.e_right in
        if la = alias && pos ra > p then Some (lc, ra, rc)
        else if ra = alias && pos la > p then Some (rc, la, lc)
        else None)
      spec.t_edges
  in
  let kept : (string * (int * int)) list ref = ref [] in
  let pass pname parent aliases =
    let order = List.mapi (fun i (a, _) -> (a, i)) aliases in
    let body sp =
      List.iter
        (fun (alias, rel) ->
          let filters = filters_of alias in
          let pred = local_expr alias in
          let survivors =
            if filters = [] && pred = None then rel
            else Colscan.select_bloom ~filters pred rel
          in
          let n_kept = Relation.cardinality survivors in
          let n_total = Relation.cardinality rel in
          kept := (alias, (n_kept, n_total)) :: List.remove_assoc alias !kept;
          (match sp with
           | Some s ->
             Obs.Span.note s
               (Printf.sprintf "%s %s: kept %d/%d (%d filters in)" pname alias
                  n_kept n_total (List.length filters))
           | None -> ());
          List.iter
            (fun (mycol, target, tcol) ->
              match Schema.index_of survivors.Relation.schema mycol with
              | exception Schema.Unknown_column _ -> ()
              | exception Schema.Ambiguous_column _ -> ()
              | i ->
                let bl = Column.Bloom.create ~expected:(max 1 n_kept) () in
                Relation.iter (fun row -> Column.Bloom.add bl row.(i)) survivors;
                Obs.Metrics.incr m_filters_built;
                note "%s: %s.%s -> %s.%s (%d keys, %d bits)" pname alias mycol
                  target tcol (Column.Bloom.count bl) (Column.Bloom.nbits bl);
                receive ~target ~col:tcol ~source:alias bl)
            (outgoing order alias))
        aliases
    in
    match parent with
    | None -> body None
    | Some p -> Obs.Span.with_span ~parent:p pname (fun s -> body (Some s))
  in
  pass "forward" span base;
  pass "backward" span (List.rev base);
  (* The backward pass scans each alias under its final filter set, so
     [r_kept] previews exactly what NLJP's registered-filter scans keep. *)
  List.iter
    (fun (alias, (k, t)) ->
      let actual = if t = 0 then 1. else float_of_int k /. float_of_int t in
      match List.assoc_opt alias spec.t_est_kept with
      | Some est ->
        note "reduction %s: est %.0f%% kept, actual %d/%d (%.0f%%)" alias
          (100. *. est) k t (100. *. actual)
      | None ->
        note "reduction %s: actual %d/%d (%.0f%%)" alias k t (100. *. actual))
    (List.rev !kept);
  {
    r_filters =
      List.filter_map
        (fun (alias, _) ->
          match filters_of alias with [] -> None | fs -> Some (alias, fs))
        base;
    r_kept = List.rev !kept;
    r_notes = List.rev !notes;
  }
