open Sqlfront
open Relalg

let applicable catalog (spec : Qspec.t) =
  if not (Qspec.pred_applicable spec.Qspec.right spec.Qspec.having) then
    Error "HAVING condition is not applicable to the inner side"
  else if not (Qspec.lambda_applicable spec) then
    Error "SELECT aggregates must range over the inner side only"
  else begin
    ignore catalog;
    let algebraic_ok =
      Qspec.outer_group_is_key spec
      || List.for_all
           (fun a -> Agg.is_algebraic (Binder.agg_func a))
           (Qspec.all_aggs spec)
    in
    if algebraic_ok then Ok ()
    else Error "non-algebraic aggregate with G_L not a key of the outer side"
  end

let mj i = Printf.sprintf "mj%d" i
let mg i = Printf.sprintf "mg%d" i
let ma i = Printf.sprintf "ma%d" i

(* Partial aggregates (f^i) and the combining expression over LJR columns
   (Λ^a(f^o(...)) inlined), per Appendix C. *)
let decompose_ast a ~name =
  let ljr_col n = Ast.S_col (Some "ljr", n) in
  match a with
  | Ast.A_count_star ->
    ([ (name ^ "c", Ast.A_count_star) ], Ast.S_agg (Ast.A_sum (ljr_col (name ^ "c"))))
  | Ast.A_count e ->
    ([ (name ^ "c", Ast.A_count e) ], Ast.S_agg (Ast.A_sum (ljr_col (name ^ "c"))))
  | Ast.A_sum e ->
    ([ (name ^ "s", Ast.A_sum e) ], Ast.S_agg (Ast.A_sum (ljr_col (name ^ "s"))))
  | Ast.A_min e ->
    ([ (name ^ "m", Ast.A_min e) ], Ast.S_agg (Ast.A_min (ljr_col (name ^ "m"))))
  | Ast.A_max e ->
    ([ (name ^ "m", Ast.A_max e) ], Ast.S_agg (Ast.A_max (ljr_col (name ^ "m"))))
  | Ast.A_avg e ->
    let final =
      Ast.S_binop
        ( Expr.Div,
          Ast.S_binop
            ( Expr.Mul,
              Ast.S_agg (Ast.A_sum (ljr_col (name ^ "s"))),
              Ast.S_const (Value.Float 1.0) ),
          Ast.S_agg (Ast.A_sum (ljr_col (name ^ "n"))) )
    in
    ([ (name ^ "s", Ast.A_sum e); (name ^ "n", Ast.A_count e) ], final)
  | Ast.A_count_distinct _ ->
    invalid_arg "Memo_rewrite: COUNT(DISTINCT) cannot be decomposed"

let rewrite catalog (spec : Qspec.t) =
  (match applicable catalog spec with
   | Ok () -> ()
   | Error e -> invalid_arg ("Memo_rewrite: " ^ e));
  let left = spec.Qspec.left and right = spec.Qspec.right in
  let key_case = Qspec.outer_group_is_key spec in
  let jl = left.Qspec.join_cols in
  let gr = right.Qspec.group_cols in
  let aggs = Qspec.all_aggs spec in
  (* Retarget a column reference that lives on the left side to ljt.mjK. *)
  let left_col_to_ljt (q, n) =
    match Schema.index_of left.Qspec.schema ?q n with
    | exception Schema.Unknown_column _ -> Ast.S_col (q, n)
    | exception Schema.Ambiguous_column _ -> Ast.S_col (q, n)
    | idx ->
      let canon = Schema.nth left.Qspec.schema idx in
      let rec find i = function
        | [] -> invalid_arg "Memo_rewrite: Θ column outside J_L"
        | c :: rest -> if c = canon then i else find (i + 1) rest
      in
      Ast.S_col (Some "ljt", mj (find 0 jl))
  in
  (* Retarget a right-side group column to ljr.mgK. *)
  let right_col_to_ljr (q, n) =
    match Schema.index_of right.Qspec.schema ?q n with
    | exception Schema.Unknown_column _ -> Ast.S_col (q, n)
    | exception Schema.Ambiguous_column _ -> Ast.S_col (q, n)
    | idx ->
      let canon = Schema.nth right.Qspec.schema idx in
      let rec find i = function
        | [] -> invalid_arg "Memo_rewrite: inner column outside G_R in Λ/Φ"
        | c :: rest -> if c = canon then i else find (i + 1) rest
      in
      Ast.S_col (Some "ljr", mg (find 0 gr))
  in
  (* LJT: the distinct bindings. *)
  let ljt =
    Ast.simple_select ~distinct:true
      ?where:(match left.Qspec.local with [] -> None | ps -> Some (Ast.conj ps))
      (List.mapi
         (fun i c -> Ast.Sel_expr (Ast.S_col (c.Schema.qualifier, c.Schema.name), Some (mj i)))
         jl)
      (List.map (fun (n, a) -> Ast.T_table (n, Some a)) left.Qspec.tables)
  in
  (* LJR: join the bindings with the inner side and aggregate. *)
  let theta' =
    List.map (Ast.map_cols_pred left_col_to_ljt) spec.Qspec.theta
  in
  let ljr_where = theta' @ right.Qspec.local in
  let ljr_group =
    List.mapi (fun i _ -> (Some "ljt", mj i)) jl
    @ List.map (fun c -> (c.Schema.qualifier, c.Schema.name)) gr
  in
  let ljr_key_select =
    List.mapi (fun i _ -> Ast.Sel_expr (Ast.S_col (Some "ljt", mj i), Some (mj i))) jl
    @ List.mapi
        (fun i c ->
          Ast.Sel_expr (Ast.S_col (c.Schema.qualifier, c.Schema.name), Some (mg i)))
        gr
  in
  let ljr_from =
    Ast.T_subquery (ljt, "ljt")
    :: List.map (fun (n, a) -> Ast.T_table (n, Some a)) right.Qspec.tables
  in
  let partials, combiners =
    if key_case then
      ( List.mapi (fun i a -> [ (ma i, a) ]) aggs,
        List.mapi
          (fun i _ -> Ast.S_agg (Ast.A_max (Ast.S_col (Some "ljr", ma i))))
          aggs )
    else
      List.split (List.mapi (fun i a -> decompose_ast a ~name:(ma i)) aggs)
  in
  let ljr =
    Ast.simple_select
      ~where:(Ast.conj ljr_where)
      ~group_by:ljr_group
      ?having:(if key_case then Some spec.Qspec.having else None)
      (ljr_key_select
      @ List.concat_map
          (fun ps -> List.map (fun (n, a) -> Ast.Sel_expr (Ast.S_agg a, Some n)) ps)
          partials)
      ljr_from
  in
  (* Final query: outer side joined back to LJR on the binding. *)
  let combine_agg a =
    let rec find i = function
      | [] -> invalid_arg "Memo_rewrite: uncollected aggregate"
      | a' :: rest -> if Ast.equal_agg a a' then i else find (i + 1) rest
    in
    List.nth combiners (find 0 aggs)
  in
  let retarget_scalar s =
    Ast.map_cols_scalar right_col_to_ljr (Aggmap.scalar combine_agg s)
  in
  let retarget_pred p =
    Ast.map_cols_pred right_col_to_ljr (Aggmap.pred combine_agg p)
  in
  let final_select =
    List.map
      (function
        | Ast.Sel_star -> invalid_arg "Memo_rewrite: SELECT *"
        | Ast.Sel_expr (s, alias) -> Ast.Sel_expr (retarget_scalar s, alias))
      spec.Qspec.select
  in
  let final_where =
    left.Qspec.local
    @ List.mapi
        (fun i c ->
          Ast.P_cmp
            ( Expr.Eq,
              Ast.S_col (c.Schema.qualifier, c.Schema.name),
              Ast.S_col (Some "ljr", mj i) ))
        jl
  in
  let final_group =
    List.filter_map
      (fun (q, n) ->
        match Schema.index_of left.Qspec.schema ?q n with
        | _ -> Some (q, n)
        | exception Schema.Unknown_column _ ->
          (* right-side group column: use its LJR alias *)
          (match Schema.index_of right.Qspec.schema ?q n with
           | idx ->
             let canon = Schema.nth right.Qspec.schema idx in
             let rec find i = function
               | [] -> None
               | c :: rest -> if c = canon then Some i else find (i + 1) rest
             in
             Option.map (fun i -> (Some "ljr", mg i)) (find 0 gr)
           | exception Schema.Unknown_column _ -> Some (q, n))
        | exception Schema.Ambiguous_column _ -> Some (q, n))
      spec.Qspec.group_by
  in
  Ast.simple_select
    ~where:(Ast.conj final_where)
    ~group_by:final_group
    ?having:(if key_case then None else Some (retarget_pred spec.Qspec.having))
    ~order_by:spec.Qspec.query.Ast.order_by
    ?limit:spec.Qspec.query.Ast.limit final_select
    (List.map (fun (n, a) -> Ast.T_table (n, Some a)) left.Qspec.tables
    @ [ Ast.T_subquery (ljr, "ljr") ])
