(** Generalized a-priori (§4): push the HAVING condition Φ down to one side
    of the join as a {e reducer} subquery, shrinking the join input.

    Safety (Definition 2) is established by Theorem 2's schema-based checks:
    - Φ applicable to the target side, and
    - Φ monotone and [G_R ∪ J_R=] a superkey of the {e other} side, or
    - Φ anti-monotone and [G_L → J_L] on the target side.

    Theorem 1's instance-based conditions (Definition 3) are also provided,
    for tests and for the tightness examples (Example 5). *)

type target = [ `Left | `Right ]

val target_side : Qspec.t -> target -> Qspec.side
val other_side : Qspec.t -> target -> Qspec.side

(** Monotonicity of the query's Φ, with non-negativity facts from the
    catalog. *)
val classification : Relalg.Catalog.t -> Qspec.t -> Monotone.t

(** Theorem 2 verdict; [Error reason] explains the failed check. *)
val safe : Relalg.Catalog.t -> Qspec.t -> target -> (unit, string) result

(** The reducer query Q_T: [SELECT G FROM side GROUP BY G HAVING Φ]. *)
val reducer : Qspec.t -> target -> Sqlfront.Ast.query

(** A reducer is vacuous when it provably keeps every tuple — e.g. a
    count threshold [COUNT <= c] over a side whose groups are singletons
    (this is why the paper reports a-priori as non-applicable to the skyband
    queries).  Sound to apply, pointless to. *)
val vacuous : Qspec.t -> target -> bool

(** Per-alias replacements: each table of the target side holding at least
    one reducer output column (Appendix D's Ť) is wrapped as
    [(SELECT * FROM t WHERE (g…) IN (SELECT g… FROM reducer)) alias]. *)
val replacements : Qspec.t -> target -> (string * Sqlfront.Ast.table_ref) list

(** The rewritten FROM items of the full query. *)
val reduced_from : Qspec.t -> target -> Sqlfront.Ast.table_ref list

(** The fully rewritten query Q' (Definition 2). *)
val apply : Qspec.t -> target -> Sqlfront.Ast.query

(** Instance-based properties of Definition 3 (executed on current data —
    test/diagnostic use). *)
val non_inflationary : Relalg.Catalog.t -> Qspec.t -> target -> bool

val non_deflationary : Relalg.Catalog.t -> Qspec.t -> target -> bool
