(** Two-dimensional objects for the k-skyband query of Listing 2:
    [object(id, x, y)], with the three classic point distributions from the
    skyline literature. *)

type distribution = Independent | Correlated | Anticorrelated

val table_name : string
val register : Relalg.Catalog.t -> n:int -> dist:distribution -> seed:int -> int
