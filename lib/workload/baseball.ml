open Relalg

let table_name = "player_performance"
let unpivoted_name = "perf_kv"

let columns =
  [ "playerid"; "year"; "round"; "teamid"; "b_h"; "b_hr"; "b_2b"; "b_3b"; "b_bb"; "b_sb" ]

let stat_columns = [ "b_h"; "b_hr"; "b_2b"; "b_3b"; "b_bb"; "b_sb" ]

let clamp_nonneg x = if x < 0 then 0 else x

(* One season line for a player with a given skill in [0, 1].  b_h and b_hr
   are strongly tied through skill (Figure 2, left pairing); b_2b and b_3b
   are weakly related and b_3b is heavily bottom-skewed (right pairing). *)
let season_stats rng skill =
  let g () = Prng.gaussian rng in
  let b_h = clamp_nonneg (int_of_float ((skill *. 160.) +. (25. *. g ()))) in
  let b_hr =
    clamp_nonneg
      (int_of_float ((float_of_int b_h *. 0.22 *. (0.5 +. skill)) +. (4. *. g ())))
  in
  let b_2b = clamp_nonneg (int_of_float ((skill *. 35.) +. (10. *. g ()))) in
  let b_3b = clamp_nonneg (int_of_float (Float.abs (2.5 *. g ()) *. (1.2 -. skill))) in
  let b_bb = clamp_nonneg (int_of_float ((skill *. 70.) +. (15. *. g ()))) in
  let b_sb = clamp_nonneg (int_of_float (Float.abs (8. *. g ()))) in
  [ b_h; b_hr; b_2b; b_3b; b_bb; b_sb ]

let rounds_per_year = 2

let generate ~rows ~seed =
  let rng = Prng.create seed in
  let years = 10 in
  let out = ref [] in
  let count = ref 0 in
  let pid = ref 0 in
  (* Careers vary in length and starting year (like the real dataset), so
     thresholds on seasons-played are actually selective — without this the
     pairs reducers would be vacuous. *)
  while !count < rows do
    let skill = Float.min 1.0 (Float.max 0.0 (0.45 +. (0.2 *. Prng.gaussian rng))) in
    let team = Prng.int rng 30 in
    let career = 1 + Prng.int rng years in
    let start = Prng.int rng (years - career + 1) in
    for year = start to start + career - 1 do
      for round = 1 to rounds_per_year do
        if !count < rows then begin
          incr count;
          let stats = season_stats rng skill in
          let row =
            Array.of_list
              (Value.Int !pid :: Value.Int (2000 + year) :: Value.Int round
              :: Value.Int team
              :: List.map (fun s -> Value.Int s) stats)
          in
          out := row :: !out
        end
      done
    done;
    incr pid
  done;
  Relation.of_rows (Schema.of_names columns) (List.rev !out)

let register catalog ~rows ~seed =
  let rel = generate ~rows ~seed in
  Catalog.add_table catalog
    ~keys:[ [ "playerid"; "year"; "round" ] ]
    ~fds:[ ([ "playerid" ], [ "teamid" ]) ]
    ~nonneg:stat_columns table_name rel;
  Relation.cardinality rel

let default_attrs = [ "b_h"; "b_hr"; "b_2b"; "b_3b" ]

let register_unpivoted ?(attrs = default_attrs) catalog ~rows ~seed =
  let per_row = List.length attrs in
  let pivoted = generate ~rows:((rows + per_row - 1) / per_row) ~seed in
  let schema = pivoted.Relation.schema in
  let idx name = Schema.index_of schema name in
  let team_idx = idx "teamid" in
  let out = ref [] in
  let count = ref 0 in
  let rowid = ref 0 in
  Relation.iter
    (fun row ->
      let id = !rowid in
      incr rowid;
      List.iter
        (fun attr ->
          if !count < rows then begin
            incr count;
            out :=
              [| Value.Int id;
                 Value.Str (Printf.sprintf "team%s" (Value.to_string row.(team_idx)));
                 Value.Str attr;
                 row.(idx attr) |]
              :: !out
          end)
        attrs)
    pivoted;
  let rel =
    Relation.of_rows (Schema.of_names [ "id"; "category"; "attr"; "val" ]) (List.rev !out)
  in
  Catalog.add_table catalog
    ~keys:[ [ "id"; "attr" ] ]
    ~fds:[ ([ "id" ], [ "category" ]) ]
    ~nonneg:[ "val" ] unpivoted_name rel;
  Relation.cardinality rel

let build_indexes ?(bt = true) catalog =
  if Catalog.mem catalog table_name then begin
    Catalog.drop_indexes catalog table_name;
    Catalog.build_hash_index catalog table_name [ "playerid"; "year"; "round" ];
    if bt then begin
      Catalog.build_sorted_index catalog table_name [ "b_h"; "b_hr" ];
      Catalog.build_sorted_index catalog table_name [ "b_2b"; "b_3b" ]
    end
  end;
  if Catalog.mem catalog unpivoted_name then begin
    Catalog.drop_indexes catalog unpivoted_name;
    Catalog.build_hash_index catalog unpivoted_name [ "id"; "attr" ];
    if bt then Catalog.build_sorted_index catalog unpivoted_name [ "val" ]
  end
