(** Deterministic splitmix64 PRNG so every experiment is reproducible
    without threading OCaml's global [Random] state. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform in [0, n). *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Standard normal via Box–Muller. *)
val gaussian : t -> float

(** A Zipf sampler over ranks [1, n] with exponent [s]: precomputes the
    cumulative weights once, then samples by binary search. *)
val zipf_sampler : t -> n:int -> s:float -> unit -> int
