open Relalg

type distribution = Independent | Correlated | Anticorrelated

let table_name = "object"

let register catalog ~n ~dist ~seed =
  let rng = Prng.create seed in
  let point () =
    match dist with
    | Independent -> (Prng.float rng, Prng.float rng)
    | Correlated ->
      let base = Prng.float rng in
      let jitter () = 0.15 *. Prng.gaussian rng in
      (Float.max 0. (base +. jitter ()), Float.max 0. (base +. jitter ()))
    | Anticorrelated ->
      let base = Prng.float rng in
      let jitter () = 0.1 *. Prng.gaussian rng in
      (Float.max 0. (base +. jitter ()), Float.max 0. (1. -. base +. jitter ()))
  in
  let rows =
    List.init n (fun i ->
        let x, y = point () in
        [| Value.Int i;
           Value.Int (int_of_float (x *. 1000.));
           Value.Int (int_of_float (y *. 1000.)) |])
  in
  Catalog.add_table catalog ~keys:[ [ "id" ] ] ~nonneg:[ "x"; "y" ] table_name
    (Relation.of_rows (Schema.of_names [ "id"; "x"; "y" ]) rows);
  n
