type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Int64.to_int truncates to OCaml's 63-bit ints, so mask the sign away. *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod n

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let gaussian t =
  let u1 = Stdlib.max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let zipf_sampler t ~n ~s =
  let cumulative = Array.make (n + 1) 0.0 in
  for k = 1 to n do
    cumulative.(k) <- cumulative.(k - 1) +. (1.0 /. Float.pow (float_of_int k) s)
  done;
  let total = cumulative.(n) in
  fun () ->
    let target = float t *. total in
    (* smallest k with cumulative.(k) >= target *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < target then go (mid + 1) hi else go lo mid
    in
    go 1 n
