let pp = Printf.sprintf

let skyband ?(a = ("b_h", "b_hr")) ~k () =
  let x, y = a in
  pp
    "SELECT R.playerid, R.year, R.round, COUNT(1) \
     FROM player_performance L, player_performance R \
     WHERE L.%s >= R.%s AND L.%s >= R.%s AND (L.%s > R.%s OR L.%s > R.%s) \
     GROUP BY R.playerid, R.year, R.round \
     HAVING COUNT(1) <= %d"
    x x y y x x y y k

let pairs ?(agg = `Avg) ~c ~k () =
  let f = match agg with `Avg -> "AVG" | `Sum -> "SUM" in
  pp
    "WITH pair AS \
     (SELECT s1.playerid AS pid1, s2.playerid AS pid2, \
     %s(s1.b_h) AS hits1, %s(s1.b_hr) AS hruns1, \
     %s(s2.b_h) AS hits2, %s(s2.b_hr) AS hruns2 \
     FROM player_performance s1, player_performance s2 \
     WHERE s1.teamid = s2.teamid AND s1.year = s2.year \
     AND s1.round = s2.round AND s1.playerid < s2.playerid \
     GROUP BY s1.playerid, s2.playerid \
     HAVING COUNT(*) >= %d) \
     SELECT L.pid1, L.pid2, COUNT(*) \
     FROM pair L, pair R \
     WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 \
     AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 \
     AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 \
     OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) \
     GROUP BY L.pid1, L.pid2 \
     HAVING COUNT(*) <= %d"
    f f f f c k

let complex ~threshold =
  pp
    "SELECT S1.id, S1.attr, S2.attr, COUNT(*) \
     FROM perf_kv S1, perf_kv S2, perf_kv T1, perf_kv T2 \
     WHERE S1.id = S2.id AND T1.id = T2.id \
     AND S1.category = T1.category \
     AND T1.attr = S1.attr AND T2.attr = S2.attr \
     AND T1.val > S1.val AND T2.val > S2.val \
     GROUP BY S1.id, S1.attr, S2.attr \
     HAVING COUNT(*) >= %d"
    threshold

(* The complex query with a selective local predicate on S1 — the
   predicate-transfer showcase: the σ on one alias propagates to all four
   through the id/category/attr join edges. *)
let complex_filtered ?(category = "team7") ~threshold () =
  pp
    "SELECT S1.id, S1.attr, S2.attr, COUNT(*) \
     FROM perf_kv S1, perf_kv S2, perf_kv T1, perf_kv T2 \
     WHERE S1.id = S2.id AND T1.id = T2.id \
     AND S1.category = T1.category \
     AND T1.attr = S1.attr AND T2.attr = S2.attr \
     AND T1.val > S1.val AND T2.val > S2.val \
     AND S1.category = '%s' \
     GROUP BY S1.id, S1.attr, S2.attr \
     HAVING COUNT(*) >= %d"
    category threshold

let skyband_avg ?(a = ("b_h", "b_hr")) ~k () =
  let x, y = a in
  pp
    "WITH p AS \
     (SELECT playerid, AVG(%s) AS x, AVG(%s) AS y \
     FROM player_performance GROUP BY playerid) \
     SELECT L.playerid, COUNT(*) \
     FROM p L, p R \
     WHERE L.x < R.x AND L.y < R.y \
     GROUP BY L.playerid \
     HAVING COUNT(*) <= %d"
    x y k

let figure1 =
  [ ("Q1", skyband ~a:("b_h", "b_hr") ~k:50 ());
    ("Q2", skyband ~a:("b_h", "b_hr") ~k:200 ());
    ("Q3", skyband ~a:("b_2b", "b_3b") ~k:50 ());
    ("Q4", pairs ~agg:`Avg ~c:3 ~k:20 ());
    ("Q5", pairs ~agg:`Sum ~c:3 ~k:50 ());
    ("Q6", pairs ~agg:`Avg ~c:5 ~k:20 ());
    ("Q7", pairs ~agg:`Sum ~c:3 ~k:100 ());
    ("Q8", skyband_avg ~a:("b_h", "b_hr") ~k:50 ()) ]

let listing1 ~threshold =
  pp
    "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 \
     WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= %d"
    threshold

let listing2 ~k =
  pp
    "SELECT L.id, COUNT(*) FROM object L, object R \
     WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) \
     GROUP BY L.id HAVING COUNT(*) <= %d"
    k

let listing3 ~threshold =
  pp
    "SELECT S1.id, S1.attr, S2.attr, COUNT(*) \
     FROM product S1, product S2, product T1, product T2 \
     WHERE S1.id = S2.id AND T1.id = T2.id \
     AND S1.category = T1.category \
     AND T1.attr = S1.attr AND T2.attr = S2.attr \
     AND T1.val > S1.val AND T2.val > S2.val \
     GROUP BY S1.id, S1.attr, S2.attr \
     HAVING COUNT(*) >= %d"
    threshold

let listing4 ~c ~k =
  pp
    "WITH pair AS \
     (SELECT s1.pid AS pid1, s2.pid AS pid2, \
     AVG(s1.hits) AS hits1, AVG(s1.hruns) AS hruns1, \
     AVG(s2.hits) AS hits2, AVG(s2.hruns) AS hruns2 \
     FROM score s1, score s2 \
     WHERE s1.teamid = s2.teamid AND s1.year = s2.year \
     AND s1.round = s2.round AND s1.pid < s2.pid \
     GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= %d) \
     SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R \
     WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 \
     AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 \
     AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 \
     OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) \
     GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= %d"
    c k
