(** Synthetic stand-in for the Lahman MLB season-statistics dataset [2].

    The experiments only depend on row count, key structure, and the joint
    distribution of the compared attribute pairs (Figure 2 shows two
    pairings with visibly different correlation, which changes skyband
    selectivity), so we generate: batting hits correlated with home runs
    through a per-player skill factor, and doubles vs. triples with a much
    weaker, noisier relationship.

    Schema: [player_performance(playerid, year, round, teamid, b_h, b_hr,
    b_2b, b_3b, b_bb, b_sb)], key (playerid, year, round), all statistics
    non-negative. *)

val table_name : string

(** [register catalog ~rows ~seed] generates ≈[rows] rows (players × years ×
    rounds) and registers the table with keys, FDs and non-negativity
    facts.  Returns the actual row count. *)
val register : Relalg.Catalog.t -> rows:int -> seed:int -> int

(** The unpivoted organization used by the {e complex} query: each
    statistic becomes a row [perf_kv(id, category, attr, val)] with key
    (id, attr) and FD id → category.  [attrs] selects which statistics to
    unpivot (default all four compared ones). *)
val register_unpivoted :
  ?attrs:string list -> Relalg.Catalog.t -> rows:int -> seed:int -> int

val unpivoted_name : string

(** Build standard indexes: PK (hash on the key), and optionally BT (sorted
    secondary index on the compared attribute pair). *)
val build_indexes : ?bt:bool -> Relalg.Catalog.t -> unit
