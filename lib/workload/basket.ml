open Relalg

let table_name = "basket"

let register catalog ~baskets ~items ~avg_size ~seed =
  let rng = Prng.create seed in
  let sample_item = Prng.zipf_sampler rng ~n:items ~s:1.1 in
  let out = ref [] in
  let count = ref 0 in
  for bid = 0 to baskets - 1 do
    let size = 1 + Prng.int rng (2 * avg_size) in
    let seen = Hashtbl.create 8 in
    for _ = 1 to size do
      let item = sample_item () in
      if not (Hashtbl.mem seen item) then begin
        Hashtbl.add seen item ();
        incr count;
        out := [| Value.Int bid; Value.Str (Printf.sprintf "item%04d" item) |] :: !out
      end
    done
  done;
  Catalog.add_table catalog
    ~keys:[ [ "bid"; "item" ] ]
    table_name
    (Relation.of_rows (Schema.of_names [ "bid"; "item" ]) (List.rev !out));
  !count
