(** The experiment queries of §8, instantiated over the synthetic baseball
    data, plus the four listings from the introduction. *)

(** k-skyband over seasonal records (Appendix E's Q1 shape): count, for each
    record of the inner instance, how many records weakly dominate it on the
    attribute pair [a], keeping those with at most [k] dominators. *)
val skyband : ?a:string * string -> k:int -> unit -> string

(** The "pairs" query (Listing 4): players together ≥ [c] years, pairs
    dominated by ≤ [k] others; [agg] aggregates statistics over time. *)
val pairs : ?agg:[ `Avg | `Sum ] -> c:int -> k:int -> unit -> string

(** The "complex" query (Listing 3) over the unpivoted table: products
    strictly dominated on two attributes by ≥ [threshold] same-category
    products. *)
val complex : threshold:int -> string

(** [complex] with an extra selective predicate [S1.category = category] —
    the predicate-transfer showcase: the σ on one alias semi-join-reduces
    all four via the id/category/attr join edges. *)
val complex_filtered : ?category:string -> threshold:int -> unit -> string

(** Q8: average player statistics over time, then a skyband with the simple
    strict-dominance join condition. *)
val skyband_avg : ?a:string * string -> k:int -> unit -> string

(** The eight queries of Figure 1, as (name, SQL). *)
val figure1 : (string * string) list

(** Listings 1–4 of the paper (market basket, k-skyband, unexciting
    products, player pairs) over the example tables. *)
val listing1 : threshold:int -> string

val listing2 : k:int -> string
val listing3 : threshold:int -> string
val listing4 : c:int -> k:int -> string
