(** Market-basket data for Listing 1: [basket(bid, item)], one row per item
    per basket, item popularity Zipf-distributed so frequent pairs exist. *)

val table_name : string

(** [register catalog ~baskets ~items ~avg_size ~seed]: returns row count. *)
val register :
  Relalg.Catalog.t -> baskets:int -> items:int -> avg_size:int -> seed:int -> int
