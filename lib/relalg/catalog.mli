(** The catalog: named base tables plus the schema knowledge the optimizer
    needs — candidate keys, functional dependencies, domain facts (whether a
    column is known non-negative, for Table 2's SUM caveat) and available
    indexes (the paper's PK / BT configurations). *)

type table = {
  name : string;
  rel : Relation.t;
  keys : string list list;  (** candidate keys, by unqualified column name *)
  fds : (string list * string list) list;  (** extra FDs beyond keys *)
  nonneg : string list;  (** columns with dom ⊆ ℝ≥0 *)
  mutable indexes : Index.t list;
  mutable gen : int;  (** structural generation; see {!stamp} *)
}

(** Delta epoch of one table: its structural generation plus row count.
    Anything that rewrites or reorganizes existing rows ({!replace_rows},
    {!set_layout}, index build/drop) starts a new generation; {!append_rows}
    keeps it and only grows the count.  So for two stamps of the same table,
    equal = identical contents, and equal [s_gen] with larger [s_len] =
    "the rows you saw, plus an appended delta" — the distinction the
    incremental-maintenance caches key on. *)
type stamp = { s_gen : int; s_len : int }

type t

val create : unit -> t

(** Monotone data version of the catalog: bumped by every mutation of
    base-table contents or physical organization ({!add_table},
    {!replace_rows}, {!set_layout}, index build/drop).  Version-keyed caches
    (the server's plan and result caches) are thereby invalidated by any
    mutation without registration machinery.  {!add_temp}/{!remove_table}
    (the transient CTE lifecycle) leave the version unchanged.  Reads and
    bumps are atomic, so concurrent readers always see a coherent value —
    but the catalog's table contents themselves are {e not} synchronized:
    mutate only while no concurrent query is executing (the server runs
    mutations and CTE queries under an exclusive lock). *)
val version : t -> int

val add_table :
  t ->
  ?keys:string list list ->
  ?fds:(string list * string list) list ->
  ?nonneg:string list ->
  string ->
  Relation.t ->
  unit

(** Replace a table's rows, keeping metadata and rebuilding its indexes
    (used by benchmarks that sweep input size). *)
val replace_rows : t -> string -> Relation.t -> unit

val append_rows : t -> string -> Row.t array -> unit
(** O(delta) append via {!Relation.append}: bumps {!version} (result caches
    must notice) but keeps the table's generation, so stamps taken before
    the append stay deltable.  Indexes are rebuilt if present. *)

val stamp : t -> string -> stamp
(** Current delta epoch of a table (raises like {!find} if unknown). *)

val stamps : t -> string list -> (string * stamp) list
(** Stamps for several tables, keyed by normalized (lowercase) name. *)

val delta_since : t -> string -> stamp -> [ `Delta of Relation.t | `Invalid ]
(** The rows appended since [stamp] ([`Delta] may be empty), or [`Invalid]
    if the table changed structurally (new generation, shrank, or was
    dropped) and delta reasoning no longer applies. *)

val find : t -> string -> table
val find_opt : t -> string -> table option
val mem : t -> string -> bool
val table_names : t -> string list

(** All FDs of the table: declared FDs plus key → all-columns. *)
val all_fds : table -> (string list * string list) list

val is_nonneg : table -> string -> bool

val build_hash_index : t -> string -> string list -> unit
val build_sorted_index : t -> string -> string list -> unit
val drop_indexes : t -> string -> unit

(** A sorted index whose first key column is [col], if one exists. *)
val sorted_index_on : table -> string -> Index.Sorted.t option

val hash_index_on : table -> string list -> Index.Hash.t option

(** Convert one table (resp. every table) to the given physical layout,
    keeping metadata and indexes. *)
val set_layout : t -> string -> [ `Row | `Column ] -> unit

val set_all_layouts : t -> [ `Row | `Column ] -> unit

(** Register a derived relation under a fresh name (CTE materialization).
    Unlike {!add_table} this leaves {!version} unchanged — temps are paired
    with {!remove_table} around a single query and never outlive it. *)
val add_temp :
  t ->
  ?keys:string list list ->
  ?fds:(string list * string list) list ->
  ?nonneg:string list ->
  string ->
  Relation.t ->
  unit

val remove_table : t -> string -> unit
