(** The catalog: named base tables plus the schema knowledge the optimizer
    needs — candidate keys, functional dependencies, domain facts (whether a
    column is known non-negative, for Table 2's SUM caveat) and available
    indexes (the paper's PK / BT configurations). *)

type table = {
  name : string;
  rel : Relation.t;
  keys : string list list;  (** candidate keys, by unqualified column name *)
  fds : (string list * string list) list;  (** extra FDs beyond keys *)
  nonneg : string list;  (** columns with dom ⊆ ℝ≥0 *)
  mutable indexes : Index.t list;
}

type t

val create : unit -> t

val add_table :
  t ->
  ?keys:string list list ->
  ?fds:(string list * string list) list ->
  ?nonneg:string list ->
  string ->
  Relation.t ->
  unit

(** Replace a table's rows, keeping metadata and rebuilding its indexes
    (used by benchmarks that sweep input size). *)
val replace_rows : t -> string -> Relation.t -> unit

val find : t -> string -> table
val find_opt : t -> string -> table option
val mem : t -> string -> bool
val table_names : t -> string list

(** All FDs of the table: declared FDs plus key → all-columns. *)
val all_fds : table -> (string list * string list) list

val is_nonneg : table -> string -> bool

val build_hash_index : t -> string -> string list -> unit
val build_sorted_index : t -> string -> string list -> unit
val drop_indexes : t -> string -> unit

(** A sorted index whose first key column is [col], if one exists. *)
val sorted_index_on : table -> string -> Index.Sorted.t option

val hash_index_on : table -> string list -> Index.Hash.t option

(** Convert one table (resp. every table) to the given physical layout,
    keeping metadata and indexes. *)
val set_layout : t -> string -> [ `Row | `Column ] -> unit

val set_all_layouts : t -> [ `Row | `Column ] -> unit

(** Transferred scan filters (predicate transfer, DESIGN.md §11): Bloom
    filters registered against a scan {e alias}; [Exec] composes them into
    every scan running under that alias until cleared.  They are a
    performance hint — membership keeps a superset of the rows that can
    join — and must only be live around plan {e execution}: registering
    them while binding would starve the a-priori reducers' inputs. *)
val set_scan_filters : t -> string -> (string * Column.Bloom.t) list -> unit

val clear_scan_filters : t -> unit

(** Filters registered for this alias ([[]] when none). *)
val scan_filters_for : t -> string -> (string * Column.Bloom.t) list

(** Register a derived relation under a fresh name (CTE materialization). *)
val add_temp : t -> string -> Relation.t -> unit

val remove_table : t -> string -> unit
