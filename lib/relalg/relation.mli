(** A relation is a schema plus a bag of rows (duplicate-preserving,
    matching the paper's duplicate semantics for π, σ and ⋈), stored in one
    (or both) of two physical layouts: a boxed row array, or a chunked
    columnar store with per-block zone maps ({!Column.Cstore}).  The missing
    layout is materialized lazily and cached; [layout] reports the primary
    one (which decides the scan path and footprint accounting). *)

type t = private {
  schema : Schema.t;
  primary : [ `Row | `Column ];
  mutable rows_q : Row.t array option;  (** use {!rows} *)
  mutable cols_q : Column.Cstore.t option;  (** use {!cstore} / {!cstore_opt} *)
}

val make : Schema.t -> Row.t array -> t
val of_rows : Schema.t -> Row.t list -> t

(** Wrap a columnar store (primary layout [`Column]). *)
val of_cstore : Column.Cstore.t -> t

val layout : t -> [ `Row | `Column ]

(** Row view; materialized from the columnar store (and cached) on first
    use of a column-primary relation. *)
val rows : t -> Row.t array

(** Columnar view; built from the rows (and cached) on first use of a
    row-primary relation. *)
val cstore : t -> Column.Cstore.t

(** The columnar view only if it is already present — scan paths use this
    to pick block-skipping execution without forcing conversions. *)
val cstore_opt : t -> Column.Cstore.t option

(** Convert to the given primary layout (identity if already there). *)
val to_layout : [ `Row | `Column ] -> t -> t

val cardinality : t -> int
val empty : Schema.t -> t

val append : t -> Row.t array -> t
(** O(delta) append.  Column-primary relations gain {!Column.Cstore} delta
    blocks (base blocks are shared, not rebuilt); row-primary relations get
    one pointer-copying array append, and an already-materialized columnar
    cache is extended in kind rather than dropped. *)

val slice_from : t -> int -> t
(** [slice_from t lo] is rows [lo ..] as a relation — the delta view for
    incremental maintenance, O(suffix) in either layout. *)

(** Same data under a different schema (no copy of either layout). *)
val with_schema : Schema.t -> t -> t

(** [with_schema] composed with {!Schema.requalify}. *)
val requalify : string -> t -> t

(** Rows with all values rendered; for tests and the CLI. *)
val to_string : ?max_rows:int -> t -> string

val iter : (Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val filter : (Row.t -> bool) -> t -> t
val map_rows : Schema.t -> (Row.t -> Row.t) -> t -> t
val sort_by : (Row.t -> Row.t -> int) -> t -> t

(** Multiset equality, ignoring row order and column qualifiers (used by
    tests to compare optimized vs. baseline results). *)
val equal_bag : t -> t -> bool

(** Deterministically order rows (for printing stable results). *)
val sorted : t -> t

(** Layout-aware footprint: typed blocks + dictionaries for column-primary
    relations, boxed rows otherwise. *)
val approx_bytes : t -> int
