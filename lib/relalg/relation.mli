(** A relation is a schema plus a bag of rows (duplicate-preserving, matching
    the paper's duplicate semantics for π, σ and ⋈). *)

type t = { schema : Schema.t; rows : Row.t array }

val make : Schema.t -> Row.t array -> t
val of_rows : Schema.t -> Row.t list -> t
val cardinality : t -> int
val empty : Schema.t -> t

(** Rows with all values rendered; for tests and the CLI. *)
val to_string : ?max_rows:int -> t -> string

val iter : (Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val filter : (Row.t -> bool) -> t -> t
val map_rows : Schema.t -> (Row.t -> Row.t) -> t -> t
val sort_by : (Row.t -> Row.t -> int) -> t -> t

(** Multiset equality, ignoring row order and column qualifiers (used by
    tests to compare optimized vs. baseline results). *)
val equal_bag : t -> t -> bool

(** Deterministically order rows (for printing stable results). *)
val sorted : t -> t

val approx_bytes : t -> int
