(* Plan interpretation is push-based where it matters: joins stream their
   output rows directly into the consumer (a collector, or the aggregation
   operator), so a join feeding GROUP BY never materializes its full result
   — matching how the paper's baseline systems pipeline their plans.
   Blocking operators (grouping, sort, distinct) materialize.

   To keep the hot loops allocation-light, a streamed node emits each output
   row as a (left part, right part) pair; consumers either concatenate
   (materialization) or blit both parts into a reusable scratch row
   (aggregation).

   With [workers > 1] (the Vendor A stand-in), joins are parallelized by
   chunking the outer side across domains; under aggregation each domain
   builds a partial group table that is merged at the end — mirroring
   Vendor A's Parallelism (Gather/Repartition Streams) plan nodes in
   Appendix E.

   An optional [recorder] observes the actual output cardinality of every
   plan node as it is evaluated (EXPLAIN ANALYZE).  Materialized nodes
   report their cardinality; a join streaming straight into aggregation
   reports its emit count, accumulated per outer chunk into an [Atomic] so
   worker domains never contend on a shared counter inside the feed loop.
   Recorder callbacks themselves always run on the spawning domain. *)

(* Transferred scan filters (predicate transfer, DESIGN.md §11) are plan
   state, not catalog state: the caller passes per-alias Bloom filters in,
   so two plans executing concurrently against one shared catalog can never
   observe each other's filters.  Alias matching is case-insensitive, like
   catalog lookup. *)
let filters_for filters q =
  let q = String.lowercase_ascii q in
  match
    List.find_opt (fun (a, _) -> String.lowercase_ascii a = q) filters
  with
  | Some (_, fs) -> fs
  | None -> []

let scan ~filters catalog table alias filter =
  let tbl = Catalog.find catalog table in
  let q = Option.value alias ~default:tbl.Catalog.name in
  (* requalify keeps the table's physical layout (row or columnar), so a
     filtered scan of a columnar table takes the block-skipping path. *)
  let rel = Relation.requalify q tbl.Catalog.rel in
  match filters_for filters q with
  | [] -> (match filter with None -> rel | Some pred -> Ops.select pred rel)
  | filters ->
    (* Transferred Bloom filters supplied for this alias compose with σ
       into one block-skipping scan (predicate transfer, DESIGN.md §11). *)
    Colscan.select_bloom ~filters filter rel

let compile_bound schema lo hi () =
  let cb = function
    | None -> fun _ -> None
    | Some (e, strictness) ->
      let f = Compile.scalar schema e in
      fun row -> Some (f row, strictness)
  in
  let flo = cb lo and fhi = cb hi in
  fun row -> (flo row, fhi row)

let sorted_index_for catalog table key_col =
  Catalog.sorted_index_on (Catalog.find catalog table) key_col

type streamed = {
  schema : Schema.t;
  left_arity : int;  (* output rows are (left part, right part) *)
  outer : Relation.t;  (* the driving (outer) relation, chunkable *)
  (* [feed chunk emit] streams the node's output for the given outer chunk;
     safe to run concurrently on disjoint chunks (it compiles its own
     predicate state per call). *)
  feed : Row.t array -> (Row.t -> Row.t -> unit) -> unit;
}

type recorder = { rec_rows : int list -> string -> int -> unit }

(* Labels match [Cost]'s per-node labels so estimate and actual line up. *)
let node_label = function
  | Plan.Scan { table; alias; _ } ->
    Printf.sprintf "Scan %s%s" table
      (match alias with Some a when a <> table -> " AS " ^ a | _ -> "")
  | Plan.Values { name; _ } -> Printf.sprintf "Materialized %s" name
  | Plan.Filter _ -> "Filter"
  | Plan.Project _ -> "Project"
  | Plan.Nl_join _ -> "Nested Loop"
  | Plan.Hash_join _ -> "Hash Join"
  | Plan.Merge_join _ -> "Merge Join"
  | Plan.Index_nl_join { table; alias; _ } ->
    Printf.sprintf "Index Nested Loop (%s%s)" table
      (match alias with Some a when a <> table -> " AS " ^ a | _ -> "")
  | Plan.Group _ -> "HashAggregate"
  | Plan.Distinct _ -> "Distinct"
  | Plan.Order_by _ -> "Sort"
  | Plan.Limit (k, _) -> Printf.sprintf "Limit %d" k
  | Plan.Semijoin _ -> "Hash Semi Join (IN)"
  | Plan.Rename (alias, _) -> "Subquery " ^ alias

let empty_row : Row.t = [||]

let rec run ?(workers = 1) ?recorder ?(path = []) ?(filters = []) catalog plan =
  let rel = exec_node ~workers ~recorder ~path ~filters catalog plan in
  (match recorder with
   | Some r -> r.rec_rows path (node_label plan) (Relation.cardinality rel)
   | None -> ());
  rel

and exec_node ~workers ~recorder ~path ~filters catalog plan =
  let child i p = run ~workers ?recorder ~path:(path @ [ i ]) ~filters catalog p in
  match plan with
  | Plan.Scan { table; alias; filter } -> scan ~filters catalog table alias filter
  | Plan.Values { name; rel } -> Relation.requalify name rel
  | Plan.Filter (pred, p) -> Ops.select pred (child 0 p)
  | Plan.Project (outs, p) -> Ops.project outs (child 0 p)
  | Plan.Nl_join _ | Plan.Hash_join _ | Plan.Index_nl_join _ ->
    collect ~workers (stream ~workers ~recorder ~path ~filters catalog plan)
  | Plan.Merge_join { keys; residual; left; right } ->
    let l = child 0 left in
    let r = child 1 right in
    Ops.merge_join
      ~left_keys:(List.map fst keys)
      ~right_keys:(List.map snd keys)
      ~residual l r
  | Plan.Group { group_cols; aggs; input } ->
    group ~workers ~recorder ~path ~filters catalog group_cols aggs input
  | Plan.Distinct p -> Ops.distinct (child 0 p)
  | Plan.Order_by (keys, p) -> Ops.order_by keys (child 0 p)
  | Plan.Limit (n, p) -> Ops.limit n (child 0 p)
  | Plan.Semijoin { keys; sub; input } ->
    let i = child 0 input in
    let s = child 1 sub in
    Ops.semijoin keys s i
  | Plan.Rename (alias, p) ->
    let rel = child 0 p in
    Relation.with_schema
      (Schema.requalify alias (Schema.unqualified rel.Relation.schema))
      rel

(* Build a streamed view of a plan.  Joins stream; anything else
   materializes and streams its rows trivially.  Join children are
   annotated under [path @ [0]] / [path @ [1]]; the join node itself is
   recorded by whoever consumes the stream (collect's caller via
   cardinality, or [group] via an emit counter). *)
and stream ~workers ~recorder ~path ~filters catalog plan : streamed =
  match plan with
  | Plan.Nl_join { pred; left; right } ->
    let l = run ~workers ?recorder ~path:(path @ [ 0 ]) ~filters catalog left in
    let r = run ~workers ?recorder ~path:(path @ [ 1 ]) ~filters catalog right in
    let schema = Schema.append l.Relation.schema r.Relation.schema in
    (* Force the inner rows here, on the spawning domain: [feed] runs on
       worker domains and must not race on the relation's lazy row cache. *)
    let rrows = Relation.rows r in
    let feed chunk emit =
      let ok = Compile.join_pred l.Relation.schema r.Relation.schema pred in
      let nr = Array.length rrows in
      Array.iter
        (fun lrow ->
          for j = 0 to nr - 1 do
            let rrow = rrows.(j) in
            if ok lrow rrow then emit lrow rrow
          done)
        chunk
    in
    { schema; left_arity = Schema.arity l.Relation.schema; outer = l; feed }
  | Plan.Hash_join { keys; residual; left; right } ->
    let l = run ~workers ?recorder ~path:(path @ [ 0 ]) ~filters catalog left in
    let r = run ~workers ?recorder ~path:(path @ [ 1 ]) ~filters catalog right in
    let schema = Schema.append l.Relation.schema r.Relation.schema in
    (* Build the hash table on the smaller input and stream the larger one.
       Delta-maintenance runs put a tiny append batch on one side of the
       join; hashing that side instead of the full table keeps the build
       O(delta) regardless of which side the planner placed it on. *)
    let build_left = Relation.cardinality l < Relation.cardinality r in
    let build, probe =
      if build_left then (l, r) else (r, l)
    in
    let build_cols, probe_cols =
      if build_left then (List.map fst keys, List.map snd keys)
      else (List.map snd keys, List.map fst keys)
    in
    let bkey = Compile.row_fn build.Relation.schema build_cols in
    let tbl = Row.Tbl.create (max 16 (Relation.cardinality build)) in
    Relation.iter
      (fun brow ->
        let key = bkey brow in
        (* SQL: NULL join keys match nothing; keep them out of the table. *)
        if not (Row.has_null key) then
          match Row.Tbl.find_opt tbl key with
          | Some cell -> cell := brow :: !cell
          | None -> Row.Tbl.add tbl key (ref [ brow ]))
      build;
    let feed chunk emit =
      let pkey = Compile.row_fn probe.Relation.schema probe_cols in
      let ok = Compile.join_pred l.Relation.schema r.Relation.schema residual in
      (* [emit] expects (left row, right row) in plan order. *)
      let emit_match =
        if build_left then (fun brow prow -> if ok brow prow then emit brow prow)
        else fun brow prow -> if ok prow brow then emit prow brow
      in
      Array.iter
        (fun prow ->
          let key = pkey prow in
          match Row.Tbl.find_opt tbl key with
          | None -> ()
          | Some cell -> List.iter (fun brow -> emit_match brow prow) !cell)
        chunk
    in
    { schema; left_arity = Schema.arity l.Relation.schema; outer = probe; feed }
  | Plan.Index_nl_join { pred; left; table; alias; key_col; lo; hi } ->
    (match sorted_index_for catalog table key_col with
     | None ->
       (* No BT index: degrade to a plain nested loop over the table. *)
       stream ~workers ~recorder ~path ~filters catalog
         (Plan.Nl_join { pred; left; right = Plan.Scan { table; alias; filter = None } })
     | Some index ->
       let l = run ~workers ?recorder ~path:(path @ [ 0 ]) ~filters catalog left in
       let tbl = Catalog.find catalog table in
       let q = Option.value alias ~default:tbl.Catalog.name in
       let right_schema = Schema.requalify q tbl.Catalog.rel.Relation.schema in
       let schema = Schema.append l.Relation.schema right_schema in
       let make_bound = compile_bound l.Relation.schema lo hi in
       let feed chunk emit =
         let ok = Compile.join_pred l.Relation.schema right_schema pred in
         let bound = make_bound () in
         Array.iter
           (fun lrow ->
             let blo, bhi = bound lrow in
             Index.Sorted.iter_range index ~lo:blo ~hi:bhi (fun rrow ->
                 if ok lrow rrow then emit lrow rrow))
           chunk
       in
       { schema; left_arity = Schema.arity l.Relation.schema; outer = l; feed })
  | _ ->
    let rel = run ~workers ?recorder ~path ~filters catalog plan in
    {
      schema = rel.Relation.schema;
      left_arity = Schema.arity rel.Relation.schema;
      outer = rel;
      feed = (fun chunk emit -> Array.iter (fun row -> emit row empty_row) chunk);
    }

(* Materialize a streamed node (possibly in parallel). *)
and collect ~workers s =
  let collect_chunk chunk =
    let out = ref [] in
    s.feed chunk (fun lrow rrow ->
        out := (if Array.length rrow = 0 then lrow else Row.append lrow rrow) :: !out);
    List.rev !out
  in
  if workers <= 1 then Relation.of_rows s.schema (collect_chunk (Relation.rows s.outer))
  else begin
    let results = Parallel.run_chunks ~workers (Relation.rows s.outer) collect_chunk in
    Relation.of_rows s.schema (List.concat results)
  end

(* Hash aggregation over a streamed input; parallel chunks build partial
   tables merged via the aggregates' algebraic [merge]. *)
and group ~workers ~recorder ~path ~filters catalog group_cols aggs input =
  (* Compressed-execution fast path: a global aggregate directly over a
     base-table scan (no residual filter, no transferred Blooms) can often
     be answered from the encoded blocks without decoding ({!Colagg}).
     Skipped under a recorder — EXPLAIN ANALYZE wants real per-node row
     counts, which would force the full decode anyway. *)
  let direct =
    match (recorder, group_cols, input) with
    | None, [], Plan.Scan { table; alias; filter = None } ->
      let tbl = Catalog.find catalog table in
      let q = Option.value alias ~default:tbl.Catalog.name in
      (match filters_for filters q with
       | [] ->
         Colagg.try_global ~group_cols ~aggs
           (Relation.requalify q tbl.Catalog.rel)
       | _ :: _ -> None)
    | _ -> None
  in
  match direct with
  | Some r -> r
  | None ->
  let s = stream ~workers ~recorder ~path:(path @ [ 0 ]) ~filters catalog input in
  (* A join feeding this aggregate never materializes; count its emitted
     rows so the recorder still sees the node's actual cardinality. *)
  let counted =
    match recorder, input with
    | Some _, (Plan.Nl_join _ | Plan.Hash_join _ | Plan.Index_nl_join _) ->
      Some (Atomic.make 0)
    | _ -> None
  in
  let out_schema = Schema.of_cols (List.map snd group_cols @ List.map snd aggs) in
  let arity = Schema.arity s.schema in
  let build chunk =
    let gexprs = Array.of_list (List.map (fun (e, _) -> Compile.scalar s.schema e) group_cols) in
    let compiled = Array.of_list (List.map (fun (f, _) -> Agg.compile s.schema f) aggs) in
    let nagg = Array.length compiled in
    let groups = Row.Tbl.create 256 in
    let scratch = Array.make arity Value.Null in
    let ng = Array.length gexprs in
    (* Probe with a reusable key buffer; copy only on first insertion. *)
    let key_buf = Array.make ng Value.Null in
    let emitted = ref 0 in
    s.feed chunk (fun lrow rrow ->
        incr emitted;
        let ll = Array.length lrow in
        Array.blit lrow 0 scratch 0 ll;
        if Array.length rrow > 0 then Array.blit rrow 0 scratch ll (Array.length rrow);
        for i = 0 to ng - 1 do
          key_buf.(i) <- gexprs.(i) scratch
        done;
        let states =
          match Row.Tbl.find_opt groups key_buf with
          | Some st -> st
          | None ->
            let st = Array.map (fun (c : Agg.compiled) -> c.Agg.fresh ()) compiled in
            Row.Tbl.add groups (Array.copy key_buf) st;
            st
        in
        for i = 0 to nagg - 1 do
          compiled.(i).Agg.step states.(i) scratch
        done);
    (match counted with
     | Some c -> ignore (Atomic.fetch_and_add c !emitted)
     | None -> ());
    (compiled, groups)
  in
  let partials =
    if workers <= 1 || Relation.cardinality s.outer < 2048 then
      [ build (Relation.rows s.outer) ]
    else Parallel.run_chunks ~workers (Relation.rows s.outer) build
  in
  (match recorder, counted with
   | Some r, Some c -> r.rec_rows (path @ [ 0 ]) (node_label input) (Atomic.get c)
   | _ -> ());
  match partials with
  | [] -> Relation.empty out_schema
  | (compiled0, merged) :: rest ->
    List.iter
      (fun (_, groups) ->
        Row.Tbl.iter
          (fun key states ->
            match Row.Tbl.find_opt merged key with
            | None -> Row.Tbl.add merged key states
            | Some acc ->
              Array.iteri (fun i c -> c.Agg.merge acc.(i) states.(i)) compiled0)
          groups)
      rest;
    let finalize key states =
      Array.append key (Array.map2 (fun (c : Agg.compiled) st -> c.Agg.final st) compiled0 states)
    in
    if group_cols = [] && Row.Tbl.length merged = 0 then
      let states = Array.map (fun (c : Agg.compiled) -> c.Agg.fresh ()) compiled0 in
      Relation.of_rows out_schema [ finalize [||] states ]
    else begin
      let rows = ref [] in
      Row.Tbl.iter (fun key states -> rows := finalize key states :: !rows) merged;
      Relation.of_rows out_schema !rows
    end
