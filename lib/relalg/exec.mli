(** Plan interpreter.

    [workers = 1] gives the sequential baseline ("PostgreSQL" stand-in);
    [workers = 4] parallelizes joins and aggregation across domains ("Vendor
    A" stand-in, cf. Appendix E's Parallelism/Gather plan nodes). *)

type recorder = { rec_rows : int list -> string -> int -> unit }
(** EXPLAIN ANALYZE hook: called once per plan node with the node's path
    (child indices from the root, matching [Cost.tree]'s child order), its
    display label, and the actual number of rows it produced.  Joins that
    stream straight into an aggregate report their emit count instead of a
    materialized cardinality.  Callbacks run on the spawning domain only. *)

val node_label : Plan.t -> string
(** The display label the recorder reports for a node (matches [Cost]). *)

val run :
  ?workers:int ->
  ?recorder:recorder ->
  ?path:int list ->
  ?filters:(string * (string * Column.Bloom.t) list) list ->
  Catalog.t ->
  Plan.t ->
  Relation.t
(** [filters] supplies transferred Bloom scan filters per FROM alias
    (predicate transfer, DESIGN.md §11): every scan running under a listed
    alias composes its filters with σ into one block-skipping scan.  Filters
    are {e plan} state — passed per call, never stored in the catalog — so
    concurrent plans over a shared catalog cannot observe each other's
    filters.  Membership keeps a superset of the rows that can join; the
    caller must only supply sound semi-join reductions. *)
