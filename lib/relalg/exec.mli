(** Plan interpreter.

    [workers = 1] gives the sequential baseline ("PostgreSQL" stand-in);
    [workers = 4] parallelizes joins and aggregation across domains ("Vendor
    A" stand-in, cf. Appendix E's Parallelism/Gather plan nodes). *)

val run : ?workers:int -> Catalog.t -> Plan.t -> Relation.t
