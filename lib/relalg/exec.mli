(** Plan interpreter.

    [workers = 1] gives the sequential baseline ("PostgreSQL" stand-in);
    [workers = 4] parallelizes joins and aggregation across domains ("Vendor
    A" stand-in, cf. Appendix E's Parallelism/Gather plan nodes). *)

type recorder = { rec_rows : int list -> string -> int -> unit }
(** EXPLAIN ANALYZE hook: called once per plan node with the node's path
    (child indices from the root, matching [Cost.tree]'s child order), its
    display label, and the actual number of rows it produced.  Joins that
    stream straight into an aggregate report their emit count instead of a
    materialized cardinality.  Callbacks run on the spawning domain only. *)

val node_label : Plan.t -> string
(** The display label the recorder reports for a node (matches [Cost]). *)

val run :
  ?workers:int -> ?recorder:recorder -> ?path:int list -> Catalog.t -> Plan.t -> Relation.t
