(** Table and column statistics, collected in one pass over a relation.

    Used by the cost model ({!module:Core.Cost} in the core library) to
    estimate cardinalities the way classic optimizers do: distinct counts
    for equality selectivity, min/max for range selectivity. *)

type col_stats = {
  distinct : int;
  min_val : Value.t;  (** [Null] when the column has no non-null values *)
  max_val : Value.t;
  null_count : int;
}

type t = {
  row_count : int;
  columns : (string * col_stats) list;  (** by unqualified column name *)
}

val of_relation : Relation.t -> t
val col : t -> string -> col_stats option

(** Fraction of rows with values ≤ v (resp. <, ≥, >), assuming a uniform
    distribution between min and max; 1/3 when the column is non-numeric or
    constant (the classic default selectivity for inequalities). *)
val range_selectivity : col_stats -> Expr.cmp -> Value.t -> float

(** Equality selectivity 1/distinct (1 when empty). *)
val eq_selectivity : col_stats -> float

val to_string : t -> string
