type col_stats = {
  distinct : int;
  min_val : Value.t;
  max_val : Value.t;
  null_count : int;
}

type t = {
  row_count : int;
  columns : (string * col_stats) list;
}

(* Columnar relation: min/max/null counts come straight from the merged
   per-block zone maps (built at load time — no second pass over values);
   only distinct counts still need to visit values, and a column with a
   dictionary reads its distinct count off the dictionary for free.  The
   dictionary is per-column and covers every string the column ever
   interned, so even when some blocks fell back to [C_mixed] (mixed types)
   only those blocks' non-string values still need visiting — the old code
   re-sampled every row of the column in that case, which both cost a full
   pass and under-reported the Bloom sizing inputs for mostly-dict columns. *)
(* Paged stores cap the distinct pass at this many blocks and scale the
   sample — a full pass would drag every block through the cache just to
   build stats.  Uniformly-dict columns stay exact (the dictionary is
   resident), as do zone-map-derived min/max/null counts. *)
let paged_sample_blocks = 8

let of_cstore cs =
  let schema = Column.Cstore.schema cs in
  let nb = Column.Cstore.nblocks cs in
  let columns =
    List.mapi
      (fun i c ->
        let z = Column.Cstore.col_zmap cs i in
        let paged = Column.Cstore.is_paged cs in
        let visit_nb = if paged then min nb paged_sample_blocks else nb in
        let scale count sampled_rows =
          if sampled_rows >= Column.Cstore.length cs then count
          else begin
            let non_null = max 0 (z.Column.Zmap.rows - z.Column.Zmap.nulls) in
            let total = Column.Cstore.length cs in
            min non_null (count * total / max 1 sampled_rows)
          end
        in
        let distinct =
          match Column.Cstore.dict cs i with
          | Some d when nb > 0 && Column.Cstore.col_kind cs i = Column.Cstore.K_dict ->
            (* every block is dict-coded: the dictionary covers the column *)
            Column.Dict.size d
          | Some d when nb > 0 ->
            (* Non-dict blocks add distinct values the dictionary missed:
               non-strings, plus strings a mixed block never interned. *)
            let extra = Row.Tbl.create 16 in
            let visited_rows = ref 0 in
            for bi = 0 to visit_nb - 1 do
              let b = Column.Cstore.block cs bi in
              visited_rows := !visited_rows + b.Column.Cstore.length;
              match b.Column.Cstore.cols.(i) with
              | Column.Cstore.C_dict _ -> ()
              | _ ->
                for r = 0 to b.Column.Cstore.length - 1 do
                  match Column.Cstore.value_at cs b i r with
                  | Value.Null -> ()
                  | Value.Str s when Column.Dict.find_opt d s <> None -> ()
                  | v -> Row.Tbl.replace extra [| v |] ()
                done
            done;
            Column.Dict.size d + scale (Row.Tbl.length extra) !visited_rows
          | _ ->
            let seen = Row.Tbl.create 64 in
            let visited_rows = ref 0 in
            for bi = 0 to visit_nb - 1 do
              let b = Column.Cstore.block cs bi in
              visited_rows := !visited_rows + b.Column.Cstore.length;
              for r = 0 to b.Column.Cstore.length - 1 do
                let v = Column.Cstore.value_at cs b i r in
                if not (Value.is_null v) then Row.Tbl.replace seen [| v |] ()
              done
            done;
            scale (Row.Tbl.length seen) !visited_rows
        in
        ( c.Schema.name,
          {
            distinct;
            min_val = z.Column.Zmap.min_v;
            max_val = z.Column.Zmap.max_v;
            null_count = z.Column.Zmap.nulls;
          } ))
      (Schema.cols schema)
  in
  { row_count = Column.Cstore.length cs; columns }

let of_relation_rows rel =
  let arity = Schema.arity rel.Relation.schema in
  let distinct = Array.init arity (fun _ -> Row.Tbl.create 64) in
  let mins = Array.make arity Value.Null in
  let maxs = Array.make arity Value.Null in
  let nulls = Array.make arity 0 in
  Relation.iter
    (fun row ->
      for i = 0 to arity - 1 do
        let v = row.(i) in
        if Value.is_null v then nulls.(i) <- nulls.(i) + 1
        else begin
          Row.Tbl.replace distinct.(i) [| v |] ();
          if Value.is_null mins.(i) || Value.compare_total v mins.(i) < 0 then
            mins.(i) <- v;
          if Value.is_null maxs.(i) || Value.compare_total v maxs.(i) > 0 then
            maxs.(i) <- v
        end
      done)
    rel;
  {
    row_count = Relation.cardinality rel;
    columns =
      List.mapi
        (fun i c ->
          ( c.Schema.name,
            {
              distinct = Row.Tbl.length distinct.(i);
              min_val = mins.(i);
              max_val = maxs.(i);
              null_count = nulls.(i);
            } ))
        (Schema.cols rel.Relation.schema);
  }

let of_relation rel =
  match Relation.cstore_opt rel with
  | Some cs -> of_cstore cs
  | None -> of_relation_rows rel

let col t name = List.assoc_opt name t.columns

let default_inequality = 1. /. 3.

let range_selectivity cs op v =
  let numeric = function Value.Int _ | Value.Float _ -> true | _ -> false in
  if not (numeric cs.min_val && numeric cs.max_val && numeric v) then
    default_inequality
  else begin
    let lo = Value.to_float cs.min_val and hi = Value.to_float cs.max_val in
    let x = Value.to_float v in
    if hi <= lo then default_inequality
    else begin
      let frac_le = Float.max 0. (Float.min 1. ((x -. lo) /. (hi -. lo))) in
      match op with
      | Expr.Le | Expr.Lt -> frac_le
      | Expr.Ge | Expr.Gt -> 1. -. frac_le
      | Expr.Eq -> (if cs.distinct = 0 then 1. else 1. /. float_of_int cs.distinct)
      | Expr.Ne -> 1.
    end
  end

let eq_selectivity cs = if cs.distinct = 0 then 1. else 1. /. float_of_int cs.distinct

let to_string t =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "rows=%d\n" t.row_count);
  List.iter
    (fun (name, cs) ->
      Buffer.add_string b
        (Printf.sprintf "  %s: distinct=%d range=[%s, %s] nulls=%d\n" name cs.distinct
           (Value.to_string cs.min_val) (Value.to_string cs.max_val) cs.null_count))
    t.columns;
  Buffer.contents b
