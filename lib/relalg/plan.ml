type bound = Expr.t * [ `Strict | `Inclusive ]

type t =
  | Scan of { table : string; alias : string option; filter : Expr.t option }
  | Values of { name : string; rel : Relation.t }
  | Filter of Expr.t * t
  | Project of (Expr.t * Schema.col) list * t
  | Nl_join of { pred : Expr.t; left : t; right : t }
  | Hash_join of {
      keys : (Expr.t * Expr.t) list;
      residual : Expr.t;
      left : t;
      right : t;
    }
  | Merge_join of {
      keys : (Expr.t * Expr.t) list;
      residual : Expr.t;
      left : t;
      right : t;
    }
  | Index_nl_join of {
      pred : Expr.t;
      left : t;
      table : string;
      alias : string option;
      key_col : string;
      lo : bound option;
      hi : bound option;
    }
  | Group of {
      group_cols : (Expr.t * Schema.col) list;
      aggs : (Agg.func * Schema.col) list;
      input : t;
    }
  | Distinct of t
  | Order_by of (Expr.t * [ `Asc | `Desc ]) list * t
  | Limit of int * t
  | Semijoin of { keys : Expr.t list; sub : t; input : t }
  | Rename of string * t

let table_schema catalog table alias =
  let tbl = Catalog.find catalog table in
  let q = Option.value alias ~default:tbl.Catalog.name in
  Schema.requalify q tbl.Catalog.rel.Relation.schema

let rec schema_of catalog = function
  | Scan { table; alias; _ } -> table_schema catalog table alias
  | Values { name; rel } -> Schema.requalify name rel.Relation.schema
  | Filter (_, p) | Distinct p | Order_by (_, p) | Limit (_, p) -> schema_of catalog p
  | Project (outs, _) -> Schema.of_cols (List.map snd outs)
  | Nl_join { left; right; _ } ->
    Schema.append (schema_of catalog left) (schema_of catalog right)
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
    Schema.append (schema_of catalog left) (schema_of catalog right)
  | Index_nl_join { left; table; alias; _ } ->
    Schema.append (schema_of catalog left) (table_schema catalog table alias)
  | Group { group_cols; aggs; _ } ->
    Schema.of_cols (List.map snd group_cols @ List.map snd aggs)
  | Semijoin { input; _ } -> schema_of catalog input
  | Rename (alias, p) ->
    Schema.requalify alias (Schema.unqualified (schema_of catalog p))

let explain plan =
  let b = Buffer.create 256 in
  let line depth s =
    Buffer.add_string b (String.make (2 * depth) ' ');
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  let bound_to_string which = function
    | None -> ""
    | Some (e, `Inclusive) -> Printf.sprintf " %s %s (incl)" which (Expr.to_string e)
    | Some (e, `Strict) -> Printf.sprintf " %s %s (strict)" which (Expr.to_string e)
  in
  let rec go depth = function
    | Scan { table; alias; filter } ->
      let a = match alias with Some a when a <> table -> " AS " ^ a | _ -> "" in
      let f =
        match filter with None -> "" | Some e -> "  Filter: " ^ Expr.to_string e
      in
      line depth (Printf.sprintf "Seq Scan on %s%s%s" table a f)
    | Values { name; rel } ->
      line depth
        (Printf.sprintf "Materialized %s (%d rows)" name (Relation.cardinality rel))
    | Filter (e, p) ->
      line depth ("Filter: " ^ Expr.to_string e);
      go (depth + 1) p
    | Project (outs, p) ->
      let items =
        List.map
          (fun (e, c) -> Expr.to_string e ^ " AS " ^ Schema.col_to_string c)
          outs
      in
      line depth ("Project: " ^ String.concat ", " items);
      go (depth + 1) p
    | Nl_join { pred; left; right } ->
      line depth ("Nested Loop (Inner Join)  Join Filter: " ^ Expr.to_string pred);
      go (depth + 1) left;
      go (depth + 1) right
    | (Hash_join { keys; residual; left; right } as j)
    | (Merge_join { keys; residual; left; right } as j) ->
      let ks =
        List.map
          (fun (l, r) -> Expr.to_string l ^ " = " ^ Expr.to_string r)
          keys
      in
      let res =
        if Expr.equal residual Expr.tt then ""
        else "  Residual: " ^ Expr.to_string residual
      in
      let label =
        match j with Merge_join _ -> "Merge Join" | _ -> "Hash Join"
      in
      line depth (label ^ "  Cond: " ^ String.concat " AND " ks ^ res);
      go (depth + 1) left;
      go (depth + 1) right
    | Index_nl_join { pred; left; table; alias; key_col; lo; hi } ->
      let a = match alias with Some a when a <> table -> " AS " ^ a | _ -> "" in
      line depth
        (Printf.sprintf "Nested Loop (Inner Join)  Join Filter: %s" (Expr.to_string pred));
      go (depth + 1) left;
      line (depth + 1)
        (Printf.sprintf "Index Scan on %s%s using sorted(%s)%s%s" table a key_col
           (bound_to_string "lo:" lo) (bound_to_string "hi:" hi))
    | Group { group_cols; aggs; input } ->
      let gs = List.map (fun (_, c) -> Schema.col_to_string c) group_cols in
      let as_ = List.map (fun (f, _) -> Agg.to_string f) aggs in
      line depth
        (Printf.sprintf "HashAggregate  Group Key: %s  Aggs: %s"
           (String.concat ", " gs) (String.concat ", " as_));
      go (depth + 1) input
    | Distinct p ->
      line depth "Distinct";
      go (depth + 1) p
    | Order_by (keys, p) ->
      let ks =
        List.map
          (fun (e, d) ->
            Expr.to_string e ^ match d with `Asc -> " ASC" | `Desc -> " DESC")
          keys
      in
      line depth ("Sort: " ^ String.concat ", " ks);
      go (depth + 1) p
    | Limit (n, p) ->
      line depth (Printf.sprintf "Limit %d" n);
      go (depth + 1) p
    | Semijoin { keys; sub; input } ->
      let ks = List.map Expr.to_string keys in
      line depth ("Hash Semi Join (IN)  Keys: " ^ String.concat ", " ks);
      go (depth + 1) input;
      go (depth + 1) sub
    | Rename (alias, p) ->
      line depth ("Subquery Scan " ^ alias);
      go (depth + 1) p
  in
  go 0 plan;
  Buffer.contents b
