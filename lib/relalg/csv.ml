let split_line line =
  (* CRLF input reaches us with the '\r' still attached (input_line and
     split-on-'\n' both keep it); drop exactly one so the last field stays
     clean.  A '\r' inside a quoted field never ends the line — the quote
     does — so this cannot eat field content. *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then
      (* End of line closes an unterminated quote: the content read so far
         is the field (multi-line quoted fields are out of scope). *)
      fields := Buffer.contents buf :: !fields
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = ',' then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !fields

(* A column mixing Int and Float fields is promoted to Float throughout,
   so both physical layouts see one consistent numeric type (a columnar
   block can then stay an unboxed [float array] instead of degrading to
   the boxed mixed representation). *)
let promote_numeric arity rows =
  let has_int = Array.make arity false in
  let has_float = Array.make arity false in
  List.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          match v with
          | Value.Int _ -> has_int.(i) <- true
          | Value.Float _ -> has_float.(i) <- true
          | _ -> ())
        row)
    rows;
  let promote = Array.init arity (fun i -> has_int.(i) && has_float.(i)) in
  if not (Array.exists Fun.id promote) then rows
  else
    List.map
      (Array.mapi (fun i v ->
           match v with
           | Value.Int x when promote.(i) -> Value.Float (float_of_int x)
           | v -> v))
      rows

let parse_lines ?(layout = `Row) lines =
  match lines with
  | [] -> invalid_arg "Csv: empty input"
  | header :: rest ->
    let names = split_line header in
    let schema = Schema.of_names names in
    let arity = List.length names in
    let rows =
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else begin
            let fields = split_line line in
            if List.length fields <> arity then
              invalid_arg (Printf.sprintf "Csv: row arity %d <> header arity %d" (List.length fields) arity);
            Some (Row.make (List.map Value.of_csv_field fields))
          end)
        rest
    in
    let rel = Relation.of_rows schema (promote_numeric arity rows) in
    Relation.to_layout layout rel

let parse_string ?layout s =
  (* Split on '\n' only; [split_line] strips each line's trailing '\r', so
     CRLF input parses identically without corrupting '\r' bytes that sit
     inside quoted field content. *)
  parse_lines ?layout (String.split_on_char '\n' s)

let load ?layout path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  parse_lines ?layout (List.rev !lines)

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv_string rel =
  let b = Buffer.create 1024 in
  let names =
    List.map (fun c -> c.Schema.name) (Schema.cols rel.Relation.schema)
  in
  Buffer.add_string b (String.concat "," (List.map escape_field names));
  Buffer.add_char b '\n';
  Relation.iter
    (fun row ->
      let fields =
        Array.to_list (Array.map (fun v -> escape_field (Value.to_string v)) row)
      in
      Buffer.add_string b (String.concat "," fields);
      Buffer.add_char b '\n')
    rel;
  Buffer.contents b

let save path rel =
  let oc = open_out path in
  output_string oc (to_csv_string rel);
  close_out oc
