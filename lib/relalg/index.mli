(** Secondary indexes over in-memory relations.

    [Hash] supports equality probes on a column tuple (used for hash joins,
    memoization lookups and primary keys — the paper's {e PK} / {e CI}
    configurations).  [Sorted] keeps rows ordered by a column list and
    supports range restriction on the first column (the paper's {e BT}
    secondary B-tree on comparison attributes). *)

module Hash : sig
  type t

  val build : Relation.t -> int list -> t
  val key_idxs : t -> int list
  val probe : t -> Row.t -> Row.t list
  val distinct_keys : t -> int
end

module Sorted : sig
  type t

  val build : Relation.t -> int list -> t
  val key_idxs : t -> int list

  (** All rows whose first key column lies within the given bounds
      (inclusive unless [strict]).  [None] means unbounded on that side.
      Uses binary search over the sorted row array. *)
  val range :
    t ->
    lo:(Value.t * [ `Strict | `Inclusive ]) option ->
    hi:(Value.t * [ `Strict | `Inclusive ]) option ->
    Row.t Seq.t

  (** Allocation-free variant of [range] for hot loops. *)
  val iter_range :
    t ->
    lo:(Value.t * [ `Strict | `Inclusive ]) option ->
    hi:(Value.t * [ `Strict | `Inclusive ]) option ->
    (Row.t -> unit) ->
    unit

  val cardinality : t -> int
end

(** An available index on a base table, as registered in the catalog. *)
type t =
  | Hash_index of Hash.t
  | Sorted_index of Sorted.t

val columns : t -> int list
