type table = {
  name : string;
  rel : Relation.t;
  keys : string list list;
  fds : (string list * string list) list;
  nonneg : string list;
  mutable indexes : Index.t list;
  (* Structural generation: bumped by anything that rewrites or reorganizes
     existing rows (replace, layout change, index build/drop) but NOT by
     [append_rows].  Together with the row count it forms the table's
     {!stamp}: same gen + larger count = "the rows you saw plus a delta". *)
  mutable gen : int;
}

type stamp = { s_gen : int; s_len : int }

type t = {
  tables : (string, table) Hashtbl.t;
  (* Monotone data version, bumped by every mutation of base-table contents
     (add/replace/layout/index changes).  Cache keys derived from catalog
     contents (the server's plan/result caches) include it, so a mutation
     invalidates them without any registration machinery.  Transient CTE
     temp registration ([add_temp]/[remove_table]) does not bump: temps are
     paired add/remove around one query and never outlive it. *)
  version : int Atomic.t;
}

let create () = { tables = Hashtbl.create 16; version = Atomic.make 0 }

let version t = Atomic.get t.version

let bump t = Atomic.incr t.version

let norm = String.lowercase_ascii

let add_table t ?(keys = []) ?(fds = []) ?(nonneg = []) name rel =
  bump t;
  Hashtbl.replace t.tables (norm name)
    { name; rel; keys; fds; nonneg; indexes = []; gen = Atomic.get t.version }

let find_opt t name = Hashtbl.find_opt t.tables (norm name)

let find t name =
  match find_opt t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let mem t name = Hashtbl.mem t.tables (norm name)

let table_names t = Hashtbl.fold (fun _ tbl acc -> tbl.name :: acc) t.tables []

let all_fds tbl =
  let all_cols = List.map (fun c -> c.Schema.name) (Schema.cols tbl.rel.Relation.schema) in
  List.map (fun k -> (k, all_cols)) tbl.keys @ tbl.fds

let is_nonneg tbl col = List.mem col tbl.nonneg

let col_idxs tbl cols =
  List.map (fun c -> Schema.index_of tbl.rel.Relation.schema c) cols

let build_hash_index t name cols =
  bump t;
  let tbl = find t name in
  let idx = Index.Hash_index (Index.Hash.build tbl.rel (col_idxs tbl cols)) in
  tbl.indexes <- idx :: tbl.indexes;
  tbl.gen <- Atomic.get t.version

let build_sorted_index t name cols =
  bump t;
  let tbl = find t name in
  let idx = Index.Sorted_index (Index.Sorted.build tbl.rel (col_idxs tbl cols)) in
  tbl.indexes <- idx :: tbl.indexes;
  tbl.gen <- Atomic.get t.version

let drop_indexes t name =
  bump t;
  let tbl = find t name in
  tbl.indexes <- [];
  tbl.gen <- Atomic.get t.version

let saved_index_cols tbl =
  List.map
    (fun idx ->
      let cols = Index.columns idx in
      let names =
        List.map (fun i -> (Schema.nth tbl.rel.Relation.schema i).Schema.name) cols
      in
      (names, match idx with Index.Hash_index _ -> `Hash | Index.Sorted_index _ -> `Sorted))
    tbl.indexes

let rebuild_indexes t name index_cols =
  List.iter
    (fun (names, kind) ->
      match kind with
      | `Hash -> build_hash_index t name names
      | `Sorted -> build_sorted_index t name names)
    index_cols

let replace_rows t name rel =
  bump t;
  let tbl = find t name in
  let index_cols = saved_index_cols tbl in
  Hashtbl.replace t.tables (norm name)
    { tbl with rel; indexes = []; gen = Atomic.get t.version };
  rebuild_indexes t name index_cols

(* O(delta) append: the generation survives, so stamps taken before the
   append remain the "old prefix" of the grown table and [delta_since]
   can hand back exactly the fresh rows. *)
let append_rows t name fresh =
  if Array.length fresh > 0 then begin
    bump t;
    let tbl = find t name in
    let gen = tbl.gen in
    let index_cols = saved_index_cols tbl in
    let rel = Relation.append tbl.rel fresh in
    Hashtbl.replace t.tables (norm name) { tbl with rel; indexes = [] };
    rebuild_indexes t name index_cols;
    (* index rebuilds bump gen as a structural change; an append's rebuild
       re-covers an unchanged prefix plus new rows, so the gen survives *)
    (find t name).gen <- gen
  end

let stamp t name =
  let tbl = find t name in
  { s_gen = tbl.gen; s_len = Relation.cardinality tbl.rel }

let stamps t names = List.map (fun n -> (norm n, stamp t n)) names

let delta_since t name (s : stamp) =
  match find_opt t name with
  | None -> `Invalid
  | Some tbl ->
    let n = Relation.cardinality tbl.rel in
    if tbl.gen <> s.s_gen || s.s_len > n then `Invalid
    else `Delta (Relation.slice_from tbl.rel s.s_len)

let sorted_index_on tbl col =
  let rec go = function
    | [] -> None
    | Index.Sorted_index s :: rest ->
      (match Index.Sorted.key_idxs s with
       | i :: _ when (Schema.nth tbl.rel.Relation.schema i).Schema.name = col -> Some s
       | _ -> go rest)
    | Index.Hash_index _ :: rest -> go rest
  in
  go tbl.indexes

let hash_index_on tbl cols =
  let want =
    try Some (col_idxs tbl cols) with Schema.Unknown_column _ -> None
  in
  match want with
  | None -> None
  | Some want ->
    let rec go = function
      | [] -> None
      | Index.Hash_index h :: rest ->
        if Index.Hash.key_idxs h = want then Some h else go rest
      | Index.Sorted_index _ :: rest -> go rest
    in
    go tbl.indexes

(* Convert a table to the given physical layout in place.  Indexes hold
   their own row references and stay valid either way. *)
let set_layout t name layout =
  bump t;
  let tbl = find t name in
  Hashtbl.replace t.tables (norm name)
    { tbl with rel = Relation.to_layout layout tbl.rel; gen = Atomic.get t.version }

let set_all_layouts t layout =
  List.iter (fun name -> set_layout t name layout) (table_names t)

(* Temp add/remove must cancel out version-wise: a CTE query registering a
   transient table would otherwise flush every version-keyed cache. *)
let add_temp t ?keys ?fds ?nonneg name rel =
  add_table t ?keys ?fds ?nonneg name rel;
  ignore (Atomic.fetch_and_add t.version (-1))

let remove_table t name = Hashtbl.remove t.tables (norm name)
