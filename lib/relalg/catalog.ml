type table = {
  name : string;
  rel : Relation.t;
  keys : string list list;
  fds : (string list * string list) list;
  nonneg : string list;
  mutable indexes : Index.t list;
}

type t = {
  tables : (string, table) Hashtbl.t;
  (* Monotone data version, bumped by every mutation of base-table contents
     (add/replace/layout/index changes).  Cache keys derived from catalog
     contents (the server's plan/result caches) include it, so a mutation
     invalidates them without any registration machinery.  Transient CTE
     temp registration ([add_temp]/[remove_table]) does not bump: temps are
     paired add/remove around one query and never outlive it. *)
  version : int Atomic.t;
}

let create () = { tables = Hashtbl.create 16; version = Atomic.make 0 }

let version t = Atomic.get t.version

let bump t = Atomic.incr t.version

let norm = String.lowercase_ascii

let add_table t ?(keys = []) ?(fds = []) ?(nonneg = []) name rel =
  bump t;
  Hashtbl.replace t.tables (norm name) { name; rel; keys; fds; nonneg; indexes = [] }

let find_opt t name = Hashtbl.find_opt t.tables (norm name)

let find t name =
  match find_opt t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let mem t name = Hashtbl.mem t.tables (norm name)

let table_names t = Hashtbl.fold (fun _ tbl acc -> tbl.name :: acc) t.tables []

let all_fds tbl =
  let all_cols = List.map (fun c -> c.Schema.name) (Schema.cols tbl.rel.Relation.schema) in
  List.map (fun k -> (k, all_cols)) tbl.keys @ tbl.fds

let is_nonneg tbl col = List.mem col tbl.nonneg

let col_idxs tbl cols =
  List.map (fun c -> Schema.index_of tbl.rel.Relation.schema c) cols

let build_hash_index t name cols =
  bump t;
  let tbl = find t name in
  let idx = Index.Hash_index (Index.Hash.build tbl.rel (col_idxs tbl cols)) in
  tbl.indexes <- idx :: tbl.indexes

let build_sorted_index t name cols =
  bump t;
  let tbl = find t name in
  let idx = Index.Sorted_index (Index.Sorted.build tbl.rel (col_idxs tbl cols)) in
  tbl.indexes <- idx :: tbl.indexes

let drop_indexes t name =
  bump t;
  let tbl = find t name in
  tbl.indexes <- []

let replace_rows t name rel =
  bump t;
  let tbl = find t name in
  let index_cols =
    List.map
      (fun idx ->
        let cols = Index.columns idx in
        let names =
          List.map (fun i -> (Schema.nth tbl.rel.Relation.schema i).Schema.name) cols
        in
        (names, match idx with Index.Hash_index _ -> `Hash | Index.Sorted_index _ -> `Sorted))
      tbl.indexes
  in
  Hashtbl.replace t.tables (norm name) { tbl with rel; indexes = [] };
  List.iter
    (fun (names, kind) ->
      match kind with
      | `Hash -> build_hash_index t name names
      | `Sorted -> build_sorted_index t name names)
    index_cols

let sorted_index_on tbl col =
  let rec go = function
    | [] -> None
    | Index.Sorted_index s :: rest ->
      (match Index.Sorted.key_idxs s with
       | i :: _ when (Schema.nth tbl.rel.Relation.schema i).Schema.name = col -> Some s
       | _ -> go rest)
    | Index.Hash_index _ :: rest -> go rest
  in
  go tbl.indexes

let hash_index_on tbl cols =
  let want =
    try Some (col_idxs tbl cols) with Schema.Unknown_column _ -> None
  in
  match want with
  | None -> None
  | Some want ->
    let rec go = function
      | [] -> None
      | Index.Hash_index h :: rest ->
        if Index.Hash.key_idxs h = want then Some h else go rest
      | Index.Sorted_index _ :: rest -> go rest
    in
    go tbl.indexes

(* Convert a table to the given physical layout in place.  Indexes hold
   their own row references and stay valid either way. *)
let set_layout t name layout =
  bump t;
  let tbl = find t name in
  Hashtbl.replace t.tables (norm name) { tbl with rel = Relation.to_layout layout tbl.rel }

let set_all_layouts t layout =
  List.iter (fun name -> set_layout t name layout) (table_names t)

(* Temp add/remove must cancel out version-wise: a CTE query registering a
   transient table would otherwise flush every version-keyed cache. *)
let add_temp t ?keys ?fds ?nonneg name rel =
  add_table t ?keys ?fds ?nonneg name rel;
  ignore (Atomic.fetch_and_add t.version (-1))

let remove_table t name = Hashtbl.remove t.tables (norm name)
