(** Relation-level [.sic] save/load (see {!Column.Blockfile} for the
    format).  [`Resident] decodes everything up front — the fast cold-start
    replacement for CSV; [`Paged] opens lazily and serves blocks through
    the global block cache, so relations larger than the cache budget
    execute with bounded resident memory. *)

val save : string -> Relation.t -> unit

val save_rows : ?block_size:int -> string -> Schema.t -> Row.t Seq.t -> unit
(** Streaming save: O(block) memory regardless of row count. *)

val load : ?mode:[ `Resident | `Paged ] -> string -> Relation.t
(** Default [`Resident]. *)
