(** Re-export of {!Column.Value}: SQL-style atomic values live in the
    [column] storage library so the columnar substrate can be typed against
    them; [Relalg.Value] remains the name the rest of the system uses. *)

include module type of struct
  include Column.Value
end
