type scalar = Row.t -> Value.t
type pred = Row.t -> bool

(* ---- constant folding ---- *)

(* Evaluating a constant subtree can raise (SUM('a' + 1), 1/0): keep the
   node so the error is raised per-row like the interpreter would, and only
   substitute when evaluation succeeds.  The schema/row are never consulted
   since the subtree has no column references. *)
let try_fold e =
  match Expr.eval (Schema.of_cols []) [||] e with
  | v -> Expr.Const v
  | exception Value.Type_error _ -> e

let fold1 mk a = match a with Expr.Const _ -> try_fold (mk a) | _ -> mk a

let fold2 mk a b =
  match a, b with Expr.Const _, Expr.Const _ -> try_fold (mk a b) | _ -> mk a b

let rec fold_constants e =
  match e with
  | Expr.Const _ | Expr.Col _ -> e
  | Expr.In_set (es, s) -> Expr.In_set (List.map fold_constants es, s)
  | Expr.Neg a -> fold1 (fun a -> Expr.Neg a) (fold_constants a)
  | Expr.Not a -> fold1 (fun a -> Expr.Not a) (fold_constants a)
  | Expr.Binop (op, a, b) ->
    fold2 (fun a b -> Expr.Binop (op, a, b)) (fold_constants a) (fold_constants b)
  | Expr.Cmp (op, a, b) ->
    fold2 (fun a b -> Expr.Cmp (op, a, b)) (fold_constants a) (fold_constants b)
  | Expr.And (a, b) ->
    let a = fold_constants a and b = fold_constants b in
    (* [a && _] short-circuits, so a false/NULL left side decides the node
       without the right side ever being evaluated. *)
    (match a with
     | Expr.Const (Value.Bool false) | Expr.Const Value.Null ->
       Expr.Const (Value.Bool false)
     | _ -> fold2 (fun a b -> Expr.And (a, b)) a b)
  | Expr.Or (a, b) ->
    let a = fold_constants a and b = fold_constants b in
    (match a with
     | Expr.Const (Value.Bool true) -> Expr.Const (Value.Bool true)
     | _ -> fold2 (fun a b -> Expr.Or (a, b)) a b)

(* ---- comparison codes resolved at compile time ---- *)

(* One comparator closure per [Cmp] node, with the int/int fast path inlined
   and NULL semantics (comparisons against NULL are false) baked in;
   [Value.compare_sql_code] returns [min_int] for NULL, which satisfies the
   >-family tests for free and is guarded explicitly in the <=-family. *)
let value_cmp (op : Expr.cmp) : Value.t -> Value.t -> bool =
  match op with
  | Expr.Eq ->
    fun a b ->
      (match a, b with
       | Value.Int x, Value.Int y -> x = y
       | _ -> Value.compare_sql_code a b = 0)
  | Expr.Ne ->
    fun a b ->
      (match a, b with
       | Value.Int x, Value.Int y -> x <> y
       | _ ->
         let c = Value.compare_sql_code a b in
         c <> 0 && c <> min_int)
  | Expr.Lt ->
    fun a b ->
      (match a, b with
       | Value.Int x, Value.Int y -> x < y
       | _ ->
         let c = Value.compare_sql_code a b in
         c < 0 && c <> min_int)
  | Expr.Le ->
    fun a b ->
      (match a, b with
       | Value.Int x, Value.Int y -> x <= y
       | _ ->
         let c = Value.compare_sql_code a b in
         c <= 0 && c <> min_int)
  | Expr.Gt ->
    fun a b ->
      (match a, b with
       | Value.Int x, Value.Int y -> x > y
       | _ -> Value.compare_sql_code a b > 0)
  | Expr.Ge ->
    fun a b ->
      (match a, b with
       | Value.Int x, Value.Int y -> x >= y
       | _ -> Value.compare_sql_code a b >= 0)

(* ---- zone-map probes for block skipping ---- *)

type zone_probe = { zp_col : int; zp_op : Expr.cmp; zp_const : Value.t }

let zmap_cmp : Expr.cmp -> Column.Zmap.cmp = function
  | Expr.Eq -> Column.Zmap.Eq
  | Expr.Ne -> Column.Zmap.Ne
  | Expr.Lt -> Column.Zmap.Lt
  | Expr.Le -> Column.Zmap.Le
  | Expr.Gt -> Column.Zmap.Gt
  | Expr.Ge -> Column.Zmap.Ge

let flip_cmp : Expr.cmp -> Expr.cmp = function
  | Expr.Eq -> Expr.Eq
  | Expr.Ne -> Expr.Ne
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le

(* Walk the top-level AND-chain and collect every column-vs-constant
   comparison.  Each probe is a necessary condition for the whole predicate,
   so a block whose zone map refutes any one of them cannot contain a
   matching row — regardless of the conjuncts we could not convert.
   [exact] reports whether the probes ARE the predicate (every conjunct
   converted), letting the scan evaluate them on typed vectors and skip the
   per-row closure entirely. *)
let zone_probes schema e =
  let probes = ref [] in
  let push op c v =
    probes :=
      { zp_col = Schema.index_of_col schema c; zp_op = op; zp_const = v }
      :: !probes
  in
  let rec go exact e =
    match e with
    | Expr.And (a, b) ->
      let ea = go exact a in
      go ea b
    | Expr.Cmp (op, Expr.Col c, Expr.Const v) ->
      push op c v;
      exact
    | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
      push (flip_cmp op) c v;
      exact
    | Expr.Const (Value.Bool true) -> exact
    | _ -> false
  in
  let exact = go true (fold_constants e) in
  (List.rev !probes, exact)

let binop_fn = function
  | Expr.Add -> Value.add
  | Expr.Sub -> Value.sub
  | Expr.Mul -> Value.mul
  | Expr.Div -> Value.div

(* ---- single-row compiler ---- *)

let rec sc schema (e : Expr.t) : scalar =
  match e with
  | Expr.Const v -> fun _ -> v
  | Expr.Col c ->
    let i = Schema.index_of_col schema c in
    fun row -> row.(i)
  | Expr.Binop (op, a, b) ->
    let f = binop_fn op in
    let fa = sc schema a and fb = sc schema b in
    fun row -> f (fa row) (fb row)
  | Expr.Neg a ->
    let fa = sc schema a in
    fun row -> Value.neg (fa row)
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.In_set _ ->
    let p = pr schema e in
    fun row -> Value.Bool (p row)

and pr schema (e : Expr.t) : pred =
  match e with
  | Expr.Const (Value.Bool b) -> fun _ -> b
  | Expr.Const Value.Null -> fun _ -> false
  | Expr.Cmp (op, a, b) ->
    let vc = value_cmp op in
    (match a, b with
     | Expr.Col ca, Expr.Col cb ->
       let i = Schema.index_of_col schema ca
       and j = Schema.index_of_col schema cb in
       fun row -> vc row.(i) row.(j)
     | Expr.Col ca, Expr.Const v ->
       let i = Schema.index_of_col schema ca in
       fun row -> vc row.(i) v
     | Expr.Const v, Expr.Col cb ->
       let j = Schema.index_of_col schema cb in
       fun row -> vc v row.(j)
     | _ ->
       let fa = sc schema a and fb = sc schema b in
       fun row -> vc (fa row) (fb row))
  | Expr.And (a, b) ->
    let fa = pr schema a and fb = pr schema b in
    fun row -> fa row && fb row
  | Expr.Or (a, b) ->
    let fa = pr schema a and fb = pr schema b in
    fun row -> fa row || fb row
  | Expr.Not a ->
    let fa = pr schema a in
    fun row -> not (fa row)
  | Expr.In_set (es, set) ->
    let fs = Array.of_list (List.map (sc schema) es) in
    let n = Array.length fs in
    fun row ->
      let key = Array.make n Value.Null in
      for i = 0 to n - 1 do
        key.(i) <- fs.(i) row
      done;
      Expr.row_set_mem set key
  | Expr.Const _ | Expr.Col _ | Expr.Binop _ | Expr.Neg _ ->
    let f = sc schema e in
    fun row -> Value.to_bool (f row)

let scalar schema e = sc schema (fold_constants e)
let pred schema e = pr schema (fold_constants e)

(* ---- parameterized probes: r_col op f(binding) ---- *)

(* Conjuncts of shape [r_col op f(binding)] compile once into (column,
   op, binding-scalar) triples: given a binding b, [pp_val b] is the
   comparison constant, testable against each inner block's zone map before
   any vector is touched (the per-binding generalization of [zone_probes]).
   Conjuncts mentioning the binding only become gates — evaluated once per
   binding; a false gate proves Q_R(b) empty without reading the inner side
   at all. *)
type param_probe = { pp_col : int; pp_op : Expr.cmp; pp_val : Row.t -> Value.t }

let param_probes ~binding ~inner e =
  let bare_inner = function
    | Expr.Col c ->
      (match Schema.index_of_col inner c with
       | i -> Some i
       | exception Schema.Unknown_column _ -> None
       | exception Schema.Ambiguous_column _ -> None)
    | _ -> None
  in
  let binding_only e =
    List.for_all
      (fun c ->
        match Schema.index_of_col binding c with
        | _ -> true
        | exception Schema.Unknown_column _ -> false
        | exception Schema.Ambiguous_column _ -> false)
      (Expr.columns e)
  in
  let probes = ref [] and gates = ref [] and exact = ref true in
  List.iter
    (fun conj ->
      match conj with
      | Expr.Const (Value.Bool true) -> ()
      | Expr.Cmp (op, a, b) when bare_inner a <> None && binding_only b ->
        probes :=
          { pp_col = Option.get (bare_inner a); pp_op = op; pp_val = scalar binding b }
          :: !probes
      | Expr.Cmp (op, a, b) when bare_inner b <> None && binding_only a ->
        probes :=
          {
            pp_col = Option.get (bare_inner b);
            pp_op = flip_cmp op;
            pp_val = scalar binding a;
          }
          :: !probes
      | conj when binding_only conj -> gates := pred binding conj :: !gates
      | _ -> exact := false)
    (Expr.conjuncts (fold_constants e));
  (List.rev !probes, List.rev !gates, !exact)

(* ---- join-pair compiler ---- *)

(* Columns resolve against the appended schema (same name resolution and
   ambiguity errors as compiling over a concatenated row) but read straight
   from whichever of the two rows owns the offset — no scratch blit. *)
let join_accessor joined la c : Row.t -> Row.t -> Value.t =
  let i = Schema.index_of_col joined c in
  if i < la then fun l _ -> l.(i)
  else
    let j = i - la in
    fun _ r -> r.(j)

let rec sj joined la (e : Expr.t) : Row.t -> Row.t -> Value.t =
  match e with
  | Expr.Const v -> fun _ _ -> v
  | Expr.Col c -> join_accessor joined la c
  | Expr.Binop (op, a, b) ->
    let f = binop_fn op in
    let fa = sj joined la a and fb = sj joined la b in
    fun l r -> f (fa l r) (fb l r)
  | Expr.Neg a ->
    let fa = sj joined la a in
    fun l r -> Value.neg (fa l r)
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.In_set _ ->
    let p = pj joined la e in
    fun l r -> Value.Bool (p l r)

and pj joined la (e : Expr.t) : Row.t -> Row.t -> bool =
  match e with
  | Expr.Const (Value.Bool b) -> fun _ _ -> b
  | Expr.Const Value.Null -> fun _ _ -> false
  | Expr.Cmp (op, a, b) ->
    let vc = value_cmp op in
    (match a, b with
     | Expr.Col ca, Expr.Col cb ->
       let ga = join_accessor joined la ca and gb = join_accessor joined la cb in
       fun l r -> vc (ga l r) (gb l r)
     | Expr.Col ca, Expr.Const v ->
       let ga = join_accessor joined la ca in
       fun l r -> vc (ga l r) v
     | Expr.Const v, Expr.Col cb ->
       let gb = join_accessor joined la cb in
       fun l r -> vc v (gb l r)
     | _ ->
       let fa = sj joined la a and fb = sj joined la b in
       fun l r -> vc (fa l r) (fb l r))
  | Expr.And (a, b) ->
    let fa = pj joined la a and fb = pj joined la b in
    fun l r -> fa l r && fb l r
  | Expr.Or (a, b) ->
    let fa = pj joined la a and fb = pj joined la b in
    fun l r -> fa l r || fb l r
  | Expr.Not a ->
    let fa = pj joined la a in
    fun l r -> not (fa l r)
  | Expr.In_set (es, set) ->
    let fs = Array.of_list (List.map (sj joined la) es) in
    let n = Array.length fs in
    fun l r ->
      let key = Array.make n Value.Null in
      for i = 0 to n - 1 do
        key.(i) <- fs.(i) l r
      done;
      Expr.row_set_mem set key
  | Expr.Const _ | Expr.Col _ | Expr.Binop _ | Expr.Neg _ ->
    let f = sj joined la e in
    fun l r -> Value.to_bool (f l r)

let join_pred left right e =
  let joined = Schema.append left right in
  pj joined (Schema.arity left) (fold_constants e)

(* ---- projections and key builders ---- *)

let row_fn schema es =
  let es = List.map fold_constants es in
  let all_cols = List.for_all (function Expr.Col _ -> true | _ -> false) es in
  if all_cols then begin
    let idxs =
      Array.of_list
        (List.map
           (function Expr.Col c -> Schema.index_of_col schema c | _ -> assert false)
           es)
    in
    let n = Array.length idxs in
    fun row ->
      let out = Array.make n Value.Null in
      for i = 0 to n - 1 do
        out.(i) <- row.(idxs.(i))
      done;
      out
  end
  else begin
    let fs = Array.of_list (List.map (sc schema) es) in
    let n = Array.length fs in
    fun row ->
      let out = Array.make n Value.Null in
      for i = 0 to n - 1 do
        out.(i) <- fs.(i) row
      done;
      out
  end
