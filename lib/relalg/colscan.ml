(* Block-skipping selection over columnar relations.

   A compiled predicate's column-vs-constant conjuncts (Compile.zone_probes)
   are first tested against each block's zone map: a refuted probe proves
   the block holds no matching row and the whole block is skipped without
   touching its vectors.  Surviving blocks are scanned; when the probes are
   the entire predicate they run as typed kernels directly on the unboxed
   vectors, otherwise rows are rebuilt and the compiled row predicate
   decides.

   The skip/scan counters live in the obs metrics registry: scans may run
   from worker domains (per-domain cells, merged on read), and Runner
   reports them per query (reset between runs). *)

let blocks_skipped = Obs.Metrics.counter "colscan.blocks_skipped"
let blocks_scanned = Obs.Metrics.counter "colscan.blocks_scanned"

let reset_counters () =
  Obs.Metrics.reset blocks_skipped;
  Obs.Metrics.reset blocks_scanned

(* (skipped, scanned) since the last [reset_counters]. *)
let counters () = (Obs.Metrics.read blocks_skipped, Obs.Metrics.read blocks_scanned)

open Column

(* The typed row-test kernels live in Colprobe (shared with the vectorized
   NLJP inner loop); a zone probe is the constant-valued special case. *)
let probe_test cs (b : Cstore.block) (p : Compile.zone_probe) : int -> bool =
  Colprobe.row_test cs b p.Compile.zp_col p.Compile.zp_op p.Compile.zp_const

(* Scan one block, pushing kept rows (in order).  [tests] are the typed
   probe kernels when the probes cover the predicate; otherwise [keep]
   re-evaluates the compiled row predicate on rebuilt rows. *)
let scan_block cs (b : Cstore.block) tests keep push =
  match (keep : (Row.t -> bool) option) with
  | None ->
    let nt = Array.length tests in
    for i = 0 to b.Cstore.length - 1 do
      let ok = ref true in
      let t = ref 0 in
      while !ok && !t < nt do
        if not (tests.(!t) i) then ok := false;
        incr t
      done;
      if !ok then push (Cstore.row_of cs b i)
    done
  | Some keep ->
    for i = 0 to b.Cstore.length - 1 do
      let row = Cstore.row_of cs b i in
      if keep row then push row
    done

(* [select pred rel] is the block-skipping counterpart of [Ops.select];
   [None] when [rel] is not column-primary (caller falls back to rows). *)
let select pred rel =
  if Relation.layout rel <> `Column then None
  else begin
    let cs = Relation.cstore rel in
    let schema = Relation.(rel.schema) in
    let probes, exact = Compile.zone_probes schema pred in
    let keep = if exact then None else Some (Compile.pred schema pred) in
    let zprobes =
      List.map
        (fun (p : Compile.zone_probe) ->
          (p.Compile.zp_col, Compile.zmap_cmp p.Compile.zp_op, p.Compile.zp_const))
        probes
    in
    let out = ref [] in
    let push row = out := row :: !out in
    Cstore.iter_blocks
      (fun (b : Cstore.block) ->
        let skip =
          List.exists
            (fun (ci, op, v) -> not (Zmap.may_match b.Cstore.zmaps.(ci) op v))
            zprobes
        in
        if skip then Obs.Metrics.incr blocks_skipped
        else begin
          Obs.Metrics.incr blocks_scanned;
          let tests =
            if keep = None then
              Array.of_list (List.map (probe_test cs b) probes)
            else [||]
          in
          scan_block cs b tests keep push
        end)
      cs;
    Some (Relation.of_rows schema (List.rev !out))
  end
