(* Block-skipping selection over columnar relations.

   A compiled predicate's column-vs-constant conjuncts (Compile.zone_probes)
   are first tested against each block's zone map: a refuted probe proves
   the block holds no matching row and the whole block is skipped without
   touching its vectors.  Surviving blocks are scanned; when the probes are
   the entire predicate they run as typed kernels directly on the unboxed
   vectors, otherwise rows are rebuilt and the compiled row predicate
   decides.

   The skip/scan counters live in the obs metrics registry: scans may run
   from worker domains (per-domain cells, merged on read), and Runner
   reports them per query (reset between runs). *)

let blocks_skipped = Obs.Metrics.counter "colscan.blocks_skipped"
let blocks_scanned = Obs.Metrics.counter "colscan.blocks_scanned"

let reset_counters () =
  Obs.Metrics.reset blocks_skipped;
  Obs.Metrics.reset blocks_scanned

(* (skipped, scanned) since the last [reset_counters]. *)
let counters () = (Obs.Metrics.read blocks_skipped, Obs.Metrics.read blocks_scanned)

open Column

(* The typed row-test kernels live in Colprobe (shared with the vectorized
   NLJP inner loop); a zone probe is the constant-valued special case. *)
let probe_test cs (b : Cstore.block) (p : Compile.zone_probe) : int -> bool =
  Colprobe.row_test cs b p.Compile.zp_col p.Compile.zp_op p.Compile.zp_const

(* Scan one block, pushing kept rows (in order).  [tests] are the typed
   probe kernels when the probes cover the predicate; otherwise [keep]
   re-evaluates the compiled row predicate on rebuilt rows. *)
let scan_block cs (b : Cstore.block) tests keep push =
  match (keep : (Row.t -> bool) option) with
  | None ->
    let nt = Array.length tests in
    for i = 0 to b.Cstore.length - 1 do
      let ok = ref true in
      let t = ref 0 in
      while !ok && !t < nt do
        if not (tests.(!t) i) then ok := false;
        incr t
      done;
      if !ok then push (Cstore.row_of cs b i)
    done
  | Some keep ->
    for i = 0 to b.Cstore.length - 1 do
      let row = Cstore.row_of cs b i in
      if keep row then push row
    done

(* [select pred rel] is the block-skipping counterpart of [Ops.select];
   [None] when [rel] is not column-primary (caller falls back to rows). *)
let select pred rel =
  if Relation.layout rel <> `Column then None
  else begin
    let cs = Relation.cstore rel in
    let schema = Relation.(rel.schema) in
    let probes, exact = Compile.zone_probes schema pred in
    let keep = if exact then None else Some (Compile.pred schema pred) in
    let zprobes =
      List.map
        (fun (p : Compile.zone_probe) ->
          (p.Compile.zp_col, Compile.zmap_cmp p.Compile.zp_op, p.Compile.zp_const))
        probes
    in
    let out = ref [] in
    let push row = out := row :: !out in
    Cstore.iter_blocks
      (fun (b : Cstore.block) ->
        let skip =
          List.exists
            (fun (ci, op, v) -> not (Zmap.may_match b.Cstore.zmaps.(ci) op v))
            zprobes
        in
        if skip then Obs.Metrics.incr blocks_skipped
        else begin
          Obs.Metrics.incr blocks_scanned;
          let tests =
            if keep = None then
              Array.of_list (List.map (probe_test cs b) probes)
            else [||]
          in
          scan_block cs b tests keep push
        end)
      cs;
    Some (Relation.of_rows schema (List.rev !out))
  end

(* ---- transferred Bloom filters composed into the scan (DESIGN.md §11) ---- *)

let transfer_blocks_skipped = Obs.Metrics.counter "transfer.blocks_skipped"
let transfer_rows_probed = Obs.Metrics.counter "transfer.rows_probed"
let transfer_rows_dropped = Obs.Metrics.counter "transfer.rows_dropped"

(* (blocks skipped by a filter's range, rows probed, rows dropped) since
   process start — callers take deltas, mirroring [counters]. *)
let transfer_counters () =
  ( Obs.Metrics.read transfer_blocks_skipped,
    Obs.Metrics.read transfer_rows_probed,
    Obs.Metrics.read transfer_rows_dropped )

let select_bloom ~filters pred rel =
  let schema = Relation.(rel.schema) in
  (* Filters are a hint: a name that doesn't resolve is dropped, never an
     error (e.g. a projection changed the scan's output columns). *)
  let fidx =
    List.filter_map
      (fun (name, bl) ->
        match Schema.index_of schema name with
        | i -> Some (i, bl)
        | exception Schema.Unknown_column _ -> None
        | exception Schema.Ambiguous_column _ -> None)
      filters
  in
  let probed = ref 0 and dropped = ref 0 in
  let flush () =
    if !probed > 0 then Obs.Metrics.add transfer_rows_probed !probed;
    if !dropped > 0 then Obs.Metrics.add transfer_rows_dropped !dropped
  in
  let result =
    if Relation.layout rel <> `Column then begin
      let keep =
        match pred with
        | None -> fun _ -> true
        | Some p -> Compile.pred schema p
      in
      let tests =
        List.map (fun (i, bl) -> fun (row : Row.t) -> Bloom.mem bl row.(i)) fidx
      in
      let out = ref [] in
      Relation.iter
        (fun row ->
          if keep row then begin
            incr probed;
            if List.for_all (fun t -> t row) tests then out := row :: !out
            else incr dropped
          end)
        rel;
      Relation.of_rows schema (List.rev !out)
    end
    else begin
      let cs = Relation.cstore rel in
      let probes, exact =
        match pred with
        | None -> ([], true)
        | Some p -> Compile.zone_probes schema p
      in
      let keep =
        match pred with
        | Some p when not exact -> Some (Compile.pred schema p)
        | _ -> None
      in
      (* Dict-coded columns probe the filter once per dictionary entry;
         per-row membership is then one code lookup. *)
      let dict_pass =
        List.map
          (fun (ci, bl) ->
            match Cstore.dict cs ci with
            | Some d ->
              Some
                (Array.init (Dict.size d) (fun code ->
                     Bloom.mem bl (Value.Str (Dict.get d code))))
            | None -> None)
          fidx
      in
      let out = ref [] in
      Cstore.iter_blocks
        (fun (b : Cstore.block) ->
          let zrefuted =
            List.exists
              (fun (p : Compile.zone_probe) ->
                not
                  (Zmap.may_match
                     b.Cstore.zmaps.(p.Compile.zp_col)
                     (Compile.zmap_cmp p.Compile.zp_op)
                     p.Compile.zp_const))
              probes
          in
          if zrefuted then Obs.Metrics.incr blocks_skipped
          else if
            List.exists
              (fun (ci, bl) -> not (Bloom.range_may_match bl b.Cstore.zmaps.(ci)))
              fidx
          then Obs.Metrics.incr transfer_blocks_skipped
          else begin
            Obs.Metrics.incr blocks_scanned;
            let stests =
              if keep = None then Array.of_list (List.map (probe_test cs b) probes)
              else [||]
            in
            let ns = Array.length stests in
            let btests =
              Array.of_list
                (List.map2
                   (fun (ci, bl) dp ->
                     match dp, b.Cstore.cols.(ci) with
                     | Some pass, Cstore.C_dict (codes, bm) ->
                       (match bm with
                        | None -> fun i -> pass.(codes.(i))
                        | Some bm ->
                          fun i -> (not (Bitset.get bm i)) && pass.(codes.(i)))
                     | _ -> fun i -> Bloom.mem bl (Cstore.value_at cs b ci i))
                   fidx dict_pass)
            in
            let nb = Array.length btests in
            for i = 0 to b.Cstore.length - 1 do
              let ok = ref true in
              (match keep with
               | None ->
                 let t = ref 0 in
                 while !ok && !t < ns do
                   if not (stests.(!t) i) then ok := false;
                   incr t
                 done
               | Some keep -> if not (keep (Cstore.row_of cs b i)) then ok := false);
              if !ok then begin
                incr probed;
                let t = ref 0 in
                while !ok && !t < nb do
                  if not (btests.(!t) i) then ok := false;
                  incr t
                done;
                if !ok then out := Cstore.row_of cs b i :: !out else incr dropped
              end
            done
          end)
        cs;
      Relation.of_rows schema (List.rev !out)
    end
  in
  flush ();
  result
