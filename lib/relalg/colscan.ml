(* Block-skipping selection over columnar relations.

   A compiled predicate's column-vs-constant conjuncts (Compile.zone_probes)
   are first tested against each block's zone map: a refuted probe proves
   the block holds no matching row and the whole block is skipped without
   touching its vectors.  Zone maps are always resident (Cstore.block_zmaps),
   so for paged stores skipping never touches the disk tier.  A paged
   source's footer Bloom filters refute equality probes for the whole table
   before the block loop even starts.

   Surviving blocks of a paged store first try the compressed-execution
   path: when every probe is an int comparison on an int-kind column or a
   string (in)equality on a dict-kind column and the probes are the entire
   predicate, the selection is computed directly on the encoded columns
   (Encode.sel_fill_int / sel_fill_code — FOR deltas and dictionary codes,
   run-length segments tested once per run) and the block is decoded only
   when matches must be materialized as rows.  Otherwise the block is
   fetched and scanned through the typed kernels / compiled row predicate
   exactly like a resident store.

   The skip/scan counters live in the obs metrics registry: scans may run
   from worker domains (per-domain cells, merged on read), and Runner
   reports them per query (reset between runs). *)

let blocks_skipped = Obs.Metrics.counter "colscan.blocks_skipped"
let blocks_scanned = Obs.Metrics.counter "colscan.blocks_scanned"

(* Blocks whose predicate was decided entirely on the compressed form.  A
   direct block with matches still decodes once to materialize the output
   rows (that decode shows up in sic.blocks_decoded); a direct block with
   zero matches never leaves the encoded domain. *)
let blocks_direct = Obs.Metrics.counter "sic.blocks_direct"

let reset_counters () =
  Obs.Metrics.reset blocks_skipped;
  Obs.Metrics.reset blocks_scanned

(* (skipped, scanned) since the last [reset_counters]. *)
let counters () = (Obs.Metrics.read blocks_skipped, Obs.Metrics.read blocks_scanned)

open Column

(* The typed row-test kernels live in Colprobe (shared with the vectorized
   NLJP inner loop); a zone probe is the constant-valued special case. *)
let probe_test cs (b : Cstore.block) (p : Compile.zone_probe) : int -> bool =
  Colprobe.row_test cs b p.Compile.zp_col p.Compile.zp_op p.Compile.zp_const

(* Scan one block, pushing kept rows (in order).  [tests] are the typed
   probe kernels when the probes cover the predicate; otherwise [keep]
   re-evaluates the compiled row predicate on rebuilt rows. *)
let scan_block cs (b : Cstore.block) tests keep push =
  match (keep : (Row.t -> bool) option) with
  | None ->
    let nt = Array.length tests in
    for i = 0 to b.Cstore.length - 1 do
      let ok = ref true in
      let t = ref 0 in
      while !ok && !t < nt do
        if not (tests.(!t) i) then ok := false;
        incr t
      done;
      if !ok then push (Cstore.row_of cs b i)
    done
  | Some keep ->
    for i = 0 to b.Cstore.length - 1 do
      let row = Cstore.row_of cs b i in
      if keep row then push row
    done

(* ---- compressed-execution probes (paged stores) ---- *)

(* A zone probe re-expressed against the encoded column representation:
   int comparisons run on FOR deltas / RLE runs, string (in)equality on
   dictionary codes.  Probes that don't fit (float constants, ordered
   string comparisons — dict codes are appearance-ordered, not
   value-ordered) leave the whole block on the decode path. *)
type dprobe =
  | D_int of int * Zmap.cmp * int
  | D_code of int * [ `Eq | `Ne ] * int option

(* All probes must compile or none run direct: a half-direct block would
   still decode, so there is nothing to save. *)
let direct_probes cs zprobes =
  let rec go acc = function
    | [] ->
      (match acc with [] -> None | l -> Some (Array.of_list (List.rev l)))
    | (ci, op, v) :: rest ->
      (match (v : Value.t), Cstore.col_kind cs ci with
       | Value.Int k, Cstore.K_int -> go (D_int (ci, op, k) :: acc) rest
       | Value.Str s, Cstore.K_dict ->
         (match (op : Zmap.cmp), Cstore.dict cs ci with
          | Zmap.Eq, Some d -> go (D_code (ci, `Eq, Dict.find_opt d s) :: acc) rest
          | Zmap.Ne, Some d -> go (D_code (ci, `Ne, Dict.find_opt d s) :: acc) rest
          | _ -> None)
       | _ -> None)
  in
  go [] zprobes

(* Evaluate the compiled probes on one block's encoded columns, filling
   [sel] with the surviving row indices.  [None] if a column's physical
   encoding deviates from what [direct_probes] inferred (caller decodes). *)
let direct_select (enc : Encode.col array) dps sel =
  let n = ref (-1) (* identity selection not yet materialized *) in
  let ok = ref true in
  let np = Array.length dps in
  let pi = ref 0 in
  while !ok && !n <> 0 && !pi < np do
    (match dps.(!pi) with
     | D_int (ci, op, k) ->
       if !n < 0 then
         (match Encode.sel_fill_int enc.(ci) op k sel with
          | Some c -> n := c
          | None -> ok := false)
       else (
         match Encode.int_test enc.(ci) op k with
         | Some t -> n := Cstore.sel_refine sel !n t
         | None -> ok := false)
     | D_code (ci, op, code) ->
       if !n < 0 then
         (match Encode.sel_fill_code enc.(ci) op code sel with
          | Some c -> n := c
          | None -> ok := false)
       else (
         match Encode.code_test enc.(ci) op code with
         | Some t -> n := Cstore.sel_refine sel !n t
         | None -> ok := false));
    incr pi
  done;
  if !ok then Some (max !n 0) else None

(* A footer Bloom filter refutes an equality probe for the whole table:
   the filter has no false negatives over the column's non-null values,
   and [= NULL] / [= NaN] match nothing anyway, so [mem] answering false
   proves the scan is empty without touching a single block. *)
let bloom_refuted cs zprobes =
  List.exists
    (fun (ci, op, v) ->
      op = Zmap.Eq
      && (match Cstore.col_bloom cs ci with
          | Some bl -> not (Bloom.mem bl v)
          | None -> false))
    zprobes

(* [select pred rel] is the block-skipping counterpart of [Ops.select];
   [None] when [rel] is not column-primary (caller falls back to rows). *)
let select pred rel =
  if Relation.layout rel <> `Column then None
  else begin
    let cs = Relation.cstore rel in
    let schema = Relation.(rel.schema) in
    let probes, exact = Compile.zone_probes schema pred in
    let keep = if exact then None else Some (Compile.pred schema pred) in
    let zprobes =
      List.map
        (fun (p : Compile.zone_probe) ->
          (p.Compile.zp_col, Compile.zmap_cmp p.Compile.zp_op, p.Compile.zp_const))
        probes
    in
    let nb = Cstore.nblocks cs in
    if bloom_refuted cs zprobes then begin
      Obs.Metrics.add blocks_skipped nb;
      Some (Relation.of_rows schema [])
    end
    else begin
      let dps =
        if exact && Cstore.is_paged cs then direct_probes cs zprobes else None
      in
      let sel =
        match dps with
        | Some _ -> Array.make (max 1 (Cstore.max_block_length cs)) 0
        | None -> [||]
      in
      let out = ref [] in
      let push row = out := row :: !out in
      for bi = 0 to nb - 1 do
        let zm = Cstore.block_zmaps cs bi in
        let skip =
          List.exists (fun (ci, op, v) -> not (Zmap.may_match zm.(ci) op v)) zprobes
        in
        if skip then Obs.Metrics.incr blocks_skipped
        else begin
          Obs.Metrics.incr blocks_scanned;
          let direct =
            match dps with
            | None -> false
            | Some dps ->
              (match Cstore.block_enc cs bi with
               | None -> false
               | Some enc ->
                 (match direct_select enc dps sel with
                  | None -> false
                  | Some cnt ->
                    Obs.Metrics.incr blocks_direct;
                    if cnt > 0 then begin
                      let b = Cstore.block cs bi in
                      for k = 0 to cnt - 1 do
                        push (Cstore.row_of cs b sel.(k))
                      done
                    end;
                    true))
          in
          if not direct then begin
            let b = Cstore.block cs bi in
            let tests =
              if keep = None then Array.of_list (List.map (probe_test cs b) probes)
              else [||]
            in
            scan_block cs b tests keep push
          end
        end
      done;
      Some (Relation.of_rows schema (List.rev !out))
    end
  end

(* ---- transferred Bloom filters composed into the scan (DESIGN.md §11) ---- *)

let transfer_blocks_skipped = Obs.Metrics.counter "transfer.blocks_skipped"
let transfer_rows_probed = Obs.Metrics.counter "transfer.rows_probed"
let transfer_rows_dropped = Obs.Metrics.counter "transfer.rows_dropped"

(* (blocks skipped by a filter's range, rows probed, rows dropped) since
   process start — callers take deltas, mirroring [counters]. *)
let transfer_counters () =
  ( Obs.Metrics.read transfer_blocks_skipped,
    Obs.Metrics.read transfer_rows_probed,
    Obs.Metrics.read transfer_rows_dropped )

let select_bloom ~filters pred rel =
  let schema = Relation.(rel.schema) in
  (* Filters are a hint: a name that doesn't resolve is dropped, never an
     error (e.g. a projection changed the scan's output columns). *)
  let fidx =
    List.filter_map
      (fun (name, bl) ->
        match Schema.index_of schema name with
        | i -> Some (i, bl)
        | exception Schema.Unknown_column _ -> None
        | exception Schema.Ambiguous_column _ -> None)
      filters
  in
  let probed = ref 0 and dropped = ref 0 in
  let flush () =
    if !probed > 0 then Obs.Metrics.add transfer_rows_probed !probed;
    if !dropped > 0 then Obs.Metrics.add transfer_rows_dropped !dropped
  in
  let result =
    if Relation.layout rel <> `Column then begin
      let keep =
        match pred with
        | None -> fun _ -> true
        | Some p -> Compile.pred schema p
      in
      let tests =
        List.map (fun (i, bl) -> fun (row : Row.t) -> Bloom.mem bl row.(i)) fidx
      in
      let out = ref [] in
      Relation.iter
        (fun row ->
          if keep row then begin
            incr probed;
            if List.for_all (fun t -> t row) tests then out := row :: !out
            else incr dropped
          end)
        rel;
      Relation.of_rows schema (List.rev !out)
    end
    else begin
      let cs = Relation.cstore rel in
      let probes, exact =
        match pred with
        | None -> ([], true)
        | Some p -> Compile.zone_probes schema p
      in
      let keep =
        match pred with
        | Some p when not exact -> Some (Compile.pred schema p)
        | _ -> None
      in
      (* Dict-coded columns probe the filter once per dictionary entry;
         per-row membership is then one code lookup. *)
      let dict_pass =
        List.map
          (fun (ci, bl) ->
            match Cstore.dict cs ci with
            | Some d ->
              Some
                (Array.init (Dict.size d) (fun code ->
                     Bloom.mem bl (Value.Str (Dict.get d code))))
            | None -> None)
          fidx
      in
      let out = ref [] in
      let nb = Cstore.nblocks cs in
      for bi = 0 to nb - 1 do
        let zm = Cstore.block_zmaps cs bi in
        let zrefuted =
          List.exists
            (fun (p : Compile.zone_probe) ->
              not
                (Zmap.may_match
                   zm.(p.Compile.zp_col)
                   (Compile.zmap_cmp p.Compile.zp_op)
                   p.Compile.zp_const))
            probes
        in
        if zrefuted then Obs.Metrics.incr blocks_skipped
        else if
          List.exists (fun (ci, bl) -> not (Bloom.range_may_match bl zm.(ci))) fidx
        then Obs.Metrics.incr transfer_blocks_skipped
        else begin
          Obs.Metrics.incr blocks_scanned;
          let b = Cstore.block cs bi in
          let stests =
            if keep = None then Array.of_list (List.map (probe_test cs b) probes)
            else [||]
          in
          let ns = Array.length stests in
          let btests =
            Array.of_list
              (List.map2
                 (fun (ci, bl) dp ->
                   match dp, b.Cstore.cols.(ci) with
                   | Some pass, Cstore.C_dict (codes, bm) ->
                     (match bm with
                      | None -> fun i -> pass.(codes.(i))
                      | Some bm ->
                        fun i -> (not (Bitset.get bm i)) && pass.(codes.(i)))
                   | _ -> fun i -> Bloom.mem bl (Cstore.value_at cs b ci i))
                 fidx dict_pass)
          in
          let nbt = Array.length btests in
          for i = 0 to b.Cstore.length - 1 do
            let ok = ref true in
            (match keep with
             | None ->
               let t = ref 0 in
               while !ok && !t < ns do
                 if not (stests.(!t) i) then ok := false;
                 incr t
               done
             | Some keep -> if not (keep (Cstore.row_of cs b i)) then ok := false);
            if !ok then begin
              incr probed;
              let t = ref 0 in
              while !ok && !t < nbt do
                if not (btests.(!t) i) then ok := false;
                incr t
              done;
              if !ok then out := Cstore.row_of cs b i :: !out else incr dropped
            end
          done
        end
      done;
      Relation.of_rows schema (List.rev !out)
    end
  in
  flush ();
  result
