(** Vectorized per-binding inner evaluation for NLJP over columnar data.

    The inner side of an NLJP query — Q_R(b) = γ_{G_R,A}(σ_{Θ(b)}(R)) for
    one outer binding [b] — is the engine's hottest loop: it runs once per
    distinct binding.  When R is column-primary and Θ's conjuncts have the
    shape [r_col op f(binding)], this module compiles the whole inner query
    once into a [t] and evaluates it per binding without materializing a
    single [Row.t]:

    + each probe's comparison constant [f(b)] is tested against every
      block's zone map, skipping refuted blocks (per-binding data
      skipping — the columnar analogue of the paper's BT index range
      restriction);
    + surviving blocks evaluate Θ through typed comparison kernels into a
      selection vector;
    + COUNT/SUM/MIN/MAX/AVG accumulate directly over the unboxed int/float
      vectors under the selection vector, grouping by dictionary codes when
      G_R is a dict-coded column (decoded only at finalize).

    Accumulation replays [Agg]'s left-fold over [Value.add]/[compare_sql]
    in row order, so results — including float rounding — are bit-identical
    to the row-at-a-time path.  A built [t] is immutable and all evaluation
    scratch is per-call, so one instance is safely shared across worker
    domains. *)

(** Typed row-level comparison test for one (column, op, constant) over a
    block: reads the typed vector directly (int/float fast paths,
    dictionary code comparison for string equality) with SQL NULL
    semantics.  Also the kernel behind [Colscan]'s σ pushdown. *)
val row_test :
  Column.Cstore.t ->
  Column.Cstore.block ->
  int ->
  Expr.cmp ->
  Value.t ->
  int ->
  bool

type t

(** Raised by [eval] when a block's physical layout contradicts what
    [build] verified (e.g. a non-numeric block under a SUM kernel).
    Unreachable for immutable cstores, but callers (NLJP) catch it and
    degrade to the row path rather than abort. *)
exception Fallback of string

(** Result of one per-binding evaluation: the non-empty groups of Q_R(b)
    as (G_R key row, aggregate states) in first-appearance row order —
    matching the row path's partition order — plus data-skipping counters. *)
type outcome = {
  groups : (Row.t * Agg.state list) list;
  blocks_skipped : int;
  blocks_scanned : int;
}

(** [build ~binding ~inner ~theta ~gr_idx ~aggs] compiles the inner query,
    or explains why it cannot run vectorized: Θ has conjuncts outside the
    probe/gate shape, an aggregate ranges over a computed expression or a
    non-numeric column, or COUNT(DISTINCT) appears.  [gr_idx] are G_R's
    column indices in [inner]'s schema; [theta] resolves columns like
    [Compile.join_pred binding inner].

    [extra] attaches transferred Bloom filters (column index, filter) —
    [[]] for none: binding-independent semi-join reductions that compose
    with the per-binding zone probes — a block misses when its zone map
    falls outside a filter's observed range, and selected rows must pass
    membership (dict-coded columns via a pass table precomputed here). *)
val build :
  extra:(int * Column.Bloom.t) list ->
  binding:Schema.t ->
  inner:Column.Cstore.t ->
  theta:Expr.t ->
  gr_idx:int list ->
  aggs:Agg.func list ->
  (t, string) result

val eval : t -> Row.t -> outcome
