include Column.Row
