(* Global aggregation directly on compressed blocks (see colagg.mli).

   The accumulation discipline mirrors Agg's left-fold of [Value.add] /
   [better] exactly: [mode] is 0 until the first non-null input, 1 while
   the running value is an int, 2 once it is a float (overflow promotion
   for SUM/AVG, float input for MIN/MAX).  Run-length segments fold in one
   multiply when provably overflow-free; otherwise the run replays
   per-element through the same step the row path takes. *)

open Column

let blocks_direct = Obs.Metrics.counter "sic.blocks_direct"

type kern =
  | A_count_star
  | A_count of int
  | A_sum of int * bool  (* column, is_float *)
  | A_minmax of int * bool * bool  (* column, is_float, smaller *)
  | A_avg of int * bool

type scratch = {
  mutable cnt : int;
  mutable mode : int;  (* 0 = no input yet, 1 = int, 2 = float *)
  mutable i : int;
  mutable f : float;
}

(* Same-sign operands whose sum flips sign overflowed: promote to float,
   exactly [Value.add]'s rule. *)
let step_sum_int s v =
  match s.mode with
  | 0 ->
    s.mode <- 1;
    s.i <- v
  | 1 ->
    let sum = s.i + v in
    if (s.i >= 0) = (v >= 0) && (sum >= 0) <> (s.i >= 0) then begin
      s.mode <- 2;
      s.f <- float_of_int s.i +. float_of_int v
    end
    else s.i <- sum
  | _ -> s.f <- s.f +. float_of_int v

let step_sum_float s v =
  match s.mode with
  | 0 ->
    s.mode <- 2;
    s.f <- v
  | 1 ->
    s.mode <- 2;
    s.f <- float_of_int s.i +. v
  | _ -> s.f <- s.f +. v

(* |acc| and |v|·len both under 2^60 keeps every intermediate partial sum
   below 2^61 < max_int, so no step of the row path's fold would have
   promoted — folding the whole run as one multiply is then exact. *)
let sum_guard = 1 lsl 60

let sum_run s v len =
  if len > 0 then begin
    if s.mode = 2 then
      (* Float addition is not associative: replay per element so rounding
         matches the row path bit for bit. *)
      for _ = 1 to len do
        s.f <- s.f +. float_of_int v
      done
    else begin
      let acc = if s.mode = 0 then 0 else s.i in
      if
        v > -sum_guard && v < sum_guard
        && abs v < sum_guard / len
        && acc > -sum_guard && acc < sum_guard
      then begin
        s.mode <- 1;
        s.i <- acc + (v * len)
      end
      else
        for _ = 1 to len do
          step_sum_int s v
        done
    end
  end

(* Strictly-better keeps the earlier value (and its representation) on
   ties, like Agg's [better]; one test per run suffices since repetition
   cannot change a min/max. *)
let minmax_int smaller s v =
  match s.mode with
  | 0 ->
    s.mode <- 1;
    s.i <- v
  | 1 ->
    let c = compare v s.i in
    if (if smaller then c < 0 else c > 0) then s.i <- v
  | _ ->
    let c = compare (float_of_int v) s.f in
    if (if smaller then c < 0 else c > 0) then begin
      s.mode <- 1;
      s.i <- v
    end

let minmax_float smaller s v =
  match s.mode with
  | 0 ->
    s.mode <- 2;
    s.f <- v
  | 1 ->
    let c = compare v (float_of_int s.i) in
    if (if smaller then c < 0 else c > 0) then begin
      s.mode <- 2;
      s.f <- v
    end
  | _ ->
    let c = compare v s.f in
    if (if smaller then c < 0 else c > 0) then s.f <- v

(* Fold one kernel over one encoded block; [false] when the physical
   encoding refuses the kernel (caller abandons the whole fast path). *)
let eval_kern k s (enc : Encode.col array) block_len =
  match k with
  | A_count_star ->
    s.cnt <- s.cnt + block_len;
    true
  | A_count ci ->
    s.cnt <- s.cnt + (block_len - Encode.null_count enc.(ci));
    true
  | A_sum (ci, false) ->
    Encode.iter_int_segments enc.(ci) (fun v len is_null ->
        if not is_null then sum_run s v len)
  | A_sum (_, true) | A_avg (_, true) | A_minmax (_, true, _) -> (
    let ci, per_value =
      match k with
      | A_sum (ci, _) -> (ci, fun v -> step_sum_float s v)
      | A_avg (ci, _) ->
        ( ci,
          fun v ->
            s.cnt <- s.cnt + 1;
            step_sum_float s v )
      | A_minmax (ci, _, smaller) -> (ci, minmax_float smaller s)
      | _ -> assert false
    in
    Encode.iter_floats_nonnull enc.(ci) per_value)
  | A_avg (ci, false) ->
    Encode.iter_int_segments enc.(ci) (fun v len is_null ->
        if not is_null then begin
          s.cnt <- s.cnt + len;
          sum_run s v len
        end)
  | A_minmax (ci, false, smaller) ->
    Encode.iter_int_segments enc.(ci) (fun v len is_null ->
        if (not is_null) && len > 0 then minmax_int smaller s v)

let state_of k s =
  let num () =
    match s.mode with
    | 0 -> Value.Null
    | 1 -> Value.Int s.i
    | _ -> Value.Float s.f
  in
  match k with
  | A_count_star | A_count _ -> Agg.count_state s.cnt
  | A_sum _ -> Agg.sum_state (num ())
  | A_minmax (_, _, true) -> Agg.min_state (num ())
  | A_minmax (_, _, false) -> Agg.max_state (num ())
  | A_avg _ -> Agg.avg_state ~sum:(num ()) ~n:s.cnt

let try_global ~group_cols ~aggs rel =
  if group_cols <> [] || Relation.layout rel <> `Column then None
  else begin
    let cs = Relation.cstore rel in
    if not (Cstore.is_paged cs) then None
    else begin
      let schema = Relation.(rel.schema) in
      let col_of e =
        match (e : Expr.t) with
        | Expr.Col c -> (
          match Schema.index_of_col schema c with
          | i -> Some i
          | exception Schema.Unknown_column _ -> None
          | exception Schema.Ambiguous_column _ -> None)
        | _ -> None
      in
      let numeric ci =
        match Cstore.col_kind cs ci with
        | Cstore.K_int -> Some false
        | Cstore.K_float -> Some true
        | _ -> None
      in
      let num_kern mk e =
        Option.bind (col_of e) (fun ci ->
            Option.map (fun is_float -> mk ci is_float) (numeric ci))
      in
      let kern_of (f : Agg.func) =
        match f with
        | Agg.Count_star -> Some A_count_star
        | Agg.Count e -> Option.map (fun ci -> A_count ci) (col_of e)
        | Agg.Sum e -> num_kern (fun ci fl -> A_sum (ci, fl)) e
        | Agg.Avg e -> num_kern (fun ci fl -> A_avg (ci, fl)) e
        | Agg.Min e -> num_kern (fun ci fl -> A_minmax (ci, fl, true)) e
        | Agg.Max e -> num_kern (fun ci fl -> A_minmax (ci, fl, false)) e
        | Agg.Count_distinct _ -> None
      in
      let rec mk acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | (f, _) :: rest -> (
          match kern_of f with Some k -> mk (k :: acc) rest | None -> None)
      in
      match mk [] aggs with
      | None -> None
      | Some kerns ->
        let nk = Array.length kerns in
        let scr =
          Array.init nk (fun _ -> { cnt = 0; mode = 0; i = 0; f = 0. })
        in
        let nb = Cstore.nblocks cs in
        let ok = ref true in
        let bi = ref 0 in
        while !ok && !bi < nb do
          (match Cstore.block_enc cs !bi with
           | None -> ok := false
           | Some enc ->
             let len = Cstore.block_length cs !bi in
             let ki = ref 0 in
             while !ok && !ki < nk do
               if not (eval_kern kerns.(!ki) scr.(!ki) enc len) then ok := false;
               incr ki
             done);
          incr bi
        done;
        if not !ok then None
        else begin
          Obs.Metrics.add blocks_direct nb;
          let out_schema = Schema.of_cols (List.map snd aggs) in
          let row =
            Array.of_list
              (List.mapi
                 (fun ki (f, _) ->
                   (Agg.compile schema f).Agg.final (state_of kerns.(ki) scr.(ki)))
                 aggs)
          in
          Some (Relation.of_rows out_schema [ row ])
        end
    end
  end
