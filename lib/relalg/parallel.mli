(** Domain-based intra-operator parallelism: chunk an array across Domains
    and join the results.  Used by the "Vendor A" executor configuration
    (the paper's commercial system uses 4 cores) and by the Smart-Iceberg
    NLJP operator when [Nljp.config.workers > 1]. *)

(** Split an array into at most [n] contiguous chunks of near-equal size. *)
val split : int -> 'a array -> 'a array list

(** [run_chunks ~workers rows f] applies [f] to each chunk in its own domain
    and returns results in chunk order.  [f] is called once per chunk and
    must not share mutable state across chunks; with [workers <= 1] it runs
    sequentially in the current domain. *)
val run_chunks : workers:int -> 'a array -> ('a array -> 'b) -> 'b list
