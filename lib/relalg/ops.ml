let select pred rel =
  (* Column-primary input takes the zone-map block-skipping path. *)
  match Colscan.select pred rel with
  | Some r -> r
  | None ->
    let keep = Compile.pred rel.Relation.schema pred in
    Relation.filter keep rel

let project outs rel =
  let schema = Schema.of_cols (List.map snd outs) in
  let f = Compile.row_fn rel.Relation.schema (List.map fst outs) in
  Relation.map_rows schema f rel

let joined_schema l r = Schema.append l.Relation.schema r.Relation.schema

let nl_join ~pred left right =
  let schema = joined_schema left right in
  let ok = Compile.join_pred left.Relation.schema right.Relation.schema pred in
  let out = ref [] in
  Relation.iter
    (fun lrow ->
      Relation.iter
        (fun rrow -> if ok lrow rrow then out := Row.append lrow rrow :: !out)
        right)
    left;
  Relation.of_rows schema (List.rev !out)

let hash_join ~left_keys ~right_keys ~residual left right =
  let schema = joined_schema left right in
  let rkey = Compile.row_fn right.Relation.schema right_keys in
  let lkey = Compile.row_fn left.Relation.schema left_keys in
  let tbl = Row.Tbl.create (max 16 (Relation.cardinality right)) in
  Relation.iter
    (fun rrow ->
      let key = rkey rrow in
      (* SQL: NULL join keys match nothing; keep them out of the table. *)
      if not (Row.has_null key) then
        match Row.Tbl.find_opt tbl key with
        | Some cell -> cell := rrow :: !cell
        | None -> Row.Tbl.add tbl key (ref [ rrow ]))
    right;
  let ok = Compile.join_pred left.Relation.schema right.Relation.schema residual in
  let out = ref [] in
  Relation.iter
    (fun lrow ->
      let key = lkey lrow in
      match Row.Tbl.find_opt tbl key with
      | None -> ()
      | Some cell ->
        List.iter
          (fun rrow -> if ok lrow rrow then out := Row.append lrow rrow :: !out)
          !cell)
    left;
  Relation.of_rows schema (List.rev !out)

let merge_join ~left_keys ~right_keys ~residual left right =
  let schema = joined_schema left right in
  let lkey = Compile.row_fn left.Relation.schema left_keys in
  let rkey = Compile.row_fn right.Relation.schema right_keys in
  (* SQL: NULL join keys match nothing — drop them before sorting, or the
     equal-key-run cross product would pair NULL with NULL. *)
  let sorted_keyed key rel =
    let rows =
      Array.of_seq
        (Seq.filter_map
           (fun r ->
             let k = key r in
             if Row.has_null k then None else Some (k, r))
           (Array.to_seq (Relation.rows rel)))
    in
    Array.sort (fun (a, _) (b, _) -> Row.compare a b) rows;
    rows
  in
  let lsorted = sorted_keyed lkey left in
  let rsorted = sorted_keyed rkey right in
  let ok = Compile.join_pred left.Relation.schema right.Relation.schema residual in
  let out = ref [] in
  let nl = Array.length lsorted and nr = Array.length rsorted in
  (* classic merge: advance the smaller key; on a match, cross the two
     equal-key runs *)
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let kl, _ = lsorted.(!i) and kr, _ = rsorted.(!j) in
    let c = Row.compare kl kr in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      let i_end = ref !i in
      while !i_end < nl && Row.compare (fst lsorted.(!i_end)) kl = 0 do
        incr i_end
      done;
      let j_end = ref !j in
      while !j_end < nr && Row.compare (fst rsorted.(!j_end)) kr = 0 do
        incr j_end
      done;
      for a = !i to !i_end - 1 do
        for b = !j to !j_end - 1 do
          let _, lrow = lsorted.(a) and _, rrow = rsorted.(b) in
          if ok lrow rrow then out := Row.append lrow rrow :: !out
        done
      done;
      i := !i_end;
      j := !j_end
    end
  done;
  Relation.of_rows schema (List.rev !out)

let index_nl_join ~pred ~index ~right_schema ~right_bound left =
  let schema = Schema.append left.Relation.schema right_schema in
  let ok = Compile.join_pred left.Relation.schema right_schema pred in
  let out = ref [] in
  Relation.iter
    (fun lrow ->
      let lo, hi = right_bound lrow in
      Seq.iter
        (fun rrow -> if ok lrow rrow then out := Row.append lrow rrow :: !out)
        (Index.Sorted.range index ~lo ~hi))
    left;
  Relation.of_rows schema (List.rev !out)

let group_by ~group_cols ~aggs rel =
  match Colagg.try_global ~group_cols ~aggs rel with
  | Some r -> r
  | None ->
  let gkey = Compile.row_fn rel.Relation.schema (List.map fst group_cols) in
  let compiled = List.map (fun (f, _) -> Agg.compile rel.Relation.schema f) aggs in
  let schema =
    Schema.of_cols (List.map snd group_cols @ List.map snd aggs)
  in
  let groups = Row.Tbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let key = gkey row in
      let states =
        match Row.Tbl.find_opt groups key with
        | Some states -> states
        | None ->
          let states = List.map (fun c -> c.Agg.fresh ()) compiled in
          Row.Tbl.add groups key states;
          order := key :: !order;
          states
      in
      List.iter2 (fun c st -> c.Agg.step st row) compiled states)
    rel;
  let finalize key states =
    Array.append key (Array.of_list (List.map2 (fun c st -> c.Agg.final st) compiled states))
  in
  if group_cols = [] && Row.Tbl.length groups = 0 then
    (* SQL: global aggregation over the empty input yields one row. *)
    let states = List.map (fun c -> c.Agg.fresh ()) compiled in
    Relation.of_rows schema [ finalize [||] states ]
  else
    let rows =
      List.rev_map (fun key -> finalize key (Row.Tbl.find groups key)) !order
    in
    Relation.of_rows schema rows

let distinct rel =
  let seen = Row.Tbl.create 64 in
  Relation.filter
    (fun row ->
      if Row.Tbl.mem seen row then false
      else begin
        Row.Tbl.add seen row ();
        true
      end)
    rel

let order_by keys rel =
  let fs =
    List.map (fun (e, dir) -> (Compile.scalar rel.Relation.schema e, dir)) keys
  in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (f, dir) :: rest ->
        let c = Value.compare_total (f a) (f b) in
        let c = match dir with `Asc -> c | `Desc -> -c in
        if c <> 0 then c else go rest
    in
    go fs
  in
  Relation.sort_by cmp rel

let limit n rel =
  let rows = (Relation.rows rel) in
  let n = min n (Array.length rows) in
  Relation.make rel.Relation.schema (Array.sub rows 0 n)

let semijoin keys sub rel =
  let set = Expr.row_set_of (Array.to_list (Relation.rows sub)) in
  select (Expr.In_set (keys, set)) rel

let union_all a b =
  if Schema.arity a.Relation.schema <> Schema.arity b.Relation.schema then
    invalid_arg "Ops.union_all: arity mismatch";
  Relation.make a.Relation.schema (Array.append (Relation.rows a) (Relation.rows b))

let cross a b = nl_join ~pred:Expr.tt a b
